package repro

import (
	"math"
	"math/rand"
	"testing"
)

// Facade tests for the extension surface: clustering, subsequence search,
// indexing, multivariate, uncertain, and multiple-comparison corrections.

func TestFacadeKShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var series [][]float64
	var truth []int
	for i := 0; i < 40; i++ {
		c := i % 2
		freq := float64(c + 1)
		shift := rng.Intn(48)
		s := make([]float64, 48)
		for j := range s {
			s[j] = math.Sin(2 * math.Pi * freq * float64((j+shift)%48) / 48)
		}
		series = append(series, ZNormalize(s))
		truth = append(truth, c)
	}
	res := KShapeRestarts(series, KShapeConfig{K: 2, Seed: 3}, 3)
	if ari := AdjustedRandIndex(res.Labels, truth); ari < 0.9 {
		t.Fatalf("k-Shape ARI = %g", ari)
	}
	if RandIndex(res.Labels, res.Labels) != 1 {
		t.Fatal("RandIndex self-comparison must be 1")
	}
}

func TestFacadeSubsequenceSearch(t *testing.T) {
	n := 300
	series := make([]float64, n)
	for i := range series {
		series[i] = math.Sin(2 * math.Pi * float64(i) / 40)
	}
	q := series[80:120]
	profile := DistanceProfile(series, q)
	if len(profile) != n-40+1 {
		t.Fatalf("profile length %d", len(profile))
	}
	if profile[80] > 1e-6 {
		t.Fatalf("exact-match profile value %g", profile[80])
	}
	matches := TopKMatches(series, q, 2)
	if len(matches) != 2 || matches[0].Distance > 1e-6 {
		t.Fatalf("matches = %+v", matches)
	}
	mp, idx := MatrixProfile(series, 40)
	if len(mp) != len(idx) || len(mp) != n-40+1 {
		t.Fatalf("matrix profile shapes %d/%d", len(mp), len(idx))
	}
	i, j, _ := Motif(series, 40)
	if i == j {
		t.Fatal("motif pair must be distinct")
	}
	if off, _ := Discord(series, 40); off < 0 || off >= len(mp) {
		t.Fatalf("discord offset %d out of range", off)
	}
}

func TestFacadeIndexing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	refs := make([][]float64, 30)
	for i := range refs {
		r := make([]float64, 32)
		for j := range r {
			r[j] = rng.NormFloat64()
		}
		refs[i] = r
	}
	q := make([]float64, 32)
	for j := range q {
		q[j] = rng.NormFloat64()
	}
	ix := NewEDIndex(refs, 8)
	best, d, stats := ix.NN(q)
	// Brute-force verification.
	ed := Euclidean()
	want, wantD := -1, math.Inf(1)
	for i, r := range refs {
		if v := ed.Distance(q, r); v < wantD {
			want, wantD = i, v
		}
	}
	if best != want || math.Abs(d-wantD) > 1e-9 {
		t.Fatalf("EDIndex NN (%d, %g) != brute (%d, %g)", best, d, want, wantD)
	}
	if stats.Exact < 1 {
		t.Fatal("no exact computations recorded")
	}

	tree := NewVPTree(refs, MSM(0.5), 1)
	tBest, tD, _ := tree.NN(q)
	msm := MSM(0.5)
	want, wantD = -1, math.Inf(1)
	for i, r := range refs {
		if v := msm.Distance(q, r); v < wantD {
			want, wantD = i, v
		}
	}
	if tBest != want || math.Abs(tD-wantD) > 1e-9 {
		t.Fatalf("VPTree NN (%d, %g) != brute (%d, %g)", tBest, tD, want, wantD)
	}

	// PAA and the lower bounds.
	x := ZNormalize(refs[0])
	y := ZNormalize(refs[1])
	if lb := LBPAA(PAA(x, 8), PAA(y, 8), 32); lb > ed.Distance(x, y)+1e-9 {
		t.Fatal("LBPAA exceeded ED")
	}
	s := NewSAX(8, 6)
	if lb := s.MinDist(s.Symbolize(x), s.Symbolize(y), 32); lb > ed.Distance(x, y)+1e-9 {
		t.Fatal("SAX MINDIST exceeded ED")
	}
	if lb := DFTLowerBound(DFTCoefficients(x, 4), DFTCoefficients(y, 4)); lb > ed.Distance(x, y)+1e-9 {
		t.Fatal("DFT bound exceeded ED")
	}
}

func TestFacadeMultivariate(t *testing.T) {
	x := MVSeries{{0, 0}, {1, 1}, {0, 0}}
	y := MVSeries{{0, 0}, {1, 1}, {0, 0}}
	if d := MVEuclidean().Distance(x, y); d != 0 {
		t.Fatalf("MV ED identical = %g", d)
	}
	if d := MVDTWDependent(100).Distance(x, y); d != 0 {
		t.Fatalf("MV DTW-D identical = %g", d)
	}
	if d := MVDTWIndependent(100).Distance(x, y); d != 0 {
		t.Fatalf("MV DTW-I identical = %g", d)
	}
	lifted := MVIndependent(Manhattan())
	z := MVSeries{{1, 0}, {1, 0}, {1, 0}}
	if d := lifted.Distance(x, z); d <= 0 {
		t.Fatalf("lifted distance = %g", d)
	}
	acc := MVOneNN(MVEuclidean(), []MVSeries{x, z}, []int{1, 2}, []MVSeries{y}, []int{1})
	if acc != 1 {
		t.Fatalf("MV 1-NN accuracy = %g", acc)
	}
}

func TestFacadeUncertain(t *testing.T) {
	x := UncertainFromCertain([]float64{0, 0})
	y := UncertainSeries{Values: []float64{3, 4}, Stddev: []float64{0, 0}}
	if d := UncertainExpectedED(x, y); math.Abs(d-5) > 1e-12 {
		t.Fatalf("certain expected ED = %g, want 5", d)
	}
	noisy := UncertainSeries{Values: []float64{3, 4}, Stddev: []float64{2, 2}}
	if UncertainExpectedED(x, noisy) <= 5 {
		t.Fatal("uncertainty must increase the expected distance")
	}
	if UncertainDUST(x, noisy, 1e-3) >= UncertainDUST(x, y, 1e-3) {
		t.Fatal("DUST must down-weight uncertain gaps")
	}
	p := UncertainProbCloser(x, y, noisy)
	if p < 0 || p > 1 {
		t.Fatalf("probability %g out of range", p)
	}
	acc := UncertainOneNN([]UncertainSeries{y, noisy}, []int{1, 2}, []UncertainSeries{x}, []int{1})
	if acc != 1 {
		t.Fatalf("uncertain 1-NN accuracy = %g", acc)
	}
}

func TestFacadeCorrections(t *testing.T) {
	p := []float64{0.001, 0.2, 0.04}
	holm := HolmCorrection(p, 0.05)
	bonf := BonferroniCorrection(p, 0.05)
	if !holm[0] || holm[1] {
		t.Fatalf("Holm = %v", holm)
	}
	for i := range p {
		if bonf[i] && !holm[i] {
			t.Fatal("Bonferroni rejected where Holm did not")
		}
	}
}

func TestFacadeElasticExtensions(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = x[i] + 5 // constant offset
	}
	if d := DDTW(100).Distance(x, y); d > 1e-9 {
		t.Fatalf("DDTW of offset ramps = %g", d)
	}
	if d := WDTW(0.05).Distance(x, x); d != 0 {
		t.Fatalf("WDTW identity = %g", d)
	}
	cid := CIDMeasure(Euclidean())
	if d := cid.Distance(x, x); d != 0 {
		t.Fatalf("CID identity = %g", d)
	}
	refs := [][]float64{y, x}
	best, _, _ := NNSearchDTW(x, refs, 10)
	if best != 1 {
		t.Fatalf("NNSearchDTW best = %d, want 1 (exact copy)", best)
	}
}

func TestFacadeISAX(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ix := NewISAX(32, 8, 4)
	refs := make([][]float64, 60)
	for i := range refs {
		r := make([]float64, 32)
		for j := range r {
			r[j] = rng.NormFloat64()
		}
		refs[i] = ZNormalize(r)
		ix.Insert(refs[i])
	}
	q := refs[7]
	best, dist, _ := ix.NN(q)
	if best != 7 || dist > 1e-9 {
		t.Fatalf("iSAX exact NN of an indexed series = (%d, %g), want (7, 0)", best, dist)
	}
	aBest, _ := ix.ApproxNN(q)
	if aBest == -1 {
		t.Fatal("approximate search returned nothing")
	}
	if ix.Size() != 60 {
		t.Fatalf("size = %d", ix.Size())
	}
}
