GO ?= go

.PHONY: build test vet race bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the concurrency-heavy packages: the parallel dispatcher, the
# pruned search engine, and the evaluation layer driving them.
race:
	$(GO) test -race ./internal/par ./internal/eval ./internal/search

bench:
	$(GO) test -bench . -benchtime 1x ./...

# CI entry point: everything that must be green before merging.
check: build vet test race
