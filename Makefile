GO ?= go

.PHONY: build test vet race check-race oracle oracle-long bench golden smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the concurrency-heavy packages: the parallel dispatcher, the
# pruned search engine, and the evaluation layer driving them.
race:
	$(GO) test -race ./internal/par ./internal/eval ./internal/search

# Race-check the spectral engine's tiled dispatch: the parallel Gram
# fill/mirroring in internal/kernel and the parallel embedding fits.
check-race:
	$(GO) test -race ./internal/par ./internal/search ./internal/kernel ./internal/embedding

# Differential oracle harness under the race detector: every measure
# against its reference implementation plus both search engines against
# exhaustive matrix evaluation, on the fixed default seed schedule.
oracle:
	$(GO) test -race -run Oracle ./internal/oracle

# Extended fuzzing campaign (32 seeds); slower, run before releases.
oracle-long:
	$(GO) test ./internal/oracle -run Oracle -oracle.long

# Smoke-run every benchmark once, then measure the grid tuning benchmarks
# for real (per-candidate loop vs grid engine, with allocation counts) and
# record them as BENCH_tuning.json via cmd/benchjson.
bench:
	$(GO) test -bench . -benchtime 1x -benchmem ./...
	$(GO) test -bench BenchmarkGridTuning -benchmem ./internal/search | $(GO) run ./cmd/benchjson -o BENCH_tuning.json
	$(GO) test -bench 'BenchmarkGram|BenchmarkEigenSym' -benchmem ./internal/kernel ./internal/linalg | $(GO) run ./cmd/benchjson -o BENCH_spectral.json

# Regenerate the golden experiment outputs after an intentional change to
# a measure, engine, or renderer; commit the resulting diff.
golden:
	$(GO) test ./cmd/tsbench -run TestGoldenExperimentOutputs -update-golden

# End-to-end cancellation smoke test: build the real tsbench binary, run
# `-timeout 2s all`, and assert the graceful-shutdown contract (exit code
# 3, structural stderr report, only fully-completed tables on stdout).
smoke:
	$(GO) test ./cmd/tsbench -run TestSmokeCancellation -smoke -v

# CI entry point: everything that must be green before merging.
check: build vet test race check-race oracle
