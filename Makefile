GO ?= go

.PHONY: build test vet race check-race oracle oracle-long bench bench-compare golden smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Alias kept for muscle memory; check-race is the single race gate.
race: check-race

# Race-check the concurrency-heavy packages: the parallel dispatcher, the
# pruned search engine and the evaluation layer driving it, the spectral
# engine's tiled dispatch (the parallel Gram fill/mirroring in
# internal/kernel and the parallel embedding fits), the wavefront DP
# scheduler plus the batched panel kernels, the STOMP matrix-profile
# engine's block dispatch, the subsequence layer, the index builders (now
# including the parallel VP-tree build), the corpus snapshot builder plus
# its LRU cache, the ANN engine's parallel embed/build plus its
# shared-index concurrent Queriers, and the multivariate layer's parallel
# 1-NN classifier plus its shared row/channel scratch pools.
check-race:
	GOMAXPROCS=4 $(GO) test -race ./internal/par ./internal/eval ./internal/search ./internal/kernel ./internal/embedding ./internal/elastic ./internal/lockstep ./internal/profile ./internal/index ./internal/subsequence ./internal/corpus ./internal/ann ./internal/multivariate

# Differential oracle harness under the race detector: every measure
# against its reference implementation plus both search engines against
# exhaustive matrix evaluation, on the fixed default seed schedule.
oracle:
	$(GO) test -race -run Oracle ./internal/oracle

# Extended fuzzing campaign (32 seeds); slower, run before releases.
oracle-long:
	$(GO) test ./internal/oracle -run Oracle -oracle.long

# Smoke-run every benchmark once, then measure the grid tuning benchmarks
# (per-candidate loop vs grid engine), the spectral engine, the hot-loop
# kernels (scalar DP vs wavefront, per-pair vs batched panel), and the
# matrix-profile engine (STOMP vs the STAMP baseline) with allocation
# counts, recording each set via cmd/benchjson. Every set runs -count=3;
# benchjson keeps each benchmark's minimum ns/op across the repetitions,
# since co-tenant noise on shared machines only ever adds time.
bench:
	$(GO) test -bench . -benchtime 1x -benchmem ./...
	$(GO) test -bench BenchmarkGridTuning -benchtime 5x -count=3 -benchmem ./internal/search | $(GO) run ./cmd/benchjson -o BENCH_tuning.json
	$(GO) test -bench 'BenchmarkGram|BenchmarkEigenSym' -count=3 -benchmem ./internal/kernel ./internal/linalg | $(GO) run ./cmd/benchjson -o BENCH_spectral.json
	$(GO) test -bench BenchmarkHotloops -count=3 -benchmem ./internal/elastic ./internal/lockstep | $(GO) run ./cmd/benchjson -o BENCH_hotloops.json
	$(GO) test -bench BenchmarkProfile -count=3 -benchmem ./internal/profile | $(GO) run ./cmd/benchjson -o BENCH_profile.json
	$(GO) test -bench BenchmarkSnapshot -count=3 -benchmem ./internal/corpus | $(GO) run ./cmd/benchjson -o BENCH_snapshot.json
	$(GO) test -bench BenchmarkANN -benchtime 10x -count=3 -benchmem ./internal/ann | $(GO) run ./cmd/benchjson -o BENCH_index.json
	$(GO) test -bench BenchmarkMultivariate -count=3 -benchmem ./internal/multivariate | $(GO) run ./cmd/benchjson -o BENCH_multivariate.json

# Re-measure every committed BENCH_* baseline and fail (benchstat-style)
# when any benchmark's ns/op regressed by more than 35%. Run after changes
# to the hot loops or engines; `make bench` refreshes the baselines when a
# change is intentional. The threshold reflects the measured noise floor
# of these multi-second, low-iteration benchmarks on shared machines:
# identical code has been observed drifting -20% to +30% between runs
# (even taking the minimum of three repetitions) as co-tenant load
# wanders, so tighter gates flake, while real regressions — a lost fast
# path is typically 1.5-20x, i.e. +50% and far beyond — still trip 35%
# comfortably. Too slow (and too machine-dependent) for the default
# `make check` gate — run it explicitly on perf-sensitive PRs.
bench-compare:
	$(GO) test -bench BenchmarkGridTuning -benchtime 5x -count=3 -benchmem ./internal/search | $(GO) run ./cmd/benchjson -o /tmp/bench_new_tuning.json
	$(GO) run ./cmd/benchcompare -old BENCH_tuning.json -new /tmp/bench_new_tuning.json -threshold 35
	$(GO) test -bench 'BenchmarkGram|BenchmarkEigenSym' -count=3 -benchmem ./internal/kernel ./internal/linalg | $(GO) run ./cmd/benchjson -o /tmp/bench_new_spectral.json
	$(GO) run ./cmd/benchcompare -old BENCH_spectral.json -new /tmp/bench_new_spectral.json -threshold 35
	$(GO) test -bench BenchmarkHotloops -count=3 -benchmem ./internal/elastic ./internal/lockstep | $(GO) run ./cmd/benchjson -o /tmp/bench_new_hotloops.json
	$(GO) run ./cmd/benchcompare -old BENCH_hotloops.json -new /tmp/bench_new_hotloops.json -threshold 35
	$(GO) test -bench BenchmarkProfile -count=3 -benchmem ./internal/profile | $(GO) run ./cmd/benchjson -o /tmp/bench_new_profile.json
	$(GO) run ./cmd/benchcompare -old BENCH_profile.json -new /tmp/bench_new_profile.json -threshold 35
	$(GO) test -bench BenchmarkSnapshot -count=3 -benchmem ./internal/corpus | $(GO) run ./cmd/benchjson -o /tmp/bench_new_snapshot.json
	$(GO) run ./cmd/benchcompare -old BENCH_snapshot.json -new /tmp/bench_new_snapshot.json -threshold 35
	$(GO) test -bench BenchmarkANN -benchtime 10x -count=3 -benchmem ./internal/ann | $(GO) run ./cmd/benchjson -o /tmp/bench_new_index.json
	$(GO) run ./cmd/benchcompare -old BENCH_index.json -new /tmp/bench_new_index.json -threshold 35
	$(GO) test -bench BenchmarkMultivariate -count=3 -benchmem ./internal/multivariate | $(GO) run ./cmd/benchjson -o /tmp/bench_new_multivariate.json
	$(GO) run ./cmd/benchcompare -old BENCH_multivariate.json -new /tmp/bench_new_multivariate.json -threshold 35

# Regenerate the golden experiment outputs after an intentional change to
# a measure, engine, or renderer; commit the resulting diff.
golden:
	$(GO) test ./cmd/tsbench -run TestGoldenExperimentOutputs -update-golden

# End-to-end cancellation smoke test: build the real tsbench binary, run
# `-timeout 2s all`, and assert the graceful-shutdown contract (exit code
# 3, structural stderr report, only fully-completed tables on stdout).
smoke:
	$(GO) test ./cmd/tsbench -run TestSmokeCancellation -smoke -v

# CI entry point: everything that must be green before merging. Perf-
# sensitive changes should additionally run `make bench-compare` against
# the committed BENCH_* baselines (see the bench-compare target above).
check: build vet test check-race oracle
