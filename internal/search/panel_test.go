package search

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lockstep"
	"repro/internal/measure"
)

// Exactness tests for the PanelEvaluator dispatch in Querier.search: the
// chunked panel scan with best-so-far cutoffs must reproduce brute-force
// per-pair evaluation bitwise, including lowest-index tie-breaking.

func panelMeasures() []measure.Measure {
	return []measure.Measure{
		lockstep.Euclidean(), lockstep.Manhattan(), lockstep.Chebyshev(),
		lockstep.Lorentzian(), lockstep.SquaredEuclidean(), lockstep.Cosine(),
	}
}

func panelTestData(rng *rand.Rand, n, m int) [][]float64 {
	series := make([][]float64, n)
	for i := range series {
		series[i] = make([]float64, m)
		for j := range series[i] {
			series[i][j] = rng.NormFloat64()
		}
	}
	// Duplicates force distance ties, exercising lowest-index resolution.
	if n > 7 {
		series[5] = append([]float64(nil), series[1]...)
		series[7] = append([]float64(nil), series[1]...)
	}
	return series
}

// bruteForce1NN is the exhaustive reference: sanitize every Distance,
// argmin with strict < (lowest index wins ties), skip for leave-one-out.
func bruteForce1NN(m measure.Measure, x []float64, refs [][]float64, skip int) (int, float64) {
	best, bestDist := -1, math.Inf(1)
	for j, r := range refs {
		if j == skip {
			continue
		}
		d := measure.Sanitize(m.Distance(x, r))
		if best == -1 || d < bestDist {
			best, bestDist = j, d
		}
	}
	return best, bestDist
}

func TestPanelSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	refs := panelTestData(rng, 45, 70) // not a multiple of panelChunk
	queries := panelTestData(rng, 9, 70)
	queries[3] = append([]float64(nil), refs[12]...) // zero-distance hit
	for _, m := range panelMeasures() {
		res := OneNN(m, queries, refs)
		if got := res.Stats.Pairs; got != int64(len(queries)*len(refs)) {
			t.Errorf("%s: Pairs = %d, want %d", m.Name(), got, len(queries)*len(refs))
		}
		for i, q := range queries {
			wi, wd := bruteForce1NN(m, q, refs, -1)
			if res.Indices[i] != wi || math.Float64bits(res.Distances[i]) != math.Float64bits(wd) {
				t.Fatalf("%s query %d: got (%d, %v), want (%d, %v)",
					m.Name(), i, res.Indices[i], res.Distances[i], wi, wd)
			}
		}
	}
}

func TestPanelLeaveOneOutMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	train := panelTestData(rng, 33, 64)
	for _, m := range panelMeasures() {
		res := LeaveOneOut(m, train)
		if got := res.Stats.Pairs; got != int64(len(train)*(len(train)-1)) {
			t.Errorf("%s: Pairs = %d, want %d", m.Name(), got, len(train)*(len(train)-1))
		}
		for i, q := range train {
			wi, wd := bruteForce1NN(m, q, train, i)
			if res.Indices[i] != wi || math.Float64bits(res.Distances[i]) != math.Float64bits(wd) {
				t.Fatalf("%s row %d: got (%d, %v), want (%d, %v)",
					m.Name(), i, res.Indices[i], res.Distances[i], wi, wd)
			}
		}
	}
}

// TestPanelSearchNaNData: NaN distances sanitize to +Inf and rank last on
// the panel path exactly as on the per-pair path.
func TestPanelSearchNaNData(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	refs := panelTestData(rng, 10, 40)
	refs[0][3] = math.NaN() // poisons every distance against ref 0
	q := panelTestData(rng, 1, 40)[0]
	for _, m := range panelMeasures() {
		res := OneNN(m, [][]float64{q}, refs)
		wi, wd := bruteForce1NN(m, q, refs, -1)
		if res.Indices[0] != wi || math.Float64bits(res.Distances[0]) != math.Float64bits(wd) {
			t.Fatalf("%s: got (%d, %v), want (%d, %v)", m.Name(), res.Indices[0], res.Distances[0], wi, wd)
		}
	}
}
