// Package search implements the pruned exact 1-NN engine behind the
// paper's evaluation: instead of materializing the full test-by-train
// dissimilarity matrix, each query scans the references with a best-so-far
// cutoff, rejecting candidates through the measure's lower-bound cascade
// (measure.LowerBounded), abandoning surviving distance computations early
// (measure.EarlyAbandoning), and reusing per-series state
// (measure.Stateful). For exactly symmetric measures the leave-one-out
// variant evaluates each unordered pair once, halving the train-by-train
// work of supervised tuning.
//
// The engine is exact: predicted neighbors — including ties, which resolve
// to the lowest reference index — are identical to exhaustive matrix
// evaluation. Lower bounds only skip candidates that provably cannot beat
// the incumbent, and abandoned computations only certify d >= cutoff.
//
// Every entry point has a context-aware variant (OneNNCtx, LeaveOneOutCtx,
// LeaveOneOutGridCtx) that observes cancellation at the dispatch chunk
// granularity of internal/par and returns ctx.Err() together with whatever
// partial per-query results were completed; the plain variants are thin
// wrappers over a background context and remain bitwise-identical to their
// pre-context behavior.
package search

import (
	"context"
	"math"

	"repro/internal/measure"
	"repro/internal/par"
)

// Stats counts the work performed by a search. In the symmetric
// leave-one-out path each unordered pair counts once; everywhere else a
// pair is one query-candidate combination.
type Stats struct {
	Pairs    int64 // candidate pairs examined
	LBPruned int64 // pairs rejected by the lower-bound cascade alone
	PairLB   int64 // pairs rejected by a grid sweep's exact pair-matrix bound
	FullDist int64 // full distance computations started (incl. abandoned)
}

func (s *Stats) add(o Stats) {
	s.Pairs += o.Pairs
	s.LBPruned += o.LBPruned
	s.PairLB += o.PairLB
	s.FullDist += o.FullDist
}

// Result is the outcome of OneNN or LeaveOneOut: per-query nearest
// reference indices (-1 when there are no candidates) and their sanitized
// distances, plus aggregate work counters. When the context-aware variants
// return an error, rows whose chunk never ran hold the zero values (index
// 0, distance 0) — the caller must treat the whole Result as partial.
type Result struct {
	Indices   []int
	Distances []float64
	Stats     Stats
}

// Index holds a reference set prepared for repeated pruned 1-NN queries:
// lower-bound contexts (envelopes) or stateful preparations are computed
// once per reference. An Index is immutable after construction and safe
// for concurrent use through per-goroutine Queriers.
type Index struct {
	m     measure.Measure
	refs  [][]float64
	lb    measure.LowerBounded
	ea    measure.EarlyAbandoning
	sm    measure.Stateful
	pe    measure.PanelEvaluator
	rctx  []measure.BoundContext
	rprep []any
	// prefilled marks rctx/rprep as adopted from a corpus.Snapshot: already
	// filled, owned by the snapshot, and strictly read-only — the grid
	// engine's setup pool must skip them and its envelope arena must never
	// rebind them.
	prefilled bool
}

// panelChunk is the number of candidates handed to a PanelEvaluator per
// call in the query scan: large enough to amortize the call and fill the
// engine's 4-lane groups, small enough that the shared best-so-far cutoff
// refreshes frequently.
const panelChunk = 32

// NewIndex prepares refs for searching under m. Per-reference state is
// computed in parallel. When the measure is LowerBounded the cascade path
// is used; otherwise a Stateful measure's prepared fast path; otherwise
// plain Distance calls (with early abandoning when available).
func NewIndex(m measure.Measure, refs [][]float64) *Index {
	ix, _ := NewIndexCtx(context.Background(), m, refs)
	return ix
}

// NewIndexCtx is NewIndex honoring cancellation during the parallel
// per-reference preparation; on a non-nil error the index is unusable.
func NewIndexCtx(ctx context.Context, m measure.Measure, refs [][]float64) (*Index, error) {
	ix := &Index{m: m, refs: refs}
	if ea, ok := m.(measure.EarlyAbandoning); ok {
		ix.ea = ea
	}
	if pe, ok := m.(measure.PanelEvaluator); ok {
		ix.pe = pe
	}
	if lb, ok := m.(measure.LowerBounded); ok {
		ix.lb = lb
		ix.rctx = make([]measure.BoundContext, len(refs))
		if err := par.ForCtx(ctx, len(refs), par.Workers(len(refs)), func(i int) {
			c := lb.NewBoundContext(len(refs[i]))
			c.Fill(refs[i])
			ix.rctx[i] = c
		}); err != nil {
			return nil, err
		}
	} else if sm, ok := m.(measure.Stateful); ok {
		ix.sm = sm
		ix.rprep = make([]any, len(refs))
		if err := par.ForCtx(ctx, len(refs), par.Workers(len(refs)), func(i int) {
			ix.rprep[i] = sm.Prepare(refs[i])
		}); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// Querier runs queries against an Index, owning the per-worker reusable
// state (the query's bound context and work counters). A Querier is NOT
// safe for concurrent use; create one per goroutine via Index.Querier.
type Querier struct {
	ix   *Index
	qctx measure.BoundContext
	pout []float64 // panel output scratch (PanelEvaluator path)
	// Stats accumulates the work performed by this Querier's queries.
	Stats Stats
}

// Querier returns a fresh query handle for the index.
func (ix *Index) Querier() *Querier {
	q := &Querier{ix: ix}
	if ix.lb != nil && len(ix.refs) > 0 {
		q.qctx = ix.lb.NewBoundContext(len(ix.refs[0]))
	}
	if ix.lb == nil && ix.pe != nil {
		q.pout = make([]float64, panelChunk)
	}
	return q
}

// Query returns the index of the nearest reference to x and its sanitized
// distance, or (-1, +Inf) when the index is empty. Ties resolve to the
// lowest reference index, exactly as exhaustive evaluation does. Steady
// state is allocation-free for LowerBounded measures.
func (q *Querier) Query(x []float64) (best int, dist float64) {
	return q.search(x, -1)
}

// search scans the references, skipping index skip (for leave-one-out).
func (q *Querier) search(x []float64, skip int) (int, float64) {
	ix := q.ix
	best, bestDist := -1, math.Inf(1)
	if len(ix.refs) == 0 {
		return best, bestDist
	}
	switch {
	case ix.lb != nil:
		q.qctx.Fill(x)
		for j, r := range ix.refs {
			if j == skip {
				continue
			}
			q.Stats.Pairs++
			if best >= 0 {
				if lbv := ix.lb.LowerBound(x, r, q.qctx, ix.rctx[j], bestDist); lbv >= bestDist {
					q.Stats.LBPruned++
					continue
				}
			}
			q.Stats.FullDist++
			var d float64
			if ix.ea != nil {
				d = measure.Sanitize(ix.ea.DistanceUpTo(x, r, bestDist))
			} else {
				d = measure.Sanitize(ix.m.Distance(x, r))
			}
			if best == -1 || d < bestDist {
				best, bestDist = j, d
			}
		}
	case ix.pe != nil:
		// Batched panel scan: candidates are evaluated panelChunk at a time
		// with the best-so-far at chunk entry as the shared cutoff. Results
		// stay exact: a non-exact (abandoned) out value is >= the chunk
		// cutoff >= the current incumbent, so it fails the strict update,
		// while any candidate that could improve the incumbent has true
		// distance < the entry cutoff and therefore an exact out value.
		// Ascending order and strict < reproduce lowest-index tie-breaking.
		for start := 0; start < len(ix.refs); start += panelChunk {
			end := start + panelChunk
			if end > len(ix.refs) {
				end = len(ix.refs)
			}
			chunk := ix.refs[start:end]
			counted := int64(len(chunk))
			if skip >= start && skip < end {
				counted--
			}
			q.Stats.Pairs += counted
			q.Stats.FullDist += counted
			ok := false
			if best >= 0 {
				ok = ix.pe.PanelDistancesUpTo(x, chunk, bestDist, q.pout)
			} else {
				ok = ix.pe.PanelDistances(x, chunk, q.pout)
			}
			if !ok {
				// Declined (ragged chunk): per-pair fallback, same results.
				for j := start; j < end; j++ {
					if j == skip {
						continue
					}
					var d float64
					if ix.ea != nil && best >= 0 {
						d = measure.Sanitize(ix.ea.DistanceUpTo(x, ix.refs[j], bestDist))
					} else {
						d = measure.Sanitize(ix.m.Distance(x, ix.refs[j]))
					}
					if best == -1 || d < bestDist {
						best, bestDist = j, d
					}
				}
				continue
			}
			for j := start; j < end; j++ {
				if j == skip {
					continue
				}
				d := measure.Sanitize(q.pout[j-start])
				if best == -1 || d < bestDist {
					best, bestDist = j, d
				}
			}
		}
	case ix.sm != nil:
		px := ix.sm.Prepare(x)
		for j := range ix.refs {
			if j == skip {
				continue
			}
			q.Stats.Pairs++
			q.Stats.FullDist++
			d := measure.Sanitize(ix.sm.PreparedDistance(px, ix.rprep[j]))
			if best == -1 || d < bestDist {
				best, bestDist = j, d
			}
		}
	default:
		for j, r := range ix.refs {
			if j == skip {
				continue
			}
			q.Stats.Pairs++
			q.Stats.FullDist++
			var d float64
			if ix.ea != nil {
				d = measure.Sanitize(ix.ea.DistanceUpTo(x, r, bestDist))
			} else {
				d = measure.Sanitize(ix.m.Distance(x, r))
			}
			if best == -1 || d < bestDist {
				best, bestDist = j, d
			}
		}
	}
	return best, bestDist
}

// OneNN finds, in parallel, the nearest reference of every query — the
// matrix-free replacement for eval.Matrix + argmin. Neighbors are
// identical to exhaustive evaluation, including tie-breaking.
func OneNN(m measure.Measure, queries, refs [][]float64) Result {
	res, _ := OneNNCtx(context.Background(), m, queries, refs)
	return res
}

// OneNNCtx is OneNN honoring cancellation: a cancelled search stops within
// one dispatch chunk per worker and returns ctx.Err() alongside the
// partial Result.
func OneNNCtx(ctx context.Context, m measure.Measure, queries, refs [][]float64) (Result, error) {
	ix, err := NewIndexCtx(ctx, m, refs)
	if err != nil {
		return Result{}, err
	}
	return searchAllCtx(ctx, ix, queries, false)
}

// searchAllCtx runs per-query searches across workers, each with its own
// Querier; skipDiag excludes reference i from query i (queries and refs
// must then be the same slice).
func searchAllCtx(ctx context.Context, ix *Index, queries [][]float64, skipDiag bool) (Result, error) {
	n := len(queries)
	res := Result{Indices: make([]int, n), Distances: make([]float64, n)}
	workers := par.Workers(n)
	queriers := make([]*Querier, workers)
	err := par.ForShardCtx(ctx, n, workers, func(w, i int) {
		q := queriers[w]
		if q == nil {
			q = ix.Querier()
			queriers[w] = q
		}
		skip := -1
		if skipDiag {
			skip = i
		}
		res.Indices[i], res.Distances[i] = q.search(queries[i], skip)
	})
	for _, q := range queriers {
		if q != nil {
			res.Stats.add(q.Stats)
		}
	}
	return res, err
}

// LeaveOneOut finds each training series' nearest other training series —
// the matrix-free criterion of supervised parameter tuning. Exactly
// symmetric measures take the halved path evaluating each unordered pair
// once; results are identical to exhaustive evaluation either way.
func LeaveOneOut(m measure.Measure, train [][]float64) Result {
	res, _ := LeaveOneOutCtx(context.Background(), m, train)
	return res
}

// LeaveOneOutCtx is LeaveOneOut honoring cancellation; see OneNNCtx for
// the partial-result contract.
func LeaveOneOutCtx(ctx context.Context, m measure.Measure, train [][]float64) (Result, error) {
	if halvedEligible(m) {
		return looHalvedCtx(ctx, m, train)
	}
	ix, err := NewIndexCtx(ctx, m, train)
	if err != nil {
		return Result{}, err
	}
	return searchAllCtx(ctx, ix, train, true)
}

// halvedEligible reports whether leave-one-out evaluation of m takes the
// symmetric pair-halving path: exactly symmetric, and either lower-bounded
// (the cascade needs per-pair cutoffs) or not stateful (whose prepared fast
// path the full scan exploits better than halving would).
func halvedEligible(m measure.Measure) bool {
	_, stateful := m.(measure.Stateful)
	_, bounded := m.(measure.LowerBounded)
	return measure.IsSymmetric(m) && (bounded || !stateful)
}

// looHalvedCtx evaluates each unordered training pair once. Every worker
// keeps private best arrays; pair (i, j) is examined with the cutoff
// max(best_i, best_j), so a pruned or abandoned computation certifies that
// neither row can improve. Within a worker, contributions to any row
// arrive in increasing candidate order (rows are dispatched in increasing
// order and row i's own scan ascends), and the final cross-worker merge
// takes the lexicographic (distance, index) minimum — together this
// reproduces exhaustive first-lowest-index tie-breaking exactly.
func looHalvedCtx(ctx context.Context, m measure.Measure, train [][]float64) (Result, error) {
	return looHalvedPrepared(ctx, m, train, nil)
}

// looHalvedPrepared is looHalvedCtx over prebuilt reference bound contexts
// (e.g. a corpus snapshot's); nil ctxs fall back to the inline fill. The
// contexts are only ever read by the scan — never Fill'd or rebound — so
// sharing them across workers and across calls is safe.
func looHalvedPrepared(ctx context.Context, m measure.Measure, train [][]float64, ctxs []measure.BoundContext) (Result, error) {
	n := len(train)
	lb, _ := m.(measure.LowerBounded)
	ea, _ := m.(measure.EarlyAbandoning)
	if lb != nil && ctxs == nil {
		ctxs = make([]measure.BoundContext, n)
		if err := par.ForCtx(ctx, n, par.Workers(n), func(i int) {
			c := lb.NewBoundContext(len(train[i]))
			c.Fill(train[i])
			ctxs[i] = c
		}); err != nil {
			return Result{}, err
		}
	}
	workers := par.Workers(n)
	type local struct {
		dist  []float64
		idx   []int
		stats Stats
	}
	locals := make([]*local, workers)
	err := par.ForShardCtx(ctx, n, workers, func(w, i int) {
		l := locals[w]
		if l == nil {
			l = &local{dist: make([]float64, n), idx: make([]int, n)}
			for k := range l.dist {
				l.dist[k] = math.Inf(1)
				l.idx[k] = -1
			}
			locals[w] = l
		}
		xi := train[i]
		for j := i + 1; j < n; j++ {
			cutoff := l.dist[i]
			if l.dist[j] > cutoff {
				cutoff = l.dist[j]
			}
			l.stats.Pairs++
			// With an infinite cutoff nothing can be pruned or abandoned
			// (and rows without an incumbent must record their first
			// candidate exactly), so skip the bound.
			finite := !math.IsInf(cutoff, 1)
			if lb != nil && finite {
				if lbv := lb.LowerBound(xi, train[j], ctxs[i], ctxs[j], cutoff); lbv >= cutoff {
					l.stats.LBPruned++
					continue
				}
			}
			l.stats.FullDist++
			var d float64
			if ea != nil {
				d = measure.Sanitize(ea.DistanceUpTo(xi, train[j], cutoff))
			} else {
				d = measure.Sanitize(m.Distance(xi, train[j]))
			}
			// d is exact whenever it is recorded: an abandoned value is
			// >= cutoff >= both incumbents, failing both strict updates,
			// and a missing incumbent forces an infinite cutoff (exact).
			if l.idx[i] == -1 || d < l.dist[i] {
				l.dist[i], l.idx[i] = d, j
			}
			if l.idx[j] == -1 || d < l.dist[j] {
				l.dist[j], l.idx[j] = d, i
			}
		}
	})
	res := Result{Indices: make([]int, n), Distances: make([]float64, n)}
	for i := 0; i < n; i++ {
		bd, bi := math.Inf(1), -1
		for _, l := range locals {
			if l == nil || l.idx[i] == -1 {
				continue
			}
			if bi == -1 || l.dist[i] < bd || (l.dist[i] == bd && l.idx[i] < bi) {
				bd, bi = l.dist[i], l.idx[i]
			}
		}
		res.Indices[i], res.Distances[i] = bi, bd
	}
	for _, l := range locals {
		if l != nil {
			res.Stats.add(l.stats)
		}
	}
	return res, err
}
