package search

import (
	"context"

	"repro/internal/corpus"
	"repro/internal/measure"
	"repro/internal/par"
)

// This file wires the search engine to the build-once prepared-state layer
// of internal/corpus: every entry point gains a *Snapshot variant that
// serves per-reference state (filled bound contexts, Stateful preparations,
// GridStateful candidate states) from an immutable snapshot instead of
// recomputing it per call. A nil snapshot — or one built over different
// series — falls back to the inline path, so results are bitwise identical
// either way: the snapshot changes where state comes from, never what is
// computed from it.

// NewIndexSnapshot is NewIndexSnapshotCtx over a background context.
func NewIndexSnapshot(m measure.Measure, refs [][]float64, snap *corpus.Snapshot) *Index {
	ix, _ := NewIndexSnapshotCtx(context.Background(), m, refs, snap)
	return ix
}

// NewIndexSnapshotCtx builds a query index whose per-reference state comes
// from the snapshot when it covers refs and holds state for m; anything
// missing is prepared inline exactly as NewIndexCtx would.
func NewIndexSnapshotCtx(ctx context.Context, m measure.Measure, refs [][]float64, snap *corpus.Snapshot) (*Index, error) {
	if !snap.Covers(refs) {
		return NewIndexCtx(ctx, m, refs)
	}
	ix := &Index{m: m, refs: refs}
	if ea, ok := m.(measure.EarlyAbandoning); ok {
		ix.ea = ea
	}
	if pe, ok := m.(measure.PanelEvaluator); ok {
		ix.pe = pe
	}
	if lb, ok := m.(measure.LowerBounded); ok {
		ix.lb = lb
		if ctxs := snap.BoundContexts(m); ctxs != nil {
			ix.rctx = ctxs
			ix.prefilled = true
			return ix, nil
		}
		ix.rctx = make([]measure.BoundContext, len(refs))
		if err := par.ForCtx(ctx, len(refs), par.Workers(len(refs)), func(i int) {
			c := lb.NewBoundContext(len(refs[i]))
			c.Fill(refs[i])
			ix.rctx[i] = c
		}); err != nil {
			return nil, err
		}
	} else if sm, ok := m.(measure.Stateful); ok {
		ix.sm = sm
		prep, err := snap.PreparedStates(ctx, m)
		if err != nil {
			return nil, err
		}
		if prep != nil {
			ix.rprep = prep
			ix.prefilled = true
			return ix, nil
		}
		ix.rprep = make([]any, len(refs))
		if err := par.ForCtx(ctx, len(refs), par.Workers(len(refs)), func(i int) {
			ix.rprep[i] = sm.Prepare(refs[i])
		}); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// OneNNSnapshot is OneNNSnapshotCtx over a background context.
func OneNNSnapshot(m measure.Measure, queries, refs [][]float64, snap *corpus.Snapshot) Result {
	res, _ := OneNNSnapshotCtx(context.Background(), m, queries, refs, snap)
	return res
}

// OneNNSnapshotCtx is OneNNCtx serving per-reference state from the
// snapshot: neighbors, distances, and tie-breaks are bitwise identical to
// the inline path; only the preparation work differs.
func OneNNSnapshotCtx(ctx context.Context, m measure.Measure, queries, refs [][]float64, snap *corpus.Snapshot) (Result, error) {
	ix, err := NewIndexSnapshotCtx(ctx, m, refs, snap)
	if err != nil {
		return Result{}, err
	}
	return searchAllCtx(ctx, ix, queries, false)
}

// LeaveOneOutSnapshot is LeaveOneOutSnapshotCtx over a background context.
func LeaveOneOutSnapshot(m measure.Measure, train [][]float64, snap *corpus.Snapshot) Result {
	res, _ := LeaveOneOutSnapshotCtx(context.Background(), m, train, snap)
	return res
}

// LeaveOneOutSnapshotCtx is LeaveOneOutCtx serving per-series state from
// the snapshot; see OneNNSnapshotCtx for the exactness contract.
func LeaveOneOutSnapshotCtx(ctx context.Context, m measure.Measure, train [][]float64, snap *corpus.Snapshot) (Result, error) {
	if !snap.Covers(train) {
		return LeaveOneOutCtx(ctx, m, train)
	}
	if halvedEligible(m) {
		var ctxs []measure.BoundContext
		if _, ok := m.(measure.LowerBounded); ok {
			ctxs = snap.BoundContexts(m)
		}
		return looHalvedPrepared(ctx, m, train, ctxs)
	}
	ix, err := NewIndexSnapshotCtx(ctx, m, train, snap)
	if err != nil {
		return Result{}, err
	}
	return searchAllCtx(ctx, ix, train, true)
}

// LeaveOneOutGridSnapshot is LeaveOneOutGridSnapshotCtx over a background
// context.
func LeaveOneOutGridSnapshot(cands []measure.Measure, train [][]float64, snap *corpus.Snapshot) GridResult {
	res, _ := LeaveOneOutGridSnapshotCtx(context.Background(), cands, train, snap)
	return res
}

// LeaveOneOutGridSnapshotCtx is LeaveOneOutGridCtx serving family cores,
// prepared states, bound contexts, and finiteness flags from the snapshot.
// Per-candidate results are bitwise identical to the inline engine.
func LeaveOneOutGridSnapshotCtx(ctx context.Context, cands []measure.Measure, train [][]float64, snap *corpus.Snapshot) (GridResult, error) {
	return NewTuneIndexSnapshot(cands, train, snap).EvaluateCtx(ctx)
}

// NewTuneIndexSnapshot is NewTuneIndex attaching a corpus snapshot as the
// source of per-series state. A snapshot not covering train is ignored.
func NewTuneIndexSnapshot(cands []measure.Measure, train [][]float64, snap *corpus.Snapshot) *TuneIndex {
	ti := NewTuneIndex(cands, train)
	if snap.Covers(train) {
		ti.snap = snap
	}
	return ti
}
