package search_test

import (
	"context"
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
	"repro/internal/measure"
	"repro/internal/search"
)

// cancellingMeasure counts Distance calls and cancels the run's context
// once the count reaches trigger, letting tests observe how much work runs
// after cancellation.
type cancellingMeasure struct {
	calls   *atomic.Int64
	trigger int64
	cancel  context.CancelFunc
}

func (c cancellingMeasure) Name() string { return "cancelling" }

func (c cancellingMeasure) Distance(x, y []float64) float64 {
	if c.calls.Add(1) == c.trigger {
		c.cancel()
	}
	s := 0.0
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func cancelTrain() [][]float64 {
	d := dataset.GenerateArchive(dataset.ArchiveOptions{
		Seed: 3, Count: 1, MaxLength: 24, MaxTrain: 40, MaxTest: 4,
	})[0]
	return d.Train
}

func TestOneNNCtxPreCancelled(t *testing.T) {
	train := cancelTrain()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	m := cancellingMeasure{calls: &calls, trigger: -1, cancel: func() {}}
	if _, err := search.OneNNCtx(ctx, m, train, train); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := calls.Load(); n != 0 {
		t.Errorf("%d distance calls ran under a pre-cancelled context", n)
	}
}

// TestLeaveOneOutGridCtxCancelsPromptly cancels mid-scan from inside the
// measure itself and asserts the run stops within dispatch-chunk
// granularity: the total distance-call count stays well below the full
// sweep's, and the error is context.Canceled.
func TestLeaveOneOutGridCtxCancelsPromptly(t *testing.T) {
	train := cancelTrain()
	n := int64(len(train))
	full := 3 * n * (n - 1) // three candidates, all ordered pairs each

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	cands := []measure.Measure{
		cancellingMeasure{calls: &calls, trigger: 5, cancel: cancel},
		cancellingMeasure{calls: &calls, trigger: -1, cancel: func() {}},
		cancellingMeasure{calls: &calls, trigger: -1, cancel: func() {}},
	}
	_, err := search.LeaveOneOutGridCtx(ctx, cands, train)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := calls.Load(); got >= full/2 {
		t.Errorf("cancelled grid sweep ran %d of %d distance calls; cancellation is not chunk-prompt", got, full)
	}
}

// TestLeaveOneOutCtxCancelsPromptly is the single-candidate analogue.
func TestLeaveOneOutCtxCancelsPromptly(t *testing.T) {
	train := cancelTrain()
	n := int64(len(train))
	full := n * (n - 1)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	m := cancellingMeasure{calls: &calls, trigger: 5, cancel: cancel}
	_, err := search.LeaveOneOutCtx(ctx, m, train)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := calls.Load(); got >= full/2 {
		t.Errorf("cancelled leave-one-out ran %d of %d distance calls", got, full)
	}
}

// TestGridCtxUncancelledMatchesPlain pins the wrapper contract: an
// uncancelled Ctx run is bit-identical to the plain call.
func TestGridCtxUncancelledMatchesPlain(t *testing.T) {
	train := cancelTrain()
	var calls atomic.Int64
	cands := []measure.Measure{
		cancellingMeasure{calls: &calls, trigger: -1, cancel: func() {}},
		measure.New("ed", func(x, y []float64) float64 {
			s := 0.0
			for i := range x {
				d := x[i] - y[i]
				s += d * d
			}
			return math.Sqrt(s)
		}),
	}
	want := search.LeaveOneOutGrid(cands, train)
	got, err := search.LeaveOneOutGridCtx(context.Background(), cands, train)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want.PerCandidate {
		w, g := want.PerCandidate[k], got.PerCandidate[k]
		for i := range w.Indices {
			if g.Indices[i] != w.Indices[i] || g.Distances[i] != w.Distances[i] {
				t.Fatalf("candidate %d row %d: ctx path (%d, %v) differs from plain (%d, %v)",
					k, i, g.Indices[i], g.Distances[i], w.Indices[i], w.Distances[i])
			}
		}
	}
}
