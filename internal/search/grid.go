package search

import (
	"context"
	"math"
	"sync"

	"time"

	"repro/internal/corpus"
	"repro/internal/measure"
	"repro/internal/par"
)

// This file implements the grid tuning engine: leave-one-out 1-NN
// evaluation of an entire parameter grid in one pass, instead of one
// independent LeaveOneOut per candidate. Three optimizations stack:
//
//  1. Shared preparation. Candidates declaring measure.GridStateful (or
//     measure.PreparationSharing) form families whose per-series state is
//     computed once for the whole sweep — e.g. one FFT spectrum and self
//     cross-correlation per series across all SINK gammas. Candidates
//     declaring measure.BoundSharing (DTW bands) rebind one arena of
//     envelope buffers across the sweep instead of allocating per
//     candidate.
//
//  2. Warm-start pruning. Candidates declaring measure.NestedBounds are
//     linked to a dominating candidate evaluated earlier (e.g. the
//     next-narrower DTW band): that candidate's exact per-row 1-NN
//     distances are upper bounds here, so each row's best-so-far cutoff is
//     primed just above the bound and the EarlyAbandoning/LowerBounded
//     cascade prunes from the first pair. Primed rows only ever record
//     exact distances (a value is recorded only when it beats the row's
//     cutoff, which certifies the computation was not abandoned), and a
//     row that ends without a neighbor — possible only when the declared
//     bound is unachievable, e.g. non-finite inputs breaking DP
//     monotonicity — is repaired by an exact cold scan. Results are
//     therefore bit-identical to the per-candidate engine regardless of
//     the declarations.
//
//     The dual bound: when the grid contains a bottom candidate — one
//     dominated by every other, e.g. the full DTW window or LCSS at the
//     loosest band and threshold — it is evaluated first as a complete
//     exact pair matrix. By domination, entry (i, j) lower-bounds every
//     other candidate's distance on that pair, a bound far tighter than
//     any envelope at wide bands and available even for measures with no
//     lower bounds of their own (LCSS, EDR). The matrix prune applies only
//     to pairs of finite series, the precondition of the NestedBounds
//     contract, so non-finite inputs cannot corrupt it.
//
//  3. Sweep-level parallelism. Candidates are partitioned into waves by
//     warm-start dependency depth; within a wave every (candidate, row
//     chunk) work item feeds one shared worker pool, so small training
//     sets still saturate all cores across independent candidates.

// GridStats counts the work of a grid evaluation beyond the per-pair
// counters of Stats.
type GridStats struct {
	Candidates int   // grid candidates evaluated
	Waves      int   // warm-start dependency depth of the schedule
	Rows         int64 // leave-one-out rows evaluated (candidates x series)
	WarmRows     int64 // rows primed with a finite warm-start cutoff
	Repaired     int64 // warm rows re-scanned cold (unachievable bound)
	PrepTotal    int64 // per-series preparations a per-candidate loop runs
	PrepShared   int64 // of those, served by a family-shared preparation
	PrepSnapshot int64 // per-series states served by a corpus snapshot
	Search       Stats // pair counters over the whole sweep
	WarmSearch   Stats // pair counters restricted to warm-primed candidates
}

func (g *GridStats) add(o GridStats) {
	g.Candidates += o.Candidates
	g.Waves += o.Waves
	g.Rows += o.Rows
	g.WarmRows += o.WarmRows
	g.Repaired += o.Repaired
	g.PrepTotal += o.PrepTotal
	g.PrepShared += o.PrepShared
	g.PrepSnapshot += o.PrepSnapshot
	g.Search.add(o.Search)
	g.WarmSearch.add(o.WarmSearch)
}

// SharedPrepRate is the fraction of per-series preparations served by a
// family-shared preparation (0 when the grid has no stateful candidates).
func (g GridStats) SharedPrepRate() float64 {
	if g.PrepTotal == 0 {
		return 0
	}
	return float64(g.PrepShared) / float64(g.PrepTotal)
}

// WarmPruneRate is the fraction of candidate pairs in warm-primed
// candidates that were rejected without a distance computation — by the
// pair-matrix bound or the lower-bound cascade.
func (g GridStats) WarmPruneRate() float64 {
	if g.WarmSearch.Pairs == 0 {
		return 0
	}
	return float64(g.WarmSearch.LBPruned+g.WarmSearch.PairLB) / float64(g.WarmSearch.Pairs)
}

// GridResult is the outcome of a grid evaluation: one Result per candidate
// (in grid order, each bit-identical to LeaveOneOut on that candidate)
// plus the sweep-level work counters.
type GridResult struct {
	PerCandidate []Result
	Stats        GridStats
}

// TuneIndex holds a parameter grid prepared for one-pass leave-one-out
// evaluation over a fixed training set: warm-start links between nested
// candidates, preparation-sharing families, and the bound-context arena.
type TuneIndex struct {
	cands    []measure.Measure
	train    [][]float64
	warmFrom []int // dominating candidate whose results prime this one, or -1
	depth    []int // warm-start chain depth (wave number)
	families []gridFamily
	famOf    []int     // candidate -> index into families, or -1
	bottom   int       // pair-matrix candidate (dominated by the covered set), or -1
	covered  []bool    // candidate k is lower-bounded by the bottom's matrix
	pairD    []float64 // n*n exact distances of the bottom candidate
	finite   []bool    // series i contains only finite values

	// snap optionally serves per-series state (family cores, prepared
	// states, bound contexts, finiteness) instead of computing it inline;
	// set by NewTuneIndexSnapshot only when the snapshot covers train.
	// Snapshot state is read-only: it is never rebound, refilled, or
	// donated to the bound arena.
	snap *corpus.Snapshot
}

// gridFamily is a preparation-sharing group: candidates whose per-series
// state derives from one shared computation.
type gridFamily struct {
	rep     int // first member, whose declarations anchor the family
	members int
	grid    bool // GridStateful (shared core + CandidateState) vs verbatim
}

// NewTuneIndex analyzes the grid's structure: warm-start links via
// measure.NestedBounds (each candidate linked to the latest earlier
// candidate that dominates it — the tightest bound in a
// monotone-ordered grid), and preparation families via
// measure.GridStateful / measure.PreparationSharing.
func NewTuneIndex(cands []measure.Measure, train [][]float64) *TuneIndex {
	ti := &TuneIndex{
		cands:    cands,
		train:    train,
		warmFrom: make([]int, len(cands)),
		depth:    make([]int, len(cands)),
		famOf:    make([]int, len(cands)),
		bottom:   findBottom(cands, train),
		covered:  make([]bool, len(cands)),
	}
	var bottomNB measure.NestedBounds
	if ti.bottom >= 0 {
		bottomNB = cands[ti.bottom].(measure.NestedBounds)
	}
	for k, m := range cands {
		ti.warmFrom[k] = -1
		ti.famOf[k] = -1
		if bottomNB != nil && k != ti.bottom {
			ti.covered[k] = bottomNB.DominatedBy(m)
		}
		// A warm link only pays when the candidate can turn a primed cutoff
		// into skipped work: through the halved path's own cascade, or
		// through the engine's pair-matrix bound when covered by a bottom.
		_, ea := m.(measure.EarlyAbandoning)
		_, lb := m.(measure.LowerBounded)
		prunable := ea || lb || ti.covered[k]
		if nb, ok := m.(measure.NestedBounds); ok && k != ti.bottom && prunable && halvedEligible(m) {
			// The bottom itself is a valid warm source when it dominates k
			// (its results exist before every wave); DominatedBy rejects it
			// otherwise, like any non-dominating candidate.
			for j := k - 1; j >= 0; j-- {
				if nb.DominatedBy(cands[j]) {
					ti.warmFrom[k] = j
					ti.depth[k] = ti.depth[j] + 1
					break
				}
			}
		}
		if gs, ok := m.(measure.GridStateful); ok {
			ti.joinFamily(k, true, func(rep measure.Measure) bool { return gs.SharesPreparation(rep) })
		} else if ps, ok := m.(measure.PreparationSharing); ok {
			ti.joinFamily(k, false, func(rep measure.Measure) bool { return ps.SharesPreparation(rep) })
		}
	}
	return ti
}

// maxPairMatrix caps the training-set size for which the bottom-candidate
// pair matrix is materialized (n*n float64s).
const maxPairMatrix = 2048

// findBottom selects the pair-matrix candidate: the NestedBounds candidate
// minimizing the estimated sweep cost of computing its full exact pair
// matrix (one Distance per unordered pair) plus evaluating the candidates
// it does NOT cover through the ordinary warm path. Covering many
// candidates is worth little if the bottom itself is expensive — on the
// DTW grid the full window covers everything but costs several times the
// widest banded candidate, which covers all bands and leaves only the full
// window to the warm path — so per-candidate costs are probed with a few
// timed Distance calls. The probe only picks between exact strategies; a
// noisy reading costs speed, never correctness. Returns -1 when no bottom
// beats running the whole grid through the warm path.
func findBottom(cands []measure.Measure, train [][]float64) int {
	n := len(train)
	if len(cands) < 3 || n < 2 || n > maxPairMatrix {
		return -1
	}
	type nested struct {
		k  int
		nb measure.NestedBounds
	}
	var cand []nested
	for k, m := range cands {
		if nb, ok := m.(measure.NestedBounds); ok && halvedEligible(m) {
			cand = append(cand, nested{k, nb})
		}
	}
	if len(cand) < 3 {
		return -1
	}
	costs := make([]float64, len(cands))
	for k, m := range cands {
		costs[k] = probeDistanceCost(m, train[0], train[1])
	}
	// An uncovered candidate's warm path computes roughly half its pairs;
	// the matrix computes every pair once.
	halfPairs := float64(n) * float64(n-1) / 4
	fullPairs := 2 * halfPairs
	best, bestScore := -1, 0.0
	for k := range cands {
		bestScore += costs[k] * halfPairs // the no-bottom baseline
	}
	for _, c := range cand {
		score := costs[c.k] * fullPairs
		for j := range cands {
			if j != c.k && !c.nb.DominatedBy(cands[j]) {
				score += costs[j] * halfPairs
			}
		}
		if score < bestScore {
			best, bestScore = c.k, score
		}
	}
	return best
}

// probeDistanceCost times a few Distance calls on one training pair and
// returns the fastest, a robust-enough relative cost signal for
// findBottom's strategy choice.
func probeDistanceCost(m measure.Measure, x, y []float64) float64 {
	best := math.Inf(1)
	for r := 0; r < 3; r++ {
		t0 := time.Now()
		m.Distance(x, y)
		if dt := float64(time.Since(t0)); dt < best {
			best = dt
		}
	}
	return best
}

// joinFamily adds candidate k to the first matching preparation family, or
// founds a new one.
func (ti *TuneIndex) joinFamily(k int, grid bool, shares func(rep measure.Measure) bool) {
	for fi := range ti.families {
		f := &ti.families[fi]
		if f.grid == grid && shares(ti.cands[f.rep]) {
			f.members++
			ti.famOf[k] = fi
			return
		}
	}
	ti.families = append(ti.families, gridFamily{rep: k, members: 1, grid: grid})
	ti.famOf[k] = len(ti.families) - 1
}

// LeaveOneOutGrid evaluates every candidate's leave-one-out 1-NN result in
// one pass. Each per-candidate Result — neighbor indices, distances, and
// tie-breaks — is bit-identical to LeaveOneOut on that candidate alone.
func LeaveOneOutGrid(cands []measure.Measure, train [][]float64) GridResult {
	return NewTuneIndex(cands, train).Evaluate()
}

// LeaveOneOutGridCtx is LeaveOneOutGrid honoring cancellation: a cancelled
// sweep stops within one dispatch chunk per worker and returns ctx.Err()
// with the partially-filled GridResult (candidates from completed waves
// hold exact results; the rest hold zero Results).
func LeaveOneOutGridCtx(ctx context.Context, cands []measure.Measure, train [][]float64) (GridResult, error) {
	return NewTuneIndex(cands, train).EvaluateCtx(ctx)
}

// Evaluate runs the full grid schedule: family preparations, then each
// warm-start wave through one pooled dispatch.
func (ti *TuneIndex) Evaluate() GridResult {
	res, _ := ti.EvaluateCtx(context.Background())
	return res
}

// EvaluateCtx is Evaluate honoring cancellation; see LeaveOneOutGridCtx
// for the partial-result contract.
func (ti *TuneIndex) EvaluateCtx(ctx context.Context) (GridResult, error) {
	res := GridResult{PerCandidate: make([]Result, len(ti.cands))}
	st := &res.Stats
	st.Candidates = len(ti.cands)
	n := len(ti.train)
	for _, m := range ti.cands {
		if _, ok := m.(measure.Stateful); ok {
			st.PrepTotal += int64(n)
		}
	}

	shared, err := ti.prepareFamilies(ctx, st)
	if err != nil {
		return res, err
	}

	if ti.bottom >= 0 {
		if ti.snap != nil {
			ti.finite = ti.snap.Finite()
		} else {
			ti.finite = make([]bool, n)
			if err := par.ForCtx(ctx, n, par.Workers(n), func(i int) {
				ti.finite[i] = allFinite(ti.train[i])
			}); err != nil {
				return res, err
			}
		}
		if err := ti.evaluateBottom(ctx, &res.PerCandidate[ti.bottom], st); err != nil {
			return res, err
		}
	}

	maxDepth := 0
	for _, d := range ti.depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	waves := make([][]int, maxDepth+1)
	for k, d := range ti.depth {
		if k == ti.bottom {
			continue
		}
		waves[d] = append(waves[d], k)
	}
	st.Waves = len(waves)
	if ti.bottom >= 0 {
		st.Waves++ // the pair-matrix phase
	}

	arena := &boundArena{}
	for _, wave := range waves {
		if err := ti.evaluateWave(ctx, wave, shared, arena, res.PerCandidate, st); err != nil {
			return res, err
		}
	}
	return res, nil
}

// prepareFamilies computes the shared per-series state of every family
// with at least two members (a singleton gains nothing over the plain
// Stateful path).
func (ti *TuneIndex) prepareFamilies(ctx context.Context, st *GridStats) (map[int][]any, error) {
	out := map[int][]any{}
	n := len(ti.train)
	for fi, f := range ti.families {
		if f.members < 2 {
			continue
		}
		// The snapshot's family cores (or verbatim prepared states) replace
		// the inline computation wholesale: the builder produced them with
		// the same GridPrepare/Prepare calls this loop would run.
		if ti.snap != nil {
			if f.grid {
				if cores := ti.snap.GridCores(ti.cands[f.rep]); cores != nil {
					out[fi] = cores
					st.PrepShared += int64(f.members-1) * int64(n)
					st.PrepSnapshot += int64(n)
					continue
				}
			} else if prep := ti.snap.Prepared(ti.cands[f.rep]); prep != nil {
				out[fi] = prep
				st.PrepShared += int64(f.members-1) * int64(n)
				st.PrepSnapshot += int64(n)
				continue
			}
		}
		states := make([]any, n)
		var err error
		if f.grid {
			gs := ti.cands[f.rep].(measure.GridStateful)
			err = par.ForCtx(ctx, n, par.Workers(n), func(i int) { states[i] = gs.GridPrepare(ti.train[i]) })
		} else {
			sm := ti.cands[f.rep].(measure.Stateful)
			err = par.ForCtx(ctx, n, par.Workers(n), func(i int) { states[i] = sm.Prepare(ti.train[i]) })
		}
		if err != nil {
			return out, err
		}
		out[fi] = states
		st.PrepShared += int64(f.members-1) * int64(n)
	}
	return out, nil
}

// allFinite reports whether every value of x is finite.
func allFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// evaluateBottom computes the bottom candidate's complete exact pair
// matrix (each unordered pair once, in parallel) and derives its
// leave-one-out result from it — bit-identical to LeaveOneOut, since every
// recorded value there is exact and ties resolve to the lowest index
// either way. The matrix then serves as the per-pair lower bound of every
// other candidate.
func (ti *TuneIndex) evaluateBottom(ctx context.Context, r *Result, st *GridStats) error {
	m := ti.cands[ti.bottom]
	n := len(ti.train)
	ti.pairD = make([]float64, n*n)
	workers := par.Workers(n)
	if err := par.ForShardCtx(ctx, n, workers, func(_, i int) {
		xi := ti.train[i]
		row := ti.pairD[i*n:]
		for j := i + 1; j < n; j++ {
			d := measure.Sanitize(m.Distance(xi, ti.train[j]))
			row[j] = d
			ti.pairD[j*n+i] = d
		}
	}); err != nil {
		ti.pairD = nil // partially filled: unusable as a bound
		return err
	}
	r.Indices = make([]int, n)
	r.Distances = make([]float64, n)
	if err := par.ForCtx(ctx, n, workers, func(i int) {
		best, bestDist := -1, math.Inf(1)
		row := ti.pairD[i*n : (i+1)*n]
		for j, d := range row {
			if j == i {
				continue
			}
			if best == -1 || d < bestDist {
				best, bestDist = j, d
			}
		}
		r.Indices[i], r.Distances[i] = best, bestDist
	}); err != nil {
		return err
	}
	pairs := int64(n) * int64(n-1) / 2
	r.Stats = Stats{Pairs: pairs, FullDist: pairs}
	st.Rows += int64(n)
	st.Search.add(r.Stats)
	return nil
}

// boundArena recycles bound-context slices across BoundSharing candidates:
// one sweep over a DTW band grid allocates envelopes once.
type boundArena struct {
	mu      sync.Mutex
	entries []*arenaEntry
}

type arenaEntry struct {
	owner measure.Measure // candidate whose parameters last filled ctxs
	ctxs  []measure.BoundContext
	inUse bool
}

// checkout hands a compatible free entry to m, or reports none.
func (a *boundArena) checkout(m measure.BoundSharing) *arenaEntry {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, e := range a.entries {
		if !e.inUse && m.SharesBounds(e.owner) {
			e.inUse = true
			return e
		}
	}
	return nil
}

// checkin registers (or releases) an entry after its candidate completed.
func (a *boundArena) checkin(e *arenaEntry, owner measure.Measure, fresh bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	e.owner = owner
	e.inUse = false
	if fresh {
		a.entries = append(a.entries, e)
	}
}

// candEval is one candidate's in-flight state during a wave.
type candEval struct {
	k      int // candidate index in the grid
	m      measure.Measure
	halved bool
	warm   []float64 // exact per-row upper bounds from the warm source
	pairD  []float64 // n*n exact lower bounds from the bottom candidate
	finite []bool    // per-series finiteness (pairD precondition)
	n      int

	// Halved path.
	lb       measure.LowerBounded
	ea       measure.EarlyAbandoning
	ctxs     []measure.BoundContext
	entry    *arenaEntry // non-nil when ctxs came from the arena
	bs       measure.BoundSharing
	snapCtxs bool // ctxs are snapshot-owned: pre-filled, read-only, never arena-donated

	// Scan path.
	ix *Index
}

// looLocal is one worker's private view of one halved candidate: row
// incumbents, primed flags, and work counters.
type looLocal struct {
	dist   []float64
	idx    []int
	primed []bool
	stats  Stats
}

// evaluateWave evaluates one dependency wave: per-series setup and the row
// scans of every candidate in the wave, each through a single pooled
// dispatch over flattened (candidate, chunk) items. On cancellation the
// wave's candidates are left as zero Results (partial worker-local scans
// are never merged — a half-scanned row would not be exact) and the
// context error is returned.
func (ti *TuneIndex) evaluateWave(ctx context.Context, wave []int, shared map[int][]any, arena *boundArena, out []Result, st *GridStats) error {
	n := len(ti.train)
	evals := make([]*candEval, len(wave))
	for w, k := range wave {
		ce := &candEval{k: k, m: ti.cands[k], halved: halvedEligible(ti.cands[k]), n: n}
		if src := ti.warmFrom[k]; src >= 0 {
			ce.warm = out[src].Distances
		}
		if ti.pairD != nil && ti.covered[k] {
			ce.pairD, ce.finite = ti.pairD, ti.finite
		}
		ce.lb, _ = ce.m.(measure.LowerBounded)
		ce.ea, _ = ce.m.(measure.EarlyAbandoning)
		if ce.halved {
			if ce.lb != nil {
				// Snapshot-owned contexts are already filled for this exact
				// candidate; adopting them skips the setup pool entirely. They
				// must never enter the arena: a later candidate would rebind
				// (mutate) them, corrupting the immutable snapshot.
				if ti.snap != nil {
					if sctxs := ti.snap.BoundContexts(ce.m); sctxs != nil {
						ce.ctxs = sctxs
						ce.snapCtxs = true
						st.PrepSnapshot += int64(n)
					}
				}
				if !ce.snapCtxs {
					ce.bs, _ = ce.m.(measure.BoundSharing)
					if ce.bs != nil {
						ce.entry = arena.checkout(ce.bs)
					}
					if ce.entry != nil {
						ce.ctxs = ce.entry.ctxs
					} else {
						ce.ctxs = make([]measure.BoundContext, n)
					}
				}
			}
		} else {
			ce.ix = ti.newScanIndex(ce.m, shared)
			if ce.ix.prefilled {
				st.PrepSnapshot += int64(n)
			}
			// Pre-size the result so scan workers can write rows directly.
			out[k] = Result{Indices: make([]int, n), Distances: make([]float64, n)}
		}
		evals[w] = ce
	}

	// Per-series setup pool: bound-context fills for every candidate that
	// needs them, flattened across the wave. Snapshot-served candidates
	// need none.
	var setupCands []*candEval
	for _, ce := range evals {
		if (ce.halved && ce.lb != nil && !ce.snapCtxs) || (ce.ix != nil && ce.ix.needsSetup()) {
			setupCands = append(setupCands, ce)
		}
	}
	if len(setupCands) > 0 {
		total := len(setupCands) * n
		if err := par.ForCtx(ctx, total, par.Workers(total), func(item int) {
			ce := setupCands[item/n]
			i := item % n
			ce.setupSeries(ti.train, i, shared[ti.famOf[ce.k]])
		}); err != nil {
			return err
		}
	}

	// Scan pool: (candidate, row chunk) items through one dispatch.
	totalRows := len(wave) * n
	workers := par.Workers(totalRows)
	chunk := n / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	chunksPerCand := (n + chunk - 1) / chunk
	items := len(wave) * chunksPerCand
	locals := make([][]*looLocal, workers)
	queriers := make([][]*Querier, workers)
	scanErr := par.ForShardCtx(ctx, items, workers, func(worker, item int) {
		w := item / chunksPerCand
		c := item % chunksPerCand
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		ce := evals[w]
		if ce.halved {
			if locals[worker] == nil {
				locals[worker] = make([]*looLocal, len(wave))
			}
			l := locals[worker][w]
			if l == nil {
				l = newLooLocal(n, ce.warm)
				locals[worker][w] = l
			}
			ce.scanHalvedRows(ti.train, l, lo, hi)
		} else {
			if queriers[worker] == nil {
				queriers[worker] = make([]*Querier, len(wave))
			}
			q := queriers[worker][w]
			if q == nil {
				q = ce.ix.Querier()
				queriers[worker][w] = q
			}
			r := &out[ce.k]
			if r.Indices == nil {
				// Rows of a scan candidate are written directly; the slices
				// are shared by every worker but each row has one writer.
				// Allocation races are avoided by pre-sizing below.
				panic("search: scan result not pre-sized")
			}
			for i := lo; i < hi; i++ {
				r.Indices[i], r.Distances[i] = q.search(ti.train[i], i)
			}
		}
	})

	if scanErr != nil {
		// Do not merge: worker locals may hold rows whose scan was cut
		// short mid-candidate. Scan-path rows already written to out are
		// exact but incomplete; zero the wave so callers see all-or-nothing
		// per candidate.
		for _, ce := range evals {
			out[ce.k] = Result{}
		}
		return scanErr
	}

	// Finalize: merge halved locals (with cold repair of unresolved primed
	// rows), gather counters, release arena entries.
	for w, ce := range evals {
		r := &out[ce.k]
		st.Rows += int64(n)
		if ce.halved {
			ti.mergeHalved(ce, locals, w, r, st)
		} else {
			for _, qs := range queriers {
				if qs != nil && qs[w] != nil {
					r.Stats.add(qs[w].Stats)
				}
			}
		}
		st.Search.add(r.Stats)
		if ce.warm != nil {
			st.WarmSearch.add(r.Stats)
			for _, u := range ce.warm {
				if !math.IsInf(math.Nextafter(u, math.Inf(1)), 1) {
					st.WarmRows++
				}
			}
		}
		if ce.entry != nil {
			arena.checkin(ce.entry, ce.m, false)
		} else if ce.bs != nil && ce.ctxs != nil && !ce.snapCtxs {
			arena.checkin(&arenaEntry{ctxs: ce.ctxs}, ce.m, true)
		}
	}
	return nil
}

// newScanIndex builds the Index of a scan-path candidate without its
// internal parallel preparation (the wave's setup pool runs it), wiring
// family-shared preparations when available and adopting snapshot state —
// which arrives already filled — when the tune index carries one.
func (ti *TuneIndex) newScanIndex(m measure.Measure, shared map[int][]any) *Index {
	ix := &Index{m: m, refs: ti.train}
	if ea, ok := m.(measure.EarlyAbandoning); ok {
		ix.ea = ea
	}
	if lb, ok := m.(measure.LowerBounded); ok {
		ix.lb = lb
		if ti.snap != nil {
			if sctxs := ti.snap.BoundContexts(m); sctxs != nil {
				ix.rctx = sctxs
				ix.prefilled = true
				return ix
			}
		}
		ix.rctx = make([]measure.BoundContext, len(ti.train))
	} else if sm, ok := m.(measure.Stateful); ok {
		ix.sm = sm
		if ti.snap != nil {
			if prep := ti.snap.Prepared(m); prep != nil {
				ix.rprep = prep
				ix.prefilled = true
				return ix
			}
		}
		ix.rprep = make([]any, len(ti.train))
	}
	return ix
}

// needsSetup reports whether the index still requires per-series fills;
// snapshot-prefilled state needs none (and must not be overwritten).
func (ix *Index) needsSetup() bool {
	return !ix.prefilled && (ix.rctx != nil || ix.rprep != nil)
}

// setupSeries performs candidate setup for series i: a bound-context fill
// (fresh or rebound) on the halved path, or a context/preparation fill on
// the scan path — served from the family's shared state when possible.
func (ce *candEval) setupSeries(train [][]float64, i int, famShared []any) {
	x := train[i]
	switch {
	case ce.halved && ce.lb != nil:
		if ce.entry != nil {
			ce.ctxs[i] = ce.bs.RebindBoundContext(ce.ctxs[i], x)
		} else {
			c := ce.lb.NewBoundContext(len(x))
			c.Fill(x)
			ce.ctxs[i] = c
		}
	case ce.ix != nil && ce.ix.rctx != nil:
		c := ce.ix.lb.NewBoundContext(len(x))
		c.Fill(x)
		ce.ix.rctx[i] = c
	case ce.ix != nil && ce.ix.rprep != nil:
		if famShared != nil {
			if gs, ok := ce.m.(measure.GridStateful); ok {
				ce.ix.rprep[i] = gs.CandidateState(famShared[i])
			} else {
				ce.ix.rprep[i] = famShared[i]
			}
		} else {
			ce.ix.rprep[i] = ce.ix.sm.Prepare(x)
		}
	}
}

// newLooLocal builds a worker's private incumbent arrays, priming rows
// whose warm-start bound is finite: the cutoff sits one ulp above the
// dominating candidate's exact distance, so every distance at or below the
// bound — in particular the row's true minimum, when the declared
// domination holds — survives pruning and is computed exactly, while
// anything provably worse is rejected from the first pair.
func newLooLocal(n int, warm []float64) *looLocal {
	l := &looLocal{
		dist:   make([]float64, n),
		idx:    make([]int, n),
		primed: make([]bool, n),
	}
	inf := math.Inf(1)
	for i := range l.dist {
		l.dist[i] = inf
		l.idx[i] = -1
		if warm != nil {
			if p := math.Nextafter(warm[i], inf); !math.IsInf(p, 1) {
				l.dist[i] = p
				l.primed[i] = true
			}
		}
	}
	return l
}

// scanHalvedRows runs rows [lo, hi) of the halved pair scan for one
// candidate into the worker's locals. The logic extends looHalved with
// primed cutoffs: a row may carry a finite cutoff before any incumbent
// exists, in which case recording still requires d < cutoff — which
// certifies d is exact (DistanceUpTo only abandons at or above its
// cutoff). Unprimed incumbent-less rows keep the original first-candidate
// semantics through an infinite cutoff.
func (ce *candEval) scanHalvedRows(train [][]float64, l *looLocal, lo, hi int) {
	n := len(train)
	for i := lo; i < hi; i++ {
		xi := train[i]
		var pairRow []float64
		if ce.pairD != nil && ce.finite[i] {
			pairRow = ce.pairD[i*ce.n:]
		}
		for j := i + 1; j < n; j++ {
			cutoff := l.dist[i]
			if l.dist[j] > cutoff {
				cutoff = l.dist[j]
			}
			l.stats.Pairs++
			finite := !math.IsInf(cutoff, 1)
			// The bottom candidate's exact distance on this pair lower-bounds
			// ours (NestedBounds, valid on finite series): one array read
			// prunes without touching envelopes or the DP.
			if pairRow != nil && finite && ce.finite[j] && pairRow[j] >= cutoff {
				l.stats.PairLB++
				continue
			}
			if ce.lb != nil && finite {
				if lbv := ce.lb.LowerBound(xi, train[j], ce.ctxs[i], ce.ctxs[j], cutoff); lbv >= cutoff {
					l.stats.LBPruned++
					continue
				}
			}
			l.stats.FullDist++
			var d float64
			if ce.ea != nil {
				d = measure.Sanitize(ce.ea.DistanceUpTo(xi, train[j], cutoff))
			} else {
				d = measure.Sanitize(ce.m.Distance(xi, train[j]))
			}
			// A primed row records only strict improvements over its cutoff
			// (always exact); an unprimed row additionally records its first
			// candidate, whose infinite cutoff makes d exact.
			if d < l.dist[i] || (l.idx[i] == -1 && !l.primed[i]) {
				l.dist[i], l.idx[i] = d, j
			}
			if d < l.dist[j] || (l.idx[j] == -1 && !l.primed[j]) {
				l.dist[j], l.idx[j] = d, i
			}
		}
	}
}

// mergeHalved merges the workers' locals for one halved candidate into its
// Result, repairing any row no worker resolved — which happens only when a
// primed cutoff proved unachievable (a violated domination declaration,
// possible on non-finite inputs) — with an exact cold scan.
func (ti *TuneIndex) mergeHalved(ce *candEval, locals [][]*looLocal, w int, r *Result, st *GridStats) {
	n := len(ti.train)
	r.Indices = make([]int, n)
	r.Distances = make([]float64, n)
	for i := 0; i < n; i++ {
		bd, bi := math.Inf(1), -1
		for _, ls := range locals {
			if ls == nil || ls[w] == nil || ls[w].idx[i] == -1 {
				continue
			}
			l := ls[w]
			if bi == -1 || l.dist[i] < bd || (l.dist[i] == bd && l.idx[i] < bi) {
				bd, bi = l.dist[i], l.idx[i]
			}
		}
		if bi == -1 && ce.warm != nil && n > 1 {
			bi, bd = ce.coldRow(ti.train, i)
			st.Repaired++
		}
		r.Indices[i], r.Distances[i] = bi, bd
	}
	for _, ls := range locals {
		if ls != nil && ls[w] != nil {
			r.Stats.add(ls[w].stats)
		}
	}
}

// coldRow recomputes one leave-one-out row exhaustively: exact distances,
// first-lowest-index tie-breaking — the reference semantics.
func (ce *candEval) coldRow(train [][]float64, i int) (int, float64) {
	best, bestDist := -1, math.Inf(1)
	for j := range train {
		if j == i {
			continue
		}
		d := measure.Sanitize(ce.m.Distance(train[i], train[j]))
		if best == -1 || d < bestDist {
			best, bestDist = j, d
		}
	}
	return best, bestDist
}
