package search

import (
	"context"
	"math"

	"repro/internal/ann"
	"repro/internal/corpus"
	"repro/internal/measure"
	"repro/internal/par"
)

// This file exposes the approximate retrieval engine of internal/ann
// through the search package's result shapes: OneNNApprox/KNNApprox run
// GRAIL embed–index–rerank queries in parallel, one ann.Querier per
// worker, and report the aggregate approximate-search work alongside the
// familiar Result. The candidate budget (ann.Config.Candidates) is the
// recall knob; budgets covering the corpus run the exact lower-bound
// fallback, making the result identical to exact search.

// ApproxStats aggregates ann.Stats across the queries of one call.
type ApproxStats struct {
	EmbedDist int64 // embedding-space distance evaluations (tree descents)
	Exact     int64 // exact measure evaluations during re-rank
	LBPruned  int64 // candidates rejected by the lower-bound cascade
	Fallbacks int64 // queries answered by the exact fallback scan
}

func (a *ApproxStats) add(s ann.Stats) {
	a.EmbedDist += int64(s.EmbedDist)
	a.Exact += int64(s.Exact)
	a.LBPruned += int64(s.LBPruned)
	if s.Fallback {
		a.Fallbacks++
	}
}

// ApproxResult is the outcome of an approximate search: per-query nearest
// indices and exact (sanitized) distances — only the candidate sets are
// approximate — plus the work counters.
type ApproxResult struct {
	Indices   []int
	Distances []float64
	// Neighbors holds the per-query top-k lists for KNNApprox calls;
	// OneNNApprox leaves it nil.
	Neighbors [][]ann.Neighbor
	Stats     ApproxStats
}

// OneNNApprox is OneNNApproxCtx over a background context.
func OneNNApprox(m measure.Measure, queries, refs [][]float64, cfg ann.Config) ApproxResult {
	res, _ := OneNNApproxCtx(context.Background(), m, queries, refs, cfg)
	return res
}

// OneNNApproxCtx builds an ANN index over refs and answers every query
// approximately, in parallel with one ann.Querier per worker. The build
// and the query fan-out both observe ctx.
func OneNNApproxCtx(ctx context.Context, m measure.Measure, queries, refs [][]float64, cfg ann.Config) (ApproxResult, error) {
	ix, err := ann.BuildCtx(ctx, refs, m, cfg)
	if err != nil {
		return ApproxResult{}, err
	}
	return approxAllCtx(ctx, ix, queries, 1)
}

// KNNApprox is KNNApproxCtx over a background context.
func KNNApprox(m measure.Measure, queries, refs [][]float64, k int, cfg ann.Config) ApproxResult {
	res, _ := KNNApproxCtx(context.Background(), m, queries, refs, k, cfg)
	return res
}

// KNNApproxCtx answers every query with its approximate k nearest
// references; Neighbors[i] holds query i's top-k sorted by (exact
// distance, index), and Indices/Distances mirror the rank-1 entries.
func KNNApproxCtx(ctx context.Context, m measure.Measure, queries, refs [][]float64, k int, cfg ann.Config) (ApproxResult, error) {
	ix, err := ann.BuildCtx(ctx, refs, m, cfg)
	if err != nil {
		return ApproxResult{}, err
	}
	return approxAllCtx(ctx, ix, queries, k)
}

// OneNNApproxSnapshot is OneNNApproxSnapshotCtx over a background context.
func OneNNApproxSnapshot(m measure.Measure, queries, refs [][]float64, cfg ann.Config, snap *corpus.Snapshot) ApproxResult {
	res, _ := OneNNApproxSnapshotCtx(context.Background(), m, queries, refs, cfg, snap)
	return res
}

// OneNNApproxSnapshotCtx serves the fitted ANN index from the snapshot
// when it covers refs and holds one for m — the warm path: queries pay
// only transform + tree descent + c exact re-ranks. Anything missing
// falls back to an inline build, adopting whatever exact-side state the
// snapshot does hold.
func OneNNApproxSnapshotCtx(ctx context.Context, m measure.Measure, queries, refs [][]float64, cfg ann.Config, snap *corpus.Snapshot) (ApproxResult, error) {
	if snap.Covers(refs) {
		if ix := snap.ANNIndex(m); ix != nil {
			return approxAllCtx(ctx, ix, queries, 1)
		}
		st := ann.ExactState{Bounds: snap.BoundContexts(m)}
		if prep, err := snap.PreparedStates(ctx, m); err != nil {
			return ApproxResult{}, err
		} else if prep != nil {
			st.Prep = prep
		}
		ix, err := ann.BuildPreparedCtx(ctx, refs, m, cfg, st)
		if err != nil {
			return ApproxResult{}, err
		}
		return approxAllCtx(ctx, ix, queries, 1)
	}
	return OneNNApproxCtx(ctx, m, queries, refs, cfg)
}

// KNNApproxSnapshot is KNNApproxSnapshotCtx over a background context.
func KNNApproxSnapshot(m measure.Measure, queries, refs [][]float64, k int, cfg ann.Config, snap *corpus.Snapshot) ApproxResult {
	res, _ := KNNApproxSnapshotCtx(context.Background(), m, queries, refs, k, cfg, snap)
	return res
}

// KNNApproxSnapshotCtx is KNNApproxCtx serving the fitted ANN index from
// the snapshot when possible; see OneNNApproxSnapshotCtx.
func KNNApproxSnapshotCtx(ctx context.Context, m measure.Measure, queries, refs [][]float64, k int, cfg ann.Config, snap *corpus.Snapshot) (ApproxResult, error) {
	if snap.Covers(refs) {
		if ix := snap.ANNIndex(m); ix != nil {
			return approxAllCtx(ctx, ix, queries, k)
		}
	}
	return KNNApproxCtx(ctx, m, queries, refs, k, cfg)
}

// approxAllCtx fans the queries across workers, one ann.Querier each.
func approxAllCtx(ctx context.Context, ix *ann.Index, queries [][]float64, k int) (ApproxResult, error) {
	n := len(queries)
	res := ApproxResult{Indices: make([]int, n), Distances: make([]float64, n)}
	if k > 1 {
		res.Neighbors = make([][]ann.Neighbor, n)
	}
	workers := par.Workers(n)
	queriers := make([]*ann.Querier, workers)
	stats := make([]ApproxStats, workers)
	err := par.ForShardCtx(ctx, n, workers, func(w, i int) {
		qr := queriers[w]
		if qr == nil {
			qr = ix.NewQuerier()
			queriers[w] = qr
		}
		nbs, st := qr.KNN(queries[i], k)
		stats[w].add(st)
		if len(nbs) == 0 {
			res.Indices[i], res.Distances[i] = -1, math.Inf(1)
		} else {
			res.Indices[i], res.Distances[i] = nbs[0].Index, nbs[0].Dist
		}
		if k > 1 {
			res.Neighbors[i] = nbs
		}
	})
	for _, st := range stats {
		res.Stats.EmbedDist += st.EmbedDist
		res.Stats.Exact += st.Exact
		res.Stats.LBPruned += st.LBPruned
		res.Stats.Fallbacks += st.Fallbacks
	}
	return res, err
}
