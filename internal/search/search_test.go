package search_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/elastic"
	"repro/internal/lockstep"
	"repro/internal/measure"
	"repro/internal/search"
	"repro/internal/sliding"
)

func randomSet(seed int64, n, m int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	set := make([][]float64, n)
	for i := range set {
		set[i] = make([]float64, m)
		for j := range set[i] {
			set[i][j] = rng.NormFloat64()
		}
	}
	return set
}

// brute is the exhaustive reference: argmin over sanitized distances with
// strict-< updates, i.e. ties keep the lowest index.
func brute(m measure.Measure, x []float64, refs [][]float64, skip int) (int, float64) {
	best, bestDist := -1, math.Inf(1)
	for j, r := range refs {
		if j == skip {
			continue
		}
		d := measure.Sanitize(m.Distance(x, r))
		if best == -1 || d < bestDist {
			best, bestDist = j, d
		}
	}
	return best, bestDist
}

func TestOneNNMatchesBruteForce(t *testing.T) {
	refs := randomSet(1, 30, 64)
	queries := randomSet(2, 20, 64)
	for _, m := range []measure.Measure{
		elastic.DTW{DeltaPercent: 10}, // LowerBounded + EarlyAbandoning
		elastic.MSM{C: 0.5},           // plain symmetric
		lockstep.Euclidean(),          // plain
	} {
		res := search.OneNN(m, queries, refs)
		for i, x := range queries {
			wantIdx, wantDist := brute(m, x, refs, -1)
			if res.Indices[i] != wantIdx || res.Distances[i] != wantDist {
				t.Fatalf("%s query %d: got (%d, %g), want (%d, %g)",
					m.Name(), i, res.Indices[i], res.Distances[i], wantIdx, wantDist)
			}
		}
		if res.Stats.Pairs != int64(len(queries)*len(refs)) {
			t.Fatalf("%s: Pairs = %d, want %d", m.Name(), res.Stats.Pairs, len(queries)*len(refs))
		}
	}
}

func TestOneNNTieBreaksToLowestIndex(t *testing.T) {
	base := randomSet(3, 1, 32)[0]
	// Duplicate references: every query must pick the first copy.
	refs := [][]float64{append([]float64(nil), base...), append([]float64(nil), base...), append([]float64(nil), base...)}
	queries := randomSet(4, 5, 32)
	queries = append(queries, append([]float64(nil), base...))
	for _, m := range []measure.Measure{elastic.DTW{DeltaPercent: 100}, elastic.ERP{G: 0}} {
		res := search.OneNN(m, queries, refs)
		for i := range queries {
			if res.Indices[i] != 0 {
				t.Fatalf("%s query %d: tie must resolve to index 0, got %d", m.Name(), i, res.Indices[i])
			}
		}
	}
}

func TestLeaveOneOutHalvedMatchesNonSymmetricPath(t *testing.T) {
	train := randomSet(5, 40, 48)
	sym := elastic.DTW{DeltaPercent: 10}
	// Func wrapper hides the Symmetric/LowerBounded/EarlyAbandoning
	// interfaces, forcing the per-row path over plain Distance calls.
	plain := measure.New("dtw-opaque", sym.Distance)
	got := search.LeaveOneOut(sym, train)
	want := search.LeaveOneOut(plain, train)
	for i := range train {
		if got.Indices[i] != want.Indices[i] || got.Distances[i] != want.Distances[i] {
			t.Fatalf("row %d: halved (%d, %g) vs per-row (%d, %g)",
				i, got.Indices[i], got.Distances[i], want.Indices[i], want.Distances[i])
		}
	}
	n := int64(len(train))
	if got.Stats.Pairs != n*(n-1)/2 {
		t.Fatalf("halved Pairs = %d, want %d", got.Stats.Pairs, n*(n-1)/2)
	}
	if want.Stats.Pairs != n*(n-1) {
		t.Fatalf("per-row Pairs = %d, want %d", want.Stats.Pairs, n*(n-1))
	}
}

func TestLeaveOneOutHalvedTieBreaking(t *testing.T) {
	// All-identical training set: every pair distance is 0, so every row
	// must report its lowest other index under first-wins tie-breaking.
	base := randomSet(6, 1, 24)[0]
	train := make([][]float64, 12)
	for i := range train {
		train[i] = append([]float64(nil), base...)
	}
	for _, m := range []measure.Measure{elastic.DTW{DeltaPercent: 5}, elastic.TWE{Lambda: 1, Nu: 0.1}} {
		res := search.LeaveOneOut(m, train)
		for i := range train {
			want := 0
			if i == 0 {
				want = 1
			}
			if res.Indices[i] != want {
				t.Fatalf("%s row %d: got %d, want %d", m.Name(), i, res.Indices[i], want)
			}
			if res.Distances[i] != 0 {
				t.Fatalf("%s row %d: distance %g, want 0", m.Name(), i, res.Distances[i])
			}
		}
	}
}

func TestStatefulMeasureUsesPreparedPath(t *testing.T) {
	refs := randomSet(7, 15, 64)
	queries := randomSet(8, 10, 64)
	m := sliding.SBD()
	if _, ok := measure.Measure(m).(measure.Stateful); !ok {
		t.Skip("SBD is not Stateful in this build")
	}
	res := search.OneNN(m, queries, refs)
	for i, x := range queries {
		wantIdx, wantDist := brute(m, x, refs, -1)
		if res.Indices[i] != wantIdx {
			t.Fatalf("query %d: got %d, want %d", i, res.Indices[i], wantIdx)
		}
		if math.Abs(res.Distances[i]-wantDist) > 1e-9 {
			t.Fatalf("query %d: got %g, want %g", i, res.Distances[i], wantDist)
		}
	}
	// SBD is not declared Symmetric, so leave-one-out takes the per-row
	// path; verify against brute force with the diagonal skipped.
	loo := search.LeaveOneOut(m, refs)
	for i, x := range refs {
		wantIdx, _ := brute(m, x, refs, i)
		if loo.Indices[i] != wantIdx {
			t.Fatalf("loo row %d: got %d, want %d", i, loo.Indices[i], wantIdx)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	d := elastic.DTW{DeltaPercent: 10}
	if res := search.OneNN(d, nil, randomSet(9, 3, 16)); len(res.Indices) != 0 {
		t.Fatal("no queries must yield no results")
	}
	res := search.OneNN(d, randomSet(10, 2, 16), nil)
	for i := range res.Indices {
		if res.Indices[i] != -1 || !math.IsInf(res.Distances[i], 1) {
			t.Fatalf("empty reference set: got (%d, %g), want (-1, +Inf)", res.Indices[i], res.Distances[i])
		}
	}
	if r := search.LeaveOneOut(d, nil); len(r.Indices) != 0 {
		t.Fatal("empty train must yield no results")
	}
	single := search.LeaveOneOut(d, randomSet(11, 1, 16))
	if single.Indices[0] != -1 || !math.IsInf(single.Distances[0], 1) {
		t.Fatalf("singleton train: got (%d, %g), want (-1, +Inf)", single.Indices[0], single.Distances[0])
	}
}

func TestPruningActuallyPrunes(t *testing.T) {
	refs := randomSet(12, 60, 128)
	// Queries are tiny perturbations of references: the best-so-far drops
	// to near zero as soon as the twin is scanned, after which the cascade
	// must reject the remaining (distant) candidates.
	rng := rand.New(rand.NewSource(13))
	queries := make([][]float64, 20)
	for i := range queries {
		queries[i] = append([]float64(nil), refs[i]...)
		for j := range queries[i] {
			queries[i][j] += 0.001 * rng.NormFloat64()
		}
	}
	res := search.OneNN(elastic.DTW{DeltaPercent: 5}, queries, refs)
	if res.Stats.LBPruned == 0 {
		t.Fatal("narrow-band DTW over random series should prune at least one candidate")
	}
	if res.Stats.LBPruned+res.Stats.FullDist != res.Stats.Pairs {
		t.Fatalf("stats inconsistent: %d pruned + %d full != %d pairs",
			res.Stats.LBPruned, res.Stats.FullDist, res.Stats.Pairs)
	}
}

func TestQuerierReuseAcrossQueries(t *testing.T) {
	refs := randomSet(14, 25, 64)
	queries := randomSet(15, 12, 64)
	ix := search.NewIndex(elastic.DTW{DeltaPercent: 10}, refs)
	q := ix.Querier()
	for i, x := range queries {
		gotIdx, gotDist := q.Query(x)
		wantIdx, wantDist := brute(elastic.DTW{DeltaPercent: 10}, x, refs, -1)
		if gotIdx != wantIdx || gotDist != wantDist {
			t.Fatalf("query %d: got (%d, %g), want (%d, %g)", i, gotIdx, gotDist, wantIdx, wantDist)
		}
	}
}
