package search_test

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/search"
)

// TestPrunedSearchExactAcrossElasticGrids is the exactness property test:
// for every candidate of every elastic parameter grid, across a synthetic
// archive, the pruned engine must report the same predicted neighbor for
// every query — including tie-breaking — as exhaustive matrix evaluation.
// Any pruning bug (a lower bound that overshoots, an early abandon that
// returns an uncertified value, a tie broken differently) fails here.
func TestPrunedSearchExactAcrossElasticGrids(t *testing.T) {
	archive := dataset.GenerateArchive(dataset.ArchiveOptions{
		Seed: 3, Count: 4, MaxLength: 48, MaxTrain: 10, MaxTest: 12,
	})
	stride := 1
	if testing.Short() {
		stride = 4
	}
	for _, g := range eval.ElasticGrids() {
		g = eval.Thin(g, stride)
		for _, cand := range g.Candidates {
			for _, d := range archive {
				res := search.OneNN(cand, d.Test, d.Train)
				want := eval.Neighbors(eval.Matrix(cand, d.Test, d.Train))
				for i := range want {
					if res.Indices[i] != want[i] {
						t.Fatalf("%s on %s: query %d neighbor %d, exact %d",
							cand.Name(), d.Name, i, res.Indices[i], want[i])
					}
				}
				loo := search.LeaveOneOut(cand, d.Train)
				wantLoo := eval.LeaveOneOutNeighbors(eval.Matrix(cand, d.Train, d.Train))
				for i := range wantLoo {
					if loo.Indices[i] != wantLoo[i] {
						t.Fatalf("%s on %s: LOO row %d neighbor %d, exact %d",
							cand.Name(), d.Name, i, loo.Indices[i], wantLoo[i])
					}
				}
			}
		}
	}
}
