package search_test

import (
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/elastic"
	"repro/internal/eval"
	"repro/internal/kernel"
	"repro/internal/measure"
	"repro/internal/search"
)

// snapshotFor builds a snapshot materializing every candidate's state.
func snapshotFor(series [][]float64, ms ...measure.Measure) *corpus.Snapshot {
	return corpus.Build(series, corpus.Options{Measures: ms})
}

// TestGridSnapshotMatchesInline is the snapshot exactness property test:
// for every Table-4 grid, the snapshot-backed tuning engine must report
// bit-identical per-candidate neighbors and distances to both the inline
// engine and the naive per-candidate loop. Any contamination of the
// snapshot's shared state (a rebound envelope, a candidate state drifting
// from Prepare) fails here.
func TestGridSnapshotMatchesInline(t *testing.T) {
	archive := dataset.GenerateArchive(dataset.ArchiveOptions{
		Seed: 11, Count: 3, MaxLength: 40, MaxTrain: 12, MaxTest: 4,
	})
	stride := 1
	if testing.Short() {
		stride = 4
	}
	for _, g := range eval.Grids() {
		g = eval.Thin(g, stride)
		for _, d := range archive {
			snap := snapshotFor(d.Train, g.Candidates...)
			got := search.LeaveOneOutGridSnapshot(g.Candidates, d.Train, snap)
			want := search.LeaveOneOutGrid(g.Candidates, d.Train)
			for k, cand := range g.Candidates {
				naive := search.LeaveOneOutSnapshot(cand, d.Train, snap)
				for i := range want.PerCandidate[k].Indices {
					wi, wd := want.PerCandidate[k].Indices[i], want.PerCandidate[k].Distances[i]
					if got.PerCandidate[k].Indices[i] != wi || got.PerCandidate[k].Distances[i] != wd {
						t.Fatalf("%s on %s: row %d snapshot grid (%d, %v), inline (%d, %v)",
							cand.Name(), d.Name, i,
							got.PerCandidate[k].Indices[i], got.PerCandidate[k].Distances[i], wi, wd)
					}
					if naive.Indices[i] != wi || naive.Distances[i] != wd {
						t.Fatalf("%s on %s: row %d snapshot loo (%d, %v), inline (%d, %v)",
							cand.Name(), d.Name, i, naive.Indices[i], naive.Distances[i], wi, wd)
					}
				}
			}
			// Hits are only owed when the family has state to share:
			// stateless grids (e.g. MSM) legitimately serve nothing.
			hasState := false
			for _, cand := range g.Candidates {
				if _, ok := cand.(measure.Stateful); ok {
					hasState = true
				}
				if _, ok := cand.(measure.LowerBounded); ok {
					hasState = true
				}
			}
			if hasState && snap.Hits().Total() == 0 {
				t.Fatalf("%s on %s: snapshot never served state", g.Name, d.Name)
			}
		}
	}
}

// TestOneNNSnapshotMatchesInline covers the plain 1-NN and leave-one-out
// entry points for the three engine shapes: lower-bounded (DTW), grid
// stateful (SINK), and plain stateful (GAK).
func TestOneNNSnapshotMatchesInline(t *testing.T) {
	archive := dataset.GenerateArchive(dataset.ArchiveOptions{
		Seed: 17, Count: 2, MaxLength: 48, MaxTrain: 14, MaxTest: 6,
	})
	for _, m := range []measure.Measure{
		elastic.DTW{DeltaPercent: 10},
		kernel.SINK{Gamma: 5},
		kernel.GAK{Sigma: 1},
	} {
		for _, d := range archive {
			snap := snapshotFor(d.Train, m)
			got := search.OneNNSnapshot(m, d.Test, d.Train, snap)
			want := search.OneNN(m, d.Test, d.Train)
			for i := range want.Indices {
				if got.Indices[i] != want.Indices[i] ||
					math.Float64bits(got.Distances[i]) != math.Float64bits(want.Distances[i]) {
					t.Fatalf("%s on %s: query %d snapshot (%d, %v), inline (%d, %v)",
						m.Name(), d.Name, i, got.Indices[i], got.Distances[i],
						want.Indices[i], want.Distances[i])
				}
			}
			gotL := search.LeaveOneOutSnapshot(m, d.Train, snap)
			wantL := search.LeaveOneOut(m, d.Train)
			for i := range wantL.Indices {
				if gotL.Indices[i] != wantL.Indices[i] ||
					math.Float64bits(gotL.Distances[i]) != math.Float64bits(wantL.Distances[i]) {
					t.Fatalf("%s on %s: loo row %d snapshot (%d, %v), inline (%d, %v)",
						m.Name(), d.Name, i, gotL.Indices[i], gotL.Distances[i],
						wantL.Indices[i], wantL.Distances[i])
				}
			}
		}
	}
}

// TestGridSnapshotDegenerateInputs reruns the NaN/Inf degenerate-input
// grid check through the snapshot path: domination repair and non-finite
// fallbacks must behave identically when state comes from a snapshot.
func TestGridSnapshotDegenerateInputs(t *testing.T) {
	train := [][]float64{
		{1, 2, 3, 4, 5, 4, 3, 2},
		{math.NaN(), 2, 3, 4, 5, 4, 3, 2},
		{1, 2, math.Inf(1), 4, 5, 4, 3, 2},
		{2, 3, 4, 5, 4, 3, 2, 1},
		{math.Inf(-1), math.NaN(), 0, 0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0, 0, 0, 0},
	}
	g := eval.DTWGrid()
	snap := snapshotFor(train, g.Candidates...)
	got := search.LeaveOneOutGridSnapshot(g.Candidates, train, snap)
	want := search.LeaveOneOutGrid(g.Candidates, train)
	for k, cand := range g.Candidates {
		for i := range want.PerCandidate[k].Indices {
			wi, wd := want.PerCandidate[k].Indices[i], want.PerCandidate[k].Distances[i]
			if got.PerCandidate[k].Indices[i] != wi || got.PerCandidate[k].Distances[i] != wd {
				t.Fatalf("%s: row %d snapshot (%d, %v), inline (%d, %v)", cand.Name(), i,
					got.PerCandidate[k].Indices[i], got.PerCandidate[k].Distances[i], wi, wd)
			}
		}
	}
}

// TestSnapshotFallbacks checks the degradation contract: a nil snapshot
// and one built over different series must both produce inline results
// (and never panic), so callers can thread a snapshot unconditionally.
func TestSnapshotFallbacks(t *testing.T) {
	archive := dataset.GenerateArchive(dataset.ArchiveOptions{
		Seed: 23, Count: 1, MaxLength: 32, MaxTrain: 10, MaxTest: 4,
	})
	d := archive[0]
	other := make([][]float64, len(d.Train))
	for i := range d.Train {
		other[i] = append([]float64(nil), d.Train[i]...)
	}
	m := kernel.SINK{Gamma: 5}
	foreign := snapshotFor(other, m)
	want := search.OneNN(m, d.Test, d.Train)
	for name, snap := range map[string]*corpus.Snapshot{"nil": nil, "foreign": foreign} {
		got := search.OneNNSnapshot(m, d.Test, d.Train, snap)
		for i := range want.Indices {
			if got.Indices[i] != want.Indices[i] || got.Distances[i] != want.Distances[i] {
				t.Fatalf("%s snapshot: query %d got (%d, %v), want (%d, %v)",
					name, i, got.Indices[i], got.Distances[i], want.Indices[i], want.Distances[i])
			}
		}
	}
	if h := foreign.Hits(); h.Total() != 0 {
		t.Fatalf("foreign snapshot served state: %+v", h)
	}
	g := eval.Thin(eval.DTWGrid(), 7)
	gotG := search.LeaveOneOutGridSnapshot(g.Candidates, d.Train, nil)
	wantG := search.LeaveOneOutGrid(g.Candidates, d.Train)
	for k := range wantG.PerCandidate {
		for i := range wantG.PerCandidate[k].Indices {
			if gotG.PerCandidate[k].Indices[i] != wantG.PerCandidate[k].Indices[i] {
				t.Fatalf("nil-snapshot grid diverged at cand %d row %d", k, i)
			}
		}
	}
}

// TestGridSnapshotStats checks the PrepSnapshot counter: a covering
// snapshot must serve state (counter > 0) and eliminate inline preparation
// for the families it covers.
func TestGridSnapshotStats(t *testing.T) {
	archive := dataset.GenerateArchive(dataset.ArchiveOptions{
		Seed: 29, Count: 1, MaxLength: 40, MaxTrain: 12, MaxTest: 4,
	})
	d := archive[0]
	g := eval.Thin(eval.SINKGrid(), 4)
	snap := snapshotFor(d.Train, g.Candidates...)
	gr := search.LeaveOneOutGridSnapshot(g.Candidates, d.Train, snap)
	if gr.Stats.PrepSnapshot == 0 {
		t.Fatalf("snapshot-backed sweep reports no snapshot-served states: %+v", gr.Stats)
	}
	inline := search.LeaveOneOutGrid(g.Candidates, d.Train)
	if inline.Stats.PrepSnapshot != 0 {
		t.Fatalf("inline sweep reports snapshot-served states: %+v", inline.Stats)
	}
}
