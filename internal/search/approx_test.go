package search_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/ann"
	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/elastic"
	"repro/internal/search"
)

func approxData(t *testing.T, n, q int) (refs, queries [][]float64) {
	t.Helper()
	d := dataset.Generate(dataset.Config{
		Name: "approx", Family: dataset.FamilyCBF,
		Length: 64, NumClasses: 3, TrainSize: n, TestSize: q,
		Seed: 11, NoiseSigma: 0.2, ShiftFrac: 0.05,
	})
	return d.Train, d.Test
}

// TestOneNNApproxFallbackMatchesExact pins the engine's fallback
// contract at the search layer: a budget covering the corpus yields
// results identical to the exact pruned engine, query for query.
func TestOneNNApproxFallbackMatchesExact(t *testing.T) {
	refs, queries := approxData(t, 40, 16)
	m := elastic.DTW{DeltaPercent: 10}
	approx := search.OneNNApprox(m, queries, refs, ann.Config{Candidates: len(refs), Seed: 1})
	exact := search.OneNN(m, queries, refs)
	if approx.Stats.Fallbacks != int64(len(queries)) {
		t.Fatalf("fallbacks %d, want %d", approx.Stats.Fallbacks, len(queries))
	}
	for i := range queries {
		if approx.Indices[i] != exact.Indices[i] || approx.Distances[i] != exact.Distances[i] {
			t.Fatalf("query %d: approx (%d, %g) != exact (%d, %g)",
				i, approx.Indices[i], approx.Distances[i], exact.Indices[i], exact.Distances[i])
		}
	}
}

// TestOneNNApproxNeverBeatsExact checks the defining inequality of the
// approximate engine on the real ANN path: reported distances are exact
// for their index, so they can never undercut the true minimum.
func TestOneNNApproxNeverBeatsExact(t *testing.T) {
	refs, queries := approxData(t, 160, 24)
	m := elastic.DTW{DeltaPercent: 10}
	approx := search.OneNNApprox(m, queries, refs, ann.Config{Candidates: 12, Seed: 2})
	exact := search.OneNN(m, queries, refs)
	if approx.Stats.Fallbacks != 0 {
		t.Fatalf("budget 12 over n=160 must not fall back (%d did)", approx.Stats.Fallbacks)
	}
	if approx.Stats.EmbedDist == 0 {
		t.Fatal("no embedding-space work recorded")
	}
	for i := range queries {
		if approx.Distances[i] < exact.Distances[i]-1e-9 {
			t.Fatalf("query %d: approximate %g beats exact %g", i, approx.Distances[i], exact.Distances[i])
		}
		if d := m.Distance(queries[i], refs[approx.Indices[i]]); math.Abs(d-approx.Distances[i]) > 1e-9 {
			t.Fatalf("query %d: reported distance %g is not exact (%g)", i, approx.Distances[i], d)
		}
	}
}

// TestKNNApproxShape checks the top-k surface: per-query neighbor lists
// sorted by (distance, index), rank-1 mirrored into Indices/Distances.
func TestKNNApproxShape(t *testing.T) {
	refs, queries := approxData(t, 80, 8)
	m := elastic.DTW{DeltaPercent: 10}
	res := search.KNNApprox(m, queries, refs, 5, ann.Config{Candidates: 16, Seed: 3})
	if len(res.Neighbors) != len(queries) {
		t.Fatalf("%d neighbor lists for %d queries", len(res.Neighbors), len(queries))
	}
	for i, nbs := range res.Neighbors {
		if len(nbs) != 5 {
			t.Fatalf("query %d: %d neighbors, want 5", i, len(nbs))
		}
		for r := 1; r < len(nbs); r++ {
			if nbs[r-1].Dist > nbs[r].Dist {
				t.Fatalf("query %d: unsorted ranks %g > %g", i, nbs[r-1].Dist, nbs[r].Dist)
			}
		}
		if res.Indices[i] != nbs[0].Index || res.Distances[i] != nbs[0].Dist {
			t.Fatalf("query %d: rank-1 mirror mismatch", i)
		}
	}
}

// TestOneNNApproxSnapshotWarmPath checks the snapshot integration: a
// snapshot holding a fitted ANN index serves it (same answers as the
// cold build), and a snapshot not covering the refs falls back cleanly.
func TestOneNNApproxSnapshotWarmPath(t *testing.T) {
	refs, queries := approxData(t, 96, 12)
	m := elastic.DTW{DeltaPercent: 10}
	cfg := ann.Config{Candidates: 12, Seed: 4}
	snap := corpus.Build(refs, corpus.Options{ANN: []corpus.ANNSpec{{Measure: m, Config: cfg}}})
	warm := search.OneNNApproxSnapshot(m, queries, refs, cfg, snap)
	cold := search.OneNNApprox(m, queries, refs, cfg)
	for i := range queries {
		if warm.Indices[i] != cold.Indices[i] || warm.Distances[i] != cold.Distances[i] {
			t.Fatalf("query %d: warm (%d, %g) != cold (%d, %g)",
				i, warm.Indices[i], warm.Distances[i], cold.Indices[i], cold.Distances[i])
		}
	}
	// Foreign snapshot: same shape, different content — must not be used.
	rng := rand.New(rand.NewSource(5))
	other := make([][]float64, len(refs))
	for i := range other {
		s := make([]float64, 64)
		for j := range s {
			s[j] = rng.NormFloat64()
		}
		other[i] = s
	}
	foreign := corpus.Build(other, corpus.Options{ANN: []corpus.ANNSpec{{Measure: m, Config: cfg}}})
	res := search.OneNNApproxSnapshot(m, queries, refs, cfg, foreign)
	for i := range queries {
		if res.Indices[i] != cold.Indices[i] || res.Distances[i] != cold.Distances[i] {
			t.Fatalf("query %d: foreign-snapshot result diverges from cold build", i)
		}
	}
}

// TestOneNNApproxCancellation checks both the build and the query
// fan-out observe the context.
func TestOneNNApproxCancellation(t *testing.T) {
	refs, queries := approxData(t, 64, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := search.OneNNApproxCtx(ctx, elastic.DTW{DeltaPercent: 10}, queries, refs, ann.Config{}); err == nil {
		t.Fatal("cancelled approximate search returned nil error")
	}
}

// TestOneNNApproxEmpty covers degenerate inputs at the search layer.
func TestOneNNApproxEmpty(t *testing.T) {
	_, queries := approxData(t, 8, 4)
	res := search.OneNNApprox(elastic.DTW{DeltaPercent: 10}, queries, nil, ann.Config{})
	for i := range queries {
		if res.Indices[i] != -1 || !math.IsInf(res.Distances[i], 1) {
			t.Fatalf("query %d over empty refs = (%d, %g)", i, res.Indices[i], res.Distances[i])
		}
	}
	empty := search.OneNNApprox(elastic.DTW{DeltaPercent: 10}, nil, queries, ann.Config{})
	if len(empty.Indices) != 0 {
		t.Fatalf("no queries produced %d results", len(empty.Indices))
	}
}
