package search_test

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/elastic"
	"repro/internal/eval"
	"repro/internal/measure"
	"repro/internal/search"
)

// TestLeaveOneOutGridMatchesPerCandidate is the tuning-engine exactness
// property test: for every grid of Table 4 (eval.Grids), across randomized
// archives, the one-pass engine must report bit-identical neighbor indices
// and distances — hence identical selected candidates, accuracies, and
// tie-breaks — to the naive loop running search.LeaveOneOut per candidate.
// Any sharing bug (a candidate state that drifts from Prepare, a warm-start
// cutoff that prunes a true minimum, a wave scheduling order that breaks
// tie-breaking) fails here.
func TestLeaveOneOutGridMatchesPerCandidate(t *testing.T) {
	archive := dataset.GenerateArchive(dataset.ArchiveOptions{
		Seed: 11, Count: 3, MaxLength: 40, MaxTrain: 12, MaxTest: 4,
	})
	stride := 1
	if testing.Short() {
		stride = 4
	}
	for _, g := range eval.Grids() {
		g = eval.Thin(g, stride)
		for _, d := range archive {
			gr := search.LeaveOneOutGrid(g.Candidates, d.Train)
			if len(gr.PerCandidate) != len(g.Candidates) {
				t.Fatalf("%s on %s: %d results for %d candidates",
					g.Name, d.Name, len(gr.PerCandidate), len(g.Candidates))
			}
			for k, cand := range g.Candidates {
				want := search.LeaveOneOut(cand, d.Train)
				got := gr.PerCandidate[k]
				for i := range want.Indices {
					if got.Indices[i] != want.Indices[i] || got.Distances[i] != want.Distances[i] {
						t.Fatalf("%s on %s: row %d got (%d, %v), want (%d, %v)",
							cand.Name(), d.Name, i,
							got.Indices[i], got.Distances[i],
							want.Indices[i], want.Distances[i])
					}
				}
			}
		}
	}
}

// TestTuneSupervisedMatchesNaiveSelection checks the full selection path:
// TuneSupervised on the engine must pick the same candidate with the same
// accuracy as the naive per-candidate loop, for every grid family.
func TestTuneSupervisedMatchesNaiveSelection(t *testing.T) {
	archive := dataset.GenerateArchive(dataset.ArchiveOptions{
		Seed: 7, Count: 2, MaxLength: 32, MaxTrain: 14, MaxTest: 4,
	})
	stride := 1
	if testing.Short() {
		stride = 3
	}
	for _, g := range eval.Grids() {
		g = eval.Thin(g, stride)
		for _, d := range archive {
			gotM, gotAcc := eval.TuneSupervised(g, d.Train, d.TrainLabels)
			wantIdx, wantAcc := 0, -1.0
			for i, cand := range g.Candidates {
				res := search.LeaveOneOut(cand, d.Train)
				acc := eval.AccuracyFromNeighbors(res.Indices, d.TrainLabels, d.TrainLabels)
				if acc > wantAcc {
					wantAcc, wantIdx = acc, i
				}
			}
			wantM := g.Candidates[wantIdx]
			if gotM.Name() != wantM.Name() || gotAcc != wantAcc {
				t.Fatalf("%s on %s: engine selected %s (%v), naive %s (%v)",
					g.Name, d.Name, gotM.Name(), gotAcc, wantM.Name(), wantAcc)
			}
		}
	}
}

// TestGridEngineDegenerateInputs drives the DTW band grid over series
// containing NaN and Inf values, where DP band monotonicity — and with it
// the warm-start domination declaration — can break. The engine must fall
// back to its repair path and still match the per-candidate reference
// exactly.
func TestGridEngineDegenerateInputs(t *testing.T) {
	train := [][]float64{
		{1, 2, 3, 4, 5, 4, 3, 2},
		{math.NaN(), 2, 3, 4, 5, 4, 3, 2},
		{1, 2, math.Inf(1), 4, 5, 4, 3, 2},
		{2, 3, 4, 5, 4, 3, 2, 1},
		{math.Inf(-1), math.NaN(), 0, 0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0, 0, 0, 0},
	}
	g := eval.DTWGrid()
	gr := search.LeaveOneOutGrid(g.Candidates, train)
	for k, cand := range g.Candidates {
		want := search.LeaveOneOut(cand, train)
		got := gr.PerCandidate[k]
		for i := range want.Indices {
			if got.Indices[i] != want.Indices[i] || got.Distances[i] != want.Distances[i] {
				t.Fatalf("%s: row %d got (%d, %v), want (%d, %v)", cand.Name(), i,
					got.Indices[i], got.Distances[i], want.Indices[i], want.Distances[i])
			}
		}
	}
}

// TestGridStatsCounters checks that the three optimizations actually
// engage on the grids built for them: SINK's gamma sweep shares FFT
// preparation, and the DTW band grid schedules warm-started waves.
func TestGridStatsCounters(t *testing.T) {
	archive := dataset.GenerateArchive(dataset.ArchiveOptions{
		Seed: 5, Count: 1, MaxLength: 48, MaxTrain: 16, MaxTest: 4,
	})
	train := archive[0].Train

	sink := search.LeaveOneOutGrid(eval.SINKGrid().Candidates, train).Stats
	if sink.PrepShared == 0 || sink.SharedPrepRate() < 0.9 {
		t.Errorf("SINK sweep shared %d/%d preparations, want ~all",
			sink.PrepShared, sink.PrepTotal)
	}

	dtw := search.LeaveOneOutGrid(eval.DTWGrid().Candidates, train).Stats
	if dtw.Waves < 2 {
		t.Errorf("DTW band grid ran in %d waves, want warm-start chain", dtw.Waves)
	}
	if dtw.WarmRows == 0 {
		t.Errorf("DTW band grid primed no rows")
	}
	if dtw.WarmSearch.Pairs == 0 {
		t.Errorf("DTW warm candidates recorded no pair work")
	}
	if dtw.Repaired != 0 {
		t.Errorf("DTW on finite data repaired %d rows, want 0", dtw.Repaired)
	}
}

// sharedPrepFake is a Stateful measure declaring PreparationSharing (the
// verbatim fallback: no GridPrepare/CandidateState), used to exercise the
// engine's generic family path. Scale only multiplies the final value, so
// prepared state (the series itself) is parameter-independent.
type sharedPrepFake struct {
	Scale float64
}

func (f sharedPrepFake) Name() string { return "fake-shared-prep" }

func (f sharedPrepFake) Distance(x, y []float64) float64 {
	return f.PreparedDistance(f.Prepare(x), f.Prepare(y))
}

func (f sharedPrepFake) Prepare(x []float64) any { return x }

func (f sharedPrepFake) PreparedDistance(px, py any) float64 {
	x, y := px.([]float64), py.([]float64)
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return f.Scale * s
}

func (f sharedPrepFake) SharesPreparation(other measure.Measure) bool {
	_, ok := other.(sharedPrepFake)
	return ok
}

// TestPreparationSharingFallback drives a grid of PreparationSharing (but
// not GridStateful) candidates through the engine: the shared Prepare
// results must be reused verbatim, with results identical to per-candidate
// evaluation.
func TestPreparationSharingFallback(t *testing.T) {
	archive := dataset.GenerateArchive(dataset.ArchiveOptions{
		Seed: 9, Count: 1, MaxLength: 32, MaxTrain: 12, MaxTest: 4,
	})
	train := archive[0].Train
	cands := []measure.Measure{
		sharedPrepFake{Scale: 1},
		sharedPrepFake{Scale: 2},
		sharedPrepFake{Scale: 0.5},
	}
	gr := search.LeaveOneOutGrid(cands, train)
	if gr.Stats.PrepShared != int64(2*len(train)) {
		t.Errorf("shared %d preparations, want %d", gr.Stats.PrepShared, 2*len(train))
	}
	for k, cand := range cands {
		want := search.LeaveOneOut(cand, train)
		got := gr.PerCandidate[k]
		for i := range want.Indices {
			if got.Indices[i] != want.Indices[i] || got.Distances[i] != want.Distances[i] {
				t.Fatalf("scale %v: row %d got (%d, %v), want (%d, %v)",
					cand.(sharedPrepFake).Scale, i,
					got.Indices[i], got.Distances[i], want.Indices[i], want.Distances[i])
			}
		}
	}
}

// TestNestingDeclarations spot-checks the DominatedBy declarations against
// brute-force distance comparisons on random series: a dominating
// candidate's distance must never be below the dominated one's.
func TestNestingDeclarations(t *testing.T) {
	archive := dataset.GenerateArchive(dataset.ArchiveOptions{
		Seed: 13, Count: 1, MaxLength: 40, MaxTrain: 8, MaxTest: 2,
	})
	train := archive[0].Train
	type pair struct{ narrow, wide measure.Measure }
	pairs := []pair{
		{elastic.DTW{DeltaPercent: 5}, elastic.DTW{DeltaPercent: 10}},
		{elastic.DTW{DeltaPercent: 0}, elastic.DTW{DeltaPercent: 100}},
		{elastic.LCSS{DeltaPercent: 5, Epsilon: 0.1}, elastic.LCSS{DeltaPercent: 10, Epsilon: 0.3}},
		{elastic.EDR{Epsilon: 0.05}, elastic.EDR{Epsilon: 0.5}},
	}
	for _, p := range pairs {
		nb, ok := p.wide.(measure.NestedBounds)
		if !ok || !nb.DominatedBy(p.narrow) {
			t.Fatalf("%s should be dominated by %s", p.wide.Name(), p.narrow.Name())
		}
		if nbn, ok := p.narrow.(measure.NestedBounds); ok && nbn.DominatedBy(p.wide) &&
			p.narrow.Name() != p.wide.Name() {
			t.Fatalf("%s must not claim domination by wider %s", p.narrow.Name(), p.wide.Name())
		}
		for i := range train {
			for j := i + 1; j < len(train); j++ {
				dn := p.narrow.Distance(train[i], train[j])
				dw := p.wide.Distance(train[i], train[j])
				if dw > dn {
					t.Fatalf("%s(%d,%d)=%v exceeds %s=%v: nesting violated",
						p.wide.Name(), i, j, dw, p.narrow.Name(), dn)
				}
			}
		}
	}
}
