package search_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/elastic"
	"repro/internal/eval"
	"repro/internal/measure"
	"repro/internal/search"
)

func benchDataset() *dataset.Dataset {
	return dataset.Generate(dataset.Config{
		Name: "Bench", Family: dataset.FamilyECG, Length: 128,
		NumClasses: 4, TrainSize: 100, TestSize: 50, Seed: 42,
		NoiseSigma: 0.1, ShiftFrac: 0.15, AmpJitter: 0.2,
	})
}

// baselineDTW reproduces the pre-optimization DTW of this repository:
// per-call row allocation and a full-row wipe on every DP row (O(m^2)
// regardless of the band), wrapped as an opaque Func so the evaluation
// cannot exploit symmetry, bounds, or early abandoning. It is the
// reference point of the tuning benchmark below.
func baselineDTW(deltaPercent int) measure.Measure {
	name := fmt.Sprintf("dtw-baseline[d=%d]", deltaPercent)
	return measure.New(name, func(x, y []float64) float64 {
		m := len(x)
		if m == 0 {
			return 0
		}
		w := m
		if deltaPercent < 100 {
			w = deltaPercent * m / 100
			if w < 1 {
				w = 1
			}
		}
		inf := math.Inf(1)
		prev := make([]float64, m+1)
		cur := make([]float64, m+1)
		for j := range prev {
			prev[j] = inf
		}
		prev[0] = 0
		for i := 1; i <= m; i++ {
			for j := range cur {
				cur[j] = inf
			}
			lo, hi := i-w, i+w
			if lo < 1 {
				lo = 1
			}
			if hi > m {
				hi = m
			}
			for j := lo; j <= hi; j++ {
				c := x[i-1] - y[j-1]
				best := prev[j-1]
				if prev[j] < best {
					best = prev[j]
				}
				if cur[j-1] < best {
					best = cur[j-1]
				}
				cur[j] = c*c + best
			}
			prev, cur = cur, prev
		}
		return prev[m]
	})
}

// baselineGrid mirrors eval.DTWGrid with the baseline implementation.
func baselineGrid() eval.Grid {
	ref := eval.DTWGrid()
	g := eval.Grid{Name: "dtw-baseline"}
	for _, cand := range ref.Candidates {
		g.Candidates = append(g.Candidates, baselineDTW(cand.(elastic.DTW).DeltaPercent))
	}
	return g
}

// tuneByMatrix scores every candidate by materializing the train-by-train
// matrix and scanning it — the tuning loop as it existed before the
// pruned engine.
func tuneByMatrix(g eval.Grid, train [][]float64, labels []int) (int, float64) {
	bestIdx, bestAcc := 0, -1.0
	for j, cand := range g.Candidates {
		w := eval.Matrix(cand, train, train)
		acc := eval.AccuracyFromNeighbors(eval.LeaveOneOutNeighbors(w), labels, labels)
		if acc > bestAcc {
			bestAcc, bestIdx = acc, j
		}
	}
	return bestIdx, bestAcc
}

// BenchmarkSupervisedDTWTuning compares full-grid supervised DTW tuning:
//
//   - baseline: the pre-optimization stack (full-row-wipe DTW, per-call
//     allocations, full train-by-train matrices);
//   - matrix: today's DTW kernel but still through exhaustive symmetric
//     matrices;
//   - pruned: eval.TuneSupervised on the search engine (symmetric pair
//     halving + LB_Kim/LB_Keogh cascade + early-abandoning DP).
//
// All three select the same candidate with the same accuracy (see
// TestTuningPathsAgree); only the work differs.
func BenchmarkSupervisedDTWTuning(b *testing.B) {
	d := benchDataset()
	b.Run("baseline", func(b *testing.B) {
		g := baselineGrid()
		for i := 0; i < b.N; i++ {
			tuneByMatrix(g, d.Train, d.TrainLabels)
		}
	})
	b.Run("matrix", func(b *testing.B) {
		g := eval.DTWGrid()
		for i := 0; i < b.N; i++ {
			tuneByMatrix(g, d.Train, d.TrainLabels)
		}
	})
	b.Run("pruned", func(b *testing.B) {
		g := eval.DTWGrid()
		for i := 0; i < b.N; i++ {
			eval.TuneSupervised(g, d.Train, d.TrainLabels)
		}
	})
}

// tunePerCandidate is TuneSupervised as it existed before the grid engine:
// one independent pruned LeaveOneOut per candidate, no sharing across the
// sweep. It is the reference point of BenchmarkGridTuning.
func tunePerCandidate(g eval.Grid, train [][]float64, labels []int) (int, float64) {
	bestIdx, bestAcc := 0, -1.0
	for i, cand := range g.Candidates {
		res := search.LeaveOneOut(cand, train)
		acc := eval.AccuracyFromNeighbors(res.Indices, labels, labels)
		if acc > bestAcc {
			bestAcc, bestIdx = acc, i
		}
	}
	return bestIdx, bestAcc
}

// BenchmarkGridTuning compares supervised grid tuning per candidate (the
// previous TuneSupervised path) against the one-pass grid engine, on the
// two grid families the engine's optimizations target: the DTW band grid
// (warm-start pruning + envelope reuse) and the SINK gamma grid (shared
// FFT preparation). Both paths select identical candidates; see
// TestTuneSupervisedMatchesNaiveSelection.
func BenchmarkGridTuning(b *testing.B) {
	d := benchDataset()
	sinkTrain := d.Train[:40]
	sinkLabels := d.TrainLabels[:40]
	b.Run("dtw/percandidate", func(b *testing.B) {
		g := eval.DTWGrid()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tunePerCandidate(g, d.Train, d.TrainLabels)
		}
	})
	b.Run("dtw/engine", func(b *testing.B) {
		g := eval.DTWGrid()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eval.TuneSupervised(g, d.Train, d.TrainLabels)
		}
	})
	b.Run("sink/percandidate", func(b *testing.B) {
		g := eval.SINKGrid()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tunePerCandidate(g, sinkTrain, sinkLabels)
		}
	})
	b.Run("sink/engine", func(b *testing.B) {
		g := eval.SINKGrid()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eval.TuneSupervised(g, sinkTrain, sinkLabels)
		}
	})
}

// TestTuningPathsAgree pins the benchmark's claim: the baseline stack, the
// exhaustive matrix path, and the pruned engine pick the same grid
// candidate with the same leave-one-out accuracy.
func TestTuningPathsAgree(t *testing.T) {
	d := benchDataset()
	baseIdx, baseAcc := tuneByMatrix(baselineGrid(), d.Train, d.TrainLabels)
	matIdx, matAcc := tuneByMatrix(eval.DTWGrid(), d.Train, d.TrainLabels)
	chosen, acc := eval.TuneSupervised(eval.DTWGrid(), d.Train, d.TrainLabels)
	if baseIdx != matIdx || baseAcc != matAcc {
		t.Fatalf("baseline picked %d (%g), matrix picked %d (%g)", baseIdx, baseAcc, matIdx, matAcc)
	}
	if chosen.Name() != eval.DTWGrid().Candidates[matIdx].Name() || acc != matAcc {
		t.Fatalf("pruned picked %s (%g), matrix picked %s (%g)",
			chosen.Name(), acc, eval.DTWGrid().Candidates[matIdx].Name(), matAcc)
	}
}

// BenchmarkQuerierQuery measures a single pruned DTW query against a warm
// index. Steady state must not allocate: the bound context, envelope
// deques, and DP rows are all reused.
func BenchmarkQuerierQuery(b *testing.B) {
	d := benchDataset()
	ix := search.NewIndex(elastic.DTW{DeltaPercent: 10}, d.Train)
	q := ix.Querier()
	// Warm the DP-scratch pool and the querier's bound context.
	for _, x := range d.Test {
		q.Query(x)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Query(d.Test[i%len(d.Test)])
	}
}

// BenchmarkOneNNInference compares whole-test-set inference, the Figure 9
// timing unit, across the exact and pruned paths.
func BenchmarkOneNNInference(b *testing.B) {
	d := benchDataset()
	m := elastic.DTW{DeltaPercent: 10}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = eval.Neighbors(eval.Matrix(m, d.Test, d.Train))
		}
	})
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = search.OneNN(m, d.Test, d.Train)
		}
	})
}
