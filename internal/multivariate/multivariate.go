// Package multivariate extends the core distance measures to multivariate
// time series, the extension footnote 1 of the paper leaves as future
// work. A multivariate series is a [time][channel] matrix; the package
// provides the two standard generalizations of elastic measures —
// dependent (one warping path over vector-valued points) and independent
// (one warping path per channel, costs summed) — plus the vector
// lock-step Euclidean distance and a 1-NN helper.
package multivariate

import (
	"fmt"
	"math"

	"repro/internal/elastic"
	"repro/internal/measure"
)

// Series is a multivariate time series: Series[t][c] is channel c at time
// t. All rows must share the channel count.
type Series [][]float64

// Validate checks the series is rectangular and non-empty.
func (s Series) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("multivariate: empty series")
	}
	d := len(s[0])
	if d == 0 {
		return fmt.Errorf("multivariate: zero channels")
	}
	for t, row := range s {
		if len(row) != d {
			return fmt.Errorf("multivariate: row %d has %d channels, want %d", t, len(row), d)
		}
	}
	return nil
}

// Channels returns the channel count (0 for an empty series).
func (s Series) Channels() int {
	if len(s) == 0 {
		return 0
	}
	return len(s[0])
}

// Channel extracts one channel as a univariate series.
func (s Series) Channel(c int) []float64 {
	out := make([]float64, len(s))
	for t, row := range s {
		out[t] = row[c]
	}
	return out
}

// ZNormalize z-scores every channel independently, the standard
// preprocessing for multivariate archives.
func (s Series) ZNormalize() Series {
	if len(s) == 0 {
		return s
	}
	d := s.Channels()
	out := make(Series, len(s))
	for t := range out {
		out[t] = make([]float64, d)
	}
	for c := 0; c < d; c++ {
		var mean float64
		for t := range s {
			mean += s[t][c]
		}
		mean /= float64(len(s))
		var ss float64
		for t := range s {
			diff := s[t][c] - mean
			ss += diff * diff
		}
		std := math.Sqrt(ss / float64(len(s)))
		for t := range s {
			if std == 0 {
				out[t][c] = 0
			} else {
				out[t][c] = (s[t][c] - mean) / std
			}
		}
	}
	return out
}

// Measure is a dissimilarity over multivariate series.
type Measure interface {
	Name() string
	Distance(x, y Series) float64
}

func checkPair(x, y Series) int {
	if len(x) != len(y) {
		panic(fmt.Sprintf("multivariate: length mismatch %d vs %d", len(x), len(y)))
	}
	if x.Channels() != y.Channels() {
		panic(fmt.Sprintf("multivariate: channel mismatch %d vs %d", x.Channels(), y.Channels()))
	}
	return x.Channels()
}

// Euclidean is the vector lock-step distance: the square root of the
// summed squared vector differences.
type Euclidean struct{}

// Name implements Measure.
func (Euclidean) Name() string { return "mv-euclidean" }

// Distance implements Measure.
func (Euclidean) Distance(x, y Series) float64 {
	checkPair(x, y)
	var s float64
	for t := range x {
		for c := range x[t] {
			d := x[t][c] - y[t][c]
			s += d * d
		}
	}
	return math.Sqrt(s)
}

// DTWDependent is multivariate DTW with a single warping path over
// vector-valued points (DTW-D): the point cost is the squared Euclidean
// distance between the two d-dimensional samples. DeltaPercent is the
// Sakoe-Chiba band, as in the univariate DTW.
type DTWDependent struct {
	DeltaPercent int
}

// Name implements Measure.
func (d DTWDependent) Name() string { return fmt.Sprintf("mv-dtw-d[d=%d]", d.DeltaPercent) }

// Distance implements Measure.
func (d DTWDependent) Distance(x, y Series) float64 {
	checkPair(x, y)
	m := len(x)
	if m == 0 {
		return 0
	}
	w := m
	if d.DeltaPercent < 100 {
		w = d.DeltaPercent * m / 100
		if w < 1 {
			w = 1
		}
	}
	inf := math.Inf(1)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= m; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo := i - w
		if lo < 1 {
			lo = 1
		}
		hi := i + w
		if hi > m {
			hi = m
		}
		for j := lo; j <= hi; j++ {
			var c float64
			xi, yj := x[i-1], y[j-1]
			for k := range xi {
				diff := xi[k] - yj[k]
				c += diff * diff
			}
			best := prev[j-1]
			if prev[j] < best {
				best = prev[j]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			cur[j] = c + best
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// DTWIndependent is multivariate DTW with one warping path per channel
// (DTW-I): the sum of univariate DTW distances over the channels.
type DTWIndependent struct {
	DeltaPercent int
}

// Name implements Measure.
func (d DTWIndependent) Name() string { return fmt.Sprintf("mv-dtw-i[d=%d]", d.DeltaPercent) }

// Distance implements Measure.
func (d DTWIndependent) Distance(x, y Series) float64 {
	nch := checkPair(x, y)
	uni := elastic.DTW{DeltaPercent: d.DeltaPercent}
	var s float64
	for c := 0; c < nch; c++ {
		s += uni.Distance(x.Channel(c), y.Channel(c))
	}
	return s
}

// Independent lifts any univariate measure to multivariate series by
// summing it over the channels (the "independent" construction).
type Independent struct {
	Base measure.Measure
}

// Name implements Measure.
func (i Independent) Name() string { return "mv-indep(" + i.Base.Name() + ")" }

// Distance implements Measure.
func (i Independent) Distance(x, y Series) float64 {
	nch := checkPair(x, y)
	var s float64
	for c := 0; c < nch; c++ {
		s += i.Base.Distance(x.Channel(c), y.Channel(c))
	}
	return s
}

// OneNN classifies each test series by its nearest training series under
// the measure and returns the accuracy, mirroring the univariate
// Algorithm 1.
func OneNN(m Measure, train []Series, trainLabels []int, test []Series, testLabels []int) float64 {
	if len(train) != len(trainLabels) || len(test) != len(testLabels) {
		panic("multivariate: series/label count mismatch")
	}
	if len(test) == 0 {
		return 0
	}
	correct := 0
	for i, q := range test {
		best := -1
		bestD := math.Inf(1)
		for j, r := range train {
			d := m.Distance(q, r)
			if math.IsNaN(d) {
				d = math.Inf(1)
			}
			if best == -1 || d < bestD {
				best, bestD = j, d
			}
		}
		if trainLabels[best] == testLabels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(test))
}
