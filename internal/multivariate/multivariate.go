// Package multivariate promotes the core distance measures to a
// first-class multivariate measure axis, the extension footnote 1 of the
// paper leaves as future work. A multivariate series is a [time][channel]
// matrix; the package provides the two standard generalizations of the
// elastic measures — dependent (one warping path over vector-valued
// points) and independent (one warping path per channel, costs summed) —
// plus vector lock-step distances, NaN-masked lock-step measures with
// valid-pair normalization and a per-channel minimum-support rule,
// differentiable soft-DTW with the self-distance normalization trick, and
// parallel cancellable 1-NN evaluation.
//
// Contracts mirror internal/measure: Measure is the base Name/Distance
// pair, EarlyAbandoning adds the certified-lower-bound DistanceUpTo route,
// and ContextMeasure the cancellation-aware DistanceCtx route. Dependent
// elastic measures and soft-DTW accept unequal-length pairs (an m-by-n DP,
// exactly like their univariate definitions); lock-step, masked, and
// independent-lift measures require equal lengths and panic otherwise,
// matching the univariate convention. Every measure panics on a channel
// mismatch. At one channel, every plain (unmasked) measure reproduces its
// univariate counterpart bitwise — the oracle harness pins this.
package multivariate

import (
	"context"
	"fmt"
	"math"
	"sync"
)

// Series is a multivariate time series: Series[t][c] is channel c at time
// t. All rows must share the channel count.
type Series [][]float64

// Validate checks the series is rectangular and non-empty.
func (s Series) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("multivariate: empty series")
	}
	d := len(s[0])
	if d == 0 {
		return fmt.Errorf("multivariate: zero channels")
	}
	for t, row := range s {
		if len(row) != d {
			return fmt.Errorf("multivariate: row %d has %d channels, want %d", t, len(row), d)
		}
	}
	return nil
}

// Channels returns the channel count (0 for an empty series).
func (s Series) Channels() int {
	if len(s) == 0 {
		return 0
	}
	return len(s[0])
}

// Channel extracts one channel as a freshly allocated univariate series.
// Hot loops use ChannelInto with a pooled buffer instead.
func (s Series) Channel(c int) []float64 {
	return s.ChannelInto(c, make([]float64, len(s)))
}

// ChannelInto extracts channel c into dst, which must have length >=
// len(s), and returns dst[:len(s)]. It is the allocation-free spelling of
// Channel for pooled buffers.
func (s Series) ChannelInto(c int, dst []float64) []float64 {
	dst = dst[:len(s)]
	for t, row := range s {
		dst[t] = row[c]
	}
	return dst
}

// ZNormalize z-scores every channel independently, the standard
// preprocessing for multivariate archives.
func (s Series) ZNormalize() Series {
	if len(s) == 0 {
		return s
	}
	d := s.Channels()
	out := make(Series, len(s))
	for t := range out {
		out[t] = make([]float64, d)
	}
	for c := 0; c < d; c++ {
		var mean float64
		for t := range s {
			mean += s[t][c]
		}
		mean /= float64(len(s))
		var ss float64
		for t := range s {
			diff := s[t][c] - mean
			ss += diff * diff
		}
		std := math.Sqrt(ss / float64(len(s)))
		for t := range s {
			if std == 0 {
				out[t][c] = 0
			} else {
				out[t][c] = (s[t][c] - mean) / std
			}
		}
	}
	return out
}

// Measure is a dissimilarity over multivariate series, mirroring
// measure.Measure: smaller means more similar, NaN is treated as +Inf by
// the evaluation layer.
type Measure interface {
	// Name returns a stable identifier used in tables and registries
	// (e.g. "mv-dtw-d[d=10]").
	Name() string
	// Distance returns the dissimilarity of x and y.
	Distance(x, y Series) float64
}

// EarlyAbandoning is the optional best-so-far-aware route, mirroring
// measure.EarlyAbandoning: DistanceUpTo returns Distance(x, y) exactly
// whenever that value is < cutoff, and otherwise any certified lower bound
// v with cutoff <= v <= Distance(x, y).
type EarlyAbandoning interface {
	Measure
	DistanceUpTo(x, y Series, cutoff float64) float64
}

// ContextMeasure is the optional cancellation-aware route, mirroring
// measure.ContextMeasure: an uncancelled call returns exactly
// Distance(x, y); a cancelled call either surfaces ctx.Err() or still
// returns the exact value.
type ContextMeasure interface {
	Measure
	DistanceCtx(ctx context.Context, x, y Series) (float64, error)
}

// checkChannels panics when the two series disagree on channel count —
// every multivariate measure rejects that — and returns the shared count.
// An empty series carries no channel count and is compatible with any
// counterpart. Lengths are deliberately not checked here: the dependent
// elastic measures run an m-by-n DP over unequal-length pairs.
func checkChannels(x, y Series) int {
	if len(x) == 0 {
		return y.Channels()
	}
	if len(y) == 0 {
		return x.Channels()
	}
	if x.Channels() != y.Channels() {
		panic(fmt.Sprintf("multivariate: channel mismatch %d vs %d", x.Channels(), y.Channels()))
	}
	return x.Channels()
}

// checkLockstep is checkChannels plus the equal-length requirement of the
// lock-step measures, matching measure.CheckSameLength's panic convention.
func checkLockstep(x, y Series) int {
	if len(x) != len(y) {
		panic(fmt.Sprintf("multivariate: series length mismatch %d vs %d", len(x), len(y)))
	}
	return checkChannels(x, y)
}

// chanScratch pools two univariate channel buffers so the independent
// lifts extract channels without per-call allocation, the same pattern as
// the elastic row pool.
type chanScratch struct{ a, b []float64 }

var chanPool = sync.Pool{New: func() any { return new(chanScratch) }}

// borrowChannels returns a pooled scratch holder and two buffers with
// capacity for na and nb samples. Contents are unspecified; ChannelInto
// overwrites every cell.
func borrowChannels(na, nb int) (*chanScratch, []float64, []float64) {
	s := chanPool.Get().(*chanScratch)
	if cap(s.a) < na {
		s.a = make([]float64, na)
	}
	if cap(s.b) < nb {
		s.b = make([]float64, nb)
	}
	return s, s.a[:na], s.b[:nb]
}

func (s *chanScratch) release() { chanPool.Put(s) }

// Euclidean is the vector lock-step distance: the square root of the
// summed squared vector differences. At one channel it is bitwise the
// univariate Euclidean distance (the accumulation order matches).
type Euclidean struct{}

// Name implements Measure.
func (Euclidean) Name() string { return "mv-euclidean" }

// Distance implements Measure.
func (Euclidean) Distance(x, y Series) float64 {
	checkLockstep(x, y)
	var s float64
	for t := range x {
		for c := range x[t] {
			d := x[t][c] - y[t][c]
			s += d * d
		}
	}
	return math.Sqrt(s)
}

// DistanceUpTo implements EarlyAbandoning: the partial sum is monotone, so
// once sqrt(partial) would reach cutoff the partial root is a certified
// lower bound. Comparison happens in squared space to avoid a sqrt per
// sample.
func (Euclidean) DistanceUpTo(x, y Series, cutoff float64) float64 {
	checkLockstep(x, y)
	sq := cutoff * cutoff
	var s float64
	for t := range x {
		for c := range x[t] {
			d := x[t][c] - y[t][c]
			s += d * d
		}
		if s >= sq {
			return math.Sqrt(s)
		}
	}
	return math.Sqrt(s)
}
