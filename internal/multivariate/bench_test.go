package multivariate

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/lockstep"
)

// benchSeries draws a random d-channel series of n vector points.
func benchSeries(rng *rand.Rand, n, d int) Series {
	s := make(Series, n)
	for t := range s {
		s[t] = make([]float64, d)
		for c := range s[t] {
			s[t][c] = rng.NormFloat64()
		}
	}
	return s
}

// TestMultivariateDistanceAllocFree pins the satellite fix: every pooled
// multivariate Distance runs allocation-free once the row and channel
// scratch pools are warm (the independent lifts used to allocate a fresh
// []float64 per Channel call per channel per distance).
func TestMultivariateDistanceAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under -race; allocation counts are meaningless")
	}
	rng := rand.New(rand.NewSource(11))
	x, y := benchSeries(rng, 128, 3), benchSeries(rng, 128, 3)
	measures := []Measure{
		Euclidean{},
		DTWDependent{DeltaPercent: 10},
		ERPDependent{},
		MSMDependent{C: 0.5},
		SoftDTW{Gamma: 1},
		SoftDTW{Gamma: 0.1, Normalize: true},
		DTWIndependent{DeltaPercent: 10},
		Independent{Base: lockstep.Manhattan()},
		MaskedEuclidean(0.3),
		MaskedManhattan(0.3),
	}
	for _, m := range measures {
		m.Distance(x, y) // warm the pools
		if allocs := testing.AllocsPerRun(50, func() { m.Distance(x, y) }); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op warm, want 0", m.Name(), allocs)
		}
	}
}

// TestClassifyEmptyTrain pins the degenerate-input satellite: an empty
// reference set yields (-1, +Inf) per query with no panic, and accuracy
// over it is zero.
func TestClassifyEmptyTrain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	test := []Series{benchSeries(rng, 16, 2), benchSeries(rng, 16, 2)}
	idx, dist, err := Classify(nil, DTWDependent{DeltaPercent: 10}, nil, test)
	if err != nil {
		t.Fatalf("Classify on empty train: %v", err)
	}
	for i := range test {
		if idx[i] != -1 || !math.IsInf(dist[i], 1) {
			t.Errorf("query %d: got (%d, %g), want (-1, +Inf)", i, idx[i], dist[i])
		}
	}
	acc, err := AccuracyCtx(nil, DTWDependent{DeltaPercent: 10}, nil, nil, test, []int{0, 1})
	if err != nil {
		t.Fatalf("AccuracyCtx on empty train: %v", err)
	}
	if acc != 0 {
		t.Errorf("accuracy over empty train = %g, want 0", acc)
	}
}

// TestClassifyCancellation verifies Classify honours a pre-cancelled
// context instead of running the full evaluation.
func TestClassifyCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var train, test []Series
	for i := 0; i < 8; i++ {
		train = append(train, benchSeries(rng, 64, 3))
		test = append(test, benchSeries(rng, 64, 3))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Classify(ctx, DTWDependent{DeltaPercent: 10}, train, test); err == nil {
		t.Fatal("Classify with cancelled context returned nil error")
	}
}

// Benchmarks recorded by `make bench` into BENCH_multivariate.json. The
// dependent/independent pair at equal length and channel count exposes
// the cost of one vector-point DP versus d univariate DPs plus channel
// extraction; the masked variant is the lockstep hot loop with the
// per-pair NaN test.
func benchPair(n, d int) (Series, Series) {
	rng := rand.New(rand.NewSource(7))
	return benchSeries(rng, n, d), benchSeries(rng, n, d)
}

func BenchmarkMultivariateDTWDependent(b *testing.B) {
	x, y := benchPair(128, 3)
	m := DTWDependent{DeltaPercent: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(x, y)
	}
}

func BenchmarkMultivariateDTWIndependent(b *testing.B) {
	x, y := benchPair(128, 3)
	m := DTWIndependent{DeltaPercent: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(x, y)
	}
}

func BenchmarkMultivariateERPDependent(b *testing.B) {
	x, y := benchPair(128, 3)
	m := ERPDependent{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(x, y)
	}
}

func BenchmarkMultivariateMSMDependent(b *testing.B) {
	x, y := benchPair(128, 3)
	m := MSMDependent{C: 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(x, y)
	}
}

func BenchmarkMultivariateSoftDTW(b *testing.B) {
	x, y := benchPair(128, 3)
	m := SoftDTW{Gamma: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(x, y)
	}
}

func BenchmarkMultivariateMaskedEuclidean(b *testing.B) {
	x, y := benchPair(128, 3)
	m := MaskedEuclidean(0.3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(x, y)
	}
}
