package multivariate

import (
	"fmt"
	"math"
	"math/rand"
)

// Dataset is a labelled multivariate dataset with a train/test split,
// mirroring the UEA multivariate archive layout the paper cites.
type Dataset struct {
	Name        string
	Train       []Series
	TrainLabels []int
	Test        []Series
	TestLabels  []int
}

// GenConfig describes a synthetic multivariate dataset: motion-capture
// style trajectories whose channels are coupled harmonics of a shared
// latent phase, with class-dependent frequencies and per-instance phase
// shifts and shared smooth time warping (the distortion structure that
// separates DTW-D from DTW-I).
type GenConfig struct {
	Name       string
	Length     int
	Channels   int
	NumClasses int
	TrainSize  int
	TestSize   int
	Seed       int64

	NoiseSigma float64 // per-channel additive noise
	WarpFrac   float64 // strength of the shared smooth warping
	PhaseShift bool    // random per-instance phase offset

	// MissingFrac in [0, 1) marks that fraction of samples missing (NaN),
	// drawn independently per (series, time, channel) from a dedicated rng
	// stream so the underlying clean panel is identical across missingness
	// levels with the same Seed.
	MissingFrac float64
}

// Generate builds the dataset deterministically; every series is
// per-channel z-normalized. It panics on invalid configurations.
func Generate(cfg GenConfig) *Dataset {
	if cfg.Length < 8 || cfg.Channels < 1 || cfg.NumClasses < 2 ||
		cfg.TrainSize < cfg.NumClasses || cfg.TestSize < 1 ||
		cfg.MissingFrac < 0 || cfg.MissingFrac >= 1 {
		panic(fmt.Sprintf("multivariate: invalid config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Class prototypes: frequency and per-channel harmonic/phase layout.
	type proto struct {
		freq    float64
		harmon  []float64
		chPhase []float64
	}
	protos := make([]proto, cfg.NumClasses)
	for c := range protos {
		p := proto{
			freq:    1.5 + float64(c)*0.8,
			harmon:  make([]float64, cfg.Channels),
			chPhase: make([]float64, cfg.Channels),
		}
		for ch := range p.harmon {
			p.harmon[ch] = 1 + float64(ch%3)
			p.chPhase[ch] = rng.Float64() * 2 * math.Pi
		}
		protos[c] = p
	}
	gen := func(count int) ([]Series, []int) {
		series := make([]Series, count)
		labels := make([]int, count)
		for i := 0; i < count; i++ {
			c := i % cfg.NumClasses
			labels[i] = c + 1
			p := protos[c]
			phase := 0.0
			if cfg.PhaseShift {
				phase = rng.Float64() * 2 * math.Pi
			}
			warpAmp := cfg.WarpFrac * float64(cfg.Length)
			warpPhase := rng.Float64() * 2 * math.Pi
			s := make(Series, cfg.Length)
			for t := range s {
				// Shared latent time for all channels (the coupling DTW-D
				// exploits and DTW-I cannot).
				latent := float64(t)
				if warpAmp > 0 {
					latent += warpAmp * math.Sin(2*math.Pi*float64(t)/float64(cfg.Length)+warpPhase)
				}
				s[t] = make([]float64, cfg.Channels)
				for ch := 0; ch < cfg.Channels; ch++ {
					arg := 2*math.Pi*p.freq*p.harmon[ch]*latent/float64(cfg.Length) +
						p.chPhase[ch] + phase
					s[t][ch] = math.Sin(arg) + cfg.NoiseSigma*rng.NormFloat64()
				}
			}
			series[i] = s.ZNormalize()
		}
		return series, labels
	}
	d := &Dataset{Name: cfg.Name}
	d.Train, d.TrainLabels = gen(cfg.TrainSize)
	d.Test, d.TestLabels = gen(cfg.TestSize)
	if cfg.MissingFrac > 0 {
		// A separate stream keeps the clean values bit-identical across
		// missingness levels for the same Seed.
		mrng := rand.New(rand.NewSource(cfg.Seed ^ 0x4d495353))
		inject := func(set []Series) {
			for _, s := range set {
				for t := range s {
					for c := range s[t] {
						if mrng.Float64() < cfg.MissingFrac {
							s[t][c] = math.NaN()
						}
					}
				}
			}
		}
		inject(d.Train)
		inject(d.Test)
	}
	return d
}
