//go:build race

package multivariate

// raceEnabled mirrors the race detector state for tests: under -race,
// sync.Pool deliberately drops a fraction of Puts, so allocation-count
// assertions cannot hold.
const raceEnabled = true
