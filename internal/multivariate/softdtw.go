package multivariate

// Soft-DTW: the differentiable relaxation of DTW where the hard min over
// path predecessors is replaced by a soft-min with temperature Gamma
// (Cuturi & Blondel). The raw value is not a pseudometric — sdtw(x, x) is
// generally negative — so the Normalize option applies the self-distance
// trick d(x, y) = |sdtw(x, y) - (sdtw(x, x) + sdtw(y, y))/2|, which is
// zero on identical series and symmetric by construction.

import (
	"context"
	"fmt"
	"math"

	"repro/internal/elastic"
)

// SoftDTW is multivariate soft-DTW over vector-valued points with squared
// Euclidean point costs and the full (unbanded) m-by-n DP; unequal lengths
// are supported. Gamma must be > 0. With Normalize set, Distance returns
// the self-distance-normalized value (three DPs per call).
type SoftDTW struct {
	Gamma     float64
	Normalize bool
}

// Name implements Measure.
func (s SoftDTW) Name() string {
	if s.Normalize {
		return fmt.Sprintf("mv-sdtw-n[g=%g]", s.Gamma)
	}
	return fmt.Sprintf("mv-sdtw[g=%g]", s.Gamma)
}

// softMin3 is the numerically stabilized soft minimum
// -gamma*log(sum exp(-v/gamma)): the true min is factored out so the
// exponent arguments are <= 0. An all-+Inf operand set stays +Inf.
func softMin3(a, b, c, gamma float64) float64 {
	mn := a
	if b < mn {
		mn = b
	}
	if c < mn {
		mn = c
	}
	if math.IsInf(mn, 1) {
		return mn
	}
	sum := math.Exp((mn-a)/gamma) + math.Exp((mn-b)/gamma) + math.Exp((mn-c)/gamma)
	return mn - gamma*math.Log(sum)
}

// Distance implements Measure.
func (s SoftDTW) Distance(x, y Series) float64 {
	v, _ := s.distanceErr(nil, x, y)
	return v
}

// DistanceCtx implements ContextMeasure.
func (s SoftDTW) DistanceCtx(ctx context.Context, x, y Series) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return s.distanceErr(ctx, x, y)
}

func (s SoftDTW) distanceErr(ctx context.Context, x, y Series) (float64, error) {
	checkChannels(x, y)
	if !(s.Gamma > 0) {
		panic(fmt.Sprintf("multivariate: soft-DTW gamma %g must be > 0", s.Gamma))
	}
	if !s.Normalize {
		return s.raw(ctx, x, y)
	}
	xy, err := s.raw(ctx, x, y)
	if err != nil {
		return 0, err
	}
	xx, err := s.raw(ctx, x, x)
	if err != nil {
		return 0, err
	}
	yy, err := s.raw(ctx, y, y)
	if err != nil {
		return 0, err
	}
	return math.Abs(xy - 0.5*(xx+yy)), nil
}

func (s SoftDTW) raw(ctx context.Context, x, y Series) (float64, error) {
	m, n := len(x), len(y)
	if m == 0 && n == 0 {
		return 0, nil
	}
	if m == 0 || n == 0 {
		return math.Inf(1), nil
	}
	inf := math.Inf(1)
	sc, prev, cur := elastic.BorrowRows(n + 1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= m; i++ {
		if ctx != nil && i%ctxCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				sc.Release(prev, cur)
				return 0, err
			}
		}
		cur[0] = inf
		xi := x[i-1]
		for j := 1; j <= n; j++ {
			cost := sqDist(xi, y[j-1])
			cur[j] = cost + softMin3(prev[j-1], prev[j], cur[j-1], s.Gamma)
		}
		prev, cur = cur, prev
	}
	res := prev[n]
	sc.Release(prev, cur)
	return res, nil
}
