package multivariate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lockstep"
)

func randMV(rng *rand.Rand, m, d int) Series {
	s := make(Series, m)
	for t := range s {
		s[t] = make([]float64, d)
		for c := range s[t] {
			s[t][c] = rng.NormFloat64()
		}
	}
	return s
}

func TestValidate(t *testing.T) {
	good := Series{{1, 2}, {3, 4}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Series{{1, 2}, {3}}
	if bad.Validate() == nil {
		t.Fatal("ragged series must fail")
	}
	if (Series{}).Validate() == nil {
		t.Fatal("empty series must fail")
	}
	if (Series{{}}).Validate() == nil {
		t.Fatal("zero channels must fail")
	}
}

func TestChannelsAndChannel(t *testing.T) {
	s := Series{{1, 10}, {2, 20}, {3, 30}}
	if s.Channels() != 2 {
		t.Fatalf("channels = %d", s.Channels())
	}
	c1 := s.Channel(1)
	if c1[0] != 10 || c1[2] != 30 {
		t.Fatalf("channel 1 = %v", c1)
	}
	if (Series{}).Channels() != 0 {
		t.Fatal("empty channels should be 0")
	}
}

func TestZNormalizePerChannel(t *testing.T) {
	s := Series{{1, 100}, {2, 200}, {3, 300}}
	z := s.ZNormalize()
	for c := 0; c < 2; c++ {
		ch := z.Channel(c)
		var mean, ss float64
		for _, v := range ch {
			mean += v
		}
		mean /= float64(len(ch))
		for _, v := range ch {
			ss += (v - mean) * (v - mean)
		}
		sd := math.Sqrt(ss / float64(len(ch)))
		if math.Abs(mean) > 1e-9 || math.Abs(sd-1) > 1e-9 {
			t.Fatalf("channel %d: mean=%g sd=%g", c, mean, sd)
		}
	}
	// Constant channel becomes zeros.
	flat := Series{{5, 1}, {5, 2}}.ZNormalize()
	if flat[0][0] != 0 || flat[1][0] != 0 {
		t.Fatal("constant channel must normalize to zeros")
	}
}

func TestEuclideanSingleChannelMatchesUnivariate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randMV(rng, 30, 1)
	y := randMV(rng, 30, 1)
	got := Euclidean{}.Distance(x, y)
	want := lockstep.Euclidean().Distance(x.Channel(0), y.Channel(0))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("mv ED %g != univariate ED %g", got, want)
	}
}

func TestEuclideanKnown(t *testing.T) {
	x := Series{{0, 0}, {0, 0}}
	y := Series{{3, 0}, {0, 4}}
	if d := (Euclidean{}).Distance(x, y); math.Abs(d-5) > 1e-12 {
		t.Fatalf("mv ED = %g, want 5", d)
	}
}

func TestDTWDependentIdentityAndBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randMV(rng, 25, 3)
	d := DTWDependent{DeltaPercent: 100}
	if v := d.Distance(x, x); v != 0 {
		t.Fatalf("DTW-D(x,x) = %g", v)
	}
	// DTW-D is bounded by the lock-step squared vector distance.
	y := randMV(rng, 25, 3)
	var sq float64
	for t2 := range x {
		for c := range x[t2] {
			diff := x[t2][c] - y[t2][c]
			sq += diff * diff
		}
	}
	if v := d.Distance(x, y); v > sq+1e-9 {
		t.Fatalf("DTW-D %g exceeds lock-step cost %g", v, sq)
	}
}

func TestDTWIndependentEqualsSumOfChannels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randMV(rng, 20, 2)
	y := randMV(rng, 20, 2)
	di := DTWIndependent{DeltaPercent: 100}
	got := di.Distance(x, y)
	// DTW-I is by definition the sum of per-channel DTWs; with a single
	// shared warping path (DTW-D) the cost can only be higher or equal,
	// since DTW-I optimizes each channel separately.
	dd := DTWDependent{DeltaPercent: 100}.Distance(x, y)
	if got > dd+1e-9 {
		t.Fatalf("DTW-I %g > DTW-D %g; independent paths must not cost more", got, dd)
	}
}

func TestDTWDependentAlignsSharedWarp(t *testing.T) {
	// Two channels warped by the SAME time distortion: DTW-D should align
	// them nearly perfectly.
	m := 60
	mk := func(shift float64) Series {
		s := make(Series, m)
		for t2 := range s {
			w := float64(t2) + shift*math.Sin(2*math.Pi*float64(t2)/float64(m))
			s[t2] = []float64{
				math.Sin(2 * math.Pi * w / 20),
				math.Cos(2 * math.Pi * w / 20),
			}
		}
		return s
	}
	x := mk(0)
	y := mk(3)
	dd := DTWDependent{DeltaPercent: 20}.Distance(x, y)
	ed := Euclidean{}.Distance(x, y)
	if dd > ed*ed/10 {
		t.Fatalf("DTW-D %g not much smaller than squared ED %g on warped copy", dd, ed*ed)
	}
}

func TestIndependentLiftsUnivariateMeasure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randMV(rng, 20, 3)
	y := randMV(rng, 20, 3)
	ind := Independent{Base: lockstep.Manhattan()}
	var want float64
	for c := 0; c < 3; c++ {
		want += lockstep.Manhattan().Distance(x.Channel(c), y.Channel(c))
	}
	if got := ind.Distance(x, y); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Independent = %g, want %g", got, want)
	}
	if ind.Name() != "mv-indep[manhattan]" {
		t.Fatalf("name = %s", ind.Name())
	}
}

func TestMismatchPanics(t *testing.T) {
	x := Series{{1, 2}}
	short := Series{{1, 2}, {3, 4}}
	narrow := Series{{1}}
	for _, pair := range [][2]Series{{x, short}, {x, narrow}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			Euclidean{}.Distance(pair[0], pair[1])
		}()
	}
}

func TestOneNNMultivariate(t *testing.T) {
	// Two classes: channel-correlated sinusoids at different frequencies,
	// with per-instance phase shifts; DTW-D should classify well.
	rng := rand.New(rand.NewSource(5))
	gen := func(class, count int) []Series {
		out := make([]Series, count)
		for i := range out {
			freq := float64(class + 1)
			phase := rng.Float64() * 2 * math.Pi
			s := make(Series, 40)
			for t2 := range s {
				arg := 2*math.Pi*freq*float64(t2)/40 + phase
				s[t2] = []float64{math.Sin(arg), math.Cos(arg)}
			}
			out[i] = s.ZNormalize()
		}
		return out
	}
	var train, test []Series
	var trainL, testL []int
	for class := 0; class < 2; class++ {
		for _, s := range gen(class, 8) {
			train = append(train, s)
			trainL = append(trainL, class)
		}
		for _, s := range gen(class, 6) {
			test = append(test, s)
			testL = append(testL, class)
		}
	}
	acc := OneNN(DTWDependent{DeltaPercent: 20}, train, trainL, test, testL)
	if acc < 0.9 {
		t.Fatalf("DTW-D 1-NN accuracy %g, want >= 0.9", acc)
	}
	// ED struggles with the phase shifts.
	edAcc := OneNN(Euclidean{}, train, trainL, test, testL)
	if edAcc > acc {
		t.Fatalf("ED %g beat DTW-D %g on phase-shifted data", edAcc, acc)
	}
}

func TestOneNNPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OneNN(Euclidean{}, []Series{{{1}}}, []int{1, 2}, nil, nil)
}

func TestGenerateMVDataset(t *testing.T) {
	d := Generate(GenConfig{
		Name: "MV", Length: 40, Channels: 3, NumClasses: 2,
		TrainSize: 8, TestSize: 6, Seed: 1, NoiseSigma: 0.2,
		WarpFrac: 0.05, PhaseShift: true,
	})
	if len(d.Train) != 8 || len(d.Test) != 6 {
		t.Fatalf("split sizes %d/%d", len(d.Train), len(d.Test))
	}
	for _, s := range d.Train {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if s.Channels() != 3 || len(s) != 40 {
			t.Fatalf("shape %dx%d", len(s), s.Channels())
		}
	}
	// Deterministic.
	d2 := Generate(GenConfig{
		Name: "MV", Length: 40, Channels: 3, NumClasses: 2,
		TrainSize: 8, TestSize: 6, Seed: 1, NoiseSigma: 0.2,
		WarpFrac: 0.05, PhaseShift: true,
	})
	if d.Train[0][0][0] != d2.Train[0][0][0] {
		t.Fatal("generation not deterministic")
	}
}

func TestGenerateMVClassifiable(t *testing.T) {
	d := Generate(GenConfig{
		Name: "MVC", Length: 48, Channels: 2, NumClasses: 2,
		TrainSize: 12, TestSize: 12, Seed: 2, NoiseSigma: 0.15,
		WarpFrac: 0.08, PhaseShift: true,
	})
	acc := OneNN(DTWDependent{DeltaPercent: 20}, d.Train, d.TrainLabels, d.Test, d.TestLabels)
	if acc < 0.8 {
		t.Fatalf("DTW-D accuracy %g on generated MV data", acc)
	}
}

func TestGenerateMVPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(GenConfig{Length: 4, Channels: 0, NumClasses: 1, TrainSize: 0, TestSize: 0})
}
