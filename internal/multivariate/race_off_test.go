//go:build !race

package multivariate

// raceEnabled mirrors the race detector state for tests.
const raceEnabled = false
