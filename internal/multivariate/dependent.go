package multivariate

// Dependent generalizations of the elastic measures: one warping path over
// vector-valued points. The DPs run over the m-by-n cost matrix — the two
// series may differ in length, exactly as in the univariate definitions —
// with the rolling two-row layout borrowed from the internal/elastic row
// pool, so warm calls are allocation-free. Point costs reduce to the
// univariate costs at one channel (squared difference for DTW, absolute
// difference for ERP and MSM), and every recurrence replicates its
// univariate counterpart's operation order, so at d=1 the dependent
// measures are bitwise identical to internal/elastic — the oracle harness
// pins this.

import (
	"context"
	"fmt"
	"math"

	"repro/internal/elastic"
)

// ctxCheckRows is how many DP rows run between cooperative cancellation
// checks on the DistanceCtx routes.
const ctxCheckRows = 64

// bandWidth converts a Sakoe-Chiba window percentage into an absolute band
// half-width for an m-by-n DP: the univariate convention applied to the
// longer series, widened to |m-n| so the (m, n) corner stays reachable.
// At m == n it reduces exactly to the univariate window.
func bandWidth(deltaPercent, m, n int) int {
	longest := m
	if n > longest {
		longest = n
	}
	w := longest
	if deltaPercent < 100 {
		w = deltaPercent * longest / 100
		if w < 1 {
			w = 1
		}
	}
	diff := m - n
	if diff < 0 {
		diff = -diff
	}
	if w < diff {
		w = diff
	}
	return w
}

// sqDist is the squared Euclidean distance between two d-dimensional
// points; at d=1 it performs exactly the univariate (x-y)^2.
func sqDist(a, b []float64) float64 {
	var s float64
	for k := range a {
		d := a[k] - b[k]
		s += d * d
	}
	return s
}

// l1Dist is the L1 distance between two d-dimensional points; at d=1 it is
// exactly math.Abs(x-y).
func l1Dist(a, b []float64) float64 {
	var s float64
	for k := range a {
		s += math.Abs(a[k] - b[k])
	}
	return s
}

// DTWDependent is multivariate DTW with a single warping path over
// vector-valued points (DTW-D): the point cost is the squared Euclidean
// distance between the two d-dimensional samples. DeltaPercent is the
// Sakoe-Chiba band, as in the univariate DTW. Unequal-length pairs run the
// m-by-n banded DP; when exactly one series is empty the distance is +Inf
// (no alignment exists), and two empty series are at distance 0.
type DTWDependent struct {
	DeltaPercent int
}

// Name implements Measure.
func (d DTWDependent) Name() string { return fmt.Sprintf("mv-dtw-d[d=%d]", d.DeltaPercent) }

// Symmetric reports bitwise symmetry: the transposed DP combines the same
// operands with the same operations (comparisons carry no rounding).
func (d DTWDependent) Symmetric() bool { return true }

// Distance implements Measure.
func (d DTWDependent) Distance(x, y Series) float64 {
	return d.distance(nil, x, y, math.Inf(1))
}

// DistanceUpTo implements EarlyAbandoning with the univariate DTW
// contract: banded DP abandoned once an entire row reaches cutoff, the row
// minimum being a certified lower bound.
func (d DTWDependent) DistanceUpTo(x, y Series, cutoff float64) float64 {
	return d.distance(nil, x, y, cutoff)
}

// DistanceCtx implements ContextMeasure, checking ctx every ctxCheckRows
// DP rows.
func (d DTWDependent) DistanceCtx(ctx context.Context, x, y Series) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return d.distanceErr(ctx, x, y, math.Inf(1))
}

func (d DTWDependent) distance(ctx context.Context, x, y Series, cutoff float64) float64 {
	v, _ := d.distanceErr(ctx, x, y, cutoff)
	return v
}

func (d DTWDependent) distanceErr(ctx context.Context, x, y Series, cutoff float64) (float64, error) {
	checkChannels(x, y)
	m, n := len(x), len(y)
	if m == 0 && n == 0 {
		return 0, nil
	}
	if m == 0 || n == 0 {
		return math.Inf(1), nil
	}
	w := bandWidth(d.DeltaPercent, m, n)
	inf := math.Inf(1)
	s, prev, cur := elastic.BorrowRows(n + 1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= m; i++ {
		if ctx != nil && i%ctxCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				s.Release(prev, cur)
				return 0, err
			}
		}
		lo := i - w
		if lo < 1 {
			lo = 1
		}
		hi := i + w
		if hi > n {
			hi = n
		}
		// The band advances by at most one cell per row, so only its fringe
		// needs re-initializing (the univariate fringe-clearing pattern).
		cur[lo-1] = inf
		if hi < n {
			cur[hi+1] = inf
		}
		rowMin := inf
		xi := x[i-1]
		for j := lo; j <= hi; j++ {
			c := sqDist(xi, y[j-1])
			best := prev[j-1] // diagonal
			if prev[j] < best {
				best = prev[j] // insertion
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			v := c + best
			cur[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if rowMin >= cutoff {
			s.Release(prev, cur)
			return rowMin, nil
		}
		prev, cur = cur, prev
	}
	res := prev[n]
	s.Release(prev, cur)
	return res, nil
}

// ERPDependent is multivariate ERP with vector-valued points: gaps are
// penalized by the L1 distance of the point to the constant gap value G on
// every channel, matches by the L1 point distance. The DP is the full
// m-by-n ERP matrix; deleting an entire series against an empty one costs
// its cumulative gap penalty, so unequal lengths — including one empty
// side — are well defined.
type ERPDependent struct {
	G float64
}

// Name implements Measure.
func (e ERPDependent) Name() string { return "mv-erp-d" }

// Symmetric reports bitwise symmetry (as for DTW, the transposed
// recurrence combines the same operands).
func (e ERPDependent) Symmetric() bool { return true }

// gapCost is the L1 penalty for aligning point p against the gap value; at
// d=1 it is exactly math.Abs(p-G).
func (e ERPDependent) gapCost(p []float64) float64 {
	var s float64
	for k := range p {
		s += math.Abs(p[k] - e.G)
	}
	return s
}

// Distance implements Measure.
func (e ERPDependent) Distance(x, y Series) float64 {
	v, _ := e.distanceErr(nil, x, y)
	return v
}

// DistanceCtx implements ContextMeasure.
func (e ERPDependent) DistanceCtx(ctx context.Context, x, y Series) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return e.distanceErr(ctx, x, y)
}

func (e ERPDependent) distanceErr(ctx context.Context, x, y Series) (float64, error) {
	checkChannels(x, y)
	m, n := len(x), len(y)
	s, prev, cur := elastic.BorrowRows(n + 1)
	prev[0] = 0
	for j := 1; j <= n; j++ {
		prev[j] = prev[j-1] + e.gapCost(y[j-1])
	}
	for i := 1; i <= m; i++ {
		if ctx != nil && i%ctxCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				s.Release(prev, cur)
				return 0, err
			}
		}
		xi := x[i-1]
		gx := e.gapCost(xi)
		cur[0] = prev[0] + gx
		for j := 1; j <= n; j++ {
			yj := y[j-1]
			match := prev[j-1] + l1Dist(xi, yj)
			gapX := prev[j] + gx
			gapY := cur[j-1] + e.gapCost(yj)
			cur[j] = math.Min(match, math.Min(gapX, gapY))
		}
		prev, cur = cur, prev
	}
	res := prev[n]
	s.Release(prev, cur)
	return res, nil
}

// MSMDependent is multivariate Move-Split-Merge with vector-valued points:
// the move cost is the L1 point distance and the split/merge cost is C
// when the new point lies componentwise between its two anchors, otherwise
// C plus the L1 distance to the nearer anchor — both reduce exactly to the
// univariate MSM costs at one channel. Two empty series are at distance 0;
// exactly one empty side is +Inf (MSM defines no gap operation).
type MSMDependent struct {
	C float64
}

// Name implements Measure.
func (m MSMDependent) Name() string { return fmt.Sprintf("mv-msm-d[c=%g]", m.C) }

// Symmetric reports bitwise symmetry: under x<->y the split and merge
// roles swap and the cost is symmetric in its anchor points.
func (m MSMDependent) Symmetric() bool { return true }

// msmCost is the vector split/merge cost C(new, a, b).
func (m MSMDependent) msmCost(p, a, b []float64) float64 {
	between := true
	var dpa, dpb float64
	for k := range p {
		if !((a[k] <= p[k] && p[k] <= b[k]) || (b[k] <= p[k] && p[k] <= a[k])) {
			between = false
		}
		dpa += math.Abs(p[k] - a[k])
		dpb += math.Abs(p[k] - b[k])
	}
	if between {
		return m.C
	}
	return m.C + math.Min(dpa, dpb)
}

// Distance implements Measure.
func (m MSMDependent) Distance(x, y Series) float64 {
	v, _ := m.distanceErr(nil, x, y)
	return v
}

// DistanceCtx implements ContextMeasure.
func (m MSMDependent) DistanceCtx(ctx context.Context, x, y Series) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return m.distanceErr(ctx, x, y)
}

func (m MSMDependent) distanceErr(ctx context.Context, x, y Series) (float64, error) {
	checkChannels(x, y)
	mm, n := len(x), len(y)
	if mm == 0 && n == 0 {
		return 0, nil
	}
	if mm == 0 || n == 0 {
		return math.Inf(1), nil
	}
	s, prev, cur := elastic.BorrowRows(n)
	prev[0] = l1Dist(x[0], y[0])
	for j := 1; j < n; j++ {
		prev[j] = prev[j-1] + m.msmCost(y[j], x[0], y[j-1])
	}
	for i := 1; i < mm; i++ {
		if ctx != nil && i%ctxCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				s.Release(prev, cur)
				return 0, err
			}
		}
		xi, xim := x[i], x[i-1]
		cur[0] = prev[0] + m.msmCost(xi, xim, y[0])
		for j := 1; j < n; j++ {
			yj := y[j]
			move := prev[j-1] + l1Dist(xi, yj)
			split := prev[j] + m.msmCost(xi, xim, yj)
			merge := cur[j-1] + m.msmCost(yj, xi, y[j-1])
			cur[j] = math.Min(move, math.Min(split, merge))
		}
		prev, cur = cur, prev
	}
	res := prev[n-1]
	s.Release(prev, cur)
	return res, nil
}
