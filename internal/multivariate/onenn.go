package multivariate

// 1-NN evaluation over multivariate panels: the multivariate mirror of
// internal/eval, built on the shared par dispatch core. Degenerate inputs
// follow the repo-wide convention: an empty reference set yields neighbor
// (-1, +Inf) — never a panic — and a prediction of -1 matches no label.

import (
	"context"
	"fmt"
	"math"

	"repro/internal/par"
)

// Classify finds, for every test series, its nearest train series under m.
// It returns the best train indices and distances; an empty train set
// yields (-1, +Inf) for every query. NaN distances are treated as +Inf
// (never the nearest), ties keep the lowest train index, and measures
// implementing EarlyAbandoning are driven with the best-so-far cutoff.
// Queries run in parallel across par.Workers(len(test)) goroutines; a
// cancelled ctx returns its error with no partial results. A nil ctx never
// cancels.
func Classify(ctx context.Context, m Measure, train, test []Series) ([]int, []float64, error) {
	idx := make([]int, len(test))
	dists := make([]float64, len(test))
	ea, hasEA := m.(EarlyAbandoning)
	err := par.ForCtx(ctx, len(test), par.Workers(len(test)), func(i int) {
		q := test[i]
		best, bestDist := -1, math.Inf(1)
		for j, r := range train {
			var d float64
			if hasEA && best >= 0 {
				d = ea.DistanceUpTo(q, r, bestDist)
			} else {
				d = m.Distance(q, r)
			}
			if math.IsNaN(d) {
				d = math.Inf(1)
			}
			if best == -1 || d < bestDist {
				best, bestDist = j, d
			}
		}
		idx[i], dists[i] = best, bestDist
	})
	if err != nil {
		return nil, nil, err
	}
	return idx, dists, nil
}

// AccuracyCtx runs 1-NN classification of test against the labeled train
// set and returns the fraction of test series whose nearest neighbor
// carries the correct label. An empty test set scores 0; an empty train
// set predicts -1 everywhere (also 0). It panics when a label slice
// disagrees in length with its series slice — that is a programmer error,
// not a data condition.
func AccuracyCtx(ctx context.Context, m Measure, train []Series, trainLabels []int, test []Series, testLabels []int) (float64, error) {
	if len(train) != len(trainLabels) {
		panic(fmt.Sprintf("multivariate: %d train series, %d train labels", len(train), len(trainLabels)))
	}
	if len(test) != len(testLabels) {
		panic(fmt.Sprintf("multivariate: %d test series, %d test labels", len(test), len(testLabels)))
	}
	if len(test) == 0 {
		return 0, nil
	}
	idx, _, err := Classify(ctx, m, train, test)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, best := range idx {
		if best >= 0 && trainLabels[best] == testLabels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(test)), nil
}

// OneNN is AccuracyCtx without cancellation, kept for callers that do not
// thread a context.
func OneNN(m Measure, train []Series, trainLabels []int, test []Series, testLabels []int) float64 {
	acc, _ := AccuracyCtx(nil, m, train, trainLabels, test, testLabels)
	return acc
}
