package multivariate

// NaN-masked lock-step measures for panels with missing samples. NaN marks
// a missing observation (Inf is an observed — if extreme — value); a time
// point contributes to a channel only when BOTH series observe it. Each
// channel's accumulated cost over its valid pairs is rescaled by n/valid
// (valid-pair normalization: the missing pairs are assumed to contribute
// the observed mean cost), finished per the base metric (sqrt for
// Euclidean), and channels whose valid-pair fraction falls below
// MinSupport are dropped entirely — a mostly-missing channel is noise, not
// signal. The result is the mean over supported channels, +Inf when no
// channel reaches minimum support. On fully observed data at one channel
// the masked measures are bitwise the univariate lock-step distances (the
// rescale is ×1.0 and the channel mean divides by one, both exact).

import (
	"fmt"
	"math"
)

type maskedKind int

const (
	maskedEuclideanKind maskedKind = iota
	maskedManhattanKind
)

// Masked is a NaN-masked lock-step measure. Construct via MaskedEuclidean
// or MaskedManhattan; the zero value is a masked Euclidean with zero
// minimum support.
type Masked struct {
	kind maskedKind
	// MinSupport is the minimum fraction of valid (both-observed) pairs a
	// channel needs to participate, in [0, 1]. Regardless of MinSupport, a
	// channel with zero valid pairs is always dropped (its cost is
	// undefined).
	MinSupport float64
}

// MaskedEuclidean returns the NaN-masked vector Euclidean distance with
// the given per-channel minimum-support fraction.
func MaskedEuclidean(minSupport float64) Masked {
	return Masked{kind: maskedEuclideanKind, MinSupport: minSupport}
}

// MaskedManhattan returns the NaN-masked per-channel Manhattan distance
// with the given per-channel minimum-support fraction.
func MaskedManhattan(minSupport float64) Masked {
	return Masked{kind: maskedManhattanKind, MinSupport: minSupport}
}

// Name implements Measure.
func (m Masked) Name() string {
	base := "mv-masked-euclidean"
	if m.kind == maskedManhattanKind {
		base = "mv-masked-manhattan"
	}
	return fmt.Sprintf("%s[s=%g]", base, m.MinSupport)
}

// Symmetric reports bitwise symmetry: the mask and every per-pair cost are
// symmetric in x and y.
func (m Masked) Symmetric() bool { return true }

// Distance implements Measure.
func (m Masked) Distance(x, y Series) float64 {
	d := checkLockstep(x, y)
	if !(m.MinSupport >= 0 && m.MinSupport <= 1) {
		panic(fmt.Sprintf("multivariate: MinSupport %g outside [0, 1]", m.MinSupport))
	}
	n := len(x)
	if n == 0 {
		return 0
	}
	minValid := int(math.Ceil(m.MinSupport * float64(n)))
	if minValid < 1 {
		minValid = 1
	}
	var total float64
	supported := 0
	for c := 0; c < d; c++ {
		var sum float64
		valid := 0
		for t := 0; t < n; t++ {
			a, b := x[t][c], y[t][c]
			if math.IsNaN(a) || math.IsNaN(b) {
				continue
			}
			valid++
			if m.kind == maskedManhattanKind {
				sum += math.Abs(a - b)
			} else {
				diff := a - b
				sum += diff * diff
			}
		}
		if valid < minValid {
			continue
		}
		sum *= float64(n) / float64(valid)
		if m.kind == maskedEuclideanKind {
			sum = math.Sqrt(sum)
		}
		total += sum
		supported++
	}
	if supported == 0 {
		return math.Inf(1)
	}
	return total / float64(supported)
}
