package multivariate

// Independent lifts: apply a univariate measure per channel and sum the
// per-channel distances. Channel extraction goes through the pooled
// chanScratch buffers, so warm calls allocate nothing beyond what the
// base measure itself allocates (the elastic DPs are pooled too, so the
// DTW-I hot path is fully allocation-free).

import (
	"context"
	"fmt"
	"math"

	"repro/internal/elastic"
	"repro/internal/measure"
)

// DTWIndependent is multivariate DTW with one warping path per channel
// (DTW-I): the distance is the sum over channels of the univariate DTW of
// the channel pair. DeltaPercent is the Sakoe-Chiba band passed to each
// univariate DP. Like univariate DTW, it requires equal lengths.
type DTWIndependent struct {
	DeltaPercent int
}

// Name implements Measure.
func (d DTWIndependent) Name() string { return fmt.Sprintf("mv-dtw-i[d=%d]", d.DeltaPercent) }

// Symmetric reports bitwise symmetry, inherited per channel from the
// univariate DTW.
func (d DTWIndependent) Symmetric() bool { return true }

// Distance implements Measure.
func (d DTWIndependent) Distance(x, y Series) float64 {
	return Independent{Base: elastic.DTW{DeltaPercent: d.DeltaPercent}}.Distance(x, y)
}

// DistanceUpTo implements EarlyAbandoning: per-channel distances are
// non-negative, so the running sum is a certified lower bound and each
// channel DP may itself abandon against the remaining budget.
func (d DTWIndependent) DistanceUpTo(x, y Series, cutoff float64) float64 {
	return Independent{Base: elastic.DTW{DeltaPercent: d.DeltaPercent}}.DistanceUpTo(x, y, cutoff)
}

// DistanceCtx implements ContextMeasure, checking ctx between channels.
func (d DTWIndependent) DistanceCtx(ctx context.Context, x, y Series) (float64, error) {
	return Independent{Base: elastic.DTW{DeltaPercent: d.DeltaPercent}}.DistanceCtx(ctx, x, y)
}

// Independent lifts any univariate measure to multivariate series by
// summing per-channel distances. At one channel it is bitwise the base
// measure (sum of one term). It requires equal lengths — the lift feeds
// the base measure aligned channel pairs — and inherits early abandoning
// when the base supports it.
type Independent struct {
	Base measure.Measure
}

// Name implements Measure.
func (ind Independent) Name() string { return "mv-indep[" + ind.Base.Name() + "]" }

// Distance implements Measure.
func (ind Independent) Distance(x, y Series) float64 {
	d := checkLockstep(x, y)
	s, bufA, bufB := borrowChannels(len(x), len(y))
	defer s.release()
	var sum float64
	for c := 0; c < d; c++ {
		sum += ind.Base.Distance(x.ChannelInto(c, bufA), y.ChannelInto(c, bufB))
	}
	return sum
}

// DistanceUpTo implements EarlyAbandoning. Per-channel distances are
// non-negative, so the partial sum is a certified lower bound; when the
// base measure supports early abandoning the remaining budget is passed
// down as the per-channel cutoff. With an infinite cutoff no channel is
// abandoned and no early exit fires, so the result is bitwise Distance —
// even when channel distances mix +Inf and NaN.
func (ind Independent) DistanceUpTo(x, y Series, cutoff float64) float64 {
	d := checkLockstep(x, y)
	ea, hasEA := ind.Base.(measure.EarlyAbandoning)
	abandoning := !math.IsInf(cutoff, 1)
	s, bufA, bufB := borrowChannels(len(x), len(y))
	defer s.release()
	var sum float64
	for c := 0; c < d; c++ {
		cx := x.ChannelInto(c, bufA)
		cy := y.ChannelInto(c, bufB)
		if hasEA {
			rem := cutoff - sum
			if math.IsNaN(rem) {
				rem = math.Inf(1)
			}
			sum += ea.DistanceUpTo(cx, cy, rem)
		} else {
			sum += ind.Base.Distance(cx, cy)
		}
		if abandoning && sum >= cutoff {
			return sum
		}
	}
	return sum
}

// DistanceCtx implements ContextMeasure, checking ctx between channels and
// delegating to the base measure's DistanceCtx when it has one.
func (ind Independent) DistanceCtx(ctx context.Context, x, y Series) (float64, error) {
	d := checkLockstep(x, y)
	cm, hasCtx := ind.Base.(measure.ContextMeasure)
	s, bufA, bufB := borrowChannels(len(x), len(y))
	defer s.release()
	var sum float64
	for c := 0; c < d; c++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		cx := x.ChannelInto(c, bufA)
		cy := y.ChannelInto(c, bufB)
		if hasCtx {
			v, err := cm.DistanceCtx(ctx, cx, cy)
			if err != nil {
				return 0, err
			}
			sum += v
		} else {
			sum += ind.Base.Distance(cx, cy)
		}
	}
	return sum, nil
}
