package embedding

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/linalg"
)

// The engine-backed fits must reproduce the pre-engine serial fits. Raw
// representations are not comparable — the QL and Jacobi eigensolvers are
// free to pick different orthonormal bases inside repeated eigenspaces —
// but the pairwise Euclidean distances between representations are
// invariant under exactly that ambiguity (the embedding inner product is
// e_x U Λ⁻¹ Uᵀ e_y, unchanged by per-eigenspace rotations), so the
// property tests compare representation-distance matrices within the
// TolFFT tier of DESIGN.md §10.

// grailNaiveFit replicates GRAIL.Fit as it existed before the Gram
// engine: serial per-pair landmark Gram over prepared states, the cyclic
// Jacobi eigensolver, same spectrum filter. It returns a transform
// closure over the fitted basis.
func grailNaiveFit(gamma float64, dim int, seed int64, train [][]float64) func([]float64) []float64 {
	sink := kernel.SINK{Gamma: gamma}
	landmarks := sampleLandmarks(train, dim, seed)
	d := len(landmarks)
	prep := make([]any, d)
	for i, l := range landmarks {
		prep[i] = sink.Prepare(l)
	}
	w := linalg.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		w.Set(i, i, 1)
		for j := i + 1; j < d; j++ {
			k := 1 - sink.PreparedDistance(prep[i], prep[j])
			w.Set(i, j, k)
			w.Set(j, i, k)
		}
	}
	vals, vecs := linalg.EigenSymJacobi(w)
	basis := linalg.NewMatrix(d, d)
	for j := 0; j < d; j++ {
		if !(vals[j] > 1e-10) {
			continue
		}
		inv := 1 / math.Sqrt(vals[j])
		for r := 0; r < d; r++ {
			basis.Set(r, j, vecs.At(r, j)*inv)
		}
	}
	return func(x []float64) []float64 {
		px := sink.Prepare(x)
		e := make([]float64, d)
		for i, pl := range prep {
			e[i] = 1 - sink.PreparedDistance(px, pl)
		}
		z := make([]float64, basis.Cols)
		for r, ev := range e {
			if ev == 0 {
				continue
			}
			row := basis.Row(r)
			for c, bv := range row {
				z[c] += ev * bv
			}
		}
		return z
	}
}

// spiralNaiveFit replicates SPIRAL.Fit with the serial DTW landmark matrix
// and the Jacobi eigensolver.
func spiralNaiveFit(dim int, seed int64, train [][]float64) func([]float64) []float64 {
	landmarks := sampleLandmarks(train, dim, seed)
	d := len(landmarks)
	sq := linalg.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			v := dtwUnconstrained(landmarks[i], landmarks[j])
			sq.Set(i, j, v)
			sq.Set(j, i, v)
		}
	}
	colMean := make([]float64, d)
	var total float64
	for j := 0; j < d; j++ {
		var cm float64
		for i := 0; i < d; i++ {
			cm += sq.At(i, j)
		}
		cm /= float64(d)
		colMean[j] = cm
		total += cm
	}
	total /= float64(d)
	b := linalg.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			b.Set(i, j, -0.5*(sq.At(i, j)-colMean[i]-colMean[j]+total))
		}
	}
	vals, vecs := linalg.EigenSymJacobi(b)
	proj := linalg.NewMatrix(d, d)
	for j := 0; j < d; j++ {
		if !(vals[j] > 1e-10) {
			continue
		}
		inv := 1 / math.Sqrt(vals[j])
		for r := 0; r < d; r++ {
			proj.Set(r, j, vecs.At(r, j)*inv)
		}
	}
	return func(x []float64) []float64 {
		delta := make([]float64, d)
		for i, l := range landmarks {
			delta[i] = dtwUnconstrained(x, l) - colMean[i]
		}
		z := make([]float64, proj.Cols)
		for r, dv := range delta {
			if dv == 0 {
				continue
			}
			row := proj.Row(r)
			for c, pv := range row {
				z[c] += -0.5 * dv * pv
			}
		}
		return z
	}
}

// repDistances maps every query through both transforms and returns the
// two pairwise Euclidean distance matrices.
func repDistances(queries [][]float64, a, b func([]float64) []float64) (da, db [][]float64) {
	ra := make([][]float64, len(queries))
	rb := make([][]float64, len(queries))
	for i, q := range queries {
		ra[i] = a(q)
		rb[i] = b(q)
	}
	da = make([][]float64, len(queries))
	db = make([][]float64, len(queries))
	for i := range queries {
		da[i] = make([]float64, len(queries))
		db[i] = make([]float64, len(queries))
		for j := range queries {
			da[i][j] = euclidean(ra[i], ra[j])
			db[i][j] = euclidean(rb[i], rb[j])
		}
	}
	return da, db
}

// tolFFT mirrors the FFT-tier tolerance of DESIGN.md §10 (oracle.TolFFT).
const tolFFT = 1e-6

func agreeTol(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) == math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestGRAILEngineFitMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	train := trainSet(rng, 24, 40)
	queries := trainSet(rng, 10, 40)
	// Constant and zero series exercise the degenerate kernel rows.
	queries[0] = make([]float64, 40)
	for j := range queries[1] {
		queries[1][j] = 2.5
	}
	g := &GRAIL{Gamma: 5, Dim: 12, Seed: 3}
	g.Fit(train)
	naive := grailNaiveFit(5, 12, 3, train)
	da, db := repDistances(queries, g.Transform, naive)
	for i := range da {
		for j := range da[i] {
			if !agreeTol(da[i][j], db[i][j], tolFFT) {
				t.Fatalf("GRAIL rep distance [%d][%d]: engine %v, naive %v", i, j, da[i][j], db[i][j])
			}
		}
	}
}

func TestSPIRALEngineFitMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	train := trainSet(rng, 20, 36)
	queries := trainSet(rng, 8, 36)
	s := &SPIRAL{Dim: 10, Seed: 4}
	s.Fit(train)
	naive := spiralNaiveFit(10, 4, train)
	da, db := repDistances(queries, s.Transform, naive)
	for i := range da {
		for j := range da[i] {
			if !agreeTol(da[i][j], db[i][j], tolFFT) {
				t.Fatalf("SPIRAL rep distance [%d][%d]: engine %v, naive %v", i, j, da[i][j], db[i][j])
			}
		}
	}
}

// TestFitDegenerateTrainingSeries is the embedding-level regression for
// the non-finite eigensolver guard: training sets poisoned with NaN/Inf
// series must produce defined fits — finite basis/projection data — not
// NaN-soaked rotations (GRAIL) or a silently-spinning eigensolver
// (SPIRAL's centered matrix goes all-NaN).
func TestFitDegenerateTrainingSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	train := trainSet(rng, 12, 24)
	train[3][7] = math.NaN()
	train[5][0] = math.Inf(1)

	g := &GRAIL{Gamma: 5, Dim: 12, Seed: 1}
	g.Fit(train)
	for i, v := range g.basis.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("GRAIL basis[%d] = %v after degenerate fit", i, v)
		}
	}
	z := g.Transform(train[0])
	for i, v := range z {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("GRAIL transform[%d] = %v after degenerate fit", i, v)
		}
	}

	s := &SPIRAL{Dim: 12, Seed: 1}
	s.Fit(train)
	for i, v := range s.proj.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("SPIRAL proj[%d] = %v after degenerate fit", i, v)
		}
	}
}

// TestEmbeddingOneNNAccuracyMatchesNaive checks the end metric: 1-NN
// classification decisions from engine-fit representations equal the
// naive fit's on separable data (representation distances agree to the
// FFT tier, so neighbors only could differ on near-exact ties).
func TestEmbeddingOneNNAccuracyMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	train := trainSet(rng, 24, 40)
	test := trainSet(rng, 12, 40)
	g := &GRAIL{Gamma: 5, Dim: 12, Seed: 9}
	g.Fit(train)
	naive := grailNaiveFit(5, 12, 9, train)

	nearest := func(tr func([]float64) []float64) []int {
		reps := make([][]float64, len(train))
		for i, x := range train {
			reps[i] = tr(x)
		}
		out := make([]int, len(test))
		for i, q := range test {
			zq := tr(q)
			best, bestD := -1, math.Inf(1)
			for j, r := range reps {
				if d := euclidean(zq, r); d < bestD {
					best, bestD = j, d
				}
			}
			out[i] = best
		}
		return out
	}
	ne := nearest(g.Transform)
	nn := nearest(naive)
	for i := range ne {
		if ne[i] != nn[i] {
			t.Fatalf("query %d: engine neighbor %d, naive neighbor %d", i, ne[i], nn[i])
		}
	}
}

func TestDTWScratchReuseBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	sc := new(dtwScratch)
	for trial := 0; trial < 30; trial++ {
		x := make([]float64, 1+rng.Intn(40))
		y := make([]float64, 1+rng.Intn(40))
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		// Fresh rows vs recycled rows: identical recursion, identical bits.
		want := dtwUnconstrainedTo(x, y, new(dtwScratch))
		got := dtwUnconstrainedTo(x, y, sc)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("trial %d: pooled DTW %v, fresh %v", trial, got, want)
		}
	}
}
