// Package embedding implements the 4 embedding measures of Section 9 of
// the paper: GRAIL (Nyström approximation of the SINK kernel), RWS (random
// warping series features approximating GAK), SPIRAL (a DTW-preserving
// embedding, realized here as landmark MDS over DTW), and SIDL
// (shift-invariant dictionary learning). Each learns a fixed-length
// representation (the paper uses length 100) from the training split; the
// downstream dissimilarity is the Euclidean distance between
// representations, giving O(d) comparisons after the one-off fit.
//
// SPIRAL and SIDL are research codes without canonical reference
// implementations; per DESIGN.md §3 they are realized as documented
// approximations that preserve the measured behaviour (cheap comparisons,
// accuracy below GRAIL).
package embedding

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/kernel"
	"repro/internal/kshape"
	"repro/internal/linalg"
	"repro/internal/measure"
	"repro/internal/par"
)

// DefaultDim is the representation length used throughout the paper's
// embedding experiments.
const DefaultDim = 100

// Embedder learns a fixed-length similarity-preserving representation from
// a training set and maps arbitrary series into it.
type Embedder interface {
	// Name identifies the embedding in tables and registries.
	Name() string
	// Fit learns the representation from the training series. It must be
	// called before Transform and is deterministic for a fixed Embedder
	// configuration.
	Fit(train [][]float64)
	// Transform maps one series to its representation.
	Transform(x []float64) []float64
}

// ContextFitter is an optional Embedder extension: a fit whose heavy
// phases (Gram fills, landmark alignments) observe cancellation at the
// chunk granularity of internal/par. A cancelled fit returns ctx.Err()
// and leaves the embedder unfitted.
type ContextFitter interface {
	Embedder
	// FitCtx is Fit honoring ctx.
	FitCtx(ctx context.Context, train [][]float64) error
}

// Fit fits e, using the cancellable path when the embedder provides one.
// An uncancellable fit under an already-cancelled context still returns
// the context error without fitting, so callers get a uniform contract.
func Fit(ctx context.Context, e Embedder, train [][]float64) error {
	if cf, ok := e.(ContextFitter); ok {
		return cf.FitCtx(ctx, train)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	e.Fit(train)
	return nil
}

// euclidean is the comparison applied to representations.
func euclidean(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Measure adapts a fitted Embedder to the measure interface; it implements
// measure.Stateful so dissimilarity matrices transform each series once.
type Measure struct {
	E Embedder
}

// Name implements measure.Measure.
func (m Measure) Name() string { return m.E.Name() }

// Distance implements measure.Measure.
func (m Measure) Distance(x, y []float64) float64 {
	return euclidean(m.E.Transform(x), m.E.Transform(y))
}

// Prepare implements measure.Stateful.
func (m Measure) Prepare(x []float64) any { return m.E.Transform(x) }

// PreparedDistance implements measure.Stateful.
func (m Measure) PreparedDistance(px, py any) float64 {
	return euclidean(px.([]float64), py.([]float64))
}

// kshapeLandmarks clusters the training set into count clusters with
// k-Shape and returns the non-degenerate centroids as landmarks, the
// original GRAIL's dictionary-learning step. Empty clusters fall back to
// sampled series so the landmark count is preserved.
func kshapeLandmarks(train [][]float64, count int, seed int64) [][]float64 {
	if count > len(train) {
		count = len(train)
	}
	res := kshape.Run(train, kshape.Config{K: count, Seed: seed})
	fallback := sampleLandmarks(train, count, seed)
	out := make([][]float64, count)
	for c := 0; c < count; c++ {
		centroid := res.Centroids[c]
		degenerate := true
		for _, v := range centroid {
			if v != 0 {
				degenerate = false
				break
			}
		}
		if degenerate {
			out[c] = fallback[c]
		} else {
			out[c] = centroid
		}
	}
	return out
}

// sampleLandmarks picks count distinct training series deterministically.
func sampleLandmarks(train [][]float64, count int, seed int64) [][]float64 {
	if count > len(train) {
		count = len(train)
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(train))[:count]
	out := make([][]float64, count)
	for i, j := range idx {
		out[i] = train[j]
	}
	return out
}

//
// ---- GRAIL ----
//

// GRAIL learns representations whose Euclidean comparison approximates the
// SINK kernel, via the Nyström method: a set of landmark series is chosen
// from the training set (k-Shape centroids when KShapeLandmarks is set,
// matching the original GRAIL; uniform sampling otherwise), the landmark
// Gram matrix is eigendecomposed, and each series is embedded as
// k(x, landmarks) * U * Lambda^{-1/2}.
type GRAIL struct {
	Gamma float64 // SINK kernel parameter (Table 4's grid)
	Dim   int     // representation length; 0 means DefaultDim
	Seed  int64
	// KShapeLandmarks selects landmarks as k-Shape cluster centroids (the
	// original GRAIL's dictionary construction) instead of sampled series.
	KShapeLandmarks bool

	sink      kernel.SINK
	landmarks []any // prepared SINK state per landmark
	basis     *linalg.Matrix
	fitted    bool
}

// Name implements Embedder.
func (g *GRAIL) Name() string { return fmt.Sprintf("grail[g=%g]", g.Gamma) }

func (g *GRAIL) dim() int {
	if g.Dim > 0 {
		return g.Dim
	}
	return DefaultDim
}

// Fit implements Embedder.
func (g *GRAIL) Fit(train [][]float64) {
	if err := g.FitCtx(context.Background(), train); err != nil {
		panic(fmt.Sprintf("embedding: GRAIL.Fit: impossible error %v", err))
	}
}

// FitCtx implements ContextFitter: the landmark Gram preparation and fill
// observe ctx; a cancelled fit returns ctx.Err() with the embedder left
// unfitted.
func (g *GRAIL) FitCtx(ctx context.Context, train [][]float64) error {
	if len(train) == 0 {
		panic("embedding: GRAIL.Fit with empty training set")
	}
	g.sink = kernel.SINK{Gamma: g.Gamma}
	var landmarks [][]float64
	if g.KShapeLandmarks {
		landmarks = kshapeLandmarks(train, g.dim(), g.Seed)
	} else {
		landmarks = sampleLandmarks(train, g.dim(), g.Seed)
	}
	d := len(landmarks)
	// Landmark Gram matrix of the normalized SINK kernel, built by the
	// batched engine: one FFT spectrum per landmark, parallel tiled fill,
	// values bitwise identical to the per-pair prepared loop it replaces.
	// The engine's prepared states also serve Transform's projections.
	eng, err := kernel.NewGramEngineCtx(ctx, g.sink, landmarks)
	if err != nil {
		return err
	}
	g.landmarks = eng.PreparedStates()
	w, err := eng.GramCtx(ctx)
	if err != nil {
		g.landmarks = nil
		return err
	}
	vals, vecs := linalg.EigenSym(w)
	// Basis columns U_j / sqrt(lambda_j) for the positive spectrum. The
	// negated guard keeps NaN eigenvalues (degenerate landmark input) in
	// the dropped null space instead of leaking NaN into every projection.
	basis := linalg.NewMatrix(d, d)
	for j := 0; j < d; j++ {
		if !(vals[j] > 1e-10) {
			continue // drop the null space (and a NaN spectrum)
		}
		inv := 1 / math.Sqrt(vals[j])
		for r := 0; r < d; r++ {
			basis.Set(r, j, vecs.At(r, j)*inv)
		}
	}
	g.basis = basis
	g.fitted = true
	return nil
}

// Transform implements Embedder.
func (g *GRAIL) Transform(x []float64) []float64 {
	if !g.fitted {
		panic("embedding: GRAIL.Transform before Fit")
	}
	px := g.sink.Prepare(x)
	e := make([]float64, len(g.landmarks))
	for i, pl := range g.landmarks {
		e[i] = 1 - g.sink.PreparedDistance(px, pl)
	}
	// z = e * basis (row vector times matrix).
	z := make([]float64, g.basis.Cols)
	for r, ev := range e {
		if ev == 0 {
			continue
		}
		row := g.basis.Row(r)
		for c, bv := range row {
			z[c] += ev * bv
		}
	}
	return z
}

//
// ---- RWS ----
//

// RWS embeds series against R random warping series: feature i is the
// alignment kernel value exp(-DTW(x, w_i)/(gamma^2 * len)) against a random
// series w_i of random length up to DMax, approximating the GAK feature
// space (Wu et al., AISTATS 2018).
type RWS struct {
	Gamma float64 // bandwidth of the random series and the feature kernel
	DMax  int     // maximum random-series length (the paper uses 25)
	Dim   int     // number of random series; 0 means DefaultDim
	Seed  int64

	series [][]float64
	fitted bool
}

// Name implements Embedder.
func (r *RWS) Name() string { return fmt.Sprintf("rws[g=%g]", r.Gamma) }

// Fit implements Embedder. The random series depend only on the
// configuration, not on the training data (RWS is data-independent), but
// Fit is still required for interface symmetry.
func (r *RWS) Fit([][]float64) {
	dim := r.Dim
	if dim <= 0 {
		dim = DefaultDim
	}
	dmax := r.DMax
	if dmax <= 0 {
		dmax = 25
	}
	rng := rand.New(rand.NewSource(r.Seed))
	sigma := r.Gamma
	if sigma <= 0 {
		sigma = 1
	}
	r.series = make([][]float64, dim)
	for i := range r.series {
		l := 1 + rng.Intn(dmax)
		w := make([]float64, l)
		for j := range w {
			w[j] = rng.NormFloat64() * sigma
		}
		r.series[i] = w
	}
	r.fitted = true
}

// Transform implements Embedder.
func (r *RWS) Transform(x []float64) []float64 {
	if !r.fitted {
		panic("embedding: RWS.Transform before Fit")
	}
	out := make([]float64, len(r.series))
	scale := 1 / math.Sqrt(float64(len(r.series)))
	sc := dtwPool.Get().(*dtwScratch)
	for i, w := range r.series {
		d := dtwUnconstrainedTo(x, w, sc)
		out[i] = scale * math.Exp(-d/float64(len(x)))
	}
	dtwPool.Put(sc)
	return out
}

// dtwScratch holds the two DP rows of the unconstrained DTW recursion so
// the ~Dim alignments of one Transform call (and the Dim^2/2 of one Fit)
// reuse a single pair of buffers instead of allocating per alignment.
type dtwScratch struct {
	prev, cur []float64
}

// row returns the scratch rows sized for n+1 columns, growing them only
// when a longer series than any before arrives.
func (s *dtwScratch) rows(n int) ([]float64, []float64) {
	if cap(s.prev) < n+1 {
		s.prev = make([]float64, n+1)
		s.cur = make([]float64, n+1)
	}
	return s.prev[:n+1], s.cur[:n+1]
}

// dtwPool shares scratch across the concurrent Transform calls of the
// evaluation layer's per-series preparation; scratch is never held across
// a Get/Put window, so pool reuse cannot alias live buffers.
var dtwPool = sync.Pool{New: func() any { return new(dtwScratch) }}

// dtwUnconstrained is a banded-free DTW over series of different lengths
// with squared point costs, used to align against short random series and
// landmark prototypes.
func dtwUnconstrained(x, y []float64) float64 {
	sc := dtwPool.Get().(*dtwScratch)
	d := dtwUnconstrainedTo(x, y, sc)
	dtwPool.Put(sc)
	return d
}

// dtwUnconstrainedTo is dtwUnconstrained on caller-provided scratch. The
// recursion is unchanged — identical operations in identical order — so
// pooling the rows does not move a single bit of the result.
func dtwUnconstrainedTo(x, y []float64, sc *dtwScratch) float64 {
	m, n := len(x), len(y)
	if m == 0 || n == 0 {
		return 0
	}
	inf := math.Inf(1)
	prev, cur := sc.rows(n)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= m; i++ {
		cur[0] = inf
		for j := 1; j <= n; j++ {
			c := x[i-1] - y[j-1]
			best := prev[j-1]
			if prev[j] < best {
				best = prev[j]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			cur[j] = c*c + best
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

//
// ---- SPIRAL ----
//

// SPIRAL learns a DTW-preserving embedding. The original solves a
// partial-observation matrix factorization; this implementation uses the
// landmark (Nyström) MDS construction over squared DTW distances, which
// preserves the same contract: ED between representations approximates DTW
// between the originals.
type SPIRAL struct {
	Dim  int // representation length; 0 means DefaultDim
	Seed int64

	landmarks [][]float64
	colMean   []float64      // column means of the squared landmark matrix
	proj      *linalg.Matrix // U_k * Lambda_k^{-1/2}, d x k
	fitted    bool
}

// Name implements Embedder.
func (s *SPIRAL) Name() string { return "spiral" }

// Fit implements Embedder.
func (s *SPIRAL) Fit(train [][]float64) {
	if err := s.FitCtx(context.Background(), train); err != nil {
		panic(fmt.Sprintf("embedding: SPIRAL.Fit: impossible error %v", err))
	}
}

// FitCtx implements ContextFitter: the landmark DTW pair matrix observes
// ctx; a cancelled fit returns ctx.Err() with the embedder left unfitted.
func (s *SPIRAL) FitCtx(ctx context.Context, train [][]float64) error {
	if len(train) == 0 {
		panic("embedding: SPIRAL.Fit with empty training set")
	}
	dim := s.Dim
	if dim <= 0 {
		dim = DefaultDim
	}
	s.landmarks = sampleLandmarks(train, dim, s.Seed)
	d := len(s.landmarks)
	// Squared DTW distances between landmarks: the upper-triangle pairs
	// are independent, so they are dispatched in parallel with one DTW
	// scratch per worker; each pair's recursion is untouched, so the
	// matrix is bitwise the one the serial double loop produced.
	sq := linalg.NewMatrix(d, d)
	type pair struct{ i, j int }
	pairs := make([]pair, 0, d*(d-1)/2)
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	workers := par.Workers(len(pairs))
	scratch := make([]dtwScratch, workers)
	if err := par.ForShardCtx(ctx, len(pairs), workers, func(worker, t int) {
		p := pairs[t]
		v := dtwUnconstrainedTo(s.landmarks[p.i], s.landmarks[p.j], &scratch[worker])
		sq.Set(p.i, p.j, v)
		sq.Set(p.j, p.i, v)
	}); err != nil {
		s.landmarks = nil
		return err
	}
	// Double centering: B = -1/2 (sq - rowMean - colMean + totalMean).
	s.colMean = make([]float64, d)
	var total float64
	for j := 0; j < d; j++ {
		var cm float64
		for i := 0; i < d; i++ {
			cm += sq.At(i, j)
		}
		cm /= float64(d)
		s.colMean[j] = cm
		total += cm
	}
	total /= float64(d)
	b := linalg.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			b.Set(i, j, -0.5*(sq.At(i, j)-s.colMean[i]-s.colMean[j]+total))
		}
	}
	vals, vecs := linalg.EigenSym(b)
	// Out-of-sample projection: z = -1/2 * Lambda^{-1/2} U^T (delta - mu).
	// The negated guard drops a NaN spectrum (degenerate landmarks) along
	// with the null space instead of leaking NaN scale factors.
	proj := linalg.NewMatrix(d, d)
	for j := 0; j < d; j++ {
		if !(vals[j] > 1e-10) {
			continue
		}
		inv := 1 / math.Sqrt(vals[j])
		for r := 0; r < d; r++ {
			proj.Set(r, j, vecs.At(r, j)*inv)
		}
	}
	s.proj = proj
	s.fitted = true
	return nil
}

// Transform implements Embedder.
func (s *SPIRAL) Transform(x []float64) []float64 {
	if !s.fitted {
		panic("embedding: SPIRAL.Transform before Fit")
	}
	d := len(s.landmarks)
	delta := make([]float64, d)
	sc := dtwPool.Get().(*dtwScratch)
	for i, l := range s.landmarks {
		delta[i] = dtwUnconstrainedTo(x, l, sc) - s.colMean[i]
	}
	dtwPool.Put(sc)
	z := make([]float64, s.proj.Cols)
	for r, dv := range delta {
		if dv == 0 {
			continue
		}
		row := s.proj.Row(r)
		for c, pv := range row {
			z[c] += -0.5 * dv * pv
		}
	}
	return z
}

//
// ---- SIDL ----
//

// SIDL learns a shift-invariant dictionary of short patterns from the
// training series (k-means-style updates over best-shift-aligned patches)
// and represents each series by its pooled activation against every atom:
// the maximum normalized correlation of the atom across all positions.
// Lambda acts as an activation shrinkage threshold and R sets the atom
// length as a fraction of the series length.
type SIDL struct {
	Lambda float64 // soft-threshold on activations
	R      float64 // atom length as a fraction of the series length
	Dim    int     // number of atoms; 0 means DefaultDim
	Iters  int     // dictionary update iterations; 0 means 3
	Seed   int64

	atoms  [][]float64
	fitted bool
}

// Name implements Embedder.
func (s *SIDL) Name() string { return fmt.Sprintf("sidl[l=%g,r=%g]", s.Lambda, s.R) }

// Fit implements Embedder.
func (s *SIDL) Fit(train [][]float64) {
	if len(train) == 0 {
		panic("embedding: SIDL.Fit with empty training set")
	}
	dim := s.Dim
	if dim <= 0 {
		dim = DefaultDim
	}
	iters := s.Iters
	if iters <= 0 {
		iters = 3
	}
	m := len(train[0])
	p := int(s.R * float64(m))
	if p < 2 {
		p = 2
	}
	if p > m {
		p = m
	}
	rng := rand.New(rand.NewSource(s.Seed))
	// Initialize atoms with random training patches.
	s.atoms = make([][]float64, dim)
	for i := range s.atoms {
		src := train[rng.Intn(len(train))]
		start := 0
		if len(src) > p {
			start = rng.Intn(len(src) - p + 1)
		}
		s.atoms[i] = normalizePatch(src[start : start+p])
	}
	// Alternate assignment (best atom per patch) and update (mean patch).
	for it := 0; it < iters; it++ {
		sums := make([][]float64, dim)
		counts := make([]int, dim)
		for i := range sums {
			sums[i] = make([]float64, p)
		}
		for _, x := range train {
			for start := 0; start+p <= len(x); start += p / 2 {
				patch := normalizePatch(x[start : start+p])
				best, bestCorr := -1, math.Inf(-1)
				for a, atom := range s.atoms {
					if c := linalg.Dot(patch, atom); c > bestCorr {
						bestCorr = c
						best = a
					}
				}
				for k := range patch {
					sums[best][k] += patch[k]
				}
				counts[best]++
			}
		}
		for a := range s.atoms {
			if counts[a] == 0 {
				continue // keep the unused atom as-is
			}
			for k := range sums[a] {
				sums[a][k] /= float64(counts[a])
			}
			s.atoms[a] = normalizePatch(sums[a])
		}
	}
	s.fitted = true
}

// normalizePatch scales a patch to zero mean and unit norm so atom
// correlations are comparable.
func normalizePatch(p []float64) []float64 {
	out := make([]float64, len(p))
	var mean float64
	for _, v := range p {
		mean += v
	}
	mean /= float64(len(p))
	var ss float64
	for i, v := range p {
		out[i] = v - mean
		ss += out[i] * out[i]
	}
	nrm := math.Sqrt(ss)
	if nrm == 0 {
		return out
	}
	for i := range out {
		out[i] /= nrm
	}
	return out
}

// Transform implements Embedder.
func (s *SIDL) Transform(x []float64) []float64 {
	if !s.fitted {
		panic("embedding: SIDL.Transform before Fit")
	}
	out := make([]float64, len(s.atoms))
	for a, atom := range s.atoms {
		p := len(atom)
		best := 0.0
		for start := 0; start+p <= len(x); start++ {
			patch := normalizePatch(x[start : start+p])
			if c := linalg.Dot(patch, atom); c > best {
				best = c
			}
		}
		// Soft-threshold the pooled activation.
		act := best - s.Lambda
		if act < 0 {
			act = 0
		}
		out[a] = act
	}
	return out
}

// All returns one instance of each embedding measure at the paper's
// recommended parameters, unfitted; the evaluation layer fits them on each
// dataset's training split.
func All(seed int64) []Embedder {
	return []Embedder{
		&GRAIL{Gamma: 5, Seed: seed},
		&RWS{Gamma: 1, DMax: 25, Seed: seed},
		&SPIRAL{Seed: seed},
		&SIDL{Lambda: 0.1, R: 0.25, Seed: seed},
	}
}

var (
	_ measure.Stateful = Measure{} // Measure provides the fast path
	_ ContextFitter    = (*GRAIL)(nil)
	_ ContextFitter    = (*SPIRAL)(nil)
)
