package embedding

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/elastic"
)

// trainSet builds a small training split with two sinusoid classes.
func trainSet(rng *rand.Rand, n, m int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, m)
		freq := 2.0
		if i%2 == 1 {
			freq = 5.0
		}
		phase := rng.Float64() * 2 * math.Pi
		for j := range s {
			s[j] = math.Sin(2*math.Pi*freq*float64(j)/float64(m)+phase) + 0.1*rng.NormFloat64()
		}
		out[i] = dataset.ZNormalize(s)
	}
	return out
}

func TestGRAILSelfSimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := trainSet(rng, 20, 64)
	g := &GRAIL{Gamma: 5, Dim: 10, Seed: 1}
	g.Fit(train)
	m := Measure{E: g}
	x := train[0]
	if d := m.Distance(x, x); math.Abs(d) > 1e-9 {
		t.Fatalf("GRAIL d(x,x) = %g", d)
	}
}

func TestGRAILPreservesSINKOrdering(t *testing.T) {
	// Representations must rank a same-class series closer than a
	// different-class series, like the underlying SINK kernel does.
	rng := rand.New(rand.NewSource(2))
	train := trainSet(rng, 30, 64)
	g := &GRAIL{Gamma: 5, Dim: 20, Seed: 2}
	g.Fit(train)
	m := Measure{E: g}
	// train[0] and train[2] share a class; train[1] does not.
	same := m.Distance(train[0], train[2])
	diff := m.Distance(train[0], train[1])
	if same >= diff {
		t.Fatalf("GRAIL: same-class %g >= cross-class %g", same, diff)
	}
}

func TestGRAILDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	train := trainSet(rng, 12, 32)
	a := &GRAIL{Gamma: 5, Dim: 8, Seed: 7}
	b := &GRAIL{Gamma: 5, Dim: 8, Seed: 7}
	a.Fit(train)
	b.Fit(train)
	za := a.Transform(train[0])
	zb := b.Transform(train[0])
	for i := range za {
		if za[i] != zb[i] {
			t.Fatal("GRAIL not deterministic")
		}
	}
}

func TestGRAILTransformBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&GRAIL{Gamma: 5}).Transform([]float64{1, 2, 3})
}

func TestGRAILDimCapsAtTrainSize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	train := trainSet(rng, 6, 32)
	g := &GRAIL{Gamma: 5, Dim: 100, Seed: 1}
	g.Fit(train)
	z := g.Transform(train[0])
	if len(z) != 6 {
		t.Fatalf("representation length %d, want 6 (train size)", len(z))
	}
}

func TestRWSFeaturesBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	train := trainSet(rng, 10, 48)
	r := &RWS{Gamma: 1, DMax: 25, Dim: 32, Seed: 3}
	r.Fit(train)
	z := r.Transform(train[0])
	if len(z) != 32 {
		t.Fatalf("RWS dim = %d", len(z))
	}
	for _, v := range z {
		if v < 0 || v > 1 {
			t.Fatalf("RWS feature %g outside [0, 1]", v)
		}
	}
}

func TestRWSSelfDistanceZero(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	train := trainSet(rng, 10, 48)
	r := &RWS{Gamma: 1, DMax: 25, Dim: 16, Seed: 4}
	r.Fit(train)
	m := Measure{E: r}
	if d := m.Distance(train[0], train[0]); d != 0 {
		t.Fatalf("RWS d(x,x) = %g", d)
	}
}

func TestRWSSeparatesClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	train := trainSet(rng, 40, 64)
	r := &RWS{Gamma: 1, DMax: 25, Dim: 64, Seed: 5}
	r.Fit(train)
	m := Measure{E: r}
	var sameSum, diffSum float64
	var sameN, diffN int
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			d := m.Distance(train[i], train[j])
			if i%2 == j%2 {
				sameSum += d
				sameN++
			} else {
				diffSum += d
				diffN++
			}
		}
	}
	if sameSum/float64(sameN) >= diffSum/float64(diffN) {
		t.Fatalf("RWS mean same-class distance %g >= cross-class %g",
			sameSum/float64(sameN), diffSum/float64(diffN))
	}
}

func TestSPIRALApproximatesDTW(t *testing.T) {
	// The embedding contract: ED between representations correlates with
	// DTW between the originals.
	rng := rand.New(rand.NewSource(8))
	train := trainSet(rng, 30, 48)
	s := &SPIRAL{Dim: 20, Seed: 6}
	s.Fit(train)
	m := Measure{E: s}
	dtw := elastic.DTW{DeltaPercent: 100}
	// Rank correlation proxy: count of concordant pairs among sampled triples.
	concordant, total := 0, 0
	for trial := 0; trial < 60; trial++ {
		i, j, k := rng.Intn(30), rng.Intn(30), rng.Intn(30)
		if i == j || i == k || j == k {
			continue
		}
		dtwIJ, dtwIK := dtw.Distance(train[i], train[j]), dtw.Distance(train[i], train[k])
		embIJ, embIK := m.Distance(train[i], train[j]), m.Distance(train[i], train[k])
		if math.Abs(dtwIJ-dtwIK) < 1e-9 {
			continue
		}
		total++
		if (dtwIJ < dtwIK) == (embIJ < embIK) {
			concordant++
		}
	}
	if total == 0 {
		t.Skip("degenerate sample")
	}
	if frac := float64(concordant) / float64(total); frac < 0.7 {
		t.Fatalf("SPIRAL concordance with DTW = %.2f, want >= 0.7", frac)
	}
}

func TestSPIRALSelfDistanceZero(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	train := trainSet(rng, 12, 32)
	s := &SPIRAL{Dim: 8, Seed: 7}
	s.Fit(train)
	m := Measure{E: s}
	if d := m.Distance(train[3], train[3]); d != 0 {
		t.Fatalf("SPIRAL d(x,x) = %g", d)
	}
}

func TestSIDLActivationsNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	train := trainSet(rng, 16, 64)
	s := &SIDL{Lambda: 0.1, R: 0.25, Dim: 24, Seed: 8}
	s.Fit(train)
	z := s.Transform(train[0])
	if len(z) != 24 {
		t.Fatalf("SIDL dim = %d", len(z))
	}
	for _, v := range z {
		if v < 0 {
			t.Fatalf("SIDL activation %g < 0 after soft threshold", v)
		}
	}
}

func TestSIDLShiftInvariantActivations(t *testing.T) {
	// A pattern and its shifted copy should receive similar activations
	// (max-pooling over positions is shift invariant away from borders).
	rng := rand.New(rand.NewSource(11))
	m := 96
	x := make([]float64, m)
	for i := 30; i < 45; i++ {
		x[i] = 1
	}
	shifted := make([]float64, m)
	copy(shifted[20:], x[:m-20])
	zx := dataset.ZNormalize(x)
	zs := dataset.ZNormalize(shifted)
	train := [][]float64{zx, zs}
	for i := 0; i < 8; i++ {
		train = append(train, dataset.ZNormalize(trainSeries(rng, m)))
	}
	s := &SIDL{Lambda: 0, R: 0.2, Dim: 12, Seed: 9}
	s.Fit(train)
	me := Measure{E: s}
	dShift := me.Distance(zx, zs)
	dRand := me.Distance(zx, train[4])
	if dShift >= dRand {
		t.Fatalf("SIDL shifted copy %g not closer than random %g", dShift, dRand)
	}
}

func trainSeries(rng *rand.Rand, m int) []float64 {
	s := make([]float64, m)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func TestSIDLAtomLengthBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	train := trainSet(rng, 8, 20)
	// R so small the patch length clamps to 2; R=1 clamps to the length.
	for _, r := range []float64{0.001, 1.0} {
		s := &SIDL{Lambda: 0, R: r, Dim: 4, Seed: 1}
		s.Fit(train)
		if z := s.Transform(train[0]); len(z) != 4 {
			t.Fatalf("R=%g: dim %d", r, len(z))
		}
	}
}

func TestAllEmbeddersFitAndTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	train := trainSet(rng, 14, 48)
	for _, e := range All(1) {
		e.Fit(train)
		z := e.Transform(train[0])
		if len(z) == 0 {
			t.Errorf("%s produced empty representation", e.Name())
		}
		for _, v := range z {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s produced non-finite feature", e.Name())
			}
		}
	}
}

func TestMeasureStatefulPathMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	train := trainSet(rng, 12, 32)
	g := &GRAIL{Gamma: 5, Dim: 8, Seed: 2}
	g.Fit(train)
	m := Measure{E: g}
	x, y := train[0], train[1]
	direct := m.Distance(x, y)
	prepared := m.PreparedDistance(m.Prepare(x), m.Prepare(y))
	if math.Abs(direct-prepared) > 1e-12 {
		t.Fatalf("stateful %g != direct %g", prepared, direct)
	}
}

func TestFitPanicsOnEmptyTrain(t *testing.T) {
	for _, e := range []Embedder{&GRAIL{Gamma: 5}, &SPIRAL{}, &SIDL{R: 0.25}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on empty training set", e.Name())
				}
			}()
			e.Fit(nil)
		}()
	}
}

func TestDTWUnconstrainedUnequalLengths(t *testing.T) {
	x := []float64{0, 1, 2, 1, 0}
	y := []float64{0, 2, 0}
	d := dtwUnconstrained(x, y)
	if math.IsInf(d, 0) || math.IsNaN(d) {
		t.Fatalf("dtwUnconstrained = %g", d)
	}
	if dSelf := dtwUnconstrained(x, x); dSelf != 0 {
		t.Fatalf("dtwUnconstrained(x,x) = %g", dSelf)
	}
}

func TestGRAILKShapeLandmarks(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	train := trainSet(rng, 24, 48)
	g := &GRAIL{Gamma: 5, Dim: 6, Seed: 3, KShapeLandmarks: true}
	g.Fit(train)
	z := g.Transform(train[0])
	if len(z) != 6 {
		t.Fatalf("representation length %d, want 6", len(z))
	}
	for _, v := range z {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite feature from k-Shape landmarks")
		}
	}
	// Same-class pairs must still rank closer than cross-class pairs.
	m := Measure{E: g}
	same := m.Distance(train[0], train[2])
	diff := m.Distance(train[0], train[1])
	if same >= diff {
		t.Fatalf("k-Shape GRAIL: same-class %g >= cross-class %g", same, diff)
	}
}

func TestKShapeLandmarksCount(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	train := trainSet(rng, 10, 32)
	lm := kshapeLandmarks(train, 4, 1)
	if len(lm) != 4 {
		t.Fatalf("landmarks = %d, want 4", len(lm))
	}
	for _, l := range lm {
		if len(l) != 32 {
			t.Fatalf("landmark length %d", len(l))
		}
	}
	// Requesting more landmarks than series clamps.
	lm = kshapeLandmarks(train, 100, 1)
	if len(lm) != 10 {
		t.Fatalf("clamped landmarks = %d, want 10", len(lm))
	}
}
