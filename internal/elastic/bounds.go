package elastic

import (
	"math"
	"sync"

	"repro/internal/measure"
)

// This file implements the UCR-suite-style pruning machinery for DTW: a
// pooled two-row DP with per-row early abandoning (measure.EarlyAbandoning)
// and a cascading lower bound — O(1) LB_Kim, then O(m) LB_Keogh against a
// precomputed Lemire envelope, then the reversed LB_Keogh — exposed through
// measure.LowerBounded. The search engine (internal/search) drives the
// cascade; everything here is also usable standalone.

// dtwScratch is the reusable two-row DP state. A sync.Pool keeps steady
// state allocation-free without threading buffers through the Measure
// interface.
type dtwScratch struct {
	prev, cur []float64
}

var dtwPool = sync.Pool{New: func() any { return new(dtwScratch) }}

// DistanceUpTo implements measure.EarlyAbandoning: banded DTW that stops
// as soon as an entire DP row reaches cutoff. Every warping path crosses
// every row and cell costs are non-negative, so the minimum of a row lower
// bounds the final distance; when it reaches cutoff the computation is
// abandoned and that row minimum (a certified lower bound >= cutoff) is
// returned. With cutoff = +Inf this is exactly Distance.
func (d DTW) DistanceUpTo(x, y []float64, cutoff float64) float64 {
	measure.CheckSameLength(x, y)
	m := len(x)
	if m == 0 {
		return 0
	}
	w := windowSize(d.DeltaPercent, m)
	inf := math.Inf(1)

	s := dtwPool.Get().(*dtwScratch)
	if cap(s.prev) < m+1 {
		s.prev = make([]float64, m+1)
		s.cur = make([]float64, m+1)
	}
	prev, cur := s.prev[:m+1], s.cur[:m+1]
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= m; i++ {
		lo := i - w
		if lo < 1 {
			lo = 1
		}
		hi := i + w
		if hi > m {
			hi = m
		}
		// The band advances by at most one cell per row, so only its
		// fringe needs re-initializing: cur[lo-1] feeds this row's first
		// deletion and cur[hi+1] feeds the next row's insertion. The old
		// full-row wipe made banded DTW O(m^2) regardless of band width.
		cur[lo-1] = inf
		if hi < m {
			cur[hi+1] = inf
		}
		rowMin := inf
		for j := lo; j <= hi; j++ {
			c := x[i-1] - y[j-1]
			best := prev[j-1] // diagonal
			if prev[j] < best {
				best = prev[j] // insertion
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			v := c*c + best
			cur[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if rowMin >= cutoff {
			s.prev, s.cur = prev, cur
			dtwPool.Put(s)
			return rowMin
		}
		prev, cur = cur, prev
	}
	res := prev[m]
	s.prev, s.cur = prev, cur
	dtwPool.Put(s)
	return res
}

// dtwContext is DTW's measure.BoundContext: the Lemire min/max envelope of
// a series for the band width windowSize(DeltaPercent, m), plus the
// monotonic-deque scratch needed to refill it without allocating.
type dtwContext struct {
	deltaPercent int
	w            int // absolute half-width for the current length
	upper, lower []float64
	maxDq, minDq []int
}

// NewBoundContext implements measure.LowerBounded.
func (d DTW) NewBoundContext(m int) measure.BoundContext {
	c := &dtwContext{deltaPercent: d.DeltaPercent}
	c.grow(m)
	return c
}

func (c *dtwContext) grow(m int) {
	c.w = windowSize(c.deltaPercent, m)
	if cap(c.upper) < m {
		c.upper = make([]float64, m)
		c.lower = make([]float64, m)
		c.maxDq = make([]int, m)
		c.minDq = make([]int, m)
	}
	c.upper = c.upper[:m]
	c.lower = c.lower[:m]
	c.maxDq = c.maxDq[:m]
	c.minDq = c.minDq[:m]
}

// Fill implements measure.BoundContext: allocation-free when len(x)
// matches the current buffer length.
func (c *dtwContext) Fill(x []float64) {
	if len(x) != len(c.upper) {
		c.grow(len(x))
	}
	fillEnvelope(c.upper, c.lower, x, c.w, c.maxDq, c.minDq)
}

// fillEnvelope computes the running min/max envelope of y over windows
// [i-w, i+w] (clamped) into upper/lower using Lemire's monotonic deques in
// O(m), independent of w. maxDq and minDq are caller-owned scratch of
// length >= len(y).
func fillEnvelope(upper, lower, y []float64, w int, maxDq, minDq []int) {
	m := len(y)
	maxH, maxT := 0, 0 // live deque contents are maxDq[maxH:maxT]
	minH, minT := 0, 0
	for j := 0; j < m+w; j++ {
		if j < m {
			for maxT > maxH && y[maxDq[maxT-1]] <= y[j] {
				maxT--
			}
			maxDq[maxT] = j
			maxT++
			for minT > minH && y[minDq[minT-1]] >= y[j] {
				minT--
			}
			minDq[minT] = j
			minT++
		}
		i := j - w // center whose full window has now been pushed
		if i < 0 {
			continue
		}
		for maxDq[maxH] < i-w {
			maxH++
		}
		for minDq[minH] < i-w {
			minH++
		}
		upper[i] = y[maxDq[maxH]]
		lower[i] = y[minDq[minH]]
	}
}

// LowerBound implements measure.LowerBounded with the classic cascade:
//
//  1. LB_Kim (first/last): every warping path pays the (1,1) and (m,m)
//     cells, O(1);
//  2. LB_Keogh of x against y's envelope, O(m) with early abandoning —
//     partial sums are themselves valid bounds;
//  3. the reversed LB_Keogh of y against x's envelope.
//
// The bounds are combined by max (their index sets overlap, so they cannot
// be summed). cx and cy must be contexts produced by NewBoundContext and
// filled with x and y respectively.
func (d DTW) LowerBound(x, y []float64, cx, cy measure.BoundContext, cutoff float64) float64 {
	m := len(x)
	if m == 0 {
		return 0
	}
	// LB_Kim: the corner cells lie on every path; for m == 1 they are the
	// same cell, paid once.
	c0 := x[0] - y[0]
	lb := c0 * c0
	if m > 1 {
		cl := x[m-1] - y[m-1]
		lb += cl * cl
	}
	if lb >= cutoff {
		return lb
	}
	ey := cy.(*dtwContext)
	if k := lbKeoghEnvelope(x, ey.upper, ey.lower, cutoff); k > lb {
		lb = k
	}
	if lb >= cutoff {
		return lb
	}
	ex := cx.(*dtwContext)
	if k := lbKeoghEnvelope(y, ex.upper, ex.lower, cutoff); k > lb {
		lb = k
	}
	return lb
}

// lbKeoghEnvelope accumulates the squared exceedance of x outside the
// [lower, upper] envelope, abandoning once the partial sum (itself a valid
// lower bound) reaches cutoff.
func lbKeoghEnvelope(x, upper, lower []float64, cutoff float64) float64 {
	var s float64
	for i, v := range x {
		if v > upper[i] {
			d := v - upper[i]
			s += d * d
		} else if v < lower[i] {
			d := lower[i] - v
			s += d * d
		}
		if s >= cutoff {
			return s
		}
	}
	return s
}
