package elastic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lockstep"
)

func TestDerivativeKnown(t *testing.T) {
	// Linear ramp has constant slope 1 everywhere.
	x := []float64{0, 1, 2, 3, 4}
	d := Derivative(x)
	for i, v := range d {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("derivative[%d] = %g, want 1", i, v)
		}
	}
	// Short series degrade to zeros.
	for _, short := range [][]float64{{}, {1}, {1, 2}} {
		for _, v := range Derivative(short) {
			if v != 0 {
				t.Fatalf("short derivative = %v", Derivative(short))
			}
		}
	}
}

func TestDDTWIgnoresOffset(t *testing.T) {
	// DDTW aligns slopes, so a constant offset between otherwise identical
	// series must vanish (DTW sees it fully).
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = math.Sin(float64(i) / 5)
		y[i] = x[i] + 10
	}
	_ = rng
	if d := (DDTW{DeltaPercent: 10}).Distance(x, y); d > 1e-9 {
		t.Fatalf("DDTW of offset copies = %g, want 0", d)
	}
	if d := (DTW{DeltaPercent: 10}).Distance(x, y); d < 100 {
		t.Fatalf("test setup broken: DTW should be large, got %g", d)
	}
}

func TestDDTWIdentity(t *testing.T) {
	x := randSeries(rand.New(rand.NewSource(2)), 30)
	if d := (DDTW{DeltaPercent: 100}).Distance(x, x); d != 0 {
		t.Fatalf("DDTW(x,x) = %g", d)
	}
}

func TestWDTWIdentity(t *testing.T) {
	x := randSeries(rand.New(rand.NewSource(3)), 30)
	if d := (WDTW{G: 0.05}).Distance(x, x); d != 0 {
		t.Fatalf("WDTW(x,x) = %g", d)
	}
}

func TestWDTWFlatWeightsEqualScaledDTW(t *testing.T) {
	// With G = 0 every phase difference receives weight WMax/2, so WDTW
	// reduces exactly to (WMax/2) * unconstrained DTW — a strong check of
	// the weighted DP.
	rng := rand.New(rand.NewSource(30))
	x := randSeries(rng, 40)
	y := randSeries(rng, 40)
	dtw := DTW{DeltaPercent: 100}.Distance(x, y)
	wdtw := WDTW{G: 0, WMax: 2}.Distance(x, y)
	if math.Abs(wdtw-dtw) > 1e-9*(1+dtw) {
		t.Fatalf("WDTW(G=0, WMax=2) = %g, want DTW = %g", wdtw, dtw)
	}
}

func TestWDTWBoundedByWMaxDTW(t *testing.T) {
	// Weights never exceed WMax, so the WDTW optimum costs at most WMax
	// times the unconstrained DTW optimum.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		x := randSeries(rng, n)
		y := randSeries(rng, n)
		dtw := DTW{DeltaPercent: 100}.Distance(x, y)
		wdtw := WDTW{G: 0.05, WMax: 1}.Distance(x, y)
		return wdtw <= dtw+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWDTWSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randSeries(rng, 25)
	y := randSeries(rng, 25)
	w := WDTW{G: 0.05}
	if math.Abs(w.Distance(x, y)-w.Distance(y, x)) > 1e-9 {
		t.Fatal("WDTW not symmetric")
	}
}

func TestCIDCorrectionFactor(t *testing.T) {
	base := lockstep.Euclidean()
	c := CID{Base: base}
	// Equal complexity: correction factor 1.
	x := []float64{0, 1, 0, 1, 0}
	y := []float64{1, 0, 1, 0, 1}
	if math.Abs(c.Distance(x, y)-base.Distance(x, y)) > 1e-12 {
		t.Fatal("equal-complexity correction must be 1")
	}
	// A complex vs a simple series is penalized.
	flatish := []float64{0, 0.01, 0, 0.01, 0}
	spiky := []float64{0, 2, -2, 2, -2}
	if c.Distance(flatish, spiky) <= base.Distance(flatish, spiky) {
		t.Fatal("complexity mismatch must inflate the distance")
	}
}

func TestCIDFlatSeries(t *testing.T) {
	c := CID{Base: lockstep.Euclidean()}
	flat := []float64{1, 1, 1}
	other := []float64{0, 5, 0}
	if !math.IsInf(c.Distance(flat, other), 1) {
		t.Fatal("flat vs complex must be +Inf")
	}
	flat2 := []float64{2, 2, 2}
	if d := c.Distance(flat, flat2); math.IsInf(d, 0) || math.IsNaN(d) {
		t.Fatalf("flat vs flat = %g, want finite base distance", d)
	}
}

func TestComplexityEstimate(t *testing.T) {
	if ComplexityEstimate([]float64{1, 1, 1}) != 0 {
		t.Fatal("constant series has zero complexity")
	}
	// Diffs 3, -4: sqrt(9+16) = 5.
	if math.Abs(ComplexityEstimate([]float64{0, 3, -1})-5) > 1e-12 {
		t.Fatal("complexity estimate wrong")
	}
}

func TestEnvelopeMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 5 + rng.Intn(60)
		w := rng.Intn(m)
		y := randSeries(rng, m)
		env := NewEnvelope(y, w)
		for i := 0; i < m; i++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for j := max(0, i-w); j <= min(m-1, i+w); j++ {
				lo = math.Min(lo, y[j])
				hi = math.Max(hi, y[j])
			}
			if env.Lower[i] != lo || env.Upper[i] != hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEnvelopeLBKeoghMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randSeries(rng, 80)
	y := randSeries(rng, 80)
	w := 8
	env := NewEnvelope(y, w)
	direct := LBKeogh(x, y, w)
	fast := env.LBKeogh(x)
	if math.Abs(direct-fast) > 1e-12 {
		t.Fatalf("envelope LB %g != direct %g", fast, direct)
	}
}

func TestEnvelopeLBKeoghLengthMismatchPanics(t *testing.T) {
	env := NewEnvelope([]float64{1, 2, 3}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	env.LBKeogh([]float64{1, 2})
}

func TestNNSearchDTWCorrectAndPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// References: clusters around two prototypes so pruning has traction.
	proto1 := make([]float64, 64)
	proto2 := make([]float64, 64)
	for i := range proto1 {
		proto1[i] = math.Sin(2 * math.Pi * float64(i) / 16)
		proto2[i] = math.Sin(2*math.Pi*float64(i)/16+math.Pi) * 3
	}
	refs := make([][]float64, 40)
	for i := range refs {
		base := proto1
		if i%2 == 1 {
			base = proto2
		}
		r := make([]float64, 64)
		for j := range r {
			r[j] = base[j] + 0.1*rng.NormFloat64()
		}
		refs[i] = r
	}
	query := make([]float64, 64)
	for j := range query {
		query[j] = proto1[j] + 0.05*rng.NormFloat64()
	}
	best, bestDist, pruned := NNSearchDTW(query, refs, 10)
	// Verify against exhaustive search.
	dtw := DTW{DeltaPercent: 10}
	wantBest, wantDist := -1, 0.0
	for i, r := range refs {
		d := dtw.Distance(query, r)
		if wantBest == -1 || d < wantDist {
			wantBest, wantDist = i, d
		}
	}
	if best != wantBest || math.Abs(bestDist-wantDist) > 1e-9 {
		t.Fatalf("NN search found %d (%g), want %d (%g)", best, bestDist, wantBest, wantDist)
	}
	if pruned == 0 {
		t.Error("expected some pruning on clustered references")
	}
}

func TestLBKeoghEnvelopeBoundsDTW(t *testing.T) {
	// The pruning in NNSearchDTW relies on LB_Keogh(r, env(q)) <= DTW(q, r).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 8 + rng.Intn(40)
		q := randSeries(rng, m)
		r := randSeries(rng, m)
		pct := 5 + rng.Intn(20)
		w := windowSize(pct, m)
		env := NewEnvelope(q, w)
		return env.LBKeogh(r) <= DTW{DeltaPercent: pct}.Distance(q, r)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestDDBlendEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := randSeries(rng, 40)
	y := randSeries(rng, 40)
	dtw := DTW{DeltaPercent: 10}.Distance(x, y)
	ddtw := DDTW{DeltaPercent: 10}.Distance(x, y)
	if got := (DDBlend{DeltaPercent: 10, Alpha: 0}).Distance(x, y); math.Abs(got-dtw) > 1e-12 {
		t.Fatalf("alpha=0 blend %g != DTW %g", got, dtw)
	}
	if got := (DDBlend{DeltaPercent: 10, Alpha: 1}).Distance(x, y); math.Abs(got-ddtw) > 1e-12 {
		t.Fatalf("alpha=1 blend %g != DDTW %g", got, ddtw)
	}
	half := DDBlend{DeltaPercent: 10, Alpha: 0.5}.Distance(x, y)
	if math.Abs(half-(dtw+ddtw)/2) > 1e-12 {
		t.Fatalf("alpha=0.5 blend %g != midpoint %g", half, (dtw+ddtw)/2)
	}
}

func TestDDBlendIdentity(t *testing.T) {
	x := randSeries(rand.New(rand.NewSource(32)), 30)
	if d := (DDBlend{DeltaPercent: 100, Alpha: 0.5}).Distance(x, x); d != 0 {
		t.Fatalf("blend identity = %g", d)
	}
}
