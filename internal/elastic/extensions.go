package elastic

import (
	"fmt"
	"math"

	"repro/internal/measure"
)

// This file implements the elastic-measure extensions Section 7 of the
// paper surveys but excludes from its core evaluation (DDTW, WDTW, CID) —
// provided here as the paper's suggested future-work territory — and the
// precomputed-envelope form of LB_Keogh that makes pruned 1-NN search
// practical.

// DDTW is Derivative DTW (Keogh & Pazzani / Górecki & Łuczak): DTW applied
// to the first-order derivative estimate of each series, aligning on shape
// slopes rather than raw values.
type DDTW struct {
	DeltaPercent int
}

// Name implements measure.Measure.
func (d DDTW) Name() string { return fmt.Sprintf("ddtw[d=%d]", d.DeltaPercent) }

// Symmetric implements measure.Symmetric.
func (d DDTW) Symmetric() bool { return true }

// Derivative returns the Keogh-Pazzani derivative estimate
// ((x_i - x_{i-1}) + (x_{i+1} - x_{i-1})/2) / 2, with replicated endpoints.
// Series shorter than 3 points return a zero slope vector.
func Derivative(x []float64) []float64 {
	m := len(x)
	out := make([]float64, m)
	if m < 3 {
		return out
	}
	for i := 1; i < m-1; i++ {
		out[i] = ((x[i] - x[i-1]) + (x[i+1]-x[i-1])/2) / 2
	}
	out[0] = out[1]
	out[m-1] = out[m-2]
	return out
}

// Distance implements measure.Measure.
func (d DDTW) Distance(x, y []float64) float64 {
	measure.CheckSameLength(x, y)
	return DTW{DeltaPercent: d.DeltaPercent}.Distance(Derivative(x), Derivative(y))
}

// DDBlend is the Górecki & Łuczak (2013) derivative blend: a convex
// combination of DTW on the raw series and DTW on the derivative
// estimates, dist = (1-Alpha)*DTW(x, y) + Alpha*DTW(x', y'). Alpha = 0 is
// plain DTW, Alpha = 1 is DDTW.
type DDBlend struct {
	DeltaPercent int
	Alpha        float64
}

// Name implements measure.Measure.
func (d DDBlend) Name() string {
	return fmt.Sprintf("ddblend[d=%d,a=%g]", d.DeltaPercent, d.Alpha)
}

// Symmetric implements measure.Symmetric.
func (d DDBlend) Symmetric() bool { return true }

// Distance implements measure.Measure.
func (d DDBlend) Distance(x, y []float64) float64 {
	measure.CheckSameLength(x, y)
	dtw := DTW{DeltaPercent: d.DeltaPercent}
	raw := dtw.Distance(x, y)
	deriv := dtw.Distance(Derivative(x), Derivative(y))
	return (1-d.Alpha)*raw + d.Alpha*deriv
}

// WDTW is Weighted DTW (Jeong, Jeong, Omitaomu 2011): a soft band that
// multiplies each cell cost by a logistic weight of the phase difference
// |i-j|, penalizing (but not forbidding) far-from-diagonal warping. G is
// the steepness of the logistic curve (0.05 is the authors' default) and
// WMax the maximum weight (1 by convention; 0 means 1).
type WDTW struct {
	G    float64
	WMax float64
}

// Name implements measure.Measure.
func (w WDTW) Name() string { return fmt.Sprintf("wdtw[g=%g]", w.G) }

// Symmetric implements measure.Symmetric: the weight depends only on
// |i-j|, which the transposition preserves.
func (w WDTW) Symmetric() bool { return true }

// Distance implements measure.Measure.
func (w WDTW) Distance(x, y []float64) float64 {
	measure.CheckSameLength(x, y)
	m := len(x)
	if m == 0 {
		return 0
	}
	wmax := w.WMax
	if wmax == 0 {
		wmax = 1
	}
	// Precompute the weight of each phase difference.
	weights := make([]float64, m)
	mid := float64(m) / 2
	for a := range weights {
		weights[a] = wmax / (1 + math.Exp(-w.G*(float64(a)-mid)))
	}
	inf := math.Inf(1)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= m; i++ {
		cur[0] = inf
		for j := 1; j <= m; j++ {
			diff := x[i-1] - y[j-1]
			phase := i - j
			if phase < 0 {
				phase = -phase
			}
			c := weights[phase] * diff * diff
			best := prev[j-1]
			if prev[j] < best {
				best = prev[j]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			cur[j] = c + best
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// CID wraps any base measure with the Complexity-Invariant correction of
// Batista et al. (2014): the base distance is multiplied by
// max(CE(x), CE(y)) / min(CE(x), CE(y)), where CE is the complexity
// estimate sqrt(sum (x_{i+1} - x_i)^2), compensating for the bias of
// simple series matching everything.
type CID struct {
	Base measure.Measure
}

// Name implements measure.Measure.
func (c CID) Name() string { return "cid(" + c.Base.Name() + ")" }

// Symmetric implements measure.Symmetric: the correction factor is
// symmetric, so CID inherits the base measure's symmetry.
func (c CID) Symmetric() bool { return measure.IsSymmetric(c.Base) }

// ComplexityEstimate returns sqrt(sum of squared successive differences).
func ComplexityEstimate(x []float64) float64 {
	var s float64
	for i := 1; i < len(x); i++ {
		d := x[i] - x[i-1]
		s += d * d
	}
	return math.Sqrt(s)
}

// Distance implements measure.Measure.
func (c CID) Distance(x, y []float64) float64 {
	measure.CheckSameLength(x, y)
	base := c.Base.Distance(x, y)
	cx, cy := ComplexityEstimate(x), ComplexityEstimate(y)
	lo, hi := math.Min(cx, cy), math.Max(cx, cy)
	if lo == 0 {
		if hi == 0 {
			return base // both flat: no correction
		}
		return math.Inf(1) // flat vs complex: maximally dissimilar
	}
	return base * hi / lo
}

// Envelope holds the precomputed upper and lower running envelopes of a
// series for a Sakoe-Chiba band of absolute half-width W, enabling
// LB_Keogh evaluations in O(m) per query without rescanning windows.
type Envelope struct {
	Upper, Lower []float64
	W            int
}

// NewEnvelope builds the envelope of y in O(m) using Lemire's monotonic
// deques (shared with DTW's bound context; see bounds.go).
func NewEnvelope(y []float64, w int) *Envelope {
	m := len(y)
	e := &Envelope{Upper: make([]float64, m), Lower: make([]float64, m), W: w}
	fillEnvelope(e.Upper, e.Lower, y, w, make([]int, m), make([]int, m))
	return e
}

// LBKeogh returns the LB_Keogh lower bound of DTW(x, y) against the
// precomputed envelope of y, in O(m). Equivalent to the package-level
// LBKeogh for the same band width.
func (e *Envelope) LBKeogh(x []float64) float64 {
	if len(x) != len(e.Upper) {
		panic(fmt.Sprintf("elastic: envelope length %d, query length %d", len(e.Upper), len(x)))
	}
	var s float64
	for i, v := range x {
		switch {
		case v > e.Upper[i]:
			d := v - e.Upper[i]
			s += d * d
		case v < e.Lower[i]:
			d := e.Lower[i] - v
			s += d * d
		}
	}
	return s
}

// NNSearchDTW runs 1-NN search of query against refs under DTW with the
// given band percentage, pruning candidates whose LB_Keogh (against the
// precomputed query envelope) cannot beat the best distance so far. It
// returns the index of the nearest reference, its DTW distance, and the
// number of full DTW computations avoided. Envelope-based pruning uses the
// query's envelope, exploiting LB_Keogh(y, env(x)) <= DTW(x, y).
func NNSearchDTW(query []float64, refs [][]float64, deltaPercent int) (best int, bestDist float64, pruned int) {
	w := windowSize(deltaPercent, len(query))
	env := NewEnvelope(query, w)
	dtw := DTW{DeltaPercent: deltaPercent}
	best = -1
	for i, r := range refs {
		if best >= 0 && env.LBKeogh(r) >= bestDist {
			pruned++
			continue
		}
		d := dtw.Distance(query, r)
		if best == -1 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best, bestDist, pruned
}
