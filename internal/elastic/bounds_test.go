package elastic

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/measure"
)

// naiveEnvelope is the O(m*w) reference: per-position min/max over the
// clamped window [i-w, i+w].
func naiveEnvelope(y []float64, w int) (upper, lower []float64) {
	m := len(y)
	upper = make([]float64, m)
	lower = make([]float64, m)
	for i := 0; i < m; i++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		jlo, jhi := i-w, i+w
		if jlo < 0 {
			jlo = 0
		}
		if jhi > m-1 {
			jhi = m - 1
		}
		for j := jlo; j <= jhi; j++ {
			if y[j] < lo {
				lo = y[j]
			}
			if y[j] > hi {
				hi = y[j]
			}
		}
		upper[i], lower[i] = hi, lo
	}
	return upper, lower
}

// naiveLBKeogh is the pre-Lemire O(m*w) LB_Keogh kept as an independent
// reference for the envelope-backed implementation.
func naiveLBKeogh(x, y []float64, w int) float64 {
	upper, lower := naiveEnvelope(y, w)
	var s float64
	for i, v := range x {
		switch {
		case v > upper[i]:
			d := v - upper[i]
			s += d * d
		case v < lower[i]:
			d := lower[i] - v
			s += d * d
		}
	}
	return s
}

func randomSeries(seed int64, m int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, m)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestLemireEnvelopeMatchesNaive(t *testing.T) {
	series := map[string][]float64{
		"random":     randomSeries(1, 73),
		"constant":   {2.5, 2.5, 2.5, 2.5, 2.5, 2.5, 2.5, 2.5},
		"increasing": {1, 2, 3, 4, 5, 6, 7, 8, 9},
		"sawtooth":   {0, 3, -1, 4, -2, 5, -3, 6, -4, 7},
		"single":     {42},
	}
	for name, y := range series {
		m := len(y)
		for _, w := range []int{0, 1, 2, 3, m - 1, m, m + 7, 5 * m} {
			if w < 0 {
				continue
			}
			e := NewEnvelope(y, w)
			wantU, wantL := naiveEnvelope(y, w)
			for i := 0; i < m; i++ {
				if e.Upper[i] != wantU[i] || e.Lower[i] != wantL[i] {
					t.Fatalf("%s w=%d i=%d: got (%g, %g), want (%g, %g)",
						name, w, i, e.Lower[i], e.Upper[i], wantL[i], wantU[i])
				}
			}
		}
	}
}

func TestLemireEnvelopeConstantSeriesDegenerate(t *testing.T) {
	y := make([]float64, 50)
	for i := range y {
		y[i] = -3.25
	}
	for _, w := range []int{0, 5, 50, 100} {
		e := NewEnvelope(y, w)
		for i := range y {
			if e.Upper[i] != -3.25 || e.Lower[i] != -3.25 {
				t.Fatalf("w=%d i=%d: constant series envelope must collapse to the value", w, i)
			}
		}
		// LB_Keogh of the series against its own envelope must be zero.
		if lb := e.LBKeogh(y); lb != 0 {
			t.Fatalf("w=%d: self LB_Keogh = %g, want 0", w, lb)
		}
	}
}

func TestLBKeoghMatchesNaiveScan(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		x := randomSeries(seed*2+1, 64)
		y := randomSeries(seed*2+2, 64)
		for _, w := range []int{0, 1, 6, 63, 64, 200} {
			got := LBKeogh(x, y, w)
			want := naiveLBKeogh(x, y, w)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("seed=%d w=%d: LBKeogh=%g naive=%g", seed, w, got, want)
			}
		}
	}
}

func TestDistanceUpToInfMatchesDistance(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		x := randomSeries(seed*2+10, 80)
		y := randomSeries(seed*2+11, 80)
		for _, delta := range []int{0, 5, 10, 100} {
			d := DTW{DeltaPercent: delta}
			exact := d.Distance(x, y)
			upTo := d.DistanceUpTo(x, y, math.Inf(1))
			if exact != upTo {
				t.Fatalf("delta=%d: DistanceUpTo(+Inf)=%g, Distance=%g", delta, upTo, exact)
			}
		}
	}
}

func TestDistanceUpToContract(t *testing.T) {
	// Contract: below cutoff the exact distance is returned; at or above
	// cutoff any certified lower bound in [cutoff, exact] may be returned.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		m := 8 + rng.Intn(60)
		x := randomSeries(int64(trial*2+100), m)
		y := randomSeries(int64(trial*2+101), m)
		d := DTW{DeltaPercent: []int{0, 5, 10, 100}[trial%4]}
		exact := d.Distance(x, y)
		cutoff := exact * (0.25 + 1.5*rng.Float64()) // straddles the exact value
		got := d.DistanceUpTo(x, y, cutoff)
		if exact < cutoff {
			if got != exact {
				t.Fatalf("trial %d: exact %g < cutoff %g but DistanceUpTo returned %g", trial, exact, cutoff, got)
			}
		} else if got < cutoff || got > exact {
			t.Fatalf("trial %d: abandoned value %g outside [cutoff=%g, exact=%g]", trial, got, cutoff, exact)
		}
	}
}

func TestLowerBoundNeverExceedsDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		m := 4 + rng.Intn(80)
		x := randomSeries(int64(trial*2+500), m)
		y := randomSeries(int64(trial*2+501), m)
		d := DTW{DeltaPercent: []int{0, 3, 10, 100}[trial%4]}
		cx := d.NewBoundContext(m)
		cy := d.NewBoundContext(m)
		cx.Fill(x)
		cy.Fill(y)
		exact := d.Distance(x, y)
		for _, cutoff := range []float64{math.Inf(1), exact, exact / 2, exact * 2} {
			lb := d.LowerBound(x, y, cx, cy, cutoff)
			if lb > exact {
				t.Fatalf("trial %d cutoff %g: LowerBound %g exceeds DTW %g", trial, cutoff, lb, exact)
			}
		}
	}
}

func TestLowerBoundIdenticalSeriesIsZero(t *testing.T) {
	x := randomSeries(3, 64)
	d := DTW{DeltaPercent: 10}
	cx := d.NewBoundContext(len(x))
	cx.Fill(x)
	if lb := d.LowerBound(x, x, cx, cx, math.Inf(1)); lb != 0 {
		t.Fatalf("LowerBound(x, x) = %g, want 0", lb)
	}
}

func TestBoundContextRefillAcrossLengths(t *testing.T) {
	d := DTW{DeltaPercent: 10}
	c := d.NewBoundContext(32)
	short := randomSeries(5, 32)
	long := randomSeries(6, 128)
	c.Fill(long) // must grow
	want := NewEnvelope(long, windowSize(10, 128))
	ctx := c.(*dtwContext)
	for i := range long {
		if ctx.upper[i] != want.Upper[i] || ctx.lower[i] != want.Lower[i] {
			t.Fatalf("grown context envelope mismatch at %d", i)
		}
	}
	c.Fill(short) // must shrink back
	want = NewEnvelope(short, windowSize(10, 32))
	for i := range short {
		if ctx.upper[i] != want.Upper[i] || ctx.lower[i] != want.Lower[i] {
			t.Fatalf("shrunk context envelope mismatch at %d", i)
		}
	}
}

func TestElasticMeasuresDeclareSymmetry(t *testing.T) {
	for _, m := range All() {
		if !measure.IsSymmetric(m) {
			t.Errorf("%s should declare symmetry", m.Name())
		}
	}
	for _, m := range []measure.Measure{DDTW{DeltaPercent: 5}, WDTW{G: 0.05},
		DDBlend{DeltaPercent: 5, Alpha: 0.5}, CID{Base: DTW{DeltaPercent: 10}}} {
		if !measure.IsSymmetric(m) {
			t.Errorf("%s should declare symmetry", m.Name())
		}
	}
	if measure.IsSymmetric(measure.New("asym", func(x, y []float64) float64 { return x[0] - y[0] })) {
		t.Error("plain Func must not declare symmetry")
	}
	// Symmetry must hold numerically, bitwise, for every elastic measure.
	x := randomSeries(21, 40)
	y := randomSeries(22, 40)
	for _, m := range All() {
		if m.Distance(x, y) != m.Distance(y, x) {
			t.Errorf("%s: Distance(x,y) != Distance(y,x)", m.Name())
		}
	}
}
