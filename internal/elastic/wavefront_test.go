package elastic

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// wavefronter is the surface shared by the six blocked elastic measures.
type wavefronter interface {
	Name() string
	Distance(x, y []float64) float64
	DistanceWavefront(ctx context.Context, x, y []float64) (float64, error)
}

// table4Epsilons mirrors eval's epsilonGrid (Table 4); the eval package
// cannot be imported here without a cycle.
var table4Epsilons = []float64{
	0.001, 0.003, 0.005, 0.007, 0.009, 0.01, 0.03, 0.05,
	0.07, 0.09, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1,
}

// table4Wavefronters enumerates every Table-4 grid point of the six
// wavefront-capable elastic measures.
func table4Wavefronters() []wavefronter {
	var ms []wavefronter
	for _, c := range []float64{0.01, 0.1, 1, 10, 100, 0.05, 0.5, 5, 50, 500} {
		ms = append(ms, MSM{C: c})
	}
	for _, l := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		for _, n := range []float64{0.00001, 0.0001, 0.001, 0.01, 0.1, 1} {
			ms = append(ms, TWE{Lambda: l, Nu: n})
		}
	}
	for d := 0; d <= 20; d++ {
		ms = append(ms, DTW{DeltaPercent: d})
	}
	ms = append(ms, DTW{DeltaPercent: 100})
	for _, e := range table4Epsilons {
		ms = append(ms, EDR{Epsilon: e})
	}
	ms = append(ms, ERP{G: 0})
	for _, d := range []int{5, 10} {
		for _, e := range table4Epsilons {
			ms = append(ms, LCSS{DeltaPercent: d, Epsilon: e})
		}
	}
	return ms
}

// wfSeries draws a test series whose values repeat often enough to exercise
// the epsilon-tie branches of LCSS/EDR and the interval branch of msmCost.
func wfSeries(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		switch rng.Intn(4) {
		case 0:
			s[i] = math.Round(rng.NormFloat64()*4) / 4 // coarse grid: exact ties
		default:
			s[i] = rng.NormFloat64()
		}
	}
	return s
}

// TestWavefrontBitwiseScalar is the exactness property test of the issue:
// the blocked wavefront path must be bitwise-identical to the scalar DP for
// every Table-4 grid point, across lengths that exercise single-block,
// ragged-edge, and multi-diagonal schedules.
func TestWavefrontBitwiseScalar(t *testing.T) {
	defer func(b int) { wfBlock = b }(wfBlock)
	rng := rand.New(rand.NewSource(61))
	for _, block := range []int{8, 256} {
		wfBlock = block
		for _, n := range []int{1, 2, 3, 7, 8, 9, 33, 64} {
			x, y := wfSeries(rng, n), wfSeries(rng, n)
			for _, m := range table4Wavefronters() {
				want := m.Distance(x, y)
				got, err := m.DistanceWavefront(context.Background(), x, y)
				if err != nil {
					t.Fatalf("%s block=%d n=%d: %v", m.Name(), block, n, err)
				}
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%s block=%d n=%d: wavefront %v != scalar %v",
						m.Name(), block, n, got, want)
				}
			}
		}
	}
}

// TestWavefrontEmpty: zero-length series take the measure's empty-input
// shortcut on both paths.
func TestWavefrontEmpty(t *testing.T) {
	for _, m := range []wavefronter{DTW{DeltaPercent: 10}, LCSS{DeltaPercent: 5, Epsilon: 0.2},
		EDR{Epsilon: 0.1}, ERP{}, MSM{C: 0.5}, TWE{Lambda: 1, Nu: 0.0001}} {
		got, err := m.DistanceWavefront(context.Background(), nil, nil)
		if err != nil || got != m.Distance(nil, nil) {
			t.Fatalf("%s: empty input gave (%v, %v)", m.Name(), got, err)
		}
	}
}

// TestWavefrontPreCancelled: a cancelled context stops the run before any
// block and surfaces context.Canceled through every measure's wrapper.
func TestWavefrontPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(7))
	x, y := wfSeries(rng, 600), wfSeries(rng, 600)
	defer func(b int) { wfBlock = b }(wfBlock)
	wfBlock = 64
	for _, m := range []wavefronter{DTW{DeltaPercent: 100}, LCSS{DeltaPercent: 10, Epsilon: 0.2},
		EDR{Epsilon: 0.1}, ERP{}, MSM{C: 0.5}, TWE{Lambda: 1, Nu: 0.0001}} {
		if _, err := m.DistanceWavefront(ctx, x, y); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", m.Name(), err)
		}
	}
}

// TestWavefrontCancelDuringRun races a concurrent cancel against a long
// run: whichever wins, the call must either report the cancellation or
// return the exact scalar result — never a torn value.
func TestWavefrontCancelDuringRun(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x, y := wfSeries(rng, 2048), wfSeries(rng, 2048)
	d := DTW{DeltaPercent: 100}
	want := d.DistanceUpTo(x, y, math.Inf(1))
	defer func(b int) { wfBlock = b }(wfBlock)
	wfBlock = 64
	for _, delay := range []time.Duration{0, 50 * time.Microsecond, 2 * time.Millisecond} {
		ctx, cancel := context.WithCancel(context.Background())
		go func(after time.Duration) {
			time.Sleep(after)
			cancel()
		}(delay)
		got, err := d.DistanceWavefront(ctx, x, y)
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("delay=%v: err = %v, want context.Canceled", delay, err)
			}
		} else if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("delay=%v: uncancelled run returned %v, want %v", delay, got, want)
		}
		cancel()
	}
}

// TestElasticDistanceAllocFree pins the satellite fix: every scalar elastic
// Distance runs allocation-free once the row pool is warm (DTW already did
// through dtwPool; MSM and TWE used to allocate fresh rows per call).
func TestElasticDistanceAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under -race; allocation counts are meaningless")
	}
	rng := rand.New(rand.NewSource(5))
	x, y := wfSeries(rng, 128), wfSeries(rng, 128)
	measures := []interface {
		Name() string
		Distance(x, y []float64) float64
	}{
		DTW{DeltaPercent: 10}, LCSS{DeltaPercent: 5, Epsilon: 0.2}, EDR{Epsilon: 0.1},
		ERP{}, MSM{C: 0.5}, TWE{Lambda: 1, Nu: 0.0001}, Swale{Epsilon: 0.2, P: 5, R: 1},
	}
	for _, m := range measures {
		m.Distance(x, y) // warm the pool
		if allocs := testing.AllocsPerRun(50, func() { m.Distance(x, y) }); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op warm, want 0", m.Name(), allocs)
		}
	}
}

// Benchmarks for the scalar-vs-wavefront crossover; make bench records them
// into BENCH_hotloops.json.
func benchSeries(n int) ([]float64, []float64) {
	rng := rand.New(rand.NewSource(3))
	return wfSeries(rng, n), wfSeries(rng, n)
}

func BenchmarkHotloopsDTWScalar(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		x, y := benchSeries(n)
		d := DTW{DeltaPercent: 10}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.DistanceUpTo(x, y, math.Inf(1))
			}
		})
	}
}

func BenchmarkHotloopsDTWWavefront(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		x, y := benchSeries(n)
		d := DTW{DeltaPercent: 10}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := d.DistanceWavefront(context.Background(), x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkHotloopsMSMDistance(b *testing.B) {
	x, y := benchSeries(256)
	m := MSM{C: 0.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Distance(x, y)
	}
}

func BenchmarkHotloopsTWEDistance(b *testing.B) {
	x, y := benchSeries(256)
	tw := TWE{Lambda: 1, Nu: 0.0001}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tw.Distance(x, y)
	}
}
