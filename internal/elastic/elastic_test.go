package elastic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/measure"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func randSeries(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// dtwNaive is the O(m^2)-memory reference DTW without a band.
func dtwNaive(x, y []float64) float64 {
	m, n := len(x), len(y)
	inf := math.Inf(1)
	d := make([][]float64, m+1)
	for i := range d {
		d[i] = make([]float64, n+1)
		for j := range d[i] {
			d[i][j] = inf
		}
	}
	d[0][0] = 0
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			c := x[i-1] - y[j-1]
			d[i][j] = c*c + math.Min(d[i-1][j-1], math.Min(d[i-1][j], d[i][j-1]))
		}
	}
	return d[m][n]
}

func TestDTWMatchesNaiveFullWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(60)
		x := randSeries(rng, n)
		y := randSeries(rng, n)
		got := DTW{DeltaPercent: 100}.Distance(x, y)
		want := dtwNaive(x, y)
		if !almostEq(got, want) {
			t.Fatalf("DTW = %g, want %g", got, want)
		}
	}
}

func TestDTWIdentity(t *testing.T) {
	x := randSeries(rand.New(rand.NewSource(2)), 40)
	for _, d := range []int{0, 5, 10, 100} {
		if v := (DTW{DeltaPercent: d}).Distance(x, x); !almostEq(v, 0) {
			t.Fatalf("DTW[d=%d](x,x) = %g", d, v)
		}
	}
}

func TestDTWZeroWindowIsSquaredED(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randSeries(rng, 30)
	y := randSeries(rng, 30)
	// Window 0 percent clamps to 1, but window 1 still allows warping.
	// Instead verify DTW <= squared ED for any window (warping only helps).
	var sq float64
	for i := range x {
		d := x[i] - y[i]
		sq += d * d
	}
	for _, d := range []int{5, 10, 100} {
		if v := (DTW{DeltaPercent: d}).Distance(x, y); v > sq+1e-9 {
			t.Fatalf("DTW[d=%d] = %g exceeds squared ED %g", d, v, sq)
		}
	}
}

func TestDTWWindowMonotone(t *testing.T) {
	// A wider band can only lower the optimal path cost.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		x := randSeries(rng, n)
		y := randSeries(rng, n)
		d5 := DTW{DeltaPercent: 5}.Distance(x, y)
		d10 := DTW{DeltaPercent: 10}.Distance(x, y)
		d100 := DTW{DeltaPercent: 100}.Distance(x, y)
		return d100 <= d10+1e-9 && d10 <= d5+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDTWHandlesWarpedCopies(t *testing.T) {
	// A locally stretched copy should be much closer under DTW than ED.
	m := 64
	x := make([]float64, m)
	y := make([]float64, m)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 32)
		// y is x sampled with a nonlinear (warped) time axis.
		warped := float64(i) + 4*math.Sin(2*math.Pi*float64(i)/float64(m))
		y[i] = math.Sin(2 * math.Pi * warped / 32)
	}
	var sq float64
	for i := range x {
		d := x[i] - y[i]
		sq += d * d
	}
	dtw := DTW{DeltaPercent: 20}.Distance(x, y)
	if dtw > sq/10 {
		t.Fatalf("DTW %g not much smaller than squared ED %g on warped copy", dtw, sq)
	}
}

func TestLBKeoghIsLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(50)
		x := randSeries(rng, n)
		y := randSeries(rng, n)
		wPct := 5 + rng.Intn(20)
		w := windowSize(wPct, n)
		lb := LBKeogh(x, y, w)
		dtw := DTW{DeltaPercent: wPct}.Distance(x, y)
		return lb <= dtw+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLBKeoghIdentity(t *testing.T) {
	x := randSeries(rand.New(rand.NewSource(4)), 30)
	if lb := LBKeogh(x, x, 3); lb != 0 {
		t.Fatalf("LBKeogh(x,x) = %g", lb)
	}
}

func TestLCSSIdenticalIsZero(t *testing.T) {
	x := randSeries(rand.New(rand.NewSource(5)), 30)
	d := LCSS{DeltaPercent: 10, Epsilon: 0.01}.Distance(x, x)
	if !almostEq(d, 0) {
		t.Fatalf("LCSS(x,x) = %g", d)
	}
}

func TestLCSSRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		x := randSeries(rng, n)
		y := randSeries(rng, n)
		d := LCSS{DeltaPercent: 10, Epsilon: 0.2}.Distance(x, y)
		return d >= -1e-12 && d <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLCSSEpsilonMonotone(t *testing.T) {
	// A larger threshold can only lengthen the common subsequence.
	rng := rand.New(rand.NewSource(6))
	x := randSeries(rng, 40)
	y := randSeries(rng, 40)
	prev := 2.0
	for _, eps := range []float64{0.01, 0.1, 0.5, 1, 2} {
		d := LCSS{DeltaPercent: 100, Epsilon: eps}.Distance(x, y)
		if d > prev+1e-12 {
			t.Fatalf("LCSS not monotone in epsilon: %g at eps=%g after %g", d, eps, prev)
		}
		prev = d
	}
	// Huge epsilon matches everything.
	if d := (LCSS{DeltaPercent: 100, Epsilon: 1e9}).Distance(x, y); !almostEq(d, 0) {
		t.Fatalf("LCSS with huge epsilon = %g, want 0", d)
	}
}

func TestEDRKnownValues(t *testing.T) {
	// Identical: zero edits.
	x := []float64{1, 2, 3}
	if d := (EDR{Epsilon: 0.1}).Distance(x, x); d != 0 {
		t.Fatalf("EDR(x,x) = %g", d)
	}
	// One point off beyond epsilon: one substitution.
	y := []float64{1, 5, 3}
	if d := (EDR{Epsilon: 0.1}).Distance(x, y); d != 1 {
		t.Fatalf("EDR one-sub = %g, want 1", d)
	}
	// Everything within epsilon: zero.
	z := []float64{1.05, 2.05, 2.95}
	if d := (EDR{Epsilon: 0.1}).Distance(x, z); d != 0 {
		t.Fatalf("EDR within eps = %g, want 0", d)
	}
}

func TestEDRBoundedByLength(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		x := randSeries(rng, n)
		y := randSeries(rng, n)
		d := EDR{Epsilon: 0.25}.Distance(x, y)
		return d >= 0 && d <= float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestERPIdentity(t *testing.T) {
	x := randSeries(rand.New(rand.NewSource(7)), 30)
	if d := (ERP{G: 0}).Distance(x, x); !almostEq(d, 0) {
		t.Fatalf("ERP(x,x) = %g", d)
	}
}

func TestERPIsMetricTriangle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		x := randSeries(rng, n)
		y := randSeries(rng, n)
		z := randSeries(rng, n)
		e := ERP{G: 0}
		return e.Distance(x, z) <= e.Distance(x, y)+e.Distance(y, z)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestERPLowerBoundedByL1Difference(t *testing.T) {
	// With g=0, ERP(x, y) >= | sum|x| - sum|y| | (known ERP property).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		x := randSeries(rng, n)
		y := randSeries(rng, n)
		var sx, sy float64
		for i := range x {
			sx += math.Abs(x[i])
			sy += math.Abs(y[i])
		}
		return ERP{G: 0}.Distance(x, y) >= math.Abs(sx-sy)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMSMIdentity(t *testing.T) {
	x := randSeries(rand.New(rand.NewSource(8)), 30)
	if d := (MSM{C: 0.5}).Distance(x, x); !almostEq(d, 0) {
		t.Fatalf("MSM(x,x) = %g", d)
	}
}

func TestMSMKnownSmallCase(t *testing.T) {
	// x = [1], y = [3]: single move of cost |1-3| = 2.
	if d := (MSM{C: 0.5}).Distance([]float64{1}, []float64{3}); !almostEq(d, 2) {
		t.Fatalf("MSM single move = %g, want 2", d)
	}
}

func TestMSMTriangleInequality(t *testing.T) {
	// MSM is a metric (its defining property versus DTW/LCSS/EDR).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		x := randSeries(rng, n)
		y := randSeries(rng, n)
		z := randSeries(rng, n)
		m := MSM{C: 0.5}
		return m.Distance(x, z) <= m.Distance(x, y)+m.Distance(y, z)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMSMSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := randSeries(rng, 25)
	y := randSeries(rng, 25)
	m := MSM{C: 1}
	if !almostEq(m.Distance(x, y), m.Distance(y, x)) {
		t.Fatalf("MSM not symmetric: %g vs %g", m.Distance(x, y), m.Distance(y, x))
	}
}

func TestMSMCostFunction(t *testing.T) {
	m := MSM{C: 0.5}
	// new between a and b: cost c.
	if got := m.msmCost(2, 1, 3); got != 0.5 {
		t.Fatalf("msmCost inside = %g", got)
	}
	if got := m.msmCost(2, 3, 1); got != 0.5 {
		t.Fatalf("msmCost inside reversed = %g", got)
	}
	// new outside: c + distance to nearer endpoint.
	if got := m.msmCost(5, 1, 3); got != 0.5+2 {
		t.Fatalf("msmCost outside = %g", got)
	}
}

func TestTWEIdentity(t *testing.T) {
	x := randSeries(rand.New(rand.NewSource(10)), 30)
	if d := (TWE{Lambda: 1, Nu: 0.0001}).Distance(x, x); !almostEq(d, 0) {
		t.Fatalf("TWE(x,x) = %g", d)
	}
}

func TestTWESymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randSeries(rng, 25)
	y := randSeries(rng, 25)
	tw := TWE{Lambda: 0.5, Nu: 0.001}
	if !almostEq(tw.Distance(x, y), tw.Distance(y, x)) {
		t.Fatalf("TWE not symmetric: %g vs %g", tw.Distance(x, y), tw.Distance(y, x))
	}
}

func TestTWETriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		x := randSeries(rng, n)
		y := randSeries(rng, n)
		z := randSeries(rng, n)
		tw := TWE{Lambda: 1, Nu: 0.001}
		return tw.Distance(x, z) <= tw.Distance(x, y)+tw.Distance(y, z)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTWEStiffnessEffect(t *testing.T) {
	// Higher stiffness penalizes warping, so distance is non-decreasing in nu.
	rng := rand.New(rand.NewSource(12))
	x := randSeries(rng, 30)
	y := randSeries(rng, 30)
	prev := -1.0
	for _, nu := range []float64{0.00001, 0.0001, 0.001, 0.01, 0.1, 1} {
		d := TWE{Lambda: 1, Nu: nu}.Distance(x, y)
		if d < prev-1e-9 {
			t.Fatalf("TWE decreased with stiffness: %g at nu=%g after %g", d, nu, prev)
		}
		prev = d
	}
}

func TestSwaleIdenticalBeatsDifferent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := randSeries(rng, 30)
	y := randSeries(rng, 30)
	s := Swale{Epsilon: 0.2, P: 5, R: 1}
	if s.Distance(x, x) >= s.Distance(x, y) {
		t.Fatalf("Swale(x,x)=%g not smaller than Swale(x,y)=%g", s.Distance(x, x), s.Distance(x, y))
	}
	// Perfect match similarity is m*R, so distance is -m*R.
	if d := s.Distance(x, x); !almostEq(d, -30) {
		t.Fatalf("Swale(x,x) = %g, want -30", d)
	}
}

func TestSwaleGapPenalty(t *testing.T) {
	// All points beyond epsilon: best alignment is forced to pay penalties.
	x := []float64{0, 0, 0}
	y := []float64{10, 10, 10}
	s := Swale{Epsilon: 0.1, P: 5, R: 1}
	d := s.Distance(x, y)
	if d <= 0 {
		t.Fatalf("all-mismatch Swale distance = %g, want positive (penalties)", d)
	}
}

func TestAllSevenMeasures(t *testing.T) {
	all := All()
	if len(all) != 7 {
		t.Fatalf("All() = %d measures, want 7", len(all))
	}
	seen := map[string]bool{}
	rng := rand.New(rand.NewSource(14))
	x := randSeries(rng, 20)
	y := randSeries(rng, 20)
	for _, m := range all {
		if seen[m.Name()] {
			t.Errorf("duplicate name %s", m.Name())
		}
		seen[m.Name()] = true
		if d := m.Distance(x, y); math.IsNaN(d) {
			t.Errorf("%s returned NaN", m.Name())
		}
	}
}

func TestElasticMeasuresRankSelfFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	x := randSeries(rng, 25)
	y := randSeries(rng, 25)
	for _, m := range All() {
		if m.Distance(x, x) > m.Distance(x, y)+1e-9 {
			t.Errorf("%s: d(x,x) > d(x,y)", m.Name())
		}
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	ms := []measure.Measure{
		DTW{DeltaPercent: 10}, LCSS{DeltaPercent: 5, Epsilon: 0.1},
		EDR{Epsilon: 0.1}, ERP{G: 0}, MSM{C: 0.5},
		TWE{Lambda: 1, Nu: 0.001}, Swale{Epsilon: 0.1, P: 5, R: 1},
	}
	for _, m := range ms {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on length mismatch", m.Name())
				}
			}()
			m.Distance([]float64{1, 2}, []float64{1, 2, 3})
		}()
	}
}

func TestWindowSize(t *testing.T) {
	if windowSize(100, 50) != 50 {
		t.Error("delta=100 must give full window")
	}
	if windowSize(10, 100) != 10 {
		t.Error("delta=10 of 100 must give 10")
	}
	if windowSize(1, 10) != 1 {
		t.Error("window must be at least 1")
	}
}

func BenchmarkDTWFull(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	x := randSeries(rng, 256)
	y := randSeries(rng, 256)
	d := DTW{DeltaPercent: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Distance(x, y)
	}
}

func BenchmarkDTWBand10(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	x := randSeries(rng, 256)
	y := randSeries(rng, 256)
	d := DTW{DeltaPercent: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Distance(x, y)
	}
}

func BenchmarkMSM(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	x := randSeries(rng, 256)
	y := randSeries(rng, 256)
	m := MSM{C: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(x, y)
	}
}
