// Package elastic implements the 7 elastic distance measures of Section 7
// of the paper: DTW with the Sakoe-Chiba band, LCSS, EDR, ERP, MSM, TWE,
// and Swale. Elastic measures create a non-linear mapping between series by
// dynamic programming over the m-by-m cost matrix, allowing regions to
// stretch or shrink; all run in O(m^2) time (O(w*m) with a band) and O(m)
// memory via two-row DP. The package also provides the LB_Keogh lower
// bound used by the DTW pruning ablation.
package elastic

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/measure"
)

// RowScratch pools the two DP rows shared by the scalar elastic
// recurrences (LCSS, EDR, ERP, MSM, TWE, Swale), so warm Distance calls
// are allocation-free like DTW's dtwPool path. Contents are unspecified on
// Get; every recurrence fully initializes the cells it reads. The type is
// exported through BorrowRows/Release so other DP layers (the multivariate
// dependent recurrences) share the same pool instead of growing their own.
type RowScratch struct{ prev, cur []float64 }

var rowPool = sync.Pool{New: func() any { return new(RowScratch) }}

// BorrowRows returns a pooled scratch holder and its two rows resized to
// n. The rows arrive dirty; callers must initialize every cell they read
// and hand the (possibly swapped) rows back via Release.
func BorrowRows(n int) (*RowScratch, []float64, []float64) {
	s := rowPool.Get().(*RowScratch)
	if cap(s.prev) < n {
		s.prev = make([]float64, n)
		s.cur = make([]float64, n)
	}
	return s, s.prev[:n], s.cur[:n]
}

// Release returns the rows to the pool. Two-row DPs swap prev and cur as
// they advance, so the final slices are passed back rather than assumed.
func (s *RowScratch) Release(prev, cur []float64) {
	s.prev, s.cur = prev, cur
	rowPool.Put(s)
}

// getRows and release are the package-internal spellings, kept so the
// recurrences in this file read unchanged.
func getRows(n int) (*RowScratch, []float64, []float64) { return BorrowRows(n) }

func (s *RowScratch) release(prev, cur []float64) { s.Release(prev, cur) }

// windowSize converts a Sakoe-Chiba window expressed as a percentage of the
// series length (the paper's convention: delta = 10 means 10% of m;
// delta >= 100 means an unconstrained band) into an absolute band width.
func windowSize(deltaPercent int, m int) int {
	if deltaPercent >= 100 {
		return m
	}
	w := deltaPercent * m / 100
	if w < 1 {
		w = 1
	}
	return w
}

// DTW is Dynamic Time Warping with a Sakoe-Chiba band. DeltaPercent is the
// band half-width as a percentage of the series length (Table 4's grid);
// 100 disables the constraint. The point cost is the squared difference and
// the accumulated value is returned without a final square root, following
// the UCR-suite convention (1-NN ordering is unaffected).
type DTW struct {
	DeltaPercent int
}

// Name implements measure.Measure.
func (d DTW) Name() string { return fmt.Sprintf("dtw[d=%d]", d.DeltaPercent) }

// Symmetric implements measure.Symmetric: the transposed DP combines the
// same operands with the same operations, so DTW(x, y) == DTW(y, x)
// bitwise.
func (d DTW) Symmetric() bool { return true }

// Distance implements measure.Measure. Long series on multi-core machines
// route through the blocked wavefront engine (bitwise-identical, see
// DistanceWavefront); everything else takes the scalar two-row DP.
func (d DTW) Distance(x, y []float64) float64 {
	if wavefrontEligible(len(x)) {
		if v, err := d.DistanceWavefront(context.Background(), x, y); err == nil {
			return v
		}
	}
	return d.DistanceUpTo(x, y, math.Inf(1))
}

// LBKeogh returns the LB_Keogh lower bound of DTW(x, y) for a band of
// absolute half-width w: the squared exceedance of x outside the upper and
// lower envelopes of y. It never exceeds the corresponding DTW value. The
// envelope is built in O(m) with Lemire's streaming min/max; callers that
// evaluate many bounds against the same series should precompute an
// Envelope (or use the search engine, which does) instead of rebuilding it
// per call.
func LBKeogh(x, y []float64, w int) float64 {
	measure.CheckSameLength(x, y)
	return NewEnvelope(y, w).LBKeogh(x)
}

// LCSS is the Longest Common Subsequence distance: points match when they
// differ by at most Epsilon and their indexes by at most the band; the
// distance is 1 - L/min(m, n) where L is the longest common subsequence.
type LCSS struct {
	DeltaPercent int     // band as a percentage of the length (Table 4: {5, 10})
	Epsilon      float64 // matching threshold
}

// Name implements measure.Measure.
func (l LCSS) Name() string { return fmt.Sprintf("lcss[d=%d,e=%g]", l.DeltaPercent, l.Epsilon) }

// Symmetric implements measure.Symmetric.
func (l LCSS) Symmetric() bool { return true }

// Distance implements measure.Measure. Long series on multi-core machines
// route through the blocked wavefront engine (bitwise-identical).
func (l LCSS) Distance(x, y []float64) float64 {
	if wavefrontEligible(len(x)) {
		if v, err := l.DistanceWavefront(context.Background(), x, y); err == nil {
			return v
		}
	}
	measure.CheckSameLength(x, y)
	m := len(x)
	if m == 0 {
		return 0
	}
	w := windowSize(l.DeltaPercent, m)
	s, prev, cur := getRows(m + 1)
	// Row 0 of the DP is all zeros; pooled rows arrive dirty, so clear it
	// (the in-band loop plus fringe clearing covers every later read).
	for j := range prev {
		prev[j] = 0
	}
	for i := 1; i <= m; i++ {
		lo := i - w
		if lo < 1 {
			lo = 1
		}
		hi := i + w
		if hi > m {
			hi = m
		}
		// Out-of-band cells count as zero matches. The band only ever
		// advances by one cell per row, so clearing its fringe — cur[lo-1]
		// (read as the deletion predecessor) and cur[hi+1] (read as the
		// next row's insertion predecessor) — replaces the former
		// full-row wipe that made banded LCSS O(m^2) regardless of band.
		cur[lo-1] = 0
		if hi < m {
			cur[hi+1] = 0
		}
		for j := lo; j <= hi; j++ {
			if math.Abs(x[i-1]-y[j-1]) <= l.Epsilon {
				cur[j] = prev[j-1] + 1
			} else {
				cur[j] = math.Max(prev[j], cur[j-1])
			}
		}
		prev, cur = cur, prev
	}
	res := 1 - prev[m]/float64(m)
	s.release(prev, cur)
	return res
}

// EDR is the Edit Distance on Real sequence: a unit-cost edit distance
// where two points match (cost 0) when they differ by at most Epsilon, and
// every gap or mismatch costs 1. The raw edit count is returned (series are
// equal-length after preprocessing, so normalization is a constant factor).
type EDR struct {
	Epsilon float64
}

// Name implements measure.Measure.
func (e EDR) Name() string { return fmt.Sprintf("edr[e=%g]", e.Epsilon) }

// Symmetric implements measure.Symmetric.
func (e EDR) Symmetric() bool { return true }

// Distance implements measure.Measure. Long series on multi-core machines
// route through the blocked wavefront engine (bitwise-identical).
func (e EDR) Distance(x, y []float64) float64 {
	if wavefrontEligible(len(x)) {
		if v, err := e.DistanceWavefront(context.Background(), x, y); err == nil {
			return v
		}
	}
	measure.CheckSameLength(x, y)
	m := len(x)
	s, prev, cur := getRows(m + 1)
	for j := 0; j <= m; j++ {
		prev[j] = float64(j)
	}
	for i := 1; i <= m; i++ {
		cur[0] = float64(i)
		for j := 1; j <= m; j++ {
			subCost := 1.0
			if math.Abs(x[i-1]-y[j-1]) <= e.Epsilon {
				subCost = 0
			}
			best := prev[j-1] + subCost
			if v := prev[j] + 1; v < best {
				best = v
			}
			if v := cur[j-1] + 1; v < best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	res := prev[m]
	s.release(prev, cur)
	return res
}

// ERP is the Edit distance with Real Penalty: gaps are penalized by the
// distance to a constant gap value g (0 here, the standard choice for
// z-normalized data), which makes ERP a metric and, with g fixed,
// parameter-free — the only such elastic measure in Table 5.
type ERP struct {
	G float64
}

// Name implements measure.Measure.
func (e ERP) Name() string { return "erp" }

// Symmetric implements measure.Symmetric.
func (e ERP) Symmetric() bool { return true }

// Distance implements measure.Measure. Long series on multi-core machines
// route through the blocked wavefront engine (bitwise-identical).
func (e ERP) Distance(x, y []float64) float64 {
	if wavefrontEligible(len(x)) {
		if v, err := e.DistanceWavefront(context.Background(), x, y); err == nil {
			return v
		}
	}
	measure.CheckSameLength(x, y)
	m := len(x)
	s, prev, cur := getRows(m + 1)
	prev[0] = 0
	for j := 1; j <= m; j++ {
		prev[j] = prev[j-1] + math.Abs(y[j-1]-e.G)
	}
	for i := 1; i <= m; i++ {
		cur[0] = prev[0] + math.Abs(x[i-1]-e.G)
		for j := 1; j <= m; j++ {
			match := prev[j-1] + math.Abs(x[i-1]-y[j-1])
			gapX := prev[j] + math.Abs(x[i-1]-e.G)
			gapY := cur[j-1] + math.Abs(y[j-1]-e.G)
			cur[j] = math.Min(match, math.Min(gapX, gapY))
		}
		prev, cur = cur, prev
	}
	res := prev[m]
	s.release(prev, cur)
	return res
}

// MSM is the Move-Split-Merge distance (Stefan, Athitsos, Das 2013): an
// edit-style measure built from move (substitute), split, and merge
// operations, each costing C. Unlike DTW, LCSS, and EDR, MSM is a metric.
type MSM struct {
	C float64 // cost of a split or merge operation (Table 4's grid)
}

// Name implements measure.Measure.
func (m MSM) Name() string { return fmt.Sprintf("msm[c=%g]", m.C) }

// Symmetric implements measure.Symmetric: under x<->y the split and merge
// roles swap and msmCost is symmetric in its interval endpoints.
func (m MSM) Symmetric() bool { return true }

// msmCost is the split/merge cost C(new, a, b): c when new lies between a
// and b, otherwise c plus the distance to the nearer endpoint.
func (m MSM) msmCost(newPoint, a, b float64) float64 {
	if (a <= newPoint && newPoint <= b) || (b <= newPoint && newPoint <= a) {
		return m.C
	}
	return m.C + math.Min(math.Abs(newPoint-a), math.Abs(newPoint-b))
}

// Distance implements measure.Measure. Long series on multi-core machines
// route through the blocked wavefront engine (bitwise-identical).
func (m MSM) Distance(x, y []float64) float64 {
	if wavefrontEligible(len(x)) {
		if v, err := m.DistanceWavefront(context.Background(), x, y); err == nil {
			return v
		}
	}
	measure.CheckSameLength(x, y)
	n := len(x)
	if n == 0 {
		return 0
	}
	s, prev, cur := getRows(n)
	prev[0] = math.Abs(x[0] - y[0])
	for j := 1; j < n; j++ {
		prev[j] = prev[j-1] + m.msmCost(y[j], x[0], y[j-1])
	}
	for i := 1; i < n; i++ {
		cur[0] = prev[0] + m.msmCost(x[i], x[i-1], y[0])
		for j := 1; j < n; j++ {
			move := prev[j-1] + math.Abs(x[i]-y[j])
			split := prev[j] + m.msmCost(x[i], x[i-1], y[j])
			merge := cur[j-1] + m.msmCost(y[j], x[i], y[j-1])
			cur[j] = math.Min(move, math.Min(split, merge))
		}
		prev, cur = cur, prev
	}
	res := prev[n-1]
	s.release(prev, cur)
	return res
}

// TWE is the Time Warp Edit distance (Marteau 2009): an elastic metric
// combining LCSS-style editing with DTW-style warping, controlled by a
// stiffness parameter Nu (penalizing warping against the time axis) and a
// constant edit penalty Lambda.
type TWE struct {
	Lambda float64 // edit penalty
	Nu     float64 // stiffness
}

// Name implements measure.Measure.
func (t TWE) Name() string { return fmt.Sprintf("twe[l=%g,n=%g]", t.Lambda, t.Nu) }

// Symmetric implements measure.Symmetric.
func (t TWE) Symmetric() bool { return true }

// Distance implements measure.Measure. Long series on multi-core machines
// route through the blocked wavefront engine (bitwise-identical).
func (t TWE) Distance(x, y []float64) float64 {
	if wavefrontEligible(len(x)) {
		if v, err := t.DistanceWavefront(context.Background(), x, y); err == nil {
			return v
		}
	}
	measure.CheckSameLength(x, y)
	m := len(x)
	if m == 0 {
		return 0
	}
	// The reference treatment pads both series with a leading zero sample at
	// time 0; the pad is realized by index arithmetic (xi/xim, yj/yjm below)
	// instead of copies, so warm calls stay allocation-free.
	inf := math.Inf(1)
	s, prev, cur := getRows(m + 1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= m; i++ {
		cur[0] = inf // only column 0 is read before being written
		xi := x[i-1] // xp[i]
		xim := 0.0   // xp[i-1]: the pad sample when i == 1
		if i > 1 {
			xim = x[i-2]
		}
		for j := 1; j <= m; j++ {
			yj := y[j-1]
			yjm := 0.0
			if j > 1 {
				yjm = y[j-2]
			}
			// Delete in x: advance i only.
			delA := prev[j] + math.Abs(xi-xim) + t.Nu + t.Lambda
			// Delete in y: advance j only.
			delB := cur[j-1] + math.Abs(yj-yjm) + t.Nu + t.Lambda
			// Match: advance both, with stiffness on the time difference.
			match := prev[j-1] + math.Abs(xi-yj) + math.Abs(xim-yjm) +
				2*t.Nu*math.Abs(float64(i-j))
			cur[j] = math.Min(match, math.Min(delA, delB))
		}
		prev, cur = cur, prev
	}
	res := prev[m]
	s.release(prev, cur)
	return res
}

// Swale is the Sequence Weighted Alignment model (Morse & Patel 2007): a
// similarity model rewarding matches (within Epsilon) by R and penalizing
// gaps by P. The similarity is negated into a dissimilarity for 1-NN use.
type Swale struct {
	Epsilon float64 // match threshold
	P       float64 // gap penalty (subtracted per gap)
	R       float64 // match reward
}

// Name implements measure.Measure.
func (s Swale) Name() string { return fmt.Sprintf("swale[e=%g,p=%g,r=%g]", s.Epsilon, s.P, s.R) }

// Symmetric implements measure.Symmetric.
func (s Swale) Symmetric() bool { return true }

// Distance implements measure.Measure.
func (s Swale) Distance(x, y []float64) float64 {
	measure.CheckSameLength(x, y)
	m := len(x)
	sc, prev, cur := getRows(m + 1)
	for j := 0; j <= m; j++ {
		prev[j] = -s.P * float64(j)
	}
	for i := 1; i <= m; i++ {
		cur[0] = -s.P * float64(i)
		for j := 1; j <= m; j++ {
			if math.Abs(x[i-1]-y[j-1]) <= s.Epsilon {
				cur[j] = prev[j-1] + s.R
			} else {
				cur[j] = math.Max(prev[j], cur[j-1]) - s.P
			}
		}
		prev, cur = cur, prev
	}
	res := -prev[m]
	sc.release(prev, cur)
	return res
}

// All returns one representative instance of each of the 7 elastic
// measures, using the paper's unsupervised parameter choices (Table 5);
// supervised grids live in the eval package's parameter registry.
func All() []measure.Measure {
	return []measure.Measure{
		MSM{C: 0.5},
		TWE{Lambda: 1, Nu: 0.0001},
		DTW{DeltaPercent: 10},
		EDR{Epsilon: 0.1},
		Swale{Epsilon: 0.2, P: 5, R: 1},
		ERP{G: 0},
		LCSS{DeltaPercent: 5, Epsilon: 0.2},
	}
}
