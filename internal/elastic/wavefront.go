package elastic

import (
	"context"
	"math"
	"runtime"
	"sync"

	"repro/internal/measure"
	"repro/internal/par"
)

// This file implements the diagonal-blocked (wavefront) evaluation of the
// elastic DP recurrences. The m-by-m cost matrix is cut into square blocks;
// every block depends only on its left, top, and top-left neighbors, so the
// blocks of one anti-diagonal are independent once the previous diagonal is
// done and can be scheduled across par workers (par.WavefrontCtx). Inside a
// block the recurrence runs the exact same per-cell operations in the exact
// same order as the scalar two-row DP, so the result is bitwise-identical
// regardless of block size or worker count: floating-point addition is not
// associative, but the blocking never reassociates anything — it only
// changes *when* each cell is computed, never *from what*.
//
// Shared state between blocks lives in three flat buffers owned by a pooled
// arena:
//
//	top[j-1]    = DP(i_bottom, j): the bottom row of the block above, or the
//	              DP boundary row before any block of that column ran;
//	left[i-1]   = DP(i, j_right): the right column of the block to the left,
//	              or the DP boundary column;
//	corner[bi]  = DP(i0-1, j0-1) for the next block of block-row bi.
//
// A block reads its top row, left column, and corner, runs the two-row DP
// over its cells using per-worker row scratch, and writes its bottom row and
// right column back in place. The corner for its right neighbor is the last
// element of its own top input, captured before the bottom row overwrites
// it. Within one diagonal, blocks of distinct rows and columns touch
// disjoint segments, so no synchronization beyond the diagonal barrier is
// needed (verified under -race).

// wfBlock is the block edge length. 256 cells keep the two scratch rows
// (2 KiB each) plus the x/y slices of the block comfortably inside L1 while
// leaving enough blocks per diagonal to balance across workers. A package
// variable so exactness tests can shrink it and exercise multi-block
// schedules on short series.
var wfBlock = 256

// wavefrontMinLen is the crossover below which Distance keeps the scalar
// path: a length-m pair yields only about (m/wfBlock)^2 blocks, and under
// ~16 blocks the barrier and scratch traffic cost more than a single core
// retires. Package variable for benchmarks and tests.
var wavefrontMinLen = 1024

// wavefrontEligible reports whether Distance should auto-route a length-m
// pair through the wavefront engine: long enough to amortize the scheduling
// and more than one core to schedule onto.
func wavefrontEligible(m int) bool {
	return m >= wavefrontMinLen && runtime.GOMAXPROCS(0) > 1
}

// SetWavefrontBlock overrides the wavefront block edge and returns a
// restore func. It exists so external differential harnesses (the oracle)
// can force multi-block schedules onto short fuzz inputs; it is not safe
// to call concurrently with wavefront evaluation.
func SetWavefrontBlock(n int) (restore func()) {
	old := wfBlock
	wfBlock = n
	return func() { wfBlock = old }
}

// wfArena is the pooled buffer set of one wavefront run: the shared
// boundary buffers plus every worker's two DP rows in one flat slice.
type wfArena struct {
	top, left, corner []float64
	rows              []float64
}

var wfPool = sync.Pool{New: func() any { return new(wfArena) }}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// wfRowKernel fills one DP row segment: cur[k] = DP(i, j0-1+k) for
// k in [1, j1-j0+1], given prev[k] = DP(i-1, j0-1+k) for k in [0, j1-j0+1]
// and cur[0] = DP(i, j0-1) preset by the engine. Kernels must perform the
// same per-cell operations as their scalar counterpart so the blocked
// result stays bitwise-identical.
type wfRowKernel func(i, j0, j1 int, prev, cur []float64)

// runWavefront evaluates an R-by-C dynamic program (cells (i, j) with
// i in [1, R], j in [1, C]) by blocked anti-diagonal wavefront and returns
// DP(R, C). corner0 is DP(0, 0); topInit and leftInit fill the boundary
// row DP(0, j) (dst[j-1], j in [1, C]) and boundary column DP(i, 0)
// (dst[i-1], i in [1, R]). w >= 0 declares a Sakoe-Chiba band of absolute
// half-width w: blocks entirely outside the band are skipped and their
// boundaries filled with oob (the value out-of-band cells hold in the
// scalar DP: +Inf for DTW, 0 for LCSS); kernels still handle the band's
// fringe inside partially covered blocks. w < 0 disables banding.
//
// Cancellation follows par.WavefrontCtx: on a cancelled context the run
// stops at the next diagonal (or chunk) boundary and returns ctx.Err().
func runWavefront(ctx context.Context, R, C, w int, oob, corner0 float64,
	topInit, leftInit func(dst []float64), kernel wfRowKernel) (float64, error) {
	if R <= 0 || C <= 0 {
		return corner0, nil
	}
	bs := wfBlock
	nbi := (R + bs - 1) / bs
	nbj := (C + bs - 1) / bs
	workers := par.Workers(min(nbi, nbj))

	a := wfPool.Get().(*wfArena)
	a.top = growFloats(a.top, C)
	a.left = growFloats(a.left, R)
	a.corner = growFloats(a.corner, nbi)
	rowLen := bs + 1
	a.rows = growFloats(a.rows, workers*2*rowLen)
	top, left, corner, rows := a.top, a.left, a.corner, a.rows

	topInit(top)
	leftInit(left)
	corner[0] = corner0
	for bi := 1; bi < nbi; bi++ {
		corner[bi] = left[bi*bs-1]
	}

	blocksOf := func(d int) int {
		lo := d - (nbj - 1)
		if lo < 0 {
			lo = 0
		}
		hi := d
		if hi > nbi-1 {
			hi = nbi - 1
		}
		return hi - lo + 1
	}
	err := par.WavefrontCtx(ctx, nbi+nbj-1, workers, blocksOf, func(worker, d, k int) {
		lo := d - (nbj - 1)
		if lo < 0 {
			lo = 0
		}
		bi := lo + k
		bj := d - bi
		i0, i1 := bi*bs+1, (bi+1)*bs
		if i1 > R {
			i1 = R
		}
		j0, j1 := bj*bs+1, (bj+1)*bs
		if j1 > C {
			j1 = C
		}
		width := j1 - j0 + 1
		topSeg := top[j0-1 : j1]
		leftSeg := left[i0-1 : i1]
		// The right neighbor's corner is DP(i0-1, j1): the last element of
		// this block's top input, captured before the bottom row replaces it.
		nextCorner := topSeg[width-1]
		if w >= 0 && (j1 < i0-w || j0 > i1+w) {
			// Entirely outside the band: every cell holds the scalar DP's
			// out-of-band value; only the boundaries need materializing.
			for t := range topSeg {
				topSeg[t] = oob
			}
			for t := range leftSeg {
				leftSeg[t] = oob
			}
			corner[bi] = nextCorner
			return
		}
		base := worker * 2 * rowLen
		prev := rows[base : base+rowLen]
		cur := rows[base+rowLen : base+2*rowLen]
		prev[0] = corner[bi]
		copy(prev[1:width+1], topSeg)
		for i := i0; i <= i1; i++ {
			cur[0] = leftSeg[i-i0]
			kernel(i, j0, j1, prev, cur)
			leftSeg[i-i0] = cur[width]
			prev, cur = cur, prev
		}
		copy(topSeg, prev[1:width+1])
		corner[bi] = nextCorner
	})
	res := top[C-1]
	wfPool.Put(a)
	if err != nil {
		return 0, err
	}
	return res, nil
}

// DistanceWavefront computes banded DTW with the blocked wavefront engine.
// Bitwise-identical to Distance on finite inputs; on series containing
// NaN/Inf the two paths agree after measure.Sanitize (the scalar row-minimum
// early exit can stop on an all-+Inf row that the wavefront evaluates
// through). Distance auto-routes here for long series on multi-core; this
// method always takes the blocked path, so tests and benchmarks can pin it.
func (d DTW) DistanceWavefront(ctx context.Context, x, y []float64) (float64, error) {
	measure.CheckSameLength(x, y)
	m := len(x)
	if m == 0 {
		return 0, nil
	}
	w := windowSize(d.DeltaPercent, m)
	inf := math.Inf(1)
	fillInf := func(dst []float64) {
		for t := range dst {
			dst[t] = inf
		}
	}
	return runWavefront(ctx, m, m, w, inf, 0, fillInf, fillInf,
		func(i, j0, j1 int, prev, cur []float64) {
			lo, hi := i-w, i+w
			xi := x[i-1]
			for j := j0; j <= j1; j++ {
				k := j - j0 + 1
				if j < lo || j > hi {
					cur[k] = inf
					continue
				}
				c := xi - y[j-1]
				best := prev[k-1] // diagonal
				if prev[k] < best {
					best = prev[k] // insertion
				}
				if cur[k-1] < best {
					best = cur[k-1] // deletion
				}
				cur[k] = c*c + best
			}
		})
}

// DistanceWavefront computes banded LCSS with the blocked wavefront engine;
// bitwise-identical to Distance. Out-of-band cells hold 0, exactly like the
// scalar fringe-cleared band.
func (l LCSS) DistanceWavefront(ctx context.Context, x, y []float64) (float64, error) {
	measure.CheckSameLength(x, y)
	m := len(x)
	if m == 0 {
		return 0, nil
	}
	w := windowSize(l.DeltaPercent, m)
	zero := func(dst []float64) {
		for t := range dst {
			dst[t] = 0
		}
	}
	v, err := runWavefront(ctx, m, m, w, 0, 0, zero, zero,
		func(i, j0, j1 int, prev, cur []float64) {
			lo, hi := i-w, i+w
			xi := x[i-1]
			for j := j0; j <= j1; j++ {
				k := j - j0 + 1
				if j < lo || j > hi {
					cur[k] = 0
					continue
				}
				if math.Abs(xi-y[j-1]) <= l.Epsilon {
					cur[k] = prev[k-1] + 1
				} else {
					cur[k] = math.Max(prev[k], cur[k-1])
				}
			}
		})
	if err != nil {
		return 0, err
	}
	return 1 - v/float64(m), nil
}

// DistanceWavefront computes EDR with the blocked wavefront engine;
// bitwise-identical to Distance.
func (e EDR) DistanceWavefront(ctx context.Context, x, y []float64) (float64, error) {
	measure.CheckSameLength(x, y)
	m := len(x)
	if m == 0 {
		return 0, nil
	}
	countInit := func(dst []float64) {
		for t := range dst {
			dst[t] = float64(t + 1)
		}
	}
	return runWavefront(ctx, m, m, -1, 0, 0, countInit, countInit,
		func(i, j0, j1 int, prev, cur []float64) {
			xi := x[i-1]
			for j := j0; j <= j1; j++ {
				k := j - j0 + 1
				subCost := 1.0
				if math.Abs(xi-y[j-1]) <= e.Epsilon {
					subCost = 0
				}
				best := prev[k-1] + subCost
				if v := prev[k] + 1; v < best {
					best = v
				}
				if v := cur[k-1] + 1; v < best {
					best = v
				}
				cur[k] = best
			}
		})
}

// DistanceWavefront computes ERP with the blocked wavefront engine;
// bitwise-identical to Distance. The boundary row and column are the same
// running gap-cost prefix sums the scalar DP accumulates.
func (e ERP) DistanceWavefront(ctx context.Context, x, y []float64) (float64, error) {
	measure.CheckSameLength(x, y)
	m := len(x)
	if m == 0 {
		return 0, nil
	}
	prefix := func(src []float64) func(dst []float64) {
		return func(dst []float64) {
			s := 0.0
			for t := range dst {
				s += math.Abs(src[t] - e.G)
				dst[t] = s
			}
		}
	}
	return runWavefront(ctx, m, m, -1, 0, 0, prefix(y), prefix(x),
		func(i, j0, j1 int, prev, cur []float64) {
			xi := x[i-1]
			gx := math.Abs(xi - e.G)
			for j := j0; j <= j1; j++ {
				k := j - j0 + 1
				yj := y[j-1]
				match := prev[k-1] + math.Abs(xi-yj)
				gapX := prev[k] + gx
				gapY := cur[k-1] + math.Abs(yj-e.G)
				cur[k] = math.Min(match, math.Min(gapX, gapY))
			}
		})
}

// DistanceWavefront computes MSM with the blocked wavefront engine;
// bitwise-identical to Distance. MSM's scalar DP is n-by-n with a
// recurrence-defined first row and column; those are accumulated serially
// as the wavefront boundaries and the (n-1)-by-(n-1) interior is blocked.
func (m MSM) DistanceWavefront(ctx context.Context, x, y []float64) (float64, error) {
	measure.CheckSameLength(x, y)
	n := len(x)
	if n == 0 {
		return 0, nil
	}
	corner0 := math.Abs(x[0] - y[0])
	if n == 1 {
		return corner0, nil
	}
	topInit := func(dst []float64) {
		s := corner0
		for t := range dst {
			s += m.msmCost(y[t+1], x[0], y[t])
			dst[t] = s
		}
	}
	leftInit := func(dst []float64) {
		s := corner0
		for t := range dst {
			s += m.msmCost(x[t+1], x[t], y[0])
			dst[t] = s
		}
	}
	return runWavefront(ctx, n-1, n-1, -1, 0, corner0, topInit, leftInit,
		func(i, j0, j1 int, prev, cur []float64) {
			xi, xim := x[i], x[i-1]
			for j := j0; j <= j1; j++ {
				k := j - j0 + 1
				yj := y[j]
				move := prev[k-1] + math.Abs(xi-yj)
				split := prev[k] + m.msmCost(xi, xim, yj)
				merge := cur[k-1] + m.msmCost(yj, xi, y[j-1])
				cur[k] = math.Min(move, math.Min(split, merge))
			}
		})
}

// DistanceWavefront computes TWE with the blocked wavefront engine;
// bitwise-identical to Distance. The scalar DP's padded series (a leading
// zero sample) is reproduced by index arithmetic instead of copies.
func (t TWE) DistanceWavefront(ctx context.Context, x, y []float64) (float64, error) {
	measure.CheckSameLength(x, y)
	m := len(x)
	if m == 0 {
		return 0, nil
	}
	inf := math.Inf(1)
	fillInf := func(dst []float64) {
		for t := range dst {
			dst[t] = inf
		}
	}
	return runWavefront(ctx, m, m, -1, inf, 0, fillInf, fillInf,
		func(i, j0, j1 int, prev, cur []float64) {
			xi := x[i-1] // xp[i]
			xim := 0.0   // xp[i-1]: the pad sample when i == 1
			if i > 1 {
				xim = x[i-2]
			}
			axd := math.Abs(xi - xim)
			for j := j0; j <= j1; j++ {
				k := j - j0 + 1
				yj := y[j-1]
				yjm := 0.0
				if j > 1 {
					yjm = y[j-2]
				}
				delA := prev[k] + axd + t.Nu + t.Lambda
				delB := cur[k-1] + math.Abs(yj-yjm) + t.Nu + t.Lambda
				match := prev[k-1] + math.Abs(xi-yj) + math.Abs(xim-yjm) +
					2*t.Nu*math.Abs(float64(i-j))
				cur[k] = math.Min(match, math.Min(delA, delB))
			}
		})
}
