//go:build !race

package elastic

// raceEnabled mirrors the race detector state for tests.
const raceEnabled = false
