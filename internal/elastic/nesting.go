package elastic

import "repro/internal/measure"

// This file declares the band/threshold nesting of the elastic grids
// (measure.NestedBounds) and DTW's envelope-buffer sharing
// (measure.BoundSharing), both consumed by the grid tuning engine in
// internal/search.
//
// Nesting proofs (sketched; DESIGN.md has the full argument):
//
//   - DTW: windowSize is monotone nondecreasing in DeltaPercent for every
//     length, and widening the Sakoe-Chiba band only adds warping paths, so
//     the DP minimum can only decrease. The floating-point DP preserves
//     this exactly: by induction over cells, every wide-band cell value is
//     <= the narrow-band value (out-of-band cells count as +Inf), because
//     min and the final c*c + best addition are monotone in their operands.
//   - LCSS: a wider band or a larger Epsilon only adds admissible matches,
//     so the subsequence length L is nondecreasing and the distance
//     1 - L/m nonincreasing. Cell values are small integers, exact in
//     float64, and max/+1 are monotone.
//   - EDR: a larger Epsilon turns substitution costs from 1 to 0 pointwise,
//     and the min/+ DP is monotone in its cost function, so the edit count
//     is nonincreasing in Epsilon (integer-valued, exact in float64).
//
// All three claims require finite inputs: a NaN entering the DP can hide a
// cheaper path from the widened band (NaN comparisons are false), which is
// why the engine treats DominatedBy as advisory and repairs any row whose
// warm-start bound turns out unachievable.

// DominatedBy implements measure.NestedBounds: a DTW with a narrower (or
// equal) band upper-bounds this one.
func (d DTW) DominatedBy(other measure.Measure) bool {
	o, ok := other.(DTW)
	return ok && o.DeltaPercent <= d.DeltaPercent
}

// DominatedBy implements measure.NestedBounds: an LCSS with a narrower (or
// equal) band and a smaller (or equal) threshold upper-bounds this one.
func (l LCSS) DominatedBy(other measure.Measure) bool {
	o, ok := other.(LCSS)
	return ok && o.DeltaPercent <= l.DeltaPercent && o.Epsilon <= l.Epsilon
}

// DominatedBy implements measure.NestedBounds: an EDR with a smaller (or
// equal) threshold upper-bounds this one.
func (e EDR) DominatedBy(other measure.Measure) bool {
	o, ok := other.(EDR)
	return ok && o.Epsilon <= e.Epsilon
}

// SharesBounds implements measure.BoundSharing: every DTW band uses the
// same context shape (a Lemire envelope plus deque scratch), so contexts
// can be rebound across the band grid.
func (d DTW) SharesBounds(other measure.Measure) bool {
	_, ok := other.(DTW)
	return ok
}

// RebindBoundContext implements measure.BoundSharing: it retargets a
// context built by another DTW band to this band and refills the envelope,
// reusing the existing buffers (allocation-free when lengths match).
func (d DTW) RebindBoundContext(c measure.BoundContext, x []float64) measure.BoundContext {
	dc := c.(*dtwContext)
	dc.deltaPercent = d.DeltaPercent
	dc.grow(len(x))
	dc.Fill(x)
	return dc
}
