package eval

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/elastic"
	"repro/internal/kernel"
	"repro/internal/lockstep"
	"repro/internal/measure"
	"repro/internal/norm"
	"repro/internal/sliding"
)

func toyDataset() *dataset.Dataset {
	return dataset.Generate(dataset.Config{
		Name: "Toy", Family: dataset.FamilyHarmonic, Length: 48,
		NumClasses: 2, TrainSize: 12, TestSize: 12, Seed: 1, NoiseSigma: 0.2,
	})
}

func TestMatrixShapeAndValues(t *testing.T) {
	q := [][]float64{{0, 0}, {1, 1}}
	r := [][]float64{{0, 0}, {3, 4}}
	e := Matrix(lockstep.Euclidean(), q, r)
	if len(e) != 2 || len(e[0]) != 2 {
		t.Fatalf("matrix shape %dx%d", len(e), len(e[0]))
	}
	if e[0][0] != 0 || math.Abs(e[0][1]-5) > 1e-12 {
		t.Fatalf("matrix values wrong: %v", e)
	}
}

func TestMatrixParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	series := make([][]float64, 50)
	for i := range series {
		s := make([]float64, 32)
		for j := range s {
			s[j] = rng.NormFloat64()
		}
		series[i] = s
	}
	m := lockstep.Manhattan()
	e := Matrix(m, series, series)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			want := m.Distance(series[i], series[j])
			if math.Abs(e[i][j]-want) > 1e-12 {
				t.Fatalf("e[%d][%d] = %g, want %g", i, j, e[i][j], want)
			}
		}
	}
}

func TestMatrixStatefulFastPathMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	series := make([][]float64, 12)
	for i := range series {
		s := make([]float64, 40)
		for j := range s {
			s[j] = rng.NormFloat64()
		}
		series[i] = s
	}
	m := sliding.SBD() // implements measure.Stateful
	e := Matrix(m, series[:6], series[6:])
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := m.Distance(series[i], series[6+j])
			if math.Abs(e[i][j]-want) > 1e-9 {
				t.Fatalf("stateful e[%d][%d] = %g, want %g", i, j, e[i][j], want)
			}
		}
	}
}

// nanMeasure returns NaN for every comparison, testing sanitization.
type nanMeasure struct{}

func (nanMeasure) Name() string                    { return "nan" }
func (nanMeasure) Distance(_, _ []float64) float64 { return math.NaN() }

func TestMatrixSanitizesNaN(t *testing.T) {
	e := Matrix(nanMeasure{}, [][]float64{{1}}, [][]float64{{2}})
	if !math.IsInf(e[0][0], 1) {
		t.Fatalf("NaN not sanitized: %g", e[0][0])
	}
}

func TestOneNNPerfectAndWorst(t *testing.T) {
	// Test series 0 is nearest to train 0 (label 1): correct.
	// Test series 1 is nearest to train 1 (label 2) but has label 1: wrong.
	e := [][]float64{{0.1, 0.9}, {0.8, 0.2}}
	acc := OneNN(e, []int{1, 1}, []int{1, 2})
	if acc != 0.5 {
		t.Fatalf("acc = %g, want 0.5", acc)
	}
}

func TestOneNNTieBreaksToFirst(t *testing.T) {
	e := [][]float64{{0.5, 0.5}}
	if acc := OneNN(e, []int{1}, []int{1, 2}); acc != 1 {
		t.Fatalf("tie should keep first neighbor, acc = %g", acc)
	}
	if acc := OneNN(e, []int{2}, []int{1, 2}); acc != 0 {
		t.Fatalf("tie should keep first neighbor, acc = %g", acc)
	}
}

func TestOneNNAllInfRanksLast(t *testing.T) {
	inf := math.Inf(1)
	e := [][]float64{{inf, inf}}
	// With all-infinite distances the first neighbor is kept.
	if acc := OneNN(e, []int{1}, []int{1, 2}); acc != 1 {
		t.Fatalf("acc = %g", acc)
	}
}

func TestOneNNPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OneNN([][]float64{{1}}, []int{1, 2}, []int{1})
}

func TestLeaveOneOutSkipsDiagonal(t *testing.T) {
	// Without skipping the diagonal every point would match itself.
	w := [][]float64{
		{0, 0.1, 0.9},
		{0.1, 0, 0.9},
		{0.9, 0.9, 0},
	}
	labels := []int{1, 1, 2}
	// Point 0 -> nearest (excl self) is 1 (label 1): correct.
	// Point 1 -> nearest is 0: correct. Point 2 -> nearest is 0 (label 1): wrong.
	if acc := LeaveOneOut(w, labels); math.Abs(acc-2.0/3.0) > 1e-12 {
		t.Fatalf("LOO acc = %g, want 2/3", acc)
	}
}

func TestTuneSupervisedPicksBestCandidate(t *testing.T) {
	d := toyDataset()
	// Grid with an absurd candidate (distance always 0 -> ties, first
	// neighbor) and ED; ED should win on a structured dataset.
	zero := measure.New("zero", func(_, _ []float64) float64 { return 0 })
	g := Grid{Name: "test", Candidates: []measure.Measure{zero, lockstep.Euclidean()}}
	chosen, acc := TuneSupervised(g, d.Train, d.TrainLabels)
	if chosen.Name() != "euclidean" {
		t.Fatalf("chose %s (acc %g), want euclidean", chosen.Name(), acc)
	}
	if acc <= 0.5 {
		t.Fatalf("LOO accuracy %g suspiciously low", acc)
	}
}

func TestTuneSupervisedTieKeepsGridOrder(t *testing.T) {
	a := measure.New("a", func(x, y []float64) float64 { return lockstep.Euclidean().Distance(x, y) })
	b := measure.New("b", func(x, y []float64) float64 { return lockstep.Euclidean().Distance(x, y) })
	d := toyDataset()
	chosen, _ := TuneSupervised(Grid{Name: "tie", Candidates: []measure.Measure{a, b}}, d.Train, d.TrainLabels)
	if chosen.Name() != "a" {
		t.Fatalf("tie broke to %s, want first candidate", chosen.Name())
	}
}

func TestTuneSupervisedEmptyGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TuneSupervised(Grid{Name: "empty"}, [][]float64{{1}}, []int{1})
}

func TestNormalizeAppliesToBothSplits(t *testing.T) {
	d := toyDataset()
	nd := Normalize(d, norm.MinMax())
	for _, split := range [][][]float64{nd.Train, nd.Test} {
		for _, s := range split {
			for _, v := range s {
				if v < -1e-12 || v > 1+1e-12 {
					t.Fatalf("value %g outside [0,1] after MinMax", v)
				}
			}
		}
	}
	// Original untouched.
	if d.Train[0][0] == nd.Train[0][0] && d.Train[0][1] == nd.Train[0][1] {
		// It is possible but vanishingly unlikely that values coincide; check
		// at least one differs across the series.
		same := true
		for i := range d.Train[0] {
			if d.Train[0][i] != nd.Train[0][i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("Normalize appears to alias the original data")
		}
	}
	if Normalize(d, nil) != d {
		t.Fatal("nil normalizer must return the dataset unchanged")
	}
}

func TestTestAccuracyBeatsChanceOnStructuredData(t *testing.T) {
	d := toyDataset()
	acc := TestAccuracy(lockstep.Euclidean(), d, norm.ZScore())
	if acc <= 0.5 {
		t.Fatalf("ED accuracy %g on a 2-class harmonic dataset, want > 0.5", acc)
	}
}

func TestSupervisedAccuracyRuns(t *testing.T) {
	d := toyDataset()
	g := Thin(DTWGrid(), 8)
	acc, chosen := SupervisedAccuracy(g, d, nil)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %g out of range", acc)
	}
	if chosen == nil {
		t.Fatal("no measure chosen")
	}
}

func TestGridSizesMatchTable4(t *testing.T) {
	cases := []struct {
		grid Grid
		want int
	}{
		{MSMGrid(), 10},
		{DTWGrid(), 22},
		{EDRGrid(), 20},
		{LCSSGrid(), 40},
		{TWEGrid(), 30},
		{SwaleGrid(), 15},
		{ERPGrid(), 1},
		{MinkowskiGrid(), 20},
		{KDTWGrid(), 16},
		{GAKGrid(), 26},
		{SINKGrid(), 20},
		{RBFGrid(), 17},
	}
	for _, c := range cases {
		if len(c.grid.Candidates) != c.want {
			t.Errorf("grid %s has %d candidates, want %d", c.grid.Name, len(c.grid.Candidates), c.want)
		}
	}
}

func TestGridCandidateNamesUnique(t *testing.T) {
	for _, g := range append(ElasticGrids(), KernelGrids()...) {
		seen := map[string]bool{}
		for _, c := range g.Candidates {
			if seen[c.Name()] {
				t.Errorf("grid %s: duplicate candidate %s", g.Name, c.Name())
			}
			seen[c.Name()] = true
		}
	}
}

func TestThin(t *testing.T) {
	g := DTWGrid()
	th := Thin(g, 5)
	if len(th.Candidates) != (len(g.Candidates)+4)/5 {
		t.Fatalf("thinned size %d", len(th.Candidates))
	}
	if th.Candidates[0].Name() != g.Candidates[0].Name() {
		t.Fatal("thinning must keep the first candidate")
	}
	if same := Thin(g, 1); len(same.Candidates) != len(g.Candidates) {
		t.Fatal("stride 1 must be identity")
	}
}

func TestDTWGridContainsUnconstrained(t *testing.T) {
	g := DTWGrid()
	last := g.Candidates[len(g.Candidates)-1]
	if last.Name() != (elastic.DTW{DeltaPercent: 100}).Name() {
		t.Fatalf("last DTW candidate = %s, want the unconstrained window", last.Name())
	}
}

func TestMatrixSymmetricTriangleMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	series := make([][]float64, 30)
	for i := range series {
		s := make([]float64, 40)
		for j := range s {
			s[j] = rng.NormFloat64()
		}
		series[i] = s
	}
	sym := elastic.DTW{DeltaPercent: 10}
	// The Func wrapper hides the Symmetric marker, forcing the full scan.
	full := Matrix(measure.New("dtw-opaque", sym.Distance), series, series)
	tri := Matrix(sym, series, series)
	for i := range series {
		for j := range series {
			if tri[i][j] != full[i][j] {
				t.Fatalf("triangle[%d][%d] = %g, full = %g", i, j, tri[i][j], full[i][j])
			}
		}
	}
}

func TestNeighborsAndTies(t *testing.T) {
	inf := math.Inf(1)
	e := [][]float64{
		{0.5, 0.5, 0.4}, // unique minimum at 2
		{0.3, 0.3, 0.9}, // tie: lowest index wins
		{inf, inf, inf}, // all infinite: first kept
		{},              // empty row: no neighbor
	}
	want := []int{2, 0, 0, -1}
	got := Neighbors(e)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestLeaveOneOutNeighborsSkipsDiagonal(t *testing.T) {
	w := [][]float64{
		{0, 0.1, 0.9},
		{0.1, 0, 0.9},
		{0.9, 0.9, 0},
	}
	want := []int{1, 0, 0}
	got := LeaveOneOutNeighbors(w)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LOONeighbors[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAccuracyFromNeighborsCountsMissingAsWrong(t *testing.T) {
	if acc := AccuracyFromNeighbors([]int{0, -1}, []int{1, 1}, []int{1}); acc != 0.5 {
		t.Fatalf("acc = %g, want 0.5", acc)
	}
	if acc := AccuracyFromNeighbors(nil, nil, nil); acc != 0 {
		t.Fatalf("empty acc = %g, want 0", acc)
	}
}

func TestSameSeries(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}}
	if !sameSeries(a, a) {
		t.Fatal("identical slices must be detected")
	}
	b := [][]float64{{1, 2}, {3, 4}}
	if sameSeries(a, b) {
		t.Fatal("distinct backing arrays must not be detected as same")
	}
	if sameSeries(a, a[:1]) {
		t.Fatal("different lengths are not the same")
	}
}

func TestMatrixSelfMatrixerBulkPathMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	series := make([][]float64, 23)
	for i := range series {
		s := make([]float64, 31)
		for j := range s {
			s[j] = rng.NormFloat64()
		}
		series[i] = s
	}
	// Degenerate rows exercise the sanitize pass after the bulk fill.
	series[0] = make([]float64, 31)
	series[1][5] = math.NaN()
	series[2][0] = math.Inf(1)
	s := kernel.SINK{Gamma: 5}
	// The Func wrapper hides SelfMatrixer, forcing the generic per-pair
	// path; the direct call takes the GramEngine bulk path. The two must
	// agree bitwise (after shared NaN sanitization).
	generic := Matrix(measure.New("sink-opaque", s.Distance), series, series)
	bulk := Matrix(s, series, series)
	for i := range series {
		for j := range series {
			if bulk[i][j] != generic[i][j] {
				t.Fatalf("bulk[%d][%d] = %g, generic = %g", i, j, bulk[i][j], generic[i][j])
			}
		}
	}
	// A rectangular (test-by-train) call must not take the bulk path and
	// still match the generic result.
	queries := series[:7]
	rect := Matrix(s, queries, series)
	for i := range queries {
		for j := range series {
			if rect[i][j] != generic[i][j] {
				t.Fatalf("rect[%d][%d] = %g, generic = %g", i, j, rect[i][j], generic[i][j])
			}
		}
	}
}
