package eval

import (
	"context"

	"repro/internal/corpus"
	"repro/internal/measure"
	"repro/internal/search"
)

// This file wires the evaluation framework to the build-once
// prepared-state layer of internal/corpus. Each entry point mirrors its
// inline counterpart exactly — same dispatch, same arithmetic, bitwise
// identical output — and differs only in where per-series state (Stateful
// preparations, family cores, bound contexts) comes from. A nil snapshot,
// or one built over different series, silently degrades to the inline
// path, so callers can thread an optional snapshot without branching.

// MatrixSnapshot is MatrixSnapshotCtx over a background context.
func MatrixSnapshot(m measure.Measure, queries, refs [][]float64, snap *corpus.Snapshot) [][]float64 {
	e, _ := MatrixSnapshotCtx(context.Background(), m, queries, refs, snap)
	return e
}

// MatrixSnapshotCtx is MatrixCtx serving Stateful preparations from the
// snapshot for whichever side (queries, refs, or both) it covers.
func MatrixSnapshotCtx(ctx context.Context, m measure.Measure, queries, refs [][]float64, snap *corpus.Snapshot) ([][]float64, error) {
	return matrixCtx(ctx, m, queries, refs, snap)
}

// TuneSupervisedSnapshotCtx is TuneSupervisedCtx feeding the tuning engine
// per-series state from the snapshot.
func TuneSupervisedSnapshotCtx(ctx context.Context, g Grid, train [][]float64, labels []int, snap *corpus.Snapshot) (measure.Measure, float64, error) {
	m, acc, _, err := tuneSupervisedCtx(ctx, g, train, labels, snap)
	return m, acc, err
}

// TuneSupervisedDetailedSnapshotCtx is TuneSupervisedDetailedCtx feeding
// the tuning engine per-series state from the snapshot; the GridStats
// PrepSnapshot counter reports how many states the snapshot served.
func TuneSupervisedDetailedSnapshotCtx(ctx context.Context, g Grid, train [][]float64, labels []int, snap *corpus.Snapshot) (measure.Measure, float64, search.GridStats, error) {
	return tuneSupervisedCtx(ctx, g, train, labels, snap)
}
