// Package eval implements the paper's evaluation framework (Section 3):
// dissimilarity-matrix computation (parallelized across rows, with the
// measure.Stateful fast path), the 1-NN classifier of Algorithm 1 for test
// accuracy, the leave-one-out variant used for supervised parameter tuning,
// the parameter grids of Table 4, and the per-dataset evaluation pipeline
// combining a normalization method with a distance measure.
//
// The accuracy entry points (TestAccuracy, SupervisedAccuracy) run on the
// pruned matrix-free engine of internal/search; Matrix remains the
// exhaustive reference used by the runtime experiments and the exactness
// property tests. Both paths produce identical neighbors, including ties.
package eval

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/measure"
	"repro/internal/norm"
	"repro/internal/par"
	"repro/internal/search"
)

// Matrix computes the dissimilarity matrix E with E[i][j] =
// d(queries[i], refs[j]). Rows are computed in parallel across all CPUs.
// NaN distances are sanitized to +Inf so undefined measures rank last.
// When the measure implements measure.Stateful, each series is prepared
// exactly once; when it is exactly symmetric and the matrix is square over
// the same series, only the upper triangle is computed and mirrored.
func Matrix(m measure.Measure, queries, refs [][]float64) [][]float64 {
	e, _ := MatrixCtx(context.Background(), m, queries, refs)
	return e
}

// MatrixCtx is Matrix honoring cancellation at the row-chunk (or engine
// tile) granularity of internal/par: on a non-nil error the returned
// matrix is partially filled and must be discarded. An uncancelled call is
// bitwise-identical to Matrix.
func MatrixCtx(ctx context.Context, m measure.Measure, queries, refs [][]float64) ([][]float64, error) {
	return matrixCtx(ctx, m, queries, refs, nil)
}

// matrixCtx is the shared matrix core: snap, when non-nil, serves prepared
// states for whichever side it covers; everything else is computed inline.
func matrixCtx(ctx context.Context, m measure.Measure, queries, refs [][]float64, snap *corpus.Snapshot) ([][]float64, error) {
	n, p := len(queries), len(refs)
	e := make([][]float64, n)
	if n == 0 {
		return e, nil
	}
	// One flat backing array sliced into rows: a single allocation instead
	// of one per row, and cache-contiguous row traversal downstream.
	flat := make([]float64, n*p)
	for i := range e {
		e[i] = flat[i*p : (i+1)*p : (i+1)*p]
	}
	workers := par.Workers(n)

	// Bulk fast path: a measure backed by an all-pairs engine fills the
	// square self-matrix wholesale (bitwise-identical to the per-pair loop
	// by the SelfMatrixer contract); only the NaN sanitization pass remains
	// on this side. Checked before the Stateful dispatch so per-series
	// preparation is not duplicated.
	if bm, ok := m.(measure.SelfMatrixer); ok && sameSeries(queries, refs) {
		accepted := false
		if cm, ok := m.(measure.ContextSelfMatrixer); ok {
			var err error
			if accepted, err = cm.SelfMatrixCtx(ctx, queries, e); err != nil {
				return e, err
			}
		} else {
			accepted = bm.SelfMatrix(queries, e)
		}
		if accepted {
			if err := par.ForCtx(ctx, n, workers, func(i int) {
				row := e[i]
				for j, v := range row {
					row[j] = measure.Sanitize(v)
				}
			}); err != nil {
				return e, err
			}
			return e, nil
		}
	}

	// Batched panel fast path: a PanelEvaluator fills each matrix row in one
	// call over the whole reference panel, bitwise-identical to the per-pair
	// loop by the contract; only the NaN sanitization stays on this side. If
	// any row declines (ragged lengths), the whole matrix falls through to
	// the generic paths below and every row is recomputed per-pair.
	if pe, ok := m.(measure.PanelEvaluator); ok {
		var declined atomic.Bool
		if err := par.ForCtx(ctx, n, workers, func(i int) {
			if declined.Load() {
				return
			}
			row := e[i]
			if !pe.PanelDistances(queries[i], refs, row) {
				declined.Store(true)
				return
			}
			for j, v := range row {
				row[j] = measure.Sanitize(v)
			}
		}); err != nil {
			return e, err
		}
		if !declined.Load() {
			return e, nil
		}
	}

	// Resolve the per-cell kernel once, outside the row loops: the Stateful
	// fast path binds prepared states, and the plain path binds the Distance
	// method value so neither the type switch nor the interface lookup runs
	// per cell.
	var dist func(i, j int) float64
	if sm, ok := m.(measure.Stateful); ok {
		pq, err := preparedFor(ctx, sm, queries, snap, workers)
		if err != nil {
			return e, err
		}
		pr := pq
		if !sameSeries(queries, refs) {
			if pr, err = preparedFor(ctx, sm, refs, snap, workers); err != nil {
				return e, err
			}
		}
		pdist := sm.PreparedDistance
		dist = func(i, j int) float64 {
			return measure.Sanitize(pdist(pq[i], pr[j]))
		}
	} else {
		mdist := m.Distance
		dist = func(i, j int) float64 {
			return measure.Sanitize(mdist(queries[i], refs[j]))
		}
	}

	if measure.IsSymmetric(m) && sameSeries(queries, refs) {
		if err := par.ForCtx(ctx, n, workers, func(i int) {
			row := e[i]
			for j := i; j < p; j++ {
				row[j] = dist(i, j)
			}
		}); err != nil {
			return e, err
		}
		// Mirror the strict upper triangle; rows own their lower halves so
		// the writes race with nothing.
		if err := par.ForCtx(ctx, n, workers, func(i int) {
			row := e[i]
			for j := 0; j < i; j++ {
				row[j] = e[j][i]
			}
		}); err != nil {
			return e, err
		}
		return e, nil
	}

	err := par.ForCtx(ctx, n, workers, func(i int) {
		row := e[i]
		for j := range refs {
			row[j] = dist(i, j)
		}
	})
	return e, err
}

// sameSeries reports whether the two slices share identical backing rows,
// which holds when computing the square train-by-train matrix W.
func sameSeries(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) == 0 || len(b[i]) == 0 {
			if len(a[i]) != len(b[i]) {
				return false
			}
			continue
		}
		if &a[i][0] != &b[i][0] {
			return false
		}
	}
	return true
}

func prepareAll(ctx context.Context, sm measure.Stateful, series [][]float64, workers int) ([]any, error) {
	out := make([]any, len(series))
	err := par.ForCtx(ctx, len(series), workers, func(i int) {
		out[i] = sm.Prepare(series[i])
	})
	return out, err
}

// preparedFor serves one side's prepared states from the snapshot when it
// covers those series and holds (or can specialize) state for sm, falling
// back to inline preparation — the states are interchangeable bitwise by
// the Stateful/GridStateful contracts.
func preparedFor(ctx context.Context, sm measure.Stateful, series [][]float64, snap *corpus.Snapshot, workers int) ([]any, error) {
	if snap.Covers(series) {
		p, err := snap.PreparedStates(ctx, sm)
		if err != nil {
			return nil, err
		}
		if p != nil {
			return p, nil
		}
	}
	return prepareAll(ctx, sm, series, workers)
}

// Neighbors returns the argmin of every row of E: the nearest reference
// index of each query, -1 for an empty row. Ties keep the lowest index.
func Neighbors(e [][]float64) []int {
	out := make([]int, len(e))
	for i, row := range e {
		best := -1
		for j, d := range row {
			if best == -1 || d < row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// LeaveOneOutNeighbors is Neighbors for a square train-by-train matrix W
// with the diagonal (self matches) excluded.
func LeaveOneOutNeighbors(w [][]float64) []int {
	out := make([]int, len(w))
	for i, row := range w {
		best := -1
		for j, d := range row {
			if j == i {
				continue
			}
			if best == -1 || d < row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// AccuracyFromNeighbors scores nearest-neighbor predictions: the fraction
// of queries whose neighbor (an index into refLabels, -1 counting as a
// miss) carries the query's label.
func AccuracyFromNeighbors(neighbors []int, queryLabels, refLabels []int) float64 {
	if len(neighbors) != len(queryLabels) {
		panic(fmt.Sprintf("eval: %d neighbors, %d query labels", len(neighbors), len(queryLabels)))
	}
	if len(neighbors) == 0 {
		return 0
	}
	correct := 0
	for i, nb := range neighbors {
		if nb >= 0 && refLabels[nb] == queryLabels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(neighbors))
}

// OneNN implements Algorithm 1 of the paper: given the r-by-p matrix E of
// dissimilarities between test and training series, the test labels, and
// the training labels, it returns the fraction of test series whose
// nearest training series shares their label. Ties keep the first (lowest
// index) neighbor, making the result deterministic.
func OneNN(e [][]float64, testLabels, trainLabels []int) float64 {
	if len(e) != len(testLabels) {
		panic(fmt.Sprintf("eval: %d matrix rows, %d test labels", len(e), len(testLabels)))
	}
	for i, row := range e {
		if len(row) != len(trainLabels) {
			panic(fmt.Sprintf("eval: row %d has %d cols, %d train labels", i, len(row), len(trainLabels)))
		}
	}
	return AccuracyFromNeighbors(Neighbors(e), testLabels, trainLabels)
}

// LeaveOneOut computes the leave-one-out training accuracy from the square
// train-by-train matrix W, skipping the diagonal (self matches), which is
// the variant of Algorithm 1 the paper uses for parameter tuning.
func LeaveOneOut(w [][]float64, labels []int) float64 {
	if len(w) != len(labels) {
		panic(fmt.Sprintf("eval: %d matrix rows, %d labels", len(w), len(labels)))
	}
	return AccuracyFromNeighbors(LeaveOneOutNeighbors(w), labels, labels)
}

// Grid is a family of parameterized measure candidates sharing a name;
// supervised tuning picks the candidate with the best leave-one-out
// training accuracy (grid order breaks ties, keeping runs deterministic).
type Grid struct {
	Name       string
	Candidates []measure.Measure
}

// TuneSupervised returns the grid candidate maximizing leave-one-out
// accuracy on the training split, together with that accuracy. The whole
// grid is scored in one pass of the tuning engine (search.LeaveOneOutGrid),
// which shares per-series preparation across candidates and warm-starts
// nested candidates from each other's results; the selection — including
// the grid-order tie-break — is identical to running each candidate
// independently. It panics on an empty grid.
func TuneSupervised(g Grid, train [][]float64, labels []int) (measure.Measure, float64) {
	m, acc, _ := TuneSupervisedDetailed(g, train, labels)
	return m, acc
}

// TuneSupervisedCtx is TuneSupervised honoring cancellation; on a non-nil
// error the returned measure and accuracy are meaningless.
func TuneSupervisedCtx(ctx context.Context, g Grid, train [][]float64, labels []int) (measure.Measure, float64, error) {
	m, acc, _, err := TuneSupervisedDetailedCtx(ctx, g, train, labels)
	return m, acc, err
}

// TuneSupervisedDetailed is TuneSupervised exposing the engine's sweep
// statistics (preparation sharing, warm-start pruning, wave structure) for
// the tuning ablation experiment.
func TuneSupervisedDetailed(g Grid, train [][]float64, labels []int) (measure.Measure, float64, search.GridStats) {
	m, acc, st, _ := TuneSupervisedDetailedCtx(context.Background(), g, train, labels)
	return m, acc, st
}

// TuneSupervisedDetailedCtx is TuneSupervisedDetailed honoring
// cancellation; on a non-nil error the selection is meaningless (the sweep
// stopped mid-grid) and only the error should be consulted.
func TuneSupervisedDetailedCtx(ctx context.Context, g Grid, train [][]float64, labels []int) (measure.Measure, float64, search.GridStats, error) {
	return tuneSupervisedCtx(ctx, g, train, labels, nil)
}

// tuneSupervisedCtx is the shared tuning core: snap, when non-nil and
// covering train, feeds the grid engine's per-series state.
func tuneSupervisedCtx(ctx context.Context, g Grid, train [][]float64, labels []int, snap *corpus.Snapshot) (measure.Measure, float64, search.GridStats, error) {
	if len(g.Candidates) == 0 {
		panic(fmt.Sprintf("eval: empty grid %q", g.Name))
	}
	if len(train) != len(labels) {
		panic(fmt.Sprintf("eval: %d training series, %d labels", len(train), len(labels)))
	}
	gr, err := search.LeaveOneOutGridSnapshotCtx(ctx, g.Candidates, train, snap)
	if err != nil {
		return g.Candidates[0], 0, gr.Stats, err
	}
	bestIdx, bestAcc := 0, -1.0
	for i := range g.Candidates {
		acc := AccuracyFromNeighbors(gr.PerCandidate[i].Indices, labels, labels)
		if acc > bestAcc {
			bestAcc = acc
			bestIdx = i
		}
	}
	return g.Candidates[bestIdx], bestAcc, gr.Stats, nil
}

// Normalize applies the normalizer to every series of both splits,
// returning a new dataset; a nil normalizer returns the input unchanged.
func Normalize(d *dataset.Dataset, n norm.Normalizer) *dataset.Dataset {
	if n == nil {
		return d
	}
	out := &dataset.Dataset{
		Name:        d.Name,
		Train:       make([][]float64, len(d.Train)),
		TrainLabels: d.TrainLabels,
		Test:        make([][]float64, len(d.Test)),
		TestLabels:  d.TestLabels,
	}
	for i, s := range d.Train {
		out.Train[i] = n.Normalize(s)
	}
	for i, s := range d.Test {
		out.Test[i] = n.Normalize(s)
	}
	return out
}

// TestAccuracy evaluates a fixed measure on a dataset: the 1-NN test
// accuracy, after applying the normalizer (which may be nil for
// pre-normalized data). Neighbors come from the pruned search engine; no
// test-by-train matrix is materialized.
func TestAccuracy(m measure.Measure, d *dataset.Dataset, n norm.Normalizer) float64 {
	acc, _ := TestAccuracyCtx(context.Background(), m, d, n)
	return acc
}

// TestAccuracyCtx is TestAccuracy honoring cancellation; on a non-nil
// error the accuracy is meaningless.
func TestAccuracyCtx(ctx context.Context, m measure.Measure, d *dataset.Dataset, n norm.Normalizer) (float64, error) {
	nd := Normalize(d, n)
	res, err := search.OneNNCtx(ctx, m, nd.Test, nd.Train)
	if err != nil {
		return 0, err
	}
	return AccuracyFromNeighbors(res.Indices, nd.TestLabels, nd.TrainLabels), nil
}

// SupervisedAccuracy tunes the grid on the training split (leave-one-out)
// and reports the 1-NN test accuracy of the selected candidate, returning
// the accuracy and the chosen measure.
func SupervisedAccuracy(g Grid, d *dataset.Dataset, n norm.Normalizer) (float64, measure.Measure) {
	acc, chosen, _ := SupervisedAccuracyCtx(context.Background(), g, d, n)
	return acc, chosen
}

// SupervisedAccuracyCtx is SupervisedAccuracy honoring cancellation; on a
// non-nil error the accuracy and measure are meaningless.
func SupervisedAccuracyCtx(ctx context.Context, g Grid, d *dataset.Dataset, n norm.Normalizer) (float64, measure.Measure, error) {
	nd := Normalize(d, n)
	chosen, _, err := TuneSupervisedCtx(ctx, g, nd.Train, nd.TrainLabels)
	if err != nil {
		return 0, nil, err
	}
	acc, err := TestAccuracyCtx(ctx, chosen, nd, nil)
	return acc, chosen, err
}
