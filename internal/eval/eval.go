// Package eval implements the paper's evaluation framework (Section 3):
// dissimilarity-matrix computation (parallelized across rows, with the
// measure.Stateful fast path), the 1-NN classifier of Algorithm 1 for test
// accuracy, the leave-one-out variant used for supervised parameter tuning,
// the parameter grids of Table 4, and the per-dataset evaluation pipeline
// combining a normalization method with a distance measure.
package eval

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dataset"
	"repro/internal/measure"
	"repro/internal/norm"
)

// Matrix computes the dissimilarity matrix E with E[i][j] =
// d(queries[i], refs[j]). Rows are computed in parallel across all CPUs.
// NaN distances are sanitized to +Inf so undefined measures rank last.
// When the measure implements measure.Stateful, each series is prepared
// exactly once.
func Matrix(m measure.Measure, queries, refs [][]float64) [][]float64 {
	e := make([][]float64, len(queries))
	if len(queries) == 0 {
		return e
	}
	workers := runtime.NumCPU()
	if workers > len(queries) {
		workers = len(queries)
	}

	if sm, ok := m.(measure.Stateful); ok {
		pq := prepareAll(sm, queries, workers)
		var pr []any
		if sameSeries(queries, refs) {
			pr = pq
		} else {
			pr = prepareAll(sm, refs, workers)
		}
		parallelRows(len(queries), workers, func(i int) {
			row := make([]float64, len(refs))
			for j := range refs {
				row[j] = measure.Sanitize(sm.PreparedDistance(pq[i], pr[j]))
			}
			e[i] = row
		})
		return e
	}

	parallelRows(len(queries), workers, func(i int) {
		row := make([]float64, len(refs))
		for j := range refs {
			row[j] = measure.Sanitize(m.Distance(queries[i], refs[j]))
		}
		e[i] = row
	})
	return e
}

// sameSeries reports whether the two slices share identical backing rows,
// which holds when computing the square train-by-train matrix W.
func sameSeries(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) == 0 || len(b[i]) == 0 {
			if len(a[i]) != len(b[i]) {
				return false
			}
			continue
		}
		if &a[i][0] != &b[i][0] {
			return false
		}
	}
	return true
}

func prepareAll(sm measure.Stateful, series [][]float64, workers int) []any {
	out := make([]any, len(series))
	parallelRows(len(series), workers, func(i int) {
		out[i] = sm.Prepare(series[i])
	})
	return out
}

// parallelRows runs fn(i) for i in [0, n) across the given worker count.
func parallelRows(n, workers int, fn func(i int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// OneNN implements Algorithm 1 of the paper: given the r-by-p matrix E of
// dissimilarities between test and training series, the test labels, and
// the training labels, it returns the fraction of test series whose
// nearest training series shares their label. Ties keep the first (lowest
// index) neighbor, making the result deterministic.
func OneNN(e [][]float64, testLabels, trainLabels []int) float64 {
	if len(e) != len(testLabels) {
		panic(fmt.Sprintf("eval: %d matrix rows, %d test labels", len(e), len(testLabels)))
	}
	if len(e) == 0 {
		return 0
	}
	correct := 0
	for i, row := range e {
		if len(row) != len(trainLabels) {
			panic(fmt.Sprintf("eval: row %d has %d cols, %d train labels", i, len(row), len(trainLabels)))
		}
		best := -1
		for j, d := range row {
			if best == -1 || d < row[best] {
				best = j
			}
		}
		if best >= 0 && trainLabels[best] == testLabels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(e))
}

// LeaveOneOut computes the leave-one-out training accuracy from the square
// train-by-train matrix W, skipping the diagonal (self matches), which is
// the variant of Algorithm 1 the paper uses for parameter tuning.
func LeaveOneOut(w [][]float64, labels []int) float64 {
	n := len(w)
	if n != len(labels) {
		panic(fmt.Sprintf("eval: %d matrix rows, %d labels", n, len(labels)))
	}
	if n == 0 {
		return 0
	}
	correct := 0
	for i, row := range w {
		best := -1
		for j, d := range row {
			if j == i {
				continue
			}
			if best == -1 || d < row[best] {
				best = j
			}
		}
		if best >= 0 && labels[best] == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// Grid is a family of parameterized measure candidates sharing a name;
// supervised tuning picks the candidate with the best leave-one-out
// training accuracy (grid order breaks ties, keeping runs deterministic).
type Grid struct {
	Name       string
	Candidates []measure.Measure
}

// TuneSupervised returns the grid candidate maximizing leave-one-out
// accuracy on the training split, together with that accuracy. It panics
// on an empty grid.
func TuneSupervised(g Grid, train [][]float64, labels []int) (measure.Measure, float64) {
	if len(g.Candidates) == 0 {
		panic(fmt.Sprintf("eval: empty grid %q", g.Name))
	}
	bestIdx, bestAcc := 0, -1.0
	for i, cand := range g.Candidates {
		w := Matrix(cand, train, train)
		acc := LeaveOneOut(w, labels)
		if acc > bestAcc {
			bestAcc = acc
			bestIdx = i
		}
	}
	return g.Candidates[bestIdx], bestAcc
}

// Normalize applies the normalizer to every series of both splits,
// returning a new dataset; a nil normalizer returns the input unchanged.
func Normalize(d *dataset.Dataset, n norm.Normalizer) *dataset.Dataset {
	if n == nil {
		return d
	}
	out := &dataset.Dataset{
		Name:        d.Name,
		Train:       make([][]float64, len(d.Train)),
		TrainLabels: d.TrainLabels,
		Test:        make([][]float64, len(d.Test)),
		TestLabels:  d.TestLabels,
	}
	for i, s := range d.Train {
		out.Train[i] = n.Normalize(s)
	}
	for i, s := range d.Test {
		out.Test[i] = n.Normalize(s)
	}
	return out
}

// TestAccuracy evaluates a fixed measure on a dataset: the 1-NN test
// accuracy over the E (test-by-train) matrix, after applying the
// normalizer (which may be nil for pre-normalized data).
func TestAccuracy(m measure.Measure, d *dataset.Dataset, n norm.Normalizer) float64 {
	nd := Normalize(d, n)
	e := Matrix(m, nd.Test, nd.Train)
	return OneNN(e, nd.TestLabels, nd.TrainLabels)
}

// SupervisedAccuracy tunes the grid on the training split (leave-one-out)
// and reports the 1-NN test accuracy of the selected candidate, returning
// the accuracy and the chosen measure.
func SupervisedAccuracy(g Grid, d *dataset.Dataset, n norm.Normalizer) (float64, measure.Measure) {
	nd := Normalize(d, n)
	chosen, _ := TuneSupervised(g, nd.Train, nd.TrainLabels)
	e := Matrix(chosen, nd.Test, nd.Train)
	return OneNN(e, nd.TestLabels, nd.TrainLabels), chosen
}
