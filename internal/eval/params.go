package eval

import (
	"math"

	"repro/internal/elastic"
	"repro/internal/kernel"
	"repro/internal/lockstep"
	"repro/internal/measure"
)

// This file encodes Table 4 of the paper: the parameter grid evaluated for
// every measure that requires tuning. Reduced variants (every k-th grid
// point) back the -short test and bench configurations; the selection is
// deterministic.

// epsilonGrid is the threshold grid shared by EDR and LCSS.
var epsilonGrid = []float64{
	0.001, 0.003, 0.005, 0.007, 0.009, 0.01, 0.03, 0.05,
	0.07, 0.09, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1,
}

// swaleEpsilonGrid is Swale's threshold grid.
var swaleEpsilonGrid = []float64{
	0.01, 0.03, 0.05, 0.07, 0.09, 0.1, 0.2, 0.3, 0.4, 0.5,
	0.6, 0.7, 0.8, 0.9, 1,
}

// powersOfTwo returns {2^lo, ..., 2^hi}.
func powersOfTwo(lo, hi int) []float64 {
	out := make([]float64, 0, hi-lo+1)
	for e := lo; e <= hi; e++ {
		out = append(out, math.Pow(2, float64(e)))
	}
	return out
}

// oneToTwenty is the integer gamma grid of SINK and GRAIL.
func oneToTwenty() []float64 {
	out := make([]float64, 20)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}

// MSMGrid returns the MSM cost grid of Table 4.
func MSMGrid() Grid {
	cs := []float64{0.01, 0.1, 1, 10, 100, 0.05, 0.5, 5, 50, 500}
	g := Grid{Name: "msm"}
	for _, c := range cs {
		g.Candidates = append(g.Candidates, elastic.MSM{C: c})
	}
	return g
}

// DTWGrid returns the DTW Sakoe-Chiba window grid of Table 4.
func DTWGrid() Grid {
	g := Grid{Name: "dtw"}
	for d := 0; d <= 20; d++ {
		g.Candidates = append(g.Candidates, elastic.DTW{DeltaPercent: d})
	}
	g.Candidates = append(g.Candidates, elastic.DTW{DeltaPercent: 100})
	return g
}

// EDRGrid returns the EDR threshold grid of Table 4.
func EDRGrid() Grid {
	g := Grid{Name: "edr"}
	for _, e := range epsilonGrid {
		g.Candidates = append(g.Candidates, elastic.EDR{Epsilon: e})
	}
	return g
}

// LCSSGrid returns the LCSS band-by-threshold grid of Table 4.
func LCSSGrid() Grid {
	g := Grid{Name: "lcss"}
	for _, d := range []int{5, 10} {
		for _, e := range epsilonGrid {
			g.Candidates = append(g.Candidates, elastic.LCSS{DeltaPercent: d, Epsilon: e})
		}
	}
	return g
}

// TWEGrid returns the TWE lambda-by-nu grid of Table 4.
func TWEGrid() Grid {
	g := Grid{Name: "twe"}
	for _, l := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		for _, n := range []float64{0.00001, 0.0001, 0.001, 0.01, 0.1, 1} {
			g.Candidates = append(g.Candidates, elastic.TWE{Lambda: l, Nu: n})
		}
	}
	return g
}

// SwaleGrid returns the Swale grid of Table 4 (p = 5, r = 1 fixed).
func SwaleGrid() Grid {
	g := Grid{Name: "swale"}
	for _, e := range swaleEpsilonGrid {
		g.Candidates = append(g.Candidates, elastic.Swale{Epsilon: e, P: 5, R: 1})
	}
	return g
}

// ERPGrid returns the single parameter-free ERP candidate (g = 0).
func ERPGrid() Grid {
	return Grid{Name: "erp", Candidates: []measure.Measure{elastic.ERP{G: 0}}}
}

// MinkowskiGrid returns the L_p order grid of Table 4.
func MinkowskiGrid() Grid {
	ps := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1, 1.3, 1.5, 1.7, 1.9, 2, 3, 5, 7, 9, 11, 13, 15, 17, 20}
	g := Grid{Name: "minkowski"}
	for _, p := range ps {
		g.Candidates = append(g.Candidates, lockstep.Minkowski(p))
	}
	return g
}

// KDTWGrid returns the KDTW gamma grid of Table 4 (2^-15 .. 2^0).
func KDTWGrid() Grid {
	g := Grid{Name: "kdtw"}
	for _, v := range powersOfTwo(-15, 0) {
		g.Candidates = append(g.Candidates, kernel.KDTW{Gamma: v})
	}
	return g
}

// GAKGrid returns the GAK bandwidth grid of Table 4.
func GAKGrid() Grid {
	vs := []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1, 2, 3, 4,
		5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20}
	g := Grid{Name: "gak"}
	for _, v := range vs {
		g.Candidates = append(g.Candidates, kernel.GAK{Sigma: v})
	}
	return g
}

// SINKGrid returns the SINK gamma grid of Table 4 (1 .. 20).
func SINKGrid() Grid {
	g := Grid{Name: "sink"}
	for _, v := range oneToTwenty() {
		g.Candidates = append(g.Candidates, kernel.SINK{Gamma: v})
	}
	return g
}

// RBFGrid returns the RBF gamma grid of Table 4 (2^-15 .. 2^0, extended by
// gamma = 2, the paper's unsupervised choice).
func RBFGrid() Grid {
	g := Grid{Name: "rbf"}
	for _, v := range append(powersOfTwo(-15, 0), 2) {
		g.Candidates = append(g.Candidates, kernel.RBF{Gamma: v})
	}
	return g
}

// ElasticGrids returns the supervised grids of the 7 elastic measures in
// the order of Table 5.
func ElasticGrids() []Grid {
	return []Grid{MSMGrid(), TWEGrid(), DTWGrid(), EDRGrid(), SwaleGrid(), ERPGrid(), LCSSGrid()}
}

// KernelGrids returns the supervised grids of the 4 kernel functions in
// the order of Table 6.
func KernelGrids() []Grid {
	return []Grid{KDTWGrid(), GAKGrid(), SINKGrid(), RBFGrid()}
}

// Grids returns every supervised parameter grid of Table 4: the elastic
// grids, the kernel grids, and the Minkowski order grid. Exactness property
// tests iterate it to compare the tuning engine against the per-candidate
// reference on every grid family.
func Grids() []Grid {
	gs := ElasticGrids()
	gs = append(gs, KernelGrids()...)
	gs = append(gs, MinkowskiGrid())
	return gs
}

// Thin returns a copy of the grid keeping every stride-th candidate
// (always at least the first); experiment drivers use it for the reduced
// -short configurations.
func Thin(g Grid, stride int) Grid {
	if stride <= 1 {
		return g
	}
	out := Grid{Name: g.Name}
	for i := 0; i < len(g.Candidates); i += stride {
		out.Candidates = append(out.Candidates, g.Candidates[i])
	}
	return out
}
