package eval

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lockstep"
	"repro/internal/measure"
)

// noPanel strips the PanelEvaluator (and every other optional) interface
// off a measure, forcing MatrixCtx onto the per-pair reference path.
type noPanel struct{ m measure.Measure }

func (n noPanel) Name() string                    { return n.m.Name() }
func (n noPanel) Distance(x, y []float64) float64 { return n.m.Distance(x, y) }

// TestMatrixPanelBitwise: the PanelEvaluator bulk path of MatrixCtx must be
// bitwise-identical to the per-pair path, NaN sanitization included.
func TestMatrixPanelBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	series := func(n, m int) [][]float64 {
		out := make([][]float64, n)
		for i := range out {
			out[i] = make([]float64, m)
			for j := range out[i] {
				out[i][j] = rng.NormFloat64()
			}
		}
		return out
	}
	queries, refs := series(11, 50), series(17, 50)
	queries[2][10] = math.NaN()
	refs[5][0] = math.Inf(1)
	measures := []measure.Measure{
		lockstep.Euclidean(), lockstep.Manhattan(), lockstep.Chebyshev(),
		lockstep.Lorentzian(), lockstep.SquaredEuclidean(), lockstep.Cosine(),
	}
	for _, m := range measures {
		if _, ok := m.(measure.PanelEvaluator); !ok {
			t.Fatalf("%s: expected a PanelEvaluator", m.Name())
		}
		got := Matrix(m, queries, refs)
		want := Matrix(noPanel{m}, queries, refs)
		for i := range want {
			for j := range want[i] {
				if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
					t.Fatalf("%s [%d][%d]: panel %v != per-pair %v",
						m.Name(), i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}
