// Package run is the run-core layer of the repository: the experiment
// registry every driver self-registers into, the progress-event schema and
// Reporter interface threaded through the long evaluation loops, and the
// shared Options every experiment consumes.
//
// The package exists so that execution concerns — cooperative
// cancellation, run observability, and the catalogue of runnable
// experiments — live in one place instead of being re-implemented (or
// omitted) per command. cmd/tsbench is a thin shell over this package:
// its experiment list, "all" expansion, and usage text are all derived
// from the Registry, so they cannot drift from the drivers.
//
// Context policy: every driver has the signature
//
//	func(ctx context.Context, opts Options, rep Reporter) (Result, error)
//
// and must return promptly with ctx.Err() once the context is cancelled.
// The underlying engines (internal/par, internal/search, internal/eval,
// kernel.GramEngine, the embedding fits) observe cancellation at
// chunk-claim granularity, so "promptly" means within one dispatch chunk
// per worker.
package run

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Kind classifies a progress event.
type Kind int

const (
	// Started is emitted once when a driver begins, carrying the total
	// unit count when known.
	Started Kind = iota
	// Progress is emitted after each completed unit of work.
	Progress
	// Completed is emitted once when the driver finished successfully.
	Completed
)

// String renders the kind for logs.
func (k Kind) String() string {
	switch k {
	case Started:
		return "started"
	case Progress:
		return "progress"
	case Completed:
		return "completed"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one progress notification from an experiment driver. Events
// carry counts, not wall-clock times; timing (elapsed, ETA) is derived by
// the consumer so that event streams stay deterministic.
type Event struct {
	Experiment string // registry name, e.g. "table5"
	Kind       Kind
	Done       int    // completed units so far
	Total      int    // total units, 0 when unknown
	Unit       string // what one unit is: "combos", "datasets", "bands", ...
	Detail     string // the unit just completed, e.g. "dtw/zscore"
}

// Reporter receives progress events. Implementations must tolerate calls
// from the single goroutine driving an experiment; drivers never emit
// concurrently for the same experiment.
type Reporter interface {
	Event(Event)
}

// Emit sends e to rep, tolerating a nil reporter.
func Emit(rep Reporter, e Event) {
	if rep != nil {
		rep.Event(e)
	}
}

// Task is the driver-side helper that stamps events with the experiment
// name and unit, counts completed units, and emits the
// Started/Progress/Completed sequence. A Task constructed with a nil
// Reporter is a no-op, so drivers need no nil checks.
type Task struct {
	rep   Reporter
	exp   string
	unit  string
	total int
	done  int
}

// NewTask announces the start of an experiment with total units of work
// (0 when unknown) and returns the tracker for it.
func NewTask(rep Reporter, experiment, unit string, total int) *Task {
	t := &Task{rep: rep, exp: experiment, unit: unit, total: total}
	t.emit(Started, "")
	return t
}

// Step records one completed unit.
func (t *Task) Step(detail string) {
	t.done++
	t.emit(Progress, detail)
}

// Done announces successful completion.
func (t *Task) Done() {
	t.emit(Completed, "")
}

func (t *Task) emit(k Kind, detail string) {
	if t.rep == nil {
		return
	}
	t.rep.Event(Event{
		Experiment: t.exp, Kind: k,
		Done: t.done, Total: t.total,
		Unit: t.unit, Detail: detail,
	})
}

// ProgressPrinter renders events as single log lines with elapsed time
// and a naive linear ETA. It is what tsbench -progress installs, writing
// to stderr so progress never contaminates the golden-checked stdout.
type ProgressPrinter struct {
	mu     sync.Mutex
	w      io.Writer
	starts map[string]time.Time
	now    func() time.Time // test seam
}

// NewProgressPrinter returns a printer writing to w.
func NewProgressPrinter(w io.Writer) *ProgressPrinter {
	return &ProgressPrinter{w: w, starts: map[string]time.Time{}, now: time.Now}
}

// Event implements Reporter.
func (p *ProgressPrinter) Event(e Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	switch e.Kind {
	case Started:
		p.starts[e.Experiment] = now
		if e.Total > 0 {
			fmt.Fprintf(p.w, "[%s] started: %d %s\n", e.Experiment, e.Total, e.Unit)
		} else {
			fmt.Fprintf(p.w, "[%s] started\n", e.Experiment)
		}
	case Progress:
		elapsed := now.Sub(p.starts[e.Experiment])
		line := fmt.Sprintf("[%s] %d", e.Experiment, e.Done)
		if e.Total > 0 {
			line = fmt.Sprintf("[%s] %d/%d", e.Experiment, e.Done, e.Total)
		}
		if e.Unit != "" {
			line += " " + e.Unit
		}
		if e.Detail != "" {
			line += " (" + e.Detail + ")"
		}
		if e.Total > 0 && e.Done > 0 && e.Done < e.Total {
			eta := time.Duration(float64(elapsed) / float64(e.Done) * float64(e.Total-e.Done))
			line += fmt.Sprintf(" eta %v", eta.Round(time.Second))
		}
		fmt.Fprintf(p.w, "%s elapsed %v\n", line, elapsed.Round(time.Millisecond))
	case Completed:
		elapsed := now.Sub(p.starts[e.Experiment])
		delete(p.starts, e.Experiment)
		fmt.Fprintf(p.w, "[%s] completed in %v\n", e.Experiment, elapsed.Round(time.Millisecond))
	}
}
