package run

import "repro/internal/dataset"

// Options configures an experiment run. It lives in the run-core (the
// experiments package aliases it) so registry drivers have a fully typed
// signature without an import cycle.
type Options struct {
	// Archive is the dataset collection; when nil, a default reduced
	// synthetic archive is generated (seed 1).
	Archive []*dataset.Dataset
	// WilcoxonAlpha is the pairwise significance level (paper: 0.05).
	WilcoxonAlpha float64
	// FriedmanAlpha is the multi-measure significance level (paper: 0.10).
	FriedmanAlpha float64
	// GridStride thins every supervised parameter grid (1 = full Table 4
	// grids); reduced runs use larger strides to stay laptop-friendly.
	GridStride int
	// Pruned times inference through the pruned 1-NN engine
	// (internal/search) instead of exhaustive matrix computation in the
	// runtime experiments. Accuracies are identical either way.
	Pruned bool
}

// Defaults fills unset fields and generates the default archive if needed.
func (o Options) Defaults() Options {
	if o.WilcoxonAlpha == 0 {
		o.WilcoxonAlpha = 0.05
	}
	if o.FriedmanAlpha == 0 {
		o.FriedmanAlpha = 0.10
	}
	if o.GridStride == 0 {
		o.GridStride = 1
	}
	if o.Archive == nil {
		o.Archive = DefaultArchive()
	}
	return o
}

// DefaultArchive generates the reduced synthetic archive used by tests and
// benches: 24 datasets capped at modest sizes, deterministic under seed 1.
func DefaultArchive() []*dataset.Dataset {
	return dataset.GenerateArchive(dataset.ArchiveOptions{
		Seed: 1, Count: 24, MaxLength: 96, MaxTrain: 18, MaxTest: 24,
	})
}

// FullArchive generates the full-scale synthetic archive: 128 datasets,
// mirroring the cardinality of the UCR archive the paper evaluates on.
func FullArchive() []*dataset.Dataset {
	return dataset.GenerateArchive(dataset.ArchiveOptions{Seed: 1, Count: 128})
}
