package run

import (
	"context"
	"fmt"
	"strings"
	"sync"
)

// Result is what a driver hands back to the caller: the rendered text of
// the table or figure, and the structured value exported by -json.
type Result struct {
	Text       string
	Structured any
}

// Driver executes one experiment. It must honor ctx cancellation (return
// ctx.Err() promptly, with whatever it completed discarded or partial) and
// may emit progress events through rep (which can be nil).
type Driver func(ctx context.Context, opts Options, rep Reporter) (Result, error)

// Experiment is one registry entry: a runnable, self-describing artifact
// of the evaluation.
type Experiment struct {
	Name        string // canonical lower-case name, e.g. "table5"
	Description string // one-line summary shown in usage listings
	Run         Driver
}

// Registry is an ordered, name-keyed collection of experiments.
// Registration order is the canonical execution order ("all" runs in it).
type Registry struct {
	mu     sync.Mutex
	order  []string
	byName map[string]Experiment
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]Experiment{}}
}

// Default is the process-wide registry; internal/experiments populates it
// at init time and cmd/tsbench drives from it.
var Default = NewRegistry()

// Register adds e to the registry. It panics on an empty name, a nil
// driver, or a duplicate name — all programmer errors at init time.
func (r *Registry) Register(e Experiment) {
	if e.Name == "" || e.Name != strings.ToLower(e.Name) {
		panic(fmt.Sprintf("run: invalid experiment name %q (must be non-empty lower-case)", e.Name))
	}
	if e.Run == nil {
		panic(fmt.Sprintf("run: experiment %q registered without a driver", e.Name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[e.Name]; dup {
		panic(fmt.Sprintf("run: experiment %q registered twice", e.Name))
	}
	r.byName[e.Name] = e
	r.order = append(r.order, e.Name)
}

// Names returns the experiment names in registration (canonical) order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Lookup resolves a name case-insensitively.
func (r *Registry) Lookup(name string) (Experiment, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byName[strings.ToLower(name)]
	return e, ok
}

// Usage renders the experiment listing for command usage text: one line
// per experiment in canonical order, name-aligned, plus the "all" pseudo
// experiment. Generated from the registry so it can never drift from the
// runnable set.
func (r *Registry) Usage() string {
	names := r.Names()
	width := len("all")
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	var b strings.Builder
	for _, n := range names {
		e, _ := r.Lookup(n)
		fmt.Fprintf(&b, "  %-*s  %s\n", width, n, e.Description)
	}
	fmt.Fprintf(&b, "  %-*s  every experiment above, in canonical order\n", width, "all")
	return b.String()
}

// Expand replaces every occurrence of "all" (case-insensitive) in args
// with the full canonical experiment list and validates that every
// resulting name is registered, returning the resolved canonical names.
func (r *Registry) Expand(args []string) ([]string, error) {
	var out []string
	for _, a := range args {
		if strings.EqualFold(a, "all") {
			out = append(out, r.Names()...)
			continue
		}
		e, ok := r.Lookup(a)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (known: %s)", a, strings.Join(r.Names(), " "))
		}
		out = append(out, e.Name)
	}
	return out, nil
}
