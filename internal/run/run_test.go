package run

import (
	"context"
	"strings"
	"testing"
	"time"
)

func noopDriver(ctx context.Context, opts Options, rep Reporter) (Result, error) {
	return Result{Text: "ok"}, nil
}

func TestRegistryOrderAndLookup(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.Register(Experiment{Name: n, Description: n + " experiment", Run: noopDriver})
	}
	got := r.Names()
	want := []string{"zeta", "alpha", "mid"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q (registration order, not sorted)", i, got[i], want[i])
		}
	}
	if _, ok := r.Lookup("ALPHA"); !ok {
		t.Error("Lookup must be case-insensitive")
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Error("Lookup resolved an unregistered name")
	}
}

func TestRegistryRegisterPanics(t *testing.T) {
	cases := map[string]Experiment{
		"empty name":     {Name: "", Run: noopDriver},
		"upper-case":     {Name: "Table2", Run: noopDriver},
		"nil driver":     {Name: "table2"},
		"duplicate name": {Name: "dup", Run: noopDriver},
	}
	for label, e := range cases {
		r := NewRegistry()
		r.Register(Experiment{Name: "dup", Run: noopDriver})
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Register did not panic", label)
				}
			}()
			r.Register(e)
		}()
	}
}

func TestRegistryExpand(t *testing.T) {
	r := NewRegistry()
	r.Register(Experiment{Name: "a", Run: noopDriver})
	r.Register(Experiment{Name: "b", Run: noopDriver})

	names, err := r.Expand([]string{"b", "All", "B"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"b", "a", "b", "b"}
	if len(names) != len(want) {
		t.Fatalf("Expand = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Expand = %v, want %v", names, want)
		}
	}

	if _, err := r.Expand([]string{"zzz"}); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("Expand(zzz) err = %v, want unknown-experiment error", err)
	}
}

func TestRegistryUsageListsEveryExperimentAndAll(t *testing.T) {
	r := NewRegistry()
	r.Register(Experiment{Name: "short", Description: "a short one", Run: noopDriver})
	r.Register(Experiment{Name: "muchlongername", Description: "a long one", Run: noopDriver})
	u := r.Usage()
	for _, want := range []string{"short", "a short one", "muchlongername", "a long one", "all", "canonical order"} {
		if !strings.Contains(u, want) {
			t.Errorf("Usage missing %q:\n%s", want, u)
		}
	}
}

// recorder collects events for assertions.
type recorder struct{ events []Event }

func (r *recorder) Event(e Event) { r.events = append(r.events, e) }

func TestTaskEventSequence(t *testing.T) {
	rec := &recorder{}
	task := NewTask(rec, "table5", "combos", 2)
	task.Step("dtw/zscore")
	task.Step("msm/zscore")
	task.Done()

	want := []Event{
		{Experiment: "table5", Kind: Started, Done: 0, Total: 2, Unit: "combos"},
		{Experiment: "table5", Kind: Progress, Done: 1, Total: 2, Unit: "combos", Detail: "dtw/zscore"},
		{Experiment: "table5", Kind: Progress, Done: 2, Total: 2, Unit: "combos", Detail: "msm/zscore"},
		{Experiment: "table5", Kind: Completed, Done: 2, Total: 2, Unit: "combos"},
	}
	if len(rec.events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(rec.events), len(want), rec.events)
	}
	for i := range want {
		if rec.events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, rec.events[i], want[i])
		}
	}
}

func TestTaskNilReporterIsSafe(t *testing.T) {
	task := NewTask(nil, "x", "units", 3)
	task.Step("one")
	task.Done()
	Emit(nil, Event{})
}

func TestProgressPrinterOutput(t *testing.T) {
	var sb strings.Builder
	p := NewProgressPrinter(&sb)
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := base
	p.now = func() time.Time { return clock }

	p.Event(Event{Experiment: "table5", Kind: Started, Total: 4, Unit: "combos"})
	clock = base.Add(2 * time.Second)
	p.Event(Event{Experiment: "table5", Kind: Progress, Done: 1, Total: 4, Unit: "combos", Detail: "dtw/zscore"})
	clock = base.Add(8 * time.Second)
	p.Event(Event{Experiment: "table5", Kind: Completed, Done: 4, Total: 4, Unit: "combos"})

	got := sb.String()
	want := "[table5] started: 4 combos\n" +
		"[table5] 1/4 combos (dtw/zscore) eta 6s elapsed 2s\n" +
		"[table5] completed in 8s\n"
	if got != want {
		t.Errorf("printer output:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Started: "started", Progress: "progress", Completed: "completed", Kind(9): "kind(9)"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestDefaultsAndArchives(t *testing.T) {
	opts := Options{}.Defaults()
	if opts.GridStride != 1 || opts.Archive == nil {
		t.Errorf("Defaults() = %+v", opts)
	}
	if n := len(DefaultArchive()); n != 24 {
		t.Errorf("DefaultArchive has %d datasets, want 24", n)
	}
}
