package svm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kernel"
)

// linearGram builds a linear-kernel Gram matrix between two point sets.
func linearGram(a, b [][]float64) [][]float64 {
	g := make([][]float64, len(a))
	for i := range a {
		g[i] = make([]float64, len(b))
		for j := range b {
			var s float64
			for k := range a[i] {
				s += a[i][k] * b[j][k]
			}
			g[i][j] = s
		}
	}
	return g
}

func TestBinarySeparable2D(t *testing.T) {
	// Two linearly separable blobs in 2D with a linear kernel.
	rng := rand.New(rand.NewSource(1))
	var points [][]float64
	var labels []int
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			points = append(points, []float64{2 + rng.NormFloat64()*0.3, 2 + rng.NormFloat64()*0.3})
			labels = append(labels, 1)
		} else {
			points = append(points, []float64{-2 + rng.NormFloat64()*0.3, -2 + rng.NormFloat64()*0.3})
			labels = append(labels, 2)
		}
	}
	gram := linearGram(points, points)
	m := Train(gram, labels, Config{C: 1, Seed: 1})
	acc := m.Accuracy(gram, labels)
	if acc < 0.95 {
		t.Fatalf("training accuracy %g on separable blobs, want ~1", acc)
	}
}

func TestMulticlassBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	centers := [][]float64{{3, 0}, {-3, 0}, {0, 3}}
	var points [][]float64
	var labels []int
	for i := 0; i < 60; i++ {
		c := i % 3
		points = append(points, []float64{
			centers[c][0] + rng.NormFloat64()*0.4,
			centers[c][1] + rng.NormFloat64()*0.4,
		})
		labels = append(labels, c+1)
	}
	// RBF kernel over the 2D points (treating coordinates as tiny series).
	rbf := func(a, b []float64) float64 {
		var s float64
		for k := range a {
			d := a[k] - b[k]
			s += d * d
		}
		return math.Exp(-0.5 * s)
	}
	gram := make([][]float64, len(points))
	for i := range points {
		gram[i] = make([]float64, len(points))
		for j := range points {
			gram[i][j] = rbf(points[i], points[j])
		}
	}
	m := Train(gram, labels, Config{C: 10, Seed: 3})
	if acc := m.Accuracy(gram, labels); acc < 0.9 {
		t.Fatalf("multiclass training accuracy %g, want >= 0.9", acc)
	}
}

func TestGeneralizationOnHeldOut(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	gen := func(n int) ([][]float64, []int) {
		var pts [][]float64
		var lbs []int
		for i := 0; i < n; i++ {
			c := i % 2
			sign := float64(2*c - 1)
			pts = append(pts, []float64{sign*1.5 + rng.NormFloat64()*0.4, sign*1.5 + rng.NormFloat64()*0.4})
			lbs = append(lbs, c+1)
		}
		return pts, lbs
	}
	trainPts, trainLbs := gen(60)
	testPts, testLbs := gen(30)
	m := Train(linearGram(trainPts, trainPts), trainLbs, Config{Seed: 5})
	acc := m.Accuracy(linearGram(testPts, trainPts), testLbs)
	if acc < 0.9 {
		t.Fatalf("held-out accuracy %g, want >= 0.9", acc)
	}
}

func TestSINKKernelSVMOnTimeSeries(t *testing.T) {
	// The future-work experiment in miniature: the SINK kernel under an
	// SVM on shift-distorted series, where a lock-step linear Gram fails.
	d := dataset.Generate(dataset.Config{
		Name: "SVMDemo", Family: dataset.FamilyHarmonic, Length: 64,
		NumClasses: 2, TrainSize: 24, TestSize: 24, Seed: 6,
		NoiseSigma: 0.2, ShiftFrac: 0.2,
	})
	s := kernel.SINK{Gamma: 5}
	gramOf := func(a, b [][]float64) [][]float64 {
		g := make([][]float64, len(a))
		pb := make([]any, len(b))
		for j := range b {
			pb[j] = s.Prepare(b[j])
		}
		for i := range a {
			g[i] = make([]float64, len(b))
			pa := s.Prepare(a[i])
			for j := range b {
				g[i][j] = 1 - s.PreparedDistance(pa, pb[j]) // normalized kernel
			}
		}
		return g
	}
	m := Train(gramOf(d.Train, d.Train), d.TrainLabels, Config{C: 10, Seed: 7})
	acc := m.Accuracy(gramOf(d.Test, d.Train), d.TestLabels)
	if acc < 0.75 {
		t.Fatalf("SINK-SVM accuracy %g, want >= 0.75", acc)
	}
}

func TestTrainPanics(t *testing.T) {
	cases := []struct {
		name   string
		gram   [][]float64
		labels []int
	}{
		{"row mismatch", [][]float64{{1}}, []int{1, 2}},
		{"col mismatch", [][]float64{{1, 2}, {3}}, []int{1, 2}},
		{"one class", [][]float64{{1, 0}, {0, 1}}, []int{1, 1}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			Train(c.gram, c.labels, Config{})
		}()
	}
}

func TestAccuracyPanicsOnMismatch(t *testing.T) {
	m := Train([][]float64{{1, 0}, {0, 1}}, []int{1, 2}, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Accuracy([][]float64{{1, 0}}, []int{1, 2})
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.defaults()
	if c.C != 1 || c.Tol != 1e-3 || c.MaxPass != 5 || c.MaxIter != 200 {
		t.Fatalf("defaults = %+v", c)
	}
	// Explicit values survive.
	c2 := Config{C: 7, Tol: 0.5, MaxPass: 2, MaxIter: 9}.defaults()
	if c2.C != 7 || c2.Tol != 0.5 || c2.MaxPass != 2 || c2.MaxIter != 9 {
		t.Fatalf("explicit config clobbered: %+v", c2)
	}
}

func TestDeterministicTraining(t *testing.T) {
	gram := [][]float64{{2, 0, 1}, {0, 2, 1}, {1, 1, 2}}
	labels := []int{1, 2, 1}
	a := Train(gram, labels, Config{Seed: 9})
	b := Train(gram, labels, Config{Seed: 9})
	for i := range a.binaries {
		if a.binaries[i].b != b.binaries[i].b {
			t.Fatal("training not deterministic")
		}
		for j := range a.binaries[i].alpha {
			if a.binaries[i].alpha[j] != b.binaries[i].alpha[j] {
				t.Fatal("alphas not deterministic")
			}
		}
	}
}
