// Package svm implements a kernel support vector machine trained with a
// simplified SMO (sequential minimal optimization) algorithm, with
// one-vs-rest multiclass reduction over a precomputed Gram matrix.
//
// The paper leaves the evaluation of kernel and embedding measures under
// SVM classifiers as future work (Section 9, citing GRAIL's results); this
// package provides that evaluation framework. Training consumes only a
// precomputed kernel (Gram) matrix, so any p.s.d. similarity of the kernel
// package — SINK, GAK, KDTW, RBF — plugs in directly.
package svm

import (
	"fmt"
	"math"
	"math/rand"
)

// Config controls SMO training.
type Config struct {
	C       float64 // regularization (default 1)
	Tol     float64 // KKT violation tolerance (default 1e-3)
	MaxPass int     // passes without change before stopping (default 5)
	MaxIter int     // hard iteration cap (default 200 passes)
	Seed    int64   // partner-selection seed
}

func (c Config) defaults() Config {
	if c.C == 0 {
		c.C = 1
	}
	if c.Tol == 0 {
		c.Tol = 1e-3
	}
	if c.MaxPass == 0 {
		c.MaxPass = 5
	}
	if c.MaxIter == 0 {
		c.MaxIter = 200
	}
	return c
}

// binary is one trained binary SVM: dual coefficients and bias over the
// training indexes.
type binary struct {
	alpha []float64 // alpha_i * y_i folded in sign via labels
	y     []float64 // +1/-1 labels
	b     float64
}

// trainBinary runs simplified SMO over the Gram matrix for labels y in
// {-1, +1}.
func trainBinary(gram [][]float64, y []float64, cfg Config) binary {
	n := len(y)
	alpha := make([]float64, n)
	b := 0.0
	rng := rand.New(rand.NewSource(cfg.Seed))

	f := func(i int) float64 {
		var s float64
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				s += alpha[j] * y[j] * gram[i][j]
			}
		}
		return s + b
	}

	passes, iter := 0, 0
	for passes < cfg.MaxPass && iter < cfg.MaxIter {
		iter++
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - y[i]
			if !((y[i]*ei < -cfg.Tol && alpha[i] < cfg.C) || (y[i]*ei > cfg.Tol && alpha[i] > 0)) {
				continue
			}
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := f(j) - y[j]
			ai, aj := alpha[i], alpha[j]
			var lo, hi float64
			if y[i] != y[j] {
				lo = math.Max(0, aj-ai)
				hi = math.Min(cfg.C, cfg.C+aj-ai)
			} else {
				lo = math.Max(0, ai+aj-cfg.C)
				hi = math.Min(cfg.C, ai+aj)
			}
			if lo == hi {
				continue
			}
			eta := 2*gram[i][j] - gram[i][i] - gram[j][j]
			if eta >= 0 {
				continue
			}
			alpha[j] = aj - y[j]*(ei-ej)/eta
			if alpha[j] > hi {
				alpha[j] = hi
			} else if alpha[j] < lo {
				alpha[j] = lo
			}
			if math.Abs(alpha[j]-aj) < 1e-7 {
				alpha[j] = aj
				continue
			}
			alpha[i] = ai + y[i]*y[j]*(aj-alpha[j])
			b1 := b - ei - y[i]*(alpha[i]-ai)*gram[i][i] - y[j]*(alpha[j]-aj)*gram[i][j]
			b2 := b - ej - y[i]*(alpha[i]-ai)*gram[i][j] - y[j]*(alpha[j]-aj)*gram[j][j]
			switch {
			case alpha[i] > 0 && alpha[i] < cfg.C:
				b = b1
			case alpha[j] > 0 && alpha[j] < cfg.C:
				b = b2
			default:
				b = (b1 + b2) / 2
			}
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}
	return binary{alpha: alpha, y: y, b: b}
}

// decision evaluates the binary decision function for a test point given
// its kernel row against the training set.
func (m binary) decision(kRow []float64) float64 {
	var s float64
	for j, a := range m.alpha {
		if a != 0 {
			s += a * m.y[j] * kRow[j]
		}
	}
	return s + m.b
}

// Model is a one-vs-rest multiclass kernel SVM.
type Model struct {
	classes  []int
	binaries []binary
}

// Train fits a one-vs-rest SVM from the training Gram matrix and integer
// class labels. It panics on shape mismatches or fewer than 2 classes.
func Train(gram [][]float64, labels []int, cfg Config) *Model {
	cfg = cfg.defaults()
	n := len(labels)
	if len(gram) != n {
		panic(fmt.Sprintf("svm: gram has %d rows, %d labels", len(gram), n))
	}
	for i, row := range gram {
		if len(row) != n {
			panic(fmt.Sprintf("svm: gram row %d has %d cols, want %d", i, len(row), n))
		}
	}
	seen := map[int]bool{}
	var classes []int
	for _, l := range labels {
		if !seen[l] {
			seen[l] = true
			classes = append(classes, l)
		}
	}
	if len(classes) < 2 {
		panic("svm: need at least 2 classes")
	}
	m := &Model{classes: classes}
	for k, c := range classes {
		y := make([]float64, n)
		for i, l := range labels {
			if l == c {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		sub := cfg
		sub.Seed = cfg.Seed + int64(k)
		m.binaries = append(m.binaries, trainBinary(gram, y, sub))
	}
	return m
}

// Predict classifies one test point given its kernel row against the
// training set: the class whose one-vs-rest decision value is largest.
func (m *Model) Predict(kRow []float64) int {
	best, bestV := m.classes[0], math.Inf(-1)
	for k, bin := range m.binaries {
		if v := bin.decision(kRow); v > bestV {
			best, bestV = m.classes[k], v
		}
	}
	return best
}

// Accuracy classifies every row of the test-by-train kernel matrix and
// returns the fraction matching the test labels.
func (m *Model) Accuracy(kTest [][]float64, testLabels []int) float64 {
	if len(kTest) != len(testLabels) {
		panic(fmt.Sprintf("svm: %d kernel rows, %d labels", len(kTest), len(testLabels)))
	}
	if len(kTest) == 0 {
		return 0
	}
	correct := 0
	for i, row := range kTest {
		if m.Predict(row) == testLabels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(kTest))
}
