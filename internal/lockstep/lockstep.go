// Package lockstep implements the 52 lock-step distance measures of
// Section 5 of the paper: the seven families of the Cha (2007) survey
// (L_p Minkowski, L_1, Intersection, Inner Product, Fidelity, Squared L_2,
// Shannon Entropy), the combination measures, the vicissitude ("Emanon")
// measures the survey proposed, plus DISSIM and the adaptive scaling
// distance (ASD).
//
// Every measure compares the i-th point of one series with the i-th point
// of the other, in O(m). Probability-style measures (entropy, fidelity,
// chi-squared families) assume non-negative inputs; on arbitrary real data
// they may evaluate to +Inf, which the evaluation layer ranks last — this
// mirrors the paper's observation that such measures need MinMax-style
// normalizations. All terms use the guarded arithmetic of package measure,
// so every function is total.
package lockstep

import (
	"fmt"
	"math"

	"repro/internal/measure"
)

//
// ---- L_p Minkowski family ----
//

// Euclidean returns the L2-norm distance, the paper's lock-step baseline,
// as a Panel: batched panel evaluation plus early abandoning on the
// running sum of squares.
func Euclidean() Panel {
	return Panel{
		name: "euclidean",
		dist: func(x, y []float64) float64 {
			var s float64
			for i := range x {
				d := x[i] - y[i]
				s += d * d
			}
			return math.Sqrt(s)
		},
		distUpTo: func(x, y []float64, cutoff float64) float64 {
			return sumSqUpTo(x, y, cutoff, math.Sqrt)
		},
		panelAll: func(q []float64, panel [][]float64, out []float64) {
			panelSumSqUpTo(q, panel, math.Inf(1), out, math.Sqrt)
		},
		panelUpTo: func(q []float64, panel [][]float64, cutoff float64, out []float64) {
			panelSumSqUpTo(q, panel, cutoff, out, math.Sqrt)
		},
	}
}

// Manhattan returns the L1-norm (city block) distance as a Panel.
func Manhattan() Panel {
	return Panel{
		name: "manhattan",
		dist: func(x, y []float64) float64 {
			var s float64
			for i := range x {
				s += math.Abs(x[i] - y[i])
			}
			return s
		},
		distUpTo: sumAbsUpTo,
		panelAll: func(q []float64, panel [][]float64, out []float64) {
			panelSumAbsUpTo(q, panel, math.Inf(1), out)
		},
		panelUpTo: panelSumAbsUpTo,
	}
}

// Minkowski returns the L_p-norm distance; p is the only lock-step
// parameter requiring tuning (Table 4).
func Minkowski(p float64) measure.Func {
	return measure.New(fmt.Sprintf("minkowski[p=%g]", p), func(x, y []float64) float64 {
		var s float64
		for i := range x {
			s += math.Pow(math.Abs(x[i]-y[i]), p)
		}
		return math.Pow(s, 1/p)
	})
}

// Chebyshev returns the L_inf-norm distance as a Panel.
func Chebyshev() Panel {
	return Panel{
		name: "chebyshev",
		dist: func(x, y []float64) float64 {
			var m float64
			for i := range x {
				if d := math.Abs(x[i] - y[i]); d > m {
					m = d
				}
			}
			return m
		},
		distUpTo: maxAbsUpTo,
		panelAll: func(q []float64, panel [][]float64, out []float64) {
			panelMaxAbsUpTo(q, panel, math.Inf(1), out)
		},
		panelUpTo: panelMaxAbsUpTo,
	}
}

//
// ---- L_1 family ----
//

// Sorensen returns sum|x-y| / sum(x+y).
func Sorensen() measure.Func {
	return measure.New("sorensen", func(x, y []float64) float64 {
		var num, den float64
		for i := range x {
			num += math.Abs(x[i] - y[i])
			den += x[i] + y[i]
		}
		return measure.Div(num, den)
	})
}

// Gower returns the mean absolute difference. The empty pair takes the
// 0/0 := 0 convention (two empty series are identical) instead of NaN.
func Gower() measure.Func {
	return measure.New("gower", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			s += math.Abs(x[i] - y[i])
		}
		return measure.Div(s, float64(len(x)))
	})
}

// Soergel returns sum|x-y| / sum max(x,y).
func Soergel() measure.Func {
	return measure.New("soergel", func(x, y []float64) float64 {
		var num, den float64
		for i := range x {
			num += math.Abs(x[i] - y[i])
			den += math.Max(x[i], y[i])
		}
		return measure.Div(num, den)
	})
}

// Kulczynski returns sum|x-y| / sum min(x,y).
func Kulczynski() measure.Func {
	return measure.New("kulczynski", func(x, y []float64) float64 {
		var num, den float64
		for i := range x {
			num += math.Abs(x[i] - y[i])
			den += math.Min(x[i], y[i])
		}
		return measure.Div(num, den)
	})
}

// Canberra returns sum |x-y| / (x+y) with per-term guards.
func Canberra() measure.Func {
	return measure.New("canberra", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			s += measure.Div(math.Abs(x[i]-y[i]), math.Abs(x[i]+y[i]))
		}
		return s
	})
}

// Lorentzian returns sum ln(1 + |x-y|), the natural logarithm of L1 — the
// measure the paper identifies as the new lock-step state of the art.
func Lorentzian() Panel {
	return Panel{
		name: "lorentzian",
		dist: func(x, y []float64) float64 {
			var s float64
			for i := range x {
				s += math.Log1p(math.Abs(x[i] - y[i]))
			}
			return s
		},
		distUpTo: sumLog1pAbsUpTo,
		panelAll: func(q []float64, panel [][]float64, out []float64) {
			panelSumLog1pAbsUpTo(q, panel, math.Inf(1), out)
		},
		panelUpTo: panelSumLog1pAbsUpTo,
	}
}

//
// ---- Intersection family ----
//

// Intersection returns the non-overlap distance (1/2) sum|x-y|.
func Intersection() measure.Func {
	return measure.New("intersection", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			s += math.Abs(x[i] - y[i])
		}
		return s / 2
	})
}

// WaveHedges returns sum |x-y| / max(x,y) with per-term guards.
func WaveHedges() measure.Func {
	return measure.New("wavehedges", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			s += measure.Div(math.Abs(x[i]-y[i]), math.Max(x[i], y[i]))
		}
		return s
	})
}

// Czekanowski returns sum|x-y| / sum(x+y) (the distance form of the
// Czekanowski similarity; equivalent to Sorensen, kept for survey parity).
func Czekanowski() measure.Func {
	return measure.New("czekanowski", func(x, y []float64) float64 {
		var num, den float64
		for i := range x {
			num += math.Abs(x[i] - y[i])
			den += x[i] + y[i]
		}
		return measure.Div(num, den)
	})
}

// Motyka returns sum max(x,y) / sum(x+y).
func Motyka() measure.Func {
	return measure.New("motyka", func(x, y []float64) float64 {
		var num, den float64
		for i := range x {
			num += math.Max(x[i], y[i])
			den += x[i] + y[i]
		}
		return measure.Div(num, den)
	})
}

// KulczynskiS returns the reciprocal of the Kulczynski similarity
// sum min / sum |x-y|, i.e. sum|x-y| / sum min(x,y).
func KulczynskiS() measure.Func {
	return measure.New("kulczynski-s", func(x, y []float64) float64 {
		var num, den float64
		for i := range x {
			num += math.Abs(x[i] - y[i])
			den += math.Min(x[i], y[i])
		}
		return measure.Div(num, den)
	})
}

// Ruzicka returns 1 - sum min(x,y) / sum max(x,y).
func Ruzicka() measure.Func {
	return measure.New("ruzicka", func(x, y []float64) float64 {
		var mins, maxs float64
		for i := range x {
			mins += math.Min(x[i], y[i])
			maxs += math.Max(x[i], y[i])
		}
		return 1 - measure.Div(mins, maxs)
	})
}

// Tanimoto returns (sum max - sum min) / sum max.
func Tanimoto() measure.Func {
	return measure.New("tanimoto", func(x, y []float64) float64 {
		var mins, maxs float64
		for i := range x {
			mins += math.Min(x[i], y[i])
			maxs += math.Max(x[i], y[i])
		}
		return measure.Div(maxs-mins, maxs)
	})
}

//
// ---- Inner product family ----
//

// InnerProduct returns the negated inner product -sum(x*y); negation turns
// the similarity into a dissimilarity with identical 1-NN behaviour.
func InnerProduct() measure.Func {
	return measure.New("innerproduct", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			s += x[i] * y[i]
		}
		return -s
	})
}

// HarmonicMean returns the negated harmonic-mean similarity
// -2 sum x*y/(x+y).
func HarmonicMean() measure.Func {
	return measure.New("harmonicmean", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			s += measure.Div(x[i]*y[i], x[i]+y[i])
		}
		return -2 * s
	})
}

// Cosine returns 1 - cos(x, y) as a Panel. Its accumulators are not
// monotone, so DistanceUpTo and the panel cutoff path compute exact values
// regardless of the cutoff (trivially within the contracts).
func Cosine() Panel {
	return Panel{
		name: "cosine",
		dist: cosineDist,
		distUpTo: func(x, y []float64, _ float64) float64 {
			return cosineDist(x, y)
		},
		panelAll: panelCosine,
		panelUpTo: func(q []float64, panel [][]float64, _ float64, out []float64) {
			panelCosine(q, panel, out)
		},
	}
}

// KumarHassebrook returns 1 - sum x*y / (sum x^2 + sum y^2 - sum x*y).
func KumarHassebrook() measure.Func {
	return measure.New("kumarhassebrook", func(x, y []float64) float64 {
		var xy, xx, yy float64
		for i := range x {
			xy += x[i] * y[i]
			xx += x[i] * x[i]
			yy += y[i] * y[i]
		}
		return 1 - measure.Div(xy, xx+yy-xy)
	})
}

// Jaccard returns sum (x-y)^2 / (sum x^2 + sum y^2 - sum x*y), one of the
// paper's newly identified strong measures (under MeanNorm).
func Jaccard() measure.Func {
	return measure.New("jaccard", func(x, y []float64) float64 {
		var sq, xy, xx, yy float64
		for i := range x {
			d := x[i] - y[i]
			sq += d * d
			xy += x[i] * y[i]
			xx += x[i] * x[i]
			yy += y[i] * y[i]
		}
		return measure.Div(sq, xx+yy-xy)
	})
}

// Dice returns sum (x-y)^2 / (sum x^2 + sum y^2).
func Dice() measure.Func {
	return measure.New("dice", func(x, y []float64) float64 {
		var sq, xx, yy float64
		for i := range x {
			d := x[i] - y[i]
			sq += d * d
			xx += x[i] * x[i]
			yy += y[i] * y[i]
		}
		return measure.Div(sq, xx+yy)
	})
}

//
// ---- Fidelity family ----
//

// Fidelity returns 1 - sum sqrt(x*y).
func Fidelity() measure.Func {
	return measure.New("fidelity", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			s += measure.SafeSqrt(x[i] * y[i])
		}
		return measure.Sanitize(1 - s)
	})
}

// Bhattacharyya returns -ln sum sqrt(x*y).
func Bhattacharyya() measure.Func {
	return measure.New("bhattacharyya", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			s += measure.SafeSqrt(x[i] * y[i])
		}
		if s <= 0 || math.IsNaN(s) {
			return math.Inf(1)
		}
		return -math.Log(s)
	})
}

// Hellinger returns sqrt(2 sum (sqrt x - sqrt y)^2).
func Hellinger() measure.Func {
	return measure.New("hellinger", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			d := measure.SafeSqrt(x[i]) - measure.SafeSqrt(y[i])
			s += d * d
		}
		return measure.Sanitize(math.Sqrt(2 * s))
	})
}

// Matusita returns sqrt(sum (sqrt x - sqrt y)^2).
func Matusita() measure.Func {
	return measure.New("matusita", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			d := measure.SafeSqrt(x[i]) - measure.SafeSqrt(y[i])
			s += d * d
		}
		return measure.Sanitize(math.Sqrt(s))
	})
}

// SquaredChord returns sum (sqrt x - sqrt y)^2.
func SquaredChord() measure.Func {
	return measure.New("squaredchord", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			d := measure.SafeSqrt(x[i]) - measure.SafeSqrt(y[i])
			s += d * d
		}
		return measure.Sanitize(s)
	})
}

//
// ---- Squared L_2 (chi-squared) family ----
//

// SquaredEuclidean returns sum (x-y)^2 as a Panel.
func SquaredEuclidean() Panel {
	return Panel{
		name: "squaredeuclidean",
		dist: func(x, y []float64) float64 {
			var s float64
			for i := range x {
				d := x[i] - y[i]
				s += d * d
			}
			return s
		},
		distUpTo: func(x, y []float64, cutoff float64) float64 {
			return sumSqUpTo(x, y, cutoff, ident)
		},
		panelAll: func(q []float64, panel [][]float64, out []float64) {
			panelSumSqUpTo(q, panel, math.Inf(1), out, ident)
		},
		panelUpTo: func(q []float64, panel [][]float64, cutoff float64, out []float64) {
			panelSumSqUpTo(q, panel, cutoff, out, ident)
		},
	}
}

// PearsonChiSq returns sum (x-y)^2 / y.
func PearsonChiSq() measure.Func {
	return measure.New("pearsonchisq", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - y[i]
			s += measure.Div(d*d, y[i])
		}
		return s
	})
}

// NeymanChiSq returns sum (x-y)^2 / x.
func NeymanChiSq() measure.Func {
	return measure.New("neymanchisq", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - y[i]
			s += measure.Div(d*d, x[i])
		}
		return s
	})
}

// SquaredChiSq returns sum (x-y)^2 / (x+y).
func SquaredChiSq() measure.Func {
	return measure.New("squaredchisq", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - y[i]
			s += measure.Div(d*d, x[i]+y[i])
		}
		return s
	})
}

// ProbSymmetricChiSq returns 2 sum (x-y)^2 / (x+y).
func ProbSymmetricChiSq() measure.Func {
	return measure.New("probsymmetricchisq", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - y[i]
			s += measure.Div(d*d, x[i]+y[i])
		}
		return 2 * s
	})
}

// Divergence returns 2 sum (x-y)^2 / (x+y)^2.
func Divergence() measure.Func {
	return measure.New("divergence", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - y[i]
			sum := x[i] + y[i]
			s += measure.Div(d*d, sum*sum)
		}
		return 2 * s
	})
}

// Clark returns sqrt(sum (|x-y| / (x+y))^2), a measure Table 2 reports
// under MinMax.
func Clark() measure.Func {
	return measure.New("clark", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			r := measure.Div(math.Abs(x[i]-y[i]), math.Abs(x[i]+y[i]))
			s += r * r
		}
		return math.Sqrt(s)
	})
}

// AdditiveSymmetricChiSq returns sum (x-y)^2 (x+y) / (x*y).
func AdditiveSymmetricChiSq() measure.Func {
	return measure.New("additivesymmetricchisq", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - y[i]
			s += measure.Div(d*d*(x[i]+y[i]), x[i]*y[i])
		}
		return s
	})
}

//
// ---- Shannon entropy family ----
//

// KullbackLeibler returns sum x ln(x/y).
func KullbackLeibler() measure.Func {
	return measure.New("kullbackleibler", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			s += measure.XLogXOverY(x[i], y[i])
		}
		return measure.Sanitize(s)
	})
}

// Jeffreys returns sum (x-y) ln(x/y).
func Jeffreys() measure.Func {
	return measure.New("jeffreys", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			if x[i] <= 0 || y[i] <= 0 {
				if x[i] == y[i] {
					continue
				}
				return math.Inf(1)
			}
			s += (x[i] - y[i]) * math.Log(x[i]/y[i])
		}
		return s
	})
}

// KDivergence returns sum x ln(2x/(x+y)).
func KDivergence() measure.Func {
	return measure.New("kdivergence", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			s += measure.XLogXOverY(x[i], (x[i]+y[i])/2)
		}
		return measure.Sanitize(s)
	})
}

// Topsoe returns sum [x ln(2x/(x+y)) + y ln(2y/(x+y))], a measure Table 2
// reports under MinMax.
func Topsoe() measure.Func {
	return measure.New("topsoe", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			m := (x[i] + y[i]) / 2
			s += measure.XLogXOverY(x[i], m) + measure.XLogXOverY(y[i], m)
		}
		return measure.Sanitize(s)
	})
}

// JensenShannon returns half the Topsoe divergence.
func JensenShannon() measure.Func {
	return measure.New("jensenshannon", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			m := (x[i] + y[i]) / 2
			s += measure.XLogXOverY(x[i], m) + measure.XLogXOverY(y[i], m)
		}
		return measure.Sanitize(s / 2)
	})
}

// JensenDifference returns sum [(x ln x + y ln y)/2 - m ln m], m = (x+y)/2.
func JensenDifference() measure.Func {
	return measure.New("jensendifference", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			m := (x[i] + y[i]) / 2
			s += (measure.XLogX(x[i])+measure.XLogX(y[i]))/2 - measure.XLogX(m)
		}
		return measure.Sanitize(s)
	})
}

//
// ---- Combination measures ----
//

// Taneja returns sum m * ln(m / sqrt(x*y)), m = (x+y)/2.
func Taneja() measure.Func {
	return measure.New("taneja", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			m := (x[i] + y[i]) / 2
			g := measure.SafeSqrt(x[i] * y[i])
			s += measure.XLogXOverY(m, g)
		}
		return measure.Sanitize(s)
	})
}

// KumarJohnson returns sum (x^2 - y^2)^2 / (2 (x*y)^{3/2}).
func KumarJohnson() measure.Func {
	return measure.New("kumarjohnson", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			num := x[i]*x[i] - y[i]*y[i]
			prod := x[i] * y[i]
			den := 2 * measure.SafeSqrt(prod*prod*prod)
			s += measure.Div(num*num, den)
		}
		return measure.Sanitize(s)
	})
}

// AvgL1Linf returns (sum|x-y| + max|x-y|) / 2, one of the measures Table 2
// finds significantly better than ED.
func AvgL1Linf() measure.Func {
	return measure.New("avgl1linf", func(x, y []float64) float64 {
		var sum, max float64
		for i := range x {
			d := math.Abs(x[i] - y[i])
			sum += d
			if d > max {
				max = d
			}
		}
		return (sum + max) / 2
	})
}

//
// ---- Vicissitude ("Emanon") measures proposed in the survey ----
//

// Emanon1 returns the Vicis-Wave Hedges distance sum |x-y| / min(x,y).
func Emanon1() measure.Func {
	return measure.New("emanon1", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			s += measure.Div(math.Abs(x[i]-y[i]), math.Min(x[i], y[i]))
		}
		return s
	})
}

// Emanon2 returns the Vicis-Symmetric chi-squared form sum (x-y)^2 / min^2.
func Emanon2() measure.Func {
	return measure.New("emanon2", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - y[i]
			mn := math.Min(x[i], y[i])
			s += measure.Div(d*d, mn*mn)
		}
		return s
	})
}

// Emanon3 returns the Vicis-Symmetric chi-squared form sum (x-y)^2 / min.
func Emanon3() measure.Func {
	return measure.New("emanon3", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - y[i]
			s += measure.Div(d*d, math.Min(x[i], y[i]))
		}
		return s
	})
}

// Emanon4 returns the Vicis-Symmetric chi-squared form sum (x-y)^2 / max —
// the measure Table 2 reports as significantly better than ED under MinMax.
func Emanon4() measure.Func {
	return measure.New("emanon4", func(x, y []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - y[i]
			s += measure.Div(d*d, math.Max(x[i], y[i]))
		}
		return s
	})
}

// Emanon5 returns the Max-Symmetric chi-squared distance
// max(sum (x-y)^2/x, sum (x-y)^2/y).
func Emanon5() measure.Func {
	return measure.New("emanon5", func(x, y []float64) float64 {
		var sx, sy float64
		for i := range x {
			d := x[i] - y[i]
			sx += measure.Div(d*d, x[i])
			sy += measure.Div(d*d, y[i])
		}
		return math.Max(sx, sy)
	})
}

// Emanon6 returns the Min-Symmetric chi-squared distance
// min(sum (x-y)^2/x, sum (x-y)^2/y). It is the survey's sixth vicissitude
// form, included beyond the paper's counted 52 for completeness.
func Emanon6() measure.Func {
	return measure.New("emanon6", func(x, y []float64) float64 {
		var sx, sy float64
		for i := range x {
			d := x[i] - y[i]
			sx += measure.Div(d*d, x[i])
			sy += measure.Div(d*d, y[i])
		}
		return math.Min(sx, sy)
	})
}

//
// ---- Measures beyond the survey ----
//

// DISSIM returns the smoothing approximation of the DISSIM integral
// distance: the trapezoidal integral over time of the point-wise distance
// function, which folds each point's successor into its contribution.
func DISSIM() measure.Func {
	return measure.New("dissim", func(x, y []float64) float64 {
		if len(x) < 2 {
			if len(x) == 1 {
				return math.Abs(x[0] - y[0])
			}
			return 0
		}
		var s float64
		prev := math.Abs(x[0] - y[0])
		for i := 1; i < len(x); i++ {
			cur := math.Abs(x[i] - y[i])
			s += (prev + cur) / 2
			prev = cur
		}
		return s
	})
}

// ASD returns the adaptive scaling distance: the Euclidean distance after
// rescaling the second series by the least-squares optimal factor
// a = <x, y>/<y, y> (the optimal-scaling comparison of Chu & Wong / Yang &
// Leskovec embedded into a lock-step measure).
func ASD() measure.Func {
	return measure.New("asd", func(x, y []float64) float64 {
		var xy, yy float64
		for i := range x {
			xy += x[i] * y[i]
			yy += y[i] * y[i]
		}
		a := 1.0
		if yy != 0 {
			a = xy / yy
		}
		var s float64
		for i := range x {
			d := x[i] - a*y[i]
			s += d * d
		}
		return math.Sqrt(s)
	})
}

// All returns the full lock-step inventory: the 52 measures counted in
// Table 1 plus the bonus Emanon6, with Minkowski instantiated at p = 0.5
// (its supervised grid lives in the eval package's parameter registry).
func All() []measure.Measure {
	return []measure.Measure{
		// Lp Minkowski family.
		Euclidean(), Manhattan(), Minkowski(0.5), Chebyshev(),
		// L1 family.
		Sorensen(), Gower(), Soergel(), Kulczynski(), Canberra(), Lorentzian(),
		// Intersection family.
		Intersection(), WaveHedges(), Czekanowski(), Motyka(), KulczynskiS(), Ruzicka(), Tanimoto(),
		// Inner product family.
		InnerProduct(), HarmonicMean(), Cosine(), KumarHassebrook(), Jaccard(), Dice(),
		// Fidelity family.
		Fidelity(), Bhattacharyya(), Hellinger(), Matusita(), SquaredChord(),
		// Squared L2 family.
		SquaredEuclidean(), PearsonChiSq(), NeymanChiSq(), SquaredChiSq(),
		ProbSymmetricChiSq(), Divergence(), Clark(), AdditiveSymmetricChiSq(),
		// Entropy family.
		KullbackLeibler(), Jeffreys(), KDivergence(), Topsoe(), JensenShannon(), JensenDifference(),
		// Combinations.
		Taneja(), KumarJohnson(), AvgL1Linf(),
		// Vicissitude.
		Emanon1(), Emanon2(), Emanon3(), Emanon4(), Emanon5(), Emanon6(),
		// Beyond the survey.
		DISSIM(), ASD(),
	}
}
