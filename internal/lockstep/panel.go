package lockstep

import (
	"math"

	"repro/internal/measure"
)

// This file implements the batched panel engine behind measure.
// PanelEvaluator for the lock-step measures whose accumulators fuse well:
// Euclidean, SquaredEuclidean, Manhattan, Lorentzian, Chebyshev, and
// Cosine. Candidates are processed four at a time with one accumulator per
// candidate, the candidate slices re-sliced to the query length up front so
// the inner loops run without bounds checks, and the query element loaded
// once per index and shared by all four lanes.
//
// Exactness: the per-candidate accumulation order is exactly the scalar
// loop's (index 0 to m-1, one running sum per candidate) — lane fusion
// interleaves independent accumulators but never reassociates within one —
// so panel results are bitwise-identical to per-pair Distance calls.
//
// Early abandoning: the UpTo kernels test every candidate's running value
// against the cutoff once per panelStride elements and abandon a 4-lane
// group only when ALL four lanes have reached the cutoff. An abandoned
// lane's output is its partial accumulation: at least the cutoff (the test
// just passed) and at most the final distance (the accumulators are
// monotone non-decreasing), exactly the EarlyAbandoning contract. Cosine's
// accumulators are not monotone, so it always computes exact values and
// ignores the cutoff.

// panelStride is the number of elements accumulated between cutoff checks:
// frequent enough to save work on long series, rare enough that the
// comparisons (and Euclidean's square roots) vanish in the loop cost.
const panelStride = 64

// Panel is a lock-step measure with a batched panel engine. It implements
// measure.Measure, measure.EarlyAbandoning, and measure.PanelEvaluator;
// the six convertible constructors in this package (Euclidean, Manhattan,
// Chebyshev, Lorentzian, SquaredEuclidean, Cosine) return it.
type Panel struct {
	name      string
	dist      func(x, y []float64) float64
	distUpTo  func(x, y []float64, cutoff float64) float64
	panelAll  func(q []float64, panel [][]float64, out []float64)
	panelUpTo func(q []float64, panel [][]float64, cutoff float64, out []float64)
}

// Name implements measure.Measure.
func (p Panel) Name() string { return p.name }

// Distance implements measure.Measure.
func (p Panel) Distance(x, y []float64) float64 {
	measure.CheckSameLength(x, y)
	return p.dist(x, y)
}

// DistanceUpTo implements measure.EarlyAbandoning; see the package comment
// on panel.go for the abandonment scheme.
func (p Panel) DistanceUpTo(x, y []float64, cutoff float64) float64 {
	measure.CheckSameLength(x, y)
	return p.distUpTo(x, y, cutoff)
}

// panelAccepts reports whether every candidate matches the query length
// (the decline condition of the PanelEvaluator contract).
func panelAccepts(q []float64, panel [][]float64) bool {
	for _, c := range panel {
		if len(c) != len(q) {
			return false
		}
	}
	return true
}

// PanelDistances implements measure.PanelEvaluator.
func (p Panel) PanelDistances(q []float64, panel [][]float64, out []float64) bool {
	if !panelAccepts(q, panel) {
		return false
	}
	p.panelAll(q, panel, out)
	return true
}

// PanelDistancesUpTo implements measure.PanelEvaluator.
func (p Panel) PanelDistancesUpTo(q []float64, panel [][]float64, cutoff float64, out []float64) bool {
	if !panelAccepts(q, panel) {
		return false
	}
	p.panelUpTo(q, panel, cutoff, out)
	return true
}

//
// ---- scalar kernels (shared by Distance and DistanceUpTo) ----
//

func ident(v float64) float64 { return v }

// sumSqUpTo accumulates sum (x-y)^2 with stride cutoff checks on
// finish(partial); finish is Sqrt for Euclidean and identity for
// SquaredEuclidean, so the check compares in the measure's own units.
func sumSqUpTo(x, y []float64, cutoff float64, finish func(float64) float64) float64 {
	var s float64
	m := len(x)
	i := 0
	for ; i+panelStride <= m; i += panelStride {
		for e := i; e < i+panelStride; e++ {
			d := x[e] - y[e]
			s += d * d
		}
		if v := finish(s); v >= cutoff {
			return v
		}
	}
	for ; i < m; i++ {
		d := x[i] - y[i]
		s += d * d
	}
	return finish(s)
}

func sumAbsUpTo(x, y []float64, cutoff float64) float64 {
	var s float64
	m := len(x)
	i := 0
	for ; i+panelStride <= m; i += panelStride {
		for e := i; e < i+panelStride; e++ {
			s += math.Abs(x[e] - y[e])
		}
		if s >= cutoff {
			return s
		}
	}
	for ; i < m; i++ {
		s += math.Abs(x[i] - y[i])
	}
	return s
}

func sumLog1pAbsUpTo(x, y []float64, cutoff float64) float64 {
	var s float64
	m := len(x)
	i := 0
	for ; i+panelStride <= m; i += panelStride {
		for e := i; e < i+panelStride; e++ {
			s += math.Log1p(math.Abs(x[e] - y[e]))
		}
		if s >= cutoff {
			return s
		}
	}
	for ; i < m; i++ {
		s += math.Log1p(math.Abs(x[i] - y[i]))
	}
	return s
}

func maxAbsUpTo(x, y []float64, cutoff float64) float64 {
	var s float64
	m := len(x)
	i := 0
	for ; i+panelStride <= m; i += panelStride {
		for e := i; e < i+panelStride; e++ {
			if d := math.Abs(x[e] - y[e]); d > s {
				s = d
			}
		}
		if s >= cutoff {
			return s
		}
	}
	for ; i < m; i++ {
		if d := math.Abs(x[i] - y[i]); d > s {
			s = d
		}
	}
	return s
}

func cosineDist(x, y []float64) float64 {
	var xy, xx, yy float64
	for i := range x {
		xy += x[i] * y[i]
		xx += x[i] * x[i]
		yy += y[i] * y[i]
	}
	den := math.Sqrt(xx) * math.Sqrt(yy)
	return 1 - measure.Div(xy, den)
}

//
// ---- panel kernels ----
//

// panelSumSqUpTo is the fused 4-lane sum-of-squares kernel (Euclidean and
// SquaredEuclidean). PanelDistances reuses it with cutoff = +Inf: the
// checks never fire (NaN and finite partials both compare false) and the
// accumulation is bitwise the same.
func panelSumSqUpTo(q []float64, panel [][]float64, cutoff float64, out []float64, finish func(float64) float64) {
	m := len(q)
	k := 0
	for ; k+4 <= len(panel); k += 4 {
		c0, c1, c2, c3 := panel[k][:m], panel[k+1][:m], panel[k+2][:m], panel[k+3][:m]
		var a0, a1, a2, a3 float64
		i := 0
		for ; i+panelStride <= m; i += panelStride {
			for e := i; e < i+panelStride; e++ {
				qv := q[e]
				d0 := qv - c0[e]
				a0 += d0 * d0
				d1 := qv - c1[e]
				a1 += d1 * d1
				d2 := qv - c2[e]
				a2 += d2 * d2
				d3 := qv - c3[e]
				a3 += d3 * d3
			}
			if finish(a0) >= cutoff && finish(a1) >= cutoff && finish(a2) >= cutoff && finish(a3) >= cutoff {
				break
			}
		}
		if i+panelStride > m {
			for ; i < m; i++ {
				qv := q[i]
				d0 := qv - c0[i]
				a0 += d0 * d0
				d1 := qv - c1[i]
				a1 += d1 * d1
				d2 := qv - c2[i]
				a2 += d2 * d2
				d3 := qv - c3[i]
				a3 += d3 * d3
			}
		}
		out[k], out[k+1], out[k+2], out[k+3] = finish(a0), finish(a1), finish(a2), finish(a3)
	}
	for ; k < len(panel); k++ {
		out[k] = sumSqUpTo(q, panel[k], cutoff, finish)
	}
}

// panelSumAbsUpTo is the fused 4-lane L1 kernel (Manhattan).
func panelSumAbsUpTo(q []float64, panel [][]float64, cutoff float64, out []float64) {
	m := len(q)
	k := 0
	for ; k+4 <= len(panel); k += 4 {
		c0, c1, c2, c3 := panel[k][:m], panel[k+1][:m], panel[k+2][:m], panel[k+3][:m]
		var a0, a1, a2, a3 float64
		i := 0
		for ; i+panelStride <= m; i += panelStride {
			for e := i; e < i+panelStride; e++ {
				qv := q[e]
				a0 += math.Abs(qv - c0[e])
				a1 += math.Abs(qv - c1[e])
				a2 += math.Abs(qv - c2[e])
				a3 += math.Abs(qv - c3[e])
			}
			if a0 >= cutoff && a1 >= cutoff && a2 >= cutoff && a3 >= cutoff {
				break
			}
		}
		if i+panelStride > m {
			for ; i < m; i++ {
				qv := q[i]
				a0 += math.Abs(qv - c0[i])
				a1 += math.Abs(qv - c1[i])
				a2 += math.Abs(qv - c2[i])
				a3 += math.Abs(qv - c3[i])
			}
		}
		out[k], out[k+1], out[k+2], out[k+3] = a0, a1, a2, a3
	}
	for ; k < len(panel); k++ {
		out[k] = sumAbsUpTo(q, panel[k], cutoff)
	}
}

// panelSumLog1pAbsUpTo is the fused 4-lane Lorentzian kernel.
func panelSumLog1pAbsUpTo(q []float64, panel [][]float64, cutoff float64, out []float64) {
	m := len(q)
	k := 0
	for ; k+4 <= len(panel); k += 4 {
		c0, c1, c2, c3 := panel[k][:m], panel[k+1][:m], panel[k+2][:m], panel[k+3][:m]
		var a0, a1, a2, a3 float64
		i := 0
		for ; i+panelStride <= m; i += panelStride {
			for e := i; e < i+panelStride; e++ {
				qv := q[e]
				a0 += math.Log1p(math.Abs(qv - c0[e]))
				a1 += math.Log1p(math.Abs(qv - c1[e]))
				a2 += math.Log1p(math.Abs(qv - c2[e]))
				a3 += math.Log1p(math.Abs(qv - c3[e]))
			}
			if a0 >= cutoff && a1 >= cutoff && a2 >= cutoff && a3 >= cutoff {
				break
			}
		}
		if i+panelStride > m {
			for ; i < m; i++ {
				qv := q[i]
				a0 += math.Log1p(math.Abs(qv - c0[i]))
				a1 += math.Log1p(math.Abs(qv - c1[i]))
				a2 += math.Log1p(math.Abs(qv - c2[i]))
				a3 += math.Log1p(math.Abs(qv - c3[i]))
			}
		}
		out[k], out[k+1], out[k+2], out[k+3] = a0, a1, a2, a3
	}
	for ; k < len(panel); k++ {
		out[k] = sumLog1pAbsUpTo(q, panel[k], cutoff)
	}
}

// panelMaxAbsUpTo is the fused 4-lane L_inf kernel (Chebyshev).
func panelMaxAbsUpTo(q []float64, panel [][]float64, cutoff float64, out []float64) {
	m := len(q)
	k := 0
	for ; k+4 <= len(panel); k += 4 {
		c0, c1, c2, c3 := panel[k][:m], panel[k+1][:m], panel[k+2][:m], panel[k+3][:m]
		var a0, a1, a2, a3 float64
		i := 0
		for ; i+panelStride <= m; i += panelStride {
			for e := i; e < i+panelStride; e++ {
				qv := q[e]
				if d := math.Abs(qv - c0[e]); d > a0 {
					a0 = d
				}
				if d := math.Abs(qv - c1[e]); d > a1 {
					a1 = d
				}
				if d := math.Abs(qv - c2[e]); d > a2 {
					a2 = d
				}
				if d := math.Abs(qv - c3[e]); d > a3 {
					a3 = d
				}
			}
			if a0 >= cutoff && a1 >= cutoff && a2 >= cutoff && a3 >= cutoff {
				break
			}
		}
		if i+panelStride > m {
			for ; i < m; i++ {
				qv := q[i]
				if d := math.Abs(qv - c0[i]); d > a0 {
					a0 = d
				}
				if d := math.Abs(qv - c1[i]); d > a1 {
					a1 = d
				}
				if d := math.Abs(qv - c2[i]); d > a2 {
					a2 = d
				}
				if d := math.Abs(qv - c3[i]); d > a3 {
					a3 = d
				}
			}
		}
		out[k], out[k+1], out[k+2], out[k+3] = a0, a1, a2, a3
	}
	for ; k < len(panel); k++ {
		out[k] = maxAbsUpTo(q, panel[k], cutoff)
	}
}

// panelCosine is the fused 4-lane cosine kernel. The query's self inner
// product is accumulated once (same index order as the scalar loop, so the
// value is bitwise-identical) and shared by every candidate. Cosine's
// accumulators are not monotone in the number of terms, so there is no
// UpTo variant: the cutoff is ignored and exact values are returned, which
// trivially satisfies the PanelDistancesUpTo contract.
func panelCosine(q []float64, panel [][]float64, out []float64) {
	m := len(q)
	var xx float64
	for _, v := range q {
		xx += v * v
	}
	sqxx := math.Sqrt(xx)
	k := 0
	for ; k+4 <= len(panel); k += 4 {
		c0, c1, c2, c3 := panel[k][:m], panel[k+1][:m], panel[k+2][:m], panel[k+3][:m]
		var xy0, yy0, xy1, yy1, xy2, yy2, xy3, yy3 float64
		for i, qv := range q {
			v0 := c0[i]
			xy0 += qv * v0
			yy0 += v0 * v0
			v1 := c1[i]
			xy1 += qv * v1
			yy1 += v1 * v1
			v2 := c2[i]
			xy2 += qv * v2
			yy2 += v2 * v2
			v3 := c3[i]
			xy3 += qv * v3
			yy3 += v3 * v3
		}
		out[k] = 1 - measure.Div(xy0, sqxx*math.Sqrt(yy0))
		out[k+1] = 1 - measure.Div(xy1, sqxx*math.Sqrt(yy1))
		out[k+2] = 1 - measure.Div(xy2, sqxx*math.Sqrt(yy2))
		out[k+3] = 1 - measure.Div(xy3, sqxx*math.Sqrt(yy3))
	}
	for ; k < len(panel); k++ {
		out[k] = cosineDist(q, panel[k])
	}
}
