package lockstep

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/measure"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-10 }

// positivePair returns two random series in (0.1, 1.1), the domain where
// every probability-style measure is well defined.
func positivePair(rng *rand.Rand, n int) (x, y []float64) {
	x = make([]float64, n)
	y = make([]float64, n)
	for i := range x {
		x[i] = 0.1 + rng.Float64()
		y[i] = 0.1 + rng.Float64()
	}
	return x, y
}

func TestEuclideanKnown(t *testing.T) {
	d := Euclidean().Distance([]float64{0, 0}, []float64{3, 4})
	if !almostEq(d, 5) {
		t.Fatalf("ED = %g, want 5", d)
	}
}

func TestManhattanKnown(t *testing.T) {
	d := Manhattan().Distance([]float64{1, 2, 3}, []float64{2, 0, 6})
	if !almostEq(d, 6) {
		t.Fatalf("L1 = %g, want 6", d)
	}
}

func TestChebyshevKnown(t *testing.T) {
	d := Chebyshev().Distance([]float64{1, 5}, []float64{2, 1})
	if !almostEq(d, 4) {
		t.Fatalf("Linf = %g, want 4", d)
	}
}

func TestMinkowskiSpecialCases(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 0, 3}
	if !almostEq(Minkowski(2).Distance(x, y), Euclidean().Distance(x, y)) {
		t.Error("Minkowski(2) != Euclidean")
	}
	if !almostEq(Minkowski(1).Distance(x, y), Manhattan().Distance(x, y)) {
		t.Error("Minkowski(1) != Manhattan")
	}
}

func TestLorentzianKnown(t *testing.T) {
	d := Lorentzian().Distance([]float64{0, 0}, []float64{math.E - 1, 0})
	if !almostEq(d, 1) {
		t.Fatalf("Lorentzian = %g, want 1", d)
	}
}

func TestSorensenEqualsCzekanowski(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := positivePair(rng, 40)
	if !almostEq(Sorensen().Distance(x, y), Czekanowski().Distance(x, y)) {
		t.Error("Sorensen and Czekanowski must coincide")
	}
}

func TestGowerIsScaledManhattan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := positivePair(rng, 25)
	if !almostEq(Gower().Distance(x, y)*25, Manhattan().Distance(x, y)) {
		t.Error("Gower must equal Manhattan / n")
	}
}

func TestIntersectionIsHalfL1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := positivePair(rng, 30)
	if !almostEq(Intersection().Distance(x, y)*2, Manhattan().Distance(x, y)) {
		t.Error("Intersection must equal L1/2")
	}
}

func TestRuzickaTanimotoRelation(t *testing.T) {
	// Tanimoto = (summax - summin)/summax; Ruzicka = 1 - summin/summax.
	// They are identical.
	rng := rand.New(rand.NewSource(4))
	x, y := positivePair(rng, 30)
	if !almostEq(Ruzicka().Distance(x, y), Tanimoto().Distance(x, y)) {
		t.Error("Ruzicka and Tanimoto must coincide on positive data")
	}
}

func TestMotykaRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := positivePair(rng, 30)
	d := Motyka().Distance(x, y)
	if d < 0.5 || d > 1 {
		t.Fatalf("Motyka = %g, want in [0.5, 1] for positive data", d)
	}
}

func TestCosineRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		d := Cosine().Distance(x, y)
		return d >= -1e-12 && d <= 2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCosineParallelAndOpposite(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{2, 4, 6}
	if !almostEq(Cosine().Distance(x, y), 0) {
		t.Error("parallel vectors should have cosine distance 0")
	}
	neg := []float64{-1, -2, -3}
	if !almostEq(Cosine().Distance(x, neg), 2) {
		t.Error("opposite vectors should have cosine distance 2")
	}
}

func TestInnerProductOrdering(t *testing.T) {
	x := []float64{1, 0, 1}
	close := []float64{1, 0, 1}
	far := []float64{-1, 0, -1}
	if InnerProduct().Distance(x, close) >= InnerProduct().Distance(x, far) {
		t.Error("inner product distance must rank aligned vectors closer")
	}
}

func TestJaccardDiceKnown(t *testing.T) {
	x := []float64{1, 1}
	y := []float64{1, 0}
	// sum(x-y)^2 = 1; sumxx=2 sumyy=1 sumxy=1.
	if !almostEq(Jaccard().Distance(x, y), 1.0/2.0) {
		t.Fatalf("Jaccard = %g, want 0.5", Jaccard().Distance(x, y))
	}
	if !almostEq(Dice().Distance(x, y), 1.0/3.0) {
		t.Fatalf("Dice = %g, want 1/3", Dice().Distance(x, y))
	}
}

func TestFidelityFamilyOnProbabilities(t *testing.T) {
	// On identical probability vectors: fidelity similarity = 1 -> dist 0,
	// Bhattacharyya = -ln(1) = 0, Hellinger/Matusita/SquaredChord = 0.
	p := []float64{0.2, 0.3, 0.5}
	for _, m := range []measure.Measure{Fidelity(), Bhattacharyya(), Hellinger(), Matusita(), SquaredChord()} {
		if d := m.Distance(p, p); !almostEq(d, 0) {
			t.Errorf("%s(p, p) = %g, want 0", m.Name(), d)
		}
	}
}

func TestHellingerMatusitaRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := positivePair(rng, 20)
	h := Hellinger().Distance(x, y)
	m := Matusita().Distance(x, y)
	if !almostEq(h, m*math.Sqrt2) {
		t.Fatalf("Hellinger %g != sqrt(2)*Matusita %g", h, m*math.Sqrt2)
	}
	sc := SquaredChord().Distance(x, y)
	if !almostEq(sc, m*m) {
		t.Fatalf("SquaredChord %g != Matusita^2 %g", sc, m*m)
	}
}

func TestChiSquaredFamilyRelations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y := positivePair(rng, 25)
	if !almostEq(ProbSymmetricChiSq().Distance(x, y), 2*SquaredChiSq().Distance(x, y)) {
		t.Error("ProbSymmetric must equal 2*SquaredChiSq")
	}
	if !almostEq(SquaredEuclidean().Distance(x, y), math.Pow(Euclidean().Distance(x, y), 2)) {
		t.Error("SquaredEuclidean must equal ED^2")
	}
	// Emanon5 >= Emanon6 by construction.
	if Emanon5().Distance(x, y) < Emanon6().Distance(x, y) {
		t.Error("Emanon5 (max) must be >= Emanon6 (min)")
	}
	// Pearson with roles swapped equals Neyman.
	if !almostEq(PearsonChiSq().Distance(x, y), NeymanChiSq().Distance(y, x)) {
		t.Error("Pearson(x,y) must equal Neyman(y,x)")
	}
}

func TestEntropyFamilyOnProbabilities(t *testing.T) {
	p := []float64{0.1, 0.4, 0.5}
	q := []float64{0.3, 0.3, 0.4}
	kl := KullbackLeibler().Distance(p, q)
	if kl <= 0 {
		t.Fatalf("KL(p||q) = %g, want > 0 for p != q", kl)
	}
	if d := KullbackLeibler().Distance(p, p); !almostEq(d, 0) {
		t.Fatalf("KL(p||p) = %g", d)
	}
	// Jeffreys is the symmetrized KL: KL(p||q) + KL(q||p).
	j := Jeffreys().Distance(p, q)
	if !almostEq(j, kl+KullbackLeibler().Distance(q, p)) {
		t.Fatalf("Jeffreys %g != symmetrized KL", j)
	}
	// Topsoe = 2 * JensenShannon.
	if !almostEq(Topsoe().Distance(p, q), 2*JensenShannon().Distance(p, q)) {
		t.Error("Topsoe must equal 2*JS")
	}
	// Jensen-Shannon equals Jensen difference on probabilities.
	if !almostEq(JensenShannon().Distance(p, q), JensenDifference().Distance(p, q)) {
		t.Error("JS must equal Jensen difference")
	}
}

func TestEntropyGuardsOnZScoredData(t *testing.T) {
	// Entropy measures on data with non-positive values must not NaN: they
	// must return +Inf (ranked last), as the evaluation layer requires.
	x := []float64{-1, 0, 1}
	y := []float64{1, -1, 0}
	for _, m := range []measure.Measure{
		KullbackLeibler(), Jeffreys(), KDivergence(), Topsoe(),
		JensenShannon(), JensenDifference(), Taneja(), KumarJohnson(),
	} {
		d := m.Distance(x, y)
		if math.IsNaN(d) {
			t.Errorf("%s returned NaN on signed data, want +Inf or finite", m.Name())
		}
	}
}

func TestAllMeasuresTotalOnRandomData(t *testing.T) {
	// No measure may return NaN on any input; +Inf is the only legal
	// "undefined" marker.
	rng := rand.New(rand.NewSource(8))
	inputs := [][2][]float64{}
	for trial := 0; trial < 5; trial++ {
		n := 4 + rng.Intn(60)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 3
			y[i] = rng.NormFloat64() * 3
		}
		inputs = append(inputs, [2][]float64{x, y})
	}
	// Adversarial pairs: zeros, equal series, sign flips.
	inputs = append(inputs,
		[2][]float64{{0, 0, 0}, {0, 0, 0}},
		[2][]float64{{1, 2, 3}, {1, 2, 3}},
		[2][]float64{{-1, 2, -3}, {3, -2, 1}},
		[2][]float64{{0, 1, 0}, {1, 0, 1}},
	)
	for _, m := range All() {
		for _, in := range inputs {
			d := m.Distance(in[0], in[1])
			if math.IsNaN(d) {
				t.Errorf("%s returned NaN on %v vs %v", m.Name(), in[0], in[1])
			}
		}
	}
}

func TestAllMeasuresZeroOnIdenticalPositiveSeries(t *testing.T) {
	// On identical strictly positive data every distance must be <= its
	// value on distinct data, and metrics should be exactly 0. Similarity
	// negations (inner product family) are exempt from the zero check but
	// must still rank the identical pair first.
	rng := rand.New(rand.NewSource(9))
	x, y := positivePair(rng, 30)
	for _, m := range All() {
		same := m.Distance(x, x)
		diff := m.Distance(x, y)
		if same > diff+1e-9 {
			t.Errorf("%s: d(x,x)=%g > d(x,y)=%g", m.Name(), same, diff)
		}
	}
}

func TestAllMeasureNamesUnique(t *testing.T) {
	all := All()
	if len(all) != 53 { // 52 counted + Emanon6 bonus
		t.Fatalf("All() has %d measures, want 53", len(all))
	}
	seen := map[string]bool{}
	for _, m := range all {
		if seen[m.Name()] {
			t.Errorf("duplicate measure name %s", m.Name())
		}
		seen[m.Name()] = true
	}
}

func TestSymmetryOfSymmetricMeasures(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x, y := positivePair(rng, 30)
	symmetric := []measure.Measure{
		Euclidean(), Manhattan(), Chebyshev(), Minkowski(3), Sorensen(),
		Gower(), Soergel(), Kulczynski(), Canberra(), Lorentzian(),
		Intersection(), WaveHedges(), Czekanowski(), Motyka(), KulczynskiS(),
		Ruzicka(), Tanimoto(), InnerProduct(), HarmonicMean(), Cosine(),
		KumarHassebrook(), Jaccard(), Dice(), Fidelity(), Bhattacharyya(),
		Hellinger(), Matusita(), SquaredChord(), SquaredEuclidean(),
		SquaredChiSq(), ProbSymmetricChiSq(), Divergence(), Clark(),
		AdditiveSymmetricChiSq(), Jeffreys(), Topsoe(), JensenShannon(),
		JensenDifference(), Taneja(), KumarJohnson(), AvgL1Linf(),
		Emanon5(), Emanon6(), DISSIM(),
	}
	for _, m := range symmetric {
		if !almostEq(m.Distance(x, y), m.Distance(y, x)) {
			t.Errorf("%s is not symmetric: %g vs %g", m.Name(), m.Distance(x, y), m.Distance(y, x))
		}
	}
}

func TestTriangleInequalityForMetrics(t *testing.T) {
	// ED, L1, Chebyshev, and Lorentzian are metrics: d(x,z) <= d(x,y)+d(y,z).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		z := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
			z[i] = rng.NormFloat64()
		}
		for _, m := range []measure.Measure{Euclidean(), Manhattan(), Chebyshev(), Lorentzian()} {
			if m.Distance(x, z) > m.Distance(x, y)+m.Distance(y, z)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDISSIMKnown(t *testing.T) {
	// |diff| = [1, 3, 1] -> trapezoids (1+3)/2 + (3+1)/2 = 4.
	d := DISSIM().Distance([]float64{1, 1, 1}, []float64{2, 4, 0})
	if !almostEq(d, 4) {
		t.Fatalf("DISSIM = %g, want 4", d)
	}
	// Degenerate lengths.
	if !almostEq(DISSIM().Distance([]float64{3}, []float64{1}), 2) {
		t.Fatal("single-point DISSIM should be |diff|")
	}
	if DISSIM().Distance(nil, nil) != 0 {
		t.Fatal("empty DISSIM should be 0")
	}
}

func TestASDScaleInvariance(t *testing.T) {
	x := []float64{1, -2, 3, 0.5}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = -2.5 * x[i]
	}
	if d := ASD().Distance(x, y); d > 1e-9 {
		t.Fatalf("ASD(x, -2.5x) = %g, want ~0", d)
	}
	zero := []float64{0, 0, 0, 0}
	if d := ASD().Distance(x, zero); math.IsNaN(d) {
		t.Fatal("ASD with zero series must be defined")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Euclidean().Distance([]float64{1, 2}, []float64{1})
}

func TestAvgL1LinfKnown(t *testing.T) {
	// |diff| = [1, 4]: (5 + 4)/2 = 4.5.
	d := AvgL1Linf().Distance([]float64{0, 0}, []float64{1, 4})
	if !almostEq(d, 4.5) {
		t.Fatalf("AvgL1Linf = %g, want 4.5", d)
	}
}

func TestEmanonGuardsAtZero(t *testing.T) {
	// min(x,y)=0 denominators must not produce NaN.
	x := []float64{0, 1}
	y := []float64{1, 1}
	for _, m := range []measure.Measure{Emanon1(), Emanon2(), Emanon3(), Emanon4()} {
		if d := m.Distance(x, y); math.IsNaN(d) {
			t.Errorf("%s NaN at zero denominators", m.Name())
		}
	}
}
