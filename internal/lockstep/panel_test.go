package lockstep

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// panels returns the six panel-capable lock-step measures.
func panels() []Panel {
	return []Panel{Euclidean(), Manhattan(), Chebyshev(), Lorentzian(), SquaredEuclidean(), Cosine()}
}

// sameBits is bitwise equality with NaN == NaN (identical op sequences
// produce identical NaN payloads, but keep the check independent of that).
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) || (math.IsNaN(a) && math.IsNaN(b))
}

func randPanel(rng *rand.Rand, count, m int) ([]float64, [][]float64) {
	series := func() []float64 {
		s := make([]float64, m)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		return s
	}
	q := series()
	panel := make([][]float64, count)
	for k := range panel {
		panel[k] = series()
	}
	return q, panel
}

// TestPanelBitwiseScalar: PanelDistances must match per-pair Distance
// bitwise across panel sizes that exercise the 4-lane groups and the tail,
// and lengths that exercise the stride loop and its remainder.
func TestPanelBitwiseScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, m := range []int{0, 1, 5, 63, 64, 65, 129} {
		for _, count := range []int{0, 1, 3, 4, 5, 9} {
			q, panel := randPanel(rng, count, m)
			for _, p := range panels() {
				out := make([]float64, count)
				if !p.PanelDistances(q, panel, out) {
					t.Fatalf("%s m=%d count=%d: declined uniform panel", p.Name(), m, count)
				}
				for k := range panel {
					if want := p.Distance(q, panel[k]); !sameBits(out[k], want) {
						t.Fatalf("%s m=%d k=%d: panel %v != scalar %v", p.Name(), m, k, out[k], want)
					}
				}
			}
		}
	}
}

// TestPanelBitwiseNonFinite: the bitwise contract holds through NaN and
// Inf values too — the kernels run the same ops as the scalar loops.
func TestPanelBitwiseNonFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	q, panel := randPanel(rng, 6, 80)
	q[3] = math.NaN()
	panel[1][0] = math.Inf(1)
	panel[4][79] = math.Inf(-1)
	panel[5][10] = math.NaN()
	for _, p := range panels() {
		out := make([]float64, len(panel))
		if !p.PanelDistances(q, panel, out) {
			t.Fatalf("%s: declined", p.Name())
		}
		for k := range panel {
			if want := p.Distance(q, panel[k]); !sameBits(out[k], want) {
				t.Fatalf("%s k=%d: panel %v != scalar %v", p.Name(), k, out[k], want)
			}
		}
	}
}

// TestPanelUpToContract checks PanelDistancesUpTo per candidate: exact
// below the cutoff, a certified bound in [cutoff, distance] at or above it.
func TestPanelUpToContract(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	q, panel := randPanel(rng, 9, 200)
	panel[2] = append([]float64(nil), q...) // zero-distance candidate
	for _, p := range panels() {
		exact := make([]float64, len(panel))
		for k := range panel {
			exact[k] = p.Distance(q, panel[k])
		}
		sorted := append([]float64(nil), exact...)
		sort.Float64s(sorted)
		for _, cutoff := range []float64{math.Inf(1), sorted[len(sorted)/2], sorted[0], 0} {
			out := make([]float64, len(panel))
			if !p.PanelDistancesUpTo(q, panel, cutoff, out) {
				t.Fatalf("%s: declined", p.Name())
			}
			for k := range panel {
				switch {
				case exact[k] < cutoff:
					if !sameBits(out[k], exact[k]) {
						t.Fatalf("%s cutoff=%v k=%d: below-cutoff value %v != exact %v",
							p.Name(), cutoff, k, out[k], exact[k])
					}
				default:
					if out[k] < cutoff || out[k] > exact[k] {
						t.Fatalf("%s cutoff=%v k=%d: %v outside [cutoff, %v]",
							p.Name(), cutoff, k, out[k], exact[k])
					}
				}
			}
		}
	}
}

// TestPanelDeclinesRagged: a candidate of a different length makes both
// panel calls decline without touching out.
func TestPanelDeclinesRagged(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	q, panel := randPanel(rng, 5, 40)
	panel[3] = panel[3][:39]
	for _, p := range panels() {
		out := make([]float64, len(panel))
		if p.PanelDistances(q, panel, out) {
			t.Fatalf("%s: accepted ragged panel", p.Name())
		}
		if p.PanelDistancesUpTo(q, panel, 1.0, out) {
			t.Fatalf("%s: UpTo accepted ragged panel", p.Name())
		}
	}
}

// TestScalarUpToContract pins DistanceUpTo for the six panels, including
// the negative-distance corner (cosine of identical series rounds to
// -2^-52-ish, putting any cutoff in (d, 0] above the distance).
func TestScalarUpToContract(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	q, panel := randPanel(rng, 1, 300)
	y := panel[0]
	for _, p := range panels() {
		d := p.Distance(q, y)
		for _, cutoff := range []float64{math.Inf(1), d * 1.5, d, d / 2, 0} {
			v := p.DistanceUpTo(q, y, cutoff)
			if d < cutoff {
				if !sameBits(v, d) {
					t.Fatalf("%s cutoff=%v: %v != exact %v", p.Name(), cutoff, v, d)
				}
			} else if v < cutoff || v > d {
				t.Fatalf("%s cutoff=%v: %v outside [cutoff, %v]", p.Name(), cutoff, v, d)
			}
		}
		self := p.DistanceUpTo(q, q, 0.5)
		if want := p.Distance(q, q); want < 0.5 && !sameBits(self, want) {
			t.Fatalf("%s: self distance %v != %v", p.Name(), self, want)
		}
	}
}

func BenchmarkHotloopsPanelPerPair(b *testing.B) {
	rng := rand.New(rand.NewSource(41))
	q, panel := randPanel(rng, 128, 256)
	for _, p := range []Panel{Euclidean(), Lorentzian()} {
		b.Run(p.Name(), func(b *testing.B) {
			out := make([]float64, len(panel))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for k := range panel {
					out[k] = p.Distance(q, panel[k])
				}
			}
		})
	}
}

func BenchmarkHotloopsPanelBatched(b *testing.B) {
	rng := rand.New(rand.NewSource(41))
	q, panel := randPanel(rng, 128, 256)
	for _, p := range []Panel{Euclidean(), Lorentzian()} {
		b.Run(p.Name(), func(b *testing.B) {
			out := make([]float64, len(panel))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !p.PanelDistances(q, panel, out) {
					b.Fatal("declined")
				}
			}
		})
	}
}

func BenchmarkHotloopsPanelAbandon(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	q, panel := randPanel(rng, 128, 256)
	eu := Euclidean()
	// A tight cutoff: the 1-NN distance of the panel, so most candidates
	// abandon at the first stride check.
	cutoff := math.Inf(1)
	for k := range panel {
		if d := eu.Distance(q, panel[k]); d < cutoff {
			cutoff = d
		}
	}
	cutoff *= 1.01
	out := make([]float64, len(panel))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !eu.PanelDistancesUpTo(q, panel, cutoff, out) {
			b.Fatal("declined")
		}
	}
}
