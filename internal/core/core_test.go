package core

import (
	"testing"
)

func TestRegistryCardinalitiesMatchTable1(t *testing.T) {
	// Table 1: 52 lock-step (we register 53 base names incl. Emanon6),
	// 4 sliding, 7 elastic, 4 kernel, 4 embedding.
	want := map[Category]int{
		LockStep:  53,
		Sliding:   4,
		Elastic:   7,
		Kernel:    4,
		Embedding: 4,
	}
	for c, n := range want {
		if got := len(ByCategory(c)); got != n {
			t.Errorf("category %s has %d entries, want %d", c, got, n)
		}
	}
	if got := len(Names()); got != 72 {
		t.Errorf("total registry size %d, want 72", got)
	}
}

func TestLookupKnownMeasures(t *testing.T) {
	for _, name := range []string{"euclidean", "lorentzian", "nccc", "dtw", "msm", "kdtw", "grail"} {
		e, err := Lookup(name)
		if err != nil {
			t.Errorf("Lookup(%s): %v", name, err)
			continue
		}
		if e.Name != name {
			t.Errorf("Lookup(%s).Name = %s", name, e.Name)
		}
	}
	// Case-insensitive.
	if _, err := Lookup("DTW"); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("expected error for unknown measure")
	}
}

func TestTunableMeasuresHaveGrids(t *testing.T) {
	tunable := []string{"minkowski", "dtw", "lcss", "edr", "msm", "twe", "swale", "rbf", "sink", "gak", "kdtw"}
	for _, name := range tunable {
		e, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(e.Grid.Candidates) == 0 {
			t.Errorf("%s should carry a Table 4 grid", name)
		}
	}
	// Parameter-free examples.
	for _, name := range []string{"euclidean", "lorentzian", "nccc"} {
		e, _ := Lookup(name)
		if len(e.Grid.Candidates) != 0 {
			t.Errorf("%s should be parameter-free", name)
		}
	}
}

func TestEmbeddingEntriesHaveNoInstance(t *testing.T) {
	for _, e := range ByCategory(Embedding) {
		if e.Measure != nil {
			t.Errorf("embedding %s should require fitting (nil Measure)", e.Name)
		}
	}
	for _, c := range []Category{LockStep, Sliding, Elastic, Kernel} {
		for _, e := range ByCategory(c) {
			if e.Measure == nil {
				t.Errorf("%s/%s missing default instance", c, e.Name)
			}
		}
	}
}

func TestNewEmbedder(t *testing.T) {
	for _, name := range []string{"grail", "rws", "spiral", "sidl"} {
		e, err := NewEmbedder(name, 1)
		if err != nil {
			t.Errorf("NewEmbedder(%s): %v", name, err)
			continue
		}
		if e == nil {
			t.Errorf("NewEmbedder(%s) returned nil", name)
		}
	}
	if _, err := NewEmbedder("unknown", 1); err == nil {
		t.Error("expected error for unknown embedder")
	}
}

func TestCategoriesOrder(t *testing.T) {
	cs := Categories()
	if len(cs) != 5 || cs[0] != LockStep || cs[4] != Embedding {
		t.Fatalf("categories = %v", cs)
	}
}

func TestDefaultInstancesComputeDistances(t *testing.T) {
	x := []float64{0, 1, 0, -1, 0, 1, 0, -1}
	y := []float64{1, 0, -1, 0, 1, 0, -1, 0}
	for _, c := range []Category{LockStep, Sliding, Elastic, Kernel} {
		for _, e := range ByCategory(c) {
			d := e.Measure.Distance(x, y)
			if d != d { // NaN check
				t.Errorf("%s returned NaN", e.Name)
			}
		}
	}
}

func TestBaseName(t *testing.T) {
	if baseName("minkowski[p=0.5]") != "minkowski" {
		t.Error("suffix not stripped")
	}
	if baseName("euclidean") != "euclidean" {
		t.Error("plain name altered")
	}
}
