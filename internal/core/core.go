// Package core ties the five measure categories together into a single
// registry: every measure of the paper is resolvable by name, annotated
// with its category and (when tunable) its Table 4 parameter grid. The
// command-line tools and examples use the registry to select measures
// without hard-coding the inventory.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/elastic"
	"repro/internal/embedding"
	"repro/internal/eval"
	"repro/internal/kernel"
	"repro/internal/lockstep"
	"repro/internal/measure"
	"repro/internal/sliding"
)

// Category is one of the paper's five measure categories.
type Category string

// The five categories of Table 1.
const (
	LockStep  Category = "lock-step"
	Sliding   Category = "sliding"
	Elastic   Category = "elastic"
	Kernel    Category = "kernel"
	Embedding Category = "embedding"
)

// Entry describes one registered measure.
type Entry struct {
	// Name is the registry key (the base name, without parameter suffixes).
	Name string
	// Category is the measure's Table 1 category.
	Category Category
	// Measure is the default (unsupervised) instance; nil for embeddings,
	// which require fitting (use NewEmbedder).
	Measure measure.Measure
	// Grid is the Table 4 supervised grid; empty Candidates when the
	// measure is parameter-free.
	Grid eval.Grid
}

// registry holds every measure keyed by base name.
var registry = buildRegistry()

func buildRegistry() map[string]Entry {
	r := map[string]Entry{}
	add := func(e Entry) {
		if _, dup := r[e.Name]; dup {
			panic(fmt.Sprintf("core: duplicate registry entry %q", e.Name))
		}
		r[e.Name] = e
	}
	// Lock-step: every measure of the survey inventory, parameter-free
	// except Minkowski.
	for _, m := range lockstep.All() {
		name := baseName(m.Name())
		e := Entry{Name: name, Category: LockStep, Measure: m}
		if name == "minkowski" {
			e.Grid = eval.MinkowskiGrid()
		}
		add(e)
	}
	// Sliding.
	for _, m := range sliding.All() {
		add(Entry{Name: m.Name(), Category: Sliding, Measure: m})
	}
	// Elastic: default instances from the unsupervised rows of Table 5.
	add(Entry{Name: "dtw", Category: Elastic, Measure: elastic.DTW{DeltaPercent: 10}, Grid: eval.DTWGrid()})
	add(Entry{Name: "lcss", Category: Elastic, Measure: elastic.LCSS{DeltaPercent: 5, Epsilon: 0.2}, Grid: eval.LCSSGrid()})
	add(Entry{Name: "edr", Category: Elastic, Measure: elastic.EDR{Epsilon: 0.1}, Grid: eval.EDRGrid()})
	add(Entry{Name: "erp", Category: Elastic, Measure: elastic.ERP{G: 0}, Grid: eval.ERPGrid()})
	add(Entry{Name: "msm", Category: Elastic, Measure: elastic.MSM{C: 0.5}, Grid: eval.MSMGrid()})
	add(Entry{Name: "twe", Category: Elastic, Measure: elastic.TWE{Lambda: 1, Nu: 0.0001}, Grid: eval.TWEGrid()})
	add(Entry{Name: "swale", Category: Elastic, Measure: elastic.Swale{Epsilon: 0.2, P: 5, R: 1}, Grid: eval.SwaleGrid()})
	// Kernels: defaults from the unsupervised rows of Table 6.
	add(Entry{Name: "rbf", Category: Kernel, Measure: kernel.RBF{Gamma: 2}, Grid: eval.RBFGrid()})
	add(Entry{Name: "sink", Category: Kernel, Measure: kernel.SINK{Gamma: 5}, Grid: eval.SINKGrid()})
	add(Entry{Name: "gak", Category: Kernel, Measure: kernel.GAK{Sigma: 0.1}, Grid: eval.GAKGrid()})
	add(Entry{Name: "kdtw", Category: Kernel, Measure: kernel.KDTW{Gamma: 0.125}, Grid: eval.KDTWGrid()})
	// Embeddings: measures require fitting; registered without an instance.
	for _, name := range []string{"grail", "rws", "spiral", "sidl"} {
		add(Entry{Name: name, Category: Embedding})
	}
	return r
}

// baseName strips a parameter suffix: "minkowski[p=0.5]" -> "minkowski".
func baseName(name string) string {
	if i := strings.IndexByte(name, '['); i >= 0 {
		return name[:i]
	}
	return name
}

// Lookup resolves a measure entry by base name (case-insensitive).
func Lookup(name string) (Entry, error) {
	e, ok := registry[strings.ToLower(name)]
	if !ok {
		return Entry{}, fmt.Errorf("core: unknown measure %q (see Names())", name)
	}
	return e, nil
}

// Names returns all registered base names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByCategory returns the entries of one category, sorted by name.
func ByCategory(c Category) []Entry {
	var out []Entry
	for _, e := range registry {
		if e.Category == c {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Categories returns the five categories in the paper's order.
func Categories() []Category {
	return []Category{LockStep, Sliding, Elastic, Kernel, Embedding}
}

// NewEmbedder instantiates an embedding measure's embedder by name at the
// paper's recommended parameters, with the given seed.
func NewEmbedder(name string, seed int64) (embedding.Embedder, error) {
	switch strings.ToLower(name) {
	case "grail":
		return &embedding.GRAIL{Gamma: 5, Seed: seed}, nil
	case "rws":
		return &embedding.RWS{Gamma: 1, DMax: 25, Seed: seed}, nil
	case "spiral":
		return &embedding.SPIRAL{Seed: seed}, nil
	case "sidl":
		return &embedding.SIDL{Lambda: 0.1, R: 0.25, Seed: seed}, nil
	default:
		return nil, fmt.Errorf("core: unknown embedding %q", name)
	}
}
