package oracle

import (
	"math"

	"repro/internal/elastic"
	"repro/internal/kernel"
	"repro/internal/lockstep"
	"repro/internal/measure"
	"repro/internal/sliding"
)

// Numeric tolerance policy (documented in DESIGN.md):
//
//   - TolExact: measures whose optimized and reference implementations
//     perform the same floating-point operations in the same order (plain
//     lock-step loops, rolling-row DPs versus full-matrix DPs). The only
//     divergence admitted is compiler instruction fusion, so the bar is one
//     part in 1e12, relative.
//   - TolLogSpace: log-space or product-form kernel recursions (GAK, KDTW),
//     where exp/log rounding compounds across O(m^2) cells.
//   - TolFFT: measures computed through the FFT cross-correlation versus
//     the direct O(m^2) sliding sums — error grows with transform length.
const (
	TolExact    = 1e-12
	TolLogSpace = 1e-9
	TolFFT      = 1e-6
)

// Pair couples an optimized measure with its reference implementation.
type Pair struct {
	M   measure.Measure
	Ref Ref
	// Tol is the relative agreement tolerance: values a, b agree when
	// |a-b| <= Tol*max(1, |a|, |b|), both are +Inf, or they are bitwise
	// identical.
	Tol float64
	// FiniteOnly marks measures whose optimized path propagates NaN/Inf
	// globally where the direct path localizes it (anything routed through
	// an FFT: one non-finite sample poisons every lag of the transform but
	// only some lags of the direct sums). Oracle agreement is skipped on
	// non-finite or overflow-scale inputs; all other checks still run.
	FiniteOnly bool
}

// term builds a lock-step Pair from a per-index term summed by both sides.
func term(m measure.Measure, f func(a, b float64) float64) Pair {
	return Pair{M: m, Ref: sum(f), Tol: TolExact}
}

// Pairs returns the full differential-testing registry: every measure the
// library registers (the All() inventories of the lockstep, sliding,
// elastic, and kernel packages), the elastic extensions, and extra
// parameterizations covering band-width edge cases. Embedding measures need
// a fitted training split and are exercised separately by the harness
// tests.
func Pairs() []Pair {
	abs := math.Abs
	pairs := []Pair{
		// Lp Minkowski family.
		{M: lockstep.Euclidean(), Ref: refEuclidean, Tol: TolExact},
		term(lockstep.Manhattan(), func(a, b float64) float64 { return abs(a - b) }),
		{M: lockstep.Minkowski(0.5), Ref: refMinkowski(0.5), Tol: TolExact},
		{M: lockstep.Minkowski(3), Ref: refMinkowski(3), Tol: TolExact},
		{M: lockstep.Chebyshev(), Ref: refChebyshev, Tol: TolExact},

		// L1 family.
		{M: lockstep.Sorensen(), Tol: TolExact,
			Ref: ratio(func(a, b float64) float64 { return abs(a - b) },
				func(a, b float64) float64 { return a + b })},
		{M: lockstep.Gower(), Ref: refGower, Tol: TolExact},
		{M: lockstep.Soergel(), Tol: TolExact,
			Ref: ratio(func(a, b float64) float64 { return abs(a - b) }, math.Max)},
		{M: lockstep.Kulczynski(), Tol: TolExact,
			Ref: ratio(func(a, b float64) float64 { return abs(a - b) }, math.Min)},
		term(lockstep.Canberra(), func(a, b float64) float64 { return div(abs(a-b), abs(a+b)) }),
		term(lockstep.Lorentzian(), func(a, b float64) float64 { return math.Log1p(abs(a - b)) }),

		// Intersection family.
		{M: lockstep.Intersection(), Tol: TolExact,
			Ref: func(x, y []float64) float64 {
				var s float64
				for i := range x {
					s += abs(x[i] - y[i])
				}
				return s / 2
			}},
		term(lockstep.WaveHedges(), func(a, b float64) float64 { return div(abs(a-b), math.Max(a, b)) }),
		{M: lockstep.Czekanowski(), Tol: TolExact,
			Ref: ratio(func(a, b float64) float64 { return abs(a - b) },
				func(a, b float64) float64 { return a + b })},
		{M: lockstep.Motyka(), Tol: TolExact,
			Ref: ratio(math.Max, func(a, b float64) float64 { return a + b })},
		{M: lockstep.KulczynskiS(), Tol: TolExact,
			Ref: ratio(func(a, b float64) float64 { return abs(a - b) }, math.Min)},
		{M: lockstep.Ruzicka(), Tol: TolExact,
			Ref: func(x, y []float64) float64 { return 1 - ratio(math.Min, math.Max)(x, y) }},
		{M: lockstep.Tanimoto(), Tol: TolExact,
			Ref: ratio(func(a, b float64) float64 { return math.Max(a, b) - math.Min(a, b) }, math.Max)},

		// Inner product family.
		{M: lockstep.InnerProduct(), Tol: TolExact,
			Ref: func(x, y []float64) float64 {
				var s float64
				for i := range x {
					s += x[i] * y[i]
				}
				return -s
			}},
		{M: lockstep.HarmonicMean(), Tol: TolExact,
			Ref: func(x, y []float64) float64 {
				var s float64
				for i := range x {
					s += div(x[i]*y[i], x[i]+y[i])
				}
				return -2 * s
			}},
		{M: lockstep.Cosine(), Ref: refCosine, Tol: TolExact},
		{M: lockstep.KumarHassebrook(), Ref: refKumarHassebrook, Tol: TolExact},
		{M: lockstep.Jaccard(), Ref: refJaccard, Tol: TolExact},
		{M: lockstep.Dice(), Ref: refDice, Tol: TolExact},

		// Fidelity family.
		{M: lockstep.Fidelity(), Tol: TolExact,
			Ref: func(x, y []float64) float64 {
				var s float64
				for i := range x {
					s += safeSqrt(x[i] * y[i])
				}
				return sanitizeNaN(1 - s)
			}},
		{M: lockstep.Bhattacharyya(), Ref: refBhattacharyya, Tol: TolExact},
		{M: lockstep.Hellinger(), Tol: TolExact,
			Ref: func(x, y []float64) float64 {
				return sanitizeNaN(math.Sqrt(2 * sum(sqrtDiffSq)(x, y)))
			}},
		{M: lockstep.Matusita(), Tol: TolExact,
			Ref: func(x, y []float64) float64 {
				return sanitizeNaN(math.Sqrt(sum(sqrtDiffSq)(x, y)))
			}},
		{M: lockstep.SquaredChord(), Tol: TolExact,
			Ref: func(x, y []float64) float64 { return sanitizeNaN(sum(sqrtDiffSq)(x, y)) }},

		// Squared L2 (chi-squared) family.
		term(lockstep.SquaredEuclidean(), func(a, b float64) float64 { return (a - b) * (a - b) }),
		term(lockstep.PearsonChiSq(), func(a, b float64) float64 { return div((a-b)*(a-b), b) }),
		term(lockstep.NeymanChiSq(), func(a, b float64) float64 { return div((a-b)*(a-b), a) }),
		term(lockstep.SquaredChiSq(), func(a, b float64) float64 { return div((a-b)*(a-b), a+b) }),
		{M: lockstep.ProbSymmetricChiSq(), Tol: TolExact,
			Ref: func(x, y []float64) float64 {
				return 2 * sum(func(a, b float64) float64 { return div((a-b)*(a-b), a+b) })(x, y)
			}},
		{M: lockstep.Divergence(), Tol: TolExact,
			Ref: func(x, y []float64) float64 {
				return 2 * sum(func(a, b float64) float64 { return div((a-b)*(a-b), (a+b)*(a+b)) })(x, y)
			}},
		{M: lockstep.Clark(), Tol: TolExact,
			Ref: func(x, y []float64) float64 {
				return math.Sqrt(sum(func(a, b float64) float64 {
					r := div(abs(a-b), abs(a+b))
					return r * r
				})(x, y))
			}},
		term(lockstep.AdditiveSymmetricChiSq(), func(a, b float64) float64 {
			return div((a-b)*(a-b)*(a+b), a*b)
		}),

		// Shannon entropy family.
		{M: lockstep.KullbackLeibler(), Tol: TolExact,
			Ref: func(x, y []float64) float64 { return sanitizeNaN(sum(xlogxOverY)(x, y)) }},
		{M: lockstep.Jeffreys(), Ref: refJeffreys, Tol: TolExact},
		{M: lockstep.KDivergence(), Tol: TolExact,
			Ref: func(x, y []float64) float64 {
				return sanitizeNaN(sum(func(a, b float64) float64 { return xlogxOverY(a, (a+b)/2) })(x, y))
			}},
		{M: lockstep.Topsoe(), Tol: TolExact,
			Ref: func(x, y []float64) float64 { return sanitizeNaN(sum(topsoeTerm)(x, y)) }},
		{M: lockstep.JensenShannon(), Tol: TolExact,
			Ref: func(x, y []float64) float64 { return sanitizeNaN(sum(topsoeTerm)(x, y) / 2) }},
		{M: lockstep.JensenDifference(), Tol: TolExact,
			Ref: func(x, y []float64) float64 {
				return sanitizeNaN(sum(func(a, b float64) float64 {
					m := (a + b) / 2
					return (xlogx(a)+xlogx(b))/2 - xlogx(m)
				})(x, y))
			}},

		// Combination measures.
		{M: lockstep.Taneja(), Tol: TolExact,
			Ref: func(x, y []float64) float64 {
				return sanitizeNaN(sum(func(a, b float64) float64 {
					return xlogxOverY((a+b)/2, safeSqrt(a*b))
				})(x, y))
			}},
		{M: lockstep.KumarJohnson(), Tol: TolExact,
			Ref: func(x, y []float64) float64 {
				return sanitizeNaN(sum(func(a, b float64) float64 {
					num := a*a - b*b
					prod := a * b
					return div(num*num, 2*safeSqrt(prod*prod*prod))
				})(x, y))
			}},
		{M: lockstep.AvgL1Linf(), Ref: refAvgL1Linf, Tol: TolExact},

		// Vicissitude measures.
		term(lockstep.Emanon1(), func(a, b float64) float64 { return div(abs(a-b), math.Min(a, b)) }),
		term(lockstep.Emanon2(), func(a, b float64) float64 {
			mn := math.Min(a, b)
			return div((a-b)*(a-b), mn*mn)
		}),
		term(lockstep.Emanon3(), func(a, b float64) float64 { return div((a-b)*(a-b), math.Min(a, b)) }),
		term(lockstep.Emanon4(), func(a, b float64) float64 { return div((a-b)*(a-b), math.Max(a, b)) }),
		{M: lockstep.Emanon5(), Ref: refEmanonMinMax(true), Tol: TolExact},
		{M: lockstep.Emanon6(), Ref: refEmanonMinMax(false), Tol: TolExact},

		// Beyond the survey.
		{M: lockstep.DISSIM(), Ref: refDISSIM, Tol: TolExact},
		{M: lockstep.ASD(), Ref: refASD, Tol: TolExact},

		// Sliding measures: FFT versus direct sliding sums.
		{M: sliding.New(sliding.NCC), Ref: refNCC, Tol: TolFFT, FiniteOnly: true},
		{M: sliding.New(sliding.NCCb), Ref: refNCCb, Tol: TolFFT, FiniteOnly: true},
		{M: sliding.New(sliding.NCCu), Ref: refNCCu, Tol: TolFFT, FiniteOnly: true},
		{M: sliding.New(sliding.NCCc), Ref: refNCCc, Tol: TolFFT, FiniteOnly: true},

		// Elastic measures: rolling-row banded DPs versus full matrices.
		// DTW at the registered band plus the band edge cases (minimum
		// clamp, unconstrained).
		{M: elastic.DTW{DeltaPercent: 10}, Ref: refDTW(10), Tol: TolExact},
		{M: elastic.DTW{DeltaPercent: 0}, Ref: refDTW(0), Tol: TolExact},
		{M: elastic.DTW{DeltaPercent: 5}, Ref: refDTW(5), Tol: TolExact},
		{M: elastic.DTW{DeltaPercent: 100}, Ref: refDTW(100), Tol: TolExact},
		{M: elastic.LCSS{DeltaPercent: 5, Epsilon: 0.2}, Ref: refLCSS(5, 0.2), Tol: TolExact},
		{M: elastic.LCSS{DeltaPercent: 100, Epsilon: 0.5}, Ref: refLCSS(100, 0.5), Tol: TolExact},
		{M: elastic.EDR{Epsilon: 0.1}, Ref: refEDR(0.1), Tol: TolExact},
		{M: elastic.ERP{G: 0}, Ref: refERP(0), Tol: TolExact},
		{M: elastic.MSM{C: 0.5}, Ref: refMSM(0.5), Tol: TolExact},
		{M: elastic.TWE{Lambda: 1, Nu: 0.0001}, Ref: refTWE(1, 0.0001), Tol: TolExact},
		{M: elastic.Swale{Epsilon: 0.2, P: 5, R: 1}, Ref: refSwale(0.2, 5, 1), Tol: TolExact},

		// Elastic extensions.
		{M: elastic.DDTW{DeltaPercent: 10}, Ref: refDDTW(10), Tol: TolExact},
		{M: elastic.DDBlend{DeltaPercent: 10, Alpha: 0.5}, Ref: refDDBlend(10, 0.5), Tol: TolExact},
		{M: elastic.WDTW{G: 0.05}, Ref: refWDTW(0.05, 1), Tol: TolExact},
		{M: elastic.CID{Base: elastic.DTW{DeltaPercent: 10}}, Ref: refCID(refDTW(10)), Tol: TolExact},

		// Kernel measures.
		{M: kernel.RBF{Gamma: 2}, Ref: refRBF(2), Tol: TolExact},
		{M: kernel.SINK{Gamma: 5}, Ref: refSINK(5), Tol: TolFFT, FiniteOnly: true},
		{M: kernel.GAK{Sigma: 0.1}, Ref: refGAK(0.1), Tol: TolLogSpace, FiniteOnly: true},
		{M: kernel.KDTW{Gamma: 0.125}, Ref: refKDTW(0.125), Tol: TolLogSpace, FiniteOnly: true},
	}
	return pairs
}

// sqrtDiffSq is the (sqrt a - sqrt b)^2 term of the fidelity family.
func sqrtDiffSq(a, b float64) float64 {
	d := safeSqrt(a) - safeSqrt(b)
	return d * d
}

// topsoeTerm is x ln(2x/(x+y)) + y ln(2y/(x+y)).
func topsoeTerm(a, b float64) float64 {
	m := (a + b) / 2
	return xlogxOverY(a, m) + xlogxOverY(b, m)
}
