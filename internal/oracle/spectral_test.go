package oracle

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/linalg"
)

// The spectral oracle: the implicit-shift QL eigensolver cross-checked
// against the retained cyclic Jacobi implementation, and the batched Gram
// engine cross-checked against the per-pair prepared SINK path. Both run
// under `make oracle` (the -run Oracle schedule, race detector on).

func randomSymmetric(rng *rand.Rand, n, kind int) *linalg.Matrix {
	m := linalg.NewMatrix(n, n)
	switch kind {
	case 1: // PSD Gram-style: B Bᵀ with deficient rank
		cols := 1 + n/2
		b := linalg.NewMatrix(n, cols)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		return linalg.SymRankK(b)
	case 2: // wildly scaled entries
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(13)-6))
				m.Set(i, j, v)
				m.Set(j, i, v)
			}
		}
		return m
	default: // standard normal
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				m.Set(i, j, v)
				m.Set(j, i, v)
			}
		}
		return m
	}
}

// TestOracleEigenSolver cross-checks EigenSym (Householder + QL) against
// EigenSymJacobi on random symmetric matrices: eigenvalues must agree to
// 1e-9 of the spectral scale, and the QL decomposition must reconstruct
// the input, ‖A − VΛVᵀ‖_max within the same scaled bound.
func TestOracleEigenSolver(t *testing.T) {
	for _, seed := range fuzzSeeds(t) {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 12; trial++ {
			n := 2 + rng.Intn(40)
			kind := trial % 3
			a := randomSymmetric(rng, n, kind)
			qlVals, qlVecs := linalg.EigenSym(a)
			jVals, _ := linalg.EigenSymJacobi(a)
			scale := 1.0
			for _, v := range qlVals {
				if av := math.Abs(v); av > scale {
					scale = av
				}
			}
			for i := range qlVals {
				if math.Abs(qlVals[i]-jVals[i]) > 1e-9*scale {
					t.Fatalf("seed %d trial %d (n=%d kind=%d): eigenvalue %d: ql %v vs jacobi %v",
						seed, trial, n, kind, i, qlVals[i], jVals[i])
				}
			}
			// Reconstruction: A == V Λ Vᵀ entrywise within the scaled bound.
			d := linalg.NewMatrix(n, n)
			for i := 0; i < n; i++ {
				d.Set(i, i, qlVals[i])
			}
			rec := linalg.Mul(linalg.Mul(qlVecs, d), qlVecs.Transpose())
			for i := range rec.Data {
				if math.Abs(rec.Data[i]-a.Data[i]) > 1e-9*scale {
					t.Fatalf("seed %d trial %d (n=%d kind=%d): reconstruction off at flat %d: %v vs %v",
						seed, trial, n, kind, i, rec.Data[i], a.Data[i])
				}
			}
		}
	}
}

// TestOracleGramEngine checks the batched SINK Gram engine against the
// per-pair prepared path over the full Table-4 gamma grid on the engine
// differential's series sets (duplicates, constants, mixed scales). The
// contract is bitwise — the engine replays the exact per-pair arithmetic —
// so the comparison is sameValue, not a tolerance tier.
func TestOracleGramEngine(t *testing.T) {
	for _, seed := range fuzzSeeds(t) {
		queries, refs := EngineSets(seed, false)
		series := append(append([][]float64{}, queries...), refs...)
		var eng *kernel.GramEngine
		rows := make([][]float64, len(series))
		for i := range rows {
			rows[i] = make([]float64, len(series))
		}
		for gamma := 1.0; gamma <= 20; gamma++ {
			s := kernel.SINK{Gamma: gamma}
			if eng == nil {
				eng = kernel.NewGramEngine(s, series)
			} else {
				eng.SetGamma(gamma)
			}
			eng.FillDistances(rows)
			prep := make([]any, len(series))
			for i, x := range series {
				prep[i] = s.Prepare(x)
			}
			for i := range series {
				for j := range series {
					want := s.PreparedDistance(prep[i], prep[j])
					if !sameValue(rows[i][j], want) {
						t.Fatalf("seed %d gamma %g: engine[%d][%d] = %v, per-pair path %v",
							seed, gamma, i, j, rows[i][j], want)
					}
				}
			}
		}
	}
}
