package oracle

import (
	"fmt"

	csnap "repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/measure"
	"repro/internal/search"
)

// This file adds the snapshot differential route: every snapshot-backed
// entry point (search.OneNNSnapshot, search.LeaveOneOutSnapshot,
// eval.MatrixSnapshot, eval/search grid tuning) must be bitwise identical
// to its build-inline counterpart — the snapshot only changes where
// per-series state comes from, never what is computed. Any divergence,
// including on NaN/Inf-poisoned or constant series, is a real bug in the
// prepared-state layer.

// CheckSnapshot compares snapshot-backed 1-NN, leave-one-out, and matrix
// evaluation against the inline paths for one measure over one input set.
func CheckSnapshot(r *Report, m measure.Measure, queries, refs [][]float64, input string) {
	name := m.Name()
	var snap *csnap.Snapshot
	if !call(r, name, input, "snapshot-build", func() {
		snap = csnap.Build(refs, csnap.Options{Measures: []measure.Measure{m}})
	}) {
		return
	}
	call(r, name, input, "snapshot", func() {
		r.Checks++
		got := search.OneNNSnapshot(m, queries, refs, snap)
		want := search.OneNN(m, queries, refs)
		for i := range want.Indices {
			if got.Indices[i] != want.Indices[i] {
				r.add(name, fmt.Sprintf("%s/onenn/query=%d", input, i), "snapshot",
					"snapshot neighbor %d, inline neighbor %d", got.Indices[i], want.Indices[i])
				continue
			}
			if !sameValue(got.Distances[i], want.Distances[i]) {
				r.add(name, fmt.Sprintf("%s/onenn/query=%d", input, i), "snapshot",
					"snapshot distance %v, inline distance %v", got.Distances[i], want.Distances[i])
			}
		}
	})
	call(r, name, input, "snapshot", func() {
		r.Checks++
		got := search.LeaveOneOutSnapshot(m, refs, snap)
		want := search.LeaveOneOut(m, refs)
		for i := range want.Indices {
			if got.Indices[i] != want.Indices[i] {
				r.add(name, fmt.Sprintf("%s/loo/row=%d", input, i), "snapshot",
					"snapshot neighbor %d, inline neighbor %d", got.Indices[i], want.Indices[i])
				continue
			}
			if !sameValue(got.Distances[i], want.Distances[i]) {
				r.add(name, fmt.Sprintf("%s/loo/row=%d", input, i), "snapshot",
					"snapshot distance %v, inline distance %v", got.Distances[i], want.Distances[i])
			}
		}
	})
	call(r, name, input, "snapshot", func() {
		r.Checks++
		got := eval.MatrixSnapshot(m, queries, refs, snap)
		want := eval.Matrix(m, queries, refs)
		for i := range want {
			for j := range want[i] {
				if !sameValue(got[i][j], want[i][j]) {
					r.add(name, fmt.Sprintf("%s/matrix/%d,%d", input, i, j), "snapshot",
						"snapshot cell %v, inline cell %v", got[i][j], want[i][j])
				}
			}
		}
	})
}

// CheckSnapshotGrid compares snapshot-backed grid tuning against the
// inline grid engine: per-candidate neighbors and distances must match
// bitwise for every candidate in the grid.
func CheckSnapshotGrid(r *Report, g eval.Grid, train [][]float64, input string) {
	name := g.Name
	var snap *csnap.Snapshot
	if !call(r, name, input, "snapshot-build", func() {
		snap = csnap.Build(train, csnap.Options{Measures: g.Candidates})
	}) {
		return
	}
	call(r, name, input, "snapshot", func() {
		r.Checks++
		got := search.LeaveOneOutGridSnapshot(g.Candidates, train, snap)
		want := search.LeaveOneOutGrid(g.Candidates, train)
		for c := range want.PerCandidate {
			gi, wi := got.PerCandidate[c].Indices, want.PerCandidate[c].Indices
			gd, wd := got.PerCandidate[c].Distances, want.PerCandidate[c].Distances
			for i := range wi {
				if gi[i] != wi[i] {
					r.add(name, fmt.Sprintf("%s/grid/cand=%d/row=%d", input, c, i), "snapshot",
						"snapshot neighbor %d, inline neighbor %d", gi[i], wi[i])
					continue
				}
				if !sameValue(gd[i], wd[i]) {
					r.add(name, fmt.Sprintf("%s/grid/cand=%d/row=%d", input, c, i), "snapshot",
						"snapshot distance %v, inline distance %v", gd[i], wd[i])
				}
			}
		}
	})
}
