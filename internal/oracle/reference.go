// Package oracle provides straightforward, obviously-correct reference
// implementations of every distance measure in the library and a
// differential-testing harness that fuzzes randomized and adversarial
// inputs through three routes — the optimized measure, the oracle measure,
// and the pruned search engine versus exhaustive matrix evaluation — and
// asserts agreement within documented tolerances.
//
// The reference implementations trade every optimization for clarity: full
// (m+1)-by-(m+1) DP matrices instead of two rolling rows, direct O(m^2)
// sliding sums instead of FFTs, and plain per-term loops for the lock-step
// formulas. They share only the *documented conventions* with the optimized
// code (the guarded arithmetic of package measure, the Sakoe-Chiba band
// definition, the FFT cross-correlation shift indexing), never its code.
package oracle

import "math"

// Ref is a reference distance function over two equal-length series.
type Ref func(x, y []float64) float64

//
// ---- guarded arithmetic (the documented conventions of package measure,
// restated independently) ----
//

// div: 0/0 := 0, x/0 := +Inf for x != 0.
func div(num, den float64) float64 {
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return num / den
}

// xlogx: 0*log(0) := 0; negative x is undefined (+Inf).
func xlogx(x float64) float64 {
	if x == 0 {
		return 0
	}
	if x < 0 {
		return math.Inf(1)
	}
	return x * math.Log(x)
}

// xlogxOverY: 0*log(0/y) := 0; negative x or non-positive y with positive x
// is undefined (+Inf).
func xlogxOverY(x, y float64) float64 {
	if x == 0 {
		return 0
	}
	if x < 0 || y <= 0 {
		return math.Inf(1)
	}
	return x * math.Log(x/y)
}

// safeSqrt tolerates tiny negative rounding noise; substantially negative
// inputs yield NaN (undefined).
func safeSqrt(x float64) float64 {
	if x < 0 {
		if x > -1e-12 {
			return 0
		}
		return math.NaN()
	}
	return math.Sqrt(x)
}

// sanitizeNaN maps NaN to +Inf (undefined distances rank last).
func sanitizeNaN(d float64) float64 {
	if math.IsNaN(d) {
		return math.Inf(1)
	}
	return d
}

// sum builds a Ref accumulating a per-index term.
func sum(term func(a, b float64) float64) Ref {
	return func(x, y []float64) float64 {
		var s float64
		for i := range x {
			s += term(x[i], y[i])
		}
		return s
	}
}

// ratio builds a Ref dividing two per-index term sums with the div guard.
func ratio(num, den func(a, b float64) float64) Ref {
	return func(x, y []float64) float64 {
		var n, d float64
		for i := range x {
			n += num(x[i], y[i])
			d += den(x[i], y[i])
		}
		return div(n, d)
	}
}

//
// ---- lock-step references ----
//

func refEuclidean(x, y []float64) float64 {
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func refMinkowski(p float64) Ref {
	return func(x, y []float64) float64 {
		var s float64
		for i := range x {
			s += math.Pow(math.Abs(x[i]-y[i]), p)
		}
		return math.Pow(s, 1/p)
	}
}

func refChebyshev(x, y []float64) float64 {
	var m float64
	for i := range x {
		if d := math.Abs(x[i] - y[i]); d > m {
			m = d
		}
	}
	return m
}

// refGower is the mean absolute difference; on an empty pair the 0/0
// convention applies, so the distance is 0 (two empty series are identical).
func refGower(x, y []float64) float64 {
	var s float64
	for i := range x {
		s += math.Abs(x[i] - y[i])
	}
	return div(s, float64(len(x)))
}

func refCosine(x, y []float64) float64 {
	var xy, xx, yy float64
	for i := range x {
		xy += x[i] * y[i]
		xx += x[i] * x[i]
		yy += y[i] * y[i]
	}
	return 1 - div(xy, math.Sqrt(xx)*math.Sqrt(yy))
}

func refKumarHassebrook(x, y []float64) float64 {
	var xy, xx, yy float64
	for i := range x {
		xy += x[i] * y[i]
		xx += x[i] * x[i]
		yy += y[i] * y[i]
	}
	return 1 - div(xy, xx+yy-xy)
}

func refJaccard(x, y []float64) float64 {
	var sq, xy, xx, yy float64
	for i := range x {
		d := x[i] - y[i]
		sq += d * d
		xy += x[i] * y[i]
		xx += x[i] * x[i]
		yy += y[i] * y[i]
	}
	return div(sq, xx+yy-xy)
}

func refDice(x, y []float64) float64 {
	var sq, xx, yy float64
	for i := range x {
		d := x[i] - y[i]
		sq += d * d
		xx += x[i] * x[i]
		yy += y[i] * y[i]
	}
	return div(sq, xx+yy)
}

func refBhattacharyya(x, y []float64) float64 {
	var s float64
	for i := range x {
		s += safeSqrt(x[i] * y[i])
	}
	if s <= 0 || math.IsNaN(s) {
		return math.Inf(1)
	}
	return -math.Log(s)
}

func refJeffreys(x, y []float64) float64 {
	var s float64
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			if x[i] == y[i] {
				continue
			}
			return math.Inf(1)
		}
		s += (x[i] - y[i]) * math.Log(x[i]/y[i])
	}
	return s
}

func refEmanonMinMax(useMax bool) Ref {
	return func(x, y []float64) float64 {
		var sx, sy float64
		for i := range x {
			d := x[i] - y[i]
			sx += div(d*d, x[i])
			sy += div(d*d, y[i])
		}
		if useMax {
			return math.Max(sx, sy)
		}
		return math.Min(sx, sy)
	}
}

func refAvgL1Linf(x, y []float64) float64 {
	var s, mx float64
	for i := range x {
		d := math.Abs(x[i] - y[i])
		s += d
		if d > mx {
			mx = d
		}
	}
	return (s + mx) / 2
}

// refDISSIM is the trapezoidal integral of the point-wise distance.
func refDISSIM(x, y []float64) float64 {
	m := len(x)
	if m == 0 {
		return 0
	}
	if m == 1 {
		return math.Abs(x[0] - y[0])
	}
	var s float64
	for i := 1; i < m; i++ {
		s += (math.Abs(x[i-1]-y[i-1]) + math.Abs(x[i]-y[i])) / 2
	}
	return s
}

// refASD rescales y by the least-squares factor <x,y>/<y,y> before the
// Euclidean comparison.
func refASD(x, y []float64) float64 {
	var xy, yy float64
	for i := range x {
		xy += x[i] * y[i]
		yy += y[i] * y[i]
	}
	a := 1.0
	if yy != 0 {
		a = xy / yy
	}
	var s float64
	for i := range x {
		d := x[i] - a*y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

//
// ---- elastic references: full-matrix dynamic programs ----
//

// window is the Sakoe-Chiba band convention shared by the library: the
// half-width as a percentage of the length, at least 1 cell, unconstrained
// at >= 100 percent.
func window(deltaPercent, m int) int {
	if deltaPercent >= 100 {
		return m
	}
	w := deltaPercent * m / 100
	if w < 1 {
		w = 1
	}
	return w
}

// matrix allocates an (n+1)-by-(n+1) DP table filled with fill.
func matrix(n int, fill float64) [][]float64 {
	t := make([][]float64, n+1)
	for i := range t {
		t[i] = make([]float64, n+1)
		for j := range t[i] {
			t[i][j] = fill
		}
	}
	return t
}

func min3(a, b, c float64) float64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

// refDTW: banded DTW over the full cost matrix, squared point cost, no
// final square root.
func refDTW(deltaPercent int) Ref {
	return func(x, y []float64) float64 {
		m := len(x)
		if m == 0 {
			return 0
		}
		w := window(deltaPercent, m)
		t := matrix(m, math.Inf(1))
		t[0][0] = 0
		for i := 1; i <= m; i++ {
			for j := maxInt(1, i-w); j <= minInt(m, i+w); j++ {
				c := x[i-1] - y[j-1]
				t[i][j] = c*c + min3(t[i-1][j-1], t[i-1][j], t[i][j-1])
			}
		}
		return t[m][m]
	}
}

// refLCSS: banded longest common subsequence; out-of-band cells count zero
// matches. Distance is 1 - L/m.
func refLCSS(deltaPercent int, epsilon float64) Ref {
	return func(x, y []float64) float64 {
		m := len(x)
		if m == 0 {
			return 0
		}
		w := window(deltaPercent, m)
		t := matrix(m, 0)
		for i := 1; i <= m; i++ {
			for j := maxInt(1, i-w); j <= minInt(m, i+w); j++ {
				if math.Abs(x[i-1]-y[j-1]) <= epsilon {
					t[i][j] = t[i-1][j-1] + 1
				} else {
					t[i][j] = math.Max(t[i-1][j], t[i][j-1])
				}
			}
		}
		return 1 - t[m][m]/float64(m)
	}
}

// refEDR: unit-cost edit distance with an epsilon match band.
func refEDR(epsilon float64) Ref {
	return func(x, y []float64) float64 {
		m := len(x)
		t := matrix(m, 0)
		for i := 0; i <= m; i++ {
			t[i][0] = float64(i)
		}
		for j := 0; j <= m; j++ {
			t[0][j] = float64(j)
		}
		for i := 1; i <= m; i++ {
			for j := 1; j <= m; j++ {
				sub := 1.0
				if math.Abs(x[i-1]-y[j-1]) <= epsilon {
					sub = 0
				}
				t[i][j] = min3(t[i-1][j-1]+sub, t[i-1][j]+1, t[i][j-1]+1)
			}
		}
		return t[m][m]
	}
}

// refERP: edit distance with real penalty against the gap value g.
func refERP(g float64) Ref {
	return func(x, y []float64) float64 {
		m := len(x)
		t := matrix(m, 0)
		for i := 1; i <= m; i++ {
			t[i][0] = t[i-1][0] + math.Abs(x[i-1]-g)
		}
		for j := 1; j <= m; j++ {
			t[0][j] = t[0][j-1] + math.Abs(y[j-1]-g)
		}
		for i := 1; i <= m; i++ {
			for j := 1; j <= m; j++ {
				t[i][j] = math.Min(
					t[i-1][j-1]+math.Abs(x[i-1]-y[j-1]),
					math.Min(t[i-1][j]+math.Abs(x[i-1]-g), t[i][j-1]+math.Abs(y[j-1]-g)),
				)
			}
		}
		return t[m][m]
	}
}

// refMSM: move-split-merge over the full n-by-n table.
func refMSM(c float64) Ref {
	cost := func(p, a, b float64) float64 {
		if (a <= p && p <= b) || (b <= p && p <= a) {
			return c
		}
		return c + math.Min(math.Abs(p-a), math.Abs(p-b))
	}
	return func(x, y []float64) float64 {
		n := len(x)
		if n == 0 {
			return 0
		}
		t := make([][]float64, n)
		for i := range t {
			t[i] = make([]float64, n)
		}
		t[0][0] = math.Abs(x[0] - y[0])
		for j := 1; j < n; j++ {
			t[0][j] = t[0][j-1] + cost(y[j], x[0], y[j-1])
		}
		for i := 1; i < n; i++ {
			t[i][0] = t[i-1][0] + cost(x[i], x[i-1], y[0])
			for j := 1; j < n; j++ {
				t[i][j] = math.Min(
					t[i-1][j-1]+math.Abs(x[i]-y[j]),
					math.Min(t[i-1][j]+cost(x[i], x[i-1], y[j]), t[i][j-1]+cost(y[j], x[i], y[j-1])),
				)
			}
		}
		return t[n-1][n-1]
	}
}

// refTWE: time warp edit distance with the leading zero-sample padding.
func refTWE(lambda, nu float64) Ref {
	return func(x, y []float64) float64 {
		m := len(x)
		if m == 0 {
			return 0
		}
		xp := append([]float64{0}, x...)
		yp := append([]float64{0}, y...)
		t := matrix(m, math.Inf(1))
		t[0][0] = 0
		for i := 1; i <= m; i++ {
			for j := 1; j <= m; j++ {
				delA := t[i-1][j] + math.Abs(xp[i]-xp[i-1]) + nu + lambda
				delB := t[i][j-1] + math.Abs(yp[j]-yp[j-1]) + nu + lambda
				match := t[i-1][j-1] + math.Abs(xp[i]-yp[j]) + math.Abs(xp[i-1]-yp[j-1]) +
					2*nu*math.Abs(float64(i-j))
				t[i][j] = math.Min(match, math.Min(delA, delB))
			}
		}
		return t[m][m]
	}
}

// refSwale: negated sequence weighted alignment similarity.
func refSwale(epsilon, p, r float64) Ref {
	return func(x, y []float64) float64 {
		m := len(x)
		t := matrix(m, 0)
		for i := 0; i <= m; i++ {
			t[i][0] = -p * float64(i)
		}
		for j := 0; j <= m; j++ {
			t[0][j] = -p * float64(j)
		}
		for i := 1; i <= m; i++ {
			for j := 1; j <= m; j++ {
				if math.Abs(x[i-1]-y[j-1]) <= epsilon {
					t[i][j] = t[i-1][j-1] + r
				} else {
					t[i][j] = math.Max(t[i-1][j], t[i][j-1]) - p
				}
			}
		}
		return -t[m][m]
	}
}

// refDerivative is the Keogh-Pazzani slope estimate with replicated
// endpoints; series shorter than 3 points have zero slope everywhere.
func refDerivative(x []float64) []float64 {
	m := len(x)
	out := make([]float64, m)
	if m < 3 {
		return out
	}
	for i := 1; i < m-1; i++ {
		out[i] = ((x[i] - x[i-1]) + (x[i+1]-x[i-1])/2) / 2
	}
	out[0] = out[1]
	out[m-1] = out[m-2]
	return out
}

func refDDTW(deltaPercent int) Ref {
	dtw := refDTW(deltaPercent)
	return func(x, y []float64) float64 {
		return dtw(refDerivative(x), refDerivative(y))
	}
}

func refDDBlend(deltaPercent int, alpha float64) Ref {
	dtw := refDTW(deltaPercent)
	return func(x, y []float64) float64 {
		return (1-alpha)*dtw(x, y) + alpha*dtw(refDerivative(x), refDerivative(y))
	}
}

// refWDTW: full-matrix DTW with the logistic phase-difference weight.
func refWDTW(g, wmax float64) Ref {
	if wmax == 0 {
		wmax = 1
	}
	return func(x, y []float64) float64 {
		m := len(x)
		if m == 0 {
			return 0
		}
		weights := make([]float64, m)
		for a := range weights {
			weights[a] = wmax / (1 + math.Exp(-g*(float64(a)-float64(m)/2)))
		}
		t := matrix(m, math.Inf(1))
		t[0][0] = 0
		for i := 1; i <= m; i++ {
			for j := 1; j <= m; j++ {
				d := x[i-1] - y[j-1]
				phase := i - j
				if phase < 0 {
					phase = -phase
				}
				t[i][j] = weights[phase]*d*d + min3(t[i-1][j-1], t[i-1][j], t[i][j-1])
			}
		}
		return t[m][m]
	}
}

// refCID wraps a base reference with the complexity-invariant correction.
func refCID(base Ref) Ref {
	ce := func(x []float64) float64 {
		var s float64
		for i := 1; i < len(x); i++ {
			d := x[i] - x[i-1]
			s += d * d
		}
		return math.Sqrt(s)
	}
	return func(x, y []float64) float64 {
		b := base(x, y)
		cx, cy := ce(x), ce(y)
		lo, hi := math.Min(cx, cy), math.Max(cx, cy)
		if lo == 0 {
			if hi == 0 {
				return b
			}
			return math.Inf(1)
		}
		return b * hi / lo
	}
}

//
// ---- sliding references: direct O(m^2) cross-correlation ----
//

// crossCorr computes the full 2m-1 point cross-correlation directly: entry
// k corresponds to shift s = k-(m-1) of y relative to x, cc[k] =
// sum_i x[i]*y[i-s] — the library's documented FFT indexing convention.
func crossCorr(x, y []float64) []float64 {
	m := len(x)
	if m == 0 {
		return nil
	}
	cc := make([]float64, 2*m-1)
	for k := range cc {
		s := k - (m - 1)
		var sum float64
		for i := range x {
			j := i - s
			if j >= 0 && j < m {
				sum += x[i] * y[j]
			}
		}
		cc[k] = sum
	}
	return cc
}

func norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// refNCC is the raw maximum cross-correlation, negated into a
// dissimilarity. Empty series are identical: distance 0.
func refNCC(x, y []float64) float64 {
	cc := crossCorr(x, y)
	if len(cc) == 0 {
		return 0
	}
	best := math.Inf(-1)
	for _, v := range cc {
		if v > best {
			best = v
		}
	}
	if best == 0 {
		return 0
	}
	return -best
}

// refNCCb divides by the length m (biased estimator).
func refNCCb(x, y []float64) float64 {
	cc := crossCorr(x, y)
	if len(cc) == 0 {
		return 0
	}
	best := math.Inf(-1)
	for _, v := range cc {
		if s := v / float64(len(x)); s > best {
			best = s
		}
	}
	if best == 0 {
		return 0
	}
	return -best
}

// refNCCu divides shift w (1-based) by m - |w - m| (unbiased estimator).
func refNCCu(x, y []float64) float64 {
	cc := crossCorr(x, y)
	if len(cc) == 0 {
		return 0
	}
	m := float64(len(x))
	best := math.Inf(-1)
	for k, v := range cc {
		den := m - math.Abs(float64(k+1)-m)
		if den <= 0 {
			continue
		}
		if s := v / den; s > best {
			best = s
		}
	}
	if best == 0 {
		return 0
	}
	return -best
}

// refNCCc is the shape-based distance 1 - max_w cc_w/(||x||*||y||); a
// zero-norm non-empty series has coefficient 0 everywhere (distance 1),
// and empty series are identical (distance 0).
func refNCCc(x, y []float64) float64 {
	cc := crossCorr(x, y)
	if len(cc) == 0 {
		return 0
	}
	den := norm2(x) * norm2(y)
	if den == 0 {
		return 1
	}
	best := math.Inf(-1)
	for _, v := range cc {
		if s := v / den; s > best {
			best = s
		}
	}
	return 1 - best
}

//
// ---- kernel references ----
//

// refNormalizedKernel is the 1 - k(x,y)/sqrt(k(x,x)k(y,y)) conversion with
// the degenerate-self-kernel guard.
func refNormalizedKernel(kxy, kxx, kyy float64) float64 {
	den := math.Sqrt(kxx * kyy)
	if den == 0 || math.IsNaN(den) || math.IsInf(den, 0) {
		return 1
	}
	return 1 - kxy/den
}

func refRBF(gamma float64) Ref {
	return func(x, y []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - y[i]
			s += d * d
		}
		return 1 - math.Exp(-gamma*s)
	}
}

// refSINKRaw is the unnormalized SINK kernel: sum over all shifts of
// exp(gamma * cc_w/(||x||*||y||)), with the zero-denominator convention
// that every coefficient is 0 (so the sum is the shift count).
func refSINKRaw(gamma float64, x, y []float64) float64 {
	cc := crossCorr(x, y)
	den := norm2(x) * norm2(y)
	if den == 0 {
		return float64(len(cc))
	}
	var s float64
	for _, v := range cc {
		s += math.Exp(gamma * v / den)
	}
	return s
}

func refSINK(gamma float64) Ref {
	return func(x, y []float64) float64 {
		return refNormalizedKernel(
			refSINKRaw(gamma, x, y),
			refSINKRaw(gamma, x, x),
			refSINKRaw(gamma, y, y),
		)
	}
}

// refGAKLog runs the log-space global alignment recursion over the full
// matrix and returns log k(x, y).
func refGAKLog(sigma float64, x, y []float64) float64 {
	m := len(x)
	if m == 0 {
		return 0
	}
	twoSigmaSq := 2 * sigma * sigma
	phi := func(a, b float64) float64 {
		d := a - b
		e := d * d / twoSigmaSq
		return e + math.Log(2-math.Exp(-e))
	}
	lse3 := func(a, b, c float64) float64 {
		mx := math.Max(a, math.Max(b, c))
		if math.IsInf(mx, -1) {
			return mx
		}
		return mx + math.Log(math.Exp(a-mx)+math.Exp(b-mx)+math.Exp(c-mx))
	}
	t := matrix(m, math.Inf(-1))
	t[0][0] = 0
	for i := 1; i <= m; i++ {
		for j := 1; j <= m; j++ {
			t[i][j] = lse3(t[i-1][j], t[i][j-1], t[i-1][j-1]) - phi(x[i-1], y[j-1])
		}
	}
	return t[m][m]
}

func refGAK(sigma float64) Ref {
	return func(x, y []float64) float64 {
		return -(refGAKLog(sigma, x, y) - (refGAKLog(sigma, x, x)+refGAKLog(sigma, y, y))/2)
	}
}

// refKDTWRaw evaluates the two KDTW recursions (alignment and diagonal
// regularization) over full matrices, with the reference implementation's
// boundary conventions and regularized local kernel.
func refKDTWRaw(gamma float64, x, y []float64) float64 {
	const eps = 1e-3
	m := len(x)
	if m == 0 {
		return 1
	}
	local := func(a, b float64) float64 {
		d := a - b
		return (math.Exp(-gamma*d*d) + eps) / (3 * (1 + eps))
	}
	diag := make([]float64, m+1)
	diag[0] = 1
	for i := 1; i <= m; i++ {
		diag[i] = local(x[i-1], y[i-1])
	}
	dp := matrix(m, 0)
	dp1 := matrix(m, 0)
	dp[0][0] = 1
	dp1[0][0] = 1
	for j := 1; j <= m; j++ {
		dp[0][j] = dp[0][j-1] * local(x[0], y[j-1])
		dp1[0][j] = dp1[0][j-1] * diag[j]
	}
	for i := 1; i <= m; i++ {
		dp[i][0] = dp[i-1][0] * local(x[i-1], y[0])
		dp1[i][0] = dp1[i-1][0] * diag[i]
		for j := 1; j <= m; j++ {
			lk := local(x[i-1], y[j-1])
			dp[i][j] = (dp[i-1][j] + dp[i][j-1] + dp[i-1][j-1]) * lk
			if i == j {
				dp1[i][j] = dp1[i-1][j-1]*lk + dp1[i-1][j]*diag[i] + dp1[i][j-1]*diag[j]
			} else {
				dp1[i][j] = dp1[i-1][j]*diag[i] + dp1[i][j-1]*diag[j]
			}
		}
	}
	return dp[m][m] + dp1[m][m]
}

func refKDTW(gamma float64) Ref {
	return func(x, y []float64) float64 {
		return refNormalizedKernel(
			refKDTWRaw(gamma, x, y),
			refKDTWRaw(gamma, x, x),
			refKDTWRaw(gamma, y, y),
		)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
