package oracle

// Multivariate differential harness: independent full-matrix reference DPs
// for the dependent elastic measures, reference masked lock-step
// implementations restating the valid-pair/min-support conventions, a
// seeded corpus with NaN/Inf poisoning and ragged (unequal-length) pairs,
// and the d=1 reduction route — every plain multivariate measure at one
// channel must be bitwise identical to its univariate counterpart on the
// univariate corpus.

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/elastic"
	"repro/internal/lockstep"
	"repro/internal/measure"
	"repro/internal/multivariate"
)

// MVRef is a reference distance over two multivariate series.
type MVRef func(x, y multivariate.Series) float64

// MVPair couples an optimized multivariate measure with its reference.
type MVPair struct {
	M   multivariate.Measure
	Ref MVRef
	Tol float64
	// Lockstep marks measures that require equal lengths: the harness
	// checks that ragged pairs panic instead of running the oracle route.
	Lockstep bool
	// FiniteOnly skips oracle agreement on non-finite input (soft-DTW's
	// exp/log pipeline localizes NaN differently than the reference).
	FiniteOnly bool
}

// MVPairs returns the multivariate differential registry.
func MVPairs() []MVPair {
	return []MVPair{
		{M: multivariate.Euclidean{}, Ref: refMVEuclidean, Tol: TolExact, Lockstep: true},
		{M: multivariate.DTWDependent{DeltaPercent: 10}, Ref: refMVDTW(10), Tol: TolExact},
		{M: multivariate.DTWDependent{DeltaPercent: 100}, Ref: refMVDTW(100), Tol: TolExact},
		{M: multivariate.ERPDependent{G: 0}, Ref: refMVERP(0), Tol: TolExact},
		{M: multivariate.MSMDependent{C: 0.5}, Ref: refMVMSM(0.5), Tol: TolExact},
		{M: multivariate.DTWIndependent{DeltaPercent: 10}, Ref: refMVDTWI(10), Tol: TolExact, Lockstep: true},
		{M: multivariate.Independent{Base: lockstep.Manhattan()}, Ref: refMVIndepManhattan, Tol: TolExact, Lockstep: true},
		{M: multivariate.MaskedEuclidean(0), Ref: refMVMasked(false, 0), Tol: TolExact, Lockstep: true},
		{M: multivariate.MaskedEuclidean(0.5), Ref: refMVMasked(false, 0.5), Tol: TolExact, Lockstep: true},
		{M: multivariate.MaskedManhattan(0), Ref: refMVMasked(true, 0), Tol: TolExact, Lockstep: true},
		{M: multivariate.MaskedManhattan(0.25), Ref: refMVMasked(true, 0.25), Tol: TolExact, Lockstep: true},
		{M: multivariate.SoftDTW{Gamma: 1}, Ref: refMVSoftDTW(1, false), Tol: TolLogSpace, FiniteOnly: true},
		{M: multivariate.SoftDTW{Gamma: 0.1, Normalize: true}, Ref: refMVSoftDTW(0.1, true), Tol: TolLogSpace, FiniteOnly: true},
	}
}

//
// ---- multivariate reference implementations ----
//

func mvL2Sq(a, b []float64) float64 {
	var s float64
	for k := range a {
		d := a[k] - b[k]
		s += d * d
	}
	return s
}

func mvL1(a, b []float64) float64 {
	var s float64
	for k := range a {
		s += math.Abs(a[k] - b[k])
	}
	return s
}

func refMVEuclidean(x, y multivariate.Series) float64 {
	var s float64
	for t := range x {
		s += mvL2Sq(x[t], y[t])
	}
	return math.Sqrt(s)
}

// mvMatrix allocates a full (m+1)-by-(n+1) DP table.
func mvMatrix(m, n int, fill float64) [][]float64 {
	t := make([][]float64, m+1)
	for i := range t {
		t[i] = make([]float64, n+1)
		for j := range t[i] {
			t[i][j] = fill
		}
	}
	return t
}

// mvWindow restates the m-by-n band convention: the percentage window of
// the longer series, widened to the length difference.
func mvWindow(deltaPercent, m, n int) int {
	w := window(deltaPercent, maxInt(m, n))
	if diff := maxInt(m, n) - minInt(m, n); w < diff {
		w = diff
	}
	return w
}

// refMVDTW: banded dependent DTW over the full m-by-n matrix, squared
// Euclidean point cost.
func refMVDTW(deltaPercent int) MVRef {
	return func(x, y multivariate.Series) float64 {
		m, n := len(x), len(y)
		if m == 0 && n == 0 {
			return 0
		}
		if m == 0 || n == 0 {
			return math.Inf(1)
		}
		w := mvWindow(deltaPercent, m, n)
		t := mvMatrix(m, n, math.Inf(1))
		t[0][0] = 0
		for i := 1; i <= m; i++ {
			for j := maxInt(1, i-w); j <= minInt(n, i+w); j++ {
				t[i][j] = mvL2Sq(x[i-1], y[j-1]) + min3(t[i-1][j-1], t[i-1][j], t[i][j-1])
			}
		}
		return t[m][n]
	}
}

// refMVERP: dependent ERP over the full m-by-n matrix, L1 point and gap
// costs against the constant gap vector (g on every channel).
func refMVERP(g float64) MVRef {
	gap := func(p []float64) float64 {
		var s float64
		for k := range p {
			s += math.Abs(p[k] - g)
		}
		return s
	}
	return func(x, y multivariate.Series) float64 {
		m, n := len(x), len(y)
		t := mvMatrix(m, n, 0)
		for i := 1; i <= m; i++ {
			t[i][0] = t[i-1][0] + gap(x[i-1])
		}
		for j := 1; j <= n; j++ {
			t[0][j] = t[0][j-1] + gap(y[j-1])
		}
		for i := 1; i <= m; i++ {
			for j := 1; j <= n; j++ {
				t[i][j] = math.Min(
					t[i-1][j-1]+mvL1(x[i-1], y[j-1]),
					math.Min(t[i-1][j]+gap(x[i-1]), t[i][j-1]+gap(y[j-1])),
				)
			}
		}
		return t[m][n]
	}
}

// refMVMSM: dependent MSM over the full m-by-n table, L1 move cost and the
// componentwise-betweenness split/merge cost.
func refMVMSM(c float64) MVRef {
	cost := func(p, a, b []float64) float64 {
		between := true
		for k := range p {
			if !((a[k] <= p[k] && p[k] <= b[k]) || (b[k] <= p[k] && p[k] <= a[k])) {
				between = false
			}
		}
		if between {
			return c
		}
		var dpa, dpb float64
		for k := range p {
			dpa += math.Abs(p[k] - a[k])
			dpb += math.Abs(p[k] - b[k])
		}
		return c + math.Min(dpa, dpb)
	}
	return func(x, y multivariate.Series) float64 {
		m, n := len(x), len(y)
		if m == 0 && n == 0 {
			return 0
		}
		if m == 0 || n == 0 {
			return math.Inf(1)
		}
		t := make([][]float64, m)
		for i := range t {
			t[i] = make([]float64, n)
		}
		t[0][0] = mvL1(x[0], y[0])
		for j := 1; j < n; j++ {
			t[0][j] = t[0][j-1] + cost(y[j], x[0], y[j-1])
		}
		for i := 1; i < m; i++ {
			t[i][0] = t[i-1][0] + cost(x[i], x[i-1], y[0])
			for j := 1; j < n; j++ {
				t[i][j] = math.Min(
					t[i-1][j-1]+mvL1(x[i], y[j]),
					math.Min(t[i-1][j]+cost(x[i], x[i-1], y[j]), t[i][j-1]+cost(y[j], x[i], y[j-1])),
				)
			}
		}
		return t[m-1][n-1]
	}
}

// refMVDTWI: independent DTW as the sum of the univariate banded reference
// DTW over each channel.
func refMVDTWI(deltaPercent int) MVRef {
	uni := refDTW(deltaPercent)
	return func(x, y multivariate.Series) float64 {
		var s float64
		for c := 0; c < x.Channels(); c++ {
			s += uni(x.Channel(c), y.Channel(c))
		}
		return s
	}
}

// refMVIndepManhattan: the Manhattan lift as per-channel sums.
func refMVIndepManhattan(x, y multivariate.Series) float64 {
	var s float64
	for c := 0; c < x.Channels(); c++ {
		for t := range x {
			s += math.Abs(x[t][c] - y[t][c])
		}
	}
	return s
}

// refMVMasked restates the masked lock-step conventions: a pair is valid
// when both samples are non-NaN, each channel's cost over valid pairs is
// rescaled by n/valid, channels below ceil(minSupport*n) valid pairs (or
// with none at all) are dropped, and the result is the mean over surviving
// channels, +Inf when none survive.
func refMVMasked(manhattan bool, minSupport float64) MVRef {
	return func(x, y multivariate.Series) float64 {
		n := len(x)
		if n == 0 {
			return 0
		}
		minValid := int(math.Ceil(minSupport * float64(n)))
		if minValid < 1 {
			minValid = 1
		}
		var total float64
		kept := 0
		for c := 0; c < x.Channels(); c++ {
			var sum float64
			valid := 0
			for t := 0; t < n; t++ {
				a, b := x[t][c], y[t][c]
				if math.IsNaN(a) || math.IsNaN(b) {
					continue
				}
				valid++
				if manhattan {
					sum += math.Abs(a - b)
				} else {
					d := a - b
					sum += d * d
				}
			}
			if valid < minValid {
				continue
			}
			sum *= float64(n) / float64(valid)
			if !manhattan {
				sum = math.Sqrt(sum)
			}
			total += sum
			kept++
		}
		if kept == 0 {
			return math.Inf(1)
		}
		return total / float64(kept)
	}
}

// refMVSoftDTW: soft-DTW over the full m-by-n matrix with the stabilized
// log-sum-exp soft minimum; optionally self-distance normalized.
func refMVSoftDTW(gamma float64, normalize bool) MVRef {
	softmin := func(a, b, c float64) float64 {
		mn := math.Min(a, math.Min(b, c))
		if math.IsInf(mn, 1) {
			return mn
		}
		return mn - gamma*math.Log(math.Exp((mn-a)/gamma)+math.Exp((mn-b)/gamma)+math.Exp((mn-c)/gamma))
	}
	raw := func(x, y multivariate.Series) float64 {
		m, n := len(x), len(y)
		if m == 0 && n == 0 {
			return 0
		}
		if m == 0 || n == 0 {
			return math.Inf(1)
		}
		t := mvMatrix(m, n, math.Inf(1))
		t[0][0] = 0
		for i := 1; i <= m; i++ {
			for j := 1; j <= n; j++ {
				t[i][j] = mvL2Sq(x[i-1], y[j-1]) + softmin(t[i-1][j-1], t[i-1][j], t[i][j-1])
			}
		}
		return t[m][n]
	}
	if !normalize {
		return raw
	}
	return func(x, y multivariate.Series) float64 {
		return math.Abs(raw(x, y) - 0.5*(raw(x, x)+raw(y, y)))
	}
}

//
// ---- multivariate corpus ----
//

// MVInput is one multivariate fuzz case.
type MVInput struct {
	Name    string
	X, Y    multivariate.Series
	Finite  bool
	Extreme bool
	// Ragged marks unequal-length pairs, which lock-step measures must
	// reject by panicking.
	Ragged bool
}

func mvClassify(name string, x, y multivariate.Series) MVInput {
	in := MVInput{Name: name, X: x, Y: y, Finite: true, Ragged: len(x) != len(y)}
	check := func(s multivariate.Series) {
		for _, row := range s {
			for _, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					in.Finite = false
				}
				if math.Abs(v) > 1e150 {
					in.Extreme = true
				}
			}
		}
	}
	check(x)
	check(y)
	return in
}

func randnMV(rng *rand.Rand, n, d int, scale float64) multivariate.Series {
	s := make(multivariate.Series, n)
	for t := range s {
		s[t] = make([]float64, d)
		for c := range s[t] {
			s[t][c] = rng.NormFloat64() * scale
		}
	}
	return s
}

func constantMV(n, d int, v float64) multivariate.Series {
	s := make(multivariate.Series, n)
	for t := range s {
		s[t] = make([]float64, d)
		for c := range s[t] {
			s[t][c] = v
		}
	}
	return s
}

func poisonMV(s multivariate.Series, at, ch int, v float64) multivariate.Series {
	if len(s) > 0 {
		s[at][ch%len(s[at])] = v
	}
	return s
}

// MVCorpus builds the deterministic multivariate fuzz corpus for one seed:
// every scenario at channel counts 1..3 and a spread of lengths, including
// NaN- and Inf-poisoned panels, an all-NaN channel, and ragged
// (unequal-length) pairs.
func MVCorpus(seed int64) []MVInput {
	rng := rand.New(rand.NewSource(seed ^ 0x6d76))
	var in []MVInput
	add := func(name string, d int, x, y multivariate.Series) {
		in = append(in, mvClassify(fmt.Sprintf("%s/d=%d/len=%d:%d", name, d, len(x), len(y)), x, y))
	}
	for _, d := range []int{1, 2, 3} {
		for _, n := range []int{0, 1, 2, 3, 7, 16} {
			add("gaussian", d, randnMV(rng, n, d, 1), randnMV(rng, n, d, 1))
			add("const-diff", d, constantMV(n, d, -2), constantMV(n, d, 3))
			x := randnMV(rng, n, d, 1)
			ident := make(multivariate.Series, n)
			for t := range ident {
				ident[t] = append([]float64(nil), x[t]...)
			}
			add("identical", d, x, ident)
			add("tiny-vs-large", d, randnMV(rng, n, d, 1e-8), randnMV(rng, n, d, 1e6))
			if n > 0 {
				add("nan-single", d, poisonMV(randnMV(rng, n, d, 1), n/2, 0, math.NaN()), randnMV(rng, n, d, 1))
				add("nan-both", d, poisonMV(randnMV(rng, n, d, 1), 0, 0, math.NaN()),
					poisonMV(randnMV(rng, n, d, 1), n-1, d-1, math.NaN()))
				add("posinf", d, poisonMV(randnMV(rng, n, d, 1), n/2, d-1, math.Inf(1)), randnMV(rng, n, d, 1))
				add("neginf", d, randnMV(rng, n, d, 1), poisonMV(randnMV(rng, n, d, 1), n/2, 0, math.Inf(-1)))
				// One channel entirely missing on one side: exercises the
				// min-support drop rule.
				allNaN := randnMV(rng, n, d, 1)
				for t := range allNaN {
					allNaN[t][0] = math.NaN()
				}
				add("nan-channel", d, allNaN, randnMV(rng, n, d, 1))
			}
			// Ragged pairs for the dependent m-by-n DPs.
			add("ragged", d, randnMV(rng, n, d, 1), randnMV(rng, n+3, d, 1))
			if n > 1 {
				add("ragged-rev", d, randnMV(rng, n+5, d, 1), randnMV(rng, n, d, 1))
			}
		}
	}
	return in
}

//
// ---- multivariate harness ----
//

type mvSymmetric interface{ Symmetric() bool }

// CheckMVPair runs the applicable contract checks for one multivariate
// measure on one input: oracle agreement, bitwise symmetry, the
// EarlyAbandoning DistanceUpTo contract, and ContextMeasure consistency
// (background context bitwise-equal, cancelled context error-or-exact).
func CheckMVPair(r *Report, p MVPair, in MVInput) {
	name := p.M.Name()
	if p.Lockstep && in.Ragged {
		r.Checks++
		panicked := false
		func() {
			defer func() { panicked = recover() != nil }()
			p.M.Distance(in.X, in.Y)
		}()
		if !panicked {
			r.add(name, in.Name, "panic", "lock-step measure accepted a ragged pair")
		}
		return
	}
	wellBehaved := in.Finite && !in.Extreme

	var got float64
	if !call(r, name, in.Name, "Distance", func() { got = p.M.Distance(in.X, in.Y) }) {
		return
	}

	if !p.FiniteOnly || wellBehaved {
		r.Checks++
		want := p.Ref(in.X, in.Y)
		if !agree(got, want, p.Tol) {
			r.add(name, in.Name, "oracle", "optimized=%v reference=%v (tol %g)", got, want, p.Tol)
		}
	}

	if s, ok := p.M.(mvSymmetric); ok && s.Symmetric() {
		r.Checks++
		var rev float64
		if call(r, name, in.Name, "Distance(y,x)", func() { rev = p.M.Distance(in.Y, in.X) }) {
			if wellBehaved && !sameValue(got, rev) {
				r.add(name, in.Name, "symmetry", "d(x,y)=%v d(y,x)=%v not bitwise equal", got, rev)
			} else if !wellBehaved && !agree(got, rev, p.Tol) {
				r.add(name, in.Name, "symmetry", "d(x,y)=%v d(y,x)=%v", got, rev)
			}
		}
	}

	if ea, ok := p.M.(multivariate.EarlyAbandoning); ok {
		r.Checks++
		call(r, name, in.Name, "DistanceUpTo", func() {
			if v := ea.DistanceUpTo(in.X, in.Y, math.Inf(1)); !sameValue(v, got) {
				r.add(name, in.Name, "upto", "DistanceUpTo(+Inf)=%v Distance=%v", v, got)
			}
			if !math.IsNaN(got) && !math.IsInf(got, 0) {
				if v := ea.DistanceUpTo(in.X, in.Y, got*1.5+1); !sameValue(v, got) {
					r.add(name, in.Name, "upto", "cutoff not hit: DistanceUpTo=%v Distance=%v", v, got)
				}
				cutoff := got / 2
				v := ea.DistanceUpTo(in.X, in.Y, cutoff)
				if got < cutoff {
					if !sameValue(v, got) {
						r.add(name, in.Name, "upto",
							"below-cutoff value not exact: DistanceUpTo=%v Distance=%v", v, got)
					}
				} else if v < cutoff || v > got {
					r.add(name, in.Name, "upto",
						"abandoned value %v outside [cutoff=%v, d=%v]", v, cutoff, got)
				}
			}
		})
	}

	if cm, ok := p.M.(multivariate.ContextMeasure); ok {
		r.Checks++
		call(r, name, in.Name, "DistanceCtx", func() {
			v, err := cm.DistanceCtx(context.Background(), in.X, in.Y)
			if err != nil {
				r.add(name, in.Name, "ctx", "unexpected error: %v", err)
				return
			}
			if !sameValue(v, got) {
				r.add(name, in.Name, "ctx", "DistanceCtx=%v Distance=%v not bitwise equal", v, got)
			}
		})
		r.Checks++
		call(r, name, in.Name, "DistanceCtx(cancelled)", func() {
			cctx, cancel := context.WithCancel(context.Background())
			cancel()
			if v, err := cm.DistanceCtx(cctx, in.X, in.Y); err == nil && !sameValue(v, got) {
				r.add(name, in.Name, "ctx", "cancelled call returned %v without error (exact %v)", v, got)
			}
		})
	}
}

// CheckMVPanics verifies that every multivariate measure rejects a channel
// mismatch by panicking.
func CheckMVPanics(r *Report, m multivariate.Measure) {
	r.Checks++
	x := multivariate.Series{{1, 2}, {3, 4}}
	y := multivariate.Series{{1}, {2}}
	panicked := false
	func() {
		defer func() { panicked = recover() != nil }()
		m.Distance(x, y)
	}()
	if !panicked {
		r.add(m.Name(), "channel-mismatch", "panic", "Distance(d=2, d=1) did not panic")
	}
}

// mvWrap lifts a univariate series to a one-channel multivariate series.
func mvWrap(x []float64) multivariate.Series {
	s := make(multivariate.Series, len(x))
	for t := range s {
		s[t] = []float64{x[t]}
	}
	return s
}

// uniPair couples a multivariate measure with the univariate counterpart
// it must reproduce bitwise at one channel.
type uniPair struct {
	MV  multivariate.Measure
	Uni measure.Measure
	// SkipNaN skips inputs containing NaN: the masked measures redefine
	// NaN as "missing" rather than propagating it, by design.
	SkipNaN bool
}

// CheckMVUnivariateReduction runs the d=1 reduction route over the
// univariate corpus for one seed: wrapped as one-channel panels, every
// plain multivariate measure must be bitwise identical to its univariate
// counterpart, NaN/Inf/constant/extreme inputs included. Masked measures
// are checked on NaN-free inputs only (NaN means missing there, not
// undefined) — their NaN behavior is pinned by the reference masked DPs.
func CheckMVUnivariateReduction(r *Report, seed int64) {
	couples := []uniPair{
		{MV: multivariate.Euclidean{}, Uni: lockstep.Euclidean()},
		{MV: multivariate.DTWDependent{DeltaPercent: 10}, Uni: elastic.DTW{DeltaPercent: 10}},
		{MV: multivariate.DTWDependent{DeltaPercent: 100}, Uni: elastic.DTW{DeltaPercent: 100}},
		{MV: multivariate.DTWIndependent{DeltaPercent: 10}, Uni: elastic.DTW{DeltaPercent: 10}},
		{MV: multivariate.ERPDependent{G: 0}, Uni: elastic.ERP{G: 0}},
		{MV: multivariate.MSMDependent{C: 0.5}, Uni: elastic.MSM{C: 0.5}},
		{MV: multivariate.Independent{Base: lockstep.Manhattan()}, Uni: lockstep.Manhattan()},
		{MV: multivariate.MaskedEuclidean(0), Uni: lockstep.Euclidean(), SkipNaN: true},
		{MV: multivariate.MaskedManhattan(0), Uni: lockstep.Manhattan(), SkipNaN: true},
	}
	hasNaN := func(s []float64) bool {
		for _, v := range s {
			if math.IsNaN(v) {
				return true
			}
		}
		return false
	}
	for _, in := range Corpus(seed) {
		x, y := mvWrap(in.X), mvWrap(in.Y)
		for _, c := range couples {
			if c.SkipNaN && (hasNaN(in.X) || hasNaN(in.Y)) {
				continue
			}
			r.Checks++
			name := c.MV.Name()
			var mv, uni float64
			if !call(r, name, in.Name, "d=1 MV Distance", func() { mv = c.MV.Distance(x, y) }) {
				continue
			}
			if !call(r, name, in.Name, "d=1 univariate Distance", func() { uni = c.Uni.Distance(in.X, in.Y) }) {
				continue
			}
			if !sameValue(mv, uni) {
				r.add(name, in.Name, "reduction",
					"d=1 value %v != univariate %s value %v", mv, c.Uni.Name(), uni)
			}
		}
	}
}

// FuzzMV drives the multivariate harness for one seed: every registry pair
// against every corpus input, channel-mismatch panics, and the d=1
// univariate reduction route.
func FuzzMV(seed int64) *Report {
	r := &Report{}
	corpus := MVCorpus(seed)
	for _, p := range MVPairs() {
		for _, in := range corpus {
			CheckMVPair(r, p, in)
		}
		CheckMVPanics(r, p.M)
	}
	CheckMVUnivariateReduction(r, seed)
	return r
}
