package oracle

import (
	"math"
	"testing"

	"repro/internal/multivariate"
)

// TestOracleMultivariateFuzz drives the multivariate differential harness:
// dependent/independent/masked/soft measures against full-matrix reference
// DPs over the NaN/Inf/ragged corpus, plus the d=1 bitwise reduction to
// the univariate measures.
func TestOracleMultivariateFuzz(t *testing.T) {
	for _, seed := range fuzzSeeds(t) {
		r := FuzzMV(seed)
		if len(r.Discrepancies) > 0 {
			t.Errorf("seed %d:\n%s", seed, r)
		} else {
			t.Logf("seed %d: multivariate harness passed %d checks", seed, r.Checks)
		}
	}
}

// TestOracleMaskedHandComputed pins the masked lock-step semantics on
// hand-computed panels: valid-pair rescaling, the min-support drop rule,
// and the no-supported-channel fallback.
func TestOracleMaskedHandComputed(t *testing.T) {
	nan := math.NaN()
	x := multivariate.Series{{1, 10}, {2, nan}, {3, 30}, {4, 40}}
	y := multivariate.Series{{1, 10}, {4, 20}, {nan, 30}, {4, 44}}
	// Channel 0: valid pairs t=0,1,3 -> |1-1|+|2-4|+|4-4| = 2, rescaled by
	// 4/3. Channel 1: valid pairs t=0,2,3 -> 0+0+4 = 4, rescaled by 4/3.
	wantManhattan := (2.0*4/3 + 4.0*4/3) / 2
	if got := multivariate.MaskedManhattan(0).Distance(x, y); math.Abs(got-wantManhattan) > 1e-12 {
		t.Errorf("masked manhattan = %v, want %v", got, wantManhattan)
	}
	// Euclidean: channel 0 sum 0+4+0=4 -> sqrt(4*4/3); channel 1 sum
	// 0+0+16=16 -> sqrt(16*4/3).
	wantEuclidean := (math.Sqrt(4.0*4/3) + math.Sqrt(16.0*4/3)) / 2
	if got := multivariate.MaskedEuclidean(0).Distance(x, y); math.Abs(got-wantEuclidean) > 1e-12 {
		t.Errorf("masked euclidean = %v, want %v", got, wantEuclidean)
	}
	// Min-support 0.9 requires ceil(0.9*4)=4 valid pairs: both channels
	// have 3, so nothing survives.
	if got := multivariate.MaskedEuclidean(0.9).Distance(x, y); !math.IsInf(got, 1) {
		t.Errorf("masked euclidean s=0.9 = %v, want +Inf", got)
	}
	// Min-support 0.75 keeps both channels (3 >= ceil(0.75*4)=3).
	if got := multivariate.MaskedManhattan(0.75).Distance(x, y); math.Abs(got-wantManhattan) > 1e-12 {
		t.Errorf("masked manhattan s=0.75 = %v, want %v", got, wantManhattan)
	}
	// A fully missing channel is dropped even at zero min-support.
	z := multivariate.Series{{nan, 1}, {nan, 2}}
	w := multivariate.Series{{nan, 1}, {5, 2}}
	if got := multivariate.MaskedManhattan(0).Distance(z, w); got != 0 {
		t.Errorf("fully-missing channel not dropped: %v", got)
	}
}

// TestOracleMVDependentUnequalLengths pins the m-by-n band: dependent
// measures accept ragged pairs and agree with the full-matrix references.
func TestOracleMVDependentUnequalLengths(t *testing.T) {
	x := multivariate.Series{{0, 1}, {1, 0}, {2, -1}, {3, 1}, {2, 2}}
	y := multivariate.Series{{0, 1}, {2, -1}, {2, 2}}
	cases := []struct {
		m   multivariate.Measure
		ref MVRef
	}{
		{multivariate.DTWDependent{DeltaPercent: 10}, refMVDTW(10)},
		{multivariate.DTWDependent{DeltaPercent: 100}, refMVDTW(100)},
		{multivariate.ERPDependent{G: 0}, refMVERP(0)},
		{multivariate.MSMDependent{C: 0.5}, refMVMSM(0.5)},
	}
	for _, c := range cases {
		got := c.m.Distance(x, y)
		want := c.ref(x, y)
		if !agree(got, want, TolExact) {
			t.Errorf("%s ragged: optimized %v reference %v", c.m.Name(), got, want)
		}
		if rev := c.m.Distance(y, x); !sameValue(got, rev) {
			t.Errorf("%s ragged not symmetric: %v vs %v", c.m.Name(), got, rev)
		}
	}
}

// TestOracleSoftDTWProperties pins the soft-DTW conventions: the raw value
// approaches hard DTW as gamma shrinks, and the normalized form is zero on
// identical series and positive off them.
func TestOracleSoftDTWProperties(t *testing.T) {
	x := multivariate.Series{{0, 0}, {1, 1}, {2, 0}, {1, -1}}
	y := multivariate.Series{{0, 1}, {1, 0}, {3, 0}, {1, -2}}
	hard := multivariate.DTWDependent{DeltaPercent: 100}.Distance(x, y)
	soft := multivariate.SoftDTW{Gamma: 1e-3}.Distance(x, y)
	if math.Abs(hard-soft) > 1e-2*math.Max(1, hard) {
		t.Errorf("soft-DTW gamma->0 %v far from hard DTW %v", soft, hard)
	}
	norm := multivariate.SoftDTW{Gamma: 0.5, Normalize: true}
	if d := norm.Distance(x, x); d != 0 {
		t.Errorf("normalized self-distance = %v, want 0", d)
	}
	if d := norm.Distance(x, y); d <= 0 {
		t.Errorf("normalized cross-distance = %v, want > 0", d)
	}
}
