package oracle

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/elastic"
	"repro/internal/eval"
	"repro/internal/measure"
	"repro/internal/search"
)

// wavefronter is the diagonal-blocked parallel DP route the elastic
// measures expose. Declared locally so the harness stays decoupled from
// the concrete elastic types.
type wavefronter interface {
	DistanceWavefront(ctx context.Context, x, y []float64) (float64, error)
}

// Discrepancy is one disagreement the harness found, identifying the
// measure, the input case, the contract that was violated, and the values
// involved.
type Discrepancy struct {
	Measure string
	Input   string
	Kind    string // oracle | symmetry | stateful | gridstate | upto | wavefront | panel | lowerbound | panic | engine
	Detail  string
}

func (d Discrepancy) String() string {
	return fmt.Sprintf("%-22s %-28s %-10s %s", d.Measure, d.Input, d.Kind, d.Detail)
}

// Report accumulates harness results: the number of individual checks run
// and every discrepancy found.
type Report struct {
	Checks        int
	Discrepancies []Discrepancy
}

func (r *Report) add(measureName, input, kind, format string, args ...any) {
	r.Discrepancies = append(r.Discrepancies, Discrepancy{
		Measure: measureName, Input: input, Kind: kind,
		Detail: fmt.Sprintf(format, args...),
	})
}

// String renders the structured report: a per-kind summary followed by one
// line per discrepancy.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "oracle harness: %d checks, %d discrepancies\n", r.Checks, len(r.Discrepancies))
	if len(r.Discrepancies) == 0 {
		return b.String()
	}
	byKind := map[string]int{}
	for _, d := range r.Discrepancies {
		byKind[d.Kind]++
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %s: %d\n", k, byKind[k])
	}
	fmt.Fprintf(&b, "%-22s %-28s %-10s %s\n", "MEASURE", "INPUT", "KIND", "DETAIL")
	for _, d := range r.Discrepancies {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// agree reports whether two distance values match within the pair's
// relative tolerance, after the evaluation layer's NaN -> +Inf
// sanitization (the only view downstream code ever sees).
func agree(a, b, tol float64) bool {
	a, b = measure.Sanitize(a), measure.Sanitize(b)
	if math.Float64bits(a) == math.Float64bits(b) || a == b {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// sameValue is bitwise equality with NaN equal to itself.
func sameValue(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) ||
		(math.IsNaN(a) && math.IsNaN(b))
}

// call invokes f, converting a panic into a reported discrepancy; ok is
// false when f panicked.
func call(r *Report, measureName, input, kind string, f func()) (ok bool) {
	defer func() {
		if p := recover(); p != nil {
			r.add(measureName, input, "panic", "%s panicked: %v", kind, p)
		}
	}()
	f()
	return true
}

// CheckPair runs every applicable contract check for one measure on one
// input: oracle agreement, bitwise symmetry, the Stateful prepared path,
// the EarlyAbandoning DistanceUpTo contract (both the exact and the
// abandoning branch), and the LowerBounded cascade.
func CheckPair(r *Report, p Pair, in Input) {
	name := p.M.Name()
	wellBehaved := in.Finite && !in.Extreme

	var got float64
	if !call(r, name, in.Name, "Distance", func() { got = p.M.Distance(in.X, in.Y) }) {
		return
	}

	// Route 1 vs route 2: optimized against the reference implementation.
	if !p.FiniteOnly || wellBehaved {
		r.Checks++
		want := p.Ref(in.X, in.Y)
		if !agree(got, want, p.Tol) {
			r.add(name, in.Name, "oracle", "optimized=%v reference=%v (tol %g)", got, want, p.Tol)
		}
	}

	// Declared bitwise symmetry. On non-finite inputs comparison-order
	// effects may flip NaN for Inf, so only the sanitized values must
	// match there.
	if measure.IsSymmetric(p.M) {
		r.Checks++
		var rev float64
		if call(r, name, in.Name, "Distance(y,x)", func() { rev = p.M.Distance(in.Y, in.X) }) {
			if wellBehaved && !sameValue(got, rev) {
				r.add(name, in.Name, "symmetry", "d(x,y)=%v d(y,x)=%v not bitwise equal", got, rev)
			} else if !wellBehaved && !agree(got, rev, p.Tol) {
				r.add(name, in.Name, "symmetry", "d(x,y)=%v d(y,x)=%v", got, rev)
			}
		}
	}

	// Stateful prepared path must match the direct path.
	if sm, ok := p.M.(measure.Stateful); ok {
		r.Checks++
		call(r, name, in.Name, "PreparedDistance", func() {
			pd := sm.PreparedDistance(sm.Prepare(in.X), sm.Prepare(in.Y))
			if !agree(got, pd, p.Tol) {
				r.add(name, in.Name, "stateful", "Distance=%v PreparedDistance=%v", got, pd)
			}
		})
	}

	// GridStateful: candidate state derived from shared grid state must be
	// bitwise interchangeable with Prepare's (the grid tuning engine relies
	// on it for exactness), and the family must at least contain the
	// measure itself.
	if gs, ok := p.M.(measure.GridStateful); ok {
		r.Checks++
		call(r, name, in.Name, "GridPrepare", func() {
			if !gs.SharesPreparation(p.M) {
				r.add(name, in.Name, "gridstate", "SharesPreparation(self) = false")
			}
			direct := gs.PreparedDistance(gs.Prepare(in.X), gs.Prepare(in.Y))
			viaGrid := gs.PreparedDistance(
				gs.CandidateState(gs.GridPrepare(in.X)),
				gs.CandidateState(gs.GridPrepare(in.Y)))
			if wellBehaved && !sameValue(direct, viaGrid) {
				r.add(name, in.Name, "gridstate",
					"Prepare=%v CandidateState(GridPrepare)=%v not bitwise equal", direct, viaGrid)
			} else if !wellBehaved && !agree(direct, viaGrid, p.Tol) {
				r.add(name, in.Name, "gridstate",
					"Prepare=%v CandidateState(GridPrepare)=%v", direct, viaGrid)
			}
		})
	} else if ps, ok := p.M.(measure.PreparationSharing); ok {
		r.Checks++
		if !ps.SharesPreparation(p.M) {
			r.add(name, in.Name, "gridstate", "SharesPreparation(self) = false")
		}
	}

	// EarlyAbandoning: with an infinite cutoff, and with any cutoff the
	// final value stays below, DistanceUpTo must equal Distance exactly;
	// with a cutoff below the distance it must return a certified lower
	// bound in [cutoff, Distance].
	if ea, ok := p.M.(measure.EarlyAbandoning); ok {
		r.Checks++
		call(r, name, in.Name, "DistanceUpTo", func() {
			if v := ea.DistanceUpTo(in.X, in.Y, math.Inf(1)); !sameValue(v, got) {
				r.add(name, in.Name, "upto", "DistanceUpTo(+Inf)=%v Distance=%v", v, got)
			}
			if !math.IsNaN(got) && !math.IsInf(got, 0) {
				if v := ea.DistanceUpTo(in.X, in.Y, got*1.5+1); !sameValue(v, got) {
					r.add(name, in.Name, "upto", "cutoff not hit: DistanceUpTo=%v Distance=%v", v, got)
				}
				cutoff := got / 2
				v := ea.DistanceUpTo(in.X, in.Y, cutoff)
				if got < cutoff {
					// A negative distance (rounding noise on similarity-style
					// measures like cosine) puts got/2 above it, so the
					// exact-value clause of the contract applies.
					if !sameValue(v, got) {
						r.add(name, in.Name, "upto",
							"below-cutoff value not exact: DistanceUpTo=%v Distance=%v", v, got)
					}
				} else if v < cutoff || v > got {
					r.add(name, in.Name, "upto",
						"abandoned value %v outside [cutoff=%v, d=%v]", v, cutoff, got)
				}
			}
		})
	}

	// Wavefront route: the diagonal-blocked parallel DP must reproduce the
	// scalar DP bitwise on well-behaved input — the blocking reorders when
	// cells are computed, never what they are computed from. On non-finite
	// input the scalar DTW loop may exit early through an all-Inf band row
	// where the wavefront evaluates through, so there only the sanitized
	// values must agree. A pre-cancelled context must either surface an
	// error or still return the exact value — never garbage.
	if wf, ok := p.M.(wavefronter); ok {
		r.Checks++
		call(r, name, in.Name, "DistanceWavefront", func() {
			v, err := wf.DistanceWavefront(context.Background(), in.X, in.Y)
			if err != nil {
				r.add(name, in.Name, "wavefront", "unexpected error: %v", err)
				return
			}
			if wellBehaved && !sameValue(v, got) {
				r.add(name, in.Name, "wavefront",
					"wavefront=%v scalar=%v not bitwise equal", v, got)
			} else if !wellBehaved && !agree(v, got, p.Tol) {
				r.add(name, in.Name, "wavefront", "wavefront=%v scalar=%v", v, got)
			}
		})
		r.Checks++
		call(r, name, in.Name, "DistanceWavefront(cancelled)", func() {
			cctx, cancel := context.WithCancel(context.Background())
			cancel()
			if v, err := wf.DistanceWavefront(cctx, in.X, in.Y); err == nil && !agree(v, got, p.Tol) {
				r.add(name, in.Name, "wavefront",
					"cancelled call returned %v without error (scalar %v)", v, got)
			}
		})
	}

	// LowerBounded: the cascade must never exceed the true distance.
	if lb, ok := p.M.(measure.LowerBounded); ok && wellBehaved {
		r.Checks++
		call(r, name, in.Name, "LowerBound", func() {
			cx := lb.NewBoundContext(len(in.X))
			cy := lb.NewBoundContext(len(in.Y))
			cx.Fill(in.X)
			cy.Fill(in.Y)
			sd := measure.Sanitize(got)
			if v := lb.LowerBound(in.X, in.Y, cx, cy, math.Inf(1)); v > sd {
				r.add(name, in.Name, "lowerbound", "LowerBound=%v > Distance=%v", v, sd)
			}
		})
	}
}

// CheckPanicsOnMismatch verifies the documented contract that equal-length
// measures reject mismatched series lengths by panicking rather than
// reading out of bounds or returning garbage.
func CheckPanicsOnMismatch(r *Report, m measure.Measure) {
	r.Checks++
	x := []float64{1, 2, 3, 4}
	y := []float64{1, 2}
	mustPanic := func(route string, f func()) {
		panicked := false
		func() {
			defer func() { panicked = recover() != nil }()
			f()
		}()
		if !panicked {
			r.add(m.Name(), "mismatched-lengths", "panic", "%s(len 4, len 2) did not panic", route)
		}
	}
	mustPanic("Distance", func() { m.Distance(x, y) })
	if wf, ok := m.(wavefronter); ok {
		r.Checks++
		mustPanic("DistanceWavefront", func() { wf.DistanceWavefront(context.Background(), x, y) })
	}
}

// CheckPanel runs the batched panel route differential for one
// PanelEvaluator: PanelDistances against per-pair Distance bitwise,
// PanelDistancesUpTo under the per-candidate early-abandoning contract
// (exact below the cutoff, a certified value in [cutoff, distance] at or
// above it), and the ragged-length decline rule.
func CheckPanel(r *Report, pe measure.PanelEvaluator, q []float64, panel [][]float64, input string) {
	name := pe.Name()
	exact := make([]float64, len(panel))
	if !call(r, name, input, "Distance", func() {
		for k := range panel {
			exact[k] = pe.Distance(q, panel[k])
		}
	}) {
		return
	}

	r.Checks++
	call(r, name, input, "PanelDistances", func() {
		out := make([]float64, len(panel))
		if !pe.PanelDistances(q, panel, out) {
			r.add(name, input, "panel", "declined a uniform-length panel")
			return
		}
		for k := range out {
			if !sameValue(out[k], exact[k]) {
				r.add(name, input, "panel",
					"candidate %d: panel=%v scalar=%v not bitwise equal", k, out[k], exact[k])
				return
			}
		}
	})

	r.Checks++
	call(r, name, input, "PanelDistancesUpTo", func() {
		// +Inf must reproduce the exact values; 0 and a finite exact
		// distance place real cutoffs inside the panel's value range.
		cutoffs := []float64{math.Inf(1), 0}
		for _, d := range exact {
			if !math.IsNaN(d) && !math.IsInf(d, 0) {
				cutoffs = append(cutoffs, d)
				break
			}
		}
		for _, cutoff := range cutoffs {
			out := make([]float64, len(panel))
			if !pe.PanelDistancesUpTo(q, panel, cutoff, out) {
				r.add(name, input, "panel", "UpTo declined a uniform-length panel")
				return
			}
			for k := range out {
				d := exact[k]
				// NaN distances pass vacuously: every comparison below is
				// false, which is exactly the contract (any value is a
				// lower bound of the sanitized +Inf).
				if d < cutoff {
					if !sameValue(out[k], d) {
						r.add(name, input, "panel",
							"cutoff=%v candidate %d: below-cutoff value %v != exact %v",
							cutoff, k, out[k], d)
						return
					}
				} else if out[k] < cutoff || out[k] > d {
					r.add(name, input, "panel",
						"cutoff=%v candidate %d: %v outside [cutoff, %v]", cutoff, k, out[k], d)
					return
				}
			}
		}
	})

	// Ragged panels must be declined, not evaluated or panicked on.
	if len(panel) >= 2 && len(q) > 0 {
		r.Checks++
		call(r, name, input, "PanelDistances(ragged)", func() {
			ragged := append([][]float64(nil), panel...)
			ragged[len(ragged)-1] = ragged[len(ragged)-1][:len(q)-1]
			out := make([]float64, len(ragged))
			if pe.PanelDistances(q, ragged, out) {
				r.add(name, input, "panel", "accepted a ragged panel")
			}
			if pe.PanelDistancesUpTo(q, ragged, 1, out) {
				r.add(name, input, "panel", "UpTo accepted a ragged panel")
			}
		})
	}
}

// CheckEngines runs the third differential route: the pruned search engine
// against exhaustive matrix evaluation, for both 1-NN (queries vs refs)
// and leave-one-out over refs. Neighbors must match exactly — including
// ties — and so must the reported distances.
func CheckEngines(r *Report, m measure.Measure, queries, refs [][]float64) {
	name := m.Name()
	call(r, name, "engine", "OneNN", func() {
		r.Checks++
		got := search.OneNN(m, queries, refs)
		e := eval.Matrix(m, queries, refs)
		want := eval.Neighbors(e)
		for i := range want {
			if got.Indices[i] != want[i] {
				r.add(name, fmt.Sprintf("onenn/query=%d", i), "engine",
					"pruned neighbor %d, matrix neighbor %d", got.Indices[i], want[i])
				continue
			}
			if want[i] >= 0 && !sameValue(got.Distances[i], e[i][want[i]]) {
				r.add(name, fmt.Sprintf("onenn/query=%d", i), "engine",
					"pruned distance %v, matrix distance %v", got.Distances[i], e[i][want[i]])
			}
		}
	})
	call(r, name, "engine", "LeaveOneOut", func() {
		r.Checks++
		got := search.LeaveOneOut(m, refs)
		w := eval.Matrix(m, refs, refs)
		want := eval.LeaveOneOutNeighbors(w)
		for i := range want {
			if got.Indices[i] != want[i] {
				r.add(name, fmt.Sprintf("loo/row=%d", i), "engine",
					"pruned neighbor %d, matrix neighbor %d", got.Indices[i], want[i])
				continue
			}
			if want[i] >= 0 && !sameValue(got.Distances[i], w[i][want[i]]) {
				r.add(name, fmt.Sprintf("loo/row=%d", i), "engine",
					"pruned distance %v, matrix distance %v", got.Distances[i], w[i][want[i]])
			}
		}
	})
}

// Fuzz drives the full harness for one seed: every registry pair against
// every corpus input, the mismatched-length contract, and both search
// engines on small reference sets (one zero-mean, one strictly positive
// for the probability-style measures), each salted with duplicate series
// so exact ties exercise tie-breaking.
func Fuzz(seed int64) *Report {
	r := &Report{}
	corpus := Corpus(seed)
	pairs := Pairs()

	// Shrink the wavefront block so even the short corpus series schedule
	// several blocks per diagonal — otherwise every case would be a single
	// block and the cross-block boundary hand-off would go unexercised.
	restore := elastic.SetWavefrontBlock(4)
	defer restore()

	for _, p := range pairs {
		for _, in := range corpus {
			CheckPair(r, p, in)
		}
		CheckPanicsOnMismatch(r, p.M)
	}

	// Panel route: every corpus series of one length forms a candidate
	// panel — NaN, Inf, extreme, and constant series included — queried
	// both with a well-behaved series and with a non-finite one.
	byLen := map[int][][]float64{}
	for _, in := range corpus {
		byLen[len(in.X)] = append(byLen[len(in.X)], in.X, in.Y)
	}
	for _, p := range pairs {
		pe, ok := p.M.(measure.PanelEvaluator)
		if !ok {
			continue
		}
		for _, n := range Lengths {
			series := byLen[n]
			if len(series) == 0 {
				continue
			}
			CheckPanel(r, pe, series[0], series, fmt.Sprintf("panel/len=%d", n))
			CheckPanel(r, pe, series[len(series)-1], series, fmt.Sprintf("panel-tail-q/len=%d", n))
		}
	}
	queries, refs := EngineSets(seed, false)
	pqueries, prefs := EngineSets(seed, true)
	for _, p := range pairs {
		CheckEngines(r, p.M, queries, refs)
		CheckEngines(r, p.M, pqueries, prefs)
	}

	// Snapshot route: snapshot-backed search/eval must be bitwise identical
	// to build-inline. The engine sets cover duplicates/ties; the byLen
	// panels re-use the corpus series so NaN, Inf, constant, and extreme
	// values flow through the prepared-state layer too.
	for _, p := range pairs {
		CheckSnapshot(r, p.M, queries, refs, "snapshot/engine")
		CheckSnapshot(r, p.M, pqueries, prefs, "snapshot/engine-pos")
		for _, n := range []int{1, 7, 33} {
			series := byLen[n]
			if len(series) == 0 {
				continue
			}
			if len(series) > 16 {
				series = series[:16]
			}
			nq := len(series)
			if nq > 4 {
				nq = 4
			}
			CheckSnapshot(r, p.M, series[:nq], series, fmt.Sprintf("snapshot/len=%d", n))
		}
	}
	// Grid route once per seed: a thinned DTW grid (lower-bounded family
	// cascade) and a thinned SINK grid (shared-core GridStateful family),
	// on well-behaved refs and on a NaN/Inf-poisoned train set.
	degenerate := [][]float64{
		refs[0],
		poison(append([]float64(nil), refs[1]...), 2, math.NaN()),
		poison(append([]float64(nil), refs[2]...), 5, math.Inf(1)),
		constant(len(refs[0]), 0),
		refs[3],
		poison(append([]float64(nil), refs[4]...), 0, math.Inf(-1)),
	}
	for _, g := range []eval.Grid{eval.Thin(eval.DTWGrid(), 5), eval.Thin(eval.SINKGrid(), 4)} {
		CheckSnapshotGrid(r, g, refs, "snapshot/grid")
		CheckSnapshotGrid(r, g, degenerate, "snapshot/grid-degenerate")
	}
	return r
}
