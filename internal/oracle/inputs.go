package oracle

import (
	"fmt"
	"math"
	"math/rand"
)

// Input is one fuzz case: a pair of equal-length series plus the flags the
// harness uses to decide which checks apply.
type Input struct {
	Name string
	X, Y []float64
	// Finite is false when either series contains NaN or +/-Inf.
	Finite bool
	// Extreme marks magnitudes large enough that squaring overflows,
	// which FiniteOnly measures treat like non-finite input.
	Extreme bool
}

// Lengths are the series lengths every generated scenario is instantiated
// at: the empty pair, a single point, short series below the minimum band
// width, and lengths around the FFT padding boundary (32 is a power of two,
// 33 forces padding).
var Lengths = []int{0, 1, 2, 3, 7, 32, 33}

// Corpus builds the deterministic fuzz corpus for one seed: every scenario
// at every length, randomized draws from the seeded generator. The same
// seed always yields the same corpus.
func Corpus(seed int64) []Input {
	rng := rand.New(rand.NewSource(seed))
	var in []Input
	add := func(name string, n int, x, y []float64) {
		in = append(in, classify(fmt.Sprintf("%s/len=%d", name, n), x, y))
	}
	for _, n := range Lengths {
		add("gaussian", n, randn(rng, n, 1), randn(rng, n, 1))
		add("walk", n, walk(rng, n), walk(rng, n))
		add("const-equal", n, constant(n, 1.5), constant(n, 1.5))
		add("const-diff", n, constant(n, -2), constant(n, 3))
		add("const-vs-random", n, constant(n, 0.5), randn(rng, n, 1))
		add("zeros", n, constant(n, 0), constant(n, 0))
		add("zeros-vs-random", n, constant(n, 0), randn(rng, n, 1))
		ix, iy := dup(randn(rng, n, 1))
		add("identical", n, ix, iy)
		nx, ny := nearDup(rng, randn(rng, n, 1))
		add("near-duplicate", n, nx, ny)
		add("positive", n, positive(rng, n), positive(rng, n))
		add("negative", n, negate(positive(rng, n)), negate(positive(rng, n)))
		add("tiny", n, randn(rng, n, 1e-8), randn(rng, n, 1e-8))
		add("large", n, randn(rng, n, 1e6), randn(rng, n, 1e6))
		if n > 0 {
			add("extreme", n, randn(rng, n, 1e200), randn(rng, n, 1e200))
			add("nan-single", n, poison(randn(rng, n, 1), n/2, math.NaN()), randn(rng, n, 1))
			add("nan-both", n, poison(randn(rng, n, 1), 0, math.NaN()),
				poison(randn(rng, n, 1), n-1, math.NaN()))
			add("all-nan", n, constant(n, math.NaN()), randn(rng, n, 1))
			add("posinf", n, poison(randn(rng, n, 1), n/2, math.Inf(1)), randn(rng, n, 1))
			add("neginf", n, randn(rng, n, 1), poison(randn(rng, n, 1), n/2, math.Inf(-1)))
			add("inf-vs-inf", n, poison(randn(rng, n, 1), 0, math.Inf(1)),
				poison(randn(rng, n, 1), 0, math.Inf(1)))
		}
	}
	return in
}

// classify fills the Finite/Extreme flags from the data.
func classify(name string, x, y []float64) Input {
	in := Input{Name: name, X: x, Y: y, Finite: true}
	check := func(s []float64) {
		for _, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				in.Finite = false
			}
			if math.Abs(v) > 1e150 {
				in.Extreme = true
			}
		}
	}
	check(x)
	check(y)
	return in
}

// EngineSets builds the small query/reference sets of the engine
// differential: seeded random series salted with exact duplicates (so
// every measure produces exact-distance ties that stress tie-breaking) and
// a constant row. With positive set, all values are shifted strictly
// positive for the probability-style measures.
func EngineSets(seed int64, positive bool) (queries, refs [][]float64) {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	const n, m = 9, 16
	gen := func() []float64 {
		s := randn(rng, m, 1)
		if positive {
			for i := range s {
				s[i] = math.Abs(s[i]) + 0.1
			}
		}
		return s
	}
	refs = make([][]float64, n)
	for i := range refs {
		refs[i] = gen()
	}
	// Duplicate rows: a query tied between refs[0] and refs[3] (or refs[1]
	// and refs[6]) must resolve to the lower index in both engines.
	refs[3] = append([]float64(nil), refs[0]...)
	refs[6] = append([]float64(nil), refs[1]...)
	refs[7] = constant(m, 0.5)
	queries = make([][]float64, 5)
	for i := range queries {
		queries[i] = gen()
	}
	queries[1] = append([]float64(nil), refs[0]...)
	queries[3] = constant(m, 0.5)
	return queries, refs
}

func randn(rng *rand.Rand, n int, scale float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64() * scale
	}
	return s
}

func walk(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	var v float64
	for i := range s {
		v += rng.NormFloat64() * 0.3
		s[i] = v
	}
	return s
}

func constant(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func positive(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.Float64()*2 + 0.1
	}
	return s
}

func negate(s []float64) []float64 {
	for i := range s {
		s[i] = -s[i]
	}
	return s
}

func dup(x []float64) ([]float64, []float64) {
	y := make([]float64, len(x))
	copy(y, x)
	return x, y
}

func nearDup(rng *rand.Rand, x []float64) ([]float64, []float64) {
	y := make([]float64, len(x))
	for i := range x {
		y[i] = x[i] + rng.NormFloat64()*1e-9
	}
	return x, y
}

func poison(s []float64, at int, v float64) []float64 {
	if len(s) > 0 {
		s[at] = v
	}
	return s
}
