package oracle

import (
	"context"
	"fmt"
	"math"

	"repro/internal/profile"
)

// The matrix-profile oracle: the STOMP streaming engine differentially
// checked against a naive sliding-scan join that recomputes every
// window-pair distance from scratch — no FFT, no streamed cross terms, no
// shared moments. Agreement is TolFFT (the engine's leading rows ride the
// FFT cross-correlation); claimed nearest-neighbor pairs additionally
// recompute to their reported distance directly.

// profileWindows are the window lengths each corpus input is joined at
// (filtered to w <= n per input): the minimum legal window, odd/even zone
// radii, and one long enough to cross the engine's 3-row block seams many
// times.
var profileWindows = []int{2, 3, 5, 16}

// profilePair couples an engine measure with an independent full-window
// reference distance.
type profilePair struct {
	m   profile.Measure
	ref func(x, y []float64) float64
}

func profilePairs() []profilePair {
	return []profilePair{
		{profile.ZNormEuclidean(), refWindowZNorm},
		{profile.Euclidean(), refWindowEuclidean},
		{profile.PNorm(1), refWindowPNorm(1)},
		{profile.PNorm(3), refWindowPNorm(3)},
	}
}

// refWindowZNorm z-normalizes both windows by explicit two-pass moments
// and takes the plain Euclidean distance of the z-scores, with the
// sqrt(2w) ceiling for zero-variance windows (the engine's convention,
// reached here without the MASS identity).
func refWindowZNorm(x, y []float64) float64 {
	w := float64(len(x))
	zx, cx := znormWin(x)
	zy, cy := znormWin(y)
	if cx || cy {
		return math.Sqrt(2 * w)
	}
	var s float64
	for i := range zx {
		d := zx[i] - zy[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// znormWin returns the two-pass z-scores of one window and whether it is
// constant under the shared relative-variance predicate.
func znormWin(x []float64) ([]float64, bool) {
	w := float64(len(x))
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= w
	var variance, meanSq float64
	for _, v := range x {
		d := v - mean
		variance += d * d
		meanSq += v * v
	}
	variance /= w
	meanSq /= w
	if variance <= 1e-12*(meanSq+1) {
		return nil, true
	}
	std := math.Sqrt(variance)
	z := make([]float64, len(x))
	for i, v := range x {
		z[i] = (v - mean) / std
	}
	return z, false
}

func refWindowEuclidean(x, y []float64) float64 {
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func refWindowPNorm(p float64) func(x, y []float64) float64 {
	return func(x, y []float64) float64 {
		var s float64
		for i := range x {
			s += math.Pow(math.Abs(x[i]-y[i]), p)
		}
		return math.Pow(s, 1/p)
	}
}

// naiveProfileJoin is the oracle join: for every query window, scan every
// target window, skip the self-join exclusion zone, and keep the first
// strictly smaller distance (NaN compares false, so poisoned windows are
// never selected) — the same argmin convention the engine finalizes with.
func naiveProfileJoin(a, b []float64, w int, ref func(x, y []float64) float64, self bool) ([]float64, []int) {
	rows := len(a) - w + 1
	cols := len(b) - w + 1
	excl := 0
	if self {
		excl = w / 2
		if excl < 1 {
			excl = 1
		}
	}
	vals := make([]float64, rows)
	idx := make([]int, rows)
	for i := 0; i < rows; i++ {
		best, bestJ := math.Inf(1), -1
		for j := 0; j < cols; j++ {
			if self && j >= i-excl && j <= i+excl {
				continue
			}
			if d := ref(a[i:i+w], b[j:j+w]); d < best {
				best, bestJ = d, j
			}
		}
		vals[i], idx[i] = best, bestJ
	}
	return vals, idx
}

// agreeProfile compares two profile distances on their squares as well:
// the FFT error lives in the dot-product cross term, which the squared
// distance is linear in, while the final square root amplifies rounding
// near zero — a self-match whose correlation is within 1e-12 of exact
// surfaces as ~1e-5 of distance residue, far over TolFFT on the raw
// values but well inside it on the squares.
func agreeProfile(a, b float64) bool {
	return agree(a, b, TolFFT) || agree(a*a, b*b, TolFFT)
}

// checkProfileJoin runs one engine join and verifies it cell-by-cell
// against the naive scan: every row done, Completed == 1, values within
// TolFFT, and each claimed neighbor pair recomputing to its reported
// distance.
func checkProfileJoin(r *Report, eng *profile.Engine, p profilePair, in Input, w int, self bool) {
	label := fmt.Sprintf("profile[%s,w=%d,self=%v]", p.m.Name(), w, self)
	var res profile.Result
	var err error
	if !call(r, label, in.Name, "join", func() {
		if self {
			err = eng.SelfJoinInto(context.Background(), in.X, w, &res)
		} else {
			err = eng.ABJoinInto(context.Background(), in.X, in.Y, w, &res)
		}
	}) {
		return
	}
	r.Checks++
	if err != nil {
		r.add(label, in.Name, "oracle", "uncancelled join returned error %v", err)
		return
	}
	if res.Completed != 1 {
		r.add(label, in.Name, "oracle", "uncancelled join Completed = %v, want 1", res.Completed)
	}
	b := in.X
	if !self {
		b = in.Y
	}
	vals, _ := naiveProfileJoin(in.X, b, w, p.ref, self)
	for i := range vals {
		if !res.Done[i] {
			r.add(label, in.Name, "oracle", "row %d not marked done", i)
			continue
		}
		if !agreeProfile(res.Values[i], vals[i]) {
			r.add(label, in.Name, "oracle", "row %d: engine %v, naive scan %v",
				i, res.Values[i], vals[i])
		}
		if j := res.Indices[i]; j >= 0 {
			d := p.ref(in.X[i:i+w], b[j:j+w])
			if !agreeProfile(res.Values[i], d) {
				r.add(label, in.Name, "oracle",
					"row %d: claimed neighbor %d recomputes to %v, engine reported %v",
					i, j, d, res.Values[i])
			}
		} else if !math.IsInf(res.Values[i], 1) {
			r.add(label, in.Name, "oracle",
				"row %d: no neighbor claimed but value %v is not +Inf", i, res.Values[i])
		}
	}
}

// checkProfileCancelled verifies the pre-cancelled contract: a join handed
// an already-cancelled context returns context.Canceled with zero rows
// done and Completed == 0.
func checkProfileCancelled(r *Report, in Input, w int) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := profile.New(profile.Options{Workers: 1, BlockRows: 2})
	var res profile.Result
	err := eng.SelfJoinInto(ctx, in.X, w, &res)
	r.Checks++
	if err != context.Canceled {
		r.add("profile[cancel]", in.Name, "oracle", "pre-cancelled join returned %v, want context.Canceled", err)
	}
	if res.Completed != 0 {
		r.add("profile[cancel]", in.Name, "oracle", "pre-cancelled join Completed = %v, want 0", res.Completed)
	}
	for i, done := range res.Done {
		if done {
			r.add("profile[cancel]", in.Name, "oracle", "pre-cancelled join marked row %d done", i)
			break
		}
	}
}

// FuzzProfile runs the matrix-profile differential for one seed: every
// corpus input at every applicable window length, each measure through one
// reused engine (BlockRows 3 forces many block seams and leading-row
// re-seeds), self-join and AB-join both. Extreme-magnitude inputs are
// skipped — their squared cross terms overflow through the FFT seed, the
// same reason FiniteOnly measures skip them.
func FuzzProfile(r *Report, seed int64) {
	corpus := Corpus(seed)
	for _, p := range profilePairs() {
		eng := profile.New(profile.Options{Measure: p.m, BlockRows: 3})
		for _, in := range corpus {
			if in.Extreme {
				continue
			}
			for _, w := range profileWindows {
				if w > len(in.X) || w > len(in.Y) {
					continue
				}
				checkProfileJoin(r, eng, p, in, w, true)
				checkProfileJoin(r, eng, p, in, w, false)
			}
		}
	}
	for _, in := range corpus {
		if len(in.X) >= 8 && in.Finite {
			checkProfileCancelled(r, in, 4)
			break
		}
	}
}
