package oracle

import (
	"flag"
	"math"
	"testing"

	"repro/internal/elastic"
	"repro/internal/embedding"
	"repro/internal/eval"
	"repro/internal/kernel"
	"repro/internal/lockstep"
	"repro/internal/measure"
	"repro/internal/search"
	"repro/internal/sliding"
)

// -oracle.long widens the fuzzing campaign from the fixed short-mode seeds
// to an extended randomized sweep.
var oracleLong = flag.Bool("oracle.long", false, "run the extended oracle fuzzing campaign")

// fuzzSeeds returns the deterministic seed schedule: one seed under
// -short, a small fixed set by default, a long sweep under -oracle.long.
func fuzzSeeds(t *testing.T) []int64 {
	if *oracleLong {
		seeds := make([]int64, 0, 32)
		for s := int64(1); s <= 32; s++ {
			seeds = append(seeds, s)
		}
		return seeds
	}
	if testing.Short() {
		return []int64{1}
	}
	return []int64{1, 2, 3}
}

// TestOracleDifferentialFuzz is the tentpole: every registered measure on
// the randomized and adversarial corpus, checked against its reference
// implementation and its optional-interface contracts, plus both search
// engines against exhaustive matrix evaluation. Failures print the full
// structured discrepancy report.
func TestOracleDifferentialFuzz(t *testing.T) {
	for _, seed := range fuzzSeeds(t) {
		r := Fuzz(seed)
		if len(r.Discrepancies) > 0 {
			t.Errorf("seed %d:\n%s", seed, r)
		} else {
			t.Logf("seed %d: oracle harness passed %d checks", seed, r.Checks)
		}
	}
}

// TestOracleCoverageComplete pins the registry to the library inventory:
// every measure any All() registry returns must have a reference
// implementation in Pairs(). A new measure without an oracle fails here.
func TestOracleCoverageComplete(t *testing.T) {
	covered := map[string]bool{}
	for _, p := range Pairs() {
		covered[p.M.Name()] = true
	}
	var registered []measure.Measure
	registered = append(registered, lockstep.All()...)
	registered = append(registered, sliding.All()...)
	registered = append(registered, elastic.All()...)
	registered = append(registered, kernel.All()...)
	for _, m := range registered {
		if !covered[m.Name()] {
			t.Errorf("registered measure %q has no oracle pair", m.Name())
		}
	}
}

// TestOracleTieBreakingDuplicates verifies the satellite tie-breaking
// contract directly: on reference sets containing exact duplicate series,
// the pruned engine and the matrix path must pick identical neighbor
// indices (the lowest), for a representative measure of every category.
func TestOracleTieBreakingDuplicates(t *testing.T) {
	queries, refs := EngineSets(7, false)

	// The construction puts real ties in play: query 1 is a copy of refs[0]
	// and refs[3] is too, so both engines must report neighbor 0 at
	// distance 0 under any metric-like measure.
	e := eval.Matrix(lockstep.Euclidean(), queries, refs)
	if e[1][0] != 0 || e[1][3] != 0 {
		t.Fatalf("engine set lost its duplicates: d(q1,r0)=%v d(q1,r3)=%v", e[1][0], e[1][3])
	}

	ms := []measure.Measure{
		lockstep.Euclidean(),
		lockstep.Lorentzian(),
		sliding.SBD(),
		elastic.DTW{DeltaPercent: 10},
		elastic.MSM{C: 0.5},
		kernel.SINK{Gamma: 5},
	}
	for _, m := range ms {
		r := &Report{}
		CheckEngines(r, m, queries, refs)
		if len(r.Discrepancies) > 0 {
			t.Errorf("%s:\n%s", m.Name(), r)
		}
		got := search.OneNN(m, queries, refs)
		if got.Indices[1] != 0 {
			t.Errorf("%s: duplicate query resolved to %d, want lowest index 0", m.Name(), got.Indices[1])
		}
	}
}

// TestOracleElasticDegenerate pins the satellite degenerate-input
// contract: every elastic measure must return a defined (non-NaN) value on
// empty, length-1, and constant series, and DistanceUpTo must equal
// Distance whenever the threshold is not hit.
func TestOracleElasticDegenerate(t *testing.T) {
	cases := []struct {
		name string
		x, y []float64
	}{
		{"empty", []float64{}, []float64{}},
		{"len1-equal", []float64{1.5}, []float64{1.5}},
		{"len1-diff", []float64{-2}, []float64{3}},
		{"const-equal", constant(9, 0.5), constant(9, 0.5)},
		{"const-diff", constant(9, -1), constant(9, 2)},
		{"const-vs-ramp", constant(5, 0), []float64{0, 1, 2, 3, 4}},
	}
	var ms []measure.Measure
	ms = append(ms, elastic.All()...)
	ms = append(ms,
		elastic.DTW{DeltaPercent: 0}, elastic.DTW{DeltaPercent: 100},
		elastic.DDTW{DeltaPercent: 10}, elastic.WDTW{G: 0.05},
		elastic.DDBlend{DeltaPercent: 10, Alpha: 0.5},
	)
	for _, m := range ms {
		for _, c := range cases {
			var d float64
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Errorf("%s on %s panicked: %v", m.Name(), c.name, p)
					}
				}()
				d = m.Distance(c.x, c.y)
			}()
			if math.IsNaN(d) {
				t.Errorf("%s on %s = NaN, want a defined value", m.Name(), c.name)
			}
			if ea, ok := m.(measure.EarlyAbandoning); ok && !math.IsInf(d, 0) {
				if v := ea.DistanceUpTo(c.x, c.y, d+1); v != d {
					t.Errorf("%s on %s: DistanceUpTo(d+1)=%v, Distance=%v", m.Name(), c.name, v, d)
				}
			}
		}
	}
}

// TestOracleEmbeddingConsistency covers the embedding category: the
// adapter's prepared path, its direct path, and an independent Euclidean
// over the embedder's own transforms must agree on fitted models.
func TestOracleEmbeddingConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("embedding fits are slow in short mode")
	}
	rngSeed := int64(11)
	queries, refs := EngineSets(rngSeed, false)
	for _, e := range embedding.All(rngSeed) {
		e.Fit(refs)
		m := embedding.Measure{E: e}
		oracleRef := func(x, y []float64) float64 {
			tx, ty := e.Transform(x), e.Transform(y)
			var s float64
			for i := range tx {
				d := tx[i] - ty[i]
				s += d * d
			}
			return math.Sqrt(s)
		}
		r := &Report{}
		for _, q := range queries {
			p := Pair{M: m, Ref: oracleRef, Tol: TolExact}
			CheckPair(r, p, Input{Name: "embed", X: q, Y: refs[0], Finite: true})
		}
		CheckEngines(r, m, queries, refs)
		if len(r.Discrepancies) > 0 {
			t.Errorf("%s:\n%s", e.Name(), r)
		}
	}
}

// TestOracleReportRendering keeps the structured report usable: counts,
// per-kind summary, and one line per discrepancy.
func TestOracleReportRendering(t *testing.T) {
	r := &Report{Checks: 3}
	r.add("dtw[d=10]", "gaussian/len=7", "oracle", "optimized=%v reference=%v", 1.0, 2.0)
	out := r.String()
	for _, want := range []string{"3 checks", "1 discrepancies", "dtw[d=10]", "oracle: 1"} {
		if !containsStr(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
