package oracle

import "testing"

// TestOracleProfileEngine runs the matrix-profile engine differential over
// the fuzz corpus: STOMP streaming joins against the naive sliding scan
// (TolFFT), claimed-neighbor recomputation, and the pre-cancelled-context
// contract. Part of the `make oracle` schedule via the Oracle run filter.
func TestOracleProfileEngine(t *testing.T) {
	for _, seed := range fuzzSeeds(t) {
		r := &Report{}
		FuzzProfile(r, seed)
		if len(r.Discrepancies) > 0 {
			t.Errorf("seed %d:\n%s", seed, r)
		} else {
			t.Logf("seed %d: profile oracle passed %d checks", seed, r.Checks)
		}
	}
}
