package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approxEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// dftNaive is the O(n^2) reference DFT.
func dftNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, ang))
		}
		out[k] = sum
	}
	return out
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestIsPowerOfTwo(t *testing.T) {
	cases := map[int]bool{1: true, 2: true, 3: false, 4: true, 6: false, 1024: true, 0: false, -4: false}
	for n, want := range cases {
		if got := IsPowerOfTwo(n); got != want {
			t.Errorf("IsPowerOfTwo(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 17: 32, 1024: 1024, 1025: 2048}
	for n, want := range cases {
		if got := NextPowerOfTwo(n); got != want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestNextPowerOfTwoPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	NextPowerOfTwo(0)
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 27, 31, 64, 100, 128} {
		x := randComplex(rng, n)
		want := dftNaive(x)
		got := append([]complex128(nil), x...)
		Forward(got)
		for k := range want {
			if cmplx.Abs(got[k]-want[k]) > 1e-7*(1+cmplx.Abs(want[k])) {
				t.Fatalf("n=%d: Forward[%d] = %v, want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 3, 5, 8, 13, 16, 50, 64, 129, 256} {
		x := randComplex(rng, n)
		orig := append([]complex128(nil), x...)
		Inverse(Forward(x))
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-8 {
				t.Fatalf("n=%d: round trip [%d] = %v, want %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestParsevalProperty(t *testing.T) {
	// Parseval: sum |x|^2 == (1/n) sum |X|^2 for the unnormalized forward DFT.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(200)
		x := randComplex(rng, n)
		var timeE float64
		for _, v := range x {
			timeE += real(v)*real(v) + imag(v)*imag(v)
		}
		Forward(x)
		var freqE float64
		for _, v := range x {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		return approxEq(timeE, freqE/float64(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestForwardLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		x := randComplex(rng, n)
		y := randComplex(rng, n)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = x[i] + y[i]
		}
		Forward(x)
		Forward(y)
		Forward(sum)
		for i := range sum {
			if cmplx.Abs(sum[i]-(x[i]+y[i])) > 1e-7*(1+cmplx.Abs(sum[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCrossCorrelationMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 3, 8, 17, 50, 64, 100} {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		want := CrossCorrelationNaive(x, y)
		got := CrossCorrelation(x, y)
		if len(got) != len(want) {
			t.Fatalf("n=%d: length %d, want %d", n, len(got), len(want))
		}
		for k := range want {
			if !approxEq(got[k], want[k], 1e-8) {
				t.Fatalf("n=%d: cc[%d] = %g, want %g", n, k, got[k], want[k])
			}
		}
	}
}

func TestCrossCorrelationUnequalLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, 37)
	y := make([]float64, 61)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	want := CrossCorrelationNaive(x, y)
	got := CrossCorrelation(x, y)
	for k := range want {
		if !approxEq(got[k], want[k], 1e-8) {
			t.Fatalf("cc[%d] = %g, want %g", k, got[k], want[k])
		}
	}
}

func TestCrossCorrelationZeroShiftIsDotProduct(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 0, 1, -1}
	cc := CrossCorrelation(x, y)
	wantDot := 1*2 + 2*0 + 3*1 + 4*(-1)
	if !approxEq(cc[len(y)-1], float64(wantDot), eps) {
		t.Fatalf("zero-shift cc = %g, want %d", cc[len(y)-1], wantDot)
	}
}

func TestCrossCorrelationSelfPeakAtZeroShift(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(80)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		cc := CrossCorrelation(x, x)
		peak := cc[n-1]
		for _, v := range cc {
			if v > peak+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCrossCorrelationEmpty(t *testing.T) {
	if got := CrossCorrelation(nil, []float64{1}); got != nil {
		t.Errorf("expected nil for empty x, got %v", got)
	}
	if got := CrossCorrelation([]float64{1}, nil); got != nil {
		t.Errorf("expected nil for empty y, got %v", got)
	}
}

func TestConvolve(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5}
	// [1*4, 1*5+2*4, 2*5+3*4, 3*5] = [4, 13, 22, 15]
	want := []float64{4, 13, 22, 15}
	got := Convolve(x, y)
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !approxEq(got[i], want[i], eps) {
			t.Errorf("conv[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestPlanMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 73
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	want := CrossCorrelation(x, y)
	p := NewPlan(x)
	if p.Len() != n {
		t.Fatalf("plan length %d, want %d", p.Len(), n)
	}
	got := p.CrossCorrelate(y)
	for k := range want {
		if !approxEq(got[k], want[k], 1e-8) {
			t.Fatalf("plan cc[%d] = %g, want %g", k, got[k], want[k])
		}
	}
	q := NewPlan(y)
	got2 := p.CrossCorrelateWith(q)
	for k := range want {
		if !approxEq(got2[k], want[k], 1e-8) {
			t.Fatalf("plan-plan cc[%d] = %g, want %g", k, got2[k], want[k])
		}
	}
}

func TestPlanLengthMismatchPanics(t *testing.T) {
	p := NewPlan([]float64{1, 2, 3})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	p.CrossCorrelate([]float64{1, 2})
}

func BenchmarkForwardPow2(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := randComplex(rng, 1024)
	buf := make([]complex128, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		Forward(buf)
	}
}

func BenchmarkForwardBluestein(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randComplex(rng, 1000)
	buf := make([]complex128, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		Forward(buf)
	}
}

func TestCrossCorrelateToBitwiseAndAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{1, 2, 17, 64, 100} {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		p, q := NewPlan(x), NewPlan(y)
		want := p.CrossCorrelateWith(q)
		if p.PaddedLen() != NextPowerOfTwo(2*n-1) {
			t.Fatalf("n=%d: PaddedLen = %d, want %d", n, p.PaddedLen(), NextPowerOfTwo(2*n-1))
		}
		dst := make([]float64, 2*n-1)
		buf := make([]complex128, p.PaddedLen())
		got := p.CrossCorrelateTo(q, dst, buf)
		if len(got) != len(want) {
			t.Fatalf("n=%d: length %d, want %d", n, len(got), len(want))
		}
		for k := range want {
			// Bitwise equality: both entry points run the identical
			// arithmetic, the contract the Gram engine relies on.
			if got[k] != want[k] {
				t.Fatalf("n=%d: CrossCorrelateTo[%d] = %v, want bitwise %v", n, k, got[k], want[k])
			}
		}
		if allocs := testing.AllocsPerRun(20, func() { p.CrossCorrelateTo(q, dst, buf) }); allocs != 0 {
			t.Errorf("n=%d: CrossCorrelateTo allocates %v per run", n, allocs)
		}
	}
}

func TestCrossCorrelateToEmptyPlan(t *testing.T) {
	p, q := NewPlan(nil), NewPlan(nil)
	if p.PaddedLen() != 0 {
		t.Fatalf("empty plan PaddedLen = %d", p.PaddedLen())
	}
	got := p.CrossCorrelateTo(q, make([]float64, 1), nil)
	if len(got) != 0 {
		t.Fatalf("empty-plan cross-correlation length %d, want 0", len(got))
	}
}
