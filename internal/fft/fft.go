// Package fft implements the fast Fourier transform for complex and real
// sequences of arbitrary length, together with the FFT-based
// cross-correlation primitive used by the sliding distance measures and the
// SINK kernel.
//
// Power-of-two lengths use an iterative radix-2 Cooley-Tukey transform;
// other lengths fall back to Bluestein's chirp-z algorithm, which reduces an
// arbitrary-length DFT to a power-of-two circular convolution. Both paths
// are O(n log n).
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPowerOfTwo returns the smallest power of two >= n. It panics if n is
// not positive or the result would overflow an int.
func NextPowerOfTwo(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("fft: NextPowerOfTwo of non-positive %d", n))
	}
	p := 1
	for p < n {
		if p > math.MaxInt/2 {
			panic("fft: NextPowerOfTwo overflow")
		}
		p <<= 1
	}
	return p
}

// Forward computes the in-place forward DFT of x and returns x.
// The transform is unnormalized: Inverse(Forward(x)) == x.
func Forward(x []complex128) []complex128 {
	transform(x, false)
	return x
}

// Inverse computes the in-place inverse DFT of x (including the 1/n
// normalization) and returns x.
func Inverse(x []complex128) []complex128 {
	transform(x, true)
	return x
}

func transform(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if IsPowerOfTwo(n) {
		radix2(x, inverse)
	} else {
		bluestein(x, inverse)
	}
	if inverse {
		scale := 1 / float64(n)
		for i := range x {
			x[i] *= complex(scale, 0)
		}
	}
}

// radix2 performs an unnormalized iterative radix-2 transform in place.
// len(x) must be a power of two.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// bluestein computes an unnormalized DFT of arbitrary length via the
// chirp-z transform, using a power-of-two convolution internally.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp factors w[k] = exp(sign * i * pi * k^2 / n). Compute k^2 mod 2n
	// to keep the argument small and the twiddles accurate for large k.
	w := make([]complex128, n)
	m2 := 2 * n
	for k := 0; k < n; k++ {
		sq := (k * k) % m2
		w[k] = cmplx.Exp(complex(0, sign*math.Pi*float64(sq)/float64(n)))
	}
	m := NextPowerOfTwo(2*n - 1)
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * w[k]
		bk := cmplx.Conj(w[k])
		b[k] = bk
		if k > 0 {
			b[m-k] = bk
		}
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	invm := 1 / float64(m)
	for k := 0; k < n; k++ {
		x[k] = a[k] * complex(invm, 0) * w[k]
	}
}

// ForwardReal computes the DFT of a real sequence, returning a freshly
// allocated complex slice of the same length.
func ForwardReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return Forward(c)
}

// ForwardRealPadded computes the DFT of x zero-padded to length n.
// It panics if n < len(x).
func ForwardRealPadded(x []float64, n int) []complex128 {
	if n < len(x) {
		panic(fmt.Sprintf("fft: pad length %d < input length %d", n, len(x)))
	}
	c := make([]complex128, n)
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return Forward(c)
}

// CrossCorrelation returns the full cross-correlation sequence of x and y,
// of length len(x)+len(y)-1. Entry k (0-based) corresponds to shift
// s = k - (len(y) - 1) of y relative to x:
//
//	cc[k] = sum_i x[i] * y[i-s]
//
// so the zero shift (aligned series) sits at index len(y)-1. The computation
// uses zero-padded FFTs and runs in O(n log n).
func CrossCorrelation(x, y []float64) []float64 {
	n := len(x) + len(y) - 1
	if len(x) == 0 || len(y) == 0 {
		return nil
	}
	m := NextPowerOfTwo(n)
	fx := ForwardRealPadded(x, m)
	fy := ForwardRealPadded(y, m)
	for i := range fx {
		fx[i] *= cmplx.Conj(fy[i])
	}
	Inverse(fx)
	// fx now holds correlations at shifts 0..len(x)-1 followed (wrapped) by
	// negative shifts -(len(y)-1)..-1 at the tail of the length-m buffer.
	out := make([]float64, n)
	ly := len(y)
	for s := -(ly - 1); s < len(x); s++ {
		idx := s
		if idx < 0 {
			idx += m
		}
		out[s+ly-1] = real(fx[idx])
	}
	return out
}

// CrossCorrelationNaive computes the same sequence as CrossCorrelation by
// direct O(n*m) summation. It is used in tests and ablation benchmarks.
func CrossCorrelationNaive(x, y []float64) []float64 {
	if len(x) == 0 || len(y) == 0 {
		return nil
	}
	n := len(x) + len(y) - 1
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		s := k - (len(y) - 1)
		var sum float64
		for i := range x {
			j := i - s
			if j >= 0 && j < len(y) {
				sum += x[i] * y[j]
			}
		}
		out[k] = sum
	}
	return out
}

// Convolve returns the linear convolution of x and y, of length
// len(x)+len(y)-1, computed via FFT.
func Convolve(x, y []float64) []float64 {
	if len(x) == 0 || len(y) == 0 {
		return nil
	}
	n := len(x) + len(y) - 1
	m := NextPowerOfTwo(n)
	fx := ForwardRealPadded(x, m)
	fy := ForwardRealPadded(y, m)
	for i := range fx {
		fx[i] *= fy[i]
	}
	Inverse(fx)
	out := make([]float64, n)
	for i := range out {
		out[i] = real(fx[i])
	}
	return out
}

// SlidingPlan caches the padded forward transform of a long series for
// repeated sliding-dot-product scans with fixed-length queries — the access
// pattern of MASS and the matrix-profile engines, where one series is
// scanned by many windows. Construction costs one forward FFT of the
// series; each scan then costs one forward transform of the query plus one
// inverse, instead of re-transforming the series every time.
type SlidingPlan struct {
	n, w, m int
	freq    []complex128
}

// NewSlidingPlan builds the plan for series t and query length w,
// 1 <= w <= len(t).
func NewSlidingPlan(t []float64, w int) *SlidingPlan {
	p := &SlidingPlan{}
	p.Reset(t, w)
	return p
}

// Reset re-targets the plan (the zero value included) at a new series and
// window length, reusing the spectrum buffer when capacity allows so warm
// engines stay allocation-free across joins of the same size.
func (p *SlidingPlan) Reset(t []float64, w int) {
	n := len(t)
	if w < 1 || w > n {
		panic(fmt.Sprintf("fft: sliding window %d out of range for series length %d", w, n))
	}
	m := NextPowerOfTwo(n + w - 1)
	p.n, p.w, p.m = n, w, m
	if cap(p.freq) < m {
		p.freq = make([]complex128, m)
	}
	p.freq = p.freq[:m]
	for i := n; i < m; i++ {
		p.freq[i] = 0
	}
	for i, v := range t {
		p.freq[i] = complex(v, 0)
	}
	Forward(p.freq)
}

// Len returns the planned series length.
func (p *SlidingPlan) Len() int { return p.n }

// Window returns the planned query length.
func (p *SlidingPlan) Window() int { return p.w }

// PaddedLen returns the padded FFT length; callers sizing SlidingDots
// scratch buffers use it.
func (p *SlidingPlan) PaddedLen() int { return p.m }

// SlidingDots writes the sliding dot products of q (len = Window) against
// every window of the planned series t — dst[s] = dot(q, t[s:s+w]) for
// s in [0, n-w] — into dst (cap >= n-w+1), using buf (len >= PaddedLen) as
// FFT scratch, and returns dst[:n-w+1]. The padded length and operation
// order match CrossCorrelation(t, q) at the non-negative shifts exactly,
// so the two routes produce bitwise-identical dot products and callers can
// swap freely between them.
func (p *SlidingPlan) SlidingDots(q, dst []float64, buf []complex128) []float64 {
	if len(q) != p.w {
		panic(fmt.Sprintf("fft: sliding plan window %d, got query length %d", p.w, len(q)))
	}
	buf = buf[:p.m]
	for i := p.w; i < p.m; i++ {
		buf[i] = 0
	}
	for i, v := range q {
		buf[i] = complex(v, 0)
	}
	Forward(buf)
	for i := range buf {
		buf[i] = p.freq[i] * cmplx.Conj(buf[i])
	}
	Inverse(buf)
	out := p.n - p.w + 1
	dst = dst[:out]
	for s := 0; s < out; s++ {
		dst[s] = real(buf[s])
	}
	return dst
}

// Plan caches the forward transform of a fixed-length reference signal so
// repeated cross-correlations against many query series reuse the padded
// FFT buffer size. It is used by the sliding measures when building full
// dissimilarity matrices.
type Plan struct {
	n    int // series length
	m    int // padded FFT length, power of two
	freq []complex128
}

// NewPlan precomputes the padded FFT of x for cross-correlations against
// series of the same length. The empty series gets an empty plan whose
// cross-correlations are the empty sequence, matching CrossCorrelation.
func NewPlan(x []float64) *Plan {
	n := len(x)
	if n == 0 {
		return &Plan{}
	}
	m := NextPowerOfTwo(2*n - 1)
	return &Plan{n: n, m: m, freq: ForwardRealPadded(x, m)}
}

// Len returns the series length the plan was built for.
func (p *Plan) Len() int { return p.n }

// PaddedLen returns the padded FFT length of the plan's spectrum (0 for the
// empty plan). Callers sizing scratch buffers for CrossCorrelateTo use it.
func (p *Plan) PaddedLen() int { return p.m }

// CrossCorrelate computes the full cross-correlation sequence of the planned
// series x against y (len(y) must equal the plan length), equivalent to
// CrossCorrelation(x, y).
func (p *Plan) CrossCorrelate(y []float64) []float64 {
	if len(y) != p.n {
		panic(fmt.Sprintf("fft: plan length %d, got series length %d", p.n, len(y)))
	}
	if p.n == 0 {
		return nil
	}
	fy := ForwardRealPadded(y, p.m)
	for i := range fy {
		fy[i] = p.freq[i] * cmplx.Conj(fy[i])
	}
	Inverse(fy)
	n := 2*p.n - 1
	out := make([]float64, n)
	for s := -(p.n - 1); s < p.n; s++ {
		idx := s
		if idx < 0 {
			idx += p.m
		}
		out[s+p.n-1] = real(fy[idx])
	}
	return out
}

// CrossCorrelateWith computes the cross-correlation sequence between two
// planned series (both plans must share the same length), avoiding any
// further forward transforms.
func (p *Plan) CrossCorrelateWith(q *Plan) []float64 {
	if q.n != p.n {
		panic(fmt.Sprintf("fft: plan lengths differ: %d vs %d", p.n, q.n))
	}
	if p.n == 0 {
		return nil
	}
	return p.CrossCorrelateTo(q, make([]float64, 2*p.n-1), make([]complex128, p.m))
}

// CrossCorrelateTo is CrossCorrelateWith writing the cross-correlation
// sequence into dst (len >= 2n-1) using buf (len >= PaddedLen) as FFT
// scratch, so all-pairs callers like the Gram engine run allocation-free.
// The arithmetic — pointwise spectrum product, inverse transform, shift
// unwrap — is step-for-step the one CrossCorrelateWith performs, so the two
// entry points return bitwise-identical sequences. It returns dst[:2n-1].
func (p *Plan) CrossCorrelateTo(q *Plan, dst []float64, buf []complex128) []float64 {
	if q.n != p.n {
		panic(fmt.Sprintf("fft: plan lengths differ: %d vs %d", p.n, q.n))
	}
	if p.n == 0 {
		return dst[:0]
	}
	buf = buf[:p.m]
	for i := range buf {
		buf[i] = p.freq[i] * cmplx.Conj(q.freq[i])
	}
	Inverse(buf)
	dst = dst[:2*p.n-1]
	for s := -(p.n - 1); s < p.n; s++ {
		idx := s
		if idx < 0 {
			idx += p.m
		}
		dst[s+p.n-1] = real(buf[idx])
	}
	return dst
}
