package fft

import (
	"math"
	"math/rand"
	"testing"
)

// TestSlidingPlanMatchesCrossCorrelation pins the bitwise contract: the
// planned sliding dots must reproduce CrossCorrelation's non-negative
// shifts exactly, so callers can swap routes without value drift.
func TestSlidingPlanMatchesCrossCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 8, 33, 100} {
		series := make([]float64, n)
		for i := range series {
			series[i] = rng.NormFloat64()
		}
		for _, w := range []int{1, 2, 3, n} {
			if w > n {
				continue
			}
			p := NewSlidingPlan(series, w)
			q := make([]float64, w)
			for i := range q {
				q[i] = rng.NormFloat64()
			}
			cc := CrossCorrelation(series, q)
			dst := make([]float64, n-w+1)
			buf := make([]complex128, p.PaddedLen())
			got := p.SlidingDots(q, dst, buf)
			if len(got) != n-w+1 {
				t.Fatalf("n=%d w=%d: got %d dots, want %d", n, w, len(got), n-w+1)
			}
			for s := range got {
				if math.Float64bits(got[s]) != math.Float64bits(cc[s+w-1]) {
					t.Errorf("n=%d w=%d shift %d: plan %v, CrossCorrelation %v",
						n, w, s, got[s], cc[s+w-1])
				}
			}
		}
	}
}

// TestSlidingPlanReset verifies Reset re-targets a warm plan (buffer
// reuse included) and that repeated scans after Reset stay correct.
func TestSlidingPlanReset(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	series := func(n int) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		return s
	}
	var p SlidingPlan // zero value, Reset must initialize it
	big := series(64)
	p.Reset(big, 8)
	small := series(16)
	p.Reset(small, 4)
	q := series(4)
	dst := make([]float64, 16)
	buf := make([]complex128, p.PaddedLen())
	got := p.SlidingDots(q, dst, buf)
	for s := range got {
		var want float64
		for k := 0; k < 4; k++ {
			want += q[k] * small[s+k]
		}
		if math.Abs(got[s]-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("after Reset, shift %d: got %v want %v", s, got[s], want)
		}
	}
	if p.Len() != 16 || p.Window() != 4 {
		t.Errorf("Len/Window = %d/%d, want 16/4", p.Len(), p.Window())
	}
}

// TestSlidingPlanPanics pins the out-of-range window contract.
func TestSlidingPlanPanics(t *testing.T) {
	for _, tc := range []struct {
		n, w int
	}{{4, 0}, {4, 5}, {0, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSlidingPlan(len %d, w %d) did not panic", tc.n, tc.w)
				}
			}()
			NewSlidingPlan(make([]float64, tc.n), tc.w)
		}()
	}
	p := NewSlidingPlan([]float64{1, 2, 3, 4}, 2)
	defer func() {
		if recover() == nil {
			t.Error("SlidingDots with wrong query length did not panic")
		}
	}()
	p.SlidingDots([]float64{1, 2, 3}, make([]float64, 3), make([]complex128, p.PaddedLen()))
}
