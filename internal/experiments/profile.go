package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/profile"
	"repro/internal/run"
	"repro/internal/subsequence"
)

// ProfileRow is one join of the matrix-profile ablation: a baseline
// formulation (STAMP's one-FFT-per-row scan or the naive per-pair window
// scan) against the STOMP streaming engine on the same planted-pattern
// series, with the recovered motif pair and discord offset as the
// deterministic payload and Agree asserting the two formulations computed
// the same profile.
type ProfileRow struct {
	Measure string
	Join    string
	N, W    int
	Base    time.Duration
	Engine  time.Duration
	MotifA  int
	MotifB  int
	Discord int
	Agree   bool
}

// Speedup is the baseline-to-engine wall-clock ratio.
func (r ProfileRow) Speedup() float64 {
	if r.Engine <= 0 {
		return 0
	}
	return float64(r.Base) / float64(r.Engine)
}

// profileReps repeats each timed section so durations rise above timer
// granularity in the golden sweep.
const profileReps = 3

// plantedProfileSeries builds the experiment's fixed series: a noisy sine
// carrier with an identical 32-point chirp pattern planted at offsets 96
// and 288 (the motif pair every measure should recover) and a noise burst
// over [416, 448) (the discord region).
func plantedProfileSeries() []float64 {
	const n = 512
	rng := rand.New(rand.NewSource(23))
	s := make([]float64, n)
	for i := range s {
		s[i] = math.Sin(2*math.Pi*float64(i)/64) + 0.05*rng.NormFloat64()
	}
	pattern := make([]float64, 32)
	for i := range pattern {
		x := float64(i) / 31
		pattern[i] = 3 * x * x * math.Sin(6*math.Pi*x)
	}
	copy(s[96:], pattern)
	copy(s[288:], pattern)
	for i := 416; i < 448; i++ {
		s[i] = rng.NormFloat64() * 3
	}
	return s
}

// motifOf returns the profile's best-matching pair: the row with the
// smallest value and its claimed neighbor.
func motifOf(res *profile.Result) (int, int) {
	best, bi := math.Inf(1), -1
	for i, v := range res.Values {
		if res.Indices[i] >= 0 && v < best {
			best, bi = v, i
		}
	}
	if bi < 0 {
		return -1, -1
	}
	return bi, res.Indices[bi]
}

// discordOf returns the most isolated row: the largest finite profile
// value with a claimed neighbor.
func discordOf(res *profile.Result) int {
	best, bi := math.Inf(-1), -1
	for i, v := range res.Values {
		if res.Indices[i] >= 0 && !math.IsInf(v, 1) && v > best {
			best, bi = v, i
		}
	}
	return bi
}

// agreeProfileValues compares two profiles on squared distances at 1e-6
// relative: the square is linear in the streamed/FFT cross term, while the
// final square root amplifies rounding arbitrarily near zero (the planted
// exact motif). NaN sanitizes to +Inf on both sides.
func agreeProfileValues(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if math.IsNaN(x) {
			x = math.Inf(1)
		}
		if math.IsNaN(y) {
			y = math.Inf(1)
		}
		if math.Float64bits(x) == math.Float64bits(y) {
			continue
		}
		if math.IsInf(x, 0) || math.IsInf(y, 0) {
			return false
		}
		xs, ys := x*x, y*y
		if math.Abs(xs-ys) > 1e-6*math.Max(1, math.Max(xs, ys)) {
			return false
		}
	}
	return true
}

// naiveWindowProfile is the naive per-pair baseline: every window pair
// scored by a direct O(w) distance, the same scan the oracle checks the
// engine against.
func naiveWindowProfile(a, b []float64, w int, dist func(x, y []float64) float64, self bool) []float64 {
	rows := len(a) - w + 1
	cols := len(b) - w + 1
	excl := 0
	if self {
		excl = w / 2
		if excl < 1 {
			excl = 1
		}
	}
	vals := make([]float64, rows)
	for i := 0; i < rows; i++ {
		best := math.Inf(1)
		for j := 0; j < cols; j++ {
			if self && j >= i-excl && j <= i+excl {
				continue
			}
			if d := dist(a[i:i+w], b[j:j+w]); d < best {
				best = d
			}
		}
		vals[i] = best
	}
	return vals
}

func euclideanWindow(x, y []float64) float64 {
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func pnorm3Window(x, y []float64) float64 {
	var s float64
	for i := range x {
		d := math.Abs(x[i] - y[i])
		s += d * d * d
	}
	return math.Pow(s, 1.0/3)
}

// ProfileExperiment runs the matrix-profile study without cancellation.
func ProfileExperiment(opts Options) []ProfileRow {
	rows, _ := ProfileExperimentCtx(context.Background(), opts, nil)
	return rows
}

// ProfileExperimentCtx computes matrix profiles of the planted-pattern
// series under three measures and three join modes, each against an
// independent baseline formulation: STAMP (per-row FFT) for the classic
// z-normalized profile, the naive per-pair scan for the non-normalized
// measures, the per-row MASS searcher for the AB-join, and the in-order
// engine for anytime mode (which must be bitwise identical when left to
// finish). Motif and discord columns report the recovered structure: the
// planted pair (96, 288) and an offset inside the [416, 448) burst.
func ProfileExperimentCtx(ctx context.Context, opts Options, rep run.Reporter) ([]ProfileRow, error) {
	task := run.NewTask(rep, "profile", "joins", 5)
	series := plantedProfileSeries()
	const n, w = 512, 32
	rows := make([]ProfileRow, 0, 5)

	addSelf := func(name string, m profile.Measure, base func() []float64) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		var baseVals []float64
		start := time.Now()
		for rep := 0; rep < profileReps; rep++ {
			baseVals = base()
		}
		baseDur := time.Since(start)
		eng := profile.New(profile.Options{Measure: m})
		var res profile.Result
		start = time.Now()
		for rep := 0; rep < profileReps; rep++ {
			if err := eng.SelfJoinInto(ctx, series, w, &res); err != nil {
				return err
			}
		}
		engDur := time.Since(start)
		ma, mb := motifOf(&res)
		rows = append(rows, ProfileRow{
			Measure: m.Name(), Join: "self", N: n, W: w,
			Base: baseDur, Engine: engDur,
			MotifA: ma, MotifB: mb, Discord: discordOf(&res),
			Agree: agreeProfileValues(res.Values, baseVals),
		})
		task.Step(m.Name())
		return nil
	}

	if err := addSelf("znorm", profile.ZNormEuclidean(), func() []float64 {
		vals, _ := subsequence.MatrixProfileSTAMP(series, w)
		return vals
	}); err != nil {
		return rows, err
	}
	if err := addSelf("euclidean", profile.Euclidean(), func() []float64 {
		return naiveWindowProfile(series, series, w, euclideanWindow, true)
	}); err != nil {
		return rows, err
	}
	if err := addSelf("pnorm", profile.PNorm(3), func() []float64 {
		return naiveWindowProfile(series, series, w, pnorm3Window, true)
	}); err != nil {
		return rows, err
	}

	// AB-join: the motif neighborhood as the query series against the full
	// series, baselined on the per-row MASS searcher (no exclusion zone).
	if err := ctx.Err(); err != nil {
		return rows, err
	}
	query := series[64:192]
	var baseVals []float64
	start := time.Now()
	for rep := 0; rep < profileReps; rep++ {
		s := subsequence.NewSearcher(series, w)
		qRows := len(query) - w + 1
		baseVals = make([]float64, qRows)
		var dst []float64
		for i := 0; i < qRows; i++ {
			dst = s.Profile(query[i:i+w], dst)
			best := math.Inf(1)
			for _, d := range dst {
				if d < best {
					best = d
				}
			}
			baseVals[i] = best
		}
	}
	baseDur := time.Since(start)
	eng := profile.New(profile.Options{})
	var res profile.Result
	start = time.Now()
	for rep := 0; rep < profileReps; rep++ {
		if err := eng.ABJoinInto(ctx, query, series, w, &res); err != nil {
			return rows, err
		}
	}
	engDur := time.Since(start)
	ma, mb := motifOf(&res)
	rows = append(rows, ProfileRow{
		Measure: "znorm-euclidean", Join: "ab", N: n, W: w,
		Base: baseDur, Engine: engDur,
		MotifA: ma, MotifB: mb, Discord: discordOf(&res),
		Agree: agreeProfileValues(res.Values, baseVals),
	})
	task.Step("ab-join")

	// Anytime mode: the shuffled block schedule against the in-order one.
	// Left uncancelled the two must be bitwise identical, so Agree here is
	// exact equality of values and neighbor indices.
	if err := ctx.Err(); err != nil {
		return rows, err
	}
	ordered := profile.New(profile.Options{})
	var ores profile.Result
	start = time.Now()
	for rep := 0; rep < profileReps; rep++ {
		if err := ordered.SelfJoinInto(ctx, series, w, &ores); err != nil {
			return rows, err
		}
	}
	baseDur = time.Since(start)
	anytime := profile.New(profile.Options{Anytime: true})
	var ares profile.Result
	start = time.Now()
	for rep := 0; rep < profileReps; rep++ {
		if err := anytime.SelfJoinInto(ctx, series, w, &ares); err != nil {
			return rows, err
		}
	}
	engDur = time.Since(start)
	agree := len(ores.Values) == len(ares.Values)
	for i := range ores.Values {
		if !agree {
			break
		}
		agree = math.Float64bits(ores.Values[i]) == math.Float64bits(ares.Values[i]) &&
			ores.Indices[i] == ares.Indices[i]
	}
	ma, mb = motifOf(&ares)
	rows = append(rows, ProfileRow{
		Measure: "znorm-euclidean", Join: "anytime", N: n, W: w,
		Base: baseDur, Engine: engDur,
		MotifA: ma, MotifB: mb, Discord: discordOf(&ares),
		Agree: agree,
	})
	task.Step("anytime")
	task.Done()
	return rows, nil
}

// RenderProfile formats the study as a table, one row per join. The
// duration and speedup columns are machine-dependent and scrubbed in
// golden comparisons; measure, join, motif, discord, and agree are
// deterministic.
func RenderProfile(rows []ProfileRow) string {
	var b strings.Builder
	b.WriteString("Matrix profile: STAMP/naive baselines vs STOMP streaming engine\n")
	fmt.Fprintf(&b, "%-16s %-8s %-5s %-4s %-12s %-12s %-8s %-11s %-8s %s\n",
		"measure", "join", "n", "w", "base", "engine", "speedup", "motif", "discord", "agree")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-8s %-5d %-4d %-12v %-12v %-8.2f %-11s %-8d %v\n",
			r.Measure, r.Join, r.N, r.W,
			r.Base.Round(time.Microsecond), r.Engine.Round(time.Microsecond),
			r.Speedup(), fmt.Sprintf("(%d,%d)", r.MotifA, r.MotifB), r.Discord, r.Agree)
	}
	return b.String()
}
