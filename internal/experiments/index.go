package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/ann"
	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/elastic"
	"repro/internal/kernel"
	"repro/internal/measure"
	"repro/internal/par"
	"repro/internal/run"
	"repro/internal/search"
)

// IndexRow is one corpus of the approximate-retrieval ablation: the same
// query stream answered by a plain linear exact scan, the pruned exact
// engine (warm, snapshot-backed), and the GRAIL ANN embed–index–rerank
// engine (warm). Recall@1 and recall@10 compare the ANN answers against
// the exact baseline distance-wise (tie-robust: an approximate neighbor
// at the exact kth distance counts as found), so fallback-mode corpora —
// where the default candidate budget covers the whole corpus — report
// exactly 1.
type IndexRow struct {
	Corpus  string
	N       int // reference series
	Q       int // queries
	Measure string
	C       int    // effective candidate budget
	Mode    string // "fallback" (exact scan, budget >= n) or "ann"

	Recall1  float64
	Recall10 float64

	Linear time.Duration // plain Distance linear scan
	Pruned time.Duration // exact pruned engine, snapshot-backed
	ANN    time.Duration // warm approximate queries against the snapshot index
}

// Speedup is the linear-to-ANN wall-clock ratio: what the approximate
// engine buys over the naive scan a measure without an index would run.
func (r IndexRow) Speedup() float64 {
	if r.ANN <= 0 {
		return 0
	}
	return float64(r.Linear) / float64(r.ANN)
}

// recallEps absorbs the float noise between the baseline's accumulation
// order and the engines' when deciding whether an approximate distance
// reached the exact kth-best.
const recallEps = 1e-9

// IndexExperiment runs the ablation; see IndexExperimentCtx.
func IndexExperiment(opts Options) []IndexRow {
	rows, _ := IndexExperimentCtx(context.Background(), opts, nil)
	return rows
}

// IndexExperimentCtx measures the approximate retrieval engine on every
// archive dataset under DTW at the default candidate budget — small
// corpora, where the adaptive budget covers the corpus and the exact
// fallback answers with recall 1 — plus two generated scale corpora
// where the real embed–index–rerank path runs: one under SINK (the
// kernel GRAIL approximates, so recall stays high at a small budget) and
// one under DTW (a measure the embedding only correlates with; the
// budget is doubled to hold recall). On a non-nil error the returned
// rows are the completed prefix.
func IndexExperimentCtx(ctx context.Context, opts Options, rep run.Reporter) ([]IndexRow, error) {
	opts = opts.Defaults()
	task := run.NewTask(rep, "index", "corpora", len(opts.Archive)+2)
	rows := make([]IndexRow, 0, len(opts.Archive)+2)
	dtw := elastic.DTW{DeltaPercent: 10}
	for _, d := range opts.Archive {
		row, err := indexRow(ctx, d.Name, d.Train, d.Test, dtw, ann.Config{Seed: 1})
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
		task.Step(d.Name)
	}
	// Scale corpora: large enough that the adaptive budget stays well
	// under n, so the tree + re-rank path (not the fallback) is measured.
	scale := dataset.Generate(dataset.Config{
		Name: "scale", Family: dataset.FamilyHarmonic,
		Length: 96, NumClasses: 8, TrainSize: 512, TestSize: 24,
		Seed: 7, NoiseSigma: 0.2, ShiftFrac: 0.05,
	})
	row, err := indexRow(ctx, "scale-sink", scale.Train, scale.Test, kernel.SINK{Gamma: 5}, ann.Config{Seed: 1})
	if err != nil {
		return rows, err
	}
	rows = append(rows, row)
	task.Step("scale-sink")
	row, err = indexRow(ctx, "scale-dtw", scale.Train, scale.Test, dtw, ann.Config{Candidates: 64, Seed: 1})
	if err != nil {
		return rows, err
	}
	rows = append(rows, row)
	task.Step("scale-dtw")
	task.Done()
	return rows, nil
}

// indexRow measures one corpus: linear scan (the recall baseline and the
// speedup denominator's numerator), warm pruned exact engine, and warm
// ANN queries against a snapshot-held index.
func indexRow(ctx context.Context, name string, refs, queries [][]float64, m measure.Measure, cfg ann.Config) (IndexRow, error) {
	row := IndexRow{Corpus: name, N: len(refs), Q: len(queries), Measure: m.Name()}

	// Build phase (untimed): the snapshot holds the exact-side state and
	// the fitted ANN index; queries below are all warm.
	snap, err := corpus.BuildCtx(ctx, refs, corpus.Options{
		Measures: []measure.Measure{m},
		ANN:      []corpus.ANNSpec{{Measure: m, Config: cfg}},
	})
	if err != nil {
		return row, err
	}
	row.C = snap.ANNIndex(m).Candidates()

	// Linear exact scan: plain Distance calls, parallel over queries like
	// the engines it is compared against. The full per-query distance
	// lists double as the recall baselines.
	k := 10
	if k > len(refs) {
		k = len(refs)
	}
	kth := make([][2]float64, len(queries)) // exact 1st and kth smallest distance
	start := time.Now()
	dists := make([][]float64, len(queries))
	err = par.ForCtx(ctx, len(queries), par.Workers(len(queries)), func(i int) {
		ds := make([]float64, len(refs))
		for j, r := range refs {
			ds[j] = measure.Sanitize(m.Distance(queries[i], r))
		}
		dists[i] = ds
	})
	row.Linear = time.Since(start)
	if err != nil {
		return row, err
	}
	for i, ds := range dists {
		sorted := append([]float64(nil), ds...)
		sort.Float64s(sorted)
		kth[i] = [2]float64{sorted[0], sorted[k-1]}
	}

	// Pruned exact engine, warm (snapshot-backed).
	start = time.Now()
	if _, err := search.OneNNSnapshotCtx(ctx, m, queries, refs, snap); err != nil {
		return row, err
	}
	row.Pruned = time.Since(start)

	// Warm approximate 1-NN: the timed path and recall@1.
	start = time.Now()
	approx, err := search.OneNNApproxSnapshotCtx(ctx, m, queries, refs, cfg, snap)
	row.ANN = time.Since(start)
	if err != nil {
		return row, err
	}
	row.Mode = "ann"
	if approx.Stats.Fallbacks == int64(len(queries)) {
		row.Mode = "fallback"
	}
	hits := 0
	for i, d := range approx.Distances {
		if d <= kth[i][0]+recallEps {
			hits++
		}
	}
	row.Recall1 = float64(hits) / float64(len(queries))

	// Recall@10 from the top-k surface (untimed: the 1-NN path above is
	// the reported throughput).
	topk, err := search.KNNApproxSnapshotCtx(ctx, m, queries, refs, k, cfg, snap)
	if err != nil {
		return row, err
	}
	found := 0
	for i, nbs := range topk.Neighbors {
		for _, nb := range nbs {
			if nb.Dist <= kth[i][1]+recallEps {
				found++
			}
		}
	}
	row.Recall10 = float64(found) / float64(len(queries)*k)
	return row, nil
}

// RenderIndex formats the ablation, one row per corpus. Recall columns,
// corpus shapes, budgets, and modes are deterministic; the three
// duration columns and the speedup are machine-dependent and scrubbed in
// golden comparisons.
func RenderIndex(rows []IndexRow) string {
	var b strings.Builder
	b.WriteString("Index ablation: GRAIL ANN embed-index-rerank vs exact engines\n")
	fmt.Fprintf(&b, "%-12s %-5s %-4s %-10s %-4s %-9s %-7s %-7s %-10s %-10s %-10s %s\n",
		"corpus", "n", "q", "measure", "c", "mode", "r@1", "r@10", "linear", "pruned", "ann", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-5d %-4d %-10s %-4d %-9s %-7.4f %-7.4f %-10v %-10v %-10v %.2f\n",
			r.Corpus, r.N, r.Q, r.Measure, r.C, r.Mode, r.Recall1, r.Recall10,
			r.Linear.Round(time.Microsecond), r.Pruned.Round(time.Microsecond),
			r.ANN.Round(time.Microsecond), r.Speedup())
	}
	return b.String()
}
