package experiments

// The multivariate extension study: the paper's evaluation is univariate
// (footnote 1), so this experiment extends the 1-NN accuracy protocol to
// synthetic multivariate panels whose channels share one latent warping —
// the structure that separates the dependent measures (one path over
// vector points) from the independent lifts (one path per channel) — and
// re-runs the comparison with 20% of samples masked out, where only the
// NaN-masked lock-step measures retain signal without imputation.

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/lockstep"
	"repro/internal/multivariate"
	"repro/internal/run"
)

// MVRow is one measure's 1-NN accuracy on the clean panel and on the same
// panel with missing samples.
type MVRow struct {
	Measure    string
	Family     string // lockstep | dependent | independent | masked | soft
	CleanAcc   float64
	MissingAcc float64
}

// mvExperimentMeasures returns the fixed measure roster of the study.
func mvExperimentMeasures() []struct {
	family string
	m      multivariate.Measure
} {
	return []struct {
		family string
		m      multivariate.Measure
	}{
		{"lockstep", multivariate.Euclidean{}},
		{"dependent", multivariate.DTWDependent{DeltaPercent: 20}},
		{"dependent", multivariate.ERPDependent{G: 0}},
		{"dependent", multivariate.MSMDependent{C: 0.5}},
		{"independent", multivariate.DTWIndependent{DeltaPercent: 20}},
		{"independent", multivariate.Independent{Base: lockstep.Manhattan()}},
		{"masked", multivariate.MaskedEuclidean(0.3)},
		{"masked", multivariate.MaskedManhattan(0.3)},
		{"soft", multivariate.SoftDTW{Gamma: 0.1, Normalize: true}},
	}
}

// MultivariateExperiment runs the study without cancellation.
func MultivariateExperiment(opts Options) []MVRow {
	rows, _ := MultivariateExperimentCtx(context.Background(), opts, nil)
	return rows
}

// MultivariateExperimentCtx evaluates the roster on two deterministic
// synthetic panels: the coupled-harmonic dataset clean, and bit-identical
// underlying values with 20% of samples replaced by NaN. Accuracies are
// exact functions of the seeds, so the rendered table is golden-pinned.
func MultivariateExperimentCtx(ctx context.Context, _ Options, rep run.Reporter) ([]MVRow, error) {
	measures := mvExperimentMeasures()
	task := run.NewTask(rep, "multivariate", "measures", len(measures))

	base := multivariate.GenConfig{
		Name: "CoupledHarmonics", Length: 48, Channels: 3, NumClasses: 3,
		TrainSize: 18, TestSize: 18, Seed: 7,
		NoiseSigma: 0.25, WarpFrac: 0.08, PhaseShift: true,
	}
	clean := multivariate.Generate(base)
	missingCfg := base
	missingCfg.MissingFrac = 0.2
	missing := multivariate.Generate(missingCfg)

	rows := make([]MVRow, 0, len(measures))
	for _, entry := range measures {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		cleanAcc, err := multivariate.AccuracyCtx(ctx, entry.m,
			clean.Train, clean.TrainLabels, clean.Test, clean.TestLabels)
		if err != nil {
			return rows, err
		}
		missingAcc, err := multivariate.AccuracyCtx(ctx, entry.m,
			missing.Train, missing.TrainLabels, missing.Test, missing.TestLabels)
		if err != nil {
			return rows, err
		}
		rows = append(rows, MVRow{
			Measure: entry.m.Name(), Family: entry.family,
			CleanAcc: cleanAcc, MissingAcc: missingAcc,
		})
		task.Step(entry.m.Name())
	}
	task.Done()
	return rows, nil
}

// RenderMultivariate formats the study: one row per measure, accuracy on
// the clean and 20%-missing panels. Every column is deterministic.
func RenderMultivariate(rows []MVRow) string {
	var b strings.Builder
	b.WriteString("Multivariate 1-NN: dependent vs independent vs masked measures\n")
	b.WriteString("dataset: CoupledHarmonics (48x3, 3 classes, shared latent warp; missing = 20% NaN)\n")
	fmt.Fprintf(&b, "%-28s %-12s %-8s %s\n", "measure", "family", "clean", "missing-20%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %-12s %-8.3f %.3f\n", r.Measure, r.Family, r.CleanAcc, r.MissingAcc)
	}
	return b.String()
}
