package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/lockstep"
	"repro/internal/measure"
	"repro/internal/norm"
	"repro/internal/run"
	"repro/internal/sliding"
)

// comboThunk is one deferred combo evaluation of a figure's line-up.
type comboThunk func(ctx context.Context) (Combo, error)

// evalCombos runs a figure's combo line-up under a run.Task named after
// the experiment, stepping once per combo; on a non-nil error the combos
// evaluated so far are returned (partial).
func evalCombos(ctx context.Context, rep run.Reporter, experiment string, thunks []comboThunk) ([]Combo, error) {
	task := run.NewTask(rep, experiment, "combos", len(thunks))
	combos := make([]Combo, 0, len(thunks))
	for _, th := range thunks {
		c, err := th(ctx)
		if err != nil {
			return combos, err
		}
		combos = append(combos, c)
		task.Step(c.Measure + "/" + c.Scaling)
	}
	task.Done()
	return combos, nil
}

// plainCombo defers EvaluateComboCtx on a fixed measure/normalizer pair.
func plainCombo(archive []*dataset.Dataset, m measure.Measure, n norm.Normalizer) comboThunk {
	return func(ctx context.Context) (Combo, error) {
		return EvaluateComboCtx(ctx, archive, m, n)
	}
}

// fixedCombo is plainCombo with the Scaling column forced (the "fixed" and
// baseline "-" rows of the figures).
func fixedCombo(archive []*dataset.Dataset, m measure.Measure, n norm.Normalizer, scaling string) comboThunk {
	return func(ctx context.Context) (Combo, error) {
		c, err := EvaluateComboCtx(ctx, archive, m, n)
		c.Scaling = scaling
		return c, err
	}
}

// supervisedThunk defers supervisedComboCtx on a grid.
func supervisedThunk(opts Options, g eval.Grid, n norm.Normalizer) comboThunk {
	return func(ctx context.Context) (Combo, error) {
		return supervisedComboCtx(ctx, opts, g, n)
	}
}

// gridCombo defers EvaluateSupervisedCtx on a thinned grid (LOOCV label).
func gridCombo(opts Options, g eval.Grid) comboThunk {
	return func(ctx context.Context) (Combo, error) {
		return EvaluateSupervisedCtx(ctx, opts.Archive, eval.Thin(g, opts.GridStride), nil)
	}
}

// Figure2 reproduces Figure 2: the Friedman/Nemenyi ranking of the
// lock-step measures that outperform ED under z-score (supervised
// Minkowski, Lorentzian, Manhattan, Avg L1/Linf, DISSIM) together with ED.
func Figure2(opts Options) Ranking {
	r, _ := Figure2Ctx(context.Background(), opts, nil)
	return r
}

// Figure2Ctx is Figure2 honoring cancellation and reporting per-combo
// progress; on a non-nil error the ranking is meaningless.
func Figure2Ctx(ctx context.Context, opts Options, rep run.Reporter) (Ranking, error) {
	opts = opts.Defaults()
	combos, err := evalCombos(ctx, rep, "figure2", []comboThunk{
		supervisedThunk(opts, eval.MinkowskiGrid(), norm.ZScore()),
		plainCombo(opts.Archive, lockstep.Lorentzian(), norm.ZScore()),
		plainCombo(opts.Archive, lockstep.Manhattan(), norm.ZScore()),
		plainCombo(opts.Archive, lockstep.AvgL1Linf(), norm.ZScore()),
		plainCombo(opts.Archive, lockstep.DISSIM(), norm.ZScore()),
		plainCombo(opts.Archive, lockstep.Euclidean(), norm.ZScore()),
	})
	if err != nil {
		return Ranking{}, err
	}
	return BuildRanking("Figure 2: lock-step measures under z-score", combos, opts.FriedmanAlpha), nil
}

// Figure3 reproduces Figure 3: the ranking of the Lorentzian distance
// under different normalizations against ED with z-score.
func Figure3(opts Options) Ranking {
	r, _ := Figure3Ctx(context.Background(), opts, nil)
	return r
}

// Figure3Ctx is Figure3 honoring cancellation and reporting per-combo
// progress.
func Figure3Ctx(ctx context.Context, opts Options, rep run.Reporter) (Ranking, error) {
	opts = opts.Defaults()
	lor := lockstep.Lorentzian()
	combos, err := evalCombos(ctx, rep, "figure3", []comboThunk{
		plainCombo(opts.Archive, lor, norm.ZScore()),
		plainCombo(opts.Archive, lor, norm.MinMax()),
		plainCombo(opts.Archive, lor, norm.UnitLength()),
		plainCombo(opts.Archive, lor, norm.MeanNorm()),
		plainCombo(opts.Archive, lockstep.Euclidean(), norm.ZScore()),
	})
	if err != nil {
		return Ranking{}, err
	}
	return BuildRanking("Figure 3: Lorentzian under different normalizations vs ED (z-score)", combos, opts.FriedmanAlpha), nil
}

// Figure4 reproduces Figure 4: the ranking of NCCc under different
// normalization methods, with Lorentzian (UnitLength) as the baseline.
func Figure4(opts Options) Ranking {
	r, _ := Figure4Ctx(context.Background(), opts, nil)
	return r
}

// Figure4Ctx is Figure4 honoring cancellation and reporting per-combo
// progress.
func Figure4Ctx(ctx context.Context, opts Options, rep run.Reporter) (Ranking, error) {
	opts = opts.Defaults()
	sbd := sliding.SBD()
	adaptedThunk := func(ctx context.Context) (Combo, error) {
		adapted, err := EvaluateComboCtx(ctx, opts.Archive, norm.AdaptiveScaling(sbd), nil)
		adapted.Measure = sbd.Name()
		adapted.Scaling = norm.AdaptiveName
		return adapted, err
	}
	combos, err := evalCombos(ctx, rep, "figure4", []comboThunk{
		plainCombo(opts.Archive, sbd, norm.ZScore()),
		plainCombo(opts.Archive, sbd, norm.MeanNorm()),
		plainCombo(opts.Archive, sbd, norm.UnitLength()),
		plainCombo(opts.Archive, sbd, norm.MinMax()),
		adaptedThunk,
		plainCombo(opts.Archive, lockstep.Lorentzian(), norm.UnitLength()),
	})
	if err != nil {
		return Ranking{}, err
	}
	return BuildRanking("Figure 4: NCCc under different normalizations vs Lorentzian (unitlength)", combos, opts.FriedmanAlpha), nil
}

// Figure5 reproduces Figure 5: the ranking of the elastic measures with
// supervised tuning, together with NCCc.
func Figure5(opts Options) Ranking {
	r, _ := Figure5Ctx(context.Background(), opts, nil)
	return r
}

// Figure5Ctx is Figure5 honoring cancellation and reporting per-combo
// progress.
func Figure5Ctx(ctx context.Context, opts Options, rep run.Reporter) (Ranking, error) {
	opts = opts.Defaults()
	var thunks []comboThunk
	for _, g := range eval.ElasticGrids() {
		thunks = append(thunks, gridCombo(opts, g))
	}
	thunks = append(thunks, fixedCombo(opts.Archive, sliding.SBD(), nil, "-"))
	combos, err := evalCombos(ctx, rep, "figure5", thunks)
	if err != nil {
		return Ranking{}, err
	}
	return BuildRanking("Figure 5: elastic vs sliding measures (supervised)", combos, opts.FriedmanAlpha), nil
}

// Figure6 reproduces Figure 6: the ranking of the elastic measures with
// fixed (unsupervised) parameters, together with NCCc.
func Figure6(opts Options) Ranking {
	r, _ := Figure6Ctx(context.Background(), opts, nil)
	return r
}

// Figure6Ctx is Figure6 honoring cancellation and reporting per-combo
// progress.
func Figure6Ctx(ctx context.Context, opts Options, rep run.Reporter) (Ranking, error) {
	opts = opts.Defaults()
	var thunks []comboThunk
	for _, m := range unsupervisedElastic() {
		thunks = append(thunks, fixedCombo(opts.Archive, m, nil, "fixed"))
	}
	thunks = append(thunks, fixedCombo(opts.Archive, sliding.SBD(), nil, "-"))
	combos, err := evalCombos(ctx, rep, "figure6", thunks)
	if err != nil {
		return Ranking{}, err
	}
	return BuildRanking("Figure 6: elastic vs sliding measures (unsupervised)", combos, opts.FriedmanAlpha), nil
}

// Figure7 reproduces Figure 7: kernels (KDTW, GAK, SINK) ranked together
// with the strong elastic measures and NCCc under supervised tuning.
func Figure7(opts Options) Ranking {
	r, _ := Figure7Ctx(context.Background(), opts, nil)
	return r
}

// Figure7Ctx is Figure7 honoring cancellation and reporting per-combo
// progress.
func Figure7Ctx(ctx context.Context, opts Options, rep run.Reporter) (Ranking, error) {
	opts = opts.Defaults()
	var thunks []comboThunk
	for _, g := range []eval.Grid{eval.KDTWGrid(), eval.GAKGrid(), eval.SINKGrid(), eval.MSMGrid(), eval.TWEGrid(), eval.DTWGrid()} {
		thunks = append(thunks, gridCombo(opts, g))
	}
	thunks = append(thunks, fixedCombo(opts.Archive, sliding.SBD(), nil, "-"))
	combos, err := evalCombos(ctx, rep, "figure7", thunks)
	if err != nil {
		return Ranking{}, err
	}
	return BuildRanking("Figure 7: kernel vs elastic vs sliding (supervised)", combos, opts.FriedmanAlpha), nil
}

// Figure8 reproduces Figure 8: the unsupervised counterpart of Figure 7.
func Figure8(opts Options) Ranking {
	r, _ := Figure8Ctx(context.Background(), opts, nil)
	return r
}

// Figure8Ctx is Figure8 honoring cancellation and reporting per-combo
// progress.
func Figure8Ctx(ctx context.Context, opts Options, rep run.Reporter) (Ranking, error) {
	opts = opts.Defaults()
	ms := unsupervisedKernels()[:3] // KDTW, GAK, SINK
	ms = append(ms, unsupervisedElastic()[:3]...)
	var thunks []comboThunk
	for _, m := range ms {
		thunks = append(thunks, fixedCombo(opts.Archive, m, nil, "fixed"))
	}
	thunks = append(thunks, fixedCombo(opts.Archive, sliding.SBD(), nil, "-"))
	combos, err := evalCombos(ctx, rep, "figure8", thunks)
	if err != nil {
		return Ranking{}, err
	}
	return BuildRanking("Figure 8: kernel vs elastic vs sliding (unsupervised)", combos, opts.FriedmanAlpha), nil
}

// Figure1 reproduces Figure 1 as ASCII art: how each of the 8
// normalization methods transforms a pair of series from an ECG-like
// dataset.
func Figure1() string {
	d := dataset.Generate(dataset.Config{
		Name: "ECGPair", Family: dataset.FamilyECG, Length: 96,
		NumClasses: 2, TrainSize: 2, TestSize: 2, Seed: 5, NoiseSigma: 0.1,
	})
	// Undo the generator's z-normalization visually by offsetting one series.
	x := d.Train[0]
	y := make([]float64, len(d.Train[1]))
	for i, v := range d.Train[1] {
		y[i] = 2*v + 3 // different scale and translation, as in the example
	}
	var b strings.Builder
	b.WriteString("Figure 1: the 8 normalization methods on a pair of ECG-like series\n")
	for _, n := range norm.All() {
		fmt.Fprintf(&b, "\n[%s]\n", n.Name())
		b.WriteString(asciiPlot(n.Normalize(x), n.Normalize(y), 64, 8))
	}
	return b.String()
}

// asciiPlot renders two series in a width-by-height character grid
// ('*' = first series, 'o' = second, '#' = both).
func asciiPlot(x, y []float64, width, height int) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range [][]float64{x, y} {
		for _, v := range s {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	put := func(s []float64, ch byte) {
		for c := 0; c < width; c++ {
			idx := c * (len(s) - 1) / (width - 1)
			r := int((hi - s[idx]) / (hi - lo) * float64(height-1))
			if r < 0 {
				r = 0
			}
			if r >= height {
				r = height - 1
			}
			if grid[r][c] != ' ' && grid[r][c] != ch {
				grid[r][c] = '#'
			} else {
				grid[r][c] = ch
			}
		}
	}
	put(x, '*')
	put(y, 'o')
	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "range [%.3f, %.3f]\n", lo, hi)
	return b.String()
}
