package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/lockstep"
	"repro/internal/norm"
	"repro/internal/sliding"
)

// Figure2 reproduces Figure 2: the Friedman/Nemenyi ranking of the
// lock-step measures that outperform ED under z-score (supervised
// Minkowski, Lorentzian, Manhattan, Avg L1/Linf, DISSIM) together with ED.
func Figure2(opts Options) Ranking {
	opts = opts.Defaults()
	combos := []Combo{
		supervisedCombo(opts, eval.MinkowskiGrid(), norm.ZScore()),
		EvaluateCombo(opts.Archive, lockstep.Lorentzian(), norm.ZScore()),
		EvaluateCombo(opts.Archive, lockstep.Manhattan(), norm.ZScore()),
		EvaluateCombo(opts.Archive, lockstep.AvgL1Linf(), norm.ZScore()),
		EvaluateCombo(opts.Archive, lockstep.DISSIM(), norm.ZScore()),
		EvaluateCombo(opts.Archive, lockstep.Euclidean(), norm.ZScore()),
	}
	return BuildRanking("Figure 2: lock-step measures under z-score", combos, opts.FriedmanAlpha)
}

// Figure3 reproduces Figure 3: the ranking of the Lorentzian distance
// under different normalizations against ED with z-score.
func Figure3(opts Options) Ranking {
	opts = opts.Defaults()
	lor := lockstep.Lorentzian()
	combos := []Combo{
		EvaluateCombo(opts.Archive, lor, norm.ZScore()),
		EvaluateCombo(opts.Archive, lor, norm.MinMax()),
		EvaluateCombo(opts.Archive, lor, norm.UnitLength()),
		EvaluateCombo(opts.Archive, lor, norm.MeanNorm()),
		EvaluateCombo(opts.Archive, lockstep.Euclidean(), norm.ZScore()),
	}
	return BuildRanking("Figure 3: Lorentzian under different normalizations vs ED (z-score)", combos, opts.FriedmanAlpha)
}

// Figure4 reproduces Figure 4: the ranking of NCCc under different
// normalization methods, with Lorentzian (UnitLength) as the baseline.
func Figure4(opts Options) Ranking {
	opts = opts.Defaults()
	sbd := sliding.SBD()
	adapted := EvaluateCombo(opts.Archive, norm.AdaptiveScaling(sbd), nil)
	adapted.Measure = sbd.Name()
	adapted.Scaling = norm.AdaptiveName
	combos := []Combo{
		EvaluateCombo(opts.Archive, sbd, norm.ZScore()),
		EvaluateCombo(opts.Archive, sbd, norm.MeanNorm()),
		EvaluateCombo(opts.Archive, sbd, norm.UnitLength()),
		EvaluateCombo(opts.Archive, sbd, norm.MinMax()),
		adapted,
		EvaluateCombo(opts.Archive, lockstep.Lorentzian(), norm.UnitLength()),
	}
	return BuildRanking("Figure 4: NCCc under different normalizations vs Lorentzian (unitlength)", combos, opts.FriedmanAlpha)
}

// Figure5 reproduces Figure 5: the ranking of the elastic measures with
// supervised tuning, together with NCCc.
func Figure5(opts Options) Ranking {
	opts = opts.Defaults()
	var combos []Combo
	for _, g := range eval.ElasticGrids() {
		combos = append(combos, EvaluateSupervised(opts.Archive, eval.Thin(g, opts.GridStride), nil))
	}
	base := EvaluateCombo(opts.Archive, sliding.SBD(), nil)
	base.Scaling = "-"
	combos = append(combos, base)
	return BuildRanking("Figure 5: elastic vs sliding measures (supervised)", combos, opts.FriedmanAlpha)
}

// Figure6 reproduces Figure 6: the ranking of the elastic measures with
// fixed (unsupervised) parameters, together with NCCc.
func Figure6(opts Options) Ranking {
	opts = opts.Defaults()
	var combos []Combo
	for _, m := range unsupervisedElastic() {
		c := EvaluateCombo(opts.Archive, m, nil)
		c.Scaling = "fixed"
		combos = append(combos, c)
	}
	base := EvaluateCombo(opts.Archive, sliding.SBD(), nil)
	base.Scaling = "-"
	combos = append(combos, base)
	return BuildRanking("Figure 6: elastic vs sliding measures (unsupervised)", combos, opts.FriedmanAlpha)
}

// Figure7 reproduces Figure 7: kernels (KDTW, GAK, SINK) ranked together
// with the strong elastic measures and NCCc under supervised tuning.
func Figure7(opts Options) Ranking {
	opts = opts.Defaults()
	var combos []Combo
	for _, g := range []eval.Grid{eval.KDTWGrid(), eval.GAKGrid(), eval.SINKGrid(), eval.MSMGrid(), eval.TWEGrid(), eval.DTWGrid()} {
		combos = append(combos, EvaluateSupervised(opts.Archive, eval.Thin(g, opts.GridStride), nil))
	}
	base := EvaluateCombo(opts.Archive, sliding.SBD(), nil)
	base.Scaling = "-"
	combos = append(combos, base)
	return BuildRanking("Figure 7: kernel vs elastic vs sliding (supervised)", combos, opts.FriedmanAlpha)
}

// Figure8 reproduces Figure 8: the unsupervised counterpart of Figure 7.
func Figure8(opts Options) Ranking {
	opts = opts.Defaults()
	ms := unsupervisedKernels()[:3] // KDTW, GAK, SINK
	ms = append(ms, unsupervisedElastic()[:3]...)
	var combos []Combo
	for _, m := range ms {
		c := EvaluateCombo(opts.Archive, m, nil)
		c.Scaling = "fixed"
		combos = append(combos, c)
	}
	base := EvaluateCombo(opts.Archive, sliding.SBD(), nil)
	base.Scaling = "-"
	combos = append(combos, base)
	return BuildRanking("Figure 8: kernel vs elastic vs sliding (unsupervised)", combos, opts.FriedmanAlpha)
}

// Figure1 reproduces Figure 1 as ASCII art: how each of the 8
// normalization methods transforms a pair of series from an ECG-like
// dataset.
func Figure1() string {
	d := dataset.Generate(dataset.Config{
		Name: "ECGPair", Family: dataset.FamilyECG, Length: 96,
		NumClasses: 2, TrainSize: 2, TestSize: 2, Seed: 5, NoiseSigma: 0.1,
	})
	// Undo the generator's z-normalization visually by offsetting one series.
	x := d.Train[0]
	y := make([]float64, len(d.Train[1]))
	for i, v := range d.Train[1] {
		y[i] = 2*v + 3 // different scale and translation, as in the example
	}
	var b strings.Builder
	b.WriteString("Figure 1: the 8 normalization methods on a pair of ECG-like series\n")
	for _, n := range norm.All() {
		fmt.Fprintf(&b, "\n[%s]\n", n.Name())
		b.WriteString(asciiPlot(n.Normalize(x), n.Normalize(y), 64, 8))
	}
	return b.String()
}

// asciiPlot renders two series in a width-by-height character grid
// ('*' = first series, 'o' = second, '#' = both).
func asciiPlot(x, y []float64, width, height int) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range [][]float64{x, y} {
		for _, v := range s {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	put := func(s []float64, ch byte) {
		for c := 0; c < width; c++ {
			idx := c * (len(s) - 1) / (width - 1)
			r := int((hi - s[idx]) / (hi - lo) * float64(height-1))
			if r < 0 {
				r = 0
			}
			if r >= height {
				r = height - 1
			}
			if grid[r][c] != ' ' && grid[r][c] != ch {
				grid[r][c] = '#'
			} else {
				grid[r][c] = ch
			}
		}
	}
	put(x, '*')
	put(y, 'o')
	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "range [%.3f, %.3f]\n", lo, hi)
	return b.String()
}
