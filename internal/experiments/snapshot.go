package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/elastic"
	"repro/internal/eval"
	"repro/internal/kernel"
	"repro/internal/measure"
	"repro/internal/run"
	"repro/internal/search"
)

// SnapshotRow is one workload of the snapshot ablation: the same request
// stream served cold (per-request preparation, the pre-snapshot behavior)
// and warm (state from a build-once corpus snapshot, tuned results from
// the snapshot LRU). The Agree flag asserts both paths returned bitwise
// identical results on every request; it failing would be a bug, not a
// trade-off.
type SnapshotRow struct {
	Workload  string
	Requests  int
	ColdTime  time.Duration // sum of per-request inline runs
	WarmTime  time.Duration // snapshot/cache build plus per-request warm runs
	PrepHits  int64         // per-series states served by snapshots
	CacheHits int64         // tuned results served by the LRU
	Agree     bool
}

// Speedup is the cold-to-warm wall-clock ratio: the amortized gain of
// repeated querying against a resident corpus, one-time build included.
func (r SnapshotRow) Speedup() float64 {
	if r.WarmTime <= 0 {
		return 0
	}
	return float64(r.ColdTime) / float64(r.WarmTime)
}

// snapshotRequests is the number of times each workload re-queries the
// same corpus; the warm path pays preparation once across all of them.
const snapshotRequests = 4

// SnapshotAblation measures what the prepared-state layer buys on three
// workload shapes: repeated 1-NN under SINK (preparation-heavy — one FFT
// spectrum per series per request goes away), repeated 1-NN under DTW
// (envelope fills go away, but the DP dominates, bounding the gain), and
// repeated supervised DTW tuning (the whole sweep collapses to a
// fingerprint lookup in the snapshot LRU after the first request).
func SnapshotAblation(opts Options) []SnapshotRow {
	rows, _ := SnapshotAblationCtx(context.Background(), opts, nil)
	return rows
}

// SnapshotAblationCtx is SnapshotAblation honoring cancellation and
// reporting per-workload progress; on a non-nil error the rows are partial.
func SnapshotAblationCtx(ctx context.Context, opts Options, rep run.Reporter) ([]SnapshotRow, error) {
	opts = opts.Defaults()
	workloads := []string{"1nn-sink", "1nn-dtw", "tune-dtw"}
	task := run.NewTask(rep, "snapshot", "workloads", len(workloads))
	rows := make([]SnapshotRow, 0, len(workloads))
	for _, w := range workloads {
		var (
			row SnapshotRow
			err error
		)
		switch w {
		case "1nn-sink":
			row, err = snapshotOneNN(ctx, opts, w, kernel.SINK{Gamma: 5})
		case "1nn-dtw":
			row, err = snapshotOneNN(ctx, opts, w, elastic.DTW{DeltaPercent: 10})
		case "tune-dtw":
			row, err = snapshotTuning(ctx, opts, w, eval.Thin(eval.DTWGrid(), opts.GridStride))
		}
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
		task.Step(w)
	}
	task.Done()
	return rows, nil
}

// snapshotOneNN serves snapshotRequests 1-NN requests per dataset, cold
// and warm, and compares the two result streams bitwise.
func snapshotOneNN(ctx context.Context, opts Options, name string, m measure.Measure) (SnapshotRow, error) {
	row := SnapshotRow{Workload: name, Agree: true}
	for _, d := range opts.Archive {
		cold := make([]search.Result, snapshotRequests)
		start := time.Now()
		for r := 0; r < snapshotRequests; r++ {
			res, err := search.OneNNCtx(ctx, m, d.Test, d.Train)
			if err != nil {
				return row, err
			}
			cold[r] = res
		}
		row.ColdTime += time.Since(start)

		start = time.Now()
		snap, err := corpus.BuildCtx(ctx, d.Train, corpus.Options{Measures: []measure.Measure{m}})
		if err != nil {
			return row, err
		}
		for r := 0; r < snapshotRequests; r++ {
			res, err := search.OneNNSnapshotCtx(ctx, m, d.Test, d.Train, snap)
			if err != nil {
				return row, err
			}
			if !sameResult(res, cold[r]) {
				row.Agree = false
			}
		}
		row.WarmTime += time.Since(start)
		row.PrepHits += snap.Hits().Total()
		row.Requests += snapshotRequests
	}
	return row, nil
}

// snapshotTuning serves snapshotRequests supervised tuning requests per
// dataset: cold re-runs the full sweep each time; warm fingerprints the
// corpus and serves the tuned result from the LRU, falling back to one
// snapshot-backed sweep on the first miss.
func snapshotTuning(ctx context.Context, opts Options, name string, g eval.Grid) (SnapshotRow, error) {
	row := SnapshotRow{Workload: name, Agree: true}
	type tuned struct {
		name string
		acc  float64
	}
	cache := corpus.NewCache(2 * len(opts.Archive))
	for _, d := range opts.Archive {
		var coldRes tuned
		start := time.Now()
		for r := 0; r < snapshotRequests; r++ {
			m, acc, err := eval.TuneSupervisedCtx(ctx, g, d.Train, d.TrainLabels)
			if err != nil {
				return row, err
			}
			coldRes = tuned{m.Name(), acc}
		}
		row.ColdTime += time.Since(start)

		start = time.Now()
		snap, err := corpus.BuildCtx(ctx, d.Train, corpus.Options{Measures: g.Candidates})
		if err != nil {
			return row, err
		}
		key := corpus.Key{FP: snap.Fingerprint(), Measure: g.Name, Band: fmt.Sprintf("tuned/stride=%d", opts.GridStride)}
		for r := 0; r < snapshotRequests; r++ {
			v, err := cache.GetOrBuildCtx(ctx, key, func(ctx context.Context) (any, error) {
				m, acc, err := eval.TuneSupervisedSnapshotCtx(ctx, g, d.Train, d.TrainLabels, snap)
				if err != nil {
					return nil, err
				}
				return tuned{m.Name(), acc}, nil
			})
			if err != nil {
				return row, err
			}
			got := v.(tuned)
			if got.name != coldRes.name || math.Float64bits(got.acc) != math.Float64bits(coldRes.acc) {
				row.Agree = false
			}
		}
		row.WarmTime += time.Since(start)
		row.PrepHits += snap.Hits().Total()
		row.Requests += snapshotRequests
	}
	row.CacheHits = cache.Stats().Hits
	return row, nil
}

// sameResult compares two search results bitwise: same neighbors, same
// distance bit patterns (so NaN payloads and signed zeros count too).
func sameResult(a, b search.Result) bool {
	if len(a.Indices) != len(b.Indices) {
		return false
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] {
			return false
		}
		if math.Float64bits(a.Distances[i]) != math.Float64bits(b.Distances[i]) {
			return false
		}
	}
	return true
}

// RenderSnapshot formats the ablation as a table, one row per workload.
// The cold/warm/speedup columns are machine-dependent and are scrubbed in
// golden comparisons; request counts, snapshot hit counts, cache hit
// counts, and the agreement flag are deterministic.
func RenderSnapshot(rows []SnapshotRow) string {
	var b strings.Builder
	b.WriteString("Snapshot ablation: build-once prepared state vs per-request preparation\n")
	fmt.Fprintf(&b, "%-10s %-5s %-12s %-12s %-8s %-9s %-10s %s\n",
		"workload", "reqs", "cold", "warm", "speedup", "prepHits", "cacheHits", "agree")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-5d %-12v %-12v %-8.2f %-9d %-10d %v\n",
			r.Workload, r.Requests, r.ColdTime.Round(time.Millisecond),
			r.WarmTime.Round(time.Millisecond), r.Speedup(),
			r.PrepHits, r.CacheHits, r.Agree)
	}
	return b.String()
}
