package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/elastic"
	"repro/internal/embedding"
	"repro/internal/eval"
	"repro/internal/kernel"
	"repro/internal/lockstep"
	"repro/internal/measure"
	"repro/internal/norm"
	"repro/internal/sliding"
)

// Table2 reproduces Table 2: every lock-step measure under every
// normalization method, compared against ED with z-score (the previous
// state of the art). Only combos with a higher average accuracy than the
// baseline are reported, as in the paper.
func Table2(opts Options) Table {
	opts = opts.Defaults()
	baseline := EvaluateCombo(opts.Archive, lockstep.Euclidean(), norm.ZScore())
	var combos []Combo
	for _, m := range lockstep.All() {
		for _, n := range norm.All() {
			combos = append(combos, EvaluateCombo(opts.Archive, m, n))
		}
	}
	// The supervised Minkowski row of the paper: tuned per dataset.
	combos = append(combos, supervisedCombo(opts, eval.MinkowskiGrid(), norm.ZScore()))
	return BuildTable("Table 2: lock-step measures vs ED (z-score)", combos, baseline, opts.WilcoxonAlpha, false)
}

// supervisedCombo evaluates a grid with LOOCV tuning under a normalization
// and labels the combo with the normalization name plus the protocol.
func supervisedCombo(opts Options, g eval.Grid, n norm.Normalizer) Combo {
	c := EvaluateSupervised(opts.Archive, eval.Thin(g, opts.GridStride), n)
	c.Scaling = scalingName(n) + "+loocv"
	return c
}

// Table3 reproduces Table 3: the 4 cross-correlation variants under every
// normalization (including the pairwise AdaptiveScaling decorator),
// compared against the Lorentzian distance, the new lock-step state of the
// art established by Table 2.
func Table3(opts Options) Table {
	opts = opts.Defaults()
	baseline := EvaluateCombo(opts.Archive, lockstep.Lorentzian(), norm.UnitLength())
	var combos []Combo
	for _, m := range sliding.All() {
		for _, n := range norm.All() {
			combos = append(combos, EvaluateCombo(opts.Archive, m, n))
		}
		adapted := EvaluateCombo(opts.Archive, norm.AdaptiveScaling(m), nil)
		adapted.Measure = m.Name()
		adapted.Scaling = norm.AdaptiveName
		combos = append(combos, adapted)
	}
	return BuildTable("Table 3: sliding measures vs Lorentzian (unitlength)", combos, baseline, opts.WilcoxonAlpha, false)
}

// unsupervisedElastic returns the fixed-parameter elastic rows of Table 5.
func unsupervisedElastic() []measure.Measure {
	return []measure.Measure{
		elastic.MSM{C: 0.5},
		elastic.TWE{Lambda: 1, Nu: 0.0001},
		elastic.DTW{DeltaPercent: 100},
		elastic.DTW{DeltaPercent: 10},
		elastic.EDR{Epsilon: 0.1},
		elastic.Swale{Epsilon: 0.2, P: 5, R: 1},
		elastic.ERP{G: 0},
		elastic.LCSS{DeltaPercent: 5, Epsilon: 0.2},
	}
}

// Table5 reproduces Table 5: the 7 elastic measures against NCCc, under
// both the supervised (LOOCV) and unsupervised (fixed parameters)
// protocols. All data is z-normalized, as the paper fixes from Section 7
// onward.
func Table5(opts Options) Table {
	opts = opts.Defaults()
	baseline := EvaluateCombo(opts.Archive, sliding.SBD(), nil)
	baseline.Scaling = "-"
	var combos []Combo
	for _, g := range eval.ElasticGrids() {
		if g.Name == "erp" {
			continue // parameter-free: only the unsupervised row applies
		}
		c := EvaluateSupervised(opts.Archive, eval.Thin(g, opts.GridStride), nil)
		combos = append(combos, c)
	}
	for _, m := range unsupervisedElastic() {
		c := EvaluateCombo(opts.Archive, m, nil)
		c.Scaling = "fixed"
		combos = append(combos, c)
	}
	return BuildTable("Table 5: elastic measures vs NCCc", combos, baseline, opts.WilcoxonAlpha, true)
}

// unsupervisedKernels returns the fixed-parameter kernel rows of Table 6.
func unsupervisedKernels() []measure.Measure {
	return []measure.Measure{
		kernel.KDTW{Gamma: 0.125},
		kernel.GAK{Sigma: 0.1},
		kernel.SINK{Gamma: 5},
		kernel.RBF{Gamma: 2},
	}
}

// Table6 reproduces Table 6: the 4 kernel functions against NCCc under
// both protocols.
func Table6(opts Options) Table {
	opts = opts.Defaults()
	baseline := EvaluateCombo(opts.Archive, sliding.SBD(), nil)
	baseline.Scaling = "-"
	var combos []Combo
	for _, g := range eval.KernelGrids() {
		combos = append(combos, EvaluateSupervised(opts.Archive, eval.Thin(g, opts.GridStride), nil))
	}
	for _, m := range unsupervisedKernels() {
		c := EvaluateCombo(opts.Archive, m, nil)
		c.Scaling = "fixed"
		combos = append(combos, c)
	}
	return BuildTable("Table 6: kernel measures vs NCCc", combos, baseline, opts.WilcoxonAlpha, true)
}

// EvaluateEmbedding fits a fresh embedder per dataset (on its training
// split) and evaluates the ED-over-representations measure, the protocol
// of Section 9.
func EvaluateEmbedding(archive []*dataset.Dataset, build func(seed int64) embedding.Embedder) Combo {
	var c Combo
	c.Scaling = "fit/train"
	c.Accs = make([]float64, len(archive))
	for i, d := range archive {
		e := build(int64(i + 1))
		e.Fit(d.Train)
		m := embedding.Measure{E: e}
		if c.Measure == "" {
			c.Measure = m.Name()
		}
		c.Accs[i] = eval.TestAccuracy(m, d, nil)
	}
	return c
}

// Table7 reproduces Table 7: the 4 embedding measures (fixed-length-100
// representations compared with ED) against NCCc.
func Table7(opts Options) Table {
	opts = opts.Defaults()
	baseline := EvaluateCombo(opts.Archive, sliding.SBD(), nil)
	baseline.Scaling = "-"
	builders := []func(seed int64) embedding.Embedder{
		func(seed int64) embedding.Embedder { return &embedding.GRAIL{Gamma: 5, Seed: seed} },
		func(seed int64) embedding.Embedder { return &embedding.RWS{Gamma: 1, DMax: 25, Seed: seed} },
		func(seed int64) embedding.Embedder { return &embedding.SPIRAL{Seed: seed} },
		func(seed int64) embedding.Embedder { return &embedding.SIDL{Lambda: 0.1, R: 0.25, Seed: seed} },
	}
	var combos []Combo
	for _, b := range builders {
		combos = append(combos, EvaluateEmbedding(opts.Archive, b))
	}
	return BuildTable("Table 7: embedding measures vs NCCc", combos, baseline, opts.WilcoxonAlpha, true)
}

// Table4 renders the parameter grids (Table 4 is configuration, not an
// experiment): every tunable measure with its candidate count and bounds.
func Table4() string {
	out := "Table 4: parameter grids (see eval package for exact values)\n"
	grids := append(eval.ElasticGrids(), eval.KernelGrids()...)
	grids = append(grids, eval.MinkowskiGrid())
	for _, g := range grids {
		out += fmt.Sprintf("  %-12s %3d candidates (%s .. %s)\n",
			g.Name, len(g.Candidates),
			g.Candidates[0].Name(), g.Candidates[len(g.Candidates)-1].Name())
	}
	return out
}
