package experiments

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/elastic"
	"repro/internal/embedding"
	"repro/internal/eval"
	"repro/internal/kernel"
	"repro/internal/lockstep"
	"repro/internal/measure"
	"repro/internal/norm"
	"repro/internal/run"
	"repro/internal/sliding"
)

// Table2 reproduces Table 2: every lock-step measure under every
// normalization method, compared against ED with z-score (the previous
// state of the art). Only combos with a higher average accuracy than the
// baseline are reported, as in the paper.
func Table2(opts Options) Table {
	t, _ := Table2Ctx(context.Background(), opts, nil)
	return t
}

// Table2Ctx is Table2 honoring cancellation and reporting per-combo
// progress; on a non-nil error the table is meaningless.
func Table2Ctx(ctx context.Context, opts Options, rep run.Reporter) (Table, error) {
	opts = opts.Defaults()
	total := 1 + len(lockstep.All())*len(norm.All()) + 1
	task := run.NewTask(rep, "table2", "combos", total)
	baseline, err := EvaluateComboCtx(ctx, opts.Archive, lockstep.Euclidean(), norm.ZScore())
	if err != nil {
		return Table{}, err
	}
	task.Step(baseline.Measure + "/" + baseline.Scaling)
	var combos []Combo
	for _, m := range lockstep.All() {
		for _, n := range norm.All() {
			c, err := EvaluateComboCtx(ctx, opts.Archive, m, n)
			if err != nil {
				return Table{}, err
			}
			combos = append(combos, c)
			task.Step(c.Measure + "/" + c.Scaling)
		}
	}
	// The supervised Minkowski row of the paper: tuned per dataset.
	sup, err := supervisedComboCtx(ctx, opts, eval.MinkowskiGrid(), norm.ZScore())
	if err != nil {
		return Table{}, err
	}
	combos = append(combos, sup)
	task.Step(sup.Measure + "/" + sup.Scaling)
	task.Done()
	return BuildTable("Table 2: lock-step measures vs ED (z-score)", combos, baseline, opts.WilcoxonAlpha, false), nil
}

// supervisedCombo evaluates a grid with LOOCV tuning under a normalization
// and labels the combo with the normalization name plus the protocol.
func supervisedCombo(opts Options, g eval.Grid, n norm.Normalizer) Combo {
	c, _ := supervisedComboCtx(context.Background(), opts, g, n)
	return c
}

// supervisedComboCtx is supervisedCombo honoring cancellation.
func supervisedComboCtx(ctx context.Context, opts Options, g eval.Grid, n norm.Normalizer) (Combo, error) {
	c, err := EvaluateSupervisedCtx(ctx, opts.Archive, eval.Thin(g, opts.GridStride), n)
	if err != nil {
		return c, err
	}
	c.Scaling = scalingName(n) + "+loocv"
	return c, nil
}

// Table3 reproduces Table 3: the 4 cross-correlation variants under every
// normalization (including the pairwise AdaptiveScaling decorator),
// compared against the Lorentzian distance, the new lock-step state of the
// art established by Table 2.
func Table3(opts Options) Table {
	t, _ := Table3Ctx(context.Background(), opts, nil)
	return t
}

// Table3Ctx is Table3 honoring cancellation and reporting per-combo
// progress.
func Table3Ctx(ctx context.Context, opts Options, rep run.Reporter) (Table, error) {
	opts = opts.Defaults()
	total := 1 + len(sliding.All())*(len(norm.All())+1)
	task := run.NewTask(rep, "table3", "combos", total)
	baseline, err := EvaluateComboCtx(ctx, opts.Archive, lockstep.Lorentzian(), norm.UnitLength())
	if err != nil {
		return Table{}, err
	}
	task.Step(baseline.Measure + "/" + baseline.Scaling)
	var combos []Combo
	for _, m := range sliding.All() {
		for _, n := range norm.All() {
			c, err := EvaluateComboCtx(ctx, opts.Archive, m, n)
			if err != nil {
				return Table{}, err
			}
			combos = append(combos, c)
			task.Step(c.Measure + "/" + c.Scaling)
		}
		adapted, err := EvaluateComboCtx(ctx, opts.Archive, norm.AdaptiveScaling(m), nil)
		if err != nil {
			return Table{}, err
		}
		adapted.Measure = m.Name()
		adapted.Scaling = norm.AdaptiveName
		combos = append(combos, adapted)
		task.Step(adapted.Measure + "/" + adapted.Scaling)
	}
	task.Done()
	return BuildTable("Table 3: sliding measures vs Lorentzian (unitlength)", combos, baseline, opts.WilcoxonAlpha, false), nil
}

// unsupervisedElastic returns the fixed-parameter elastic rows of Table 5.
func unsupervisedElastic() []measure.Measure {
	return []measure.Measure{
		elastic.MSM{C: 0.5},
		elastic.TWE{Lambda: 1, Nu: 0.0001},
		elastic.DTW{DeltaPercent: 100},
		elastic.DTW{DeltaPercent: 10},
		elastic.EDR{Epsilon: 0.1},
		elastic.Swale{Epsilon: 0.2, P: 5, R: 1},
		elastic.ERP{G: 0},
		elastic.LCSS{DeltaPercent: 5, Epsilon: 0.2},
	}
}

// Table5 reproduces Table 5: the 7 elastic measures against NCCc, under
// both the supervised (LOOCV) and unsupervised (fixed parameters)
// protocols. All data is z-normalized, as the paper fixes from Section 7
// onward.
func Table5(opts Options) Table {
	t, _ := Table5Ctx(context.Background(), opts, nil)
	return t
}

// Table5Ctx is Table5 honoring cancellation and reporting per-combo
// progress.
func Table5Ctx(ctx context.Context, opts Options, rep run.Reporter) (Table, error) {
	opts = opts.Defaults()
	supGrids := 0
	for _, g := range eval.ElasticGrids() {
		if g.Name != "erp" {
			supGrids++
		}
	}
	total := 1 + supGrids + len(unsupervisedElastic())
	task := run.NewTask(rep, "table5", "combos", total)
	baseline, err := EvaluateComboCtx(ctx, opts.Archive, sliding.SBD(), nil)
	if err != nil {
		return Table{}, err
	}
	baseline.Scaling = "-"
	task.Step(baseline.Measure)
	var combos []Combo
	for _, g := range eval.ElasticGrids() {
		if g.Name == "erp" {
			continue // parameter-free: only the unsupervised row applies
		}
		c, err := EvaluateSupervisedCtx(ctx, opts.Archive, eval.Thin(g, opts.GridStride), nil)
		if err != nil {
			return Table{}, err
		}
		combos = append(combos, c)
		task.Step(c.Measure + "/" + c.Scaling)
	}
	for _, m := range unsupervisedElastic() {
		c, err := EvaluateComboCtx(ctx, opts.Archive, m, nil)
		if err != nil {
			return Table{}, err
		}
		c.Scaling = "fixed"
		combos = append(combos, c)
		task.Step(c.Measure + "/fixed")
	}
	task.Done()
	return BuildTable("Table 5: elastic measures vs NCCc", combos, baseline, opts.WilcoxonAlpha, true), nil
}

// unsupervisedKernels returns the fixed-parameter kernel rows of Table 6.
func unsupervisedKernels() []measure.Measure {
	return []measure.Measure{
		kernel.KDTW{Gamma: 0.125},
		kernel.GAK{Sigma: 0.1},
		kernel.SINK{Gamma: 5},
		kernel.RBF{Gamma: 2},
	}
}

// Table6 reproduces Table 6: the 4 kernel functions against NCCc under
// both protocols.
func Table6(opts Options) Table {
	t, _ := Table6Ctx(context.Background(), opts, nil)
	return t
}

// Table6Ctx is Table6 honoring cancellation and reporting per-combo
// progress.
func Table6Ctx(ctx context.Context, opts Options, rep run.Reporter) (Table, error) {
	opts = opts.Defaults()
	total := 1 + len(eval.KernelGrids()) + len(unsupervisedKernels())
	task := run.NewTask(rep, "table6", "combos", total)
	baseline, err := EvaluateComboCtx(ctx, opts.Archive, sliding.SBD(), nil)
	if err != nil {
		return Table{}, err
	}
	baseline.Scaling = "-"
	task.Step(baseline.Measure)
	var combos []Combo
	for _, g := range eval.KernelGrids() {
		c, err := EvaluateSupervisedCtx(ctx, opts.Archive, eval.Thin(g, opts.GridStride), nil)
		if err != nil {
			return Table{}, err
		}
		combos = append(combos, c)
		task.Step(c.Measure + "/" + c.Scaling)
	}
	for _, m := range unsupervisedKernels() {
		c, err := EvaluateComboCtx(ctx, opts.Archive, m, nil)
		if err != nil {
			return Table{}, err
		}
		c.Scaling = "fixed"
		combos = append(combos, c)
		task.Step(c.Measure + "/fixed")
	}
	task.Done()
	return BuildTable("Table 6: kernel measures vs NCCc", combos, baseline, opts.WilcoxonAlpha, true), nil
}

// EvaluateEmbedding fits a fresh embedder per dataset (on its training
// split) and evaluates the ED-over-representations measure, the protocol
// of Section 9.
func EvaluateEmbedding(archive []*dataset.Dataset, build func(seed int64) embedding.Embedder) Combo {
	c, _ := EvaluateEmbeddingCtx(context.Background(), archive, build)
	return c
}

// EvaluateEmbeddingCtx is EvaluateEmbedding honoring cancellation inside
// both the per-dataset fit and the evaluation; on a non-nil error the
// combo is partial.
func EvaluateEmbeddingCtx(ctx context.Context, archive []*dataset.Dataset, build func(seed int64) embedding.Embedder) (Combo, error) {
	var c Combo
	c.Scaling = "fit/train"
	c.Accs = make([]float64, len(archive))
	for i, d := range archive {
		e := build(int64(i + 1))
		if err := embedding.Fit(ctx, e, d.Train); err != nil {
			return c, err
		}
		m := embedding.Measure{E: e}
		if c.Measure == "" {
			c.Measure = m.Name()
		}
		acc, err := eval.TestAccuracyCtx(ctx, m, d, nil)
		if err != nil {
			return c, err
		}
		c.Accs[i] = acc
	}
	return c, nil
}

// Table7 reproduces Table 7: the 4 embedding measures (fixed-length-100
// representations compared with ED) against NCCc.
func Table7(opts Options) Table {
	t, _ := Table7Ctx(context.Background(), opts, nil)
	return t
}

// Table7Ctx is Table7 honoring cancellation and reporting per-combo
// progress.
func Table7Ctx(ctx context.Context, opts Options, rep run.Reporter) (Table, error) {
	opts = opts.Defaults()
	builders := []func(seed int64) embedding.Embedder{
		func(seed int64) embedding.Embedder { return &embedding.GRAIL{Gamma: 5, Seed: seed} },
		func(seed int64) embedding.Embedder { return &embedding.RWS{Gamma: 1, DMax: 25, Seed: seed} },
		func(seed int64) embedding.Embedder { return &embedding.SPIRAL{Seed: seed} },
		func(seed int64) embedding.Embedder { return &embedding.SIDL{Lambda: 0.1, R: 0.25, Seed: seed} },
	}
	task := run.NewTask(rep, "table7", "combos", 1+len(builders))
	baseline, err := EvaluateComboCtx(ctx, opts.Archive, sliding.SBD(), nil)
	if err != nil {
		return Table{}, err
	}
	baseline.Scaling = "-"
	task.Step(baseline.Measure)
	var combos []Combo
	for _, b := range builders {
		c, err := EvaluateEmbeddingCtx(ctx, opts.Archive, b)
		if err != nil {
			return Table{}, err
		}
		combos = append(combos, c)
		task.Step(c.Measure)
	}
	task.Done()
	return BuildTable("Table 7: embedding measures vs NCCc", combos, baseline, opts.WilcoxonAlpha, true), nil
}

// Table4 renders the parameter grids (Table 4 is configuration, not an
// experiment): every tunable measure with its candidate count and bounds.
func Table4() string {
	out := "Table 4: parameter grids (see eval package for exact values)\n"
	grids := append(eval.ElasticGrids(), eval.KernelGrids()...)
	grids = append(grids, eval.MinkowskiGrid())
	for _, g := range grids {
		out += fmt.Sprintf("  %-12s %3d candidates (%s .. %s)\n",
			g.Name, len(g.Candidates),
			g.Candidates[0].Name(), g.Candidates[len(g.Candidates)-1].Name())
	}
	return out
}
