package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/lockstep"
	"repro/internal/norm"
	"repro/internal/sliding"
)

// tinyOpts builds a small deterministic option set that keeps every
// experiment driver fast enough for unit tests.
func tinyOpts() Options {
	return Options{
		Archive: dataset.GenerateArchive(dataset.ArchiveOptions{
			Seed: 3, Count: 9, MaxLength: 48, MaxTrain: 10, MaxTest: 12,
		}),
		GridStride: 6,
	}.Defaults()
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.Defaults()
	if o.WilcoxonAlpha != 0.05 || o.FriedmanAlpha != 0.10 || o.GridStride != 1 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if len(o.Archive) != 24 {
		t.Fatalf("default archive size %d, want 24", len(o.Archive))
	}
}

func TestComboMean(t *testing.T) {
	c := Combo{Accs: []float64{0.5, 0.7, 0.9}}
	if math.Abs(c.Mean()-0.7) > 1e-12 {
		t.Fatalf("mean = %g", c.Mean())
	}
	if (Combo{}).Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestEvaluateComboAccuraciesInRange(t *testing.T) {
	o := tinyOpts()
	c := EvaluateCombo(o.Archive, lockstep.Euclidean(), norm.ZScore())
	if len(c.Accs) != len(o.Archive) {
		t.Fatalf("accs %d, want %d", len(c.Accs), len(o.Archive))
	}
	for _, a := range c.Accs {
		if a < 0 || a > 1 {
			t.Fatalf("accuracy %g out of range", a)
		}
	}
	if c.Measure != "euclidean" || c.Scaling != "zscore" {
		t.Fatalf("labels wrong: %q %q", c.Measure, c.Scaling)
	}
}

func TestCompareToBaselineCounts(t *testing.T) {
	c := Combo{Measure: "a", Scaling: "s", Accs: []float64{0.9, 0.8, 0.5}}
	base := Combo{Measure: "b", Scaling: "s", Accs: []float64{0.8, 0.8, 0.6}}
	r := CompareToBaseline(c, base, 0.05)
	if r.Wins != 1 || r.Ties != 1 || r.Losses != 1 {
		t.Fatalf("counts %d/%d/%d", r.Wins, r.Ties, r.Losses)
	}
}

func TestBuildTableFiltersBelowBaseline(t *testing.T) {
	base := Combo{Measure: "base", Accs: []float64{0.5, 0.5}}
	good := Combo{Measure: "good", Accs: []float64{0.9, 0.9}}
	bad := Combo{Measure: "bad", Accs: []float64{0.1, 0.1}}
	tab := BuildTable("t", []Combo{good, bad}, base, 0.05, false)
	if len(tab.Rows) != 1 || tab.Rows[0].Measure != "good" {
		t.Fatalf("rows = %+v", tab.Rows)
	}
	all := BuildTable("t", []Combo{good, bad}, base, 0.05, true)
	if len(all.Rows) != 2 {
		t.Fatalf("keepAll rows = %d", len(all.Rows))
	}
	// Sorted by descending accuracy.
	if all.Rows[0].Measure != "good" {
		t.Fatal("rows not sorted by accuracy")
	}
}

func TestTableRenderContainsBaseline(t *testing.T) {
	base := Combo{Measure: "base", Scaling: "zscore", Accs: []float64{0.5}}
	tab := BuildTable("Title", []Combo{{Measure: "m", Scaling: "s", Accs: []float64{0.9}}}, base, 0.05, true)
	out := tab.Render()
	for _, want := range []string{"Title", "base", "m", "AvgAcc"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable2ShapeAndPhenomena(t *testing.T) {
	o := tinyOpts()
	tab := Table2(o)
	if tab.Baseline.Measure != "euclidean" {
		t.Fatalf("baseline = %s", tab.Baseline.Measure)
	}
	// Rows must genuinely beat the baseline's average accuracy.
	for _, r := range tab.Rows {
		if r.AvgAcc <= tab.Baseline.Mean() {
			t.Errorf("row %s/%s avg %g <= baseline %g", r.Measure, r.Scaling, r.AvgAcc, tab.Baseline.Mean())
		}
	}
	// The L1 family should appear among the better combos (the paper's
	// headline lock-step finding).
	found := false
	for _, r := range tab.Rows {
		if r.Measure == "lorentzian" || r.Measure == "manhattan" || r.Measure == "avgl1linf" {
			found = true
			break
		}
	}
	if !found {
		t.Error("no L1-family measure above the ED baseline; archive phenomena broken")
	}
}

func TestTable3SlidingBeatsLockstep(t *testing.T) {
	o := tinyOpts()
	tab := Table3(o)
	// NCCc with z-score must appear above the Lorentzian baseline on the
	// shift-heavy synthetic archive (misconception M3's setup).
	var found *Row
	for i, r := range tab.Rows {
		if r.Measure == "nccc" && r.Scaling == "zscore" {
			found = &tab.Rows[i]
			break
		}
	}
	if found == nil {
		t.Fatal("nccc/zscore not above baseline")
	}
	if found.AvgAcc <= tab.Baseline.Mean() {
		t.Fatalf("nccc avg %g <= baseline %g", found.AvgAcc, tab.Baseline.Mean())
	}
}

func TestTable5ContainsBothProtocols(t *testing.T) {
	o := tinyOpts()
	tab := Table5(o)
	var loocv, fixed int
	for _, r := range tab.Rows {
		switch r.Scaling {
		case "LOOCV":
			loocv++
		case "fixed":
			fixed++
		}
	}
	if loocv != 6 { // 7 elastic minus parameter-free ERP
		t.Errorf("LOOCV rows = %d, want 6", loocv)
	}
	if fixed != 8 { // the unsupervised list includes both DTW windows
		t.Errorf("fixed rows = %d, want 8", fixed)
	}
	if tab.Baseline.Measure != "nccc" {
		t.Errorf("baseline = %s, want nccc", tab.Baseline.Measure)
	}
}

func TestTable6KernelsEvaluated(t *testing.T) {
	o := tinyOpts()
	o.GridStride = 8
	tab := Table6(o)
	if len(tab.Rows) != 8 { // 4 supervised + 4 fixed
		t.Fatalf("rows = %d, want 8", len(tab.Rows))
	}
	// RBF (lock-step kernel) must rank below the elastic/sliding kernels
	// on an alignment-heavy archive.
	var rbfFixed, kdtwFixed float64
	for _, r := range tab.Rows {
		if r.Scaling != "fixed" {
			continue
		}
		if strings.HasPrefix(r.Measure, "rbf") {
			rbfFixed = r.AvgAcc
		}
		if strings.HasPrefix(r.Measure, "kdtw") {
			kdtwFixed = r.AvgAcc
		}
	}
	if rbfFixed >= kdtwFixed {
		t.Errorf("RBF %g >= KDTW %g; expected RBF to trail", rbfFixed, kdtwFixed)
	}
}

func TestTable7EmbeddingsEvaluated(t *testing.T) {
	o := tinyOpts()
	tab := Table7(o)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	names := map[string]bool{}
	for _, r := range tab.Rows {
		names[strings.SplitN(r.Measure, "[", 2)[0]] = true
	}
	for _, want := range []string{"grail", "rws", "spiral", "sidl"} {
		if !names[want] {
			t.Errorf("missing embedding %s in %v", want, names)
		}
	}
}

func TestTable4Renders(t *testing.T) {
	out := Table4()
	for _, want := range []string{"msm", "dtw", "lcss", "twe", "kdtw", "gak", "sink", "rbf", "minkowski"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table4 missing %s", want)
		}
	}
}

func TestFigure2Ranking(t *testing.T) {
	o := tinyOpts()
	r := Figure2(o)
	if len(r.Names) != 6 {
		t.Fatalf("names = %d, want 6", len(r.Names))
	}
	if r.Friedman.K != 6 || r.Friedman.N != len(o.Archive) {
		t.Fatalf("friedman dims %dx%d", r.Friedman.N, r.Friedman.K)
	}
	out := r.Render()
	if !strings.Contains(out, "Friedman") || !strings.Contains(out, "euclidean") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestFigure4NCCcBeatsBaseline(t *testing.T) {
	o := tinyOpts()
	r := Figure4(o)
	// The baseline (Lorentzian) is the last combo; NCCc/zscore the first.
	ranks := r.Friedman.AvgRanks
	if ranks[0] >= ranks[len(ranks)-1] {
		t.Errorf("nccc/zscore rank %g not better than lorentzian rank %g", ranks[0], ranks[len(ranks)-1])
	}
}

func TestFigures5Through8Run(t *testing.T) {
	o := tinyOpts()
	o.GridStride = 10
	for name, fn := range map[string]func(Options) Ranking{
		"figure5": Figure5, "figure6": Figure6, "figure7": Figure7, "figure8": Figure8,
	} {
		r := fn(o)
		if len(r.Names) < 4 {
			t.Errorf("%s: only %d methods", name, len(r.Names))
		}
		if out := r.Render(); !strings.Contains(out, "Critical difference") {
			t.Errorf("%s render missing CD line", name)
		}
	}
}

func TestFigure1Renders(t *testing.T) {
	out := Figure1()
	for _, n := range norm.All() {
		if !strings.Contains(out, "["+n.Name()+"]") {
			t.Errorf("Figure 1 missing %s", n.Name())
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("Figure 1 plots missing series glyphs")
	}
}

func TestFigure9RuntimeOrdering(t *testing.T) {
	o := tinyOpts()
	pts := Figure9(o)
	if len(pts) != 11 {
		t.Fatalf("points = %d, want 11", len(pts))
	}
	// Points are sorted by runtime; ED must not be slower than the O(m^2)
	// measures, which sit at the tail.
	var edIdx, gakIdx int = -1, -1
	for i, p := range pts {
		if p.Measure == "euclidean" {
			edIdx = i
		}
		if strings.HasPrefix(p.Measure, "gak") {
			gakIdx = i
		}
	}
	if edIdx == -1 || gakIdx == -1 {
		t.Fatal("expected measures missing")
	}
	if edIdx > gakIdx {
		t.Errorf("ED slower than GAK: positions %d vs %d", edIdx, gakIdx)
	}
	out := RenderRuntime(pts)
	if !strings.Contains(out, "euclidean") || !strings.Contains(out, "grail") {
		t.Errorf("runtime render incomplete:\n%s", out)
	}
}

func TestFigure10Convergence(t *testing.T) {
	o := tinyOpts()
	pts := Figure10(o, 64, []int{8, 16, 32, 64})
	if len(pts) != 5*4 {
		t.Fatalf("points = %d, want 20", len(pts))
	}
	for _, p := range pts {
		if p.Error < 0 || p.Error > 1 {
			t.Fatalf("error %g out of range", p.Error)
		}
	}
	out := RenderConvergence(pts)
	if !strings.Contains(out, "train") || !strings.Contains(out, "euclidean") {
		t.Errorf("convergence render incomplete:\n%s", out)
	}
}

func TestEvaluateSupervisedUsesTuning(t *testing.T) {
	o := tinyOpts()
	g := eval.Thin(eval.DTWGrid(), 8)
	c := EvaluateSupervised(o.Archive, g, nil)
	if c.Scaling != "LOOCV" {
		t.Fatalf("scaling = %s", c.Scaling)
	}
	if len(c.Accs) != len(o.Archive) {
		t.Fatalf("accs = %d", len(c.Accs))
	}
}

func TestBuildRankingNames(t *testing.T) {
	combos := []Combo{
		{Measure: "a", Scaling: "s1", Accs: []float64{0.9, 0.8}},
		{Measure: "b", Scaling: "s2", Accs: []float64{0.5, 0.4}},
	}
	r := BuildRanking("t", combos, 0.10)
	if r.Names[0] != "a/s1" || r.Names[1] != "b/s2" {
		t.Fatalf("names = %v", r.Names)
	}
	if r.Friedman.AvgRanks[0] >= r.Friedman.AvgRanks[1] {
		t.Fatal("a should rank better than b")
	}
}

func TestSBDSanity(t *testing.T) {
	// Regression guard: the shared baseline must be deterministic.
	o := tinyOpts()
	a := EvaluateCombo(o.Archive, sliding.SBD(), nil)
	b := EvaluateCombo(o.Archive, sliding.SBD(), nil)
	for i := range a.Accs {
		if a.Accs[i] != b.Accs[i] {
			t.Fatal("baseline accuracies not deterministic")
		}
	}
}

func TestExtensionSVMImprovesOverOneNN(t *testing.T) {
	o := Options{
		Archive: dataset.GenerateArchive(dataset.ArchiveOptions{
			Seed: 4, Count: 5, MaxLength: 40, MaxTrain: 12, MaxTest: 12,
		}),
	}.Defaults()
	rows := ExtensionSVM(o)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.OneNNAcc < 0 || r.OneNNAcc > 1 || r.SVMAcc < 0 || r.SVMAcc > 1 {
			t.Fatalf("%s accuracies out of range: %+v", r.Kernel, r)
		}
	}
	out := RenderSVM(rows)
	if !strings.Contains(out, "sink") || !strings.Contains(out, "SVM") {
		t.Errorf("render incomplete:\n%s", out)
	}
}
