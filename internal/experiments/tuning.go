package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/eval"
	"repro/internal/run"
	"repro/internal/search"
)

// TuningRow is one grid family of the tuning-engine ablation: the naive
// per-candidate loop versus the shared-state grid engine over the archive,
// with the engine's sweep statistics. The Agree flag asserts that both
// paths select the same candidate with the same leave-one-out accuracy on
// every dataset; it failing would be a bug, not a trade-off.
type TuningRow struct {
	Grid           string
	Candidates     int
	Waves          int // deepest warm-start schedule across the archive
	NaiveTime      time.Duration
	EngineTime     time.Duration
	SharedPrepRate float64 // preparations served by a family-shared one
	WarmPruneRate  float64 // warm-candidate pairs pruned without a distance
	Repaired       int64   // warm rows re-scanned cold
	Agree          bool
}

// Speedup is the naive-to-engine wall-clock ratio.
func (r TuningRow) Speedup() float64 {
	if r.EngineTime <= 0 {
		return 0
	}
	return float64(r.NaiveTime) / float64(r.EngineTime)
}

// TuningAblation quantifies what the grid engine buys over tuning each
// candidate independently, on four grid families chosen to isolate the
// engine's optimizations: MSM (no declared grid structure — the engine's
// overhead floor), DTW (warm-start chain, envelope arena, and the
// pair-matrix bound), LCSS (pair-matrix pruning for a measure with no
// lower bounds of its own), and SINK (preparation shared across the gamma
// sweep).
func TuningAblation(opts Options) []TuningRow {
	rows, _ := TuningAblationCtx(context.Background(), opts, nil)
	return rows
}

// TuningAblationCtx is TuningAblation honoring cancellation and reporting
// per-grid progress; on a non-nil error the rows are partial.
func TuningAblationCtx(ctx context.Context, opts Options, rep run.Reporter) ([]TuningRow, error) {
	opts = opts.Defaults()
	grids := []eval.Grid{eval.MSMGrid(), eval.DTWGrid(), eval.LCSSGrid(), eval.SINKGrid()}
	task := run.NewTask(rep, "tuning", "grids", len(grids))
	rows := make([]TuningRow, 0, len(grids))
	for _, g := range grids {
		g = eval.Thin(g, opts.GridStride)
		row := TuningRow{Grid: g.Name, Candidates: len(g.Candidates), Agree: true}
		var agg search.GridStats
		for _, d := range opts.Archive {
			start := time.Now()
			naiveIdx, naiveAcc := 0, -1.0
			for i, cand := range g.Candidates {
				res, err := search.LeaveOneOutCtx(ctx, cand, d.Train)
				if err != nil {
					return rows, err
				}
				acc := eval.AccuracyFromNeighbors(res.Indices, d.TrainLabels, d.TrainLabels)
				if acc > naiveAcc {
					naiveAcc, naiveIdx = acc, i
				}
			}
			row.NaiveTime += time.Since(start)

			start = time.Now()
			chosen, acc, st, err := eval.TuneSupervisedDetailedCtx(ctx, g, d.Train, d.TrainLabels)
			if err != nil {
				return rows, err
			}
			row.EngineTime += time.Since(start)

			if chosen.Name() != g.Candidates[naiveIdx].Name() || acc != naiveAcc {
				row.Agree = false
			}
			if st.Waves > row.Waves {
				row.Waves = st.Waves
			}
			row.Repaired += st.Repaired
			agg.PrepTotal += st.PrepTotal
			agg.PrepShared += st.PrepShared
			agg.WarmSearch.Pairs += st.WarmSearch.Pairs
			agg.WarmSearch.LBPruned += st.WarmSearch.LBPruned
			agg.WarmSearch.PairLB += st.WarmSearch.PairLB
		}
		row.SharedPrepRate = agg.SharedPrepRate()
		row.WarmPruneRate = agg.WarmPruneRate()
		rows = append(rows, row)
		task.Step(row.Grid)
	}
	task.Done()
	return rows, nil
}

// RenderTuning formats the ablation as a table, one row per grid family.
// The naive/engine/speedup/warmPrune columns are machine-dependent (the
// prune counters depend on worker scheduling) and are scrubbed in golden
// comparisons; candidate counts, sharing rates, repair counts, and the
// agreement flag are deterministic.
func RenderTuning(rows []TuningRow) string {
	var b strings.Builder
	b.WriteString("Tuning ablation: per-candidate loop vs shared-state grid engine\n")
	fmt.Fprintf(&b, "%-6s %-6s %-12s %-12s %-8s %-10s %-10s %-9s %s\n",
		"grid", "cands", "naive", "engine", "speedup", "warmPrune", "prepShare", "repaired", "agree")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-6d %-12v %-12v %-8.2f %-10.2f %-10.2f %-9d %v\n",
			r.Grid, r.Candidates, r.NaiveTime.Round(time.Millisecond),
			r.EngineTime.Round(time.Millisecond), r.Speedup(),
			r.WarmPruneRate, r.SharedPrepRate, r.Repaired, r.Agree)
	}
	return b.String()
}
