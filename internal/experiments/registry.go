package experiments

import (
	"context"

	"repro/internal/run"
)

// This file registers every experiment driver into run.Default, in the
// canonical order of the paper's narrative: lock-step results first
// (Table 2, Figures 2-3), then sliding (Table 3, Figure 4), the parameter
// grids (Table 4), elastic (Table 5, Figures 5-6), kernel (Table 6,
// Figures 7-8), embedding (Table 7), the runtime studies (Figures 9-10),
// the normalization illustration (Figure 1), and the extensions and
// ablations (svm, pruning, tuning, spectral). cmd/tsbench derives its
// experiment list, "all" expansion, and usage text from this registration,
// so the command can never drift from the runnable set.

// register adapts a typed Ctx driver producing a renderable value into a
// registry entry.
func register[T any](name, description string, drv func(ctx context.Context, opts Options, rep run.Reporter) (T, error), render func(T) string) {
	run.Default.Register(run.Experiment{
		Name:        name,
		Description: description,
		Run: func(ctx context.Context, opts Options, rep run.Reporter) (run.Result, error) {
			v, err := drv(ctx, opts, rep)
			if err != nil {
				return run.Result{}, err
			}
			return run.Result{Text: render(v), Structured: v}, nil
		},
	})
}

func init() {
	register("table2", "lock-step measures vs ED under every normalization",
		Table2Ctx, Table.Render)
	register("figure2", "CD ranking of the strong lock-step measures",
		Figure2Ctx, Ranking.Render)
	register("figure3", "CD ranking of Lorentzian across normalizations",
		Figure3Ctx, Ranking.Render)
	register("table3", "sliding cross-correlation variants vs Lorentzian",
		Table3Ctx, Table.Render)
	register("figure4", "CD ranking of NCCc across normalizations",
		Figure4Ctx, Ranking.Render)
	register("table4", "the supervised parameter grids (configuration)",
		func(_ context.Context, _ Options, rep run.Reporter) (string, error) {
			t := run.NewTask(rep, "table4", "grids", 1)
			s := Table4()
			t.Step("render")
			t.Done()
			return s, nil
		}, func(s string) string { return s })
	register("table5", "elastic measures vs NCCc, supervised and fixed",
		Table5Ctx, Table.Render)
	register("figure5", "CD ranking of elastic measures (supervised)",
		Figure5Ctx, Ranking.Render)
	register("figure6", "CD ranking of elastic measures (unsupervised)",
		Figure6Ctx, Ranking.Render)
	register("table6", "kernel measures vs NCCc, supervised and fixed",
		Table6Ctx, Table.Render)
	register("figure7", "CD ranking of kernel vs elastic (supervised)",
		Figure7Ctx, Ranking.Render)
	register("figure8", "CD ranking of kernel vs elastic (unsupervised)",
		Figure8Ctx, Ranking.Render)
	register("table7", "embedding measures vs NCCc",
		Table7Ctx, Table.Render)
	register("figure9", "accuracy-to-runtime scatter of prominent measures",
		Figure9Ctx, RenderRuntime)
	register("figure10", "1-NN error vs training-set size",
		func(ctx context.Context, opts Options, rep run.Reporter) ([]ConvergencePoint, error) {
			return Figure10Ctx(ctx, opts, rep, 0, nil)
		}, RenderConvergence)
	register("figure1", "the 8 normalization methods on an ECG pair",
		func(_ context.Context, _ Options, rep run.Reporter) (string, error) {
			t := run.NewTask(rep, "figure1", "plots", 1)
			s := Figure1()
			t.Step("render")
			t.Done()
			return s, nil
		}, func(s string) string { return s })
	register("svm", "kernel measures under 1-NN vs SVM (extension)",
		ExtensionSVMCtx, RenderSVM)
	register("pruning", "exhaustive matrix vs pruned 1-NN engine ablation",
		PruningAblationCtx, RenderPruning)
	register("tuning", "per-candidate loop vs grid tuning engine ablation",
		TuningAblationCtx, RenderTuning)
	register("spectral", "naive vs batched spectral/linalg engine ablation",
		SpectralRuntimeCtx, RenderSpectral)
	register("hotloops", "scalar DP and per-pair loops vs wavefront/panel engines",
		HotloopsAblationCtx, RenderHotloops)
	register("profile", "STAMP/naive matrix-profile baselines vs STOMP streaming engine",
		ProfileExperimentCtx, RenderProfile)
	register("snapshot", "per-request preparation vs build-once corpus snapshots and LRU",
		SnapshotAblationCtx, RenderSnapshot)
	register("index", "GRAIL ANN embed-index-rerank vs exact search engines",
		IndexExperimentCtx, RenderIndex)
	register("multivariate", "dependent vs independent vs masked measures on multivariate panels",
		MultivariateExperimentCtx, RenderMultivariate)
}
