// Package experiments contains one driver per table and figure of the
// paper's evaluation (Tables 2, 3, 5, 6, 7 and Figures 1-10), the shared
// accuracy bookkeeping, and plain-text rendering of comparison tables and
// critical-difference diagrams. Each driver consumes an archive of datasets
// (the synthetic stand-in for the UCR archive by default) and reproduces
// the corresponding artifact's rows or ranking.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/measure"
	"repro/internal/norm"
	"repro/internal/run"
	"repro/internal/stats"
)

// Options configures an experiment run. It lives in the run-core package
// (so registry drivers have a typed signature without an import cycle) and
// is aliased here for the package's long-standing API.
type Options = run.Options

// DefaultArchive generates the reduced synthetic archive used by tests and
// benches: 24 datasets capped at modest sizes, deterministic under seed 1.
func DefaultArchive() []*dataset.Dataset { return run.DefaultArchive() }

// FullArchive generates the full-scale synthetic archive: 128 datasets,
// mirroring the cardinality of the UCR archive the paper evaluates on.
func FullArchive() []*dataset.Dataset { return run.FullArchive() }

// Combo names a (measure, normalization) evaluation unit and stores its
// per-dataset accuracies.
type Combo struct {
	Measure string // display name of the measure
	Scaling string // normalization name, or tuning protocol for Tables 5-7
	Accs    []float64
}

// Mean returns the average accuracy across datasets.
func (c Combo) Mean() float64 {
	if len(c.Accs) == 0 {
		return 0
	}
	var s float64
	for _, a := range c.Accs {
		s += a
	}
	return s / float64(len(c.Accs))
}

// EvaluateCombo computes per-dataset 1-NN test accuracies for a fixed
// measure under a normalization (nil = data as stored, i.e. z-normalized).
func EvaluateCombo(archive []*dataset.Dataset, m measure.Measure, n norm.Normalizer) Combo {
	c, _ := EvaluateComboCtx(context.Background(), archive, m, n)
	return c
}

// EvaluateComboCtx is EvaluateCombo honoring cancellation between (and
// inside) datasets; on a non-nil error the combo is partial.
func EvaluateComboCtx(ctx context.Context, archive []*dataset.Dataset, m measure.Measure, n norm.Normalizer) (Combo, error) {
	c := Combo{Measure: m.Name(), Scaling: scalingName(n), Accs: make([]float64, len(archive))}
	for i, d := range archive {
		acc, err := eval.TestAccuracyCtx(ctx, m, d, n)
		if err != nil {
			return c, err
		}
		c.Accs[i] = acc
	}
	return c, nil
}

func scalingName(n norm.Normalizer) string {
	if n == nil {
		return "zscore"
	}
	return n.Name()
}

// EvaluateSupervised computes per-dataset accuracies with leave-one-out
// parameter tuning on each training split (the LOOCCV rows of Tables 5-6).
func EvaluateSupervised(archive []*dataset.Dataset, g eval.Grid, n norm.Normalizer) Combo {
	c, _ := EvaluateSupervisedCtx(context.Background(), archive, g, n)
	return c
}

// EvaluateSupervisedCtx is EvaluateSupervised honoring cancellation; on a
// non-nil error the combo is partial.
func EvaluateSupervisedCtx(ctx context.Context, archive []*dataset.Dataset, g eval.Grid, n norm.Normalizer) (Combo, error) {
	c := Combo{Measure: g.Name, Scaling: "LOOCV", Accs: make([]float64, len(archive))}
	for i, d := range archive {
		acc, _, err := eval.SupervisedAccuracyCtx(ctx, g, d, n)
		if err != nil {
			return c, err
		}
		c.Accs[i] = acc
	}
	return c, nil
}

// Row is one line of a comparison table (the shared shape of Tables 2, 3,
// 5, 6, and 7): a combo judged against the table's baseline.
type Row struct {
	Measure string
	Scaling string
	Better  bool // Wilcoxon-significant win over the baseline
	Worse   bool // Wilcoxon-significant loss (the paper's ⊙ marker)
	AvgAcc  float64
	Wins    int // datasets where the combo beats the baseline (">")
	Ties    int // ("=")
	Losses  int // ("<")
	PValue  float64
}

// Table is a rendered comparison against a baseline combo.
type Table struct {
	Title    string
	Baseline Combo
	Rows     []Row
}

// CompareToBaseline builds a table row for the combo against the baseline
// using the Wilcoxon signed-rank test at the given alpha.
func CompareToBaseline(c, baseline Combo, alpha float64) Row {
	w := stats.Wilcoxon(c.Accs, baseline.Accs)
	return Row{
		Measure: c.Measure,
		Scaling: c.Scaling,
		Better:  w.PValue < alpha && w.WPlus > w.WMinus,
		Worse:   w.PValue < alpha && w.WPlus < w.WMinus,
		AvgAcc:  c.Mean(),
		Wins:    w.Wins,
		Ties:    w.Ties,
		Losses:  w.Losses,
		PValue:  w.PValue,
	}
}

// BuildTable compares every combo to the baseline and, mirroring the
// paper's presentation, keeps only rows whose average accuracy exceeds the
// baseline's unless keepAll is set. Rows are sorted by descending average
// accuracy.
func BuildTable(title string, combos []Combo, baseline Combo, alpha float64, keepAll bool) Table {
	t := Table{Title: title, Baseline: baseline}
	base := baseline.Mean()
	for _, c := range combos {
		if !keepAll && c.Mean() <= base {
			continue
		}
		t.Rows = append(t.Rows, CompareToBaseline(c, baseline, alpha))
	}
	sort.SliceStable(t.Rows, func(i, j int) bool { return t.Rows[i].AvgAcc > t.Rows[j].AvgAcc })
	return t
}

// Render formats the table in the layout of the paper's comparison tables.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-24s %-12s %-7s %-9s %5s %5s %5s %8s\n",
		"Measure", "Scaling", "Better", "AvgAcc", ">", "=", "<", "p-value")
	for _, r := range t.Rows {
		marker := "x"
		if r.Better {
			marker = "yes"
		} else if r.Worse {
			marker = "worse"
		}
		fmt.Fprintf(&b, "%-24s %-12s %-7s %-9.4f %5d %5d %5d %8.4f\n",
			r.Measure, r.Scaling, marker, r.AvgAcc, r.Wins, r.Ties, r.Losses, r.PValue)
	}
	fmt.Fprintf(&b, "%-24s %-12s %-7s %-9.4f %5s %5s %5s\n",
		t.Baseline.Measure, t.Baseline.Scaling, "-", t.Baseline.Mean(), "-", "-", "-")
	return b.String()
}

// Ranking is a Friedman + Nemenyi analysis over a set of combos: the CD
// "figure" counterpart to the tables.
type Ranking struct {
	Title    string
	Names    []string
	Friedman stats.FriedmanResult
}

// BuildRanking runs the Friedman test (with the Nemenyi critical
// difference) over the combos' per-dataset accuracies.
func BuildRanking(title string, combos []Combo, alpha float64) Ranking {
	names := make([]string, len(combos))
	n := len(combos[0].Accs)
	scores := make([][]float64, n)
	for i := range scores {
		scores[i] = make([]float64, len(combos))
	}
	for j, c := range combos {
		names[j] = c.Measure + "/" + c.Scaling
		for i, a := range c.Accs {
			scores[i][j] = a
		}
	}
	return Ranking{Title: title, Names: names, Friedman: stats.Friedman(scores, alpha)}
}

// Render formats the ranking as an ASCII critical-difference diagram.
func (r Ranking) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "Friedman chi2=%.3f p=%.4f (Iman-Davenport F=%.3f p=%.4f), significant=%v\n",
		r.Friedman.ChiSq, r.Friedman.PValue, r.Friedman.ImanDavenF, r.Friedman.ImanDavenP, r.Friedman.Significant)
	b.WriteString(stats.CDDiagram(r.Names, r.Friedman.AvgRanks, r.Friedman.CriticalDiff))
	return b.String()
}
