package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/elastic"
	"repro/internal/lockstep"
	"repro/internal/measure"
	"repro/internal/run"
)

// HotloopRow is one kernel of the hot-loop engine ablation: the scalar
// baseline against the corresponding fast path (wavefront DP or batched
// panel), with the Agree flag asserting the engine's exactness contract on
// this input — bitwise equality for the full evaluations, the certified
// early-abandoning bound for the cutoff row. Agree failing would be a bug,
// not a trade-off.
type HotloopRow struct {
	Kernel string
	Size   string
	Base   time.Duration
	Fast   time.Duration
	Agree  bool
}

// Speedup is the baseline-to-fast wall-clock ratio.
func (r HotloopRow) Speedup() float64 {
	if r.Fast <= 0 {
		return 0
	}
	return float64(r.Base) / float64(r.Fast)
}

// hotloopReps repeats each timed section so the durations rise above timer
// granularity without making the ablation slow in the golden sweep.
const hotloopReps = 3

// HotloopsAblation quantifies what the two hot-loop engines buy: the
// diagonal-blocked wavefront DP against the two-row scalar DP for the
// elastic recurrences, and the batched lock-step panel path (with and
// without early-abandoning cutoffs) against the per-pair loop. Wall-clock
// columns are machine-dependent and scrubbed in golden comparisons; the
// Agree column is the deterministic exactness assertion.
func HotloopsAblation(opts Options) []HotloopRow {
	rows, _ := HotloopsAblationCtx(context.Background(), opts, nil)
	return rows
}

// HotloopsAblationCtx is HotloopsAblation honoring cancellation (checked
// between kernels; the wavefront rows also propagate it mid-schedule) and
// reporting per-kernel progress; on a non-nil error the rows are partial.
func HotloopsAblationCtx(ctx context.Context, opts Options, rep run.Reporter) ([]HotloopRow, error) {
	opts = opts.Defaults()
	task := run.NewTask(rep, "hotloops", "kernels", 6)
	rows := make([]HotloopRow, 0, 6)
	rng := rand.New(rand.NewSource(19))
	series := func(n int) []float64 {
		s := make([]float64, n)
		v := 0.0
		for i := range s {
			v += rng.NormFloat64() * 0.3
			s[i] = v
		}
		return s
	}

	// Wavefront kernels: length below the auto-route crossover so Distance
	// stays on the scalar path and the wavefront is invoked explicitly;
	// with the default 256-cell blocks a 768-point pair still schedules a
	// 3x3 block grid, so the cross-block hand-off is on the timed path.
	const wn = 768
	wx, wy := series(wn), series(wn)
	type wfKernel struct {
		name string
		m    interface {
			measure.Measure
			DistanceWavefront(ctx context.Context, x, y []float64) (float64, error)
		}
	}
	for _, k := range []wfKernel{
		{"dtw-wavefront", elastic.DTW{DeltaPercent: 10}},
		{"msm-wavefront", elastic.MSM{C: 0.5}},
		{"twe-wavefront", elastic.TWE{Lambda: 1, Nu: 0.0001}},
	} {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		var base, fast float64
		start := time.Now()
		for rep := 0; rep < hotloopReps; rep++ {
			base = k.m.Distance(wx, wy)
		}
		baseDur := time.Since(start)
		start = time.Now()
		for rep := 0; rep < hotloopReps; rep++ {
			v, err := k.m.DistanceWavefront(ctx, wx, wy)
			if err != nil {
				return rows, err
			}
			fast = v
		}
		fastDur := time.Since(start)
		rows = append(rows, HotloopRow{
			Kernel: k.name, Size: fmt.Sprintf("n=%d", wn),
			Base: baseDur, Fast: fastDur,
			Agree: math.Float64bits(base) == math.Float64bits(fast),
		})
		task.Step(k.name)
	}

	// Panel kernels: one query against a candidate panel, per-pair loop
	// against the fused batched path.
	const pCount, pLen = 64, 128
	q := series(pLen)
	panel := make([][]float64, pCount)
	for i := range panel {
		panel[i] = series(pLen)
	}
	perPair := make([]float64, pCount)
	batched := make([]float64, pCount)
	for _, k := range []struct {
		name string
		pe   measure.PanelEvaluator
	}{
		{"panel-euclidean", lockstep.Euclidean()},
		{"panel-lorentzian", lockstep.Lorentzian()},
	} {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		start := time.Now()
		for rep := 0; rep < hotloopReps; rep++ {
			for i := range panel {
				perPair[i] = k.pe.Distance(q, panel[i])
			}
		}
		baseDur := time.Since(start)
		start = time.Now()
		ok := true
		for rep := 0; rep < hotloopReps; rep++ {
			ok = ok && k.pe.PanelDistances(q, panel, batched)
		}
		fastDur := time.Since(start)
		agree := ok
		for i := range perPair {
			agree = agree && math.Float64bits(perPair[i]) == math.Float64bits(batched[i])
		}
		rows = append(rows, HotloopRow{
			Kernel: k.name, Size: fmt.Sprintf("%dx%d", pCount, pLen),
			Base: baseDur, Fast: fastDur, Agree: agree,
		})
		task.Step(k.name)
	}

	// Early-abandoning panel: the 1-NN cutoff of the panel, so most
	// candidates abandon at a stride check. Agreement here is the UpTo
	// contract: exact below the cutoff, at least the cutoff otherwise.
	if err := ctx.Err(); err != nil {
		return rows, err
	}
	eu := lockstep.Euclidean()
	cutoff := math.Inf(1)
	for i := range panel {
		if d := eu.Distance(q, panel[i]); d < cutoff {
			cutoff = d
		}
	}
	cutoff *= 1.01
	start := time.Now()
	for rep := 0; rep < hotloopReps; rep++ {
		for i := range panel {
			perPair[i] = eu.Distance(q, panel[i])
		}
	}
	baseDur := time.Since(start)
	start = time.Now()
	ok := true
	for rep := 0; rep < hotloopReps; rep++ {
		ok = ok && eu.PanelDistancesUpTo(q, panel, cutoff, batched)
	}
	fastDur := time.Since(start)
	agree := ok
	for i := range perPair {
		if perPair[i] < cutoff {
			agree = agree && math.Float64bits(perPair[i]) == math.Float64bits(batched[i])
		} else {
			agree = agree && batched[i] >= cutoff && batched[i] <= perPair[i]
		}
	}
	rows = append(rows, HotloopRow{
		Kernel: "panel-abandon", Size: fmt.Sprintf("%dx%d", pCount, pLen),
		Base: baseDur, Fast: fastDur, Agree: agree,
	})
	task.Step("panel-abandon")
	task.Done()
	return rows, nil
}

// RenderHotloops formats the ablation as a table, one row per kernel. The
// duration and speedup columns are machine-dependent and scrubbed in
// golden comparisons; kernel, size, and agree are deterministic.
func RenderHotloops(rows []HotloopRow) string {
	var b strings.Builder
	b.WriteString("Hot-loop engines: scalar baselines vs wavefront DP and batched panels\n")
	fmt.Fprintf(&b, "%-16s %-8s %-12s %-12s %-8s %s\n",
		"kernel", "size", "base", "fast", "speedup", "agree")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-8s %-12v %-12v %-8.2f %v\n",
			r.Kernel, r.Size, r.Base.Round(time.Microsecond), r.Fast.Round(time.Microsecond),
			r.Speedup(), r.Agree)
	}
	return b.String()
}
