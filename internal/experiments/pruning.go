package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/elastic"
	"repro/internal/eval"
	"repro/internal/run"
	"repro/internal/search"
)

// PruningRow is one band of the pruning ablation: exhaustive matrix
// evaluation versus the pruned engine for DTW 1-NN over the archive, with
// the accuracies of both paths (which must agree bit-for-bit) and the
// engine's work counters.
type PruningRow struct {
	Band        int // Sakoe-Chiba band, percent of the series length
	ExactTime   time.Duration
	PrunedTime  time.Duration
	AccExact    float64
	AccPruned   float64
	Identical   bool // every predicted neighbor index matched
	Stats       search.Stats
	PrunedFrac  float64 // fraction of candidate pairs rejected by bounds
	AbandonFrac float64 // full computations relative to candidate pairs
}

// Speedup is the exhaustive-to-pruned wall-clock ratio.
func (r PruningRow) Speedup() float64 {
	if r.PrunedTime <= 0 {
		return 0
	}
	return float64(r.ExactTime) / float64(r.PrunedTime)
}

// PruningAblation quantifies what the UCR-suite machinery buys: for each
// DTW band it runs 1-NN inference over the whole archive twice — once
// through eval.Matrix (exhaustive) and once through search.OneNN (LB_Kim +
// LB_Keogh cascade + early-abandoning DP) — and reports wall-clock, work
// counters, and both accuracies. The Identical flag asserts the engine's
// exactness on this archive; it failing would be a bug, not a trade-off.
func PruningAblation(opts Options) []PruningRow {
	rows, _ := PruningAblationCtx(context.Background(), opts, nil)
	return rows
}

// PruningAblationCtx is PruningAblation honoring cancellation and
// reporting per-band progress; on a non-nil error the rows are partial.
func PruningAblationCtx(ctx context.Context, opts Options, rep run.Reporter) ([]PruningRow, error) {
	opts = opts.Defaults()
	bands := []int{5, 10, 100}
	task := run.NewTask(rep, "pruning", "bands", len(bands))
	rows := make([]PruningRow, 0, len(bands))
	for _, band := range bands {
		m := elastic.DTW{DeltaPercent: band}
		row := PruningRow{Band: band, Identical: true}
		var accExact, accPruned float64
		for _, d := range opts.Archive {
			start := time.Now()
			e, err := eval.MatrixCtx(ctx, m, d.Test, d.Train)
			if err != nil {
				return rows, err
			}
			row.ExactTime += time.Since(start)
			exactNb := eval.Neighbors(e)
			accExact += eval.AccuracyFromNeighbors(exactNb, d.TestLabels, d.TrainLabels)

			start = time.Now()
			res, err := search.OneNNCtx(ctx, m, d.Test, d.Train)
			if err != nil {
				return rows, err
			}
			row.PrunedTime += time.Since(start)
			accPruned += eval.AccuracyFromNeighbors(res.Indices, d.TestLabels, d.TrainLabels)
			row.Stats.Pairs += res.Stats.Pairs
			row.Stats.LBPruned += res.Stats.LBPruned
			row.Stats.FullDist += res.Stats.FullDist
			for i := range exactNb {
				if res.Indices[i] != exactNb[i] {
					row.Identical = false
				}
			}
		}
		n := float64(len(opts.Archive))
		row.AccExact = accExact / n
		row.AccPruned = accPruned / n
		if row.Stats.Pairs > 0 {
			row.PrunedFrac = float64(row.Stats.LBPruned) / float64(row.Stats.Pairs)
			row.AbandonFrac = float64(row.Stats.FullDist) / float64(row.Stats.Pairs)
		}
		rows = append(rows, row)
		task.Step(fmt.Sprintf("band=%d", band))
	}
	task.Done()
	return rows, nil
}

// RenderPruning formats the ablation as a table, one row per band.
func RenderPruning(rows []PruningRow) string {
	var b strings.Builder
	b.WriteString("Pruning ablation: exhaustive matrix vs pruned 1-NN engine (DTW)\n")
	fmt.Fprintf(&b, "%-6s %-12s %-12s %-8s %-9s %-9s %-8s %-8s %s\n",
		"band", "exact", "pruned", "speedup", "accExact", "accPruned", "lbPrune", "fullDP", "identical")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %-12v %-12v %-8.2f %-9.4f %-9.4f %-8.2f %-8.2f %v\n",
			r.Band, r.ExactTime.Round(time.Millisecond), r.PrunedTime.Round(time.Millisecond),
			r.Speedup(), r.AccExact, r.AccPruned, r.PrunedFrac, r.AbandonFrac, r.Identical)
	}
	return b.String()
}
