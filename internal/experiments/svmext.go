package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/eval"
	"repro/internal/kernel"
	"repro/internal/measure"
	"repro/internal/run"
	"repro/internal/svm"
)

// This file implements the future-work experiment Section 9 of the paper
// defers: evaluating kernel measures under an SVM classifier instead of
// 1-NN. The paper observes (citing GRAIL) that kernels "achieve much
// higher accuracy under different evaluation frameworks (e.g., with SVM
// classifiers)"; ExtensionSVM quantifies that on the synthetic archive.

// SVMRow compares a kernel under the two evaluation frameworks.
type SVMRow struct {
	Kernel   string
	OneNNAcc float64 // 1-NN over the kernel distance (the paper's protocol)
	SVMAcc   float64 // one-vs-rest kernel SVM over the same Gram matrices
}

// toKernel converts a kernel measure's distance value back into the
// normalized kernel value: SINK, KDTW, and RBF expose d = 1 - k̂, while
// GAK exposes the negative log-normalized kernel d = -log k̂.
func toKernel(m measure.Measure, d float64) float64 {
	if _, isGAK := m.(kernel.GAK); isGAK {
		return math.Exp(-d)
	}
	return 1 - d
}

// gramFromDist maps a distance matrix to the kernel Gram matrix.
func gramFromDist(m measure.Measure, dist [][]float64) [][]float64 {
	g := make([][]float64, len(dist))
	for i, row := range dist {
		g[i] = make([]float64, len(row))
		for j, d := range row {
			g[i][j] = toKernel(m, d)
		}
	}
	return g
}

// ExtensionSVM evaluates each kernel function under both 1-NN and a
// one-vs-rest kernel SVM (C = 10) on every archive dataset, returning the
// mean accuracies. The same Gram matrices feed both classifiers, so the
// comparison isolates the evaluation framework.
func ExtensionSVM(opts Options) []SVMRow {
	rows, _ := ExtensionSVMCtx(context.Background(), opts, nil)
	return rows
}

// ExtensionSVMCtx is ExtensionSVM honoring cancellation (inside the
// matrix fills and between datasets — the SVM solver itself runs to
// completion per dataset) and reporting per-kernel progress; on a non-nil
// error the rows are partial.
func ExtensionSVMCtx(ctx context.Context, opts Options, rep run.Reporter) ([]SVMRow, error) {
	opts = opts.Defaults()
	kernels := []measure.Measure{
		kernel.SINK{Gamma: 5},
		kernel.KDTW{Gamma: 0.125},
		kernel.GAK{Sigma: 0.1},
		kernel.RBF{Gamma: 2},
	}
	task := run.NewTask(rep, "svm", "kernels", len(kernels))
	rows := make([]SVMRow, 0, len(kernels))
	for _, k := range kernels {
		var nnSum, svmSum float64
		for i, d := range opts.Archive {
			distTest, err := eval.MatrixCtx(ctx, k, d.Test, d.Train)
			if err != nil {
				return rows, err
			}
			nnSum += eval.OneNN(distTest, d.TestLabels, d.TrainLabels)

			distTrain, err := eval.MatrixCtx(ctx, k, d.Train, d.Train)
			if err != nil {
				return rows, err
			}
			gTrain := gramFromDist(k, distTrain)
			gTest := gramFromDist(k, distTest)
			model := svm.Train(gTrain, d.TrainLabels, svm.Config{C: 10, Seed: int64(i + 1)})
			svmSum += model.Accuracy(gTest, d.TestLabels)
		}
		n := float64(len(opts.Archive))
		rows = append(rows, SVMRow{Kernel: k.Name(), OneNNAcc: nnSum / n, SVMAcc: svmSum / n})
		task.Step(k.Name())
	}
	task.Done()
	return rows, nil
}

// RenderSVM formats the extension-experiment rows.
func RenderSVM(rows []SVMRow) string {
	var b strings.Builder
	b.WriteString("Extension: kernel measures under 1-NN vs SVM (future work of Section 9)\n")
	fmt.Fprintf(&b, "%-16s %-10s %-10s %s\n", "Kernel", "1-NN", "SVM", "delta")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-10.4f %-10.4f %+.4f\n", r.Kernel, r.OneNNAcc, r.SVMAcc, r.SVMAcc-r.OneNNAcc)
	}
	return b.String()
}
