package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/elastic"
	"repro/internal/embedding"
	"repro/internal/eval"
	"repro/internal/kernel"
	"repro/internal/lockstep"
	"repro/internal/measure"
	"repro/internal/run"
	"repro/internal/search"
	"repro/internal/sliding"
)

// RuntimePoint is one point of the Figure 9 scatter: a measure's average
// accuracy and total inference time (computing the test-by-train matrices)
// across the archive.
type RuntimePoint struct {
	Measure   string
	AvgAcc    float64
	Inference time.Duration
	Class     string // asymptotic class: O(m), O(m log m), O(m^2), O(d)
}

// Figure9 reproduces Figure 9: the accuracy-to-runtime comparison of the
// most prominent measures. Runtime covers inference only (evaluation on
// the test sets), as in the paper. With opts.Pruned the inference runs
// through the matrix-free pruned engine; accuracies are identical.
func Figure9(opts Options) []RuntimePoint {
	p, _ := Figure9Ctx(context.Background(), opts, nil)
	return p
}

// Figure9Ctx is Figure9 honoring cancellation and reporting per-measure
// progress; on a non-nil error the points are partial. Cancellation is
// observed inside the timed regions too (the engines are ctx-aware), so a
// cancelled run never blocks on a long matrix fill.
func Figure9Ctx(ctx context.Context, opts Options, rep run.Reporter) ([]RuntimePoint, error) {
	opts = opts.Defaults()
	type entry struct {
		m     measure.Measure
		class string
	}
	entries := []entry{
		{lockstep.Euclidean(), "O(m)"},
		{lockstep.Lorentzian(), "O(m)"},
		{sliding.SBD(), "O(m log m)"},
		{kernel.SINK{Gamma: 5}, "O(m log m)"},
		{elastic.DTW{DeltaPercent: 10}, "O(m^2)"},
		{elastic.MSM{C: 0.5}, "O(m^2)"},
		{elastic.TWE{Lambda: 1, Nu: 0.0001}, "O(m^2)"},
		{elastic.ERP{G: 0}, "O(m^2)"},
		{kernel.GAK{Sigma: 0.1}, "O(m^2)"},
		{kernel.KDTW{Gamma: 0.125}, "O(m^2)"},
	}
	task := run.NewTask(rep, "figure9", "measures", len(entries)+1)
	points := make([]RuntimePoint, 0, len(entries)+1)
	for _, e := range entries {
		var correctWeighted float64
		var elapsed time.Duration
		accs := make([]float64, len(opts.Archive))
		for i, d := range opts.Archive {
			var neighbors []int
			start := time.Now()
			if opts.Pruned {
				res, err := search.OneNNCtx(ctx, e.m, d.Test, d.Train)
				if err != nil {
					return points, err
				}
				neighbors = res.Indices
			} else {
				mat, err := eval.MatrixCtx(ctx, e.m, d.Test, d.Train)
				if err != nil {
					return points, err
				}
				neighbors = eval.Neighbors(mat)
			}
			elapsed += time.Since(start)
			accs[i] = eval.AccuracyFromNeighbors(neighbors, d.TestLabels, d.TrainLabels)
			correctWeighted += accs[i]
		}
		points = append(points, RuntimePoint{
			Measure:   e.m.Name(),
			AvgAcc:    correctWeighted / float64(len(opts.Archive)),
			Inference: elapsed,
			Class:     e.class,
		})
		task.Step(e.m.Name())
	}
	// GRAIL: fit on train (excluded from inference time, like the paper's
	// one-off representation construction), then time the O(d) comparisons.
	var grailAcc float64
	var grailTime time.Duration
	for i, d := range opts.Archive {
		g := &embedding.GRAIL{Gamma: 5, Seed: int64(i + 1)}
		if err := g.FitCtx(ctx, d.Train); err != nil {
			return points, err
		}
		m := embedding.Measure{E: g}
		sm := measure.Stateful(m)
		prepTrain := make([]any, len(d.Train))
		for j, s := range d.Train {
			prepTrain[j] = sm.Prepare(s)
		}
		start := time.Now()
		correct := 0
		for j, s := range d.Test {
			ps := sm.Prepare(s)
			best, bestD := -1, 0.0
			for k := range d.Train {
				dist := sm.PreparedDistance(ps, prepTrain[k])
				if best == -1 || dist < bestD {
					best, bestD = k, dist
				}
			}
			if d.TrainLabels[best] == d.TestLabels[j] {
				correct++
			}
		}
		grailTime += time.Since(start)
		grailAcc += float64(correct) / float64(len(d.Test))
	}
	points = append(points, RuntimePoint{
		Measure:   "grail[g=5]",
		AvgAcc:    grailAcc / float64(len(opts.Archive)),
		Inference: grailTime,
		Class:     "O(d)",
	})
	task.Step("grail[g=5]")
	task.Done()
	sort.Slice(points, func(i, j int) bool { return points[i].Inference < points[j].Inference })
	return points, nil
}

// RenderRuntime formats the Figure 9 points as a table sorted by runtime.
func RenderRuntime(points []RuntimePoint) string {
	var b strings.Builder
	b.WriteString("Figure 9: accuracy-to-runtime comparison (inference only)\n")
	fmt.Fprintf(&b, "%-18s %-12s %-9s %s\n", "Measure", "Class", "AvgAcc", "Inference")
	for _, p := range points {
		fmt.Fprintf(&b, "%-18s %-12s %-9.4f %v\n", p.Measure, p.Class, p.AvgAcc, p.Inference)
	}
	return b.String()
}

// ConvergencePoint is one point of the Figure 10 curves: the 1-NN error of
// a measure at a given training-set size.
type ConvergencePoint struct {
	Measure   string
	TrainSize int
	Error     float64
}

// Figure10 reproduces Figure 10: 1-NN error rates with increasingly larger
// training sets, showing that ED's error does not always converge to the
// error of more accurate measures at the same speed. A dedicated dataset
// with a large training split is generated (the archive's splits are too
// small to subset meaningfully).
func Figure10(opts Options, maxTrain int, sizes []int) []ConvergencePoint {
	p, _ := Figure10Ctx(context.Background(), opts, nil, maxTrain, sizes)
	return p
}

// Figure10Ctx is Figure10 honoring cancellation and reporting per-measure
// progress; on a non-nil error the points are partial.
func Figure10Ctx(ctx context.Context, opts Options, rep run.Reporter, maxTrain int, sizes []int) ([]ConvergencePoint, error) {
	opts = opts.Defaults()
	if maxTrain <= 0 {
		maxTrain = 256
	}
	if len(sizes) == 0 {
		sizes = []int{8, 16, 32, 64, 128, 256}
	}
	d := dataset.Generate(dataset.Config{
		Name: "Convergence", Family: dataset.FamilyECG, Length: 96,
		NumClasses: 4, TrainSize: maxTrain, TestSize: 128, Seed: 99,
		NoiseSigma: 0.3, ShiftFrac: 0.15, WarpFrac: 0.1, AmpJitter: 0.2,
	})
	ms := []measure.Measure{
		lockstep.Euclidean(),
		lockstep.Lorentzian(),
		sliding.SBD(),
		elastic.DTW{DeltaPercent: 10},
		elastic.MSM{C: 0.5},
	}
	task := run.NewTask(rep, "figure10", "measures", len(ms))
	var out []ConvergencePoint
	for _, m := range ms {
		for _, n := range sizes {
			if n > maxTrain {
				continue
			}
			sub := d.SubsetTrain(n)
			e, err := eval.MatrixCtx(ctx, m, sub.Test, sub.Train)
			if err != nil {
				return out, err
			}
			acc := eval.OneNN(e, sub.TestLabels, sub.TrainLabels)
			out = append(out, ConvergencePoint{Measure: m.Name(), TrainSize: n, Error: 1 - acc})
		}
		task.Step(m.Name())
	}
	task.Done()
	return out, nil
}

// RenderConvergence formats the Figure 10 series as aligned columns, one
// row per training size and one column per measure.
func RenderConvergence(points []ConvergencePoint) string {
	sizes := []int{}
	measures := []string{}
	seenSize := map[int]bool{}
	seenMeasure := map[string]bool{}
	errs := map[string]map[int]float64{}
	for _, p := range points {
		if !seenSize[p.TrainSize] {
			seenSize[p.TrainSize] = true
			sizes = append(sizes, p.TrainSize)
		}
		if !seenMeasure[p.Measure] {
			seenMeasure[p.Measure] = true
			measures = append(measures, p.Measure)
			errs[p.Measure] = map[int]float64{}
		}
		errs[p.Measure][p.TrainSize] = p.Error
	}
	sort.Ints(sizes)
	var b strings.Builder
	b.WriteString("Figure 10: 1-NN error vs training-set size\n")
	fmt.Fprintf(&b, "%-8s", "train")
	for _, m := range measures {
		fmt.Fprintf(&b, " %-14s", m)
	}
	b.WriteByte('\n')
	for _, s := range sizes {
		fmt.Fprintf(&b, "%-8d", s)
		for _, m := range measures {
			fmt.Fprintf(&b, " %-14.4f", errs[m][s])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
