package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/elastic"
	"repro/internal/embedding"
	"repro/internal/eval"
	"repro/internal/kernel"
	"repro/internal/lockstep"
	"repro/internal/measure"
	"repro/internal/search"
	"repro/internal/sliding"
)

// RuntimePoint is one point of the Figure 9 scatter: a measure's average
// accuracy and total inference time (computing the test-by-train matrices)
// across the archive.
type RuntimePoint struct {
	Measure   string
	AvgAcc    float64
	Inference time.Duration
	Class     string // asymptotic class: O(m), O(m log m), O(m^2), O(d)
}

// Figure9 reproduces Figure 9: the accuracy-to-runtime comparison of the
// most prominent measures. Runtime covers inference only (evaluation on
// the test sets), as in the paper. With opts.Pruned the inference runs
// through the matrix-free pruned engine; accuracies are identical.
func Figure9(opts Options) []RuntimePoint {
	opts = opts.Defaults()
	type entry struct {
		m     measure.Measure
		class string
	}
	entries := []entry{
		{lockstep.Euclidean(), "O(m)"},
		{lockstep.Lorentzian(), "O(m)"},
		{sliding.SBD(), "O(m log m)"},
		{kernel.SINK{Gamma: 5}, "O(m log m)"},
		{elastic.DTW{DeltaPercent: 10}, "O(m^2)"},
		{elastic.MSM{C: 0.5}, "O(m^2)"},
		{elastic.TWE{Lambda: 1, Nu: 0.0001}, "O(m^2)"},
		{elastic.ERP{G: 0}, "O(m^2)"},
		{kernel.GAK{Sigma: 0.1}, "O(m^2)"},
		{kernel.KDTW{Gamma: 0.125}, "O(m^2)"},
	}
	points := make([]RuntimePoint, 0, len(entries)+1)
	for _, e := range entries {
		var correctWeighted float64
		var elapsed time.Duration
		accs := make([]float64, len(opts.Archive))
		for i, d := range opts.Archive {
			var neighbors []int
			start := time.Now()
			if opts.Pruned {
				neighbors = search.OneNN(e.m, d.Test, d.Train).Indices
			} else {
				neighbors = eval.Neighbors(eval.Matrix(e.m, d.Test, d.Train))
			}
			elapsed += time.Since(start)
			accs[i] = eval.AccuracyFromNeighbors(neighbors, d.TestLabels, d.TrainLabels)
			correctWeighted += accs[i]
		}
		points = append(points, RuntimePoint{
			Measure:   e.m.Name(),
			AvgAcc:    correctWeighted / float64(len(opts.Archive)),
			Inference: elapsed,
			Class:     e.class,
		})
	}
	// GRAIL: fit on train (excluded from inference time, like the paper's
	// one-off representation construction), then time the O(d) comparisons.
	var grailAcc float64
	var grailTime time.Duration
	for i, d := range opts.Archive {
		g := &embedding.GRAIL{Gamma: 5, Seed: int64(i + 1)}
		g.Fit(d.Train)
		m := embedding.Measure{E: g}
		sm := measure.Stateful(m)
		prepTrain := make([]any, len(d.Train))
		for j, s := range d.Train {
			prepTrain[j] = sm.Prepare(s)
		}
		start := time.Now()
		correct := 0
		for j, s := range d.Test {
			ps := sm.Prepare(s)
			best, bestD := -1, 0.0
			for k := range d.Train {
				dist := sm.PreparedDistance(ps, prepTrain[k])
				if best == -1 || dist < bestD {
					best, bestD = k, dist
				}
			}
			if d.TrainLabels[best] == d.TestLabels[j] {
				correct++
			}
		}
		grailTime += time.Since(start)
		grailAcc += float64(correct) / float64(len(d.Test))
	}
	points = append(points, RuntimePoint{
		Measure:   "grail[g=5]",
		AvgAcc:    grailAcc / float64(len(opts.Archive)),
		Inference: grailTime,
		Class:     "O(d)",
	})
	sort.Slice(points, func(i, j int) bool { return points[i].Inference < points[j].Inference })
	return points
}

// RenderRuntime formats the Figure 9 points as a table sorted by runtime.
func RenderRuntime(points []RuntimePoint) string {
	var b strings.Builder
	b.WriteString("Figure 9: accuracy-to-runtime comparison (inference only)\n")
	fmt.Fprintf(&b, "%-18s %-12s %-9s %s\n", "Measure", "Class", "AvgAcc", "Inference")
	for _, p := range points {
		fmt.Fprintf(&b, "%-18s %-12s %-9.4f %v\n", p.Measure, p.Class, p.AvgAcc, p.Inference)
	}
	return b.String()
}

// ConvergencePoint is one point of the Figure 10 curves: the 1-NN error of
// a measure at a given training-set size.
type ConvergencePoint struct {
	Measure   string
	TrainSize int
	Error     float64
}

// Figure10 reproduces Figure 10: 1-NN error rates with increasingly larger
// training sets, showing that ED's error does not always converge to the
// error of more accurate measures at the same speed. A dedicated dataset
// with a large training split is generated (the archive's splits are too
// small to subset meaningfully).
func Figure10(opts Options, maxTrain int, sizes []int) []ConvergencePoint {
	opts = opts.Defaults()
	if maxTrain <= 0 {
		maxTrain = 256
	}
	if len(sizes) == 0 {
		sizes = []int{8, 16, 32, 64, 128, 256}
	}
	d := dataset.Generate(dataset.Config{
		Name: "Convergence", Family: dataset.FamilyECG, Length: 96,
		NumClasses: 4, TrainSize: maxTrain, TestSize: 128, Seed: 99,
		NoiseSigma: 0.3, ShiftFrac: 0.15, WarpFrac: 0.1, AmpJitter: 0.2,
	})
	ms := []measure.Measure{
		lockstep.Euclidean(),
		lockstep.Lorentzian(),
		sliding.SBD(),
		elastic.DTW{DeltaPercent: 10},
		elastic.MSM{C: 0.5},
	}
	var out []ConvergencePoint
	for _, m := range ms {
		for _, n := range sizes {
			if n > maxTrain {
				continue
			}
			sub := d.SubsetTrain(n)
			e := eval.Matrix(m, sub.Test, sub.Train)
			acc := eval.OneNN(e, sub.TestLabels, sub.TrainLabels)
			out = append(out, ConvergencePoint{Measure: m.Name(), TrainSize: n, Error: 1 - acc})
		}
	}
	return out
}

// RenderConvergence formats the Figure 10 series as aligned columns, one
// row per training size and one column per measure.
func RenderConvergence(points []ConvergencePoint) string {
	sizes := []int{}
	measures := []string{}
	seenSize := map[int]bool{}
	seenMeasure := map[string]bool{}
	errs := map[string]map[int]float64{}
	for _, p := range points {
		if !seenSize[p.TrainSize] {
			seenSize[p.TrainSize] = true
			sizes = append(sizes, p.TrainSize)
		}
		if !seenMeasure[p.Measure] {
			seenMeasure[p.Measure] = true
			measures = append(measures, p.Measure)
			errs[p.Measure] = map[int]float64{}
		}
		errs[p.Measure][p.TrainSize] = p.Error
	}
	sort.Ints(sizes)
	var b strings.Builder
	b.WriteString("Figure 10: 1-NN error vs training-set size\n")
	fmt.Fprintf(&b, "%-8s", "train")
	for _, m := range measures {
		fmt.Fprintf(&b, " %-14s", m)
	}
	b.WriteByte('\n')
	for _, s := range sizes {
		fmt.Fprintf(&b, "%-8d", s)
		for _, m := range measures {
			fmt.Fprintf(&b, " %-14.4f", errs[m][s])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
