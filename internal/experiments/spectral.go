package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/embedding"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/run"
)

// SpectralRow is one operation of the spectral-engine runtime ablation:
// the naive pre-engine implementation against the batched fast path, with
// the maximum absolute output difference (0 where the engine's contract
// is bitwise, a rounding-scale residual where only the spectrum is shared
// mathematics).
type SpectralRow struct {
	Op      string
	Size    string
	MaxDiff float64
	Naive   time.Duration
	Engine  time.Duration
}

// Speedup is the naive-to-engine wall-clock ratio.
func (r SpectralRow) Speedup() float64 {
	if r.Engine <= 0 {
		return 0
	}
	return float64(r.Naive) / float64(r.Engine)
}

// SpectralRuntime quantifies what the spectral/linalg engine buys on its
// three layers: the batched SINK Gram fill versus the per-pair build that
// re-derives every spectrum (bitwise-identical outputs), the Householder+QL
// eigensolver versus cyclic Jacobi (eigenvalues to rounding), and the
// engine-backed GRAIL fit versus the serial prepared-pair fit (embedding
// geometry to rounding — the eigenbasis is free to rotate inside repeated
// eigenspaces, so the comparison is on representation distances).
func SpectralRuntime(opts Options) []SpectralRow {
	rows, _ := SpectralRuntimeCtx(context.Background(), opts, nil)
	return rows
}

// SpectralRuntimeCtx is SpectralRuntime honoring cancellation (checked
// between rows of the naive fills, inside the engine fills, and between
// layers — the dense eigensolvers themselves run to completion) and
// reporting per-layer progress; on a non-nil error the rows are partial.
func SpectralRuntimeCtx(ctx context.Context, opts Options, rep run.Reporter) ([]SpectralRow, error) {
	opts = opts.Defaults()
	task := run.NewTask(rep, "spectral", "layers", 3)
	rows := make([]SpectralRow, 0, 3)

	// Layer 1: all-pairs SINK Gram fill, 60 series of length 128.
	d := dataset.Generate(dataset.Config{
		Name: "Spectral", Family: dataset.FamilyHarmonic, Length: 128,
		NumClasses: 3, TrainSize: 60, TestSize: 16, Seed: 7,
		NoiseSigma: 0.3, ShiftFrac: 0.15, AmpJitter: 0.2,
	})
	sink := kernel.SINK{Gamma: 5}
	n := len(d.Train)
	naiveGram := linalg.NewMatrix(n, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		for j := 0; j < n; j++ {
			naiveGram.Set(i, j, sink.Distance(d.Train[i], d.Train[j]))
		}
	}
	naiveDur := time.Since(start)
	engineGram := make([][]float64, n)
	for i := range engineGram {
		engineGram[i] = make([]float64, n)
	}
	start = time.Now()
	eng, err := kernel.NewGramEngineCtx(ctx, sink, d.Train)
	if err != nil {
		return rows, err
	}
	if err := eng.FillDistancesCtx(ctx, engineGram); err != nil {
		return rows, err
	}
	engineDur := time.Since(start)
	var maxDiff float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if diff := math.Abs(engineGram[i][j] - naiveGram.At(i, j)); diff > maxDiff {
				maxDiff = diff
			}
		}
	}
	rows = append(rows, SpectralRow{
		Op: "gram-fill", Size: fmt.Sprintf("%dx%d", n, len(d.Train[0])),
		MaxDiff: maxDiff, Naive: naiveDur, Engine: engineDur,
	})
	task.Step("gram-fill")
	if err := ctx.Err(); err != nil {
		return rows, err
	}

	// Layer 2: symmetric eigendecomposition of a PSD Gram-style matrix.
	const en = 120
	rng := rand.New(rand.NewSource(11))
	b := linalg.NewMatrix(en, en/2)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := linalg.SymRankK(b)
	start = time.Now()
	jVals, _ := linalg.EigenSymJacobi(a)
	naiveDur = time.Since(start)
	start = time.Now()
	qVals, _ := linalg.EigenSym(a)
	engineDur = time.Since(start)
	maxDiff = 0
	for i := range qVals {
		if diff := math.Abs(qVals[i] - jVals[i]); diff > maxDiff {
			maxDiff = diff
		}
	}
	rows = append(rows, SpectralRow{
		Op: "eigensym", Size: fmt.Sprintf("n=%d", en),
		MaxDiff: maxDiff, Naive: naiveDur, Engine: engineDur,
	})
	task.Step("eigensym")
	if err := ctx.Err(); err != nil {
		return rows, err
	}

	// Layer 3: the GRAIL fit end to end — serial prepared-pair landmark
	// Gram + Jacobi against the engine-backed Fit.
	const dim = 24
	start = time.Now()
	naiveTr := grailFitSerial(sink, dim, 5, d.Train)
	naiveDur = time.Since(start)
	g := &embedding.GRAIL{Gamma: sink.Gamma, Dim: dim, Seed: 5}
	start = time.Now()
	if err := g.FitCtx(ctx, d.Train); err != nil {
		return rows, err
	}
	engineDur = time.Since(start)
	maxDiff = 0
	naiveReps := make([][]float64, len(d.Test))
	engineReps := make([][]float64, len(d.Test))
	for i, q := range d.Test {
		naiveReps[i] = naiveTr(q)
		engineReps[i] = g.Transform(q)
	}
	em := embedding.Measure{E: g}
	for i := range d.Test {
		for j := range d.Test {
			dn := em.PreparedDistance(naiveReps[i], naiveReps[j])
			de := em.PreparedDistance(engineReps[i], engineReps[j])
			if diff := math.Abs(dn - de); diff > maxDiff {
				maxDiff = diff
			}
		}
	}
	rows = append(rows, SpectralRow{
		Op: "grail-fit", Size: fmt.Sprintf("%d landmarks", dim),
		MaxDiff: maxDiff, Naive: naiveDur, Engine: engineDur,
	})
	task.Step("grail-fit")
	task.Done()
	return rows, nil
}

// grailFitSerial is the pre-engine GRAIL fit — per-pair prepared Gram
// build and the cyclic Jacobi eigensolver — kept as the ablation baseline.
// It returns the fitted transform.
func grailFitSerial(sink kernel.SINK, dim int, seed int64, train [][]float64) func([]float64) []float64 {
	// Same deterministic landmark draw as GRAIL's sampleLandmarks.
	if dim > len(train) {
		dim = len(train)
	}
	idx := rand.New(rand.NewSource(seed)).Perm(len(train))[:dim]
	landmarks := make([][]float64, dim)
	for i, j := range idx {
		landmarks[i] = train[j]
	}
	d := len(landmarks)
	prep := make([]any, d)
	for i, l := range landmarks {
		prep[i] = sink.Prepare(l)
	}
	w := linalg.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		w.Set(i, i, 1)
		for j := i + 1; j < d; j++ {
			k := 1 - sink.PreparedDistance(prep[i], prep[j])
			w.Set(i, j, k)
			w.Set(j, i, k)
		}
	}
	vals, vecs := linalg.EigenSymJacobi(w)
	basis := linalg.NewMatrix(d, d)
	for j := 0; j < d; j++ {
		if !(vals[j] > 1e-10) {
			continue
		}
		inv := 1 / math.Sqrt(vals[j])
		for r := 0; r < d; r++ {
			basis.Set(r, j, vecs.At(r, j)*inv)
		}
	}
	return func(x []float64) []float64 {
		px := sink.Prepare(x)
		e := make([]float64, d)
		for i, pl := range prep {
			e[i] = 1 - sink.PreparedDistance(px, pl)
		}
		z := make([]float64, basis.Cols)
		for r, ev := range e {
			if ev == 0 {
				continue
			}
			row := basis.Row(r)
			for c, bv := range row {
				z[c] += ev * bv
			}
		}
		return z
	}
}

// RenderSpectral formats the ablation as a table, one row per engine
// layer. The duration and speedup columns are machine-dependent and
// scrubbed in golden comparisons; op, size, and maxDiff are deterministic.
func RenderSpectral(rows []SpectralRow) string {
	var b strings.Builder
	b.WriteString("Spectral engine: naive paths vs batched Gram/QL fast paths\n")
	fmt.Fprintf(&b, "%-10s %-13s %-9s %-12s %-12s %s\n",
		"op", "size", "maxDiff", "naive", "engine", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-13s %-9.1e %-12v %-12v %.2f\n",
			r.Op, r.Size, r.MaxDiff, r.Naive.Round(time.Millisecond),
			r.Engine.Round(time.Millisecond), r.Speedup())
	}
	return b.String()
}
