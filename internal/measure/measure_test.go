package measure

import (
	"math"
	"testing"
)

func TestFuncAdapter(t *testing.T) {
	m := New("toy", func(x, y []float64) float64 { return x[0] - y[0] })
	if m.Name() != "toy" {
		t.Fatalf("name = %s", m.Name())
	}
	if d := m.Distance([]float64{5}, []float64{2}); d != 3 {
		t.Fatalf("distance = %g", d)
	}
}

func TestFuncChecksLengths(t *testing.T) {
	m := New("toy", func(x, y []float64) float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Distance([]float64{1}, []float64{1, 2})
}

func TestDiv(t *testing.T) {
	if Div(0, 0) != 0 {
		t.Error("0/0 must be 0 by convention")
	}
	if !math.IsInf(Div(1, 0), 1) {
		t.Error("1/0 must be +Inf")
	}
	if Div(6, 3) != 2 {
		t.Error("plain division broken")
	}
	if Div(-6, 3) != -2 {
		t.Error("negative numerator broken")
	}
}

func TestXLogX(t *testing.T) {
	if XLogX(0) != 0 {
		t.Error("0*log(0) must be 0")
	}
	if !math.IsInf(XLogX(-1), 1) {
		t.Error("negative input must be +Inf")
	}
	if math.Abs(XLogX(math.E)-math.E) > 1e-12 {
		t.Errorf("e*log(e) = %g, want e", XLogX(math.E))
	}
	if XLogX(1) != 0 {
		t.Error("1*log(1) must be 0")
	}
}

func TestXLogXOverY(t *testing.T) {
	if XLogXOverY(0, 5) != 0 {
		t.Error("x=0 must contribute 0")
	}
	if XLogXOverY(0, 0) != 0 {
		t.Error("x=0 must contribute 0 even for y=0")
	}
	if !math.IsInf(XLogXOverY(1, 0), 1) {
		t.Error("positive x with zero y must be +Inf")
	}
	if !math.IsInf(XLogXOverY(-1, 1), 1) {
		t.Error("negative x must be +Inf")
	}
	if !math.IsInf(XLogXOverY(1, -1), 1) {
		t.Error("negative y must be +Inf")
	}
	if math.Abs(XLogXOverY(2, 1)-2*math.Log(2)) > 1e-12 {
		t.Error("2*log(2/1) wrong")
	}
}

func TestSafeSqrt(t *testing.T) {
	if SafeSqrt(4) != 2 {
		t.Error("sqrt(4) wrong")
	}
	if SafeSqrt(-1e-15) != 0 {
		t.Error("rounding noise must clamp to 0")
	}
	if !math.IsNaN(SafeSqrt(-1)) {
		t.Error("substantially negative must be NaN (undefined)")
	}
	if SafeSqrt(0) != 0 {
		t.Error("sqrt(0) wrong")
	}
}

func TestSanitize(t *testing.T) {
	if !math.IsInf(Sanitize(math.NaN()), 1) {
		t.Error("NaN must become +Inf")
	}
	if Sanitize(1.5) != 1.5 {
		t.Error("finite passes through")
	}
	if !math.IsInf(Sanitize(math.Inf(1)), 1) {
		t.Error("+Inf passes through")
	}
	if !math.IsInf(Sanitize(math.Inf(-1)), -1) {
		t.Error("-Inf passes through")
	}
}

func TestCheckSameLength(t *testing.T) {
	CheckSameLength([]float64{1, 2}, []float64{3, 4}) // must not panic
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CheckSameLength([]float64{1}, nil)
}
