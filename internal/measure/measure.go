// Package measure defines the common interface implemented by every
// time-series distance measure in the library, small adapters for building
// measures from plain functions, and the guarded arithmetic helpers shared
// by the probability-style lock-step measures.
//
// A Measure maps two equal-length series to a dissimilarity value: smaller
// means more similar. Similarity measures (inner products, kernels,
// cross-correlations) are exposed in negated or 1-s form so that a single
// nearest-neighbor implementation serves all five categories of the paper.
package measure

import (
	"context"
	"fmt"
	"math"
)

// Measure is a dissimilarity between two equal-length time series.
type Measure interface {
	// Name returns a stable identifier used in tables, registries, and
	// experiment output (e.g. "lorentzian", "dtw[d=10]").
	Name() string
	// Distance returns the dissimilarity of x and y. Implementations may
	// return +Inf (or NaN, treated as +Inf by the evaluation layer) when a
	// measure is undefined for the given inputs, e.g. entropy measures on
	// non-positive data.
	Distance(x, y []float64) float64
}

// Stateful is an optional fast path: measures that benefit from per-series
// precomputation (FFTs, norms, running statistics) implement it, and the
// evaluation layer prepares each series once per dissimilarity matrix
// instead of once per pair.
type Stateful interface {
	Measure
	// Prepare computes reusable per-series state.
	Prepare(x []float64) any
	// PreparedDistance computes the distance from two prepared states.
	PreparedDistance(px, py any) float64
}

// Symmetric is an optional marker: measures whose Distance(x, y) equals
// Distance(y, x) bitwise implement it (returning true), letting the
// evaluation layer compute only one triangle of a square dissimilarity
// matrix and the search engine share each pair distance between both
// leave-one-out rows. The contract is exact equality, not equality up to
// rounding: DP measures whose transposed recurrence combines the same
// operands with the same operations qualify, but measures that merely
// happen to be mathematically symmetric with different summation orders do
// not.
type Symmetric interface {
	Measure
	// Symmetric reports whether the measure is exactly symmetric.
	Symmetric() bool
}

// IsSymmetric reports whether m declares exact symmetry.
func IsSymmetric(m Measure) bool {
	s, ok := m.(Symmetric)
	return ok && s.Symmetric()
}

// ContextMeasure is an optional cancellation-aware route: measures whose
// single-pair cost is large enough to matter under cancellation (elastic
// DPs on long series, kernel recursions) expose DistanceCtx, and layers
// that thread a run-core context (the multivariate lifts, the evaluation
// loops) call it instead of Distance. The contract mirrors the wavefront
// engines: an uncancelled call returns exactly Distance(x, y); a cancelled
// call either surfaces ctx.Err() or still returns the exact value — never
// a partial accumulation.
type ContextMeasure interface {
	Measure
	// DistanceCtx is Distance honoring ctx.
	DistanceCtx(ctx context.Context, x, y []float64) (float64, error)
}

// EarlyAbandoning is an optional fast path for best-so-far-aware search:
// DistanceUpTo may stop as soon as the running accumulation proves the
// final distance cannot be below cutoff.
type EarlyAbandoning interface {
	Measure
	// DistanceUpTo returns Distance(x, y) exactly whenever that value is
	// < cutoff. Otherwise it may abandon the computation and return any
	// value v with cutoff <= v <= Distance(x, y), so the caller can both
	// reject the candidate and reuse v as a certified lower bound.
	DistanceUpTo(x, y []float64, cutoff float64) float64
}

// BoundContext is reusable per-series state backing a measure's lower
// bounds (envelopes, cached extrema, scratch deques). Contexts are not
// safe for concurrent use; the search engine keeps one per worker for
// queries and one per reference series, filled once.
type BoundContext interface {
	// Fill recomputes the context for x. Implementations must be
	// allocation-free when len(x) matches the length the context currently
	// holds buffers for, and may grow the buffers otherwise.
	Fill(x []float64)
}

// LowerBounded is an optional fast path for pruned nearest-neighbor
// search: measures that admit cheap lower bounds (LB_Kim, LB_Keogh, ...)
// expose them through a cascade evaluated against a best-so-far cutoff.
type LowerBounded interface {
	Measure
	// NewBoundContext allocates a context for series of length m.
	NewBoundContext(m int) BoundContext
	// LowerBound returns a value <= Distance(x, y), given filled contexts
	// for both series. Implementations run their bound cascade from
	// cheapest to tightest and may stop early once the bound reaches
	// cutoff; every returned value must still be a valid lower bound.
	LowerBound(x, y []float64, cx, cy BoundContext, cutoff float64) float64
}

// SelfMatrixer is an optional bulk fast path: measures backed by an
// all-pairs engine (batched spectra, pooled scratch, tiled parallel fill)
// implement it, and the evaluation layer hands the whole square
// self-dissimilarity matrix to the engine instead of looping over pairs.
// The contract is bitwise: rows[i][j] must hold exactly the value the
// per-pair path (PreparedDistance over Prepare states, or Distance) would
// produce, before NaN sanitization — the caller sanitizes. A false return
// means the engine declined (e.g. ragged input) and the caller must fall
// back; rows content is then unspecified and will be overwritten.
type SelfMatrixer interface {
	Measure
	// SelfMatrix fills rows (len(series) square) with all raw pairwise
	// distances over series, returning false to decline.
	SelfMatrix(series [][]float64, rows [][]float64) bool
}

// ContextSelfMatrixer is SelfMatrixer with cooperative cancellation: the
// engine observes ctx at its dispatch-chunk granularity and returns
// ctx.Err() with rows partially filled (the caller must discard them).
// The declined/accepted contract and the bitwise requirement on success
// match SelfMatrix exactly.
type ContextSelfMatrixer interface {
	SelfMatrixer
	// SelfMatrixCtx is SelfMatrix honoring ctx; on a non-nil error the
	// accepted return is meaningless and rows are partial.
	SelfMatrixCtx(ctx context.Context, series [][]float64, rows [][]float64) (bool, error)
}

// PanelEvaluator is an optional batched fast path for lock-step measures:
// the search and evaluation layers hand one query and a whole panel of
// candidate series to the engine in a single call, letting it fuse
// per-candidate accumulators, hoist bounds checks, and unroll across
// candidates. The contract is bitwise, mirroring SelfMatrixer: on success
// out[k] must hold exactly the value the per-pair Distance would produce,
// before NaN sanitization — the caller sanitizes. A false return means the
// engine declined (e.g. a candidate's length differs from the query's) and
// the caller must fall back to the per-pair path; out content is then
// unspecified and will be overwritten.
type PanelEvaluator interface {
	Measure
	// PanelDistances fills out[k] = Distance(q, panel[k]) for every k in
	// [0, len(panel)), returning false to decline. len(out) must be at
	// least len(panel).
	PanelDistances(q []float64, panel [][]float64, out []float64) bool
	// PanelDistancesUpTo is PanelDistances under a shared best-so-far
	// cutoff, applying the EarlyAbandoning contract per candidate: out[k]
	// equals Distance(q, panel[k]) exactly whenever that value is < cutoff,
	// and is otherwise some v with cutoff <= v <= Distance(q, panel[k]), so
	// the caller can both reject the candidate and reuse v as a certified
	// lower bound.
	PanelDistancesUpTo(q []float64, panel [][]float64, cutoff float64, out []float64) bool
}

// PreparationSharing is an optional declaration for Stateful measures whose
// Prepare output does not depend on the measure's parameters within a
// family: SharesPreparation(other) reports that state prepared by other can
// be passed verbatim to this measure's PreparedDistance. The grid tuning
// engine (internal/search) uses it to prepare each series once for a whole
// parameter sweep instead of once per candidate.
type PreparationSharing interface {
	Stateful
	// SharesPreparation reports whether other's prepared (or grid-prepared)
	// per-series state is valid for this measure.
	SharesPreparation(other Measure) bool
}

// GridStateful extends preparation sharing to families whose full Prepare
// state is candidate-dependent but built around an expensive
// candidate-independent core (an FFT spectrum, a self cross-correlation, a
// norm). GridPrepare computes the shared core once per series;
// CandidateState cheaply specializes it into this candidate's Stateful
// prepared state (the input of PreparedDistance). The contract is bitwise:
// CandidateState(GridPrepare(x)) must yield PreparedDistance results
// identical to Prepare(x), so the grid engine stays exact.
type GridStateful interface {
	Stateful
	// SharesPreparation reports whether other's GridPrepare state is valid
	// for this measure's CandidateState.
	SharesPreparation(other Measure) bool
	// GridPrepare computes candidate-independent per-series state shared by
	// every candidate satisfying SharesPreparation.
	GridPrepare(x []float64) any
	// CandidateState specializes shared grid state into this candidate's
	// prepared state, bitwise equivalent to Prepare on the same series.
	CandidateState(shared any) any
}

// NestedBounds declares grid monotonicity: DominatedBy(other) reports that
// Distance(x, y) <= other.Distance(x, y) for every finite input pair —
// e.g. DTW under a wider Sakoe-Chiba band minimizes over a superset of
// warping paths, so a narrower band's exact distances are valid upper
// bounds for it. The grid tuning engine seeds best-so-far cutoffs for a
// candidate from a dominating candidate's completed results (warm starts);
// the declaration is advisory — the engine detects and repairs rows where
// the claimed bound turns out unachievable (possible only on non-finite
// inputs), so a too-optimistic declaration costs work, never exactness.
type NestedBounds interface {
	Measure
	// DominatedBy reports Distance(x, y) <= other.Distance(x, y) for all
	// finite x, y.
	DominatedBy(other Measure) bool
}

// BoundSharing extends LowerBounded for grid sweeps: bound contexts
// allocated for one candidate can be rebound — buffers reused, contents
// refilled — to another candidate of the same family, so a parameter sweep
// allocates envelopes once instead of once per candidate.
type BoundSharing interface {
	LowerBounded
	// SharesBounds reports whether contexts created by other's
	// NewBoundContext can be rebound to this measure.
	SharesBounds(other Measure) bool
	// RebindBoundContext adapts c (created by a SharesBounds candidate) to
	// this measure and refills it for x, reusing c's buffers. It returns c.
	RebindBoundContext(c BoundContext, x []float64) BoundContext
}

// Func adapts a plain function to the Measure interface.
type Func struct {
	name string
	fn   func(x, y []float64) float64
}

// New builds a Measure from a name and a distance function.
func New(name string, fn func(x, y []float64) float64) Func {
	return Func{name: name, fn: fn}
}

// Name implements Measure.
func (f Func) Name() string { return f.name }

// Distance implements Measure.
func (f Func) Distance(x, y []float64) float64 {
	CheckSameLength(x, y)
	return f.fn(x, y)
}

// CheckSameLength panics when the two series differ in length; every
// lock-step, elastic, and kernel measure in this library operates on
// equal-length series (the archive preprocessing guarantees it).
func CheckSameLength(x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("measure: series length mismatch %d vs %d", len(x), len(y)))
	}
}

// Guarded arithmetic for the probability-style measures of the Cha (2007)
// survey. The convention, matching common reference implementations, is
// that a term with a zero denominator and zero numerator contributes
// nothing, while genuinely undefined operations (log of a non-positive
// value with a positive weight) poison the total to +Inf so the evaluation
// layer can rank the pair last.

// Div returns num/den with the 0/0 := 0 convention; a zero denominator with
// a non-zero numerator yields +Inf.
func Div(num, den float64) float64 {
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return num / den
}

// XLogX returns x*log(x) with the limit convention 0*log(0) := 0; negative
// x yields +Inf (undefined for the entropy family).
func XLogX(x float64) float64 {
	if x == 0 {
		return 0
	}
	if x < 0 {
		return math.Inf(1)
	}
	return x * math.Log(x)
}

// XLogXOverY returns x*log(x/y) with 0*log(0/y) := 0; undefined
// combinations (negative values, or positive x with non-positive y) yield
// +Inf.
func XLogXOverY(x, y float64) float64 {
	if x == 0 {
		return 0
	}
	if x < 0 || y <= 0 {
		return math.Inf(1)
	}
	return x * math.Log(x/y)
}

// SafeSqrt returns sqrt(x) for non-negative x and 0 for small negative
// rounding noise; a substantially negative input yields NaN, poisoning the
// measure value as undefined.
func SafeSqrt(x float64) float64 {
	if x < 0 {
		if x > -1e-12 {
			return 0
		}
		return math.NaN()
	}
	return math.Sqrt(x)
}

// Sanitize maps NaN to +Inf so that undefined distances rank last in
// nearest-neighbor search; finite values and +Inf pass through.
func Sanitize(d float64) float64 {
	if math.IsNaN(d) {
		return math.Inf(1)
	}
	return d
}
