// Package measure defines the common interface implemented by every
// time-series distance measure in the library, small adapters for building
// measures from plain functions, and the guarded arithmetic helpers shared
// by the probability-style lock-step measures.
//
// A Measure maps two equal-length series to a dissimilarity value: smaller
// means more similar. Similarity measures (inner products, kernels,
// cross-correlations) are exposed in negated or 1-s form so that a single
// nearest-neighbor implementation serves all five categories of the paper.
package measure

import (
	"fmt"
	"math"
)

// Measure is a dissimilarity between two equal-length time series.
type Measure interface {
	// Name returns a stable identifier used in tables, registries, and
	// experiment output (e.g. "lorentzian", "dtw[d=10]").
	Name() string
	// Distance returns the dissimilarity of x and y. Implementations may
	// return +Inf (or NaN, treated as +Inf by the evaluation layer) when a
	// measure is undefined for the given inputs, e.g. entropy measures on
	// non-positive data.
	Distance(x, y []float64) float64
}

// Stateful is an optional fast path: measures that benefit from per-series
// precomputation (FFTs, norms, running statistics) implement it, and the
// evaluation layer prepares each series once per dissimilarity matrix
// instead of once per pair.
type Stateful interface {
	Measure
	// Prepare computes reusable per-series state.
	Prepare(x []float64) any
	// PreparedDistance computes the distance from two prepared states.
	PreparedDistance(px, py any) float64
}

// Symmetric is an optional marker: measures whose Distance(x, y) equals
// Distance(y, x) bitwise implement it (returning true), letting the
// evaluation layer compute only one triangle of a square dissimilarity
// matrix and the search engine share each pair distance between both
// leave-one-out rows. The contract is exact equality, not equality up to
// rounding: DP measures whose transposed recurrence combines the same
// operands with the same operations qualify, but measures that merely
// happen to be mathematically symmetric with different summation orders do
// not.
type Symmetric interface {
	Measure
	// Symmetric reports whether the measure is exactly symmetric.
	Symmetric() bool
}

// IsSymmetric reports whether m declares exact symmetry.
func IsSymmetric(m Measure) bool {
	s, ok := m.(Symmetric)
	return ok && s.Symmetric()
}

// EarlyAbandoning is an optional fast path for best-so-far-aware search:
// DistanceUpTo may stop as soon as the running accumulation proves the
// final distance cannot be below cutoff.
type EarlyAbandoning interface {
	Measure
	// DistanceUpTo returns Distance(x, y) exactly whenever that value is
	// < cutoff. Otherwise it may abandon the computation and return any
	// value v with cutoff <= v <= Distance(x, y), so the caller can both
	// reject the candidate and reuse v as a certified lower bound.
	DistanceUpTo(x, y []float64, cutoff float64) float64
}

// BoundContext is reusable per-series state backing a measure's lower
// bounds (envelopes, cached extrema, scratch deques). Contexts are not
// safe for concurrent use; the search engine keeps one per worker for
// queries and one per reference series, filled once.
type BoundContext interface {
	// Fill recomputes the context for x. Implementations must be
	// allocation-free when len(x) matches the length the context currently
	// holds buffers for, and may grow the buffers otherwise.
	Fill(x []float64)
}

// LowerBounded is an optional fast path for pruned nearest-neighbor
// search: measures that admit cheap lower bounds (LB_Kim, LB_Keogh, ...)
// expose them through a cascade evaluated against a best-so-far cutoff.
type LowerBounded interface {
	Measure
	// NewBoundContext allocates a context for series of length m.
	NewBoundContext(m int) BoundContext
	// LowerBound returns a value <= Distance(x, y), given filled contexts
	// for both series. Implementations run their bound cascade from
	// cheapest to tightest and may stop early once the bound reaches
	// cutoff; every returned value must still be a valid lower bound.
	LowerBound(x, y []float64, cx, cy BoundContext, cutoff float64) float64
}

// Func adapts a plain function to the Measure interface.
type Func struct {
	name string
	fn   func(x, y []float64) float64
}

// New builds a Measure from a name and a distance function.
func New(name string, fn func(x, y []float64) float64) Func {
	return Func{name: name, fn: fn}
}

// Name implements Measure.
func (f Func) Name() string { return f.name }

// Distance implements Measure.
func (f Func) Distance(x, y []float64) float64 {
	CheckSameLength(x, y)
	return f.fn(x, y)
}

// CheckSameLength panics when the two series differ in length; every
// lock-step, elastic, and kernel measure in this library operates on
// equal-length series (the archive preprocessing guarantees it).
func CheckSameLength(x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("measure: series length mismatch %d vs %d", len(x), len(y)))
	}
}

// Guarded arithmetic for the probability-style measures of the Cha (2007)
// survey. The convention, matching common reference implementations, is
// that a term with a zero denominator and zero numerator contributes
// nothing, while genuinely undefined operations (log of a non-positive
// value with a positive weight) poison the total to +Inf so the evaluation
// layer can rank the pair last.

// Div returns num/den with the 0/0 := 0 convention; a zero denominator with
// a non-zero numerator yields +Inf.
func Div(num, den float64) float64 {
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return num / den
}

// XLogX returns x*log(x) with the limit convention 0*log(0) := 0; negative
// x yields +Inf (undefined for the entropy family).
func XLogX(x float64) float64 {
	if x == 0 {
		return 0
	}
	if x < 0 {
		return math.Inf(1)
	}
	return x * math.Log(x)
}

// XLogXOverY returns x*log(x/y) with 0*log(0/y) := 0; undefined
// combinations (negative values, or positive x with non-positive y) yield
// +Inf.
func XLogXOverY(x, y float64) float64 {
	if x == 0 {
		return 0
	}
	if x < 0 || y <= 0 {
		return math.Inf(1)
	}
	return x * math.Log(x/y)
}

// SafeSqrt returns sqrt(x) for non-negative x and 0 for small negative
// rounding noise; a substantially negative input yields NaN, poisoning the
// measure value as undefined.
func SafeSqrt(x float64) float64 {
	if x < 0 {
		if x > -1e-12 {
			return 0
		}
		return math.NaN()
	}
	return math.Sqrt(x)
}

// Sanitize maps NaN to +Inf so that undefined distances rank last in
// nearest-neighbor search; finite values and +Inf pass through.
func Sanitize(d float64) float64 {
	if math.IsNaN(d) {
		return math.Inf(1)
	}
	return d
}
