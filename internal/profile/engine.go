package profile

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/fft"
	"repro/internal/par"
)

// DefaultBlockRows is the default number of profile rows per dispatch
// block. Each block seeds its leading row independently (one FFT scan for
// dot-product measures), so smaller blocks buy cancellation granularity
// and load balance at the price of more seeds; 64 amortizes the seed to
// well under the streamed rows it unlocks while keeping hundreds of
// blocks in flight at engine scale.
const DefaultBlockRows = 64

// Options configures an Engine.
type Options struct {
	// Measure selects the profile distance; nil means ZNormEuclidean().
	Measure Measure
	// Workers caps dispatch parallelism; 0 means par.Workers over the
	// block count. 1 pins the serial path (allocation-free warm).
	Workers int
	// BlockRows overrides DefaultBlockRows. The block layout only affects
	// scheduling, never values: every row is computed from its own
	// block-local stream, so results are bitwise identical across block
	// sizes and worker counts.
	BlockRows int
	// Anytime dispatches blocks in a deterministic shuffled order, so a
	// cancelled run's completed rows spread across the whole profile and
	// the partial result approximates the full join everywhere rather
	// than covering a prefix.
	Anytime bool
	// Progress, when non-nil, is called after every completed block (and
	// after the partial block a cancellation interrupts) with the total
	// finished row count; calls are serialized and totals are
	// non-decreasing. Callers bridge this to run-core task events.
	Progress func(doneRows, totalRows int)
}

// Result is one computed (or partially computed) profile join.
type Result struct {
	// Values[i] is the smallest distance from window i of the query
	// series to any admissible window of the target (+Inf when none —
	// every candidate excluded or non-finite), and Indices[i] the argmin
	// window offset (-1 when none). Rows a cancelled run never reached
	// keep +Inf/-1 with Done[i] false.
	Values  []float64
	Indices []int
	// Done marks rows whose Values/Indices entries are final; completed
	// rows of a cancelled run are bitwise identical to the full join's.
	Done   []bool
	Window int
	// SelfJoin records whether the join was a self-join, and Exclusion
	// the applied trivial-match exclusion radius (0 for AB-joins).
	SelfJoin  bool
	Exclusion int
	// Completed is the fraction of rows finished before return: 1 for a
	// full run, in [0, 1) after a cancellation.
	Completed float64
}

// anytimeSeed fixes the block permutation of anytime mode, keeping
// approximate runs deterministic for a given join size.
const anytimeSeed = 0x5706

// Engine computes matrix-profile joins, reusing FFT plans, window
// statistics, and per-worker scratch across calls so warm joins of the
// same shape allocate nothing. An Engine is not safe for concurrent use;
// each concurrent join needs its own.
type Engine struct {
	opts    Options
	statsA  WindowStats
	statsB  WindowStats
	planA   fft.SlidingPlan // query-series spectrum, seeds the j = 0 column
	planB   fft.SlidingPlan // target-series spectrum, seeds block leading rows
	col0    []float64
	cbuf    []complex128
	order   []int
	scratch []*workerScratch

	mu   sync.Mutex
	done int
}

type workerScratch struct {
	cross []float64
	dist  []float64
	cbuf  []complex128
}

// New returns an engine with the given options.
func New(opts Options) *Engine {
	if opts.Measure == nil {
		opts.Measure = ZNormEuclidean()
	}
	if opts.BlockRows <= 0 {
		opts.BlockRows = DefaultBlockRows
	}
	return &Engine{opts: opts}
}

// SelfJoin computes the self-join matrix profile of t at window w: for
// every window, the distance to its nearest neighbor outside the
// trivial-match exclusion zone (radius max(1, w/2)). On cancellation the
// partial Result is still returned alongside the context error.
func (e *Engine) SelfJoin(ctx context.Context, t []float64, w int) (*Result, error) {
	res := &Result{}
	err := e.SelfJoinInto(ctx, t, w, res)
	return res, err
}

// SelfJoinInto is SelfJoin writing into a caller-owned Result whose
// backing slices are reused, so warm repeated joins allocate nothing.
func (e *Engine) SelfJoinInto(ctx context.Context, t []float64, w int, res *Result) error {
	return e.join(ctx, t, t, w, true, res)
}

// ABJoin computes the AB-join profile: for every window of a, the
// distance to its nearest window of b, with no exclusion zone (a and b
// are distinct series, so no match is trivial).
func (e *Engine) ABJoin(ctx context.Context, a, b []float64, w int) (*Result, error) {
	res := &Result{}
	err := e.ABJoinInto(ctx, a, b, w, res)
	return res, err
}

// ABJoinInto is ABJoin writing into a caller-owned Result.
func (e *Engine) ABJoinInto(ctx context.Context, a, b []float64, w int, res *Result) error {
	return e.join(ctx, a, b, w, false, res)
}

// SelfJoin is the package-level convenience over a throwaway engine.
func SelfJoin(ctx context.Context, t []float64, w int, opts Options) (*Result, error) {
	return New(opts).SelfJoin(ctx, t, w)
}

// ABJoin is the package-level convenience over a throwaway engine.
func ABJoin(ctx context.Context, a, b []float64, w int, opts Options) (*Result, error) {
	return New(opts).ABJoin(ctx, a, b, w)
}

func (e *Engine) join(ctx context.Context, a, b []float64, w int, self bool, res *Result) error {
	if w < 2 {
		panic(fmt.Sprintf("profile: window %d < 2", w))
	}
	if w > len(a) || w > len(b) {
		panic(fmt.Sprintf("profile: window %d out of range for series lengths %d and %d",
			w, len(a), len(b)))
	}
	m := e.opts.Measure
	rows := len(a) - w + 1
	cols := len(b) - w + 1

	e.statsA.compute(a, w)
	sa := &e.statsA
	sb := sa
	if !self {
		e.statsB.compute(b, w)
		sb = &e.statsB
	}

	excl := 0
	if self {
		excl = w / 2
		if excl < 1 {
			excl = 1
		}
	}

	res.Values = resizeFloat(res.Values, rows)
	res.Indices = resizeInt(res.Indices, rows)
	res.Done = resizeBool(res.Done, rows)
	for i := 0; i < rows; i++ {
		res.Values[i] = math.Inf(1)
		res.Indices[i] = -1
		res.Done[i] = false
	}
	res.Window = w
	res.SelfJoin = self
	res.Exclusion = excl
	res.Completed = 0
	e.done = 0

	// FFT row seeding is only sound when every sample is finite: a single
	// NaN/Inf poisons the whole padded transform, where direct summation
	// confines it to the windows that contain it.
	fftSeed := m.DotCross() && !sa.hasNF && !sb.hasNF
	if fftSeed {
		e.planB.Reset(b, w)
		if cap(e.cbuf) < e.planB.PaddedLen() {
			e.cbuf = make([]complex128, e.planB.PaddedLen())
		}
	}

	// Column seed: cross(a_i, b_0) for every row i — the j = 0 entry the
	// in-place diagonal recurrence cannot reach. It is b's leading window
	// scanned against a, so the self-join reuses the target spectrum and
	// only AB-joins plan the query side.
	e.col0 = resizeFloat(e.col0, rows)
	switch {
	case fftSeed && self:
		e.planB.SlidingDots(b[:w], e.col0, e.cbuf)
	case fftSeed:
		e.planA.Reset(a, w)
		if cap(e.cbuf) < e.planA.PaddedLen() {
			e.cbuf = make([]complex128, e.planA.PaddedLen())
		}
		e.planA.SlidingDots(b[:w], e.col0, e.cbuf[:e.planA.PaddedLen()])
	default:
		for i := 0; i < rows; i++ {
			e.col0[i] = m.InitCross(a, b, i, 0, w)
		}
	}

	blockRows := e.opts.BlockRows
	blocks := (rows + blockRows - 1) / blockRows
	workers := e.opts.Workers
	if workers <= 0 {
		workers = par.Workers(blocks)
	}
	if workers > blocks {
		workers = blocks
	}
	for len(e.scratch) < workers {
		e.scratch = append(e.scratch, &workerScratch{})
	}
	for _, ws := range e.scratch[:workers] {
		ws.cross = resizeFloat(ws.cross, cols)
		ws.dist = resizeFloat(ws.dist, cols)
		if fftSeed {
			if cap(ws.cbuf) < e.planB.PaddedLen() {
				ws.cbuf = make([]complex128, e.planB.PaddedLen())
			}
			ws.cbuf = ws.cbuf[:e.planB.PaddedLen()]
		}
	}

	if e.opts.Anytime {
		e.order = resizeInt(e.order, blocks)
		rng := rand.New(rand.NewSource(anytimeSeed))
		for i := range e.order {
			e.order[i] = i
		}
		rng.Shuffle(blocks, func(i, j int) { e.order[i], e.order[j] = e.order[j], e.order[i] })
	}

	var err error
	if workers <= 1 {
		// Inline dispatch: same block order and per-row arithmetic as the
		// parallel path, without the worker closure, so warm single-worker
		// joins stay allocation-free.
		for bi := 0; bi < blocks; bi++ {
			if ctx != nil && ctx.Err() != nil {
				break
			}
			idx := bi
			if e.opts.Anytime {
				idx = e.order[bi]
			}
			e.runBlock(ctx, e.scratch[0], idx, a, b, w, cols, fftSeed, sa, sb, res)
		}
		if ctx != nil {
			err = ctx.Err()
		}
	} else {
		err = par.ForShardCtx(ctx, blocks, workers, func(worker, bi int) {
			if e.opts.Anytime {
				bi = e.order[bi]
			}
			e.runBlock(ctx, e.scratch[worker], bi, a, b, w, cols, fftSeed, sa, sb, res)
		})
	}

	completed := 0
	for _, d := range res.Done {
		if d {
			completed++
		}
	}
	res.Completed = float64(completed) / float64(rows)
	return err
}

// runBlock computes rows [bi*BlockRows, min(rows, (bi+1)*BlockRows)): the
// leading row seeded from scratch, every later row streamed with the O(1)
// diagonal update. Cancellation is observed between rows, so a cancelled
// block still leaves every row it finished final.
func (e *Engine) runBlock(ctx context.Context, ws *workerScratch, bi int, a, b []float64, w, cols int, fftSeed bool, sa, sb *WindowStats, res *Result) {
	m := e.opts.Measure
	rows := len(res.Values)
	r0 := bi * e.opts.BlockRows
	r1 := r0 + e.opts.BlockRows
	if r1 > rows {
		r1 = rows
	}
	rowsDone := 0
	defer func() {
		if rowsDone == 0 || e.opts.Progress == nil {
			return
		}
		e.mu.Lock()
		e.done += rowsDone
		e.opts.Progress(e.done, rows)
		e.mu.Unlock()
	}()

	if ctx != nil && ctx.Err() != nil {
		return
	}
	cross := ws.cross
	if fftSeed {
		e.planB.SlidingDots(a[r0:r0+w], cross, ws.cbuf)
	} else {
		for j := 0; j < cols; j++ {
			cross[j] = m.InitCross(a, b, r0, j, w)
		}
	}
	e.finalizeRow(r0, cross, ws.dist[:cols], sa, sb, res)
	rowsDone++

	repair := sa.hasNF || sb.hasNF
	for i := r0 + 1; i < r1; i++ {
		if ctx != nil && ctx.Err() != nil {
			return
		}
		m.UpdateRow(cross, a, b, i, w, cols)
		cross[0] = e.col0[i]
		if repair {
			e.repairRow(cross, a, b, i, w, cols, sa, sb)
		}
		e.finalizeRow(i, cross, ws.dist[:cols], sa, sb, res)
		rowsDone++
	}
}

// repairRow recomputes streamed cross terms whose O(1) recurrence passed
// through non-finite samples: a cell is suspect when its own windows or
// its diagonal predecessor's contain NaN/Inf (the recurrence subtracts
// the dropped product, so Inf-Inf leaves NaN in an otherwise clean cell).
// Direct summation restores the exact value; clean cells are untouched,
// keeping the amortized cost O(1) per cell when poison is sparse.
func (e *Engine) repairRow(cross []float64, a, b []float64, i, w, cols int, sa, sb *WindowStats) {
	m := e.opts.Measure
	if sa.poisoned(i) || sa.poisoned(i-1) {
		for j := 1; j < cols; j++ {
			cross[j] = m.InitCross(a, b, i, j, w)
		}
		return
	}
	for j := 1; j < cols; j++ {
		if sb.poisoned(j) || sb.poisoned(j-1) {
			cross[j] = m.InitCross(a, b, i, j, w)
		}
	}
}

// finalizeRow maps row i's cross terms to distances and records the row
// minimum, skipping the self-join exclusion zone and NaN distances (which
// sanitize to +Inf downstream and can never be a nearest neighbor).
func (e *Engine) finalizeRow(i int, cross, dist []float64, sa, sb *WindowStats, res *Result) {
	e.opts.Measure.DistanceRow(cross, dist, i, sa, sb)
	lo, hi := 0, -1
	if res.SelfJoin {
		lo, hi = i-res.Exclusion, i+res.Exclusion
	}
	best, bestJ := math.Inf(1), -1
	for j, d := range dist {
		if j >= lo && j <= hi {
			continue
		}
		if d < best {
			best, bestJ = d, j
		}
	}
	if bestJ >= 0 {
		res.Values[i] = best
		res.Indices[i] = bestJ
	}
	res.Done[i] = true
}
