package profile_test

import (
	"context"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/profile"
)

// tolFFT matches the oracle harness's FFT-route tolerance: the streamed
// dot products and the naive scans differ only by accumulation order.
const tolFFT = 1e-6

func approx(a, b float64) bool {
	if math.IsNaN(a) {
		a = math.Inf(1)
	}
	if math.IsNaN(b) {
		b = math.Inf(1)
	}
	if a == b {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tolFFT*scale
}

// Independent window-level references: explicit two-pass z-normalization
// and direct summation, sharing only the constancy epsilon with the
// engine (both sides must agree on which windows are flat).
func refZNorm(x, y []float64) float64 {
	w := len(x)
	zx, cx := znormWindow(x)
	zy, cy := znormWindow(y)
	if cx || cy {
		return math.Sqrt(2 * float64(w))
	}
	var s float64
	for i := range zx {
		d := zx[i] - zy[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func znormWindow(x []float64) ([]float64, bool) {
	w := float64(len(x))
	var mean, meanSq float64
	for _, v := range x {
		mean += v
		meanSq += v * v
	}
	mean /= w
	meanSq /= w
	var variance float64
	for _, v := range x {
		variance += (v - mean) * (v - mean)
	}
	variance /= w
	if !(variance > 1e-12*(meanSq+1)) { // NaN variance counts as constant-free
		if !math.IsNaN(variance) {
			return nil, true
		}
	}
	out := make([]float64, len(x))
	std := math.Sqrt(variance)
	for i, v := range x {
		out[i] = (v - mean) / std
	}
	return out, false
}

func refEuclidean(x, y []float64) float64 {
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func refPNorm(p float64) func(x, y []float64) float64 {
	return func(x, y []float64) float64 {
		var s float64
		for i := range x {
			s += math.Pow(math.Abs(x[i]-y[i]), p)
		}
		return math.Pow(s, 1/p)
	}
}

// naiveJoin is the O(rows*cols*w) sliding-scan reference with the same
// NaN-skipping argmin and exclusion-zone convention as the engine.
func naiveJoin(dist func(x, y []float64) float64, a, b []float64, w, excl int, self bool) ([]float64, []int) {
	rows := len(a) - w + 1
	cols := len(b) - w + 1
	values := make([]float64, rows)
	indices := make([]int, rows)
	for i := 0; i < rows; i++ {
		best, bestJ := math.Inf(1), -1
		for j := 0; j < cols; j++ {
			if self && j >= i-excl && j <= i+excl {
				continue
			}
			if d := dist(a[i:i+w], b[j:j+w]); d < best {
				best, bestJ = d, j
			}
		}
		values[i] = best
		indices[i] = bestJ
	}
	return values, indices
}

func randWalk(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	v := 0.0
	for i := range s {
		v += rng.NormFloat64() * 0.4
		s[i] = v
	}
	return s
}

type refMeasure struct {
	m    profile.Measure
	dist func(x, y []float64) float64
}

func refMeasures() []refMeasure {
	return []refMeasure{
		{profile.ZNormEuclidean(), refZNorm},
		{profile.Euclidean(), refEuclidean},
		{profile.PNorm(1), refPNorm(1)},
		{profile.PNorm(3), refPNorm(3)},
	}
}

func TestSelfJoinMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{64, 129} {
		series := randWalk(rng, n)
		for _, w := range []int{4, 7, 16} {
			excl := w / 2
			if excl < 1 {
				excl = 1
			}
			for _, rm := range refMeasures() {
				res, err := profile.SelfJoin(context.Background(), series, w,
					profile.Options{Measure: rm.m, BlockRows: 7})
				if err != nil {
					t.Fatalf("%s n=%d w=%d: %v", rm.m.Name(), n, w, err)
				}
				if res.Completed != 1 {
					t.Fatalf("%s n=%d w=%d: Completed = %v, want 1", rm.m.Name(), n, w, res.Completed)
				}
				want, _ := naiveJoin(rm.dist, series, series, w, excl, true)
				for i := range want {
					if !res.Done[i] {
						t.Fatalf("%s n=%d w=%d row %d: not Done after full run", rm.m.Name(), n, w, i)
					}
					if !approx(res.Values[i], want[i]) {
						t.Errorf("%s n=%d w=%d row %d: engine %v naive %v",
							rm.m.Name(), n, w, i, res.Values[i], want[i])
					}
					if j := res.Indices[i]; j >= 0 {
						if j >= i-excl && j <= i+excl {
							t.Errorf("%s n=%d w=%d row %d: neighbor %d inside exclusion zone",
								rm.m.Name(), n, w, i, j)
						}
						if d := rm.dist(series[i:i+w], series[j:j+w]); !approx(res.Values[i], d) {
							t.Errorf("%s n=%d w=%d row %d: claimed pair (i,%d) has distance %v, value %v",
								rm.m.Name(), n, w, i, j, d, res.Values[i])
						}
					} else if !math.IsInf(res.Values[i], 1) {
						t.Errorf("%s n=%d w=%d row %d: index -1 with finite value %v",
							rm.m.Name(), n, w, i, res.Values[i])
					}
				}
			}
		}
	}
}

func TestABJoinMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randWalk(rng, 80)
	b := randWalk(rng, 101)
	for _, w := range []int{5, 12} {
		for _, rm := range refMeasures() {
			res, err := profile.ABJoin(context.Background(), a, b, w,
				profile.Options{Measure: rm.m, BlockRows: 6})
			if err != nil {
				t.Fatalf("%s w=%d: %v", rm.m.Name(), w, err)
			}
			if res.Exclusion != 0 || res.SelfJoin {
				t.Fatalf("%s w=%d: AB-join reported exclusion %d selfJoin %v",
					rm.m.Name(), w, res.Exclusion, res.SelfJoin)
			}
			want, _ := naiveJoin(rm.dist, a, b, w, 0, false)
			for i := range want {
				if !approx(res.Values[i], want[i]) {
					t.Errorf("%s w=%d row %d: engine %v naive %v", rm.m.Name(), w, i, res.Values[i], want[i])
				}
			}
		}
	}
}

// TestABJoinVsSelfJoinDifferential pins the exclusion-zone semantics from
// the outside: joining a series against itself as an AB-join has no
// trivial-match suppression, so every window finds itself at distance ~0,
// while the self-join must look past the zone and find strictly larger
// neighbors on a generic random walk.
func TestABJoinVsSelfJoinDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	series := randWalk(rng, 120)
	const w = 8
	ab, err := profile.ABJoin(context.Background(), series, series, w, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	self, err := profile.SelfJoin(context.Background(), series, w, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The FFT self-dot puts corr within ~1e-12 of 1; the sqrt in the MASS
	// identity amplifies that to ~1e-5, so the "zero" bound sits above it.
	const selfMatchTol = 1e-4
	for i := range ab.Values {
		if ab.Values[i] > selfMatchTol {
			t.Errorf("AB-join row %d: self-match distance %v, want ~0", i, ab.Values[i])
		}
		if self.Values[i] <= selfMatchTol {
			t.Errorf("self-join row %d: value %v suspiciously zero despite exclusion zone",
				i, self.Values[i])
		}
	}
}

// TestExclusionZoneBoundary covers the zone geometry for even and odd
// windows on a smooth walk, where without the zone every window's nearest
// neighbor would be its immediate overlap: the engine must agree with the
// naive zoned scan at every row (the clipped zones at both series ends
// included), place every neighbor strictly outside the zone, and the
// unzoned scan must differ somewhere, proving the zone is load-bearing.
func TestExclusionZoneBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	series := randWalk(rng, 60)
	for _, w := range []int{4, 5, 6} { // excl 2, 2, 3: both parities
		excl := w / 2
		if excl < 1 {
			excl = 1
		}
		res, err := profile.SelfJoin(context.Background(), series, w,
			profile.Options{BlockRows: 5})
		if err != nil {
			t.Fatal(err)
		}
		if res.Exclusion != excl {
			t.Fatalf("w=%d: exclusion %d, want %d", w, res.Exclusion, excl)
		}
		zoned, _ := naiveJoin(refZNorm, series, series, w, excl, true)
		unzonedDiffers := false
		for i := range zoned {
			if !approx(res.Values[i], zoned[i]) {
				t.Errorf("w=%d row %d: engine %v zoned naive %v", w, i, res.Values[i], zoned[i])
			}
			if j := res.Indices[i]; j >= 0 && j >= i-excl && j <= i+excl {
				t.Errorf("w=%d row %d: neighbor %d within zone radius %d", w, i, j, excl)
			}
			// Unzoned scan on a walk finds the overlapping neighbor.
			best, bestJ := math.Inf(1), -1
			for j := 0; j+w <= len(series); j++ {
				if j == i {
					continue
				}
				if d := refZNorm(series[i:i+w], series[j:j+w]); d < best {
					best, bestJ = d, j
				}
			}
			if bestJ >= 0 && bestJ >= i-excl && bestJ <= i+excl && best < zoned[i]-tolFFT {
				unzonedDiffers = true
			}
		}
		if !unzonedDiffers {
			t.Errorf("w=%d: exclusion zone never changed a row; test series too easy", w)
		}
	}
}

// TestCancellationPartial pins the anytime contract of a cancelled run:
// the error surfaces, Completed reflects exactly the Done rows, and every
// Done row is bitwise identical to the full join (rows are computed from
// their own block streams, so partials are final, not approximate).
func TestCancellationPartial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	series := randWalk(rng, 600)
	const w = 8
	full, err := profile.SelfJoin(context.Background(), series, w,
		profile.Options{BlockRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng := profile.New(profile.Options{
		BlockRows: 4,
		Workers:   2,
		Progress: func(done, total int) {
			if done >= 40 {
				cancel()
			}
		},
	})
	res, err := eng.SelfJoin(ctx, series, w)
	if err != context.Canceled {
		t.Fatalf("cancelled join error = %v, want context.Canceled", err)
	}
	done := 0
	for i, d := range res.Done {
		if !d {
			if res.Indices[i] != -1 || !math.IsInf(res.Values[i], 1) {
				t.Fatalf("row %d not done but holds %v/%d", i, res.Values[i], res.Indices[i])
			}
			continue
		}
		done++
		if math.Float64bits(res.Values[i]) != math.Float64bits(full.Values[i]) ||
			res.Indices[i] != full.Indices[i] {
			t.Errorf("done row %d: partial %v/%d, full %v/%d",
				i, res.Values[i], res.Indices[i], full.Values[i], full.Indices[i])
		}
	}
	if done == 0 || done == len(res.Done) {
		t.Fatalf("cancelled run finished %d/%d rows; cancellation not mid-run", done, len(res.Done))
	}
	if want := float64(done) / float64(len(res.Done)); res.Completed != want {
		t.Errorf("Completed = %v, want %v (%d/%d rows)", res.Completed, want, done, len(res.Done))
	}
}

// TestAnytimeMode verifies the shuffled dispatch changes scheduling only:
// an uncancelled anytime run is bitwise identical to the in-order run,
// and a cancelled one spreads its completed rows beyond a prefix.
func TestAnytimeMode(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	series := randWalk(rng, 400)
	const w = 6
	inOrder, err := profile.SelfJoin(context.Background(), series, w,
		profile.Options{BlockRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	anytime, err := profile.SelfJoin(context.Background(), series, w,
		profile.Options{BlockRows: 8, Anytime: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range inOrder.Values {
		if math.Float64bits(inOrder.Values[i]) != math.Float64bits(anytime.Values[i]) ||
			inOrder.Indices[i] != anytime.Indices[i] {
			t.Fatalf("row %d: anytime %v/%d vs in-order %v/%d",
				i, anytime.Values[i], anytime.Indices[i], inOrder.Values[i], inOrder.Indices[i])
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng := profile.New(profile.Options{
		BlockRows: 8,
		Anytime:   true,
		Workers:   1,
		Progress: func(done, total int) {
			if done >= total/4 {
				cancel()
			}
		},
	})
	partial, err := eng.SelfJoin(ctx, series, w)
	if err != context.Canceled {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	// Shuffled block order: the done rows of a ~25% run must not form a
	// prefix of the profile.
	lastDone, firstUndone := -1, -1
	for i, d := range partial.Done {
		if d {
			lastDone = i
		} else if firstUndone == -1 {
			firstUndone = i
		}
	}
	if partial.Completed >= 0.9 {
		t.Fatalf("cancelled anytime run completed %v; cancellation ineffective", partial.Completed)
	}
	if firstUndone == -1 || lastDone < firstUndone {
		t.Errorf("anytime done rows form a prefix (lastDone %d, firstUndone %d); dispatch not shuffled",
			lastDone, firstUndone)
	}
}

func TestWorkerCountBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	series := randWalk(rng, 300)
	const w = 9
	for _, rm := range refMeasures() {
		base, err := profile.SelfJoin(context.Background(), series, w,
			profile.Options{Measure: rm.m, BlockRows: 5, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 4} {
			res, err := profile.SelfJoin(context.Background(), series, w,
				profile.Options{Measure: rm.m, BlockRows: 5, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			for i := range base.Values {
				if math.Float64bits(base.Values[i]) != math.Float64bits(res.Values[i]) ||
					base.Indices[i] != res.Indices[i] {
					t.Fatalf("%s workers=%d row %d: %v/%d vs serial %v/%d", rm.m.Name(), workers, i,
						res.Values[i], res.Indices[i], base.Values[i], base.Indices[i])
				}
			}
		}
	}
}

// TestNonFiniteRepair exercises the poison-repair path at engine level:
// NaN and Inf samples disable FFT seeding and force per-cell repair, and
// the result must still match the naive window-level scan.
func TestNonFiniteRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	series := randWalk(rng, 48)
	series[11] = math.NaN()
	series[30] = math.Inf(1)
	const w = 5
	excl := 2
	for _, rm := range refMeasures() {
		res, err := profile.SelfJoin(context.Background(), series, w,
			profile.Options{Measure: rm.m, BlockRows: 3})
		if err != nil {
			t.Fatal(err)
		}
		want, _ := naiveJoin(rm.dist, series, series, w, excl, true)
		for i := range want {
			if !approx(res.Values[i], want[i]) {
				t.Errorf("%s row %d: engine %v naive %v", rm.m.Name(), i, res.Values[i], want[i])
			}
		}
	}
}

func TestPNorm2MatchesEuclidean(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	series := randWalk(rng, 100)
	const w = 7
	p2, err := profile.SelfJoin(context.Background(), series, w,
		profile.Options{Measure: profile.PNorm(2)})
	if err != nil {
		t.Fatal(err)
	}
	eu, err := profile.SelfJoin(context.Background(), series, w,
		profile.Options{Measure: profile.Euclidean()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p2.Values {
		if !approx(p2.Values[i], eu.Values[i]) {
			t.Errorf("row %d: pnorm-2 %v euclidean %v", i, p2.Values[i], eu.Values[i])
		}
	}
}

func TestProgressMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	series := randWalk(rng, 300)
	var last atomic.Int64
	calls := 0
	rows := 0
	eng := profile.New(profile.Options{
		BlockRows: 8,
		Workers:   3,
		Progress: func(done, total int) {
			calls++
			rows = total
			if int64(done) <= last.Load() {
				t.Errorf("progress went backwards: %d after %d", done, last.Load())
			}
			last.Store(int64(done))
		},
	})
	res, err := eng.SelfJoin(context.Background(), series, 6)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 || int(last.Load()) != len(res.Values) || rows != len(res.Values) {
		t.Errorf("progress: %d calls, final %d/%d, want final %d", calls, last.Load(), rows, len(res.Values))
	}
}

// TestWarmJoinAllocFree pins the warm-path allocation contract for the
// serial engine on both seeding routes (FFT dot products and direct
// p-norm sums).
func TestWarmJoinAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	series := randWalk(rng, 256)
	const w = 16
	for _, m := range []profile.Measure{profile.ZNormEuclidean(), profile.PNorm(3)} {
		eng := profile.New(profile.Options{Measure: m, Workers: 1})
		var res profile.Result
		if err := eng.SelfJoinInto(context.Background(), series, w, &res); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(3, func() {
			if err := eng.SelfJoinInto(context.Background(), series, w, &res); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: warm SelfJoinInto allocated %.0f times, want 0", m.Name(), allocs)
		}
	}
}

func TestEnginePanics(t *testing.T) {
	series := []float64{1, 2, 3, 4, 5}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("window<2", func() {
		profile.SelfJoin(context.Background(), series, 1, profile.Options{})
	})
	mustPanic("window>n", func() {
		profile.SelfJoin(context.Background(), series, 6, profile.Options{})
	})
	mustPanic("ab window>len(b)", func() {
		profile.ABJoin(context.Background(), series, series[:3], 4, profile.Options{})
	})
	mustPanic("pnorm p<=0", func() { profile.PNorm(0) })
}
