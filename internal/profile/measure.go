// Package profile implements STOMP-style streaming matrix-profile
// computation: all-pairs subsequence similarity joins where the first row
// of window cross terms is seeded once (by FFT for dot-product measures)
// and every subsequent row advances with an O(1)-per-cell diagonal update,
// for O(n^2) total work instead of STAMP's O(n^2 log n) one-FFT-per-row.
//
// Following Akbarinia & Villar ("Efficient Matrix Profile Computation
// Using Different Distance Functions"), the engine is generic over a small
// profile-measure interface: z-normalized Euclidean distance (the classic
// matrix profile), non-normalized Euclidean, and p-norm variants all share
// the same streaming skeleton and differ only in their cross term and
// finalization. Self-joins apply the standard w/2 trivial-match exclusion
// zone; AB-joins (query series against target series) apply none.
package profile

import (
	"fmt"
	"math"
)

// Measure is the pluggable distance of the matrix-profile engine: a
// per-window-pair cross term with an O(1) diagonal recurrence (drop the
// leading sample pair, add the trailing one) plus a finalization from the
// cross term and precomputed window moments to a distance. The engine
// streams cross terms row by row and the measure finalizes whole rows, so
// the O(n^2) inner loops pay no per-cell interface dispatch.
type Measure interface {
	Name() string

	// InitCross computes the cross term of a[i:i+w] vs b[j:j+w] by direct
	// O(w) summation. The engine uses it to seed block leading rows and
	// the j = 0 column, and to repair cells whose streamed value passed
	// through non-finite samples.
	InitCross(a, b []float64, i, j, w int) float64

	// UpdateRow advances cross in place from row i-1 to row i for columns
	// [1, cols): iterating j downward, cross[j] becomes cross[j-1] minus
	// the dropped leading term plus the new trailing term, so no second
	// buffer is needed. The j = 0 column has no diagonal predecessor and
	// is the caller's responsibility.
	UpdateRow(cross []float64, a, b []float64, i, w, cols int)

	// Distance finalizes the cross term of the single cell (i, j).
	Distance(cross float64, i, j int, sa, sb *WindowStats) float64

	// DistanceRow finalizes a whole row i of cross terms into dst (same
	// length), the batched form of Distance.
	DistanceRow(cross, dst []float64, i int, sa, sb *WindowStats)

	// DotCross reports whether the cross term is the plain sliding dot
	// product, letting the engine seed leading rows with one FFT
	// cross-correlation instead of direct summation.
	DotCross() bool
}

// WindowStats holds the precomputed per-window statistics of one series at
// a fixed window length: the running-sum moments the measures finalize
// distances from, the zero-variance flags behind the z-normalized ceiling
// convention, and non-finite prefix counts the engine uses to repair
// streamed cross terms around NaN/Inf samples.
type WindowStats struct {
	W     int
	Mean  []float64 // per-window mean
	Std   []float64 // per-window standard deviation
	SumSq []float64 // per-window sum of squares
	Const []bool    // zero-variance windows (relative-epsilon test)
	nf    []int     // prefix counts of non-finite samples, length n+1
	hasNF bool
}

// compute fills the tables for series x at window w, reusing backing
// arrays. The running-sum recurrences and the constancy predicate mirror
// subsequence.DistanceProfile, so both layers agree on which windows are
// constant.
func (s *WindowStats) compute(x []float64, w int) {
	n := len(x)
	wins := n - w + 1
	s.W = w
	s.Mean = resizeFloat(s.Mean, wins)
	s.Std = resizeFloat(s.Std, wins)
	s.SumSq = resizeFloat(s.SumSq, wins)
	s.Const = resizeBool(s.Const, wins)
	s.nf = resizeInt(s.nf, n+1)
	s.nf[0] = 0
	s.hasNF = false
	for i, v := range x {
		c := s.nf[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			c++
			s.hasNF = true
		}
		s.nf[i+1] = c
	}
	var sum, sumSq float64
	for i := 0; i < wins; i++ {
		switch {
		case i == 0 || (s.hasNF && s.poisoned(i-1)):
			// (Re)build the sums directly: the running recurrence cannot
			// recover after dropping a non-finite sample — NaN minus NaN
			// stays NaN — so every window after a poisoned one restarts.
			sum, sumSq = 0, 0
			for k := i; k < i+w; k++ {
				sum += x[k]
				sumSq += x[k] * x[k]
			}
		default:
			sum += x[i+w-1] - x[i-1]
			sumSq += x[i+w-1]*x[i+w-1] - x[i-1]*x[i-1]
		}
		mean := sum / float64(w)
		meanSq := sumSq / float64(w)
		v := meanSq - mean*mean
		if v < 0 {
			v = 0
		}
		s.Mean[i] = mean
		s.Std[i] = math.Sqrt(v)
		s.SumSq[i] = sumSq
		s.Const[i] = isConstantVar(v, meanSq)
	}
}

// poisoned reports whether window i contains a non-finite sample.
func (s *WindowStats) poisoned(i int) bool { return s.nf[i+s.W]-s.nf[i] > 0 }

// isConstantVar reports whether a window variance is zero up to the
// rounding noise of the running-sum computation, relative to the window's
// mean square (the subsequence-layer convention).
func isConstantVar(variance, meanSq float64) bool {
	return variance <= 1e-12*(meanSq+1)
}

// dotCross is the cross-term kernel shared by the dot-product measures.
type dotCross struct{}

func (dotCross) DotCross() bool { return true }

func (dotCross) InitCross(a, b []float64, i, j, w int) float64 {
	var dot float64
	for k := 0; k < w; k++ {
		dot += a[i+k] * b[j+k]
	}
	return dot
}

func (dotCross) UpdateRow(cross []float64, a, b []float64, i, w, cols int) {
	drop := a[i-1]
	add := a[i+w-1]
	for j := cols - 1; j >= 1; j-- {
		cross[j] = cross[j-1] - drop*b[j-1] + add*b[j+w-1]
	}
}

type zNormEuclidean struct{ dotCross }

// ZNormEuclidean returns the classic matrix-profile measure: z-normalized
// Euclidean distance, finalized from the sliding dot product through the
// MASS identity sqrt(2w(1-corr)) with the sqrt(2w) ceiling for
// zero-variance windows (the subsequence-layer convention).
func ZNormEuclidean() Measure { return zNormEuclidean{} }

func (zNormEuclidean) Name() string { return "znorm-euclidean" }

func (zNormEuclidean) Distance(cross float64, i, j int, sa, sb *WindowStats) float64 {
	w := float64(sa.W)
	if sa.Const[i] || sb.Const[j] {
		return math.Sqrt(2 * w)
	}
	corr := (cross - w*sa.Mean[i]*sb.Mean[j]) / (w * sa.Std[i] * sb.Std[j])
	if corr > 1 {
		corr = 1
	}
	if corr < -1 {
		corr = -1
	}
	return math.Sqrt(2 * w * (1 - corr))
}

func (zNormEuclidean) DistanceRow(cross, dst []float64, i int, sa, sb *WindowStats) {
	w := float64(sa.W)
	maxDist := math.Sqrt(2 * w)
	if sa.Const[i] {
		for j := range dst {
			dst[j] = maxDist
		}
		return
	}
	am, as := sa.Mean[i], sa.Std[i]
	for j := range dst {
		if sb.Const[j] {
			dst[j] = maxDist
			continue
		}
		corr := (cross[j] - w*am*sb.Mean[j]) / (w * as * sb.Std[j])
		if corr > 1 {
			corr = 1
		}
		if corr < -1 {
			corr = -1
		}
		dst[j] = math.Sqrt(2 * w * (1 - corr))
	}
}

type euclidean struct{ dotCross }

// Euclidean returns the non-normalized Euclidean profile measure
// (Akbarinia & Villar's first generalization): distances come from the
// same streamed dot products through
// sqrt(||a||^2 + ||b||^2 - 2 dot), clamped at zero against rounding.
func Euclidean() Measure { return euclidean{} }

func (euclidean) Name() string { return "euclidean" }

func (euclidean) Distance(cross float64, i, j int, sa, sb *WindowStats) float64 {
	d := sa.SumSq[i] + sb.SumSq[j] - 2*cross
	if d < 0 {
		d = 0
	}
	return math.Sqrt(d)
}

func (euclidean) DistanceRow(cross, dst []float64, i int, sa, sb *WindowStats) {
	ss := sa.SumSq[i]
	for j := range dst {
		d := ss + sb.SumSq[j] - 2*cross[j]
		if d < 0 {
			d = 0
		}
		dst[j] = math.Sqrt(d)
	}
}

type pNorm struct{ p float64 }

// PNorm returns the order-p Minkowski profile measure over raw windows,
// streamed through the |a-b|^p power sums directly (the Akbarinia & Villar
// p-norm recurrence): shifting both windows one step drops the leading
// term and adds the trailing one, so no dot product is involved and
// leading rows are seeded by direct summation rather than FFT.
func PNorm(p float64) Measure {
	if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
		panic(fmt.Sprintf("profile: p-norm order %v out of range", p))
	}
	return pNorm{p: p}
}

func (m pNorm) Name() string   { return fmt.Sprintf("pnorm-%g", m.p) }
func (m pNorm) DotCross() bool { return false }

func (m pNorm) pow(d float64) float64 {
	switch m.p {
	case 1:
		return math.Abs(d)
	case 2:
		return d * d
	case 3:
		a := math.Abs(d)
		return a * a * a
	default:
		return math.Pow(math.Abs(d), m.p)
	}
}

// dist is the cross-to-distance finalization: the p-th root, with small
// negative power sums (streaming cancellation noise) clamped to zero. NaN
// passes through untouched for the engine's sanitized-skip semantics.
func (m pNorm) dist(cross float64) float64 {
	if cross < 0 {
		cross = 0
	}
	switch m.p {
	case 1:
		return cross
	case 2:
		return math.Sqrt(cross)
	case 3:
		return math.Cbrt(cross)
	default:
		return math.Pow(cross, 1/m.p)
	}
}

func (m pNorm) InitCross(a, b []float64, i, j, w int) float64 {
	var s float64
	for k := 0; k < w; k++ {
		s += m.pow(a[i+k] - b[j+k])
	}
	return s
}

func (m pNorm) UpdateRow(cross []float64, a, b []float64, i, w, cols int) {
	drop := a[i-1]
	add := a[i+w-1]
	for j := cols - 1; j >= 1; j-- {
		cross[j] = cross[j-1] - m.pow(drop-b[j-1]) + m.pow(add-b[j+w-1])
	}
}

func (m pNorm) Distance(cross float64, i, j int, sa, sb *WindowStats) float64 {
	return m.dist(cross)
}

func (m pNorm) DistanceRow(cross, dst []float64, i int, sa, sb *WindowStats) {
	for j := range dst {
		dst[j] = m.dist(cross[j])
	}
}

func resizeFloat(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func resizeBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
