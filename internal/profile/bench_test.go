package profile_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/profile"
	"repro/internal/subsequence"
)

// The profile benchmarks pin the acceptance gate of the streaming engine:
// STOMP (streamed O(n^2) dot products, block-parallel) against the STAMP
// baseline (one FFT scan per row, already hoisted onto a shared plan) on
// the same n=4096 self-join. BenchmarkProfile... names are recorded in
// BENCH_profile.json by `make bench` and gated by `make bench-compare`.

const benchN = 4096
const benchW = 256

func benchSeries(n int) []float64 {
	rng := rand.New(rand.NewSource(31))
	s := make([]float64, n)
	v := 0.0
	for i := range s {
		v += rng.NormFloat64() * 0.3
		s[i] = v
	}
	return s
}

func BenchmarkProfileSTOMP(b *testing.B) {
	series := benchSeries(benchN)
	eng := profile.New(profile.Options{})
	var res profile.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.SelfJoinInto(context.Background(), series, benchW, &res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfileSTOMPSerial(b *testing.B) {
	series := benchSeries(benchN)
	eng := profile.New(profile.Options{Workers: 1})
	var res profile.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.SelfJoinInto(context.Background(), series, benchW, &res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfileSTAMP(b *testing.B) {
	series := benchSeries(benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subsequence.MatrixProfileSTAMP(series, benchW)
	}
}

func BenchmarkProfileEuclidean(b *testing.B) {
	series := benchSeries(benchN)
	eng := profile.New(profile.Options{Measure: profile.Euclidean()})
	var res profile.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.SelfJoinInto(context.Background(), series, benchW, &res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfileABJoin(b *testing.B) {
	a := benchSeries(benchN)
	tail := benchSeries(benchN / 2)
	eng := profile.New(profile.Options{})
	var res profile.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.ABJoinInto(context.Background(), a, tail, benchW, &res); err != nil {
			b.Fatal(err)
		}
	}
}
