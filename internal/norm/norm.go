// Package norm implements the 8 time-series normalization methods of
// Section 4 of the paper, applied per series as a preprocessing step before
// any distance computation, plus the pairwise adaptive-scaling transform
// exposed as a measure decorator.
package norm

import (
	"math"
	"sort"

	"repro/internal/measure"
)

// Normalizer transforms a single series; it never mutates its input.
type Normalizer interface {
	Name() string
	Normalize(x []float64) []float64
}

// nfunc adapts a function to Normalizer.
type nfunc struct {
	name string
	fn   func(x []float64) []float64
}

func (n nfunc) Name() string                    { return n.name }
func (n nfunc) Normalize(x []float64) []float64 { return n.fn(x) }

func mean(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

func minMax(x []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range x {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// ZScore transforms to zero mean and unit variance (Eq. 1); a constant
// series becomes all zeros. This is the literature's default (see M1).
func ZScore() Normalizer {
	return nfunc{"zscore", func(x []float64) []float64 {
		out := make([]float64, len(x))
		if len(x) == 0 {
			return out
		}
		mu := mean(x)
		var ss float64
		for _, v := range x {
			d := v - mu
			ss += d * d
		}
		sd := math.Sqrt(ss / float64(len(x)))
		if sd == 0 {
			return out
		}
		for i, v := range x {
			out[i] = (v - mu) / sd
		}
		return out
	}}
}

// MinMax scales values into [0, 1] (Eq. 2); a constant series becomes all
// zeros.
func MinMax() Normalizer {
	return nfunc{"minmax", func(x []float64) []float64 {
		out := make([]float64, len(x))
		if len(x) == 0 {
			return out
		}
		lo, hi := minMax(x)
		span := hi - lo
		if span == 0 {
			return out
		}
		for i, v := range x {
			out[i] = (v - lo) / span
		}
		return out
	}}
}

// MinMaxRange scales values into [a, b] (Eq. 3), the variant preferred when
// measures cannot handle zeros.
func MinMaxRange(a, b float64) Normalizer {
	name := "minmaxrange"
	return nfunc{name, func(x []float64) []float64 {
		out := make([]float64, len(x))
		if len(x) == 0 {
			return out
		}
		lo, hi := minMax(x)
		span := hi - lo
		if span == 0 {
			for i := range out {
				out[i] = a
			}
			return out
		}
		for i, v := range x {
			out[i] = a + (v-lo)*(b-a)/span
		}
		return out
	}}
}

// MeanNorm combines the z-score numerator with the MinMax denominator
// (Eq. 4).
func MeanNorm() Normalizer {
	return nfunc{"meannorm", func(x []float64) []float64 {
		out := make([]float64, len(x))
		if len(x) == 0 {
			return out
		}
		mu := mean(x)
		lo, hi := minMax(x)
		span := hi - lo
		if span == 0 {
			return out
		}
		for i, v := range x {
			out[i] = (v - mu) / span
		}
		return out
	}}
}

// MedianNorm divides each point by the series median (Eq. 5); a zero median
// leaves the series unchanged (the numerical issue the paper notes).
func MedianNorm() Normalizer {
	return nfunc{"mediannorm", func(x []float64) []float64 {
		out := make([]float64, len(x))
		if len(x) == 0 {
			return out
		}
		med := median(x)
		if med == 0 {
			copy(out, x)
			return out
		}
		for i, v := range x {
			out[i] = v / med
		}
		return out
	}}
}

func median(x []float64) float64 {
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// UnitLength scales the series to unit Euclidean norm (Eq. 6); a zero
// series is left as zeros.
func UnitLength() Normalizer {
	return nfunc{"unitlength", func(x []float64) []float64 {
		out := make([]float64, len(x))
		var ss float64
		for _, v := range x {
			ss += v * v
		}
		nrm := math.Sqrt(ss)
		if nrm == 0 {
			return out
		}
		for i, v := range x {
			out[i] = v / nrm
		}
		return out
	}}
}

// Logistic applies the sigmoid activation 1/(1+e^-x) point-wise (Eq. 8).
func Logistic() Normalizer {
	return nfunc{"logistic", func(x []float64) []float64 {
		out := make([]float64, len(x))
		for i, v := range x {
			out[i] = 1 / (1 + math.Exp(-v))
		}
		return out
	}}
}

// Tanh applies the hyperbolic tangent activation point-wise (Eq. 9).
func Tanh() Normalizer {
	return nfunc{"tanh", func(x []float64) []float64 {
		out := make([]float64, len(x))
		for i, v := range x {
			out[i] = math.Tanh(v)
		}
		return out
	}}
}

// All returns the 8 per-series normalization methods of Section 4, with
// MinMaxRange instantiated to the commonly used [1, 2] range so that the
// zero-sensitive measures remain well defined.
func All() []Normalizer {
	return []Normalizer{
		ZScore(), MinMax(), MinMaxRange(1, 2), MeanNorm(),
		MedianNorm(), UnitLength(), Logistic(), Tanh(),
	}
}

// ByName returns the normalizer with the given name from All, or nil.
func ByName(name string) Normalizer {
	for _, n := range All() {
		if n.Name() == name {
			return n
		}
	}
	return nil
}

// AdaptiveScaling wraps a measure so that before each comparison the second
// series is rescaled by the least-squares optimal factor
// a = <x, y> / <y, y>, minimizing ||x - a*y|| (Eq. 7's pairwise scaling;
// the paper writes the denominator as <x, x>, but the least-squares factor
// is the standard form of the cited optimal-scaling work and is what makes
// ED(x, a*y) minimal). The decorated measure is evaluated on (x, a*y).
func AdaptiveScaling(m measure.Measure) measure.Measure {
	return measure.New(m.Name()+"+adaptive", func(x, y []float64) float64 {
		var xy, yy float64
		for i := range x {
			xy += x[i] * y[i]
			yy += y[i] * y[i]
		}
		scaled := make([]float64, len(y))
		a := 1.0
		if yy != 0 {
			a = xy / yy
		}
		for i, v := range y {
			scaled[i] = a * v
		}
		return m.Distance(x, scaled)
	})
}

// AdaptiveName is the registry identifier for the pairwise adaptive-scaling
// "normalization" of Table 3 (implemented as a measure decorator).
const AdaptiveName = "adaptive"
