package norm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lockstep"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-10 }

func TestZScoreProperties(t *testing.T) {
	z := ZScore()
	out := z.Normalize([]float64{2, 4, 6, 8})
	var mean, ss float64
	for _, v := range out {
		mean += v
	}
	mean /= float64(len(out))
	for _, v := range out {
		ss += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(ss / float64(len(out)))
	if !almostEq(mean, 0) || !almostEq(sd, 1) {
		t.Fatalf("zscore mean=%g sd=%g", mean, sd)
	}
}

func TestZScoreConstantAndEmpty(t *testing.T) {
	z := ZScore()
	for _, v := range z.Normalize([]float64{5, 5, 5}) {
		if v != 0 {
			t.Fatal("constant should be zeros")
		}
	}
	if len(z.Normalize(nil)) != 0 {
		t.Fatal("empty should stay empty")
	}
}

func TestZScoreInvariantToLinearTransform(t *testing.T) {
	// z-score must remove scale and translation: z(a*x+b) == z(x) for a > 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		a := 0.5 + rng.Float64()*5
		b := rng.NormFloat64() * 10
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = a*x[i] + b
		}
		zx := ZScore().Normalize(x)
		zy := ZScore().Normalize(y)
		for i := range zx {
			if math.Abs(zx[i]-zy[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMinMaxRange01(t *testing.T) {
	out := MinMax().Normalize([]float64{10, 20, 15})
	if !almostEq(out[0], 0) || !almostEq(out[1], 1) || !almostEq(out[2], 0.5) {
		t.Fatalf("minmax = %v", out)
	}
}

func TestMinMaxRangeAB(t *testing.T) {
	out := MinMaxRange(1, 2).Normalize([]float64{0, 10})
	if !almostEq(out[0], 1) || !almostEq(out[1], 2) {
		t.Fatalf("minmaxrange = %v", out)
	}
	// Constant series maps to a.
	out = MinMaxRange(1, 2).Normalize([]float64{7, 7})
	if out[0] != 1 || out[1] != 1 {
		t.Fatalf("constant minmaxrange = %v", out)
	}
}

func TestMinMaxBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 100
		}
		out := MinMax().Normalize(x)
		for _, v := range out {
			if v < -1e-12 || v > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMeanNorm(t *testing.T) {
	out := MeanNorm().Normalize([]float64{0, 10})
	// mean=5, span=10 -> [-0.5, 0.5]
	if !almostEq(out[0], -0.5) || !almostEq(out[1], 0.5) {
		t.Fatalf("meannorm = %v", out)
	}
}

func TestMedianNorm(t *testing.T) {
	out := MedianNorm().Normalize([]float64{2, 4, 6})
	if !almostEq(out[0], 0.5) || !almostEq(out[1], 1) || !almostEq(out[2], 1.5) {
		t.Fatalf("mediannorm = %v", out)
	}
	// Even length: median of {1,3} is 2.
	out = MedianNorm().Normalize([]float64{1, 3})
	if !almostEq(out[0], 0.5) || !almostEq(out[1], 1.5) {
		t.Fatalf("even mediannorm = %v", out)
	}
	// Zero median leaves series unchanged.
	out = MedianNorm().Normalize([]float64{-1, 0, 1})
	if out[0] != -1 || out[2] != 1 {
		t.Fatalf("zero-median mediannorm = %v", out)
	}
}

func TestUnitLength(t *testing.T) {
	out := UnitLength().Normalize([]float64{3, 4})
	if !almostEq(out[0], 0.6) || !almostEq(out[1], 0.8) {
		t.Fatalf("unitlength = %v", out)
	}
	var nrm float64
	for _, v := range out {
		nrm += v * v
	}
	if !almostEq(nrm, 1) {
		t.Fatalf("norm = %g", nrm)
	}
	// Zero series stays zero.
	out = UnitLength().Normalize([]float64{0, 0})
	if out[0] != 0 || out[1] != 0 {
		t.Fatal("zero series should stay zero")
	}
}

func TestLogistic(t *testing.T) {
	out := Logistic().Normalize([]float64{0, 100, -100})
	if !almostEq(out[0], 0.5) {
		t.Fatalf("logistic(0) = %g", out[0])
	}
	if out[1] < 0.999 || out[2] > 0.001 {
		t.Fatalf("logistic saturation wrong: %v", out)
	}
}

func TestTanh(t *testing.T) {
	out := Tanh().Normalize([]float64{0, 100, -100})
	if !almostEq(out[0], 0) || !almostEq(out[1], 1) || !almostEq(out[2], -1) {
		t.Fatalf("tanh = %v", out)
	}
}

func TestNormalizersDoNotMutateInput(t *testing.T) {
	for _, n := range All() {
		x := []float64{3, 1, 4, 1, 5}
		orig := append([]float64(nil), x...)
		n.Normalize(x)
		for i := range x {
			if x[i] != orig[i] {
				t.Errorf("%s mutates its input", n.Name())
			}
		}
	}
}

func TestAllNamesUniqueAndResolvable(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("All() has %d normalizers, want 8", len(all))
	}
	seen := map[string]bool{}
	for _, n := range all {
		if seen[n.Name()] {
			t.Errorf("duplicate name %s", n.Name())
		}
		seen[n.Name()] = true
		if ByName(n.Name()) == nil {
			t.Errorf("ByName(%s) = nil", n.Name())
		}
	}
	if ByName("doesnotexist") != nil {
		t.Error("ByName of unknown should be nil")
	}
}

func TestAdaptiveScalingRemovesScale(t *testing.T) {
	// ED(x, a*x) under adaptive scaling must be ~0 for any a != 0.
	m := AdaptiveScaling(lockstep.Euclidean())
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 3.7 * x[i]
	}
	if d := m.Distance(x, y); d > 1e-9 {
		t.Fatalf("adaptive ED(x, 3.7x) = %g, want ~0", d)
	}
	if m.Name() != "euclidean+adaptive" {
		t.Fatalf("name = %s", m.Name())
	}
}

func TestAdaptiveScalingZeroSeries(t *testing.T) {
	m := AdaptiveScaling(lockstep.Euclidean())
	x := []float64{1, 2, 3}
	zero := []float64{0, 0, 0}
	if d := m.Distance(x, zero); math.IsNaN(d) {
		t.Fatal("adaptive scaling must handle zero series")
	}
}

func TestAdaptiveScalingMatchesASDOrdering(t *testing.T) {
	// ASD is ED with internal adaptive scaling; the decorator around ED
	// must produce identical values.
	dec := AdaptiveScaling(lockstep.Euclidean())
	asd := lockstep.ASD()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, 30)
		y := make([]float64, 30)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		if math.Abs(dec.Distance(x, y)-asd.Distance(x, y)) > 1e-9 {
			t.Fatalf("decorator %g != ASD %g", dec.Distance(x, y), asd.Distance(x, y))
		}
	}
}
