// Package kshape implements the k-Shape clustering algorithm (Paparrizos &
// Gravano, SIGMOD 2015), the state-of-the-art time-series clustering method
// built on the cross-correlation distance (SBD/NCCc) that Section 6 of the
// paper credits for renewing interest in sliding measures.
//
// k-Shape alternates an assignment step (each series joins the cluster
// whose centroid is nearest under SBD) with a refinement step (shape
// extraction: each centroid becomes the dominant eigenvector of the
// Rayleigh-quotient matrix of its SBD-aligned members). Both steps are
// deterministic given the seed.
package kshape

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/fft"
)

// Config controls a k-Shape run.
type Config struct {
	K        int   // number of clusters (required, >= 1)
	MaxIter  int   // maximum refinement iterations (default 100)
	Seed     int64 // initial assignment seed
	PowerIts int   // power-iteration steps for shape extraction (default 100)
}

// Result holds a clustering: per-series labels (0-based cluster ids), the
// extracted centroids, and the number of iterations until convergence.
type Result struct {
	Labels    []int
	Centroids [][]float64
	Iters     int
}

// sbdBest scores a full cross-correlation sequence: the SBD distance
// 1 - max normalized correlation, and the corresponding shift of y
// relative to x (positive: move y right).
func sbdBest(cc []float64, m int, den float64) (dist float64, shift int) {
	bestIdx, best := m-1, math.Inf(-1)
	for k, v := range cc {
		s := v
		if den != 0 {
			s = v / den
		}
		if s > best {
			best, bestIdx = s, k
		}
	}
	if den == 0 {
		best = 0
	}
	return 1 - best, bestIdx - (m - 1)
}

// alignShift returns y shifted by the given lag into a length-m buffer,
// zero-padded.
func alignShift(y []float64, shift, m int) []float64 {
	aligned := make([]float64, m)
	for i := range y {
		j := i + shift
		if j >= 0 && j < m {
			aligned[j] = y[i]
		}
	}
	return aligned
}

// sbdShift returns the SBD distance between x and y along with the
// y-aligned-to-x version of y (shifted by the optimal cross-correlation
// lag, zero-padded). One-shot form; loops that keep one side fixed plan
// it once instead (see Run, extractShape, Inertia).
func sbdShift(x, y []float64) (dist float64, aligned []float64) {
	m := len(x)
	cc := fft.CrossCorrelation(x, y)
	den := norm2(x) * norm2(y)
	dist, shift := sbdBest(cc, m, den)
	return dist, alignShift(y, shift, m)
}

// sbdPlanned is the SBD distance between two planned series, skipping the
// alignment output the assignment loop discards. The planned
// cross-correlation is bitwise identical to the one-shot route, so
// assignments are unchanged; what it saves is the forward transform both
// sides used to pay on every pairing.
func sbdPlanned(px, py *fft.Plan, denX, denY float64, cc []float64, buf []complex128) float64 {
	cc = px.CrossCorrelateTo(py, cc, buf)
	d, _ := sbdBest(cc, px.Len(), denX*denY)
	return d
}

// extractShape computes the new centroid of the member series, each first
// aligned to the previous centroid: the dominant eigenvector of
// Q S Q where S = Z^T Z and Q is the centering matrix, found by power
// iteration (deterministic start).
func extractShape(members [][]float64, prev []float64, powerIts int) []float64 {
	m := len(prev)
	if len(members) == 0 {
		return append([]float64(nil), prev...)
	}
	aligned := make([][]float64, len(members))
	if isZero(prev) {
		copy(aligned, members)
	} else {
		// Plan prev once: its forward transform is shared across every
		// member alignment instead of being recomputed per pairing.
		prevPlan := fft.NewPlan(prev)
		prevNorm := norm2(prev)
		for i, y := range members {
			cc := prevPlan.CrossCorrelate(y)
			_, shift := sbdBest(cc, m, prevNorm*norm2(y))
			aligned[i] = alignShift(y, shift, m)
		}
	}
	// S = Z^T Z (m x m).
	s := make([][]float64, m)
	for i := range s {
		s[i] = make([]float64, m)
	}
	for _, z := range aligned {
		for i := 0; i < m; i++ {
			zi := z[i]
			if zi == 0 {
				continue
			}
			row := s[i]
			for j := 0; j < m; j++ {
				row[j] += zi * z[j]
			}
		}
	}
	// M = Q S Q with Q = I - ones/m, applied implicitly:
	// (Q S Q)v = Q(S(Qv)).
	center := func(v []float64) {
		var mean float64
		for _, x := range v {
			mean += x
		}
		mean /= float64(m)
		for i := range v {
			v[i] -= mean
		}
	}
	mul := func(v []float64) []float64 {
		out := make([]float64, m)
		for i := 0; i < m; i++ {
			var sum float64
			row := s[i]
			for j := 0; j < m; j++ {
				sum += row[j] * v[j]
			}
			out[i] = sum
		}
		return out
	}
	// Power iteration on v -> Q S Q v from a deterministic start.
	v := make([]float64, m)
	for i := range v {
		v[i] = math.Sin(float64(i + 1)) // fixed, non-degenerate start
	}
	if powerIts <= 0 {
		powerIts = 100
	}
	for it := 0; it < powerIts; it++ {
		center(v)
		v = mul(v)
		center(v)
		nrm := norm2(v)
		if nrm == 0 {
			return append([]float64(nil), prev...)
		}
		for i := range v {
			v[i] /= nrm
		}
	}
	// Resolve the sign ambiguity: pick the orientation closer to the
	// cluster members (smaller distance to the first member).
	flipped := make([]float64, m)
	for i := range v {
		flipped[i] = -v[i]
	}
	dPos, _ := sbdShift(dataset.ZNormalize(v), aligned[0])
	dNeg, _ := sbdShift(dataset.ZNormalize(flipped), aligned[0])
	if dNeg < dPos {
		v = flipped
	}
	return dataset.ZNormalize(v)
}

func isZero(x []float64) bool {
	for _, v := range x {
		if v != 0 {
			return false
		}
	}
	return true
}

func norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Run clusters the z-normalized series into cfg.K clusters. It panics for
// invalid configurations (K < 1, K > len(series), or empty input).
func Run(series [][]float64, cfg Config) Result {
	n := len(series)
	if n == 0 {
		panic("kshape: no series")
	}
	if cfg.K < 1 || cfg.K > n {
		panic(fmt.Sprintf("kshape: K=%d with %d series", cfg.K, n))
	}
	m := len(series[0])
	for i, s := range series {
		if len(s) != m {
			panic(fmt.Sprintf("kshape: series %d has length %d, want %d", i, len(s), m))
		}
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(cfg.K)
	}
	centroids := make([][]float64, cfg.K)
	for c := range centroids {
		centroids[c] = make([]float64, m) // zero centroid: first pass skips alignment
	}

	// Plan every series once: the assignment loop cross-correlates each
	// series against each centroid every iteration, and the series-side
	// forward transforms never change.
	seriesPlans := make([]*fft.Plan, n)
	seriesNorms := make([]float64, n)
	for i, s := range series {
		seriesPlans[i] = fft.NewPlan(s)
		seriesNorms[i] = norm2(s)
	}
	centPlans := make([]*fft.Plan, cfg.K)
	centNorms := make([]float64, cfg.K)
	var ccBuf []float64
	if m > 0 {
		ccBuf = make([]float64, 2*m-1)
	}
	fftBuf := make([]complex128, seriesPlans[0].PaddedLen())

	res := Result{Labels: labels, Centroids: centroids}
	for iter := 1; iter <= maxIter; iter++ {
		res.Iters = iter
		// Refinement: extract each cluster's shape.
		for c := 0; c < cfg.K; c++ {
			var members [][]float64
			for i, l := range labels {
				if l == c {
					members = append(members, series[i])
				}
			}
			centroids[c] = extractShape(members, centroids[c], cfg.PowerIts)
		}
		// Assignment: move each series to its nearest centroid. Centroids
		// change once per iteration, so each is planned once here rather
		// than re-transformed for every series pairing.
		for c := range centroids {
			if isZero(centroids[c]) {
				centPlans[c] = nil
				continue
			}
			centPlans[c] = fft.NewPlan(centroids[c])
			centNorms[c] = norm2(centroids[c])
		}
		changed := false
		for i := range series {
			best, bestD := labels[i], math.Inf(1)
			for c := 0; c < cfg.K; c++ {
				if centPlans[c] == nil {
					continue
				}
				d := sbdPlanned(centPlans[c], seriesPlans[i], centNorms[c], seriesNorms[i], ccBuf, fftBuf)
				if d < bestD {
					best, bestD = c, d
				}
			}
			if best != labels[i] {
				labels[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	res.Labels = labels
	res.Centroids = centroids
	return res
}

// Inertia returns the clustering objective: the sum of SBD distances from
// every series to its cluster centroid (lower is tighter).
func Inertia(series [][]float64, res Result) float64 {
	// Centroids repeat across their members, so each is planned lazily on
	// first use and its forward transform shared.
	plans := make([]*fft.Plan, len(res.Centroids))
	norms := make([]float64, len(res.Centroids))
	var sum float64
	for i, s := range series {
		l := res.Labels[i]
		c := res.Centroids[l]
		if isZero(c) {
			sum += 1 // empty cluster: maximal SBD by convention
			continue
		}
		if plans[l] == nil {
			plans[l] = fft.NewPlan(c)
			norms[l] = norm2(c)
		}
		cc := plans[l].CrossCorrelate(s)
		d, _ := sbdBest(cc, len(c), norms[l]*norm2(s))
		sum += d
	}
	return sum
}

// RunRestarts runs k-Shape from several random initializations (seeds
// cfg.Seed, cfg.Seed+1, ...) and keeps the result with the lowest inertia,
// the standard guard against bad local optima of the alternating scheme.
func RunRestarts(series [][]float64, cfg Config, restarts int) Result {
	if restarts < 1 {
		restarts = 1
	}
	var best Result
	bestInertia := math.Inf(1)
	for r := 0; r < restarts; r++ {
		c := cfg
		c.Seed = cfg.Seed + int64(r)
		res := Run(series, c)
		if in := Inertia(series, res); in < bestInertia {
			bestInertia = in
			best = res
		}
	}
	return best
}

// RandIndex computes the (unadjusted) Rand index between two labelings:
// the fraction of series pairs on which they agree (same/different
// cluster). 1 means identical partitions.
func RandIndex(a, b []int) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("kshape: label lengths %d vs %d", len(a), len(b)))
	}
	n := len(a)
	if n < 2 {
		return 1
	}
	agree := 0
	total := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			total++
			if (a[i] == a[j]) == (b[i] == b[j]) {
				agree++
			}
		}
	}
	return float64(agree) / float64(total)
}

// AdjustedRandIndex computes the chance-corrected Rand index: 1 for
// identical partitions, about 0 for independent ones.
func AdjustedRandIndex(a, b []int) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("kshape: label lengths %d vs %d", len(a), len(b)))
	}
	n := len(a)
	table := map[[2]int]float64{}
	rowSum := map[int]float64{}
	colSum := map[int]float64{}
	for i := 0; i < n; i++ {
		table[[2]int{a[i], b[i]}]++
		rowSum[a[i]]++
		colSum[b[i]]++
	}
	choose2 := func(x float64) float64 { return x * (x - 1) / 2 }
	var cells, rows, cols float64
	for _, v := range table {
		cells += choose2(v)
	}
	for _, v := range rowSum {
		rows += choose2(v)
	}
	for _, v := range colSum {
		cols += choose2(v)
	}
	total := choose2(float64(n))
	if total == 0 {
		return 1
	}
	expected := rows * cols / total
	maxIdx := (rows + cols) / 2
	if maxIdx == expected {
		return 0
	}
	return (cells - expected) / (maxIdx - expected)
}
