package kshape

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sliding"
)

// shiftedSines builds n series from k sinusoid classes, each instance
// randomly circularly shifted — the workload k-Shape is designed for.
func shiftedSines(rng *rand.Rand, n, m, k int) (series [][]float64, truth []int) {
	for i := 0; i < n; i++ {
		c := i % k
		freq := float64(c + 1)
		shift := rng.Intn(m)
		s := make([]float64, m)
		for j := range s {
			s[j] = math.Sin(2*math.Pi*freq*float64((j+shift)%m)/float64(m)) + 0.1*rng.NormFloat64()
		}
		series = append(series, dataset.ZNormalize(s))
		truth = append(truth, c)
	}
	return series, truth
}

func TestSBDShiftMatchesSlidingMeasure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 40)
	y := make([]float64, 40)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	d, aligned := sbdShift(x, y)
	want := sliding.SBD().Distance(x, y)
	if math.Abs(d-want) > 1e-9 {
		t.Fatalf("sbdShift dist %g != SBD %g", d, want)
	}
	if len(aligned) != len(y) {
		t.Fatalf("aligned length %d", len(aligned))
	}
}

func TestSBDShiftAlignsShiftedCopy(t *testing.T) {
	m := 64
	x := make([]float64, m)
	for i := 20; i < 30; i++ {
		x[i] = 1
	}
	y := make([]float64, m)
	copy(y[15:], x[:m-15]) // x shifted right by 15
	zx, zy := dataset.ZNormalize(x), dataset.ZNormalize(y)
	_, aligned := sbdShift(zx, zy)
	// After alignment the bump must be back near position 20-30.
	peak := 0
	for i := range aligned {
		if aligned[i] > aligned[peak] {
			peak = i
		}
	}
	if peak < 18 || peak > 32 {
		t.Fatalf("aligned peak at %d, want near 25", peak)
	}
}

func TestRunRecoversShiftedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	series, truth := shiftedSines(rng, 60, 64, 3)
	res := Run(series, Config{K: 3, Seed: 5})
	ari := AdjustedRandIndex(res.Labels, truth)
	if ari < 0.9 {
		t.Fatalf("k-Shape ARI = %g on shifted sinusoids, want >= 0.9", ari)
	}
	if res.Iters < 1 {
		t.Fatal("no iterations recorded")
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("centroids = %d", len(res.Centroids))
	}
}

func TestRunDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	series, _ := shiftedSines(rng, 30, 48, 2)
	a := Run(series, Config{K: 2, Seed: 7})
	b := Run(series, Config{K: 2, Seed: 7})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels not deterministic")
		}
	}
}

func TestRunSingleCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	series, _ := shiftedSines(rng, 10, 32, 2)
	res := Run(series, Config{K: 1, Seed: 1})
	for _, l := range res.Labels {
		if l != 0 {
			t.Fatal("K=1 must put everything in cluster 0")
		}
	}
}

func TestRunPanics(t *testing.T) {
	cases := []struct {
		name   string
		series [][]float64
		k      int
	}{
		{"empty", nil, 1},
		{"k too large", [][]float64{{1, 2}}, 2},
		{"k zero", [][]float64{{1, 2}}, 0},
		{"ragged", [][]float64{{1, 2}, {1}}, 1},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			Run(c.series, Config{K: c.k})
		}()
	}
}

func TestCentroidsAreZNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	series, _ := shiftedSines(rng, 24, 48, 2)
	res := Run(series, Config{K: 2, Seed: 3})
	for c, cen := range res.Centroids {
		if isZero(cen) {
			continue // an empty cluster keeps the zero centroid
		}
		var mean, ss float64
		for _, v := range cen {
			mean += v
		}
		mean /= float64(len(cen))
		for _, v := range cen {
			ss += (v - mean) * (v - mean)
		}
		sd := math.Sqrt(ss / float64(len(cen)))
		if math.Abs(mean) > 1e-9 || math.Abs(sd-1) > 1e-6 {
			t.Errorf("centroid %d: mean=%g sd=%g, want 0/1", c, mean, sd)
		}
	}
}

func TestRandIndex(t *testing.T) {
	if RandIndex([]int{0, 0, 1, 1}, []int{1, 1, 0, 0}) != 1 {
		t.Error("relabeled identical partition must score 1")
	}
	if RandIndex([]int{0, 1}, []int{0, 0}) != 0 {
		t.Error("fully disagreeing pair must score 0")
	}
	if RandIndex([]int{0}, []int{0}) != 1 {
		t.Error("single element must score 1")
	}
}

func TestAdjustedRandIndex(t *testing.T) {
	// Identical partitions -> 1.
	if got := AdjustedRandIndex([]int{0, 0, 1, 1}, []int{5, 5, 9, 9}); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical ARI = %g", got)
	}
	// Independent random labelings hover near 0.
	rng := rand.New(rand.NewSource(6))
	n := 2000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = rng.Intn(4)
		b[i] = rng.Intn(4)
	}
	if got := AdjustedRandIndex(a, b); math.Abs(got) > 0.05 {
		t.Errorf("independent ARI = %g, want ~0", got)
	}
}

func TestIndexPanicsOnLengthMismatch(t *testing.T) {
	for _, fn := range []func([]int, []int) float64{RandIndex, AdjustedRandIndex} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn([]int{1}, []int{1, 2})
		}()
	}
}

func TestExtractShapeEmptyMembersKeepsPrev(t *testing.T) {
	prev := []float64{1, 2, 3}
	got := extractShape(nil, prev, 10)
	for i := range prev {
		if got[i] != prev[i] {
			t.Fatal("empty members must keep previous centroid")
		}
	}
}

func TestInertiaNonNegativeAndTighterForTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	series, truth := shiftedSines(rng, 30, 48, 3)
	good := Run(series, Config{K: 3, Seed: 5})
	if in := Inertia(series, good); in < 0 {
		t.Fatalf("inertia %g < 0", in)
	}
	// A one-cluster solution cannot be tighter than the recovered 3-cluster
	// solution on three well-separated classes.
	one := Run(series, Config{K: 1, Seed: 5})
	if Inertia(series, one) <= Inertia(series, good) {
		t.Fatal("K=1 inertia should exceed K=3 inertia on 3-class data")
	}
	_ = truth
}

func TestRunRestartsNeverWorseThanSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	series, _ := shiftedSines(rng, 24, 48, 3)
	cfg := Config{K: 3, Seed: 11}
	single := Inertia(series, Run(series, cfg))
	multi := Inertia(series, RunRestarts(series, cfg, 5))
	if multi > single+1e-9 {
		t.Fatalf("restarts inertia %g worse than single %g", multi, single)
	}
	// Degenerate restart count behaves like a single run.
	r0 := RunRestarts(series, cfg, 0)
	r1 := Run(series, cfg)
	for i := range r0.Labels {
		if r0.Labels[i] != r1.Labels[i] {
			t.Fatal("restarts=0 must equal a single run")
		}
	}
}
