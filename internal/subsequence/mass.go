// Package subsequence implements FFT-based similarity search for
// subsequences: the MASS algorithm (Mueen's Algorithm for Similarity
// Search), which computes the z-normalized Euclidean distance between a
// query and every subsequence of a long series in O(n log n) — the
// "fastest similarity search" primitive the paper cites when discussing
// ED's role in time-series querying (Section 2, M2).
package subsequence

import (
	"fmt"
	"math"

	"repro/internal/fft"
)

// DistanceProfile returns the z-normalized Euclidean distance between the
// query q and every length-|q| subsequence of t, i.e. a slice of length
// len(t)-len(q)+1. Constant (zero-variance) subsequences or queries are
// assigned the maximum normalized distance sqrt(2*|q|) by convention.
// It panics when len(q) < 2 or len(q) > len(t).
func DistanceProfile(t, q []float64) []float64 {
	n, w := len(t), len(q)
	if w < 2 {
		panic(fmt.Sprintf("subsequence: query length %d < 2", w))
	}
	if w > n {
		panic(fmt.Sprintf("subsequence: query length %d > series length %d", w, n))
	}

	// Query statistics. Variances are compared against a relative epsilon:
	// a window of a constant signal accumulates rounding error in the
	// running sums, so an exact zero test would miss it.
	var qSum, qSumSq float64
	for _, v := range q {
		qSum += v
		qSumSq += v * v
	}
	qMean := qSum / float64(w)
	qStd := math.Sqrt(math.Max(0, qSumSq/float64(w)-qMean*qMean))
	qConst := isConstantVar(qSumSq/float64(w)-qMean*qMean, qSumSq/float64(w))

	// Sliding dot products t·q via one cross-correlation.
	cc := fft.CrossCorrelation(t, q)
	// cc index k corresponds to shift s = k-(w-1) of q against t; the dot
	// product of q with t[s:s+w] is at s >= 0.
	profiles := n - w + 1
	out := make([]float64, profiles)

	// Running statistics of every subsequence of t.
	var tSum, tSumSq float64
	for i := 0; i < w; i++ {
		tSum += t[i]
		tSumSq += t[i] * t[i]
	}
	maxDist := math.Sqrt(2 * float64(w))
	for s := 0; s < profiles; s++ {
		if s > 0 {
			tSum += t[s+w-1] - t[s-1]
			tSumSq += t[s+w-1]*t[s+w-1] - t[s-1]*t[s-1]
		}
		tMean := tSum / float64(w)
		tVar := tSumSq/float64(w) - tMean*tMean
		if tVar < 0 {
			tVar = 0
		}
		tStd := math.Sqrt(tVar)
		if qConst || isConstantVar(tVar, tSumSq/float64(w)) {
			out[s] = maxDist
			continue
		}
		dot := cc[s+w-1]
		// z-normalized ED: sqrt(2w(1 - (dot - w*mq*mt)/(w*sq*st))).
		corr := (dot - float64(w)*qMean*tMean) / (float64(w) * qStd * tStd)
		if corr > 1 {
			corr = 1
		}
		if corr < -1 {
			corr = -1
		}
		out[s] = math.Sqrt(2 * float64(w) * (1 - corr))
	}
	return out
}

// isConstantVar reports whether a window variance is zero up to the
// rounding noise of the running-sum computation, relative to the window's
// mean square meanSq.
func isConstantVar(variance, meanSq float64) bool {
	return variance <= 1e-12*(meanSq+1)
}

// Match is one search hit: the starting offset of the subsequence and its
// z-normalized Euclidean distance to the query.
type Match struct {
	Offset   int
	Distance float64
}

// TopK returns the k best non-overlapping matches of q in t (an exclusion
// zone of half the query length around each selected match suppresses
// trivial neighbors). Results are sorted by ascending distance.
func TopK(t, q []float64, k int) []Match {
	profile := DistanceProfile(t, q)
	w := len(q)
	excl := w / 2
	if excl < 1 {
		excl = 1
	}
	taken := make([]bool, len(profile))
	var out []Match
	for len(out) < k {
		best := -1
		for i, d := range profile {
			if taken[i] {
				continue
			}
			if best == -1 || d < profile[best] {
				best = i
			}
		}
		if best == -1 {
			break
		}
		out = append(out, Match{Offset: best, Distance: profile[best]})
		for i := best - excl; i <= best+excl; i++ {
			if i >= 0 && i < len(taken) {
				taken[i] = true
			}
		}
	}
	return out
}

// MatrixProfile computes the (self-join) matrix profile of t for window w:
// for every subsequence, the z-normalized ED to its nearest non-trivial
// neighbor, plus the neighbor's offset. It runs DistanceProfile once per
// subsequence (O(n^2 log n) overall — the STAMP formulation), applying an
// exclusion zone of w/2 around each query position. The matrix profile
// underpins motif discovery and anomaly detection, two of the paper's
// motivating tasks.
func MatrixProfile(t []float64, w int) (profile []float64, index []int) {
	n := len(t)
	if w < 2 || w > n {
		panic(fmt.Sprintf("subsequence: window %d out of range for series length %d", w, n))
	}
	profiles := n - w + 1
	profile = make([]float64, profiles)
	index = make([]int, profiles)
	excl := w / 2
	if excl < 1 {
		excl = 1
	}
	for i := 0; i < profiles; i++ {
		dp := DistanceProfile(t, t[i:i+w])
		best := -1
		for j, d := range dp {
			if j >= i-excl && j <= i+excl {
				continue // trivial match
			}
			if best == -1 || d < dp[best] {
				best = j
			}
		}
		if best == -1 {
			profile[i] = math.Inf(1)
			index[i] = -1
		} else {
			profile[i] = dp[best]
			index[i] = best
		}
	}
	return profile, index
}

// Motif returns the best motif pair of t for window w: the two
// subsequences with the smallest mutual z-normalized distance (the global
// minimum of the matrix profile).
func Motif(t []float64, w int) (i, j int, dist float64) {
	profile, index := MatrixProfile(t, w)
	best := 0
	for k := range profile {
		if profile[k] < profile[best] {
			best = k
		}
	}
	return best, index[best], profile[best]
}

// Discord returns the top anomaly of t for window w: the subsequence whose
// nearest neighbor is farthest (the global maximum of the matrix profile).
func Discord(t []float64, w int) (offset int, dist float64) {
	profile, _ := MatrixProfile(t, w)
	best := 0
	for k := range profile {
		if !math.IsInf(profile[k], 1) && profile[k] > profile[best] {
			best = k
		}
	}
	return best, profile[best]
}
