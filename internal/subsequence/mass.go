// Package subsequence implements FFT-based similarity search for
// subsequences: the MASS algorithm (Mueen's Algorithm for Similarity
// Search), which computes the z-normalized Euclidean distance between a
// query and every subsequence of a long series in O(n log n) — the
// "fastest similarity search" primitive the paper cites when discussing
// ED's role in time-series querying (Section 2, M2) — plus the matrix
// profile built on it. The self-join profile is computed by the STOMP
// streaming engine in internal/profile; the one-FFT-per-row STAMP
// formulation is kept as MatrixProfileSTAMP, the exact baseline the
// engine is benchmarked and cross-checked against.
package subsequence

import (
	"context"
	"fmt"
	"math"

	"repro/internal/fft"
	"repro/internal/profile"
)

// Searcher precomputes everything repeated MASS scans of one series at a
// fixed window length reuse: the padded FFT spectrum (one forward
// transform amortized over every query) and the running per-window
// statistics. DistanceProfile is one-shot; search loops that scan many
// queries against the same series (STAMP, TopK) build one Searcher so the
// per-scan cost drops to a single query transform.
type Searcher struct {
	t    []float64
	w    int
	plan *fft.SlidingPlan
	mean []float64
	std  []float64
	con  []bool
	dots []float64
	cbuf []complex128
}

// NewSearcher builds a searcher over t for queries of length w. It panics
// when w < 2 or w > len(t), like DistanceProfile.
func NewSearcher(t []float64, w int) *Searcher {
	n := len(t)
	if w < 2 {
		panic(fmt.Sprintf("subsequence: query length %d < 2", w))
	}
	if w > n {
		panic(fmt.Sprintf("subsequence: query length %d > series length %d", w, n))
	}
	s := &Searcher{t: t, w: w, plan: fft.NewSlidingPlan(t, w)}
	wins := n - w + 1
	s.mean = make([]float64, wins)
	s.std = make([]float64, wins)
	s.con = make([]bool, wins)
	s.dots = make([]float64, wins)
	s.cbuf = make([]complex128, s.plan.PaddedLen())
	// The same running-sum recurrences and constancy predicate as the
	// one-shot path, so Profile reproduces DistanceProfile bitwise.
	var tSum, tSumSq float64
	for i := 0; i < w; i++ {
		tSum += t[i]
		tSumSq += t[i] * t[i]
	}
	for i := 0; i < wins; i++ {
		if i > 0 {
			tSum += t[i+w-1] - t[i-1]
			tSumSq += t[i+w-1]*t[i+w-1] - t[i-1]*t[i-1]
		}
		tMean := tSum / float64(w)
		tVar := tSumSq/float64(w) - tMean*tMean
		if tVar < 0 {
			tVar = 0
		}
		s.mean[i] = tMean
		s.std[i] = math.Sqrt(tVar)
		s.con[i] = isConstantVar(tVar, tSumSq/float64(w))
	}
	return s
}

// Profile computes the z-normalized distance profile of query q (length
// w) against the planned series, writing into dst (reused when capacity
// allows) and returning dst[:len(t)-w+1]. Values are bitwise identical to
// DistanceProfile(t, q).
func (s *Searcher) Profile(q, dst []float64) []float64 {
	if len(q) != s.w {
		panic(fmt.Sprintf("subsequence: query length %d, searcher window %d", len(q), s.w))
	}
	w := s.w
	var qSum, qSumSq float64
	for _, v := range q {
		qSum += v
		qSumSq += v * v
	}
	qMean := qSum / float64(w)
	qStd := math.Sqrt(math.Max(0, qSumSq/float64(w)-qMean*qMean))
	qConst := isConstantVar(qSumSq/float64(w)-qMean*qMean, qSumSq/float64(w))

	dots := s.plan.SlidingDots(q, s.dots, s.cbuf)
	wins := len(dots)
	if cap(dst) < wins {
		dst = make([]float64, wins)
	}
	dst = dst[:wins]
	maxDist := math.Sqrt(2 * float64(w))
	for i := 0; i < wins; i++ {
		if qConst || s.con[i] {
			dst[i] = maxDist
			continue
		}
		// z-normalized ED: sqrt(2w(1 - (dot - w*mq*mt)/(w*sq*st))).
		corr := (dots[i] - float64(w)*qMean*s.mean[i]) / (float64(w) * qStd * s.std[i])
		if corr > 1 {
			corr = 1
		}
		if corr < -1 {
			corr = -1
		}
		dst[i] = math.Sqrt(2 * float64(w) * (1 - corr))
	}
	return dst
}

// DistanceProfile returns the z-normalized Euclidean distance between the
// query q and every length-|q| subsequence of t, i.e. a slice of length
// len(t)-len(q)+1. Constant (zero-variance) subsequences or queries are
// assigned the maximum normalized distance sqrt(2*|q|) by convention.
// It panics when len(q) < 2 or len(q) > len(t).
func DistanceProfile(t, q []float64) []float64 {
	return NewSearcher(t, len(q)).Profile(q, nil)
}

// isConstantVar reports whether a window variance is zero up to the
// rounding noise of the running-sum computation, relative to the window's
// mean square meanSq.
func isConstantVar(variance, meanSq float64) bool {
	return variance <= 1e-12*(meanSq+1)
}

// Match is one search hit: the starting offset of the subsequence and its
// z-normalized Euclidean distance to the query.
type Match struct {
	Offset   int
	Distance float64
}

// TopK returns the k best non-overlapping matches of q in t (an exclusion
// zone of half the query length around each selected match suppresses
// trivial neighbors). Results are sorted by ascending distance.
//
// Zero-variance windows — and every window when the query itself is
// constant — carry the conventional sqrt(2w) ceiling in the distance
// profile, not a real distance, so they are never reported as matches: a
// flat tail cannot pad the results with phantom hits when k exceeds the
// number of genuine matches, and the result may then hold fewer than k
// entries. Genuine windows that happen to score near the ceiling (zero
// correlation) are unaffected; exclusion is by the zero-variance flag,
// not by distance value.
func TopK(t, q []float64, k int) []Match {
	s := NewSearcher(t, len(q))
	var qSum, qSumSq float64
	for _, v := range q {
		qSum += v
		qSumSq += v * v
	}
	qMean := qSum / float64(len(q))
	if isConstantVar(qSumSq/float64(len(q))-qMean*qMean, qSumSq/float64(len(q))) {
		return nil
	}
	prof := s.Profile(q, nil)
	w := len(q)
	excl := w / 2
	if excl < 1 {
		excl = 1
	}
	taken := make([]bool, len(prof))
	var out []Match
	for len(out) < k {
		best := -1
		for i, d := range prof {
			if taken[i] || s.con[i] {
				continue
			}
			if best == -1 || d < prof[best] {
				best = i
			}
		}
		if best == -1 {
			break
		}
		out = append(out, Match{Offset: best, Distance: prof[best]})
		for i := best - excl; i <= best+excl; i++ {
			if i >= 0 && i < len(taken) {
				taken[i] = true
			}
		}
	}
	return out
}

// MatrixProfile computes the (self-join) matrix profile of t for window w:
// for every subsequence, the z-normalized ED to its nearest non-trivial
// neighbor (exclusion zone of max(1, w/2) around each position), plus the
// neighbor's offset; entries with no admissible neighbor are +Inf with
// index -1. It is a thin exact wrapper over the STOMP streaming engine in
// internal/profile (O(n^2) streamed dot products; see MatrixProfileSTAMP
// for the O(n^2 log n) per-row-FFT baseline). The matrix profile
// underpins motif discovery and anomaly detection, two of the paper's
// motivating tasks.
func MatrixProfile(t []float64, w int) (prof []float64, index []int) {
	n := len(t)
	if w < 2 || w > n {
		panic(fmt.Sprintf("subsequence: window %d out of range for series length %d", w, n))
	}
	res, _ := profile.SelfJoin(context.Background(), t, w, profile.Options{})
	return res.Values, res.Indices
}

// ABProfile computes the AB-join matrix profile: for every window of a,
// the z-normalized ED to its nearest window of b and that window's
// offset. No exclusion zone applies — the series are distinct, so no
// match is trivial. Like MatrixProfile it is a wrapper over the streaming
// engine; it panics when w < 2 or w exceeds either series length.
func ABProfile(a, b []float64, w int) (prof []float64, index []int) {
	if w < 2 || w > len(a) || w > len(b) {
		panic(fmt.Sprintf("subsequence: window %d out of range for series lengths %d and %d",
			w, len(a), len(b)))
	}
	res, _ := profile.ABJoin(context.Background(), a, b, w, profile.Options{})
	return res.Values, res.Indices
}

// MatrixProfileSTAMP computes the self-join matrix profile in the
// original STAMP formulation — one full distance profile per subsequence,
// O(n^2 log n) — kept as the exact reference baseline the streaming
// engine is benchmarked and differentially tested against. The FFT plan
// and window statistics are hoisted into one Searcher, so the loop pays
// one query transform per row instead of re-planning the series each
// time.
func MatrixProfileSTAMP(t []float64, w int) (prof []float64, index []int) {
	n := len(t)
	if w < 2 || w > n {
		panic(fmt.Sprintf("subsequence: window %d out of range for series length %d", w, n))
	}
	s := NewSearcher(t, w)
	profiles := n - w + 1
	prof = make([]float64, profiles)
	index = make([]int, profiles)
	excl := w / 2
	if excl < 1 {
		excl = 1
	}
	dp := make([]float64, profiles)
	for i := 0; i < profiles; i++ {
		dp = s.Profile(t[i:i+w], dp)
		best, bestJ := math.Inf(1), -1
		for j, d := range dp {
			if j >= i-excl && j <= i+excl {
				continue // trivial match
			}
			if d < best {
				best, bestJ = d, j
			}
		}
		if bestJ == -1 {
			prof[i] = math.Inf(1)
			index[i] = -1
		} else {
			prof[i] = best
			index[i] = bestJ
		}
	}
	return prof, index
}

// Motif returns the best motif pair of t for window w: the two
// subsequences with the smallest mutual z-normalized distance (the global
// minimum of the matrix profile). When no window has an admissible
// neighbor it returns (-1, -1, +Inf).
func Motif(t []float64, w int) (i, j int, dist float64) {
	prof, index := MatrixProfile(t, w)
	best := -1
	for k := range prof {
		if index[k] < 0 {
			continue
		}
		if best == -1 || prof[k] < prof[best] {
			best = k
		}
	}
	if best == -1 {
		return -1, -1, math.Inf(1)
	}
	return best, index[best], prof[best]
}

// Discord returns the top anomaly of t for window w: the subsequence
// whose nearest admissible neighbor is farthest (the global maximum of
// the finite matrix-profile entries). Windows with no admissible neighbor
// at all (+Inf entries: every other window inside the exclusion zone)
// carry no distance information and are never reported, so a series whose
// profile is entirely +Inf yields the (-1, +Inf) sentinel rather than a
// bogus offset-0 discord.
func Discord(t []float64, w int) (offset int, dist float64) {
	prof, _ := MatrixProfile(t, w)
	best := -1
	for k := range prof {
		if math.IsInf(prof[k], 1) {
			continue
		}
		if best == -1 || prof[k] > prof[best] {
			best = k
		}
	}
	if best == -1 {
		return -1, math.Inf(1)
	}
	return best, prof[best]
}
