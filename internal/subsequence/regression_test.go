package subsequence

import (
	"math"
	"math/rand"
	"testing"
)

// TestDiscordAllInfSentinel is the regression test for the Discord
// initialization bug: with w=10 over 14 points there are 5 windows and an
// exclusion radius of 5, so every window's zone covers the whole profile
// and all entries are +Inf. The old code initialized best=0 and only
// skipped +Inf inside the loop, returning offset 0 with distance +Inf as
// if it were a real anomaly; the fix returns the (-1, +Inf) sentinel.
func TestDiscordAllInfSentinel(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	series := make([]float64, 14)
	for i := range series {
		series[i] = rng.NormFloat64()
	}
	prof, index := MatrixProfile(series, 10)
	for i := range prof {
		if !math.IsInf(prof[i], 1) || index[i] != -1 {
			t.Fatalf("row %d: %v/%d, want +Inf/-1 (zone covers all windows)", i, prof[i], index[i])
		}
	}
	offset, dist := Discord(series, 10)
	if offset != -1 {
		t.Errorf("Discord offset = %d, want -1 sentinel", offset)
	}
	if !math.IsInf(dist, 1) {
		t.Errorf("Discord dist = %v, want +Inf", dist)
	}
	i, j, mdist := Motif(series, 10)
	if i != -1 || j != -1 || !math.IsInf(mdist, 1) {
		t.Errorf("Motif = (%d, %d, %v), want (-1, -1, +Inf)", i, j, mdist)
	}
}

// TestTopKCeilingFiltered is the regression test for TopK reporting
// constant-window sqrt(2w) ceiling entries as matches: on a series with a
// long flat tail, asking for more matches than the varying head can
// provide used to pad the result with phantom hits from the tail.
func TestTopKCeilingFiltered(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const head, tail, w = 60, 60, 10
	series := make([]float64, head+tail)
	for i := 0; i < head; i++ {
		series[i] = rng.NormFloat64()
	}
	for i := head; i < head+tail; i++ {
		series[i] = 2.5 // flat tail
	}
	q := append([]float64(nil), series[10:10+w]...)
	matches := TopK(series, q, 30)
	if len(matches) == 0 {
		t.Fatal("no matches at all")
	}
	if len(matches) >= 30 {
		t.Errorf("TopK returned %d matches; the flat tail cannot supply that many genuine hits",
			len(matches))
	}
	for _, m := range matches {
		flat := true
		for _, v := range series[m.Offset : m.Offset+w] {
			if v != series[m.Offset] {
				flat = false
				break
			}
		}
		if flat {
			t.Errorf("match at offset %d (distance %v) is a constant window", m.Offset, m.Distance)
		}
	}
}

// TestTopKConstantQuery: a zero-variance query has no genuine matches at
// all — every profile entry is the ceiling — so TopK returns nothing.
func TestTopKConstantQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	series := make([]float64, 50)
	for i := range series {
		series[i] = rng.NormFloat64()
	}
	q := []float64{3, 3, 3, 3, 3}
	if matches := TopK(series, q, 5); len(matches) != 0 {
		t.Errorf("constant query returned %d matches, want 0", len(matches))
	}
}

// TestSearcherProfileMatchesDistanceProfile pins the hoisted-plan rewrite:
// repeated Profile calls on one Searcher are bitwise identical to the
// one-shot DistanceProfile.
func TestSearcherProfileMatchesDistanceProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	series := make([]float64, 120)
	for i := range series {
		series[i] = rng.NormFloat64()
	}
	const w = 9
	s := NewSearcher(series, w)
	var dst []float64
	for trial := 0; trial < 5; trial++ {
		q := series[trial*10 : trial*10+w]
		dst = s.Profile(q, dst)
		want := DistanceProfile(series, q)
		for i := range want {
			if math.Float64bits(dst[i]) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d entry %d: searcher %v, one-shot %v", trial, i, dst[i], want[i])
			}
		}
	}
}

// TestMatrixProfileSTAMPMatchesEngine cross-checks the two formulations:
// the per-row-FFT STAMP baseline and the STOMP streaming engine agree to
// FFT tolerance, and each engine neighbor reproduces its claimed value.
func TestMatrixProfileSTAMPMatchesEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	series := make([]float64, 200)
	v := 0.0
	for i := range series {
		v += rng.NormFloat64() * 0.5
		series[i] = v
	}
	for _, w := range []int{8, 9} {
		stampP, stampI := MatrixProfileSTAMP(series, w)
		engP, engI := MatrixProfile(series, w)
		if len(stampP) != len(engP) {
			t.Fatalf("w=%d: length mismatch %d vs %d", w, len(stampP), len(engP))
		}
		for i := range stampP {
			diff := math.Abs(stampP[i] - engP[i])
			scale := math.Max(1, math.Max(math.Abs(stampP[i]), math.Abs(engP[i])))
			if diff > 1e-6*scale {
				t.Errorf("w=%d row %d: STAMP %v engine %v", w, i, stampP[i], engP[i])
			}
			excl := w / 2
			if excl < 1 {
				excl = 1
			}
			if j := engI[i]; j >= 0 && j >= i-excl && j <= i+excl {
				t.Errorf("w=%d row %d: engine neighbor %d inside zone", w, i, j)
			}
			_ = stampI
		}
	}
}

// TestABProfileSelfMatch: AB-joining a series with itself has no
// exclusion zone, so every window matches itself at (near) zero.
func TestABProfileSelfMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	series := make([]float64, 80)
	v := 0.0
	for i := range series {
		v += rng.NormFloat64()
		series[i] = v
	}
	prof, _ := ABProfile(series, series, 8)
	for i, d := range prof {
		// FFT rounding through sqrt(2w(1-corr)) leaves ~1e-5 residue on
		// exact self-matches.
		if d > 1e-4 {
			t.Errorf("row %d: self AB distance %v, want ~0", i, d)
		}
	}
}
