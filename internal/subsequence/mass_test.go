package subsequence

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

// naiveProfile is the O(n*w) reference: z-normalize every window and the
// query, then compute plain ED.
func naiveProfile(t, q []float64) []float64 {
	w := len(q)
	zq := dataset.ZNormalize(q)
	out := make([]float64, len(t)-w+1)
	for s := range out {
		zt := dataset.ZNormalize(t[s : s+w])
		var sum float64
		for i := range zq {
			d := zq[i] - zt[i]
			sum += d * d
		}
		out[s] = math.Sqrt(sum)
		// Degenerate windows: convention is max distance.
		if constant(t[s:s+w]) || constant(q) {
			out[s] = math.Sqrt(2 * float64(w))
		}
	}
	return out
}

func constant(x []float64) bool {
	for _, v := range x {
		if v != x[0] {
			return false
		}
	}
	return true
}

func TestDistanceProfileMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(100)
		w := 4 + rng.Intn(20)
		series := make([]float64, n)
		for i := range series {
			series[i] = rng.NormFloat64()
		}
		q := make([]float64, w)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		got := DistanceProfile(series, q)
		want := naiveProfile(series, q)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6*(1+want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDistanceProfileExactMatchIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	series := make([]float64, 200)
	for i := range series {
		series[i] = rng.NormFloat64()
	}
	q := append([]float64(nil), series[57:57+25]...)
	profile := DistanceProfile(series, q)
	if profile[57] > 1e-6 {
		t.Fatalf("profile at exact match = %g, want ~0", profile[57])
	}
}

func TestDistanceProfileScaleInvariance(t *testing.T) {
	// z-normalized distance ignores amplitude and offset of the query.
	rng := rand.New(rand.NewSource(2))
	series := make([]float64, 150)
	for i := range series {
		series[i] = rng.NormFloat64()
	}
	q := append([]float64(nil), series[40:40+20]...)
	scaled := make([]float64, len(q))
	for i := range q {
		scaled[i] = 3*q[i] + 7
	}
	a := DistanceProfile(series, q)
	b := DistanceProfile(series, scaled)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-6 {
			t.Fatalf("profile differs under linear transform at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestDistanceProfileConstantWindows(t *testing.T) {
	series := []float64{1, 1, 1, 1, 5, 6, 7, 8}
	q := []float64{2, 3, 4}
	profile := DistanceProfile(series, q)
	maxDist := math.Sqrt(2 * 3.0)
	if profile[0] != maxDist || profile[1] != maxDist {
		t.Fatalf("constant windows should score max distance: %v", profile[:2])
	}
	// The ramp at the end matches the query shape exactly.
	if profile[len(profile)-1] > 1e-6 {
		t.Fatalf("ramp match = %g, want ~0", profile[len(profile)-1])
	}
}

func TestDistanceProfilePanics(t *testing.T) {
	for _, c := range []struct{ n, w int }{{5, 1}, {5, 6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("n=%d w=%d: expected panic", c.n, c.w)
				}
			}()
			DistanceProfile(make([]float64, c.n), make([]float64, c.w))
		}()
	}
}

func TestTopKNonOverlapping(t *testing.T) {
	// A sine embeds the query shape many times; top-3 must not overlap.
	n := 400
	series := make([]float64, n)
	for i := range series {
		series[i] = math.Sin(2 * math.Pi * float64(i) / 50)
	}
	q := series[100:150]
	matches := TopK(series, q, 3)
	if len(matches) != 3 {
		t.Fatalf("matches = %d, want 3", len(matches))
	}
	if matches[0].Distance > 1e-6 {
		t.Fatalf("best match distance = %g", matches[0].Distance)
	}
	for i := 0; i < len(matches); i++ {
		for j := i + 1; j < len(matches); j++ {
			gap := matches[i].Offset - matches[j].Offset
			if gap < 0 {
				gap = -gap
			}
			if gap <= 25 {
				t.Fatalf("matches %d and %d overlap: offsets %d, %d",
					i, j, matches[i].Offset, matches[j].Offset)
			}
		}
	}
	// Sorted ascending by distance.
	for i := 1; i < len(matches); i++ {
		if matches[i].Distance < matches[i-1].Distance {
			t.Fatal("matches not sorted")
		}
	}
}

func TestMatrixProfileFindsPlantedMotif(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 300
	series := make([]float64, n)
	for i := range series {
		series[i] = rng.NormFloat64()
	}
	// Plant the same pattern at offsets 50 and 200.
	pattern := make([]float64, 30)
	for i := range pattern {
		pattern[i] = 2 * math.Sin(2*math.Pi*float64(i)/10)
	}
	copy(series[50:], pattern)
	copy(series[200:], pattern)
	i, j, dist := Motif(series, 30)
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo < 45 || lo > 55 || hi < 195 || hi > 205 {
		t.Fatalf("motif at (%d, %d), want near (50, 200)", i, j)
	}
	if dist > 0.5 {
		t.Fatalf("motif distance = %g, want near 0", dist)
	}
}

func TestDiscordFindsPlantedAnomaly(t *testing.T) {
	// A periodic signal with one corrupted cycle: the discord.
	n := 400
	series := make([]float64, n)
	for i := range series {
		series[i] = math.Sin(2 * math.Pi * float64(i) / 40)
	}
	for i := 190; i < 210; i++ {
		series[i] += 3 * math.Cos(float64(i)) // structured corruption
	}
	offset, dist := Discord(series, 40)
	if offset < 160 || offset > 215 {
		t.Fatalf("discord at %d, want inside the corrupted region", offset)
	}
	if dist <= 0 {
		t.Fatalf("discord distance = %g", dist)
	}
}

func TestMatrixProfileExclusionZone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	series := make([]float64, 120)
	for i := range series {
		series[i] = rng.NormFloat64()
	}
	profile, index := MatrixProfile(series, 20)
	for i := range profile {
		if index[i] == -1 {
			continue
		}
		gap := index[i] - i
		if gap < 0 {
			gap = -gap
		}
		if gap <= 10 {
			t.Fatalf("profile %d points to trivial neighbor %d", i, index[i])
		}
	}
}

func TestMatrixProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatrixProfile(make([]float64, 10), 11)
}
