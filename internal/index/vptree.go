package index

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/measure"
)

// VPTree is a vantage-point tree: an exact metric index over any distance
// measure satisfying the triangle inequality. Among the paper's elastic
// measures MSM, ERP, and TWE are metrics, so the new state-of-the-art
// measures are indexable this way even though they lack DFT-style lower
// bounds.
type VPTree struct {
	m      measure.Measure
	series [][]float64
	root   *vpNode
}

type vpNode struct {
	idx     int     // vantage point (index into series)
	radius  float64 // median distance of the inside subtree
	inside  *vpNode // points with d(vp, x) <= radius
	outside *vpNode
}

// NewVPTree builds the tree over the reference series with the given
// metric. Construction performs O(n log n) distance computations. The seed
// drives vantage-point selection.
func NewVPTree(refs [][]float64, m measure.Measure, seed int64) *VPTree {
	if len(refs) == 0 {
		panic("index: no reference series")
	}
	t := &VPTree{m: m, series: refs}
	idxs := make([]int, len(refs))
	for i := range idxs {
		idxs[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	t.root = t.build(idxs, rng)
	return t
}

func (t *VPTree) build(idxs []int, rng *rand.Rand) *vpNode {
	if len(idxs) == 0 {
		return nil
	}
	// Pick a random vantage point and move it to the front.
	p := rng.Intn(len(idxs))
	idxs[0], idxs[p] = idxs[p], idxs[0]
	node := &vpNode{idx: idxs[0]}
	rest := idxs[1:]
	if len(rest) == 0 {
		return node
	}
	type distIdx struct {
		i int
		d float64
	}
	ds := make([]distIdx, len(rest))
	vp := t.series[node.idx]
	for k, i := range rest {
		ds[k] = distIdx{i: i, d: t.m.Distance(vp, t.series[i])}
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
	mid := len(ds) / 2
	node.radius = ds[mid].d
	inside := make([]int, 0, mid+1)
	outside := make([]int, 0, len(ds)-mid)
	for _, di := range ds {
		if di.d <= node.radius {
			inside = append(inside, di.i)
		} else {
			outside = append(outside, di.i)
		}
	}
	node.inside = t.build(inside, rng)
	node.outside = t.build(outside, rng)
	return node
}

// NN returns the nearest reference to q under the tree's metric, its
// distance, and the number of exact distance computations performed.
// Exactness relies on the measure being a metric; for non-metric measures
// the result may miss the true neighbor (use a linear scan instead).
func (t *VPTree) NN(q []float64) (best int, dist float64, computed int) {
	best = -1
	dist = math.Inf(1)
	var search func(n *vpNode)
	search = func(n *vpNode) {
		if n == nil {
			return
		}
		d := t.m.Distance(q, t.series[n.idx])
		computed++
		if d < dist {
			dist = d
			best = n.idx
		}
		// Triangle-inequality pruning: the inside ball can contain a better
		// point only if d - dist <= radius; the outside region only if
		// d + dist >= radius.
		if d < n.radius {
			search(n.inside)
			if d+dist >= n.radius {
				search(n.outside)
			}
		} else {
			search(n.outside)
			if d-dist <= n.radius {
				search(n.inside)
			}
		}
	}
	search(t.root)
	return best, dist, computed
}

// Size returns the number of indexed series.
func (t *VPTree) Size() int { return len(t.series) }

// Validate checks the tree's structural invariant (every inside descendant
// within the radius, every outside descendant beyond) and returns the
// first violation; used by tests.
func (t *VPTree) Validate() error {
	var walk func(n *vpNode) error
	walk = func(n *vpNode) error {
		if n == nil {
			return nil
		}
		vp := t.series[n.idx]
		var check func(c *vpNode, inside bool) error
		check = func(c *vpNode, inside bool) error {
			if c == nil {
				return nil
			}
			d := t.m.Distance(vp, t.series[c.idx])
			if inside && d > n.radius {
				return fmt.Errorf("index: inside point %d at %g > radius %g", c.idx, d, n.radius)
			}
			if !inside && d <= n.radius {
				return fmt.Errorf("index: outside point %d at %g <= radius %g", c.idx, d, n.radius)
			}
			if err := check(c.inside, inside); err != nil {
				return err
			}
			return check(c.outside, inside)
		}
		if err := check(n.inside, true); err != nil {
			return err
		}
		if err := check(n.outside, false); err != nil {
			return err
		}
		if err := walk(n.inside); err != nil {
			return err
		}
		return walk(n.outside)
	}
	return walk(t.root)
}
