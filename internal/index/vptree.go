package index

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/measure"
	"repro/internal/par"
)

// VPTree is a vantage-point tree: an exact metric index over any distance
// measure satisfying the triangle inequality. Among the paper's elastic
// measures MSM, ERP, and TWE are metrics, so the new state-of-the-art
// measures are indexable this way even though they lack DFT-style lower
// bounds. It also indexes the Euclidean representations of the ANN layer
// (internal/ann), where k-NN over short embedding vectors selects the
// candidates an exact measure re-ranks.
//
// Non-finite distances are handled conservatively: a NaN vantage distance
// (or radius) carries no triangle-inequality information, so both subtrees
// are searched and the candidate ranks last (+Inf) — the search can lose
// pruning power on poisoned data, never the true neighbor.
type VPTree struct {
	m      measure.Measure
	series [][]float64
	root   *vpNode
}

type vpNode struct {
	idx     int     // vantage point (index into series)
	radius  float64 // median distance of the inside subtree
	inside  *vpNode // points with d(vp, x) <= radius
	outside *vpNode
}

// Neighbor is one k-NN result: a reference index and its sanitized
// distance (NaN mapped to +Inf so undefined pairs rank last).
type Neighbor struct {
	Index int
	Dist  float64
}

// Build parallelism thresholds: nodes with at least parDistMin siblings
// fan the vantage-distance fill across workers, and subtrees with at least
// parSubtreeMin members build concurrently while the goroutine budget
// lasts. Tree structure is independent of both (vantage selection is
// seeded per node, not drawn from a shared stream).
const (
	parDistMin    = 256
	parSubtreeMin = 64
)

// splitmix64 is the per-node seed mixer: each node derives its vantage
// choice and its children's seeds from its own 64-bit state, so the tree
// is identical no matter how the build is scheduled across goroutines.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewVPTree builds the tree over the reference series with the given
// metric. Construction performs O(n log n) distance computations in
// parallel. The seed drives vantage-point selection. Empty refs build an
// empty tree whose searches return no neighbors — matching the other index
// constructors' degenerate-input behavior.
func NewVPTree(refs [][]float64, m measure.Measure, seed int64) *VPTree {
	t, _ := NewVPTreeCtx(context.Background(), refs, m, seed)
	return t
}

// NewVPTreeCtx is NewVPTree honoring cancellation: the context is observed
// at every node and inside the parallel distance fills, so a cancelled
// build returns ctx.Err() promptly with the tree unusable.
func NewVPTreeCtx(ctx context.Context, refs [][]float64, m measure.Measure, seed int64) (*VPTree, error) {
	t := &VPTree{m: m, series: refs}
	if len(refs) == 0 {
		return t, nil
	}
	idxs := make([]int, len(refs))
	for i := range idxs {
		idxs[i] = i
	}
	budget := par.Workers(len(refs))
	root, err := t.build(ctx, idxs, splitmix64(uint64(seed)), budget)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

// build constructs the subtree over idxs. seed is this node's private
// vantage-selection state; budget bounds the concurrent subtree builds
// below this node. The resulting structure depends only on (idxs, seed).
func (t *VPTree) build(ctx context.Context, idxs []int, seed uint64, budget int) (*vpNode, error) {
	if len(idxs) == 0 {
		return nil, nil
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	// Pick the vantage point from the node seed and move it to the front.
	p := int(splitmix64(seed) % uint64(len(idxs)))
	idxs[0], idxs[p] = idxs[p], idxs[0]
	node := &vpNode{idx: idxs[0]}
	rest := idxs[1:]
	if len(rest) == 0 {
		return node, nil
	}
	type distIdx struct {
		i int
		d float64
	}
	ds := make([]distIdx, len(rest))
	vp := t.series[node.idx]
	if len(rest) >= parDistMin && budget > 1 {
		if err := par.ForCtx(ctx, len(rest), budget, func(k int) {
			ds[k] = distIdx{i: rest[k], d: t.m.Distance(vp, t.series[rest[k]])}
		}); err != nil {
			return nil, err
		}
	} else {
		for k, i := range rest {
			ds[k] = distIdx{i: i, d: t.m.Distance(vp, t.series[i])}
		}
	}
	// NaN distances sort last and partition outside: they carry no metric
	// information, and the search never prunes across a non-finite bound.
	sort.Slice(ds, func(a, b int) bool {
		da, db := ds[a].d, ds[b].d
		if math.IsNaN(db) {
			return !math.IsNaN(da)
		}
		if math.IsNaN(da) {
			return false
		}
		return da < db
	})
	mid := len(ds) / 2
	node.radius = ds[mid].d
	inside := make([]int, 0, mid+1)
	outside := make([]int, 0, len(ds)-mid)
	for _, di := range ds {
		if di.d <= node.radius { // NaN fails and lands outside
			inside = append(inside, di.i)
		} else {
			outside = append(outside, di.i)
		}
	}
	inSeed := splitmix64(seed ^ 0x9e3779b97f4a7c15)
	outSeed := splitmix64(seed ^ 0xc2b2ae3d27d4eb4f)
	if budget > 1 && len(inside) >= parSubtreeMin && len(outside) >= parSubtreeMin {
		var (
			wg   sync.WaitGroup
			inN  *vpNode
			inE  error
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			inN, inE = t.build(ctx, inside, inSeed, budget/2)
		}()
		outN, outE := t.build(ctx, outside, outSeed, budget-budget/2)
		wg.Wait()
		if inE != nil {
			return nil, inE
		}
		if outE != nil {
			return nil, outE
		}
		node.inside, node.outside = inN, outN
		return node, nil
	}
	var err error
	if node.inside, err = t.build(ctx, inside, inSeed, budget); err != nil {
		return nil, err
	}
	if node.outside, err = t.build(ctx, outside, outSeed, budget); err != nil {
		return nil, err
	}
	return node, nil
}

// knnHeap is a bounded max-heap over (Dist, Index): the root is the worst
// retained neighbor, evicted when a strictly better candidate arrives.
// Ties on Dist rank the higher index as worse, so the retained set — and
// therefore the search result — is independent of traversal order.
type knnHeap []Neighbor

func (h knnHeap) worse(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.Index > b.Index
}

func (h knnHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.worse(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h knnHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && h.worse(h[l], h[worst]) {
			worst = l
		}
		if r < n && h.worse(h[r], h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// offer inserts nb, evicting the root when the heap already holds k
// neighbors and nb improves on the worst of them.
func (h *knnHeap) offer(nb Neighbor, k int) {
	if len(*h) < k {
		*h = append(*h, nb)
		h.up(len(*h) - 1)
		return
	}
	if h.worse((*h)[0], nb) {
		(*h)[0] = nb
		h.down(0)
	}
}

// cutoff is the pruning radius: the worst retained distance once the heap
// holds k neighbors, +Inf before that.
func (h knnHeap) cutoff(k int) float64 {
	if len(h) == k {
		return h[0].Dist
	}
	return math.Inf(1)
}

// KNN returns the k nearest references to q under the tree's metric,
// sorted ascending by (distance, index), and the number of exact distance
// computations performed. Fewer than k neighbors are returned only when
// the tree holds fewer than k series. Exactness relies on the measure
// being a metric; pruning uses the triangle inequality and is disabled
// across any non-finite vantage distance or radius, so NaN-poisoned series
// degrade speed, not correctness (their pairs rank last, as +Inf).
func (t *VPTree) KNN(q []float64, k int) ([]Neighbor, int) {
	if k <= 0 || t.root == nil {
		return nil, 0
	}
	if k > len(t.series) {
		k = len(t.series)
	}
	h := make(knnHeap, 0, k)
	computed := 0
	var search func(n *vpNode)
	search = func(n *vpNode) {
		if n == nil {
			return
		}
		d := t.m.Distance(q, t.series[n.idx])
		computed++
		h.offer(Neighbor{Index: n.idx, Dist: measure.Sanitize(d)}, k)
		if math.IsNaN(d) || math.IsInf(d, 0) || math.IsNaN(n.radius) || math.IsInf(n.radius, 0) {
			// A non-finite vantage distance or radius proves nothing about
			// either side; descending both keeps the search exact.
			search(n.inside)
			search(n.outside)
			return
		}
		// Triangle-inequality pruning: the inside ball can contain a
		// retained-set improvement only if d - cutoff <= radius; the outside
		// region only if d + cutoff >= radius. The cutoff is re-read after
		// the first descent, which may have tightened it.
		if d < n.radius {
			search(n.inside)
			if d+h.cutoff(k) >= n.radius {
				search(n.outside)
			}
		} else {
			search(n.outside)
			if d-h.cutoff(k) <= n.radius {
				search(n.inside)
			}
		}
	}
	search(t.root)
	out := []Neighbor(h)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Index < out[b].Index
	})
	return out, computed
}

// NN returns the nearest reference to q under the tree's metric, its
// distance, and the number of exact distance computations performed, or
// (-1, +Inf, 0) on an empty tree. Ties resolve to the lowest reference
// index. Exactness relies on the measure being a metric; for non-metric
// measures the result may miss the true neighbor (use a linear scan
// instead).
func (t *VPTree) NN(q []float64) (best int, dist float64, computed int) {
	nbs, computed := t.KNN(q, 1)
	if len(nbs) == 0 {
		return -1, math.Inf(1), computed
	}
	return nbs[0].Index, nbs[0].Dist, computed
}

// Size returns the number of indexed series.
func (t *VPTree) Size() int { return len(t.series) }

// Validate checks the tree's structural invariant (every inside descendant
// within the radius, every outside descendant beyond) and returns the
// first violation; used by tests. Non-finite distances are exempt: they
// partition outside by construction and prove nothing either way.
func (t *VPTree) Validate() error {
	var walk func(n *vpNode) error
	walk = func(n *vpNode) error {
		if n == nil {
			return nil
		}
		vp := t.series[n.idx]
		var check func(c *vpNode, inside bool) error
		check = func(c *vpNode, inside bool) error {
			if c == nil {
				return nil
			}
			d := t.m.Distance(vp, t.series[c.idx])
			if inside && d > n.radius {
				return fmt.Errorf("index: inside point %d at %g > radius %g", c.idx, d, n.radius)
			}
			if !inside && d <= n.radius {
				return fmt.Errorf("index: outside point %d at %g <= radius %g", c.idx, d, n.radius)
			}
			if err := check(c.inside, inside); err != nil {
				return err
			}
			return check(c.outside, inside)
		}
		if err := check(n.inside, true); err != nil {
			return err
		}
		if err := check(n.outside, false); err != nil {
			return err
		}
		if err := walk(n.inside); err != nil {
			return err
		}
		return walk(n.outside)
	}
	return walk(t.root)
}
