// Package index implements similarity-search indexing for time series: the
// PAA (piecewise aggregate approximation) lower bound with a GEMINI-style
// filter-and-refine scan for Euclidean search, and a vantage-point tree
// that exactly indexes any metric distance measure — including MSM and
// ERP, the metrics among the paper's elastic measures. M2 of the paper
// attributes ED's dominance partly to its indexing support; this package
// demonstrates that the measures the paper promotes are indexable too.
package index

import (
	"fmt"
	"math"
	"sort"
)

// PAA computes the piecewise aggregate approximation of x with the given
// number of segments: each coefficient is the mean of its (possibly
// fractional) segment. It panics for segments < 1 or an empty series.
func PAA(x []float64, segments int) []float64 {
	m := len(x)
	if segments < 1 {
		panic(fmt.Sprintf("index: PAA segments %d < 1", segments))
	}
	if m == 0 {
		panic("index: PAA of empty series")
	}
	if segments > m {
		segments = m
	}
	out := make([]float64, segments)
	if m%segments == 0 {
		// Fast path: equal integer segments.
		w := m / segments
		for s := 0; s < segments; s++ {
			var sum float64
			for i := s * w; i < (s+1)*w; i++ {
				sum += x[i]
			}
			out[s] = sum / float64(w)
		}
		return out
	}
	// General path: distribute points proportionally (each point i
	// contributes to segment i*segments/m).
	counts := make([]float64, segments)
	for i, v := range x {
		s := i * segments / m
		out[s] += v
		counts[s]++
	}
	for s := range out {
		out[s] /= counts[s]
	}
	return out
}

// LBPAA returns the PAA lower bound of the Euclidean distance between two
// series given their PAA coefficients and the original length m. Each
// coefficient difference is weighted by its segment's exact point count:
// Cauchy-Schwarz gives sum_{i in seg}(x_i-y_i)^2 >= n_seg*(a_seg-b_seg)^2
// per segment, so sqrt(sum n_seg*(a_seg-b_seg)^2) <= ED. When m divides
// evenly this is the classic sqrt(m/s * sum (a_i-b_i)^2); with ragged
// segments the uniform m/s weight would overestimate the short segments'
// contribution and break the bound. It panics on length mismatch.
func LBPAA(a, b []float64, m int) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("index: PAA length mismatch %d vs %d", len(a), len(b)))
	}
	s := len(a)
	if m%s == 0 {
		var sum float64
		for i := range a {
			d := a[i] - b[i]
			sum += d * d
		}
		return math.Sqrt(float64(m) / float64(s) * sum)
	}
	// Segment seg holds the points i with i*s/m == seg, i.e. the integers
	// in [seg*m/s, (seg+1)*m/s) — mirroring PAA's general path exactly.
	var sum float64
	for seg := range a {
		d := a[seg] - b[seg]
		lo := (seg*m + s - 1) / s
		hi := ((seg+1)*m + s - 1) / s
		sum += float64(hi-lo) * d * d
	}
	return math.Sqrt(sum)
}

// EDIndex is a GEMINI-style filter-and-refine index for Euclidean
// 1-NN search: candidates are ordered by their PAA lower bound and
// verified with the exact (early-abandoning) distance until the next lower
// bound exceeds the best exact distance found.
type EDIndex struct {
	series   [][]float64
	paa      [][]float64
	segments int
	m        int
}

// NewEDIndex builds the index over the reference series (all of equal
// length) with the given PAA resolution. Empty refs build an empty index
// whose searches return (-1, +Inf) — matching the other index
// constructors' degenerate-input behavior.
func NewEDIndex(refs [][]float64, segments int) *EDIndex {
	if len(refs) == 0 {
		return &EDIndex{segments: segments}
	}
	m := len(refs[0])
	idx := &EDIndex{series: refs, segments: segments, m: m}
	idx.paa = make([][]float64, len(refs))
	for i, r := range refs {
		if len(r) != m {
			panic(fmt.Sprintf("index: series %d has length %d, want %d", i, len(r), m))
		}
		idx.paa[i] = PAA(r, segments)
	}
	return idx
}

// NewEDIndexWithPAA builds the index reusing precomputed PAA words (e.g.
// from a corpus snapshot) instead of recomputing them. The words must be
// exactly PAA(refs[i], segments) for every i — only shape is validated
// here; a mismatched word silently corrupts the lower bound.
func NewEDIndexWithPAA(refs [][]float64, paa [][]float64, segments int) *EDIndex {
	if len(refs) == 0 {
		return &EDIndex{segments: segments}
	}
	if len(paa) != len(refs) {
		panic(fmt.Sprintf("index: %d PAA words for %d series", len(paa), len(refs)))
	}
	m := len(refs[0])
	idx := &EDIndex{series: refs, paa: paa, segments: segments, m: m}
	for i, r := range refs {
		if len(r) != m {
			panic(fmt.Sprintf("index: series %d has length %d, want %d", i, len(r), m))
		}
		if len(paa[i]) != segments {
			panic(fmt.Sprintf("index: PAA word %d has %d segments, want %d", i, len(paa[i]), segments))
		}
	}
	return idx
}

// Stats reports the work done by one search.
type Stats struct {
	Exact  int // exact distance computations performed
	Pruned int // candidates rejected by the lower bound alone
}

// NN returns the index and Euclidean distance of the nearest reference to
// the query, plus search statistics. Results are exact: the lower-bound
// ordering plus the stopping rule never discards the true neighbor.
func (ix *EDIndex) NN(q []float64) (best int, dist float64, stats Stats) {
	if len(ix.series) == 0 {
		return -1, math.Inf(1), stats
	}
	if len(q) != ix.m {
		panic(fmt.Sprintf("index: query length %d, want %d", len(q), ix.m))
	}
	qp := PAA(q, ix.segments)
	type cand struct {
		i  int
		lb float64
	}
	cands := make([]cand, len(ix.series))
	for i := range ix.series {
		cands[i] = cand{i: i, lb: LBPAA(qp, ix.paa[i], ix.m)}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].lb < cands[b].lb })

	best = -1
	bestSq := math.Inf(1)
	for _, c := range cands {
		if best >= 0 && c.lb*c.lb >= bestSq {
			stats.Pruned = len(ix.series) - stats.Exact
			break
		}
		sq := earlyAbandonSqED(q, ix.series[c.i], bestSq)
		stats.Exact++
		if sq < bestSq {
			bestSq = sq
			best = c.i
		}
	}
	return best, math.Sqrt(bestSq), stats
}

// earlyAbandonSqED computes the squared ED but abandons as soon as the
// partial sum exceeds the cutoff, returning +Inf in that case.
func earlyAbandonSqED(x, y []float64, cutoff float64) float64 {
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
		if s >= cutoff {
			return math.Inf(1)
		}
	}
	return s
}
