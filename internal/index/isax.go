package index

import (
	"container/heap"
	"fmt"
	"math"
)

// This file implements an iSAX index (Shieh & Keogh, "iSAX: indexing and
// mining terabyte sized time series" — the paper whose ED-convergence
// observation misconception M2 grew from): a tree over variable-cardinality
// SAX words supporting approximate search (descend to the matching leaf)
// and exact 1-NN search (best-first traversal with the iSAX MINDIST lower
// bound). Series are indexed by their z-normalized form.

// isaxBits is the maximum per-segment cardinality exponent: symbols live
// in [0, 2^isaxBits).
const isaxBits = 8

// ISAX is the index. Segments sets the SAX word length; LeafCapacity the
// maximum entries per leaf before splitting.
type ISAX struct {
	segments int
	capacity int
	m        int       // series length
	breaks   []float64 // 2^isaxBits - 1 breakpoints at maximum cardinality
	series   [][]float64
	paas     [][]float64
	words    [][]int // full-cardinality symbols per indexed series
	root     *isaxNode
	size     int
}

// isaxNode is one tree node: an internal node splits one segment by its
// next symbol bit; a leaf stores entry indexes.
type isaxNode struct {
	// Per-segment prefix: sym is the high-order bits, bits how many are
	// fixed (0 = segment unconstrained).
	sym  []int
	bits []int

	entries  []int // leaf payload (indexes into the index's series)
	split    int   // internal: which segment the children extend
	children [2]*isaxNode
	leaf     bool
}

// NewISAX builds an empty index for series of length m.
func NewISAX(m, segments, leafCapacity int) *ISAX {
	if segments < 1 || segments > m {
		panic(fmt.Sprintf("index: iSAX segments %d out of range for length %d", segments, m))
	}
	if leafCapacity < 1 {
		panic("index: iSAX leaf capacity < 1")
	}
	card := 1 << isaxBits
	breaks := make([]float64, card-1)
	for i := range breaks {
		breaks[i] = normQuantile(float64(i+1) / float64(card))
	}
	return &ISAX{
		segments: segments,
		capacity: leafCapacity,
		m:        m,
		breaks:   breaks,
		root: &isaxNode{
			sym:  make([]int, segments),
			bits: make([]int, segments),
			leaf: true,
		},
	}
}

// Size returns the number of indexed series.
func (ix *ISAX) Size() int { return ix.size }

// word computes the full-cardinality SAX word of x.
func (ix *ISAX) word(x []float64) []int {
	paa := PAA(x, ix.segments)
	w := make([]int, len(paa))
	for i, v := range paa {
		w[i] = searchBreaks(ix.breaks, v)
	}
	return w
}

// searchBreaks returns the number of breakpoints <= v (the symbol).
func searchBreaks(breaks []float64, v float64) int {
	lo, hi := 0, len(breaks)
	for lo < hi {
		mid := (lo + hi) / 2
		if breaks[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds a series (length must match the index).
func (ix *ISAX) Insert(x []float64) {
	if len(x) != ix.m {
		panic(fmt.Sprintf("index: iSAX series length %d, want %d", len(x), ix.m))
	}
	id := len(ix.series)
	ix.series = append(ix.series, x)
	ix.paas = append(ix.paas, PAA(x, ix.segments))
	ix.words = append(ix.words, ix.word(x))
	ix.insert(ix.root, id)
	ix.size++
}

func (ix *ISAX) insert(n *isaxNode, id int) {
	for !n.leaf {
		bit := ix.childBit(n, ix.words[id])
		n = n.children[bit]
	}
	n.entries = append(n.entries, id)
	if len(n.entries) > ix.capacity {
		ix.splitLeaf(n)
	}
}

// childBit extracts the routing bit for a full-cardinality word at an
// internal node: the next (bits[split]th) most significant bit of the
// split segment's symbol.
func (ix *ISAX) childBit(n *isaxNode, word []int) int {
	shift := isaxBits - n.bits[n.split] - 1
	return (word[n.split] >> shift) & 1
}

// splitLeaf converts a full leaf into an internal node with two children,
// extending the prefix of the segment with the fewest fixed bits
// (round-robin refinement, the classic iSAX policy). A leaf whose every
// segment is fully refined stays an (oversized) leaf.
func (ix *ISAX) splitLeaf(n *isaxNode) {
	split := -1
	for s := 0; s < ix.segments; s++ {
		if n.bits[s] < isaxBits && (split == -1 || n.bits[s] < n.bits[split]) {
			split = s
		}
	}
	if split == -1 {
		return // cannot refine further
	}
	n.split = split
	for bit := 0; bit < 2; bit++ {
		child := &isaxNode{
			sym:  append([]int(nil), n.sym...),
			bits: append([]int(nil), n.bits...),
			leaf: true,
		}
		child.sym[split] = n.sym[split]<<1 | bit
		child.bits[split] = n.bits[split] + 1
		n.children[bit] = child
	}
	entries := n.entries
	n.entries = nil
	n.leaf = false
	for _, id := range entries {
		bit := ix.childBit(n, ix.words[id])
		n.children[bit].entries = append(n.children[bit].entries, id)
	}
	// A degenerate split (all entries on one side) may still exceed the
	// capacity; recurse so the child refines a different segment next.
	for bit := 0; bit < 2; bit++ {
		if len(n.children[bit].entries) > ix.capacity {
			ix.splitLeaf(n.children[bit])
		}
	}
}

// minDistNode returns the iSAX MINDIST lower bound between a query's PAA
// coefficients and every series whose word lies under the node's prefix.
func (ix *ISAX) minDistNode(paa []float64, n *isaxNode) float64 {
	var sum float64
	for s := 0; s < ix.segments; s++ {
		if n.bits[s] == 0 {
			continue // unconstrained segment contributes nothing
		}
		width := isaxBits - n.bits[s]
		loSym := n.sym[s] << width
		hiSym := ((n.sym[s] + 1) << width) - 1
		lo := math.Inf(-1)
		if loSym > 0 {
			lo = ix.breaks[loSym-1]
		}
		hi := math.Inf(1)
		if hiSym < len(ix.breaks) {
			hi = ix.breaks[hiSym]
		}
		v := paa[s]
		switch {
		case v < lo:
			d := lo - v
			sum += d * d
		case v > hi:
			d := v - hi
			sum += d * d
		}
	}
	return math.Sqrt(float64(ix.m) / float64(ix.segments) * sum)
}

// ApproxNN descends to the leaf matching the query's word and returns the
// best entry inside it (index, ED distance). It examines at most one
// leaf's entries — the constant-time approximate search of iSAX. Returns
// -1 on an empty index.
func (ix *ISAX) ApproxNN(q []float64) (best int, dist float64) {
	if ix.size == 0 {
		return -1, math.Inf(1)
	}
	word := ix.word(q)
	n := ix.root
	for !n.leaf {
		n = n.children[ix.childBit(n, word)]
	}
	return ix.scanLeaf(q, n, -1, math.Inf(1))
}

// scanLeaf linearly verifies a leaf's entries with early-abandoning ED.
func (ix *ISAX) scanLeaf(q []float64, n *isaxNode, best int, bestDist float64) (int, float64) {
	bestSq := bestDist * bestDist
	for _, id := range n.entries {
		sq := earlyAbandonSqED(q, ix.series[id], bestSq)
		if sq < bestSq {
			bestSq = sq
			best = id
		}
	}
	return best, math.Sqrt(bestSq)
}

// nodeHeap is a min-heap of (node, lower bound) for best-first search.
type nodeItem struct {
	n  *isaxNode
	lb float64
}
type nodeHeap []nodeItem

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].lb < h[j].lb }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// NN performs exact 1-NN search: best-first traversal ordered by the node
// MINDIST lower bound, seeded with the approximate answer, pruning every
// subtree whose bound cannot beat the best verified distance. It returns
// the nearest index, its ED, and the number of leaf entries verified.
func (ix *ISAX) NN(q []float64) (best int, dist float64, verified int) {
	if ix.size == 0 {
		return -1, math.Inf(1), 0
	}
	if len(q) != ix.m {
		panic(fmt.Sprintf("index: iSAX query length %d, want %d", len(q), ix.m))
	}
	// Seed with the approximate search for a tight initial radius.
	best, dist = ix.ApproxNN(q)
	paa := PAA(q, ix.segments)

	h := &nodeHeap{{ix.root, ix.minDistNode(paa, ix.root)}}
	for h.Len() > 0 {
		item := heap.Pop(h).(nodeItem)
		if item.lb >= dist {
			break // every remaining node is at least this far
		}
		if item.n.leaf {
			verified += len(item.n.entries)
			best, dist = ix.scanLeaf(q, item.n, best, dist)
			continue
		}
		for bit := 0; bit < 2; bit++ {
			c := item.n.children[bit]
			if lb := ix.minDistNode(paa, c); lb < dist {
				heap.Push(h, nodeItem{c, lb})
			}
		}
	}
	return best, dist, verified
}

// Validate checks the structural invariant: every leaf entry's word lies
// under the leaf's prefix. Used by tests.
func (ix *ISAX) Validate() error {
	var walk func(n *isaxNode) error
	walk = func(n *isaxNode) error {
		if n.leaf {
			for _, id := range n.entries {
				for s := 0; s < ix.segments; s++ {
					if n.bits[s] == 0 {
						continue
					}
					prefix := ix.words[id][s] >> (isaxBits - n.bits[s])
					if prefix != n.sym[s] {
						return fmt.Errorf("index: entry %d segment %d prefix %d != node %d",
							id, s, prefix, n.sym[s])
					}
				}
			}
			return nil
		}
		for bit := 0; bit < 2; bit++ {
			if err := walk(n.children[bit]); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(ix.root)
}
