package index

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/lockstep"
)

func buildISAX(rng *rand.Rand, n, m int) (*ISAX, [][]float64) {
	ix := NewISAX(m, 8, 4)
	refs := make([][]float64, n)
	for i := range refs {
		refs[i] = dataset.ZNormalize(randSeries(rng, m))
		ix.Insert(refs[i])
	}
	return ix, refs
}

func TestISAXInsertAndValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ix, _ := buildISAX(rng, 200, 64)
	if ix.Size() != 200 {
		t.Fatalf("size = %d", ix.Size())
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestISAXExactNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ix, refs := buildISAX(rng, 150, 48)
	ed := lockstep.Euclidean()
	for trial := 0; trial < 25; trial++ {
		q := dataset.ZNormalize(randSeries(rng, 48))
		got, gotD, verified := ix.NN(q)
		want, wantD := -1, math.Inf(1)
		for i, r := range refs {
			if d := ed.Distance(q, r); d < wantD {
				want, wantD = i, d
			}
		}
		if math.Abs(gotD-wantD) > 1e-9 {
			t.Fatalf("iSAX NN (%d, %g) != brute (%d, %g)", got, gotD, want, wantD)
		}
		if verified > len(refs) {
			t.Fatalf("verified %d > n", verified)
		}
	}
}

func TestISAXApproxNNReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ix, refs := buildISAX(rng, 200, 64)
	// Querying with an indexed series must find something close (usually
	// itself — the leaf containing its own word).
	hits := 0
	for trial := 0; trial < 30; trial++ {
		q := refs[rng.Intn(len(refs))]
		best, dist := ix.ApproxNN(q)
		if best == -1 {
			t.Fatal("no approximate answer")
		}
		if dist < 1e-9 {
			hits++
		}
	}
	if hits < 25 {
		t.Fatalf("approximate search found the exact copy only %d/30 times", hits)
	}
}

func TestISAXPrunesOnClusteredData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := 64
	// Two well-separated z-normalized shapes with small jitter.
	mk := func(freq float64) []float64 {
		s := make([]float64, m)
		for i := range s {
			s[i] = math.Sin(2*math.Pi*freq*float64(i)/float64(m)) + 0.05*rng.NormFloat64()
		}
		return dataset.ZNormalize(s)
	}
	ix := NewISAX(m, 8, 4)
	var refs [][]float64
	for i := 0; i < 200; i++ {
		freq := 2.0
		if i%2 == 1 {
			freq = 7.0
		}
		r := mk(freq)
		refs = append(refs, r)
		ix.Insert(r)
	}
	q := mk(2.0)
	_, _, verified := ix.NN(q)
	if verified >= len(refs) {
		t.Fatalf("verified %d of %d, expected pruning on clustered data", verified, len(refs))
	}
}

func TestISAXEmptyIndex(t *testing.T) {
	ix := NewISAX(32, 8, 4)
	if best, _, _ := ix.NN(make([]float64, 32)); best != -1 {
		t.Fatalf("empty NN = %d", best)
	}
	if best, _ := ix.ApproxNN(make([]float64, 32)); best != -1 {
		t.Fatalf("empty ApproxNN = %d", best)
	}
}

func TestISAXPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewISAX(8, 9, 4) },                            // segments > length
		func() { NewISAX(8, 0, 4) },                            // segments < 1
		func() { NewISAX(8, 4, 0) },                            // capacity < 1
		func() { NewISAX(8, 4, 2).Insert(make([]float64, 7)) }, // bad length
		func() { ix := NewISAX(8, 4, 2); ix.Insert(make([]float64, 8)); ix.NN(make([]float64, 7)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestISAXMinDistIsLowerBound(t *testing.T) {
	// For every node containing a series, MINDIST(query, node) must lower
	// bound ED(query, series).
	rng := rand.New(rand.NewSource(5))
	ix, refs := buildISAX(rng, 80, 32)
	ed := lockstep.Euclidean()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := dataset.ZNormalize(randSeries(r, 32))
		paa := PAA(q, ix.segments)
		// Walk to each leaf and compare against all entries inside.
		ok := true
		var walk func(n *isaxNode)
		walk = func(n *isaxNode) {
			if n.leaf {
				lb := ix.minDistNode(paa, n)
				for _, id := range n.entries {
					if lb > ed.Distance(q, refs[id])+1e-9 {
						ok = false
					}
				}
				return
			}
			walk(n.children[0])
			walk(n.children[1])
		}
		walk(ix.root)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestISAXDeepSplitStillValid(t *testing.T) {
	// Force deep splitting with identical-word series: capacity 1 with
	// many near-identical series exercises the degenerate-split path.
	rng := rand.New(rand.NewSource(6))
	m := 32
	base := dataset.ZNormalize(randSeries(rng, m))
	ix := NewISAX(m, 4, 1)
	for i := 0; i < 20; i++ {
		c := make([]float64, m)
		for j := range c {
			c[j] = base[j] + 1e-6*rng.NormFloat64()
		}
		ix.Insert(dataset.ZNormalize(c))
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	best, dist, _ := ix.NN(base)
	if best == -1 || dist > 1e-3 {
		t.Fatalf("NN on duplicate-heavy index = (%d, %g)", best, dist)
	}
}
