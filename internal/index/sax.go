package index

import (
	"fmt"
	"math"
	"sort"
)

// This file implements SAX (Symbolic Aggregate approXimation) with its
// MINDIST lower bound — the representation behind iSAX, the indexing work
// (Shieh & Keogh) whose ED-convergence claim is misconception M2's origin
// — and the DFT-coefficient lower bound of the seminal GEMINI paper
// (Agrawal, Faloutsos, Swami), which first tied ED to indexable Fourier
// features.

// saxBreakpoints returns the alphabet-1 breakpoints splitting the standard
// normal distribution into equiprobable regions, for alphabet sizes
// 2..16 (the published SAX tables, computed from the normal quantiles).
func saxBreakpoints(alphabet int) []float64 {
	if alphabet < 2 || alphabet > 16 {
		panic(fmt.Sprintf("index: SAX alphabet %d out of range 2..16", alphabet))
	}
	out := make([]float64, alphabet-1)
	for i := range out {
		p := float64(i+1) / float64(alphabet)
		out[i] = normQuantile(p)
	}
	return out
}

// normQuantile computes the standard normal quantile by bisection on the
// CDF; accuracy ~1e-10 suffices for breakpoint tables.
func normQuantile(p float64) float64 {
	lo, hi := -10.0, 10.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if 0.5*(1+math.Erf(mid/math.Sqrt2)) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// SAX is a symbolic representation scheme: series are PAA-reduced to
// Segments coefficients and each coefficient is quantized into one of
// Alphabet equiprobable symbols (assuming z-normalized input).
type SAX struct {
	Segments int
	Alphabet int

	breaks []float64
}

// NewSAX builds the scheme, precomputing the breakpoint table.
func NewSAX(segments, alphabet int) *SAX {
	if segments < 1 {
		panic(fmt.Sprintf("index: SAX segments %d < 1", segments))
	}
	return &SAX{Segments: segments, Alphabet: alphabet, breaks: saxBreakpoints(alphabet)}
}

// Symbolize converts a (z-normalized) series into its SAX word: a slice of
// symbol indexes in [0, Alphabet).
func (s *SAX) Symbolize(x []float64) []int {
	paa := PAA(x, s.Segments)
	word := make([]int, len(paa))
	for i, v := range paa {
		word[i] = sort.SearchFloat64s(s.breaks, v)
	}
	return word
}

// MinDist returns the SAX MINDIST lower bound of the Euclidean distance
// between the original series of two SAX words (both of original length
// m): sqrt(m/segments * sum cellDist^2), where cellDist is the gap between
// the breakpoint regions of differing symbols. MINDIST never exceeds the
// true z-normalized ED.
func (s *SAX) MinDist(a, b []int, m int) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("index: SAX word lengths %d vs %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		d := s.cellDist(a[i], b[i])
		sum += d * d
	}
	return math.Sqrt(float64(m) / float64(len(a)) * sum)
}

// cellDist is the minimum distance between two symbol regions: zero for
// adjacent or equal symbols, otherwise the gap between the breakpoints.
func (s *SAX) cellDist(a, b int) float64 {
	if a > b {
		a, b = b, a
	}
	if b-a <= 1 {
		return 0
	}
	return s.breaks[b-1] - s.breaks[a]
}

// DFTLowerBound computes the GEMINI Fourier lower bound of the Euclidean
// distance using the first k DFT coefficient differences of both series
// (coefficients must come from DFTCoefficients with the same k): by
// Parseval's theorem the truncated spectrum distance never exceeds the
// true ED.
func DFTLowerBound(a, b []complex128) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("index: coefficient lengths %d vs %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		re, im := real(d), imag(d)
		w := 2.0 // conjugate-symmetric twin counts double...
		if i == 0 {
			w = 1 // ...except the DC coefficient
		}
		sum += w * (re*re + im*im)
	}
	return math.Sqrt(sum)
}

// DFTCoefficients returns the first k normalized DFT coefficients of x
// (scaled by 1/sqrt(m) so Parseval holds exactly against the time-domain
// ED). k is clamped to (m+1)/2 so that every returned non-DC coefficient
// has a conjugate twin — the assumption DFTLowerBound's doubling relies
// on (the Nyquist coefficient of an even-length signal is excluded).
func DFTCoefficients(x []float64, k int) []complex128 {
	m := len(x)
	if m == 0 {
		return nil
	}
	if k > (m+1)/2 {
		k = (m + 1) / 2
	}
	scale := 1 / math.Sqrt(float64(m))
	out := make([]complex128, k)
	for f := 0; f < k; f++ {
		var re, im float64
		for t, v := range x {
			ang := -2 * math.Pi * float64(f) * float64(t) / float64(m)
			re += v * math.Cos(ang)
			im += v * math.Sin(ang)
		}
		out[f] = complex(re*scale, im*scale)
	}
	return out
}
