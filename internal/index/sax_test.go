package index

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/lockstep"
)

func TestSAXBreakpointsEquiprobable(t *testing.T) {
	// Alphabet 4 breakpoints are the normal quartiles ~ -0.6745, 0, 0.6745.
	b := saxBreakpoints(4)
	want := []float64{-0.6745, 0, 0.6745}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-3 {
			t.Fatalf("breakpoints = %v, want ~%v", b, want)
		}
	}
	// Monotone for all supported alphabets.
	for a := 2; a <= 16; a++ {
		bp := saxBreakpoints(a)
		for i := 1; i < len(bp); i++ {
			if bp[i] <= bp[i-1] {
				t.Fatalf("alphabet %d: breakpoints not increasing: %v", a, bp)
			}
		}
	}
}

func TestSAXAlphabetRangePanics(t *testing.T) {
	for _, a := range []int{1, 17} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alphabet %d: expected panic", a)
				}
			}()
			saxBreakpoints(a)
		}()
	}
}

func TestNormQuantile(t *testing.T) {
	cases := map[float64]float64{0.5: 0, 0.975: 1.95996, 0.025: -1.95996, 0.95: 1.64485}
	for p, want := range cases {
		if got := normQuantile(p); math.Abs(got-want) > 1e-4 {
			t.Errorf("normQuantile(%g) = %g, want %g", p, got, want)
		}
	}
}

func TestSymbolize(t *testing.T) {
	s := NewSAX(4, 4)
	// Strongly increasing z-normalized ramp: symbols should be
	// non-decreasing and span low to high.
	x := dataset.ZNormalize([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	w := s.Symbolize(x)
	if len(w) != 4 {
		t.Fatalf("word length %d", len(w))
	}
	for i := 1; i < len(w); i++ {
		if w[i] < w[i-1] {
			t.Fatalf("ramp word not monotone: %v", w)
		}
	}
	if w[0] != 0 || w[3] != 3 {
		t.Fatalf("ramp word should span the alphabet: %v", w)
	}
}

func TestMinDistIsLowerBound(t *testing.T) {
	ed := lockstep.Euclidean()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 16 + rng.Intn(80)
		x := dataset.ZNormalize(randSeries(rng, m))
		y := dataset.ZNormalize(randSeries(rng, m))
		s := NewSAX(4+rng.Intn(8), 3+rng.Intn(10))
		lb := s.MinDist(s.Symbolize(x), s.Symbolize(y), m)
		return lb <= ed.Distance(x, y)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMinDistIdenticalWordsIsZero(t *testing.T) {
	s := NewSAX(8, 6)
	rng := rand.New(rand.NewSource(1))
	x := dataset.ZNormalize(randSeries(rng, 64))
	w := s.Symbolize(x)
	if d := s.MinDist(w, w, 64); d != 0 {
		t.Fatalf("MinDist of identical words = %g", d)
	}
}

func TestMinDistAdjacentSymbolsFree(t *testing.T) {
	s := NewSAX(1, 4)
	if s.cellDist(1, 2) != 0 || s.cellDist(2, 1) != 0 || s.cellDist(0, 1) != 0 {
		t.Fatal("adjacent symbols must cost 0")
	}
	if s.cellDist(0, 3) <= 0 {
		t.Fatal("distant symbols must cost > 0")
	}
}

func TestMinDistWordMismatchPanics(t *testing.T) {
	s := NewSAX(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.MinDist([]int{0}, []int{0, 1}, 8)
}

func TestDFTCoefficientsParseval(t *testing.T) {
	// With all (m+1)/2 coefficients and the conjugate weighting, the lower
	// bound becomes exactly the ED for odd-length series.
	rng := rand.New(rand.NewSource(2))
	m := 31
	x := randSeries(rng, m)
	y := randSeries(rng, m)
	full := (m + 1) / 2
	lb := DFTLowerBound(DFTCoefficients(x, full), DFTCoefficients(y, full))
	ed := lockstep.Euclidean().Distance(x, y)
	if math.Abs(lb-ed) > 1e-8 {
		t.Fatalf("full-spectrum DFT bound %g != ED %g", lb, ed)
	}
}

func TestDFTLowerBoundProperty(t *testing.T) {
	ed := lockstep.Euclidean()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 8 + rng.Intn(64)
		k := 1 + rng.Intn(8)
		x := randSeries(rng, m)
		y := randSeries(rng, m)
		lb := DFTLowerBound(DFTCoefficients(x, k), DFTCoefficients(y, k))
		return lb <= ed.Distance(x, y)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDFTLowerBoundTightensWithMoreCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := 64
	x := randSeries(rng, m)
	y := randSeries(rng, m)
	prev := -1.0
	for k := 1; k <= 16; k++ {
		lb := DFTLowerBound(DFTCoefficients(x, k), DFTCoefficients(y, k))
		if lb < prev-1e-9 {
			t.Fatalf("bound shrank with more coefficients at k=%d: %g < %g", k, lb, prev)
		}
		prev = lb
	}
}

func TestDFTLowerBoundMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DFTLowerBound(make([]complex128, 2), make([]complex128, 3))
}

func TestDFTCoefficientsEmptyAndClamp(t *testing.T) {
	if DFTCoefficients(nil, 3) != nil {
		t.Fatal("empty series should give nil")
	}
	// Even length: Nyquist excluded.
	got := DFTCoefficients(make([]float64, 8), 100)
	if len(got) != 4 {
		t.Fatalf("clamped length %d, want 4", len(got))
	}
}
