package index

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/elastic"
	"repro/internal/lockstep"
	"repro/internal/measure"
)

// bruteKNN is the reference the tree must match: sanitized distances to
// every reference, sorted by (distance, index), truncated to k.
func bruteKNN(refs [][]float64, m measure.Measure, q []float64, k int) []Neighbor {
	nbs := make([]Neighbor, len(refs))
	for i, r := range refs {
		nbs[i] = Neighbor{Index: i, Dist: measure.Sanitize(m.Distance(q, r))}
	}
	sort.Slice(nbs, func(a, b int) bool {
		if nbs[a].Dist != nbs[b].Dist {
			return nbs[a].Dist < nbs[b].Dist
		}
		return nbs[a].Index < nbs[b].Index
	})
	if k > len(nbs) {
		k = len(nbs)
	}
	return nbs[:k]
}

// propCorpus generates a corpus rigged to produce duplicate series and
// tied distances: every third series is a copy of an earlier one, and
// values are quantized so distinct series frequently tie on distance.
func propCorpus(rng *rand.Rand, n, m int) [][]float64 {
	refs := make([][]float64, n)
	for i := range refs {
		if i >= 2 && i%3 == 0 {
			refs[i] = append([]float64(nil), refs[rng.Intn(i)]...)
			continue
		}
		x := make([]float64, m)
		for j := range x {
			x[j] = math.Round(rng.NormFloat64()*2) / 2 // quantize to halves
		}
		refs[i] = x
	}
	return refs
}

// TestVPTreeKNNMatchesBruteForce checks KNN exactness against a linear
// scan over the metric measures the tree is documented to support,
// including duplicate series and tied distances (both present by
// construction in propCorpus). Distances must match exactly; indices may
// differ only within tied-distance groups, so the comparison is on the
// sorted distance multiset plus the invariant that each returned index's
// distance equals the brute-force distance at the same rank.
func TestVPTreeKNNMatchesBruteForce(t *testing.T) {
	metrics := []measure.Measure{
		lockstep.Euclidean(),
		elastic.MSM{C: 0.5},
		elastic.ERP{G: 0},
		elastic.TWE{Lambda: 1, Nu: 0.0001},
	}
	for _, m := range metrics {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				rng := rand.New(rand.NewSource(seed))
				n := 20 + rng.Intn(40)
				refs := propCorpus(rng, n, 16)
				tree := NewVPTree(refs, m, seed)
				if err := tree.Validate(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for trial := 0; trial < 6; trial++ {
					q := refs[rng.Intn(n)]
					if trial%2 == 0 {
						q = randSeries(rng, 16)
					}
					k := 1 + rng.Intn(n+2) // occasionally k > n
					got, computed := tree.KNN(q, k)
					want := bruteKNN(refs, m, q, k)
					if len(got) != len(want) {
						t.Fatalf("seed %d: KNN returned %d neighbors, want %d", seed, len(got), len(want))
					}
					for r := range got {
						if math.Abs(got[r].Dist-want[r].Dist) > 1e-9 {
							t.Fatalf("seed %d k=%d rank %d: dist %g != brute %g",
								seed, k, r, got[r].Dist, want[r].Dist)
						}
					}
					// With the (Dist, Index) total order the result must be
					// exactly the brute-force list, indices included.
					for r := range got {
						if got[r].Index != want[r].Index {
							t.Fatalf("seed %d k=%d rank %d: index %d != brute %d (dist %g)",
								seed, k, r, got[r].Index, want[r].Index, got[r].Dist)
						}
					}
					if computed > n {
						t.Fatalf("seed %d: computed %d > n %d", seed, computed, n)
					}
				}
			}
		})
	}
}

// TestISAXNNMatchesBruteForce checks iSAX exact-NN search against a
// brute-force Euclidean scan on corpora with duplicates and ties.
func TestISAXNNMatchesBruteForce(t *testing.T) {
	ed := lockstep.Euclidean()
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		n := 20 + rng.Intn(40)
		refs := propCorpus(rng, n, 16)
		isax := NewISAX(16, 4, 4)
		for _, r := range refs {
			isax.Insert(r)
		}
		if err := isax.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for trial := 0; trial < 8; trial++ {
			q := refs[rng.Intn(n)]
			if trial%2 == 0 {
				q = randSeries(rng, 16)
			}
			_, gotD, _ := isax.NN(q)
			want := bruteKNN(refs, ed, q, 1)
			if math.Abs(gotD-want[0].Dist) > 1e-9 {
				t.Fatalf("seed %d: iSAX NN dist %g != brute %g", seed, gotD, want[0].Dist)
			}
		}
	}
}

// TestVPTreeNaNPoisonedSeries is the regression test for the NN branch
// bug: a NaN vantage distance used to fail both descent conditions, so
// the inside subtree — possibly holding the true neighbor — was silently
// skipped. The search must now treat non-finite distances as
// prune-nothing and still return the exact nearest neighbor, with the
// poisoned series themselves ranking last (+Inf).
func TestVPTreeNaNPoisonedSeries(t *testing.T) {
	ed := lockstep.Euclidean()
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		n := 30 + rng.Intn(30)
		refs := propCorpus(rng, n, 16)
		// Poison ~1/4 of the corpus with NaNs so poisoned series regularly
		// become vantage points at every level of the tree.
		for i := range refs {
			if rng.Intn(4) == 0 {
				r := append([]float64(nil), refs[i]...)
				r[rng.Intn(len(r))] = math.NaN()
				refs[i] = r
			}
		}
		tree := NewVPTree(refs, ed, seed)
		if err := tree.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for trial := 0; trial < 8; trial++ {
			q := randSeries(rng, 16)
			best, gotD, _ := tree.NN(q)
			want := bruteKNN(refs, ed, q, 1)
			if best != want[0].Index || math.Abs(gotD-want[0].Dist) > 1e-9 {
				t.Fatalf("seed %d: NN (%d, %g) != brute (%d, %g) on NaN-poisoned corpus",
					seed, best, gotD, want[0].Index, want[0].Dist)
			}
			got, _ := tree.KNN(q, 5)
			wantK := bruteKNN(refs, ed, q, 5)
			for r := range got {
				if got[r].Index != wantK[r].Index || math.Abs(got[r].Dist-wantK[r].Dist) > 1e-9 {
					t.Fatalf("seed %d rank %d: KNN (%d, %g) != brute (%d, %g)",
						seed, r, got[r].Index, got[r].Dist, wantK[r].Index, wantK[r].Dist)
				}
			}
		}
		// A NaN query must not hang or panic; every distance is NaN, so all
		// neighbors rank +Inf and the lowest indices win.
		nanQ := make([]float64, 16)
		nanQ[3] = math.NaN()
		got, _ := tree.KNN(nanQ, 3)
		for r, nb := range got {
			if !math.IsInf(nb.Dist, 1) || nb.Index != r {
				t.Fatalf("seed %d: NaN query rank %d = (%d, %g), want (%d, +Inf)",
					seed, r, nb.Index, nb.Dist, r)
			}
		}
	}
}

// TestVPTreeParallelBuildDeterministic pins that the tree structure is
// independent of the goroutine budget: a serial build (small corpus
// forced through the sequential path by context-free construction) and a
// parallel build over the same (refs, seed) must answer identically,
// including exact computed counts, which expose any structural drift.
func TestVPTreeParallelBuildDeterministic(t *testing.T) {
	ed := lockstep.Euclidean()
	rng := rand.New(rand.NewSource(42))
	refs := propCorpus(rng, 600, 16) // large enough to trip both parallel paths
	a := NewVPTree(refs, ed, 7)
	b := NewVPTree(refs, ed, 7)
	for trial := 0; trial < 12; trial++ {
		q := randSeries(rng, 16)
		na, ca := a.KNN(q, 3)
		nb, cb := b.KNN(q, 3)
		if ca != cb {
			t.Fatalf("trial %d: computed %d vs %d — tree structure differs across builds", trial, ca, cb)
		}
		for r := range na {
			if na[r] != nb[r] {
				t.Fatalf("trial %d rank %d: %v vs %v", trial, r, na[r], nb[r])
			}
		}
	}
}
