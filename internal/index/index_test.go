package index

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/elastic"
	"repro/internal/lockstep"
	"repro/internal/measure"
)

func randSeries(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestPAAKnownValues(t *testing.T) {
	x := []float64{1, 3, 5, 7}
	got := PAA(x, 2)
	if got[0] != 2 || got[1] != 6 {
		t.Fatalf("PAA = %v, want [2 6]", got)
	}
	// segments == len: identity.
	same := PAA(x, 4)
	for i := range x {
		if same[i] != x[i] {
			t.Fatal("full-resolution PAA must be identity")
		}
	}
	// segments > len clamps.
	if len(PAA(x, 10)) != 4 {
		t.Fatal("oversized segments must clamp to length")
	}
}

func TestPAAFractionalSegments(t *testing.T) {
	// 5 points into 2 segments: {0,1} -> seg 0, {2,3,4} -> seg 1
	// (i*segments/m: 0,0,0 -> wait: 0*2/5=0, 1*2/5=0, 2*2/5=0, 3*2/5=1, 4*2/5=1).
	x := []float64{1, 2, 3, 10, 20}
	got := PAA(x, 2)
	if math.Abs(got[0]-2) > 1e-12 || math.Abs(got[1]-15) > 1e-12 {
		t.Fatalf("PAA = %v, want [2 15]", got)
	}
}

func TestPAAPreservesMean(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 4 + rng.Intn(100)
		segs := 1 + rng.Intn(m)
		x := randSeries(rng, m)
		p := PAA(x, segs)
		// Weighted mean of PAA coefficients equals series mean when
		// segments divide evenly; otherwise within tolerance of weights.
		if m%segs != 0 {
			return true // only check the exact case
		}
		var xm, pm float64
		for _, v := range x {
			xm += v
		}
		xm /= float64(m)
		for _, v := range p {
			pm += v
		}
		pm /= float64(len(p))
		return math.Abs(xm-pm) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPAAPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { PAA([]float64{1}, 0) },
		func() { PAA(nil, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestLBPAAIsLowerBound(t *testing.T) {
	ed := lockstep.Euclidean()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 8 + rng.Intn(60)
		segs := 1 + rng.Intn(m/2+1)
		x := randSeries(rng, m)
		y := randSeries(rng, m)
		lb := LBPAA(PAA(x, segs), PAA(y, segs), m)
		return lb <= ed.Distance(x, y)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
	// Regression: with ragged segments (m not divisible by segs) a uniform
	// m/segs weight overestimates the short segments and breaks the bound.
	// This seed produced m=8, segs=5 and a violation of ~0.5.
	if !f(-8449248227039515998) {
		t.Error("LBPAA exceeds the Euclidean distance on ragged segments")
	}
}

func TestLBPAAMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LBPAA([]float64{1}, []float64{1, 2}, 4)
}

func TestEDIndexExactNN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	refs := make([][]float64, 60)
	for i := range refs {
		refs[i] = randSeries(rng, 64)
	}
	ix := NewEDIndex(refs, 8)
	ed := lockstep.Euclidean()
	for trial := 0; trial < 20; trial++ {
		q := randSeries(rng, 64)
		got, gotD, stats := ix.NN(q)
		// Brute force.
		want, wantD := -1, math.Inf(1)
		for i, r := range refs {
			if d := ed.Distance(q, r); d < wantD {
				want, wantD = i, d
			}
		}
		if got != want || math.Abs(gotD-wantD) > 1e-9 {
			t.Fatalf("index NN (%d, %g) != brute force (%d, %g)", got, gotD, want, wantD)
		}
		if stats.Exact > len(refs) {
			t.Fatalf("exact computations %d exceed candidate count", stats.Exact)
		}
	}
}

func TestEDIndexPrunesOnClusteredData(t *testing.T) {
	// Tight clusters: the lower bound should reject most candidates.
	rng := rand.New(rand.NewSource(2))
	base := randSeries(rng, 64)
	far := make([]float64, 64)
	for i := range far {
		far[i] = base[i] + 50
	}
	refs := make([][]float64, 100)
	for i := range refs {
		src := base
		if i >= 2 {
			src = far
		}
		r := make([]float64, 64)
		for j := range r {
			r[j] = src[j] + 0.01*rng.NormFloat64()
		}
		refs[i] = r
	}
	ix := NewEDIndex(refs, 8)
	q := make([]float64, 64)
	copy(q, base)
	_, _, stats := ix.NN(q)
	if stats.Exact > 20 {
		t.Fatalf("exact computations %d, expected heavy pruning", stats.Exact)
	}
}

func TestEDIndexPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for ragged refs")
			}
		}()
		NewEDIndex([][]float64{{1, 2}, {1}}, 1)
	}()
	ix := NewEDIndex([][]float64{{1, 2, 3, 4}}, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad query length")
		}
	}()
	ix.NN([]float64{1})
}

func TestVPTreeExactForMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	refs := make([][]float64, 50)
	for i := range refs {
		refs[i] = randSeries(rng, 32)
	}
	metrics := []measure.Measure{
		lockstep.Euclidean(),
		lockstep.Manhattan(),
		elastic.MSM{C: 0.5},
		elastic.ERP{G: 0},
	}
	for _, m := range metrics {
		tree := NewVPTree(refs, m, 7)
		if err := tree.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for trial := 0; trial < 8; trial++ {
			q := randSeries(rng, 32)
			got, gotD, computed := tree.NN(q)
			want, wantD := -1, math.Inf(1)
			for i, r := range refs {
				if d := m.Distance(q, r); d < wantD {
					want, wantD = i, d
				}
			}
			if math.Abs(gotD-wantD) > 1e-9 {
				t.Fatalf("%s: VP-tree NN (%d, %g) != brute (%d, %g)", m.Name(), got, gotD, want, wantD)
			}
			if computed > len(refs) {
				t.Fatalf("%s: computed %d > n", m.Name(), computed)
			}
		}
	}
}

func TestVPTreePrunesOnClusteredData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Three tight, well-separated clusters.
	centers := make([][]float64, 3)
	for c := range centers {
		centers[c] = make([]float64, 32)
		for j := range centers[c] {
			centers[c][j] = float64(c*100) + rng.NormFloat64()
		}
	}
	refs := make([][]float64, 120)
	for i := range refs {
		src := centers[i%3]
		r := make([]float64, 32)
		for j := range r {
			r[j] = src[j] + 0.01*rng.NormFloat64()
		}
		refs[i] = r
	}
	tree := NewVPTree(refs, lockstep.Euclidean(), 9)
	q := append([]float64(nil), centers[1]...)
	_, _, computed := tree.NN(q)
	if computed >= len(refs) {
		t.Fatalf("computed %d of %d, expected pruning", computed, len(refs))
	}
	if tree.Size() != 120 {
		t.Fatalf("size = %d", tree.Size())
	}
}

func TestVPTreeSingleElement(t *testing.T) {
	refs := [][]float64{{1, 2, 3}}
	tree := NewVPTree(refs, lockstep.Euclidean(), 1)
	best, d, _ := tree.NN([]float64{1, 2, 4})
	if best != 0 || math.Abs(d-1) > 1e-12 {
		t.Fatalf("NN = (%d, %g)", best, d)
	}
}

// TestIndexDegenerateCorpora pins the unified degenerate-input behavior of
// every index constructor: an empty corpus builds a valid empty index whose
// searches return (-1, +Inf) without panicking — the contract NewISAX
// always had — and a one-series corpus returns that series.
func TestIndexDegenerateCorpora(t *testing.T) {
	ed := lockstep.Euclidean()
	q := []float64{1, 2, 3, 4}

	// Empty corpora.
	tree := NewVPTree(nil, ed, 1)
	if best, d, computed := tree.NN(q); best != -1 || !math.IsInf(d, 1) || computed != 0 {
		t.Fatalf("empty VPTree NN = (%d, %g, %d), want (-1, +Inf, 0)", best, d, computed)
	}
	if nbs, _ := tree.KNN(q, 3); len(nbs) != 0 {
		t.Fatalf("empty VPTree KNN returned %d neighbors", len(nbs))
	}
	if tree.Size() != 0 {
		t.Fatalf("empty VPTree size = %d", tree.Size())
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("empty VPTree invalid: %v", err)
	}
	eix := NewEDIndex(nil, 4)
	if best, d, _ := eix.NN(q); best != -1 || !math.IsInf(d, 1) {
		t.Fatalf("empty EDIndex NN = (%d, %g), want (-1, +Inf)", best, d)
	}
	isax := NewISAX(4, 2, 4)
	if best, d, verified := isax.NN(q); best != -1 || !math.IsInf(d, 1) || verified != 0 {
		t.Fatalf("empty iSAX NN = (%d, %g, %d), want (-1, +Inf, 0)", best, d, verified)
	}

	// One-series corpora.
	one := [][]float64{{1, 2, 3, 5}}
	tree = NewVPTree(one, ed, 1)
	if best, d, _ := tree.NN(q); best != 0 || math.Abs(d-1) > 1e-12 {
		t.Fatalf("len-1 VPTree NN = (%d, %g), want (0, 1)", best, d)
	}
	if nbs, _ := tree.KNN(q, 5); len(nbs) != 1 || nbs[0].Index != 0 {
		t.Fatalf("len-1 VPTree KNN = %v, want one neighbor of index 0", nbs)
	}
	eix = NewEDIndex(one, 2)
	if best, _, _ := eix.NN(q); best != 0 {
		t.Fatalf("len-1 EDIndex NN = %d, want 0", best)
	}
	isax = NewISAX(4, 2, 4)
	isax.Insert(one[0])
	if best, _, _ := isax.NN(q); best != 0 {
		t.Fatalf("len-1 iSAX NN = %d, want 0", best)
	}
}
