package dataset

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFillMissingInterior(t *testing.T) {
	x := []float64{1, math.NaN(), 3}
	got := FillMissing(x)
	if got[1] != 2 {
		t.Fatalf("FillMissing = %v, want midpoint 2", got)
	}
	// Longer gap.
	x = []float64{0, math.NaN(), math.NaN(), 3}
	got = FillMissing(x)
	if got[1] != 1 || got[2] != 2 {
		t.Fatalf("FillMissing = %v, want [0 1 2 3]", got)
	}
}

func TestFillMissingEdges(t *testing.T) {
	x := []float64{math.NaN(), math.NaN(), 5, math.NaN()}
	got := FillMissing(x)
	want := []float64{5, 5, 5, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FillMissing = %v, want %v", got, want)
		}
	}
}

func TestFillMissingAllNaN(t *testing.T) {
	got := FillMissing([]float64{math.NaN(), math.NaN()})
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("all-NaN should become zeros, got %v", got)
	}
}

func TestFillMissingDoesNotMutate(t *testing.T) {
	x := []float64{1, math.NaN(), 3}
	FillMissing(x)
	if !math.IsNaN(x[1]) {
		t.Fatal("input mutated")
	}
}

func TestResampleIdentity(t *testing.T) {
	x := []float64{1, 2, 3}
	got := Resample(x, 3)
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("identity resample changed values: %v", got)
		}
	}
}

func TestResampleUpsample(t *testing.T) {
	x := []float64{0, 2}
	got := Resample(x, 5)
	want := []float64{0, 0.5, 1, 1.5, 2}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Resample = %v, want %v", got, want)
		}
	}
}

func TestResamplePreservesEndpoints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		target := 2 + rng.Intn(200)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		r := Resample(x, target)
		return len(r) == target &&
			math.Abs(r[0]-x[0]) < 1e-12 &&
			math.Abs(r[target-1]-x[n-1]) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestResampleConstant(t *testing.T) {
	got := Resample([]float64{7}, 4)
	for _, v := range got {
		if v != 7 {
			t.Fatalf("constant resample = %v", got)
		}
	}
}

func TestZNormalize(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	z := ZNormalize(x)
	var mean, ss float64
	for _, v := range z {
		mean += v
	}
	mean /= float64(len(z))
	for _, v := range z {
		ss += (v - mean) * (v - mean)
	}
	std := math.Sqrt(ss / float64(len(z)))
	if math.Abs(mean) > 1e-12 || math.Abs(std-1) > 1e-12 {
		t.Fatalf("z-normalized mean=%g std=%g", mean, std)
	}
}

func TestZNormalizeConstant(t *testing.T) {
	z := ZNormalize([]float64{3, 3, 3})
	for _, v := range z {
		if v != 0 {
			t.Fatalf("constant series should normalize to zeros, got %v", z)
		}
	}
}

func TestTSVRoundTrip(t *testing.T) {
	series := [][]float64{{1.5, -2, math.NaN()}, {0, 3.25, 9}}
	labels := []int{1, 2}
	var sb strings.Builder
	if err := WriteTSV(&sb, series, labels); err != nil {
		t.Fatal(err)
	}
	gotSeries, gotLabels, err := ReadTSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotSeries) != 2 || gotLabels[0] != 1 || gotLabels[1] != 2 {
		t.Fatalf("round trip labels %v", gotLabels)
	}
	for i := range series {
		for j := range series[i] {
			a, b := series[i][j], gotSeries[i][j]
			if math.IsNaN(a) != math.IsNaN(b) || (!math.IsNaN(a) && a != b) {
				t.Fatalf("series[%d][%d] = %v, want %v", i, j, b, a)
			}
		}
	}
}

func TestReadTSVCommaSeparated(t *testing.T) {
	in := "1,0.5,0.6\n2,0.7,0.8\n"
	series, labels, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || labels[1] != 2 || series[1][1] != 0.8 {
		t.Fatalf("parsed %v %v", series, labels)
	}
}

func TestReadTSVErrors(t *testing.T) {
	if _, _, err := ReadTSV(strings.NewReader("notanumber\t1\n")); err == nil {
		t.Error("expected error for bad label")
	}
	if _, _, err := ReadTSV(strings.NewReader("1\tabc\n")); err == nil {
		t.Error("expected error for bad value")
	}
	if _, _, err := ReadTSV(strings.NewReader("1\n")); err == nil {
		t.Error("expected error for label-only line")
	}
}

func TestSaveLoadUCR(t *testing.T) {
	dir := t.TempDir()
	d := Generate(Config{
		Name: "RoundTrip", Family: FamilyHarmonic, Length: 32,
		NumClasses: 2, TrainSize: 6, TestSize: 4, Seed: 1, NoiseSigma: 0.1,
	})
	if err := SaveUCR(dir, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadUCR(dir, "RoundTrip")
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.Length() != 32 || len(got.Train) != 6 || len(got.Test) != 4 {
		t.Fatalf("loaded shape: len=%d train=%d test=%d", got.Length(), len(got.Train), len(got.Test))
	}
	for i := range d.Train {
		for j := range d.Train[i] {
			if math.Abs(d.Train[i][j]-got.Train[i][j]) > 1e-9 {
				t.Fatalf("train[%d][%d] = %g, want %g", i, j, got.Train[i][j], d.Train[i][j])
			}
		}
	}
}

func TestLoadUCRResamplesAndFills(t *testing.T) {
	dir := t.TempDir()
	// Hand-write a dataset with a short series and a missing value.
	base := dir + "/Ragged"
	if err := SaveUCR(dir, &Dataset{
		Name:        "Ragged",
		Train:       [][]float64{{1, 2, 3, 4}, {5, 6}},
		TrainLabels: []int{1, 2},
		Test:        [][]float64{{1, math.NaN(), 3, 4}},
		TestLabels:  []int{1},
	}); err != nil {
		t.Fatal(err)
	}
	_ = base
	got, err := LoadUCR(dir, "Ragged")
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("loaded dataset invalid: %v", err)
	}
	if got.Length() != 4 {
		t.Fatalf("length = %d, want 4 (longest)", got.Length())
	}
	if got.Test[0][1] != 2 {
		t.Fatalf("missing value not interpolated: %v", got.Test[0])
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{
		Name: "Det", Family: FamilyECG, Length: 64, NumClasses: 3,
		TrainSize: 9, TestSize: 6, Seed: 42, NoiseSigma: 0.2, ShiftFrac: 0.1,
	}
	a := Generate(cfg)
	b := Generate(cfg)
	for i := range a.Train {
		for j := range a.Train[i] {
			if a.Train[i][j] != b.Train[i][j] {
				t.Fatal("generation not deterministic")
			}
		}
	}
}

func TestGenerateAllFamiliesValid(t *testing.T) {
	for fam := Family(0); fam < numFamilies; fam++ {
		cfg := Config{
			Name: "F" + fam.String(), Family: fam, Length: 50, NumClasses: 4,
			TrainSize: 8, TestSize: 8, Seed: int64(fam), NoiseSigma: 0.2,
			ShiftFrac: 0.1, WarpFrac: 0.1, OutlierProb: 0.01, AmpJitter: 0.2,
		}
		d := Generate(cfg)
		if err := d.Validate(); err != nil {
			t.Errorf("family %s: %v", fam, err)
		}
		if d.NumClasses() != 4 {
			t.Errorf("family %s: %d classes, want 4", fam, d.NumClasses())
		}
	}
}

func TestGenerateBalancedLabels(t *testing.T) {
	d := Generate(Config{
		Name: "Bal", Family: FamilyShapes, Length: 40, NumClasses: 2,
		TrainSize: 10, TestSize: 10, Seed: 5, NoiseSigma: 0.1,
	})
	counts := map[int]int{}
	for _, l := range d.TrainLabels {
		counts[l]++
	}
	if counts[1] != 5 || counts[2] != 5 {
		t.Fatalf("unbalanced labels: %v", counts)
	}
}

func TestGenerateSeriesAreZNormalized(t *testing.T) {
	d := Generate(Config{
		Name: "ZN", Family: FamilyBumps, Length: 64, NumClasses: 2,
		TrainSize: 4, TestSize: 4, Seed: 9, NoiseSigma: 0.3,
	})
	for _, s := range d.Train {
		var mean float64
		for _, v := range s {
			mean += v
		}
		mean /= float64(len(s))
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("series mean %g, want 0", mean)
		}
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(Config{Name: "Bad", Length: 4, NumClasses: 1, TrainSize: 1, TestSize: 1})
}

func TestCircularShift(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	got := circularShift(x, 1)
	want := []float64{4, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shift +1 = %v, want %v", got, want)
		}
	}
	got = circularShift(x, -1)
	want = []float64{2, 3, 4, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shift -1 = %v, want %v", got, want)
		}
	}
	// Full rotation is identity.
	got = circularShift(x, 4)
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("shift by length = %v", got)
		}
	}
}

func TestWarpPreservesLengthAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := make([]float64, 100)
	for i := range x {
		x[i] = math.Sin(float64(i) / 5)
	}
	w := warp(x, 0.3, rng)
	if len(w) != len(x) {
		t.Fatalf("warp changed length: %d", len(w))
	}
	for _, v := range w {
		if v < -1.001 || v > 1.001 {
			t.Fatalf("warp out of range: %g", v)
		}
	}
}

func TestGenerateArchive(t *testing.T) {
	archive := GenerateArchive(ArchiveOptions{Seed: 1, Count: 16, MaxLength: 128, MaxTrain: 24, MaxTest: 32})
	if len(archive) != 16 {
		t.Fatalf("archive size %d, want 16", len(archive))
	}
	names := map[string]bool{}
	for _, d := range archive {
		if err := d.Validate(); err != nil {
			t.Errorf("dataset %s: %v", d.Name, err)
		}
		if names[d.Name] {
			t.Errorf("duplicate dataset name %s", d.Name)
		}
		names[d.Name] = true
		if d.Length() > 128 || len(d.Train) > 24 || len(d.Test) > 32 {
			t.Errorf("dataset %s exceeds caps: len=%d train=%d test=%d",
				d.Name, d.Length(), len(d.Train), len(d.Test))
		}
		if d.NumClasses() < 2 {
			t.Errorf("dataset %s has %d classes", d.Name, d.NumClasses())
		}
	}
}

func TestGenerateArchiveDeterministic(t *testing.T) {
	a := GenerateArchive(ArchiveOptions{Seed: 7, Count: 4})
	b := GenerateArchive(ArchiveOptions{Seed: 7, Count: 4})
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatal("archive names differ")
		}
		for j := range a[i].Train {
			for k := range a[i].Train[j] {
				if a[i].Train[j][k] != b[i].Train[j][k] {
					t.Fatal("archive not deterministic")
				}
			}
		}
	}
}

func TestSubsetTrain(t *testing.T) {
	d := Generate(Config{
		Name: "Sub", Family: FamilyHarmonic, Length: 32, NumClasses: 2,
		TrainSize: 10, TestSize: 4, Seed: 3, NoiseSigma: 0.1,
	})
	s := d.SubsetTrain(4)
	if len(s.Train) != 4 || len(s.TrainLabels) != 4 {
		t.Fatalf("subset sizes: %d/%d", len(s.Train), len(s.TrainLabels))
	}
	if len(s.Test) != 4 {
		t.Fatal("test split must be untouched")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversize subset")
		}
	}()
	d.SubsetTrain(11)
}

func TestCloneIndependence(t *testing.T) {
	d := Generate(Config{
		Name: "Clone", Family: FamilyDevice, Length: 32, NumClasses: 2,
		TrainSize: 4, TestSize: 2, Seed: 8, NoiseSigma: 0.1,
	})
	c := d.Clone()
	c.Train[0][0] = 999
	c.TrainLabels[0] = 99
	if d.Train[0][0] == 999 || d.TrainLabels[0] == 99 {
		t.Fatal("clone shares storage with original")
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	d := &Dataset{Name: "Bad", Train: [][]float64{{1, 2}}, TrainLabels: []int{1, 2}}
	if d.Validate() == nil {
		t.Error("label count mismatch not caught")
	}
	d = &Dataset{Name: "Bad", Train: [][]float64{{1, 2}, {1}}, TrainLabels: []int{1, 2}}
	if d.Validate() == nil {
		t.Error("ragged series not caught")
	}
	d = &Dataset{Name: "Bad", Train: [][]float64{{1, math.NaN()}}, TrainLabels: []int{1}}
	if d.Validate() == nil {
		t.Error("NaN not caught")
	}
}

func TestMovingAverage(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	got := movingAverage(x, 2)
	want := []float64{1, 1.5, 2.5, 3.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("movingAverage = %v, want %v", got, want)
		}
	}
	// Window 1 is identity.
	same := movingAverage(x, 1)
	for i := range x {
		if same[i] != x[i] {
			t.Fatal("window 1 should be identity")
		}
	}
}

// TestReadTSVLineEndings is the regression test for non-LF exports: CRLF
// files must not leave a stray CR in the last field, and lone-CR (classic
// Mac) files must not collapse into a single giant line.
func TestReadTSVLineEndings(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"crlf", "1\t0.5\t0.6\r\n2\t0.7\t0.8\r\n"},
		{"cr-only", "1\t0.5\t0.6\r2\t0.7\t0.8\r"},
		{"cr-no-final", "1\t0.5\t0.6\r2\t0.7\t0.8"},
		{"mixed", "1\t0.5\t0.6\r\n2\t0.7\t0.8\n"},
	}
	for _, c := range cases {
		series, labels, err := ReadTSV(strings.NewReader(c.in))
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if len(series) != 2 || labels[0] != 1 || labels[1] != 2 {
			t.Errorf("%s: parsed %d series, labels %v, want 2 series [1 2]", c.name, len(series), labels)
			continue
		}
		if len(series[0]) != 2 || series[0][1] != 0.6 || series[1][1] != 0.8 {
			t.Errorf("%s: parsed series %v", c.name, series)
		}
	}
}

// TestReadTSVTrailingSeparators ensures a separator before the line ending
// does not append a phantom missing value to the series.
func TestReadTSVTrailingSeparators(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"trailing-tab", "1\t0.5\t0.6\t\n"},
		{"trailing-tabs", "1\t0.5\t0.6\t\t\n"},
		{"trailing-comma", "1,0.5,0.6,\n"},
		{"trailing-tab-crlf", "1\t0.5\t0.6\t\r\n"},
		{"trailing-space", "1\t0.5\t0.6 \n"},
	}
	for _, c := range cases {
		series, _, err := ReadTSV(strings.NewReader(c.in))
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if len(series) != 1 || len(series[0]) != 2 {
			t.Errorf("%s: parsed %v, want one series of length 2", c.name, series)
			continue
		}
		if series[0][0] != 0.5 || series[0][1] != 0.6 {
			t.Errorf("%s: parsed %v", c.name, series[0])
		}
	}
}

// TestReadTSVAllMissingRow pins the all-NaN-row contract: a series with no
// observed values cannot be interpolated and must fail loudly at parse time
// instead of flowing NaN into every downstream distance.
func TestReadTSVAllMissingRow(t *testing.T) {
	if _, _, err := ReadTSV(strings.NewReader("1\tNaN\tNaN\tNaN\n")); err == nil {
		t.Error("expected error for all-NaN row")
	}
	if _, _, err := ReadTSV(strings.NewReader("1,NaN,,NaN\n")); err == nil {
		t.Error("expected error for all-missing row with empty fields")
	}
	// Partially missing rows remain legal: interpolation handles them.
	series, _, err := ReadTSV(strings.NewReader("1\tNaN\t0.5\tNaN\n"))
	if err != nil {
		t.Fatalf("partially missing row: %v", err)
	}
	if len(series) != 1 || !math.IsNaN(series[0][0]) || series[0][1] != 0.5 {
		t.Errorf("parsed %v", series)
	}
}
