package dataset

import (
	"math"
	"strings"
	"testing"

	"repro/internal/multivariate"
)

func TestReadMVTSVWideLayout(t *testing.T) {
	in := "1\t2\t0.5\t1.5\t2.5\t3.5\n" + // 2 channels, 2 time points
		"2\t2\tNaN\t1\t\t2\t3\t4\n" // missing samples, 3 time points (ragged)
	series, labels, err := ReadMVTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || labels[0] != 1 || labels[1] != 2 {
		t.Fatalf("series=%d labels=%v", len(series), labels)
	}
	if len(series[0]) != 2 || series[0].Channels() != 2 {
		t.Fatalf("series 0 shape %dx%d", len(series[0]), series[0].Channels())
	}
	if series[0][1][0] != 2.5 || series[0][1][1] != 3.5 {
		t.Fatalf("series 0 = %v", series[0])
	}
	if len(series[1]) != 3 {
		t.Fatalf("ragged series length %d, want 3", len(series[1]))
	}
	if !math.IsNaN(series[1][0][0]) || !math.IsNaN(series[1][1][0]) || series[1][1][1] != 2 {
		t.Fatalf("missing markers misplaced: %v", series[1])
	}
}

func TestReadMVTSVRejectsBadRows(t *testing.T) {
	cases := []string{
		"1\t2\t0.5\t1.5\t2.5\n",       // 3 values, 2 channels
		"1\t0\t0.5\n",                 // zero channels
		"1\t2\t1\t2\n2\t3\t1\t2\t3\n", // rows disagree on channel count
		"1\n",                         // no channel count
		"1\t2\tfoo\tbar\n",            // unparseable value
	}
	for _, in := range cases {
		if _, _, err := ReadMVTSV(strings.NewReader(in)); err == nil {
			t.Errorf("accepted bad input %q", in)
		}
	}
}

func TestMVTSVRoundTrip(t *testing.T) {
	series := []multivariate.Series{
		{{1, -2.5}, {math.NaN(), 3}, {0.25, math.Inf(1)}},
		{{4, 5}},
	}
	labels := []int{3, 1}
	var b strings.Builder
	if err := WriteMVTSV(&b, series, labels); err != nil {
		t.Fatal(err)
	}
	got, gotLabels, err := ReadMVTSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || gotLabels[0] != 3 || gotLabels[1] != 1 {
		t.Fatalf("round trip: %d series, labels %v", len(got), gotLabels)
	}
	for i := range series {
		for tt := range series[i] {
			for c := range series[i][tt] {
				a, b := series[i][tt][c], got[i][tt][c]
				if math.Float64bits(a) != math.Float64bits(b) && !(math.IsNaN(a) && math.IsNaN(b)) {
					t.Fatalf("series %d [%d][%d]: wrote %v read %v", i, tt, c, a, b)
				}
			}
		}
	}
}

func TestMVUCRLayoutRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := multivariate.Generate(multivariate.GenConfig{
		Name: "MVRT", Length: 16, Channels: 2, NumClasses: 2,
		TrainSize: 4, TestSize: 2, Seed: 3, NoiseSigma: 0.1,
		MissingFrac: 0.2,
	})
	if err := SaveMVUCR(dir, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMVUCR(dir, "MVRT")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Train) != 4 || len(got.Test) != 2 {
		t.Fatalf("split sizes %d/%d", len(got.Train), len(got.Test))
	}
	for i := range d.Train {
		for tt := range d.Train[i] {
			for c := range d.Train[i][tt] {
				a, b := d.Train[i][tt][c], got.Train[i][tt][c]
				if math.Float64bits(a) != math.Float64bits(b) && !(math.IsNaN(a) && math.IsNaN(b)) {
					t.Fatalf("train %d [%d][%d]: %v != %v", i, tt, c, a, b)
				}
			}
		}
	}
}
