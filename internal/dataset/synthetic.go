package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Family enumerates the synthetic generator families, chosen to mirror the
// data sources of the UCR archive (sensor readings, image outlines, motion,
// spectrographs, medical signals, electric devices, simulated data).
type Family int

const (
	FamilyHarmonic Family = iota // sensor-like harmonic mixtures
	FamilyBumps                  // Gaussian bumps at class positions
	FamilyCBF                    // cylinder-bell-funnel (simulated classic)
	FamilyShapes                 // square/triangle/saw outlines
	FamilyECG                    // spike-complex medical signals
	FamilySpectro                // smooth spectral envelopes
	FamilyDevice                 // piecewise-constant device loads
	FamilyWalk                   // random-walk trends with class drift
	numFamilies
)

// String returns the family name.
func (f Family) String() string {
	switch f {
	case FamilyHarmonic:
		return "Harmonic"
	case FamilyBumps:
		return "Bumps"
	case FamilyCBF:
		return "CBF"
	case FamilyShapes:
		return "Shapes"
	case FamilyECG:
		return "ECG"
	case FamilySpectro:
		return "Spectro"
	case FamilyDevice:
		return "Device"
	case FamilyWalk:
		return "Walk"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Config describes one synthetic dataset: its generator family, shape, and
// the per-instance distortions applied on top of the class prototypes.
type Config struct {
	Name       string
	Family     Family
	Length     int
	NumClasses int
	TrainSize  int
	TestSize   int
	Seed       int64

	NoiseSigma  float64 // additive Gaussian noise level
	ShiftFrac   float64 // max circular shift as a fraction of the length
	WarpFrac    float64 // strength of smooth local time warping (0 = none)
	OutlierProb float64 // per-point probability of an impulsive outlier
	AmpJitter   float64 // multiplicative amplitude jitter range
}

// Generate builds the dataset described by the config. Generation is fully
// deterministic given the config (including Seed). Series are returned
// z-normalized, matching the archive's published form.
func Generate(cfg Config) *Dataset {
	if cfg.Length < 8 || cfg.NumClasses < 2 || cfg.TrainSize < cfg.NumClasses || cfg.TestSize < 1 {
		panic(fmt.Sprintf("dataset: invalid config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	protos := make([][]float64, cfg.NumClasses)
	for c := range protos {
		protos[c] = prototype(cfg, c, rng)
	}
	d := &Dataset{Name: cfg.Name}
	gen := func(count int) ([][]float64, []int) {
		series := make([][]float64, count)
		labels := make([]int, count)
		for i := 0; i < count; i++ {
			c := i % cfg.NumClasses // balanced class distribution
			labels[i] = c + 1       // UCR labels are 1-based
			series[i] = ZNormalize(distort(protos[c], cfg, rng))
		}
		return series, labels
	}
	d.Train, d.TrainLabels = gen(cfg.TrainSize)
	d.Test, d.TestLabels = gen(cfg.TestSize)
	return d
}

// prototype builds the noiseless class template for class c.
func prototype(cfg Config, c int, rng *rand.Rand) []float64 {
	m := cfg.Length
	x := make([]float64, m)
	switch cfg.Family {
	case FamilyHarmonic:
		// Class-specific fundamental plus two harmonics with random phases.
		f0 := 1.5 + float64(c)*0.9 + rng.Float64()*0.3
		p0, p1, p2 := rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi
		a1, a2 := 0.4+0.3*rng.Float64(), 0.2+0.2*rng.Float64()
		for i := range x {
			t := float64(i) / float64(m)
			x[i] = math.Sin(2*math.Pi*f0*t+p0) +
				a1*math.Sin(2*math.Pi*2*f0*t+p1) +
				a2*math.Sin(2*math.Pi*3*f0*t+p2)
		}
	case FamilyBumps:
		// One to three Gaussian bumps at class-dependent positions.
		bumps := 1 + c%3
		for b := 0; b < bumps; b++ {
			center := float64(m) * (0.15 + 0.7*(float64(c+1)*0.37+float64(b)*0.23-
				math.Floor(float64(c+1)*0.37+float64(b)*0.23)))
			width := float64(m) * (0.03 + 0.05*rng.Float64())
			amp := 1.0 + 0.5*rng.Float64()
			if b%2 == 1 {
				amp = -amp
			}
			for i := range x {
				d := (float64(i) - center) / width
				x[i] += amp * math.Exp(-0.5*d*d)
			}
		}
	case FamilyCBF:
		// Cylinder-bell-funnel: onsets/offsets drawn per class prototype.
		a := m/8 + rng.Intn(m/8)
		b := m - m/8 - rng.Intn(m/8)
		for i := a; i < b; i++ {
			switch c % 3 {
			case 0: // cylinder
				x[i] = 1
			case 1: // bell: ramp up
				x[i] = float64(i-a) / float64(b-a)
			default: // funnel: ramp down
				x[i] = float64(b-i) / float64(b-a)
			}
		}
		if c >= 3 { // extra classes invert the pattern
			for i := range x {
				x[i] = -x[i]
			}
		}
	case FamilyShapes:
		// Periodic square / triangle / sawtooth with class duty cycle.
		period := float64(m) / (2 + float64(c%4))
		duty := 0.3 + 0.1*float64(c%5)
		for i := range x {
			phase := math.Mod(float64(i), period) / period
			switch c % 3 {
			case 0: // square
				if phase < duty {
					x[i] = 1
				} else {
					x[i] = -1
				}
			case 1: // triangle
				x[i] = 1 - 4*math.Abs(phase-0.5)
			default: // sawtooth
				x[i] = 2*phase - 1
			}
		}
	case FamilyECG:
		// Repeating spike complexes; class controls spike width/amplitude mix.
		period := m / (3 + c%3)
		if period < 8 {
			period = 8
		}
		spikeW := 1 + c%4
		for start := period / 2; start+2*spikeW+2 < m; start += period {
			// R-like spike up then S-like dip, widths class-dependent.
			for k := 0; k <= spikeW; k++ {
				frac := float64(k) / float64(spikeW)
				if start+k < m {
					x[start+k] += (1.5 + 0.3*float64(c)) * (1 - frac)
				}
				if start+spikeW+k < m {
					x[start+spikeW+k] -= 0.7 * (1 - frac)
				}
			}
			// T-like smooth wave after the complex.
			tw := period / 4
			for k := 0; k < tw && start+2*spikeW+k < m; k++ {
				x[start+2*spikeW+k] += 0.4 * math.Sin(math.Pi*float64(k)/float64(tw))
			}
		}
	case FamilySpectro:
		// Smooth envelope: mixture of wide Gaussians, classes move the peaks.
		peaks := 2 + c%3
		for pk := 0; pk < peaks; pk++ {
			center := float64(m) * (float64(pk+1) + 0.4*float64(c)) / (float64(peaks) + 2)
			width := float64(m) * (0.08 + 0.04*rng.Float64())
			amp := 0.8 + 0.4*rng.Float64() + 0.2*float64(c%2)
			for i := range x {
				d := (float64(i) - center) / width
				x[i] += amp * math.Exp(-0.5*d*d)
			}
		}
	case FamilyDevice:
		// Piecewise-constant loads: class controls on-duration and level.
		on := m/10 + c*m/20
		if on < 2 {
			on = 2
		}
		off := m/8 + (c%2)*m/16
		if off < 2 {
			off = 2
		}
		level := 1.0 + 0.5*float64(c)
		i := rng.Intn(off)
		for i < m {
			for k := 0; k < on && i < m; k, i = k+1, i+1 {
				x[i] = level
			}
			i += off
		}
	case FamilyWalk:
		// Smoothed random walk plus class-dependent drift and curvature.
		drift := (float64(c) - float64(cfg.NumClasses-1)/2) * 3 / float64(m)
		curv := float64(c%3-1) * 4 / float64(m*m)
		v := 0.0
		for i := range x {
			v += rng.NormFloat64() * 0.15
			x[i] = v + drift*float64(i) + curv*float64(i)*float64(i)
		}
		x = movingAverage(x, 1+m/32)
	default:
		panic(fmt.Sprintf("dataset: unknown family %d", cfg.Family))
	}
	return x
}

// distort applies the per-instance distortions: smooth local time warping,
// circular shift, amplitude jitter, Gaussian noise, and impulsive outliers.
func distort(proto []float64, cfg Config, rng *rand.Rand) []float64 {
	m := len(proto)
	x := proto
	if cfg.WarpFrac > 0 {
		x = warp(x, cfg.WarpFrac, rng)
	} else {
		x = append([]float64(nil), x...)
	}
	if cfg.ShiftFrac > 0 {
		maxShift := int(cfg.ShiftFrac * float64(m))
		if maxShift > 0 {
			shift := rng.Intn(2*maxShift+1) - maxShift
			x = circularShift(x, shift)
		}
	}
	amp := 1.0
	if cfg.AmpJitter > 0 {
		amp = 1 + cfg.AmpJitter*(2*rng.Float64()-1)
	}
	for i := range x {
		x[i] = amp*x[i] + cfg.NoiseSigma*rng.NormFloat64()
		if cfg.OutlierProb > 0 && rng.Float64() < cfg.OutlierProb {
			x[i] += (4 + 4*rng.Float64()) * sign(rng)
		}
	}
	return x
}

func sign(rng *rand.Rand) float64 {
	if rng.Intn(2) == 0 {
		return -1
	}
	return 1
}

// warp resamples x along a smooth monotone warp map built from cumulative
// positive increments, stretching and shrinking local regions by up to
// roughly +/- strength.
func warp(x []float64, strength float64, rng *rand.Rand) []float64 {
	m := len(x)
	// Low-frequency perturbation of the sampling speed.
	f := 1 + rng.Intn(3)
	phase := rng.Float64() * 2 * math.Pi
	inc := make([]float64, m)
	var total float64
	for i := range inc {
		inc[i] = math.Exp(strength * 2 * math.Sin(2*math.Pi*float64(f)*float64(i)/float64(m)+phase))
		total += inc[i]
	}
	out := make([]float64, m)
	pos := 0.0
	scale := float64(m-1) / total
	cum := 0.0
	for i := range out {
		pos = cum * scale
		lo := int(pos)
		if lo >= m-1 {
			out[i] = x[m-1]
		} else {
			frac := pos - float64(lo)
			out[i] = x[lo]*(1-frac) + x[lo+1]*frac
		}
		cum += inc[i]
	}
	return out
}

// circularShift rotates x right by shift positions (left for negative).
func circularShift(x []float64, shift int) []float64 {
	m := len(x)
	if m == 0 {
		return x
	}
	shift = ((shift % m) + m) % m
	if shift == 0 {
		return x
	}
	out := make([]float64, m)
	for i := range x {
		out[(i+shift)%m] = x[i]
	}
	return out
}

func movingAverage(x []float64, w int) []float64 {
	if w <= 1 {
		return x
	}
	out := make([]float64, len(x))
	var sum float64
	count := 0
	for i := range x {
		sum += x[i]
		count++
		if i >= w {
			sum -= x[i-w]
			count--
		}
		out[i] = sum / float64(count)
	}
	return out
}

// ArchiveOptions controls synthetic archive generation.
type ArchiveOptions struct {
	Seed      int64
	Count     int // number of datasets (the paper's archive has 128)
	MaxLength int // cap on series length (0 = default 512)
	MaxTrain  int // cap on training-set size (0 = default 64)
	MaxTest   int // cap on test-set size (0 = default 128)
}

// GenerateArchive builds a deterministic synthetic archive of Count
// datasets with varied families, lengths, class counts, split sizes, and
// distortion profiles, standing in for the UCR Time-Series Archive. The
// distortion profile rotates so that roughly a third of the datasets are
// alignment-free (lock-step-friendly), a third are shift-dominated
// (sliding-friendly), and a third are warp-dominated (elastic-friendly),
// with heavy-tailed noise on a subset — reproducing the phenomena the
// paper's findings rest on.
func GenerateArchive(opts ArchiveOptions) []*Dataset {
	if opts.Count <= 0 {
		opts.Count = 128
	}
	maxLen := opts.MaxLength
	if maxLen <= 0 {
		maxLen = 512
	}
	maxTrain := opts.MaxTrain
	if maxTrain <= 0 {
		maxTrain = 64
	}
	maxTest := opts.MaxTest
	if maxTest <= 0 {
		maxTest = 128
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	datasets := make([]*Dataset, opts.Count)
	for i := range datasets {
		fam := Family(i % int(numFamilies))
		length := 60 + rng.Intn(197) // 60..256
		if length > maxLen {
			length = maxLen
		}
		classes := 2 + rng.Intn(5) // 2..6
		train := classes * (4 + rng.Intn(9))
		if train > maxTrain {
			train = maxTrain - maxTrain%classes
			if train < classes {
				train = classes
			}
		}
		test := classes * (6 + rng.Intn(13))
		if test > maxTest {
			test = maxTest
		}
		cfg := Config{
			Name:       fmt.Sprintf("Syn%s%03d", fam, i),
			Family:     fam,
			Length:     length,
			NumClasses: classes,
			TrainSize:  train,
			TestSize:   test,
			Seed:       opts.Seed*1_000_003 + int64(i)*7919,
			NoiseSigma: 0.15 + 0.35*rng.Float64(),
			AmpJitter:  0.1 + 0.2*rng.Float64(),
		}
		// Rotate the distortion profile (see doc comment).
		switch i % 3 {
		case 0: // lock-step friendly: no alignment distortion
			cfg.ShiftFrac, cfg.WarpFrac = 0, 0
		case 1: // shift-dominated
			cfg.ShiftFrac = 0.1 + 0.25*rng.Float64()
			cfg.WarpFrac = 0.05 * rng.Float64()
		default: // warp-dominated
			cfg.ShiftFrac = 0.05 * rng.Float64()
			cfg.WarpFrac = 0.15 + 0.25*rng.Float64()
		}
		// Heavy-tailed noise on a quarter of the datasets (favours L1-family
		// over ED, as in Table 2).
		if i%4 == 3 {
			cfg.OutlierProb = 0.01 + 0.02*rng.Float64()
		}
		datasets[i] = Generate(cfg)
	}
	return datasets
}
