package dataset

// Multivariate panel I/O: the wide tab-separated layout used for
// multivariate archives. One series per line; the first field is the
// integer class label, the second the channel count d, and the remaining
// fields are the observations in time-major order (t0c0 t0c1 ... t1c0
// ...). Empty interior fields and "NaN" mark missing samples — the masked
// measures consume them directly, so unlike the univariate reader no
// interpolation is applied and an all-missing series is accepted. Series
// lengths may vary across rows (the dependent elastic measures run m-by-n
// DPs), but every row must declare the same channel count and its value
// count must divide evenly by it.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/multivariate"
)

// ReadMVTSV parses one multivariate split in the wide layout.
func ReadMVTSV(r io.Reader) (series []multivariate.Series, labels []int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	sc.Split(scanLinesAnyEnding)
	line := 0
	channels := -1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		sep := "\t"
		if !strings.Contains(text, "\t") {
			sep = ","
		}
		fields := strings.Split(text, sep)
		for len(fields) > 0 && strings.TrimSpace(fields[len(fields)-1]) == "" {
			fields = fields[:len(fields)-1]
		}
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("dataset: line %d: need a label and a channel count", line)
		}
		labelFloat, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: line %d: bad label %q: %v", line, fields[0], err)
		}
		d, err := strconv.Atoi(strings.TrimSpace(fields[1]))
		if err != nil || d < 1 {
			return nil, nil, fmt.Errorf("dataset: line %d: bad channel count %q", line, fields[1])
		}
		if channels == -1 {
			channels = d
		} else if d != channels {
			return nil, nil, fmt.Errorf("dataset: line %d: channel count %d, want %d (all rows must agree)", line, d, channels)
		}
		values := fields[2:]
		if len(values)%d != 0 {
			return nil, nil, fmt.Errorf("dataset: line %d: %d values not divisible by %d channels", line, len(values), d)
		}
		n := len(values) / d
		s := make(multivariate.Series, n)
		for t := 0; t < n; t++ {
			s[t] = make([]float64, d)
			for c := 0; c < d; c++ {
				f := strings.TrimSpace(values[t*d+c])
				if f == "" || strings.EqualFold(f, "nan") {
					s[t][c] = math.NaN()
					continue
				}
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, nil, fmt.Errorf("dataset: line %d: bad value %q: %v", line, f, err)
				}
				s[t][c] = v
			}
		}
		series = append(series, s)
		labels = append(labels, int(labelFloat))
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("dataset: scan: %v", err)
	}
	return series, labels, nil
}

// WriteMVTSV writes multivariate series in the wide layout ReadMVTSV
// parses. Every series must share one channel count; empty series are
// rejected (they carry no channel count to declare).
func WriteMVTSV(w io.Writer, series []multivariate.Series, labels []int) error {
	if len(series) != len(labels) {
		return fmt.Errorf("dataset: %d series, %d labels", len(series), len(labels))
	}
	channels := -1
	for i, s := range series {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("dataset: series %d: %v", i, err)
		}
		if channels == -1 {
			channels = s.Channels()
		} else if s.Channels() != channels {
			return fmt.Errorf("dataset: series %d has %d channels, want %d", i, s.Channels(), channels)
		}
	}
	bw := bufio.NewWriter(w)
	for i, s := range series {
		if _, err := fmt.Fprintf(bw, "%d\t%d", labels[i], s.Channels()); err != nil {
			return err
		}
		for t := range s {
			for _, v := range s[t] {
				var field string
				if math.IsNaN(v) {
					field = "NaN"
				} else {
					field = strconv.FormatFloat(v, 'g', -1, 64)
				}
				if _, err := bw.WriteString("\t" + field); err != nil {
					return err
				}
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadMVUCR loads a multivariate dataset directory laid out as
// dir/Name/Name_TRAIN.tsv and dir/Name/Name_TEST.tsv in the wide layout.
// Missing samples stay NaN for the masked measures; no resampling is
// applied. The two splits must agree on channel count.
func LoadMVUCR(dir, name string) (*multivariate.Dataset, error) {
	load := func(split string) ([]multivariate.Series, []int, error) {
		path := filepath.Join(dir, name, fmt.Sprintf("%s_%s.tsv", name, split))
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		return ReadMVTSV(f)
	}
	train, trainLabels, err := load("TRAIN")
	if err != nil {
		return nil, fmt.Errorf("dataset: load %s train: %w", name, err)
	}
	test, testLabels, err := load("TEST")
	if err != nil {
		return nil, fmt.Errorf("dataset: load %s test: %w", name, err)
	}
	if len(train) > 0 && len(test) > 0 && train[0].Channels() != test[0].Channels() {
		return nil, fmt.Errorf("dataset: %s: train has %d channels, test %d",
			name, train[0].Channels(), test[0].Channels())
	}
	return &multivariate.Dataset{
		Name: name,
		Train: train, TrainLabels: trainLabels,
		Test: test, TestLabels: testLabels,
	}, nil
}

// SaveMVUCR writes the multivariate dataset in the directory layout
// LoadMVUCR reads.
func SaveMVUCR(dir string, d *multivariate.Dataset) error {
	base := filepath.Join(dir, d.Name)
	if err := os.MkdirAll(base, 0o755); err != nil {
		return err
	}
	write := func(split string, series []multivariate.Series, labels []int) error {
		path := filepath.Join(base, fmt.Sprintf("%s_%s.tsv", d.Name, split))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		return WriteMVTSV(f, series, labels)
	}
	if err := write("TRAIN", d.Train, d.TrainLabels); err != nil {
		return err
	}
	return write("TEST", d.Test, d.TestLabels)
}
