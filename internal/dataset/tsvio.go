package dataset

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// ReadTSV parses one split in the UCR tab-separated format: one series per
// line, the first field being the integer class label, the remaining fields
// the observations. Empty interior fields and "NaN" become NaN (later
// interpolated); trailing separators are ignored. Both tabs and commas are
// accepted as separators and all three line-ending conventions (LF, CRLF,
// lone CR) are recognized, matching the layouts found in archive releases.
// A row whose observations are all missing cannot be interpolated and is
// rejected with an error.
func ReadTSV(r io.Reader) (series [][]float64, labels []int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	sc.Split(scanLinesAnyEnding)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		sep := "\t"
		if !strings.Contains(text, "\t") {
			sep = ","
		}
		fields := strings.Split(text, sep)
		// Trailing separators (a tab or comma before the line ending) yield
		// empty tail fields that are artifacts, not missing observations.
		for len(fields) > 0 && strings.TrimSpace(fields[len(fields)-1]) == "" {
			fields = fields[:len(fields)-1]
		}
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("dataset: line %d: need a label and at least one value", line)
		}
		labelFloat, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: line %d: bad label %q: %v", line, fields[0], err)
		}
		s := make([]float64, 0, len(fields)-1)
		missing := 0
		for _, f := range fields[1:] {
			f = strings.TrimSpace(f)
			if f == "" || strings.EqualFold(f, "nan") {
				s = append(s, math.NaN())
				missing++
				continue
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("dataset: line %d: bad value %q: %v", line, f, err)
			}
			s = append(s, v)
		}
		if missing == len(s) {
			return nil, nil, fmt.Errorf("dataset: line %d: series has no observed values (all %d missing)", line, missing)
		}
		series = append(series, s)
		labels = append(labels, int(labelFloat))
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("dataset: scan: %v", err)
	}
	return series, labels, nil
}

// scanLinesAnyEnding is a bufio.SplitFunc that terminates lines on LF, CRLF,
// or lone CR (classic Mac exports). bufio.ScanLines only strips the CR of a
// CRLF pair, so a CR-only file would arrive as one giant line.
func scanLinesAnyEnding(data []byte, atEOF bool) (advance int, token []byte, err error) {
	if atEOF && len(data) == 0 {
		return 0, nil, nil
	}
	if i := bytes.IndexAny(data, "\r\n"); i >= 0 {
		if data[i] == '\n' {
			return i + 1, data[:i], nil
		}
		// data[i] == '\r': swallow a following LF when present; if the CR is
		// the last byte of a non-final chunk, wait for more data to decide.
		if i+1 < len(data) {
			if data[i+1] == '\n' {
				return i + 2, data[:i], nil
			}
			return i + 1, data[:i], nil
		}
		if atEOF {
			return i + 1, data[:i], nil
		}
		return 0, nil, nil
	}
	if atEOF {
		return len(data), data, nil
	}
	return 0, nil, nil
}

// WriteTSV writes series in the UCR tab-separated format.
func WriteTSV(w io.Writer, series [][]float64, labels []int) error {
	if len(series) != len(labels) {
		return fmt.Errorf("dataset: %d series, %d labels", len(series), len(labels))
	}
	bw := bufio.NewWriter(w)
	for i, s := range series {
		if _, err := fmt.Fprintf(bw, "%d", labels[i]); err != nil {
			return err
		}
		for _, v := range s {
			var field string
			if math.IsNaN(v) {
				field = "NaN"
			} else {
				field = strconv.FormatFloat(v, 'g', -1, 64)
			}
			if _, err := bw.WriteString("\t" + field); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadUCR loads a UCR-archive dataset directory laid out as
// dir/Name/Name_TRAIN.tsv and dir/Name/Name_TEST.tsv, applying the paper's
// preprocessing: missing values filled by linear interpolation and all
// series resampled to the longest length in the dataset.
func LoadUCR(dir, name string) (*Dataset, error) {
	load := func(split string) ([][]float64, []int, error) {
		path := filepath.Join(dir, name, fmt.Sprintf("%s_%s.tsv", name, split))
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		return ReadTSV(f)
	}
	train, trainLabels, err := load("TRAIN")
	if err != nil {
		return nil, fmt.Errorf("dataset: load %s train: %w", name, err)
	}
	test, testLabels, err := load("TEST")
	if err != nil {
		return nil, fmt.Errorf("dataset: load %s test: %w", name, err)
	}
	d := &Dataset{Name: name, Train: train, TrainLabels: trainLabels, Test: test, TestLabels: testLabels}
	normalizeLengths(d)
	return d, nil
}

// SaveUCR writes the dataset in the UCR directory layout under dir.
func SaveUCR(dir string, d *Dataset) error {
	base := filepath.Join(dir, d.Name)
	if err := os.MkdirAll(base, 0o755); err != nil {
		return err
	}
	write := func(split string, series [][]float64, labels []int) error {
		path := filepath.Join(base, fmt.Sprintf("%s_%s.tsv", d.Name, split))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		return WriteTSV(f, series, labels)
	}
	if err := write("TRAIN", d.Train, d.TrainLabels); err != nil {
		return err
	}
	return write("TEST", d.Test, d.TestLabels)
}

// normalizeLengths fills missing values and resamples every series to the
// longest length found in either split.
func normalizeLengths(d *Dataset) {
	maxLen := 0
	for _, s := range d.Train {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	for _, s := range d.Test {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	fix := func(series [][]float64) {
		for i, s := range series {
			s = FillMissing(s)
			if len(s) != maxLen {
				s = Resample(s, maxLen)
			}
			series[i] = s
		}
	}
	fix(d.Train)
	fix(d.Test)
}
