// Package dataset defines labelled time-series datasets with UCR-style
// train/test splits, readers and writers for the UCR tab-separated format,
// the resampling and missing-value interpolation steps the paper applies to
// the archive, and a deterministic synthetic archive generator that stands
// in for the UCR Time-Series Archive in offline runs (see DESIGN.md §4).
package dataset

import (
	"fmt"
	"math"
)

// Dataset is a class-labelled time-series dataset with a fixed train/test
// split, mirroring one UCR archive dataset. All series within a dataset
// have equal length after loading (shorter series are resampled and missing
// values interpolated, as in the paper).
type Dataset struct {
	Name        string
	Train       [][]float64
	TrainLabels []int
	Test        [][]float64
	TestLabels  []int
}

// Length returns the series length, or 0 for an empty dataset.
func (d *Dataset) Length() int {
	if len(d.Train) > 0 {
		return len(d.Train[0])
	}
	if len(d.Test) > 0 {
		return len(d.Test[0])
	}
	return 0
}

// NumClasses returns the number of distinct labels across both splits.
func (d *Dataset) NumClasses() int {
	seen := map[int]bool{}
	for _, l := range d.TrainLabels {
		seen[l] = true
	}
	for _, l := range d.TestLabels {
		seen[l] = true
	}
	return len(seen)
}

// Validate checks structural invariants: matching series/label counts,
// equal lengths, and finite values. It returns the first violation found.
func (d *Dataset) Validate() error {
	if len(d.Train) != len(d.TrainLabels) {
		return fmt.Errorf("dataset %s: %d train series, %d train labels", d.Name, len(d.Train), len(d.TrainLabels))
	}
	if len(d.Test) != len(d.TestLabels) {
		return fmt.Errorf("dataset %s: %d test series, %d test labels", d.Name, len(d.Test), len(d.TestLabels))
	}
	m := d.Length()
	check := func(split string, series [][]float64) error {
		for i, s := range series {
			if len(s) != m {
				return fmt.Errorf("dataset %s: %s series %d has length %d, want %d", d.Name, split, i, len(s), m)
			}
			for j, v := range s {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("dataset %s: %s series %d has non-finite value at %d", d.Name, split, i, j)
				}
			}
		}
		return nil
	}
	if err := check("train", d.Train); err != nil {
		return err
	}
	return check("test", d.Test)
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{
		Name:        d.Name,
		Train:       make([][]float64, len(d.Train)),
		TrainLabels: append([]int(nil), d.TrainLabels...),
		Test:        make([][]float64, len(d.Test)),
		TestLabels:  append([]int(nil), d.TestLabels...),
	}
	for i, s := range d.Train {
		c.Train[i] = append([]float64(nil), s...)
	}
	for i, s := range d.Test {
		c.Test[i] = append([]float64(nil), s...)
	}
	return c
}

// SubsetTrain returns a shallow copy of d whose training split is reduced to
// the first n series (used by the Figure-10 convergence experiment). Labels
// follow the series. It panics if n exceeds the training size.
func (d *Dataset) SubsetTrain(n int) *Dataset {
	if n > len(d.Train) {
		panic(fmt.Sprintf("dataset %s: SubsetTrain(%d) exceeds %d", d.Name, n, len(d.Train)))
	}
	return &Dataset{
		Name:        d.Name,
		Train:       d.Train[:n],
		TrainLabels: d.TrainLabels[:n],
		Test:        d.Test,
		TestLabels:  d.TestLabels,
	}
}

// FillMissing replaces NaN entries by linear interpolation between the
// nearest finite neighbours; leading and trailing NaNs are filled with the
// nearest finite value. A series with no finite values becomes all zeros.
// This mirrors the paper's treatment of the archive's missing values.
func FillMissing(x []float64) []float64 {
	out := append([]float64(nil), x...)
	n := len(out)
	// Find the first finite value.
	first := -1
	for i, v := range out {
		if !math.IsNaN(v) {
			first = i
			break
		}
	}
	if first == -1 {
		for i := range out {
			out[i] = 0
		}
		return out
	}
	for i := 0; i < first; i++ {
		out[i] = out[first]
	}
	last := first
	for i := first + 1; i < n; i++ {
		if math.IsNaN(out[i]) {
			continue
		}
		// Interpolate the gap (last, i).
		gap := i - last
		if gap > 1 {
			step := (out[i] - out[last]) / float64(gap)
			for k := 1; k < gap; k++ {
				out[last+k] = out[last] + step*float64(k)
			}
		}
		last = i
	}
	for i := last + 1; i < n; i++ {
		out[i] = out[last]
	}
	return out
}

// Resample linearly interpolates x to the target length, preserving the
// first and last samples. This is the paper's handling of varying-length
// datasets (stretch shorter series to the longest). It panics for target
// < 1 or an empty input.
func Resample(x []float64, target int) []float64 {
	if target < 1 {
		panic(fmt.Sprintf("dataset: Resample target %d < 1", target))
	}
	if len(x) == 0 {
		panic("dataset: Resample of empty series")
	}
	if len(x) == target {
		return append([]float64(nil), x...)
	}
	out := make([]float64, target)
	if len(x) == 1 {
		for i := range out {
			out[i] = x[0]
		}
		return out
	}
	scale := float64(len(x)-1) / float64(target-1)
	for i := range out {
		pos := float64(i) * scale
		lo := int(pos)
		if lo >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		frac := pos - float64(lo)
		out[i] = x[lo]*(1-frac) + x[lo+1]*frac
	}
	return out
}

// ZNormalize returns the z-scored copy of x (zero mean, unit variance). A
// constant series normalizes to all zeros. The archive is stored
// z-normalized, as in the UCR archive and the paper.
func ZNormalize(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	var ss float64
	for _, v := range x {
		d := v - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(n))
	if std == 0 {
		return out
	}
	for i, v := range x {
		out[i] = (v - mean) / std
	}
	return out
}

// ZNormalizeAll z-normalizes every series of the dataset in place and
// returns it, mirroring the paper's preprocessing of all 128 datasets.
func (d *Dataset) ZNormalizeAll() *Dataset {
	for i, s := range d.Train {
		d.Train[i] = ZNormalize(s)
	}
	for i, s := range d.Test {
		d.Test[i] = ZNormalize(s)
	}
	return d
}
