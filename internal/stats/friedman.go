package stats

import (
	"fmt"
	"math"
)

// FriedmanResult holds the outcome of a Friedman test over an n-datasets by
// k-methods score matrix.
type FriedmanResult struct {
	N            int       // datasets
	K            int       // methods
	AvgRanks     []float64 // average rank per method (rank 1 = best)
	ChiSq        float64   // Friedman chi-squared statistic
	PValue       float64   // from the chi-squared approximation, k-1 df
	ImanDavenF   float64   // Iman–Davenport F statistic
	ImanDavenP   float64   // p-value of the F refinement
	Significant  bool      // PValue < alpha
	Alpha        float64
	CriticalDiff float64 // Nemenyi critical difference at the same alpha
}

// Friedman runs the Friedman test on scores (scores[i][j] = score of method
// j on dataset i, higher is better) at the given alpha, and precomputes the
// Nemenyi critical difference for the post-hoc analysis. The paper uses
// alpha = 0.10 for this test family. It panics if the matrix is ragged,
// has fewer than 2 methods, or no datasets.
func Friedman(scores [][]float64, alpha float64) FriedmanResult {
	n := len(scores)
	if n == 0 {
		panic("stats: Friedman with no datasets")
	}
	k := len(scores[0])
	if k < 2 {
		panic("stats: Friedman needs at least 2 methods")
	}
	avg := AverageRanks(scores)
	nf, kf := float64(n), float64(k)
	var sumSq float64
	for _, r := range avg {
		sumSq += r * r
	}
	chi := 12 * nf / (kf * (kf + 1)) * (sumSq - kf*(kf+1)*(kf+1)/4)
	p := 1 - ChiSquaredCDF(chi, kf-1)
	res := FriedmanResult{
		N: n, K: k, AvgRanks: avg,
		ChiSq: chi, PValue: p,
		Alpha:        alpha,
		CriticalDiff: NemenyiCD(k, n, alpha),
	}
	// Iman–Davenport refinement: less conservative than chi-squared.
	den := nf*(kf-1) - chi
	if den > 0 {
		res.ImanDavenF = (nf - 1) * chi / den
		res.ImanDavenP = 1 - FDistCDF(res.ImanDavenF, kf-1, (kf-1)*(nf-1))
	} else {
		res.ImanDavenF = math.Inf(1)
		res.ImanDavenP = 0
	}
	res.Significant = res.PValue < alpha
	return res
}

// qAlpha05 and qAlpha10 are critical values q_alpha/sqrt(2) of the
// studentized range statistic with infinite degrees of freedom, indexed by
// the number of methods k (entries 2..20), as tabulated for the Nemenyi
// test (Demšar 2006 and extensions).
var qAlpha05 = map[int]float64{
	2: 1.960, 3: 2.343, 4: 2.569, 5: 2.728, 6: 2.850, 7: 2.949, 8: 3.031,
	9: 3.102, 10: 3.164, 11: 3.219, 12: 3.268, 13: 3.313, 14: 3.354,
	15: 3.391, 16: 3.426, 17: 3.458, 18: 3.489, 19: 3.517, 20: 3.544,
}

var qAlpha10 = map[int]float64{
	2: 1.645, 3: 2.052, 4: 2.291, 5: 2.459, 6: 2.589, 7: 2.693, 8: 2.780,
	9: 2.855, 10: 2.920, 11: 2.978, 12: 3.030, 13: 3.077, 14: 3.120,
	15: 3.159, 16: 3.196, 17: 3.230, 18: 3.261, 19: 3.291, 20: 3.319,
}

// NemenyiCD returns the critical difference of the Nemenyi post-hoc test
// for k methods over n datasets at significance level alpha (0.05 or 0.10):
// two methods differ significantly when their average ranks differ by at
// least CD = q_alpha * sqrt(k(k+1)/(6n)). It panics for unsupported alpha
// or k outside 2..20.
func NemenyiCD(k, n int, alpha float64) float64 {
	var table map[int]float64
	switch alpha {
	case 0.05:
		table = qAlpha05
	case 0.10:
		table = qAlpha10
	default:
		panic(fmt.Sprintf("stats: NemenyiCD unsupported alpha %g (want 0.05 or 0.10)", alpha))
	}
	q, ok := table[k]
	if !ok {
		panic(fmt.Sprintf("stats: NemenyiCD unsupported k=%d (want 2..20)", k))
	}
	return q * math.Sqrt(float64(k*(k+1))/(6*float64(n)))
}

// NemenyiGroups partitions methods into maximal "cliques" of methods whose
// average ranks are within the critical difference of each other, mirroring
// the thick connector lines of a critical-difference diagram. Methods are
// identified by index into avgRanks. Each returned group is sorted by rank;
// groups of size 1 are omitted.
func NemenyiGroups(avgRanks []float64, cd float64) [][]int {
	k := len(avgRanks)
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	// Sort by ascending average rank (best first).
	for i := 1; i < k; i++ {
		for j := i; j > 0 && avgRanks[order[j]] < avgRanks[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	var groups [][]int
	for i := 0; i < k; i++ {
		j := i
		for j+1 < k && avgRanks[order[j+1]]-avgRanks[order[i]] <= cd {
			j++
		}
		if j > i {
			g := append([]int(nil), order[i:j+1]...)
			// Keep only maximal groups: skip if contained in the previous one.
			if len(groups) == 0 || !containsAll(groups[len(groups)-1], g) {
				groups = append(groups, g)
			}
		}
	}
	return groups
}

func containsAll(super, sub []int) bool {
	set := make(map[int]bool, len(super))
	for _, v := range super {
		set[v] = true
	}
	for _, v := range sub {
		if !set[v] {
			return false
		}
	}
	return true
}
