// Package stats implements the statistical machinery of the evaluation:
// rank computation with ties, the Wilcoxon signed-rank test for pairwise
// measure comparisons, the Friedman test with the post-hoc Nemenyi test for
// comparing multiple measures over multiple datasets, and ASCII
// critical-difference diagrams in the style of Demšar (2006).
package stats

import (
	"math"
)

// NormalCDF returns P(Z <= z) for a standard normal Z.
func NormalCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// ChiSquaredCDF returns P(X <= x) for a chi-squared variable with df degrees
// of freedom. It evaluates the regularized lower incomplete gamma function
// P(df/2, x/2).
func ChiSquaredCDF(x float64, df float64) float64 {
	if x <= 0 {
		return 0
	}
	return regIncGammaLower(df/2, x/2)
}

// regIncGammaLower computes the regularized lower incomplete gamma function
// P(a, x) = gamma(a, x) / Gamma(a) using the series expansion for x < a+1
// and the continued fraction for the complement otherwise (Numerical
// Recipes style).
func regIncGammaLower(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < 500; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// FDistCDF returns P(X <= x) for an F distribution with d1 and d2 degrees of
// freedom, via the regularized incomplete beta function. It is used by the
// Iman–Davenport refinement of the Friedman test.
func FDistCDF(x, d1, d2 float64) float64 {
	if x <= 0 {
		return 0
	}
	return regIncBeta(d1/2, d2/2, d1*x/(d1*x+d2))
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// via its continued-fraction expansion.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func betaCF(a, b, x float64) float64 {
	const tiny = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m < 500; m++ {
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + 2*fm) * (a + 2*fm))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + 2*fm) * (qap + 2*fm))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return h
}
