package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalCDF(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.959964, 0.975},
		{-1.959964, 0.025},
		{1.644854, 0.95},
		{3, 0.99865},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("NormalCDF(%g) = %g, want %g", c.z, got, c.want)
		}
	}
}

func TestChiSquaredCDF(t *testing.T) {
	// Reference values from standard chi-squared tables.
	cases := []struct{ x, df, want float64 }{
		{3.841, 1, 0.95},
		{5.991, 2, 0.95},
		{7.815, 3, 0.95},
		{2.706, 1, 0.90},
		{18.307, 10, 0.95},
		{0, 5, 0},
	}
	for _, c := range cases {
		if got := ChiSquaredCDF(c.x, c.df); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("ChiSquaredCDF(%g, %g) = %g, want %g", c.x, c.df, got, c.want)
		}
	}
}

func TestChiSquaredCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		df := 1 + rng.Float64()*20
		a := rng.Float64() * 30
		b := a + rng.Float64()*10
		return ChiSquaredCDF(a, df) <= ChiSquaredCDF(b, df)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFDistCDF(t *testing.T) {
	// F(0.95; 5, 10) = 3.326 (critical value).
	if got := FDistCDF(3.326, 5, 10); math.Abs(got-0.95) > 1e-3 {
		t.Errorf("FDistCDF(3.326, 5, 10) = %g, want 0.95", got)
	}
	// F(0.95; 1, 1) = 161.45.
	if got := FDistCDF(161.45, 1, 1); math.Abs(got-0.95) > 1e-3 {
		t.Errorf("FDistCDF(161.45, 1, 1) = %g, want 0.95", got)
	}
	if FDistCDF(0, 3, 3) != 0 {
		t.Error("FDistCDF(0) should be 0")
	}
}

func TestRanksNoTies(t *testing.T) {
	r := Ranks([]float64{30, 10, 20}, 0)
	want := []float64{3, 1, 2}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
}

func TestRanksWithTies(t *testing.T) {
	r := Ranks([]float64{1, 2, 2, 3}, 0)
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
	// All tied.
	r = Ranks([]float64{5, 5, 5}, 0)
	for _, v := range r {
		if v != 2 {
			t.Fatalf("all-tied ranks = %v, want all 2", r)
		}
	}
}

func TestRanksSumInvariant(t *testing.T) {
	// Sum of ranks must always be n(n+1)/2 regardless of ties.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(rng.Intn(10)) // force ties
		}
		r := Ranks(v, 0)
		var sum float64
		for _, x := range r {
			sum += x
		}
		return math.Abs(sum-float64(n*(n+1))/2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAverageRanks(t *testing.T) {
	// Method 0 always best (highest score) -> rank 1; method 2 always worst.
	scores := [][]float64{
		{0.9, 0.5, 0.1},
		{0.8, 0.6, 0.2},
		{0.7, 0.5, 0.3},
	}
	avg := AverageRanks(scores)
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(avg[i]-want[i]) > 1e-12 {
			t.Fatalf("AverageRanks = %v, want %v", avg, want)
		}
	}
}

func TestAverageRanksTies(t *testing.T) {
	scores := [][]float64{{0.5, 0.5}}
	avg := AverageRanks(scores)
	if avg[0] != 1.5 || avg[1] != 1.5 {
		t.Fatalf("AverageRanks with tie = %v, want [1.5 1.5]", avg)
	}
}

func TestWilcoxonKnownExample(t *testing.T) {
	// Classic textbook example (Wilcoxon 1945 style): differences with a
	// clear positive shift should give a small p-value.
	x := []float64{125, 115, 130, 140, 140, 115, 140, 125, 140, 135}
	y := []float64{110, 122, 125, 120, 140, 124, 123, 137, 135, 145}
	r := Wilcoxon(x, y)
	if r.N != 9 { // one zero difference dropped
		t.Fatalf("N = %d, want 9", r.N)
	}
	if r.WPlus+r.WMinus != float64(r.N*(r.N+1))/2 {
		t.Fatalf("rank sums %g + %g != n(n+1)/2", r.WPlus, r.WMinus)
	}
	if r.PValue < 0 || r.PValue > 1 {
		t.Fatalf("p-value out of range: %g", r.PValue)
	}
}

func TestWilcoxonClearDifference(t *testing.T) {
	n := 30
	x := make([]float64, n)
	y := make([]float64, n)
	rng := rand.New(rand.NewSource(42))
	for i := range x {
		base := rng.Float64()
		x[i] = base + 0.2 + 0.01*rng.Float64()
		y[i] = base
	}
	r := Wilcoxon(x, y)
	if r.PValue > 0.001 {
		t.Fatalf("expected tiny p-value for clear shift, got %g", r.PValue)
	}
	if !SignificantlyBetter(x, y, 0.05) {
		t.Fatal("x should be significantly better than y")
	}
	if SignificantlyBetter(y, x, 0.05) {
		t.Fatal("y should not be significantly better than x")
	}
}

func TestWilcoxonNoDifference(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	r := Wilcoxon(x, x)
	if r.N != 0 || r.PValue != 1 {
		t.Fatalf("identical samples: N=%d p=%g, want N=0 p=1", r.N, r.PValue)
	}
	if r.Ties != 4 {
		t.Fatalf("Ties = %d, want 4", r.Ties)
	}
}

func TestWilcoxonSymmetricNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 100
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	r := Wilcoxon(x, y)
	if r.PValue < 0.01 {
		t.Fatalf("independent noise should rarely be significant, p=%g", r.PValue)
	}
}

func TestWilcoxonCountsAndMeanDiff(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{0, 2, 4, 3}
	r := Wilcoxon(x, y)
	if r.Wins != 2 || r.Ties != 1 || r.Losses != 1 {
		t.Fatalf("counts = %d/%d/%d, want 2/1/1", r.Wins, r.Ties, r.Losses)
	}
	if math.Abs(r.MeanDiff-0.25) > 1e-12 {
		t.Fatalf("MeanDiff = %g, want 0.25", r.MeanDiff)
	}
}

func TestWilcoxonLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Wilcoxon([]float64{1}, []float64{1, 2})
}

func TestFriedmanDistinguishesMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 40
	scores := make([][]float64, n)
	for i := range scores {
		base := rng.Float64() * 0.1
		// Method 0 clearly best, method 2 clearly worst.
		scores[i] = []float64{0.9 + base, 0.7 + base + 0.05*rng.Float64(), 0.5 + base}
	}
	res := Friedman(scores, 0.10)
	if !res.Significant {
		t.Fatalf("expected significant Friedman test, p=%g", res.PValue)
	}
	if res.AvgRanks[0] >= res.AvgRanks[1] || res.AvgRanks[1] >= res.AvgRanks[2] {
		t.Fatalf("rank ordering wrong: %v", res.AvgRanks)
	}
	if res.CriticalDiff <= 0 {
		t.Fatal("critical difference must be positive")
	}
	if res.ImanDavenP > res.PValue+1e-9 {
		t.Errorf("Iman-Davenport should not be more conservative: F p=%g chi p=%g", res.ImanDavenP, res.PValue)
	}
}

func TestFriedmanNullHypothesis(t *testing.T) {
	// Identical methods: chi-squared statistic ~ 0, not significant.
	scores := [][]float64{{0.5, 0.5, 0.5}, {0.7, 0.7, 0.7}, {0.6, 0.6, 0.6}}
	res := Friedman(scores, 0.10)
	if res.Significant {
		t.Fatalf("identical methods must not be significant, p=%g", res.PValue)
	}
	if math.Abs(res.ChiSq) > 1e-9 {
		t.Fatalf("chi-squared = %g, want 0", res.ChiSq)
	}
}

func TestFriedmanPanics(t *testing.T) {
	for _, scores := range [][][]float64{{}, {{0.5}}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %v", scores)
				}
			}()
			Friedman(scores, 0.10)
		}()
	}
}

func TestNemenyiCDValues(t *testing.T) {
	// Demšar's example: k=4, n=14, alpha=0.05 -> CD ~ 1.25.
	cd := NemenyiCD(4, 14, 0.05)
	if math.Abs(cd-1.25) > 0.01 {
		t.Errorf("NemenyiCD(4, 14, 0.05) = %g, want ~1.25", cd)
	}
	// CD shrinks with more datasets.
	if NemenyiCD(5, 128, 0.10) >= NemenyiCD(5, 30, 0.10) {
		t.Error("CD must shrink with larger n")
	}
	// CD grows with more methods.
	if NemenyiCD(10, 50, 0.05) <= NemenyiCD(3, 50, 0.05) {
		t.Error("CD must grow with larger k")
	}
}

func TestNemenyiCDPanics(t *testing.T) {
	for _, c := range []struct {
		k     int
		alpha float64
	}{{25, 0.05}, {1, 0.05}, {5, 0.01}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for k=%d alpha=%g", c.k, c.alpha)
				}
			}()
			NemenyiCD(c.k, 10, c.alpha)
		}()
	}
}

func TestNemenyiGroups(t *testing.T) {
	// Ranks 1.0, 1.5, 3.5 with CD=1: methods 0,1 grouped; 2 alone.
	groups := NemenyiGroups([]float64{1.0, 1.5, 3.5}, 1.0)
	if len(groups) != 1 {
		t.Fatalf("groups = %v, want one group", groups)
	}
	g := groups[0]
	if len(g) != 2 || g[0] != 0 || g[1] != 1 {
		t.Fatalf("group = %v, want [0 1]", g)
	}
}

func TestNemenyiGroupsAllConnected(t *testing.T) {
	groups := NemenyiGroups([]float64{1, 1.2, 1.4}, 2.0)
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Fatalf("groups = %v, want single group of 3", groups)
	}
}

func TestNemenyiGroupsNoneConnected(t *testing.T) {
	groups := NemenyiGroups([]float64{1, 3, 5}, 0.5)
	if len(groups) != 0 {
		t.Fatalf("groups = %v, want none", groups)
	}
}

func TestCDDiagramRenders(t *testing.T) {
	names := []string{"MSM", "TWE", "DTW", "NCCc"}
	ranks := []float64{1.8, 2.0, 2.9, 3.3}
	cd := 0.5
	out := CDDiagram(names, ranks, cd)
	for _, n := range names {
		if !strings.Contains(out, n) {
			t.Errorf("diagram missing %q:\n%s", n, out)
		}
	}
	if !strings.Contains(out, "=") {
		t.Errorf("diagram should contain a group bar:\n%s", out)
	}
	if CDDiagram(nil, nil, 1) != "" {
		t.Error("empty diagram should be empty string")
	}
}

// TestWilcoxonNaNPairsDropped is the regression test for the NaN-poisoning
// bug: a NaN difference used to pass the d != 0 filter, get ranked into
// WMinus, and turn MeanDiff and the rank sums into NaN. NaN pairs must be
// excluded from the test entirely and counted in Dropped.
func TestWilcoxonNaNPairsDropped(t *testing.T) {
	x := []float64{0.9, math.NaN(), 0.8, 0.7, 0.95, 0.6}
	y := []float64{0.5, 0.4, 0.6, math.NaN(), 0.5, 0.7}
	res := Wilcoxon(x, y)
	if res.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2", res.Dropped)
	}
	if res.N != 4 {
		t.Errorf("N = %d, want 4 (NaN pairs excluded)", res.N)
	}
	if got := res.Wins + res.Ties + res.Losses; got != 4 {
		t.Errorf("Wins+Ties+Losses = %d, want 4", got)
	}
	if math.IsNaN(res.MeanDiff) || math.IsNaN(res.WPlus) || math.IsNaN(res.WMinus) {
		t.Errorf("NaN leaked into statistics: MeanDiff=%v WPlus=%v WMinus=%v",
			res.MeanDiff, res.WPlus, res.WMinus)
	}
	if math.IsNaN(res.PValue) || res.PValue < 0 || res.PValue > 1 {
		t.Errorf("PValue = %v, want a probability", res.PValue)
	}
	// The retained pairs are x>y thrice and x<y once; mean over 4 pairs.
	wantMean := ((0.9 - 0.5) + (0.8 - 0.6) + (0.95 - 0.5) + (0.6 - 0.7)) / 4
	if math.Abs(res.MeanDiff-wantMean) > 1e-12 {
		t.Errorf("MeanDiff = %v, want %v", res.MeanDiff, wantMean)
	}
}

// TestWilcoxonAllZeroDifferences pins the degenerate identical-samples
// case: no non-zero differences means no evidence against the null, so the
// test must report N = 0 and p = 1 rather than NaN or a panic.
func TestWilcoxonAllZeroDifferences(t *testing.T) {
	x := []float64{0.5, 0.5, 0.7, 0.9}
	res := Wilcoxon(x, x)
	if res.N != 0 || res.PValue != 1 || res.Z != 0 {
		t.Errorf("identical samples: N=%d p=%v Z=%v, want N=0 p=1 Z=0", res.N, res.PValue, res.Z)
	}
	if res.Ties != len(x) || res.MeanDiff != 0 {
		t.Errorf("identical samples: Ties=%d MeanDiff=%v", res.Ties, res.MeanDiff)
	}
}

// TestWilcoxonAllNaNPairs drives the dropped-pair path to exhaustion:
// when every pair is NaN the test degenerates to the empty sample.
func TestWilcoxonAllNaNPairs(t *testing.T) {
	x := []float64{math.NaN(), math.NaN()}
	y := []float64{1, math.NaN()}
	res := Wilcoxon(x, y)
	if res.Dropped != 2 || res.N != 0 {
		t.Errorf("Dropped=%d N=%d, want 2 and 0", res.Dropped, res.N)
	}
	if res.PValue != 1 || res.MeanDiff != 0 {
		t.Errorf("PValue=%v MeanDiff=%v, want 1 and 0", res.PValue, res.MeanDiff)
	}
}
