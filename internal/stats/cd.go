package stats

import (
	"fmt"
	"sort"
	"strings"
)

// CDDiagram renders an ASCII critical-difference diagram: methods are
// placed on a rank axis from 1 (best, left) to k (worst, right), and bars of
// '=' characters connect groups whose rank difference is below the critical
// difference, mirroring the figures of the paper.
func CDDiagram(names []string, avgRanks []float64, cd float64) string {
	k := len(names)
	if k == 0 || k != len(avgRanks) {
		return ""
	}
	const width = 72
	minR, maxR := 1.0, float64(k)
	span := maxR - minR
	if span == 0 {
		span = 1
	}
	pos := func(r float64) int {
		p := int((r - minR) / span * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Critical difference: %.4f (rank axis 1..%d, lower rank = better)\n", cd, k)

	// Axis line with tick marks at integer ranks.
	axis := make([]byte, width)
	for i := range axis {
		axis[i] = '-'
	}
	for r := 1; r <= k; r++ {
		axis[pos(float64(r))] = '+'
	}
	b.Write(axis)
	b.WriteByte('\n')

	// Group connector bars.
	groups := NemenyiGroups(avgRanks, cd)
	for _, g := range groups {
		lo, hi := avgRanks[g[0]], avgRanks[g[0]]
		for _, m := range g {
			if avgRanks[m] < lo {
				lo = avgRanks[m]
			}
			if avgRanks[m] > hi {
				hi = avgRanks[m]
			}
		}
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		for i := pos(lo); i <= pos(hi); i++ {
			line[i] = '='
		}
		b.Write(line)
		b.WriteByte('\n')
	}

	// One labelled line per method, best first.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return avgRanks[order[a]] < avgRanks[order[b]] })
	for _, m := range order {
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		line[pos(avgRanks[m])] = '|'
		fmt.Fprintf(&b, "%s %-24s rank %.3f\n", line, names[m], avgRanks[m])
	}
	return b.String()
}
