package stats

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForceWilcoxonP enumerates all 2^n sign assignments to compute the
// exact two-sided p-value for comparison with the DP implementation.
func bruteForceWilcoxonP(ranks []float64, w float64) float64 {
	n := len(ranks)
	atOrBelow := 0
	for mask := 0; mask < 1<<n; mask++ {
		var sum float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sum += ranks[i]
			}
		}
		if sum <= w+1e-9 {
			atOrBelow++
		}
	}
	p := 2 * float64(atOrBelow) / math.Pow(2, float64(n))
	if p > 1 {
		p = 1
	}
	return p
}

func TestExactWilcoxonMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(10)
		ranks := Ranks(func() []float64 {
			v := make([]float64, n)
			for i := range v {
				v[i] = float64(rng.Intn(6)) // force tied midranks
			}
			return v
		}(), 0)
		w := rng.Float64() * float64(n*(n+1)) / 4
		got := exactWilcoxonP(ranks, w)
		want := bruteForceWilcoxonP(ranks, w)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("n=%d w=%g: exact %g != brute %g (ranks %v)", n, w, got, want, ranks)
		}
	}
}

func TestExactWilcoxonKnownCriticalValue(t *testing.T) {
	// Classic table: n=6, W=0 has exact two-sided p = 2/64 = 0.03125.
	ranks := []float64{1, 2, 3, 4, 5, 6}
	if got := exactWilcoxonP(ranks, 0); math.Abs(got-2.0/64.0) > 1e-12 {
		t.Fatalf("p = %g, want 0.03125", got)
	}
	// W at the distribution midpoint gives p capped at 1.
	if got := exactWilcoxonP(ranks, 21); got != 1 {
		t.Fatalf("midpoint p = %g, want 1", got)
	}
}

func TestWilcoxonUsesExactForSmallSamples(t *testing.T) {
	// A perfect one-sided shift with n=6: exact p = 0.03125 < 0.05, so the
	// small-sample test is decisive where the normal approximation with
	// continuity correction would be borderline.
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{0.5, 1.4, 2.3, 3.2, 4.1, 5.0}
	r := Wilcoxon(x, y)
	if math.Abs(r.PValue-0.03125) > 1e-9 {
		t.Fatalf("small-sample p = %g, want exact 0.03125", r.PValue)
	}
	if r.Z != 0 {
		t.Fatalf("exact path should not set Z, got %g", r.Z)
	}
}

func TestHolmCorrection(t *testing.T) {
	// Demšar-style example: 4 hypotheses at alpha = 0.05.
	// Sorted: 0.01 <= 0.05/4 = 0.0125 (reject), 0.012 <= 0.05/3 = 0.0167
	// (reject), 0.04 > 0.05/2 = 0.025 (stop).
	p := []float64{0.01, 0.04, 0.012, 0.5}
	rejected := HolmCorrection(p, 0.05)
	want := []bool{true, false, true, false}
	for i := range want {
		if rejected[i] != want[i] {
			t.Fatalf("Holm = %v, want %v", rejected, want)
		}
	}
}

func TestHolmStepDownStops(t *testing.T) {
	// Once one hypothesis fails, no larger p-value may be rejected even if
	// it would pass its own threshold in isolation.
	p := []float64{0.02, 0.02, 0.04}
	rejected := HolmCorrection(p, 0.05)
	// Sorted: 0.02 > 0.05/3 = 0.0167 -> nothing rejected.
	for i, r := range rejected {
		if r {
			t.Fatalf("hypothesis %d rejected, want none", i)
		}
	}
}

func TestHolmEmpty(t *testing.T) {
	if len(HolmCorrection(nil, 0.05)) != 0 {
		t.Fatal("empty input must give empty output")
	}
}

func TestBonferroniMoreConservativeThanHolm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(10)
		p := make([]float64, k)
		for i := range p {
			p[i] = rng.Float64() * 0.2
		}
		holm := HolmCorrection(p, 0.05)
		bonf := BonferroniCorrection(p, 0.05)
		for i := range p {
			if bonf[i] && !holm[i] {
				t.Fatalf("Bonferroni rejected %d but Holm did not: p=%v", i, p)
			}
		}
	}
}
