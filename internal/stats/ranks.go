package stats

import "sort"

// Ranks assigns ranks 1..n to the values in ascending order, resolving ties
// by average (midrank) assignment: equal values all receive the mean of the
// rank positions they occupy. Values compared equal within tol are tied.
func Ranks(values []float64, tol float64) []float64 {
	n := len(values)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	ranks := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && values[idx[j+1]]-values[idx[i]] <= tol {
			j++
		}
		// Positions i..j (0-based) are tied; ranks are 1-based.
		avg := float64(i+j+2) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// AverageRanks computes the average rank of each of k methods across n
// datasets. scores[i][j] is the score (higher is better) of method j on
// dataset i; on each dataset the best method receives rank 1. Ties receive
// midranks. It panics on ragged input.
func AverageRanks(scores [][]float64) []float64 {
	if len(scores) == 0 {
		return nil
	}
	k := len(scores[0])
	sums := make([]float64, k)
	for _, row := range scores {
		if len(row) != k {
			panic("stats: ragged score matrix")
		}
		// Rank by descending score: negate and use ascending Ranks.
		neg := make([]float64, k)
		for j, v := range row {
			neg[j] = -v
		}
		r := Ranks(neg, 1e-12)
		for j := range sums {
			sums[j] += r[j]
		}
	}
	n := float64(len(scores))
	for j := range sums {
		sums[j] /= n
	}
	return sums
}
