package stats

import (
	"math"
	"sort"
)

// exactWilcoxonThreshold is the largest sample size for which the exact
// permutation distribution of the signed-rank statistic is computed; the
// normal approximation takes over beyond it.
const exactWilcoxonThreshold = 25

// exactWilcoxonP computes the exact two-sided p-value of the signed-rank
// statistic by dynamic programming over the 2^n sign assignments: with
// ranks r_1..r_n (midranks doubled to integers), it counts the subsets
// whose rank sum is <= the observed smaller rank sum W. Runs in
// O(n * totalSum) time and space.
func exactWilcoxonP(ranks []float64, w float64) float64 {
	n := len(ranks)
	if n == 0 {
		return 1
	}
	// Double the ranks so midranks (x.5) become integers.
	ints := make([]int, n)
	total := 0
	for i, r := range ranks {
		ints[i] = int(math.Round(2 * r))
		total += ints[i]
	}
	wInt := int(math.Floor(2*w + 1e-9))
	if wInt < 0 {
		wInt = 0
	}
	if wInt > total {
		wInt = total
	}
	// counts[s] = number of subsets with rank sum exactly s.
	counts := make([]float64, total+1)
	counts[0] = 1
	for _, r := range ints {
		for s := total; s >= r; s-- {
			if counts[s-r] != 0 {
				counts[s] += counts[s-r]
			}
		}
	}
	var atOrBelow float64
	for s := 0; s <= wInt; s++ {
		atOrBelow += counts[s]
	}
	p := 2 * atOrBelow / math.Pow(2, float64(n))
	if p > 1 {
		p = 1
	}
	return p
}

// HolmCorrection applies the Holm step-down procedure to a family of
// p-values at level alpha, the multiple-comparison control Demšar
// recommends when one baseline is compared against k-1 measures. It
// returns, for each input p-value, whether its null hypothesis is
// rejected. The input is not modified.
func HolmCorrection(pvalues []float64, alpha float64) []bool {
	k := len(pvalues)
	reject := make([]bool, k)
	if k == 0 {
		return reject
	}
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return pvalues[order[a]] < pvalues[order[b]] })
	for step, idx := range order {
		if pvalues[idx] <= alpha/float64(k-step) {
			reject[idx] = true
		} else {
			break // step-down: once one fails, all larger p-values fail
		}
	}
	return reject
}

// BonferroniCorrection applies the (more conservative) Bonferroni
// correction: each p-value is tested against alpha/k.
func BonferroniCorrection(pvalues []float64, alpha float64) []bool {
	k := len(pvalues)
	reject := make([]bool, k)
	for i, p := range pvalues {
		reject[i] = p <= alpha/float64(k)
	}
	return reject
}
