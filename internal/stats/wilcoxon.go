package stats

import (
	"fmt"
	"math"
)

// WilcoxonResult holds the outcome of a two-sided Wilcoxon signed-rank test
// between two paired samples (e.g., the per-dataset accuracies of two
// distance measures).
type WilcoxonResult struct {
	N        int     // pairs with non-zero difference
	WPlus    float64 // sum of ranks of positive differences (x > y)
	WMinus   float64 // sum of ranks of negative differences
	Z        float64 // normal-approximation statistic (0 when N == 0)
	PValue   float64 // two-sided p-value
	Wins     int     // datasets where x > y
	Ties     int     // datasets where x == y
	Losses   int     // datasets where x < y
	Dropped  int     // pairs excluded because either value is NaN
	MeanDiff float64 // mean of x - y over the retained pairs
}

// Wilcoxon performs the two-sided Wilcoxon signed-rank test on the paired
// samples x and y, following the convention of Demšar (2006): zero
// differences are dropped and ties among the absolute differences receive
// midranks. Pairs where either value is NaN carry no rank information and
// are excluded entirely (counted in Dropped). For n <= 25 non-zero
// differences the p-value comes from the exact permutation distribution of
// the rank sum; larger samples use the normal approximation with tie
// correction. It panics when the samples have different lengths.
func Wilcoxon(x, y []float64) WilcoxonResult {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: Wilcoxon sample length mismatch %d vs %d", len(x), len(y)))
	}
	var res WilcoxonResult
	diffs := make([]float64, 0, len(x))
	var sumDiff float64
	kept := 0
	for i := range x {
		d := x[i] - y[i]
		if math.IsNaN(d) {
			// A NaN would previously slip past the d != 0 filter, get
			// ranked, and poison WMinus and MeanDiff with NaN.
			res.Dropped++
			continue
		}
		kept++
		sumDiff += d
		switch {
		case d > 0:
			res.Wins++
		case d < 0:
			res.Losses++
		default:
			res.Ties++
		}
		if d != 0 {
			diffs = append(diffs, d)
		}
	}
	if kept > 0 {
		res.MeanDiff = sumDiff / float64(kept)
	}
	res.N = len(diffs)
	if res.N == 0 {
		res.PValue = 1
		return res
	}
	abs := make([]float64, res.N)
	for i, d := range diffs {
		abs[i] = math.Abs(d)
	}
	ranks := Ranks(abs, 1e-12)
	for i, d := range diffs {
		if d > 0 {
			res.WPlus += ranks[i]
		} else {
			res.WMinus += ranks[i]
		}
	}
	n := float64(res.N)
	w := math.Min(res.WPlus, res.WMinus)
	if res.N <= exactWilcoxonThreshold {
		// Small samples: use the exact permutation distribution instead of
		// the normal approximation.
		res.PValue = exactWilcoxonP(ranks, w)
		res.Z = 0
		return res
	}
	mean := n * (n + 1) / 4
	variance := n * (n + 1) * (2*n + 1) / 24
	// Tie correction: subtract sum(t^3 - t)/48 over tie groups.
	variance -= tieCorrection(abs) / 48
	if variance <= 0 {
		// All differences identical in magnitude and sign structure is
		// degenerate; fall back to a decisive p-value based on sign counts.
		if res.WPlus == 0 || res.WMinus == 0 {
			res.PValue = math.Pow(0.5, n-1)
		} else {
			res.PValue = 1
		}
		return res
	}
	// Continuity correction of 0.5 toward the mean.
	res.Z = (w - mean + 0.5) / math.Sqrt(variance)
	p := 2 * NormalCDF(res.Z)
	if p > 1 {
		p = 1
	}
	res.PValue = p
	return res
}

// tieCorrection returns sum over tie groups of (t^3 - t), where t is the
// group size, for the tie-corrected variance of rank statistics.
func tieCorrection(abs []float64) float64 {
	counts := map[float64]int{}
	for _, v := range abs {
		counts[v]++
	}
	var c float64
	for _, t := range counts {
		if t > 1 {
			tf := float64(t)
			c += tf*tf*tf - tf
		}
	}
	return c
}

// SignificantlyBetter reports whether x is better than y with statistical
// significance at the given alpha (e.g. 0.05 for the paper's 95% level):
// the two-sided test rejects equality and x has the larger rank sum.
func SignificantlyBetter(x, y []float64, alpha float64) bool {
	r := Wilcoxon(x, y)
	return r.PValue < alpha && r.WPlus > r.WMinus
}
