// Package uncertain extends distance computation to uncertain time series
// — series whose observations carry per-point error estimates — the second
// future-work extension of the paper's footnote 1 (citing the MUNICH/DUST
// line of work). An uncertain series models each observation as a Gaussian
// with a known standard deviation; the package provides the closed-form
// expected squared Euclidean distance, its variance, a distribution-aware
// dissimilarity in the spirit of DUST, and a 1-NN helper.
package uncertain

import (
	"fmt"
	"math"
)

// Series is an uncertain time series: observation i is modelled as
// N(Values[i], Stddev[i]^2). A nil Stddev means a certain series.
type Series struct {
	Values []float64
	Stddev []float64
}

// FromCertain wraps an exact series with zero uncertainty.
func FromCertain(x []float64) Series {
	return Series{Values: x}
}

// Validate checks structural invariants.
func (s Series) Validate() error {
	if len(s.Values) == 0 {
		return fmt.Errorf("uncertain: empty series")
	}
	if s.Stddev != nil && len(s.Stddev) != len(s.Values) {
		return fmt.Errorf("uncertain: %d values, %d stddevs", len(s.Values), len(s.Stddev))
	}
	for i, sd := range s.Stddev {
		if sd < 0 || math.IsNaN(sd) {
			return fmt.Errorf("uncertain: negative or NaN stddev at %d", i)
		}
	}
	return nil
}

func (s Series) sd(i int) float64 {
	if s.Stddev == nil {
		return 0
	}
	return s.Stddev[i]
}

func checkPair(x, y Series) int {
	if len(x.Values) != len(y.Values) {
		panic(fmt.Sprintf("uncertain: length mismatch %d vs %d", len(x.Values), len(y.Values)))
	}
	return len(x.Values)
}

// ExpectedSqED returns the expectation of the squared Euclidean distance
// between the two uncertain series under independent Gaussian errors:
// E[sum (X_i - Y_i)^2] = sum ((mu_xi - mu_yi)^2 + sd_xi^2 + sd_yi^2).
func ExpectedSqED(x, y Series) float64 {
	m := checkPair(x, y)
	var s float64
	for i := 0; i < m; i++ {
		d := x.Values[i] - y.Values[i]
		s += d*d + x.sd(i)*x.sd(i) + y.sd(i)*y.sd(i)
	}
	return s
}

// VarianceSqED returns the variance of the squared Euclidean distance
// under the same model. With D_i = X_i - Y_i ~ N(mu_i, s_i^2),
// Var(D_i^2) = 2 s_i^4 + 4 mu_i^2 s_i^2, summed over i by independence.
func VarianceSqED(x, y Series) float64 {
	m := checkPair(x, y)
	var v float64
	for i := 0; i < m; i++ {
		mu := x.Values[i] - y.Values[i]
		s2 := x.sd(i)*x.sd(i) + y.sd(i)*y.sd(i)
		v += 2*s2*s2 + 4*mu*mu*s2
	}
	return v
}

// ExpectedED returns the square root of the expected squared distance, the
// standard plug-in dissimilarity for uncertain 1-NN (exact ED when both
// series are certain).
func ExpectedED(x, y Series) float64 {
	return math.Sqrt(ExpectedSqED(x, y))
}

// DUST returns a distribution-aware dissimilarity in the spirit of DUST
// (Sarangi & Murthy): each point contributes the *normalized* discrepancy
// -log phi_i where phi_i is the likelihood-ratio-style evidence that the
// two uncertain observations describe the same value. Under the Gaussian
// model this reduces to sum of mu_i^2 / (2 (s_i^2 + eps)), the squared
// difference de-weighted by the combined uncertainty; eps regularizes the
// certain case (where DUST degenerates to scaled squared ED).
func DUST(x, y Series, eps float64) float64 {
	m := checkPair(x, y)
	if eps <= 0 {
		eps = 1e-3
	}
	var s float64
	for i := 0; i < m; i++ {
		mu := x.Values[i] - y.Values[i]
		s2 := x.sd(i)*x.sd(i) + y.sd(i)*y.sd(i) + eps
		s += mu * mu / (2 * s2)
	}
	return math.Sqrt(s)
}

// ProbCloser estimates P(dist(q, a) < dist(q, b)) for squared Euclidean
// distances using a normal approximation of the difference of the two
// distance statistics (their means and variances from ExpectedSqED /
// VarianceSqED; the shared q noise is neglected, which is the standard
// simplification). It underpins probabilistic nearest-neighbor ranking.
func ProbCloser(q, a, b Series) float64 {
	meanDiff := ExpectedSqED(q, b) - ExpectedSqED(q, a) // >0 favours a
	varSum := VarianceSqED(q, a) + VarianceSqED(q, b)
	if varSum == 0 {
		if meanDiff > 0 {
			return 1
		}
		if meanDiff < 0 {
			return 0
		}
		return 0.5
	}
	z := meanDiff / math.Sqrt(varSum)
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// OneNN classifies each uncertain test series by expected squared distance
// and returns the accuracy.
func OneNN(train []Series, trainLabels []int, test []Series, testLabels []int) float64 {
	if len(train) != len(trainLabels) || len(test) != len(testLabels) {
		panic("uncertain: series/label count mismatch")
	}
	if len(test) == 0 {
		return 0
	}
	correct := 0
	for i, q := range test {
		best := -1
		bestD := math.Inf(1)
		for j, r := range train {
			if d := ExpectedSqED(q, r); best == -1 || d < bestD {
				best, bestD = j, d
			}
		}
		if trainLabels[best] == testLabels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(test))
}
