package uncertain

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := Series{Values: []float64{1, 2}, Stddev: []float64{0.1, 0.2}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if (Series{}).Validate() == nil {
		t.Error("empty must fail")
	}
	if (Series{Values: []float64{1}, Stddev: []float64{1, 2}}).Validate() == nil {
		t.Error("length mismatch must fail")
	}
	if (Series{Values: []float64{1}, Stddev: []float64{-1}}).Validate() == nil {
		t.Error("negative stddev must fail")
	}
}

func TestExpectedSqEDReducesToExactED(t *testing.T) {
	x := FromCertain([]float64{0, 0})
	y := FromCertain([]float64{3, 4})
	if got := ExpectedSqED(x, y); got != 25 {
		t.Fatalf("certain ExpectedSqED = %g, want 25", got)
	}
	if got := ExpectedED(x, y); got != 5 {
		t.Fatalf("certain ExpectedED = %g, want 5", got)
	}
}

func TestExpectedSqEDAddsVariances(t *testing.T) {
	x := Series{Values: []float64{0}, Stddev: []float64{2}}
	y := Series{Values: []float64{1}, Stddev: []float64{3}}
	// 1^2 + 4 + 9 = 14.
	if got := ExpectedSqED(x, y); got != 14 {
		t.Fatalf("ExpectedSqED = %g, want 14", got)
	}
}

func TestExpectedSqEDMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := Series{Values: []float64{1, -2, 0.5}, Stddev: []float64{0.5, 0.2, 1}}
	y := Series{Values: []float64{0, 1, 0}, Stddev: []float64{0.3, 0.4, 0.1}}
	const trials = 200000
	var sum, sumSq float64
	for t2 := 0; t2 < trials; t2++ {
		var d2 float64
		for i := range x.Values {
			xi := x.Values[i] + x.Stddev[i]*rng.NormFloat64()
			yi := y.Values[i] + y.Stddev[i]*rng.NormFloat64()
			d := xi - yi
			d2 += d * d
		}
		sum += d2
		sumSq += d2 * d2
	}
	mcMean := sum / trials
	mcVar := sumSq/trials - mcMean*mcMean
	if math.Abs(mcMean-ExpectedSqED(x, y)) > 0.05*ExpectedSqED(x, y) {
		t.Fatalf("MC mean %g != analytic %g", mcMean, ExpectedSqED(x, y))
	}
	if math.Abs(mcVar-VarianceSqED(x, y)) > 0.05*VarianceSqED(x, y) {
		t.Fatalf("MC var %g != analytic %g", mcVar, VarianceSqED(x, y))
	}
}

func TestVarianceZeroForCertain(t *testing.T) {
	x := FromCertain([]float64{1, 2})
	y := FromCertain([]float64{3, 4})
	if VarianceSqED(x, y) != 0 {
		t.Fatal("certain series must have zero distance variance")
	}
}

func TestDUSTDownweightsUncertainty(t *testing.T) {
	// The same value gap counts for less when the observations are noisy.
	certain := DUST(
		Series{Values: []float64{0}},
		Series{Values: []float64{2}},
		1e-3,
	)
	noisy := DUST(
		Series{Values: []float64{0}, Stddev: []float64{2}},
		Series{Values: []float64{2}, Stddev: []float64{2}},
		1e-3,
	)
	if noisy >= certain {
		t.Fatalf("noisy DUST %g should be < certain %g", noisy, certain)
	}
}

func TestDUSTIdentity(t *testing.T) {
	x := Series{Values: []float64{1, 2, 3}, Stddev: []float64{0.5, 0.5, 0.5}}
	if d := DUST(x, x, 1e-3); d != 0 {
		t.Fatalf("DUST(x,x) = %g", d)
	}
}

func TestDUSTNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		mk := func() Series {
			v := make([]float64, n)
			s := make([]float64, n)
			for i := range v {
				v[i] = rng.NormFloat64()
				s[i] = rng.Float64()
			}
			return Series{Values: v, Stddev: s}
		}
		return DUST(mk(), mk(), 1e-3) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestProbCloser(t *testing.T) {
	q := FromCertain([]float64{0, 0, 0})
	near := Series{Values: []float64{0.1, 0, 0}, Stddev: []float64{0.1, 0.1, 0.1}}
	far := Series{Values: []float64{5, 5, 5}, Stddev: []float64{0.1, 0.1, 0.1}}
	if p := ProbCloser(q, near, far); p < 0.99 {
		t.Fatalf("P(near closer) = %g, want ~1", p)
	}
	if p := ProbCloser(q, far, near); p > 0.01 {
		t.Fatalf("P(far closer) = %g, want ~0", p)
	}
	// Symmetric certain case: equal distances -> 0.5.
	a := FromCertain([]float64{1, 0, 0})
	b := FromCertain([]float64{-1, 0, 0})
	if p := ProbCloser(q, a, b); p != 0.5 {
		t.Fatalf("equal certain distances: P = %g, want 0.5", p)
	}
}

func TestOneNNWithUncertainty(t *testing.T) {
	// Two classes separated in mean; uncertainty-aware expected distance
	// still classifies correctly.
	rng := rand.New(rand.NewSource(2))
	mk := func(class int) Series {
		v := make([]float64, 16)
		s := make([]float64, 16)
		for i := range v {
			v[i] = float64(class*3) + 0.3*rng.NormFloat64()
			s[i] = 0.2 + 0.2*rng.Float64()
		}
		return Series{Values: v, Stddev: s}
	}
	var train, test []Series
	var trainL, testL []int
	for class := 0; class < 2; class++ {
		for k := 0; k < 6; k++ {
			train = append(train, mk(class))
			trainL = append(trainL, class)
		}
		for k := 0; k < 4; k++ {
			test = append(test, mk(class))
			testL = append(testL, class)
		}
	}
	if acc := OneNN(train, trainL, test, testL); acc < 0.9 {
		t.Fatalf("uncertain 1-NN accuracy %g", acc)
	}
}

func TestPairMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ExpectedSqED(FromCertain([]float64{1}), FromCertain([]float64{1, 2}))
}
