// Package ann implements approximate nearest-neighbor retrieval with the
// GRAIL embed–index–rerank pipeline: a GRAIL embedder is fitted once on
// landmark series drawn from the corpus, every corpus series is
// transformed into a short Euclidean representation, the representations
// are indexed in a k-NN-capable VP-tree, and each query retrieves the
// top-c candidates in embedding space before re-ranking them with the
// exact measure through the pruned cascade (lower bounds, early
// abandoning, prepared states). The candidate budget c is the recall
// knob: c = n degenerates to an exact scan, small c trades recall for
// throughput. When the budget covers the corpus the engine skips the
// tree entirely and runs the exact pruned scan — the lower-bound
// fallback — so results are never worse than exact search on corpora too
// small to benefit from approximation.
//
// The package sits below internal/corpus (snapshots own a fitted Index
// per measure) and internal/search (OneNNApprox/KNNApprox drive Queriers
// in parallel); it must not import either.
package ann

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/embedding"
	"repro/internal/index"
	"repro/internal/lockstep"
	"repro/internal/measure"
	"repro/internal/par"
)

// Neighbor re-exports the index package's k-NN result type: a reference
// index and its sanitized distance.
type Neighbor = index.Neighbor

// Default knobs: DefaultDim keeps the representation short enough that a
// tree descent plus c re-ranks beats a linear exact scan by a wide
// margin while preserving 1-NN structure; DefaultGamma matches the SINK
// configuration of embedding.All.
const (
	DefaultDim   = 64
	DefaultGamma = 5
)

// Config parameterizes an ANN index.
type Config struct {
	// Dim is the GRAIL representation length (0 means DefaultDim). The
	// effective dimension never exceeds the corpus size.
	Dim int
	// Gamma is the SINK kernel parameter of the embedder (0 means
	// DefaultGamma).
	Gamma float64
	// Candidates is the re-rank budget c: how many embedding-space
	// neighbors are verified with the exact measure per query. 0 selects
	// the adaptive default max(32, n/16), which keeps recall high on small
	// corpora (where it covers everything and triggers the exact
	// fallback) while bounding re-rank cost at scale. Budgets >= n always
	// run the exact fallback scan.
	Candidates int
	// Seed drives landmark sampling and tree construction.
	Seed int64
}

func (c Config) dim() int {
	if c.Dim > 0 {
		return c.Dim
	}
	return DefaultDim
}

func (c Config) gamma() float64 {
	if c.Gamma != 0 {
		return c.Gamma
	}
	return DefaultGamma
}

// candidates resolves the effective budget for a corpus of n series.
func (c Config) candidates(n int) int {
	if c.Candidates > 0 {
		return c.Candidates
	}
	b := n / 16
	if b < 32 {
		b = 32
	}
	return b
}

// Stats reports the work done by one approximate query.
type Stats struct {
	// EmbedDist counts Euclidean distance evaluations in embedding space
	// (the VP-tree descent).
	EmbedDist int
	// Exact counts exact measure evaluations during re-rank (or the
	// fallback scan).
	Exact int
	// LBPruned counts candidates rejected by the lower-bound cascade
	// without an exact computation.
	LBPruned int
	// Fallback reports that the query ran the exact lower-bound scan over
	// the whole corpus (budget >= n): the result is exact, recall 1.
	Fallback bool
}

// ExactState carries per-reference prepared state adopted from a corpus
// snapshot so the index shares rather than recomputes it: Bounds[i] is a
// filled bound context for reference i (nil slice when the measure is
// not LowerBounded), Prep[i] its prepared state (nil slice when not
// Stateful).
type ExactState struct {
	Bounds []measure.BoundContext
	Prep   []any
}

// Index is a fitted embed–index–rerank structure over one corpus and one
// exact measure. It is immutable after construction and safe for
// concurrent use through per-goroutine Queriers.
type Index struct {
	m    measure.Measure
	refs [][]float64
	cfg  Config

	embedder *embedding.GRAIL
	reps     [][]float64
	tree     *index.VPTree

	// Optional exact fast paths, resolved once.
	lb       measure.LowerBounded
	ea       measure.EarlyAbandoning
	stateful measure.Stateful
	bounds   []measure.BoundContext // per-ref, when lb != nil
	prep     []any                  // per-ref, when stateful != nil
}

// Build constructs the index; see BuildCtx.
func Build(refs [][]float64, m measure.Measure, cfg Config) *Index {
	ix, err := BuildCtx(context.Background(), refs, m, cfg)
	if err != nil {
		panic(fmt.Sprintf("ann: Build: impossible error %v", err))
	}
	return ix
}

// BuildCtx fits the GRAIL embedder on the corpus, transforms every
// series in parallel, and indexes the representations; ctx is observed
// by the fit, the transform fan-out, and the tree build. An empty corpus
// builds an empty index whose searches return no neighbors.
func BuildCtx(ctx context.Context, refs [][]float64, m measure.Measure, cfg Config) (*Index, error) {
	return BuildPreparedCtx(ctx, refs, m, cfg, ExactState{})
}

// BuildPreparedCtx is BuildCtx adopting already-computed exact state
// (bound contexts, prepared states) from a corpus snapshot instead of
// rebuilding it. Either slice may be nil; a non-nil slice must have one
// entry per reference.
func BuildPreparedCtx(ctx context.Context, refs [][]float64, m measure.Measure, cfg Config, st ExactState) (*Index, error) {
	ix := &Index{m: m, refs: refs, cfg: cfg}
	ix.lb, _ = m.(measure.LowerBounded)
	ix.ea, _ = m.(measure.EarlyAbandoning)
	ix.stateful, _ = m.(measure.Stateful)
	if len(refs) == 0 {
		return ix, nil
	}
	if st.Bounds != nil && len(st.Bounds) != len(refs) {
		panic(fmt.Sprintf("ann: %d adopted bound contexts for %d series", len(st.Bounds), len(refs)))
	}
	if st.Prep != nil && len(st.Prep) != len(refs) {
		panic(fmt.Sprintf("ann: %d adopted prepared states for %d series", len(st.Prep), len(refs)))
	}

	dim := cfg.dim()
	if dim > len(refs) {
		dim = len(refs)
	}
	ix.embedder = &embedding.GRAIL{Gamma: cfg.gamma(), Dim: dim, Seed: cfg.Seed}
	if err := ix.embedder.FitCtx(ctx, refs); err != nil {
		return nil, err
	}
	ix.reps = make([][]float64, len(refs))
	if err := par.ForCtx(ctx, len(refs), par.Workers(len(refs)), func(i int) {
		ix.reps[i] = ix.embedder.Transform(refs[i])
	}); err != nil {
		return nil, err
	}
	tree, err := index.NewVPTreeCtx(ctx, ix.reps, lockstep.Euclidean(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	ix.tree = tree

	// Exact re-rank state: adopt the snapshot's when provided, otherwise
	// build it here (in parallel — bound fills and preparations are
	// independent per series).
	if ix.lb != nil {
		if st.Bounds != nil {
			ix.bounds = st.Bounds
		} else {
			ix.bounds = make([]measure.BoundContext, len(refs))
			if err := par.ForCtx(ctx, len(refs), par.Workers(len(refs)), func(i int) {
				c := ix.lb.NewBoundContext(len(refs[i]))
				c.Fill(refs[i])
				ix.bounds[i] = c
			}); err != nil {
				return nil, err
			}
		}
	}
	if ix.stateful != nil {
		if st.Prep != nil {
			ix.prep = st.Prep
		} else {
			ix.prep = make([]any, len(refs))
			if err := par.ForCtx(ctx, len(refs), par.Workers(len(refs)), func(i int) {
				ix.prep[i] = ix.stateful.Prepare(refs[i])
			}); err != nil {
				return nil, err
			}
		}
	}
	return ix, nil
}

// Size returns the number of indexed series.
func (ix *Index) Size() int { return len(ix.refs) }

// Measure returns the exact measure candidates are re-ranked with.
func (ix *Index) Measure() measure.Measure { return ix.m }

// Candidates returns the effective per-query candidate budget.
func (ix *Index) Candidates() int { return ix.cfg.candidates(len(ix.refs)) }

// Transform maps a query into the index's embedding space.
func (ix *Index) Transform(q []float64) []float64 { return ix.embedder.Transform(q) }

// Querier runs approximate queries against one Index. It owns mutable
// per-query scratch (the query-side bound context), so each goroutine
// needs its own; Queriers are cheap to create.
type Querier struct {
	ix *Index
	cq measure.BoundContext
}

// NewQuerier returns a query handle for concurrent use.
func (ix *Index) NewQuerier() *Querier {
	qr := &Querier{ix: ix}
	if ix.lb != nil && len(ix.refs) > 0 {
		qr.cq = ix.lb.NewBoundContext(len(ix.refs[0]))
	}
	return qr
}

// OneNN returns the approximate nearest neighbor of q: the best of the
// top-c embedding-space candidates under the exact measure, or the exact
// neighbor when the budget covers the corpus. It returns (-1, +Inf) on
// an empty index.
func (qr *Querier) OneNN(q []float64) (best int, dist float64, stats Stats) {
	nbs, stats := qr.KNN(q, 1)
	if len(nbs) == 0 {
		return -1, math.Inf(1), stats
	}
	return nbs[0].Index, nbs[0].Dist, stats
}

// KNN returns the approximate k nearest neighbors of q sorted ascending
// by (exact distance, index). All k results are exact distances; only
// the candidate set is approximate. Fewer than k neighbors are returned
// only when the index holds fewer than k series.
func (qr *Querier) KNN(q []float64, k int) ([]index.Neighbor, Stats) {
	ix := qr.ix
	var stats Stats
	n := len(ix.refs)
	if k <= 0 || n == 0 {
		return nil, stats
	}
	if k > n {
		k = n
	}
	c := ix.Candidates()
	if c < k {
		c = k
	}
	if c >= n || ix.tree == nil {
		// Exact lower-bound fallback: the budget covers the corpus, so
		// skip the embedding round-trip and run the pruned exact scan.
		stats.Fallback = true
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return qr.rerank(q, all, k, &stats), stats
	}
	cands, embedDist := ix.tree.KNN(ix.embedder.Transform(q), c)
	stats.EmbedDist = embedDist
	order := make([]int, len(cands))
	for i, nb := range cands {
		order[i] = nb.Index
	}
	return qr.rerank(q, order, k, &stats), stats
}

// rerank computes exact distances for the candidate indices (in the
// given order — embedding-space-ascending, so the cutoff tightens fast)
// and returns the best k by (distance, index). The cascade per
// candidate: lower bound against the current kth-best cutoff, then
// early-abandoning exact distance, then prepared or plain exact.
func (qr *Querier) rerank(q []float64, cands []int, k int, stats *Stats) []index.Neighbor {
	ix := qr.ix
	var pq any
	if ix.stateful != nil {
		pq = ix.stateful.Prepare(q)
	}
	if qr.cq != nil {
		qr.cq.Fill(q)
	}
	h := make(annHeap, 0, k)
	for _, i := range cands {
		cutoff := h.cutoff(k)
		if ix.lb != nil && ix.bounds != nil && cutoff < math.Inf(1) {
			if lb := ix.lb.LowerBound(q, ix.refs[i], qr.cq, ix.bounds[i], cutoff); lb >= cutoff {
				stats.LBPruned++
				continue
			}
		}
		var d float64
		switch {
		case ix.ea != nil && cutoff < math.Inf(1):
			d = ix.ea.DistanceUpTo(q, ix.refs[i], cutoff)
			stats.Exact++
			if !(d < cutoff) {
				// DistanceUpTo only certifies d >= cutoff here, not the
				// exact value; the candidate cannot improve the heap, and
				// offering a possibly-abandoned value would corrupt a tie.
				continue
			}
		case pq != nil:
			d = ix.stateful.PreparedDistance(pq, ix.prep[i])
			stats.Exact++
		default:
			d = ix.m.Distance(q, ix.refs[i])
			stats.Exact++
		}
		h.offer(index.Neighbor{Index: i, Dist: measure.Sanitize(d)}, k)
	}
	out := []index.Neighbor(h)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Index < out[b].Index
	})
	return out
}

// annHeap is the same bounded max-heap shape as the VP-tree's: worst
// retained neighbor at the root, (Dist, Index) total order.
type annHeap []index.Neighbor

func (h annHeap) worse(a, b index.Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.Index > b.Index
}

func (h *annHeap) offer(nb index.Neighbor, k int) {
	if len(*h) < k {
		*h = append(*h, nb)
		for i := len(*h) - 1; i > 0; {
			p := (i - 1) / 2
			if !h.worse((*h)[i], (*h)[p]) {
				break
			}
			(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
			i = p
		}
		return
	}
	if !h.worse((*h)[0], nb) {
		return
	}
	(*h)[0] = nb
	n := len(*h)
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && h.worse((*h)[l], (*h)[worst]) {
			worst = l
		}
		if r < n && h.worse((*h)[r], (*h)[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		(*h)[i], (*h)[worst] = (*h)[worst], (*h)[i]
		i = worst
	}
}

// cutoff is the re-rank pruning threshold: the kth-best exact distance
// so far, +Inf until k candidates have been verified.
func (h annHeap) cutoff(k int) float64 {
	if len(h) == k {
		return h[0].Dist
	}
	return math.Inf(1)
}
