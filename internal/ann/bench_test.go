package ann

import (
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/elastic"
	"repro/internal/measure"
)

// The benchmark corpus matches the acceptance scenario: n >= 2000 series,
// where an ANN warm query (transform + tree descent + c exact re-ranks)
// must beat a linear exact scan by >= 5x. DTW with a 10% band is the
// exact measure — the canonical expensive elastic comparison.
const (
	benchN   = 2048
	benchLen = 128
)

var benchState struct {
	once    sync.Once
	refs    [][]float64
	queries [][]float64
	m       measure.Measure
	ix      *Index
	qr      *Querier
}

func benchSetup(b *testing.B) {
	benchState.once.Do(func() {
		d := dataset.Generate(dataset.Config{
			Name: "ann-bench", Family: dataset.FamilyHarmonic,
			Length: benchLen, NumClasses: 8, TrainSize: benchN, TestSize: 32,
			Seed: 1, NoiseSigma: 0.2, ShiftFrac: 0.05,
		})
		benchState.refs = d.Train
		benchState.queries = d.Test
		benchState.m = elastic.DTW{DeltaPercent: 10}
		benchState.ix = Build(benchState.refs, benchState.m, Config{Seed: 2})
		benchState.qr = benchState.ix.NewQuerier()
	})
	b.ReportAllocs()
}

// BenchmarkANNWarmQueryN2048 measures one warm approximate 1-NN query
// against the prebuilt index (the snapshot steady state: the build cost
// is paid once, outside the loop).
func BenchmarkANNWarmQueryN2048(b *testing.B) {
	benchSetup(b)
	qs := benchState.queries
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchState.qr.OneNN(qs[i%len(qs)])
	}
}

// BenchmarkANNLinearScanN2048 is the baseline the acceptance criterion
// compares against: an exact linear scan with plain Distance calls, no
// lower bounds, no early abandoning.
func BenchmarkANNLinearScanN2048(b *testing.B) {
	benchSetup(b)
	qs := benchState.queries
	m := benchState.m
	refs := benchState.refs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		best, bestD := -1, 0.0
		for j, r := range refs {
			if d := measure.Sanitize(m.Distance(q, r)); best < 0 || d < bestD {
				best, bestD = j, d
			}
		}
		_ = best
	}
}

// BenchmarkANNPrunedScanN2048 is the repo's own exact engine shape — the
// lower-bound cascade plus early abandoning over all n — isolating how
// much of the ANN speedup survives against a strong exact baseline.
func BenchmarkANNPrunedScanN2048(b *testing.B) {
	benchSetup(b)
	qs := benchState.queries
	ix := benchState.ix
	n := len(benchState.refs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		qr := Querier{ix: ix}
		if ix.lb != nil {
			qr.cq = ix.lb.NewBoundContext(len(q))
		}
		all := make([]int, n)
		for j := range all {
			all[j] = j
		}
		var stats Stats
		qr.rerank(q, all, 1, &stats)
	}
}
