package ann

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/elastic"
	"repro/internal/kernel"
	"repro/internal/lockstep"
	"repro/internal/measure"
)

func testCorpus(n, length int, seed int64) [][]float64 {
	d := dataset.Generate(dataset.Config{
		Name: "ann-test", Family: dataset.FamilyHarmonic,
		Length: length, NumClasses: 4, TrainSize: n, TestSize: 1,
		Seed: seed, NoiseSigma: 0.2, ShiftFrac: 0.05,
	})
	return d.Train
}

func bruteNN(refs [][]float64, m measure.Measure, q []float64) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, r := range refs {
		if d := measure.Sanitize(m.Distance(q, r)); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

func bruteDists(refs [][]float64, m measure.Measure, q []float64) []float64 {
	ds := make([]float64, len(refs))
	for i, r := range refs {
		ds[i] = measure.Sanitize(m.Distance(q, r))
	}
	sort.Float64s(ds)
	return ds
}

// TestFallbackIsExact pins the lower-bound fallback contract: with the
// default budget covering a small corpus, every query must run the exact
// scan (Fallback set) and match brute force bitwise on distances, for a
// LowerBounded+EarlyAbandoning measure (DTW), a Stateful one (SINK), and
// a plain panel measure (ED).
func TestFallbackIsExact(t *testing.T) {
	refs := testCorpus(24, 64, 1)
	fresh := dataset.Generate(dataset.Config{
		Name: "q", Family: dataset.FamilyHarmonic,
		Length: 64, NumClasses: 4, TrainSize: 4, TestSize: 6,
		Seed: 100, NoiseSigma: 0.2, ShiftFrac: 0.05,
	}).Test
	rng := rand.New(rand.NewSource(2))
	for _, m := range []measure.Measure{
		elastic.DTW{DeltaPercent: 10},
		kernel.SINK{Gamma: 5},
		lockstep.Euclidean(),
	} {
		ix := Build(refs, m, Config{Seed: 3})
		qr := ix.NewQuerier()
		for trial := 0; trial < 6; trial++ {
			q := refs[rng.Intn(len(refs))]
			if trial%2 == 0 {
				q = fresh[trial]
			}
			best, d, stats := qr.OneNN(q)
			if !stats.Fallback {
				t.Fatalf("%s: budget %d over n=%d did not fall back", m.Name(), ix.Candidates(), len(refs))
			}
			wantI, wantD := bruteNN(refs, m, q)
			if best != wantI || math.Abs(d-wantD) > 1e-9 {
				t.Fatalf("%s: fallback NN (%d, %g) != brute (%d, %g)", m.Name(), best, d, wantI, wantD)
			}
			nbs, _ := qr.KNN(q, 5)
			want := bruteDists(refs, m, q)
			for r, nb := range nbs {
				if math.Abs(nb.Dist-want[r]) > 1e-9 {
					t.Fatalf("%s: fallback KNN rank %d dist %g != brute %g", m.Name(), r, nb.Dist, want[r])
				}
			}
		}
	}
}

// TestApproxRecall checks the real ANN path (tree + re-rank, no
// fallback) keeps high recall@1 when the embedding matches the measure:
// GRAIL approximates SINK, so SINK queries should nearly always land the
// true neighbor inside the candidate set.
func TestApproxRecall(t *testing.T) {
	refs := testCorpus(256, 64, 4)
	m := kernel.SINK{Gamma: 5}
	ix := Build(refs, m, Config{Candidates: 24, Seed: 5})
	qr := ix.NewQuerier()
	queries := dataset.Generate(dataset.Config{
		Name: "q", Family: dataset.FamilyHarmonic,
		Length: 64, NumClasses: 4, TrainSize: 4, TestSize: 40,
		Seed: 6, NoiseSigma: 0.2, ShiftFrac: 0.05,
	}).Test
	hits := 0
	for _, q := range queries {
		_, d, stats := qr.OneNN(q)
		if stats.Fallback {
			t.Fatal("budget 24 over n=256 must not fall back")
		}
		if stats.EmbedDist == 0 {
			t.Fatal("no tree descent recorded")
		}
		if stats.Exact > 24 {
			t.Fatalf("exact computations %d exceed the candidate budget", stats.Exact+stats.LBPruned)
		}
		_, wantD := bruteNN(refs, m, q)
		if math.Abs(d-wantD) <= 1e-9 {
			hits++
		}
		if d < wantD-1e-9 {
			t.Fatalf("approximate distance %g beats the exact minimum %g", d, wantD)
		}
	}
	if recall := float64(hits) / float64(len(queries)); recall < 0.9 {
		t.Fatalf("recall@1 = %g, want >= 0.9 for SINK under a GRAIL embedding", recall)
	}
}

// TestKNNDistancesAreExact re-verifies every reported neighbor with a
// fresh Distance call: the candidate set is approximate, the distances
// never are.
func TestKNNDistancesAreExact(t *testing.T) {
	refs := testCorpus(128, 64, 7)
	m := elastic.DTW{DeltaPercent: 10}
	ix := Build(refs, m, Config{Candidates: 16, Seed: 8})
	qr := ix.NewQuerier()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		q := refs[rng.Intn(len(refs))]
		nbs, stats := qr.KNN(q, 4)
		if stats.Fallback {
			t.Fatal("unexpected fallback")
		}
		if len(nbs) != 4 {
			t.Fatalf("got %d neighbors, want 4", len(nbs))
		}
		for r, nb := range nbs {
			if want := measure.Sanitize(m.Distance(q, refs[nb.Index])); math.Abs(nb.Dist-want) > 1e-9 {
				t.Fatalf("rank %d: reported %g, exact %g", r, nb.Dist, want)
			}
			if r > 0 && nbs[r-1].Dist > nb.Dist {
				t.Fatalf("results not sorted: %g before %g", nbs[r-1].Dist, nb.Dist)
			}
		}
	}
}

// TestBuildPreparedAdoptsState checks that an index built from adopted
// snapshot state answers identically to one that built its own.
func TestBuildPreparedAdoptsState(t *testing.T) {
	refs := testCorpus(64, 64, 10)
	m := elastic.DTW{DeltaPercent: 10}
	cfg := Config{Candidates: 12, Seed: 11}
	own := Build(refs, m, cfg)

	lb := measure.LowerBounded(m)
	bounds := make([]measure.BoundContext, len(refs))
	for i, r := range refs {
		bounds[i] = lb.NewBoundContext(len(r))
		bounds[i].Fill(r)
	}
	adopted, err := BuildPreparedCtx(context.Background(), refs, m, cfg, ExactState{Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	qa, qb := own.NewQuerier(), adopted.NewQuerier()
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 8; trial++ {
		q := refs[rng.Intn(len(refs))]
		ba, da, _ := qa.OneNN(q)
		bb, db, _ := qb.OneNN(q)
		if ba != bb || da != db {
			t.Fatalf("adopted state diverges: (%d, %g) vs (%d, %g)", ba, da, bb, db)
		}
	}
}

// TestBuildCancellation checks a cancelled context aborts the build.
func TestBuildCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildCtx(ctx, testCorpus(64, 64, 13), lockstep.Euclidean(), Config{}); err == nil {
		t.Fatal("cancelled build returned nil error")
	}
}

// TestEmptyAndDegenerate covers the empty corpus and k > n.
func TestEmptyAndDegenerate(t *testing.T) {
	ix := Build(nil, lockstep.Euclidean(), Config{})
	qr := ix.NewQuerier()
	if best, d, _ := qr.OneNN([]float64{1, 2}); best != -1 || !math.IsInf(d, 1) {
		t.Fatalf("empty index NN = (%d, %g)", best, d)
	}
	if nbs, _ := qr.KNN([]float64{1, 2}, 3); len(nbs) != 0 {
		t.Fatalf("empty index KNN returned %d neighbors", len(nbs))
	}
	refs := testCorpus(8, 32, 14)
	ix = Build(refs, lockstep.Euclidean(), Config{Seed: 15})
	nbs, _ := ix.NewQuerier().KNN(refs[0], 100)
	if len(nbs) != 8 {
		t.Fatalf("k > n returned %d neighbors, want 8", len(nbs))
	}
}

// TestConcurrentQueriers drives one shared Index from many goroutines,
// each with its own Querier — the documented concurrency contract; run
// under -race by make check-race.
func TestConcurrentQueriers(t *testing.T) {
	refs := testCorpus(200, 64, 16)
	m := elastic.DTW{DeltaPercent: 10}
	ix := Build(refs, m, Config{Candidates: 16, Seed: 17})
	want := make([]float64, 16)
	base := ix.NewQuerier()
	for i := range want {
		_, want[i], _ = base.OneNN(refs[i*3])
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			qr := ix.NewQuerier()
			for i := range want {
				if _, d, _ := qr.OneNN(refs[i*3]); d != want[i] {
					t.Errorf("concurrent query %d: %g != %g", i, d, want[i])
				}
			}
		}()
	}
	wg.Wait()
}
