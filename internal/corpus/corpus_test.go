package corpus_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/ann"
	"repro/internal/corpus"
	"repro/internal/elastic"
	"repro/internal/index"
	"repro/internal/kernel"
	"repro/internal/measure"
)

// testSeries returns n deterministic pseudo-random series of length m.
func testSeries(seed int64, n, m int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, m)
		for j := range s {
			s[j] = rng.NormFloat64()
		}
		out[i] = s
	}
	return out
}

func TestFingerprintDeterministic(t *testing.T) {
	series := testSeries(1, 12, 32)
	a := corpus.FingerprintOf(series)
	b := corpus.FingerprintOf(series)
	if a != b {
		t.Fatalf("fingerprint not deterministic: %v vs %v", a, b)
	}
	if a.Count != 12 || a.Points != 12*32 {
		t.Fatalf("structural fields wrong: %v", a)
	}
}

func TestFingerprintOrderSensitive(t *testing.T) {
	series := testSeries(2, 6, 16)
	a := corpus.FingerprintOf(series)
	swapped := append([][]float64(nil), series...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	b := corpus.FingerprintOf(swapped)
	if a == b {
		t.Fatalf("fingerprint ignores series order: %v", a)
	}
}

// Same-shape corpora with different content must not collide: the cache
// keys derived from fingerprints would otherwise alias across datasets of
// identical dimensions.
func TestFingerprintSameShapeDifferentData(t *testing.T) {
	a := corpus.FingerprintOf(testSeries(3, 10, 64))
	b := corpus.FingerprintOf(testSeries(4, 10, 64))
	if a.Count != b.Count || a.Points != b.Points {
		t.Fatalf("shapes differ: %v vs %v", a, b)
	}
	if a.Hash == b.Hash {
		t.Fatalf("same-shape corpora collided: %v", a)
	}
}

func TestFingerprintDistinguishesBitPatterns(t *testing.T) {
	a := corpus.FingerprintOf([][]float64{{0, 1}})
	b := corpus.FingerprintOf([][]float64{{math.Copysign(0, -1), 1}})
	if a == b {
		t.Fatalf("+0 and -0 fingerprint identically: %v", a)
	}
}

func TestCovers(t *testing.T) {
	series := testSeries(5, 4, 8)
	s := corpus.Build(series, corpus.Options{})
	if !s.Covers(series) {
		t.Fatalf("snapshot does not cover its own series")
	}
	copied := make([][]float64, len(series))
	for i := range series {
		copied[i] = append([]float64(nil), series[i]...)
	}
	if s.Covers(copied) {
		t.Fatalf("snapshot covers equal-value copies (must be same rows)")
	}
	if s.Covers(series[:3]) {
		t.Fatalf("snapshot covers a prefix")
	}
	var nilSnap *corpus.Snapshot
	if nilSnap.Covers(series) {
		t.Fatalf("nil snapshot covers series")
	}
}

func TestBuildSections(t *testing.T) {
	series := testSeries(6, 8, 32)
	s := corpus.Build(series, corpus.Options{Measures: []measure.Measure{
		elastic.DTW{DeltaPercent: 10}, // LowerBounded -> bounds
		kernel.SINK{Gamma: 1},         // GridStateful -> prep + family core
		kernel.SINK{Gamma: 2},         // same family, second prep entry
		kernel.GAK{Sigma: 1},          // plain Stateful -> prep
	}})
	prep, bounds, cores := s.Sections()
	if bounds != 1 {
		t.Fatalf("bounds sections = %d, want 1", bounds)
	}
	if prep != 3 {
		t.Fatalf("prep sections = %d, want 3 (two SINK gammas + GAK)", prep)
	}
	if cores != 1 {
		t.Fatalf("core families = %d, want 1 (SINK gammas share one family)", cores)
	}
	if got := s.BoundContexts(elastic.DTW{DeltaPercent: 10}); len(got) != len(series) {
		t.Fatalf("bound contexts = %d, want %d", len(got), len(series))
	}
	// A gamma the build never saw still gets family cores: the whole sweep
	// shares one GridPrepare per series.
	if got := s.GridCores(kernel.SINK{Gamma: 7}); len(got) != len(series) {
		t.Fatalf("family cores for unseen gamma = %d, want %d", len(got), len(series))
	}
	if got := s.Prepared(kernel.SINK{Gamma: 7}); got != nil {
		t.Fatalf("full Prepare state served for unseen gamma (candidate-dependent)")
	}
}

// Snapshot-served prepared states must be interchangeable with inline
// Prepare: PreparedDistance over either source is bitwise identical.
func TestPreparedStatesBitwise(t *testing.T) {
	series := testSeries(7, 6, 64)
	for _, sm := range []measure.Stateful{
		kernel.SINK{Gamma: 5},
		kernel.GAK{Sigma: 1},
	} {
		s := corpus.Build(series, corpus.Options{Measures: []measure.Measure{sm}})
		got, err := s.PreparedStates(context.Background(), sm)
		if err != nil {
			t.Fatalf("%s: PreparedStates: %v", sm.Name(), err)
		}
		if got == nil {
			t.Fatalf("%s: snapshot holds no prepared states", sm.Name())
		}
		for i := range series {
			for j := range series {
				want := sm.PreparedDistance(sm.Prepare(series[i]), sm.Prepare(series[j]))
				have := sm.PreparedDistance(got[i], got[j])
				if math.Float64bits(want) != math.Float64bits(have) {
					t.Fatalf("%s: d(%d,%d) = %v from snapshot, %v inline", sm.Name(), i, j, have, want)
				}
			}
		}
	}
}

// States specialized from family cores for a gamma the build never saw
// must match that gamma's own Prepare bitwise (GridStateful contract).
func TestPreparedStatesSpecializeFromCores(t *testing.T) {
	series := testSeries(8, 5, 32)
	s := corpus.Build(series, corpus.Options{Measures: []measure.Measure{kernel.SINK{Gamma: 1}}})
	unseen := kernel.SINK{Gamma: 9}
	got, err := s.PreparedStates(context.Background(), unseen)
	if err != nil || got == nil {
		t.Fatalf("PreparedStates for unseen gamma: %v, err %v", got, err)
	}
	for i := range series {
		want := unseen.PreparedDistance(unseen.Prepare(series[i]), unseen.Prepare(series[(i+1)%len(series)]))
		have := unseen.PreparedDistance(got[i], got[(i+1)%len(series)])
		if math.Float64bits(want) != math.Float64bits(have) {
			t.Fatalf("specialized state diverges at %d: %v vs %v", i, have, want)
		}
	}
}

func TestFiniteFlags(t *testing.T) {
	series := [][]float64{
		{1, 2, 3},
		{1, math.NaN(), 3},
		{1, math.Inf(1), 3},
		{},
	}
	s := corpus.Build(series, corpus.Options{})
	want := []bool{true, false, false, true}
	for i, w := range want {
		if s.Finite()[i] != w {
			t.Fatalf("finite[%d] = %v, want %v", i, s.Finite()[i], w)
		}
	}
}

func TestPAAAndSAXWordsMatchIndex(t *testing.T) {
	series := testSeries(9, 7, 40)
	const segments, alphabet = 8, 4
	s := corpus.Build(series, corpus.Options{
		PAASegments: []int{segments},
		SAX:         []corpus.SAXSpec{{Segments: segments, Alphabet: alphabet}},
	})
	words := s.PAA(segments)
	if words == nil {
		t.Fatalf("no PAA words at %d segments", segments)
	}
	sx := index.NewSAX(segments, alphabet)
	saxWords := s.SAXWords(corpus.SAXSpec{Segments: segments, Alphabet: alphabet})
	for i, x := range series {
		wantPAA := index.PAA(x, segments)
		for j := range wantPAA {
			if math.Float64bits(words[i][j]) != math.Float64bits(wantPAA[j]) {
				t.Fatalf("PAA word %d diverges at %d", i, j)
			}
		}
		wantSAX := sx.Symbolize(x)
		for j := range wantSAX {
			if saxWords[i][j] != wantSAX[j] {
				t.Fatalf("SAX word %d diverges at %d", i, j)
			}
		}
	}
}

func TestEmptySeriesSkipWords(t *testing.T) {
	series := [][]float64{{1, 2, 3, 4}, {}}
	s := corpus.Build(series, corpus.Options{
		PAASegments: []int{2},
		SAX:         []corpus.SAXSpec{{Segments: 2, Alphabet: 3}},
	})
	if w := s.PAA(2); w[0] == nil || w[1] != nil {
		t.Fatalf("empty series must leave a nil PAA word: %v", w)
	}
	if w := s.SAXWords(corpus.SAXSpec{Segments: 2, Alphabet: 3}); w[0] == nil || w[1] != nil {
		t.Fatalf("empty series must leave a nil SAX word: %v", w)
	}
}

// NewEDIndexWithPAA over snapshot words must search identically to the
// recomputing constructor.
func TestEDIndexWithSnapshotPAA(t *testing.T) {
	refs := testSeries(10, 20, 48)
	queries := testSeries(11, 5, 48)
	const segments = 8
	s := corpus.Build(refs, corpus.Options{PAASegments: []int{segments}})
	inline := index.NewEDIndex(refs, segments)
	reused := index.NewEDIndexWithPAA(refs, s.PAA(segments), segments)
	for qi, q := range queries {
		wb, wd, _ := inline.NN(q)
		gb, gd, _ := reused.NN(q)
		if wb != gb || math.Float64bits(wd) != math.Float64bits(gd) {
			t.Fatalf("query %d: snapshot-PAA index found (%d,%v), inline (%d,%v)", qi, gb, gd, wb, wd)
		}
	}
}

func TestBuildCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := corpus.BuildCtx(ctx, testSeries(12, 64, 64), corpus.Options{
		Measures: []measure.Measure{kernel.SINK{Gamma: 1}},
	})
	if err == nil {
		t.Fatalf("cancelled build returned no error")
	}
}

func TestHitCounters(t *testing.T) {
	series := testSeries(13, 4, 16)
	sink := kernel.SINK{Gamma: 3}
	dtw := elastic.DTW{DeltaPercent: 10}
	s := corpus.Build(series, corpus.Options{Measures: []measure.Measure{sink, dtw}})
	if h := s.Hits(); h.Total() != 0 {
		t.Fatalf("fresh snapshot has hits: %+v", h)
	}
	s.Prepared(sink)
	s.BoundContexts(dtw)
	s.GridCores(sink)
	h := s.Hits()
	if h.Prepared != int64(len(series)) || h.Bounds != int64(len(series)) || h.Cores != int64(len(series)) {
		t.Fatalf("hits = %+v, want %d per section", h, len(series))
	}
}

// TestSnapshotANNIndex covers the approximate-index section: the snapshot
// builds one ann.Index per requested measure, shares the exact-side state
// it already materialized, and ANNIndex answers by measure name with nil
// for measures never requested.
func TestSnapshotANNIndex(t *testing.T) {
	series := testSeries(21, 48, 64)
	dtw := elastic.DTW{DeltaPercent: 10}
	snap := corpus.Build(series, corpus.Options{
		Measures: []measure.Measure{dtw},
		ANN: []corpus.ANNSpec{
			{Measure: dtw, Config: ann.Config{Candidates: 8, Seed: 1}},
			{Measure: dtw, Config: ann.Config{Candidates: 8, Seed: 1}}, // duplicate builds once
		},
	})
	ix := snap.ANNIndex(dtw)
	if ix == nil {
		t.Fatal("ANNIndex returned nil for a requested measure")
	}
	if snap.ANNIndex(kernel.SINK{Gamma: 5}) != nil {
		t.Fatal("ANNIndex returned an index for a measure never requested")
	}
	if ix.Size() != len(series) {
		t.Fatalf("index size %d, want %d", ix.Size(), len(series))
	}
	// The snapshot-built index must answer identically to a standalone
	// build over the same corpus and config.
	own := ann.Build(series, dtw, ann.Config{Candidates: 8, Seed: 1})
	qa, qb := ix.NewQuerier(), own.NewQuerier()
	for trial := 0; trial < 6; trial++ {
		q := series[trial*7]
		ba, da, _ := qa.OneNN(q)
		bb, db, _ := qb.OneNN(q)
		if ba != bb || da != db {
			t.Fatalf("snapshot ANN diverges from standalone: (%d, %g) vs (%d, %g)", ba, da, bb, db)
		}
	}
}

// TestSnapshotANNCancelled checks a cancelled context aborts the ANN
// section like every other snapshot section.
func TestSnapshotANNCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := corpus.BuildCtx(ctx, testSeries(22, 32, 32), corpus.Options{
		ANN: []corpus.ANNSpec{{Measure: elastic.DTW{DeltaPercent: 10}}},
	})
	if err == nil {
		t.Fatal("cancelled ANN snapshot build returned nil error")
	}
}
