// Package corpus implements the build-once prepared-state layer that
// separates *corpus build* from *query execute*: an immutable Snapshot
// holds a reference set together with every per-series state the search
// and evaluation engines would otherwise re-derive on each call —
// measure.Stateful preparations (FFT plans, norms, DP profiles),
// measure.GridStateful shared cores (one spectrum + self cross-correlation
// per series for a whole SINK gamma sweep), filled measure.LowerBounded
// bound contexts (the Lemire envelopes of the DTW cascade), per-series
// finiteness flags, and the PAA/SAX words of internal/index.
//
// A Snapshot is built once, in parallel, under a cancellable context, and
// is immutable afterwards: every accessor returns state that is only ever
// read. The search and eval layers accept a snapshot through their
// *SnapshotCtx entry points and produce results bitwise identical to their
// inline-preparation paths — the snapshot changes where per-series state
// comes from, never what is computed from it. A nil snapshot (or one that
// does not cover the series at hand) falls back to inline preparation, so
// existing callers and goldens are untouched.
//
// Snapshots are identified by a content Fingerprint (series count, total
// points, FNV-1a hash over lengths and raw float bits) so the Cache in
// this package can key snapshots and tuned-parameter results by corpus
// content rather than by pointer identity, surviving reloads of the same
// data across experiments and, later, across server requests.
package corpus

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/ann"
	"repro/internal/index"
	"repro/internal/measure"
	"repro/internal/par"
)

// Fingerprint identifies corpus content: cheap structural fields plus an
// order-dependent FNV-1a hash over every series' length and raw float64
// bit patterns. Two corpora with equal fingerprints hold bitwise-equal
// series in the same order (up to hash collision); same-shape corpora with
// different values hash differently, so cache keys built from fingerprints
// do not alias across datasets of identical dimensions.
type Fingerprint struct {
	Count  int    // number of series
	Points int    // total number of values across all series
	Hash   uint64 // FNV-1a over lengths and float bits, in series order
}

func (f Fingerprint) String() string {
	return fmt.Sprintf("%dx%d/%016x", f.Count, f.Points, f.Hash)
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvU64 folds one 64-bit word into an FNV-1a state byte by byte.
func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// hashSeries hashes one series: its length followed by the raw bit
// pattern of every value (so -0, NaN payloads, and infinities all
// distinguish content exactly as bitwise comparison would).
func hashSeries(x []float64) uint64 {
	h := uint64(fnvOffset)
	h = fnvU64(h, uint64(len(x)))
	for _, v := range x {
		h = fnvU64(h, math.Float64bits(v))
	}
	return h
}

// FingerprintOf computes the content fingerprint of a corpus. Per-series
// hashes are computed in parallel and folded in series order, so the
// result is deterministic and order-sensitive.
func FingerprintOf(series [][]float64) Fingerprint {
	fp := Fingerprint{Count: len(series)}
	hashes := make([]uint64, len(series))
	par.For(len(series), par.Workers(len(series)), func(i int) {
		hashes[i] = hashSeries(series[i])
	})
	h := uint64(fnvOffset)
	h = fnvU64(h, uint64(len(series)))
	for i, hi := range hashes {
		fp.Points += len(series[i])
		h = fnvU64(h, hi)
	}
	fp.Hash = h
	return fp
}

// SAXSpec selects one SAX vocabulary to precompute: the word of every
// series under the given PAA resolution and alphabet size.
type SAXSpec struct {
	Segments int
	Alphabet int
}

// ANNSpec selects one approximate retrieval index to build into the
// snapshot: the exact re-rank measure and the embed–index–rerank
// configuration. The builder hands the measure's already-materialized
// bound contexts and prepared states (when the measure also appears in
// Options.Measures) to the ANN build, so the exact-side state is shared
// rather than recomputed.
type ANNSpec struct {
	Measure measure.Measure
	Config  ann.Config
}

// Options configures a snapshot build: which measures' prepared states to
// materialize and which index representations to precompute. The zero
// value builds only the fingerprint and finiteness flags.
type Options struct {
	// Measures lists the measures repeated queries will use. For each,
	// the builder materializes the state the search engine needs:
	// filled bound contexts for LowerBounded measures, prepared states
	// for Stateful ones (specialized from one shared family core for
	// GridStateful families, aliased verbatim across PreparationSharing
	// families), and the GridStateful cores themselves for the tuning
	// engine. Duplicate names build once.
	Measures []measure.Measure
	// PAASegments lists PAA resolutions to precompute per series.
	PAASegments []int
	// SAX lists SAX vocabularies to precompute per series.
	SAX []SAXSpec
	// ANN lists approximate indexes to build (GRAIL fit + parallel
	// transform + VP-tree over the representations). Duplicate measure
	// names build once.
	ANN []ANNSpec
}

// coreFamily is one GridStateful preparation family: the representative
// measure whose SharesPreparation anchors membership, and the shared
// candidate-independent core of every series.
type coreFamily struct {
	rep   measure.Measure
	cores []any
}

// sharedPrep is one plain-Stateful preparation usable verbatim across a
// PreparationSharing family, anchored by the measure that built it.
type sharedPrep struct {
	owner measure.Stateful
	prep  []any
}

// Hits counts prepared-state lookups served by a snapshot, by section.
// The counters are cumulative over the snapshot's lifetime; each hit is
// one per-series state an engine did not have to recompute.
type Hits struct {
	Prepared int64 // Stateful prepared states served
	Bounds   int64 // filled bound contexts served
	Cores    int64 // GridStateful family cores served
}

// Total is the sum over all sections.
func (h Hits) Total() int64 { return h.Prepared + h.Bounds + h.Cores }

// Snapshot is an immutable prepared view of one corpus. All stored state
// is read-only after Build returns: engines must never Fill, Rebind, or
// otherwise mutate snapshot-owned contexts or states (the grid engine's
// envelope arena, which rebinds contexts in place, therefore never adopts
// snapshot-owned ones). The hit counters are the only mutable fields and
// are updated atomically.
type Snapshot struct {
	series [][]float64
	fp     Fingerprint
	finite []bool

	prep   map[string][]any                  // measure name -> per-series prepared state
	bounds map[string][]measure.BoundContext // measure name -> per-series filled contexts
	fams   []coreFamily                      // GridStateful family cores
	shares []sharedPrep                      // verbatim-sharable Prepare outputs
	paa    map[int][][]float64               // segments -> per-series PAA words
	sax    map[SAXSpec][][]int               // spec -> per-series SAX words
	annIdx map[string]*ann.Index             // measure name -> approximate index

	hitPrepared atomic.Int64
	hitBounds   atomic.Int64
	hitCores    atomic.Int64
}

// Build is BuildCtx over a background context.
func Build(series [][]float64, opts Options) *Snapshot {
	s, _ := BuildCtx(context.Background(), series, opts)
	return s
}

// BuildCtx builds a snapshot of series, computing every requested section
// in parallel over par.ForCtx. On a non-nil error the snapshot is
// unusable. The series slices are retained, not copied: the caller must
// treat them as frozen for the snapshot's lifetime (the fingerprint
// records the content at build time).
func BuildCtx(ctx context.Context, series [][]float64, opts Options) (*Snapshot, error) {
	n := len(series)
	s := &Snapshot{
		series: series,
		prep:   map[string][]any{},
		bounds: map[string][]measure.BoundContext{},
		paa:    map[int][][]float64{},
		sax:    map[SAXSpec][][]int{},
		annIdx: map[string]*ann.Index{},
	}
	s.fp = FingerprintOf(series)
	s.finite = make([]bool, n)
	if err := par.ForCtx(ctx, n, par.Workers(n), func(i int) {
		s.finite[i] = allFinite(series[i])
	}); err != nil {
		return nil, err
	}

	for _, m := range opts.Measures {
		name := m.Name()
		if _, ok := s.prep[name]; ok {
			continue
		}
		if _, ok := s.bounds[name]; ok {
			continue
		}
		switch mm := m.(type) {
		case measure.LowerBounded:
			ctxs := make([]measure.BoundContext, n)
			if err := par.ForCtx(ctx, n, par.Workers(n), func(i int) {
				c := mm.NewBoundContext(len(series[i]))
				c.Fill(series[i])
				ctxs[i] = c
			}); err != nil {
				return nil, err
			}
			s.bounds[name] = ctxs
		case measure.GridStateful:
			cores, err := s.familyCores(ctx, mm, series)
			if err != nil {
				return nil, err
			}
			prep := make([]any, n)
			if err := par.ForCtx(ctx, n, par.Workers(n), func(i int) {
				prep[i] = mm.CandidateState(cores[i])
			}); err != nil {
				return nil, err
			}
			s.prep[name] = prep
		case measure.PreparationSharing:
			aliased := false
			for _, prev := range s.shares {
				if mm.SharesPreparation(prev.owner) {
					s.prep[name] = prev.prep
					aliased = true
					break
				}
			}
			if !aliased {
				prep, err := prepareAll(ctx, mm, series)
				if err != nil {
					return nil, err
				}
				s.prep[name] = prep
				s.shares = append(s.shares, sharedPrep{owner: mm, prep: prep})
			}
		case measure.Stateful:
			prep, err := prepareAll(ctx, mm, series)
			if err != nil {
				return nil, err
			}
			s.prep[name] = prep
			s.shares = append(s.shares, sharedPrep{owner: mm, prep: prep})
		}
	}

	for _, seg := range opts.PAASegments {
		if _, ok := s.paa[seg]; ok || n == 0 {
			continue
		}
		words := make([][]float64, n)
		if err := par.ForCtx(ctx, n, par.Workers(n), func(i int) {
			if len(series[i]) > 0 { // PAA is undefined for empty series
				words[i] = index.PAA(series[i], seg)
			}
		}); err != nil {
			return nil, err
		}
		s.paa[seg] = words
	}
	for _, spec := range opts.SAX {
		if _, ok := s.sax[spec]; ok || n == 0 {
			continue
		}
		sx := index.NewSAX(spec.Segments, spec.Alphabet)
		words := make([][]int, n)
		if err := par.ForCtx(ctx, n, par.Workers(n), func(i int) {
			if len(series[i]) > 0 {
				words[i] = sx.Symbolize(series[i])
			}
		}); err != nil {
			return nil, err
		}
		s.sax[spec] = words
	}

	// ANN indexes build last so they can adopt the exact-side state the
	// measure loop above just materialized (bound contexts, prepared
	// states) instead of recomputing it.
	for _, spec := range opts.ANN {
		name := spec.Measure.Name()
		if _, ok := s.annIdx[name]; ok {
			continue
		}
		st := ann.ExactState{Bounds: s.bounds[name], Prep: s.prep[name]}
		ix, err := ann.BuildPreparedCtx(ctx, series, spec.Measure, spec.Config, st)
		if err != nil {
			return nil, err
		}
		s.annIdx[name] = ix
	}
	return s, nil
}

// familyCores returns the GridStateful cores shared by gs's family,
// building them on first use.
func (s *Snapshot) familyCores(ctx context.Context, gs measure.GridStateful, series [][]float64) ([]any, error) {
	for _, f := range s.fams {
		if gs.SharesPreparation(f.rep) {
			return f.cores, nil
		}
	}
	cores := make([]any, len(series))
	if err := par.ForCtx(ctx, len(series), par.Workers(len(series)), func(i int) {
		cores[i] = gs.GridPrepare(series[i])
	}); err != nil {
		return nil, err
	}
	s.fams = append(s.fams, coreFamily{rep: gs, cores: cores})
	return cores, nil
}

func prepareAll(ctx context.Context, sm measure.Stateful, series [][]float64) ([]any, error) {
	out := make([]any, len(series))
	err := par.ForCtx(ctx, len(series), par.Workers(len(series)), func(i int) {
		out[i] = sm.Prepare(series[i])
	})
	return out, err
}

func allFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Series returns the snapshot's backing series. Callers must not mutate.
func (s *Snapshot) Series() [][]float64 { return s.series }

// Len returns the number of series.
func (s *Snapshot) Len() int { return len(s.series) }

// Fingerprint returns the content fingerprint computed at build time.
func (s *Snapshot) Fingerprint() Fingerprint { return s.fp }

// Finite returns the per-series all-finite flags. Callers must not mutate.
func (s *Snapshot) Finite() []bool { return s.finite }

// Covers reports whether the snapshot was built over exactly these series
// rows (same backing arrays, same order). Engines consult it before using
// snapshot state, falling back to inline preparation on a mismatch, so a
// stale or foreign snapshot can cost speed but never correctness.
func (s *Snapshot) Covers(series [][]float64) bool {
	if s == nil || len(series) != len(s.series) {
		return false
	}
	for i := range series {
		if len(series[i]) != len(s.series[i]) {
			return false
		}
		if len(series[i]) > 0 && &series[i][0] != &s.series[i][0] {
			return false
		}
	}
	return true
}

// Prepared returns the per-series Stateful prepared states valid for m —
// stored under m's own name, or shared verbatim from a PreparationSharing
// family member built for the same corpus — or nil when the snapshot holds
// none. A non-nil return counts one hit per series.
func (s *Snapshot) Prepared(m measure.Measure) []any {
	if s == nil {
		return nil
	}
	if p := s.prep[m.Name()]; p != nil {
		s.hitPrepared.Add(int64(len(p)))
		return p
	}
	// GridStateful measures must not adopt a family member's full Prepare
	// state: it is candidate-dependent (only the grid core is shared).
	if _, grid := m.(measure.GridStateful); grid {
		return nil
	}
	if ps, ok := m.(measure.PreparationSharing); ok {
		for _, sh := range s.shares {
			if ps.SharesPreparation(sh.owner) {
				s.hitPrepared.Add(int64(len(sh.prep)))
				return sh.prep
			}
		}
	}
	return nil
}

// PreparedStates returns per-series prepared states for m from whatever
// the snapshot holds: stored Prepare outputs (Prepared), or states
// specialized on the fly from the measure's GridStateful family core —
// bitwise equivalent to Prepare by the GridStateful contract. It returns
// (nil, nil) when the snapshot holds neither; the error is non-nil only
// when specialization was cancelled.
func (s *Snapshot) PreparedStates(ctx context.Context, m measure.Measure) ([]any, error) {
	if s == nil {
		return nil, nil
	}
	if p := s.Prepared(m); p != nil {
		return p, nil
	}
	gs, ok := m.(measure.GridStateful)
	if !ok {
		return nil, nil
	}
	cores := s.GridCores(m)
	if cores == nil {
		return nil, nil
	}
	states := make([]any, len(cores))
	if err := par.ForCtx(ctx, len(cores), par.Workers(len(cores)), func(i int) {
		states[i] = gs.CandidateState(cores[i])
	}); err != nil {
		return nil, err
	}
	return states, nil
}

// BoundContexts returns the per-series filled bound contexts of m, or nil
// when the snapshot holds none. The contexts are read-only: they may be
// passed to LowerBound but never Fill'd or rebound. A non-nil return
// counts one hit per series.
func (s *Snapshot) BoundContexts(m measure.Measure) []measure.BoundContext {
	if s == nil {
		return nil
	}
	c := s.bounds[m.Name()]
	if c != nil {
		s.hitBounds.Add(int64(len(c)))
	}
	return c
}

// GridCores returns the shared GridStateful family cores valid for m, or
// nil when the snapshot holds none. A non-nil return counts one hit per
// series.
func (s *Snapshot) GridCores(m measure.Measure) []any {
	if s == nil {
		return nil
	}
	gs, ok := m.(measure.GridStateful)
	if !ok {
		return nil
	}
	for _, f := range s.fams {
		if gs.SharesPreparation(f.rep) {
			s.hitCores.Add(int64(len(f.cores)))
			return f.cores
		}
	}
	return nil
}

// ANNIndex returns the snapshot's approximate retrieval index for m, or
// nil when none was requested at build time. The index is immutable;
// callers query it through per-goroutine ann.Queriers.
func (s *Snapshot) ANNIndex(m measure.Measure) *ann.Index {
	if s == nil {
		return nil
	}
	return s.annIdx[m.Name()]
}

// PAA returns the precomputed PAA words at the given resolution, or nil.
func (s *Snapshot) PAA(segments int) [][]float64 {
	if s == nil {
		return nil
	}
	return s.paa[segments]
}

// SAXWords returns the precomputed SAX words for the given vocabulary, or
// nil.
func (s *Snapshot) SAXWords(spec SAXSpec) [][]int {
	if s == nil {
		return nil
	}
	return s.sax[spec]
}

// Hits returns the cumulative prepared-state hit counters.
func (s *Snapshot) Hits() Hits {
	if s == nil {
		return Hits{}
	}
	return Hits{
		Prepared: s.hitPrepared.Load(),
		Bounds:   s.hitBounds.Load(),
		Cores:    s.hitCores.Load(),
	}
}

// Sections summarizes what the snapshot holds, for logs and tests.
func (s *Snapshot) Sections() (prepared, bounds, cores int) {
	if s == nil {
		return 0, 0, 0
	}
	return len(s.prep), len(s.bounds), len(s.fams)
}
