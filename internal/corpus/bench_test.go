package corpus_test

import (
	"context"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/kernel"
	"repro/internal/measure"
	"repro/internal/search"
)

// The snapshot benchmark suite measures the cold-vs-warm split the
// prepared-state layer buys: "cold" pays per-request preparation (the
// pre-snapshot behavior), "warm" serves it from a snapshot built once
// outside the timed loop. BENCH_snapshot.json records both; the ratio is
// the amortized speedup of repeated querying against a resident corpus.

func benchDataset(train, test int) *dataset.Dataset {
	return dataset.Generate(dataset.Config{
		Name: "Bench", Family: dataset.FamilyECG, Length: 128,
		NumClasses: 4, TrainSize: train, TestSize: test, Seed: 42,
		NoiseSigma: 0.1, ShiftFrac: 0.15, AmpJitter: 0.2,
	})
}

// BenchmarkSnapshotQuery is the cold-vs-warm suite: each iteration is one
// request — a single-query 1-NN search, or a full supervised tuning run.
func BenchmarkSnapshotQuery(b *testing.B) {
	b.Run("onenn-sink/cold", func(b *testing.B) {
		d := benchDataset(128, 8)
		m := kernel.SINK{Gamma: 5}
		query := d.Test[:1]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			search.OneNN(m, query, d.Train)
		}
	})
	b.Run("onenn-sink/warm", func(b *testing.B) {
		d := benchDataset(128, 8)
		m := kernel.SINK{Gamma: 5}
		query := d.Test[:1]
		snap := corpus.Build(d.Train, corpus.Options{Measures: []measure.Measure{m}})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			search.OneNNSnapshot(m, query, d.Train, snap)
		}
	})
	b.Run("tuning-sink/cold", func(b *testing.B) {
		d := benchDataset(48, 4)
		g := eval.Thin(eval.SINKGrid(), 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eval.TuneSupervised(g, d.Train, d.TrainLabels)
		}
	})
	b.Run("tuning-sink/warm", func(b *testing.B) {
		d := benchDataset(48, 4)
		g := eval.Thin(eval.SINKGrid(), 2)
		// Warm request path: fingerprint the corpus, serve the tuned
		// result from the LRU when resident (every request after the
		// first), falling back to a snapshot-backed sweep on a miss.
		cache := corpus.NewCache(8)
		snap := corpus.Build(d.Train, corpus.Options{Measures: g.Candidates})
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A real request must fingerprint the incoming corpus to form
			// the cache key; keep that cost inside the timed loop.
			k := corpus.Key{FP: corpus.FingerprintOf(d.Train), Measure: g.Name, Band: "tuned/stride=2"}
			cache.GetOrBuildCtx(ctx, k, func(ctx context.Context) (any, error) {
				m, acc, err := eval.TuneSupervisedSnapshotCtx(ctx, g, d.Train, d.TrainLabels, snap)
				if err != nil {
					return nil, err
				}
				return [2]any{m, acc}, nil
			})
		}
	})
}

// BenchmarkSnapshotBuild prices the one-time cost the warm path amortizes.
func BenchmarkSnapshotBuild(b *testing.B) {
	d := benchDataset(128, 8)
	m := kernel.SINK{Gamma: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corpus.Build(d.Train, corpus.Options{Measures: []measure.Measure{m}})
	}
}
